package repro

import (
	"encoding/json"
	"flag"
	"os"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stream"
)

// Peak-memory guard for the streaming service: the 10× micro-population
// scenario (the BenchmarkStreamPeakMemory workload) must not regress its
// peak live-heap growth by more than 20% over the committed baseline. The
// guard is the CI streaming-smoke job's enforcement half — the benchmarks
// report the numbers, this test fails the build when bounded-memory
// ingestion quietly stops being bounded.
//
// The measurement samples live heap bytes (runtime/metrics), the in-process
// stand-in for RSS that peakHeapDuring (bench_test.go) already uses; it is
// single-run and inherently a bit noisy, which the 20% margin absorbs. The
// test only runs when STREAM_PEAK_GUARD=1 (CI sets it), so ordinary local
// `go test ./...` runs stay fast and flake-free.
//
// Regenerate the baseline after an intentional change with
//
//	STREAM_PEAK_GUARD=1 go test -run TestStreamPeakMemoryGuard -update-peak .

var updatePeak = flag.Bool("update-peak", false,
	"rewrite testdata/bench/stream_peak_baseline.json from the current run")

const peakBaselinePath = "testdata/bench/stream_peak_baseline.json"

type peakBaseline struct {
	// PeakBytes is the recorded peak live-heap growth of the 10× stream
	// run on the reference machine.
	PeakBytes uint64 `json:"peak_bytes"`
	// Note documents what the number is, for whoever reads the file.
	Note string `json:"note"`
}

func TestStreamPeakMemoryGuard(t *testing.T) {
	if os.Getenv("STREAM_PEAK_GUARD") == "" {
		t.Skip("peak-memory guard runs only with STREAM_PEAK_GUARD=1 (set by the CI streaming smoke job)")
	}
	src, err := dataset.NewSynthetic(streamBenchConfig())
	if err != nil {
		t.Fatal(err)
	}
	peak := peakHeapDuring(func() {
		svc, err := stream.New(stream.Config{
			Source:       src,
			EpsilonG:     5,
			FixedEpsilon: 1,
			Seed:         1,
			Lean:         true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Serve(); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("10x stream run peak live-heap growth: %.1f MB", float64(peak)/(1<<20))

	if *updatePeak {
		out, err := json.MarshalIndent(peakBaseline{
			PeakBytes: peak,
			Note:      "peak live-heap growth of the 10x micro-population streaming run (see stream_guard_test.go)",
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata/bench", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(peakBaselinePath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with peak %d bytes", peakBaselinePath, peak)
		return
	}

	raw, err := os.ReadFile(peakBaselinePath)
	if err != nil {
		t.Fatalf("reading peak baseline (regenerate with -update-peak): %v", err)
	}
	var base peakBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("decoding peak baseline: %v", err)
	}
	limit := base.PeakBytes + base.PeakBytes/5 // +20%
	if peak > limit {
		t.Fatalf("streaming peak memory regressed: %.1f MB > %.1f MB (baseline %.1f MB + 20%%) — "+
			"bounded-memory ingestion may have broken; if the growth is intentional, "+
			"regenerate with -update-peak",
			float64(peak)/(1<<20), float64(limit)/(1<<20), float64(base.PeakBytes)/(1<<20))
	}
}
