package repro

import (
	"encoding/json"
	"flag"
	"os"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/stream"
)

// Peak-memory guard for the streaming service: the 10× micro-population
// scenario (the BenchmarkStreamPeakMemory workload) must not regress its
// peak live-heap growth by more than 20% over the committed baseline. The
// guard is the CI streaming-smoke job's enforcement half — the benchmarks
// report the numbers, this test fails the build when bounded-memory
// ingestion quietly stops being bounded.
//
// The measurement samples live heap bytes (runtime/metrics), the in-process
// stand-in for RSS that peakHeapDuring (bench_test.go) already uses; it is
// single-run and inherently a bit noisy, which the 20% margin absorbs. The
// test only runs when STREAM_PEAK_GUARD=1 (CI sets it), so ordinary local
// `go test ./...` runs stay fast and flake-free.
//
// Regenerate the baseline after an intentional change with
//
//	STREAM_PEAK_GUARD=1 go test -run TestStreamPeakMemoryGuard -update-peak .

var updatePeak = flag.Bool("update-peak", false,
	"rewrite testdata/bench/stream_peak_baseline.json from the current run")

const peakBaselinePath = "testdata/bench/stream_peak_baseline.json"

type peakBaseline struct {
	// PeakBytes is the recorded peak live-heap growth of the 10× stream
	// run on the reference machine.
	PeakBytes uint64 `json:"peak_bytes"`
	// Note documents what the number is, for whoever reads the file.
	Note string `json:"note"`
}

func TestStreamPeakMemoryGuard(t *testing.T) {
	if os.Getenv("STREAM_PEAK_GUARD") == "" {
		t.Skip("peak-memory guard runs only with STREAM_PEAK_GUARD=1 (set by the CI streaming smoke job)")
	}
	src, err := dataset.NewSynthetic(streamBenchConfig())
	if err != nil {
		t.Fatal(err)
	}
	peak := peakHeapDuring(func() {
		svc, err := stream.New(stream.Config{
			Source:       src,
			EpsilonG:     5,
			FixedEpsilon: 1,
			Seed:         1,
			Lean:         true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Serve(); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("10x stream run peak live-heap growth: %.1f MB", float64(peak)/(1<<20))

	if *updatePeak {
		out, err := json.MarshalIndent(peakBaseline{
			PeakBytes: peak,
			Note:      "peak live-heap growth of the 10x micro-population streaming run (see stream_guard_test.go)",
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata/bench", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(peakBaselinePath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with peak %d bytes", peakBaselinePath, peak)
		return
	}

	raw, err := os.ReadFile(peakBaselinePath)
	if err != nil {
		t.Fatalf("reading peak baseline (regenerate with -update-peak): %v", err)
	}
	var base peakBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("decoding peak baseline: %v", err)
	}
	limit := base.PeakBytes + base.PeakBytes/5 // +20%
	if peak > limit {
		t.Fatalf("streaming peak memory regressed: %.1f MB > %.1f MB (baseline %.1f MB + 20%%) — "+
			"bounded-memory ingestion may have broken; if the growth is intentional, "+
			"regenerate with -update-peak",
			float64(peak)/(1<<20), float64(limit)/(1<<20), float64(base.PeakBytes)/(1<<20))
	}
}

// Wall-time guard for the streaming service: the same 10× micro-population
// run must not get more than 20% slower than the committed baseline
// (testdata/bench/stream_time_baseline.json). Raw seconds do not transfer
// between machines, so the baseline stores the stream run's wall time
// together with the wall time of a fixed CPU-bound calibration loop measured
// in the same process, and the guard compares the stream/calibration *ratio*:
// a CI runner half the speed of the baseline machine halves both numbers and
// the ratio stands still, while a real regression in the streaming path moves
// only the numerator. The stream side takes the best of two runs and the
// calibration the best of three, which with the 20% margin absorbs ordinary
// scheduler noise.
//
// Runs only with STREAM_TIME_GUARD=1 (CI sets it). Regenerate after an
// intentional slowdown with
//
//	STREAM_TIME_GUARD=1 go test -run TestStreamWallTimeGuard -update-stream-time .

var updateStreamTime = flag.Bool("update-stream-time", false,
	"rewrite testdata/bench/stream_time_baseline.json from the current run")

const timeBaselinePath = "testdata/bench/stream_time_baseline.json"

type timeBaseline struct {
	// StreamSeconds is the best-of-two wall time of the 10× stream run on
	// the reference machine; CalibSeconds is the best-of-three wall time of
	// the fixed calibration loop on the same machine. Only their ratio is
	// compared across machines.
	StreamSeconds float64 `json:"stream_seconds"`
	CalibSeconds  float64 `json:"calib_seconds"`
	Note          string  `json:"note"`
}

// calibSink keeps the calibration loop observable so it cannot be optimized
// away.
var calibSink uint64

// calibrationSeconds times a fixed CPU-bound xorshift loop, best of three.
func calibrationSeconds() float64 {
	best := time.Duration(1<<63 - 1)
	for run := 0; run < 3; run++ {
		start := time.Now()
		x := uint64(0x9E3779B97F4A7C15)
		for i := 0; i < 200_000_000; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		calibSink = x
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best.Seconds()
}

func TestStreamWallTimeGuard(t *testing.T) {
	if os.Getenv("STREAM_TIME_GUARD") == "" {
		t.Skip("wall-time guard runs only with STREAM_TIME_GUARD=1 (set by the CI streaming smoke job)")
	}
	best := time.Duration(1<<63 - 1)
	for run := 0; run < 2; run++ {
		// A fresh source per run: the stream consumes it.
		src, err := dataset.NewSynthetic(streamBenchConfig())
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		svc, err := stream.New(stream.Config{
			Source:       src,
			EpsilonG:     5,
			FixedEpsilon: 1,
			Seed:         1,
			Lean:         true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Serve(); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	streamSec := best.Seconds()
	calibSec := calibrationSeconds()
	t.Logf("10x stream run: %.3fs wall, calibration %.3fs, ratio %.2f",
		streamSec, calibSec, streamSec/calibSec)

	if *updateStreamTime {
		out, err := json.MarshalIndent(timeBaseline{
			StreamSeconds: streamSec,
			CalibSeconds:  calibSec,
			Note:          "wall time of the 10x micro-population streaming run, normalized by a fixed CPU calibration loop (see stream_guard_test.go)",
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata/bench", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(timeBaselinePath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with stream %.3fs / calib %.3fs", timeBaselinePath, streamSec, calibSec)
		return
	}

	raw, err := os.ReadFile(timeBaselinePath)
	if err != nil {
		t.Fatalf("reading wall-time baseline (regenerate with -update-stream-time): %v", err)
	}
	var base timeBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("decoding wall-time baseline: %v", err)
	}
	if base.CalibSeconds <= 0 || base.StreamSeconds <= 0 {
		t.Fatalf("degenerate wall-time baseline %+v (regenerate with -update-stream-time)", base)
	}
	ratio := streamSec / calibSec
	baseRatio := base.StreamSeconds / base.CalibSeconds
	limit := baseRatio * 1.2 // +20%
	if ratio > limit {
		t.Fatalf("streaming wall time regressed: normalized ratio %.2f > %.2f (baseline %.2f + 20%%) — "+
			"the generate stage may have gotten slower; if the slowdown is intentional, "+
			"regenerate with -update-stream-time",
			ratio, limit, baseRatio)
	}
}
