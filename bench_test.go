// Package repro's root benchmark harness: one benchmark per table/figure of
// the paper's evaluation (see DESIGN.md's per-experiment index), plus the
// Appendix B report-generation latency series and micro-benchmarks of the
// hot paths (filter consumption, report generation, aggregation).
//
// Figure benchmarks run the quick-scale harness once per iteration and
// report the paper-relevant scalar (budget ratio, executed fraction) as
// custom metrics, so `go test -bench=.` both exercises and summarizes every
// experiment.
package repro

import (
	"runtime"
	"runtime/metrics"
	"testing"
	"time"

	"repro/internal/aggregation"
	"repro/internal/attribution"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/privacy"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/workload"
)

// BenchmarkFig4BudgetKnobs regenerates Fig. 4a–d (microbenchmark budget
// consumption vs knob1/knob2) and reports Cookie Monster's average budget
// advantage over ARA-like at the lowest-participation point.
func BenchmarkFig4BudgetKnobs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		cm := r.AvgByKnob1[workload.CookieMonster][0]
		ara := r.AvgByKnob1[workload.ARALike][0]
		if cm > 0 {
			b.ReportMetric(ara/cm, "ara/cm-budget-ratio")
		}
	}
}

// BenchmarkFig5PATCG regenerates Fig. 5a–c (PATCG budget and accuracy) and
// reports IPA-like's executed fraction (the paper's 3.75%) and the final
// CM-vs-ARA budget ratio.
func BenchmarkFig5PATCG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ExecutedFraction[workload.IPALike], "ipa-executed-frac")
		cm := r.CumulativeAvg[workload.CookieMonster]
		ara := r.CumulativeAvg[workload.ARALike]
		if last := len(cm) - 1; cm[last] > 0 {
			b.ReportMetric(ara[last]/cm[last], "ara/cm-budget-ratio")
		}
	}
}

// BenchmarkFig6Criteo regenerates Fig. 6a–d (Criteo budget and accuracy CDFs
// plus Criteo++ augmentation) and reports the fraction of device-advertiser
// pairs for which CM left more budget capacity than ARA at the 95th
// percentile.
func BenchmarkFig6Criteo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BudgetCDF[workload.CookieMonster].Quantile(0.95), "cm-q95-budget")
		b.ReportMetric(r.BudgetCDF[workload.ARALike].Quantile(0.95), "ara-q95-budget")
	}
}

// BenchmarkFig7BiasMeasurement regenerates Fig. 7a–c (bias measurement) and
// reports the budget overhead of the side query.
func BenchmarkFig7BiasMeasurement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if r.AvgBudget[experiments.Fig7CM] > 0 {
			b.ReportMetric(r.AvgBudget[experiments.Fig7CMBias]/r.AvgBudget[experiments.Fig7CM],
				"bias-budget-overhead")
		}
	}
}

// benchReportGeneration measures Listing 1's report generation with n
// impressions over a 20-epoch window — the Appendix B latency series (ARA's
// Chrome implementation is flat at one impression; Cookie Monster scans all
// relevant impressions, linear in n).
func benchReportGeneration(b *testing.B, n int) {
	db := events.NewDatabase()
	const site = events.Site("nike.example")
	const epochDays = 7
	for i := 0; i < n; i++ {
		day := (i * 20 * epochDays) / n
		db.Record(events.EpochOfDay(day, epochDays), events.Event{
			ID: events.EventID(i + 1), Kind: events.KindImpression,
			Device: 1, Day: day, Publisher: "pub.example",
			Advertiser: site, Campaign: "product-0",
		})
	}
	dev := core.NewDevice(1, db, 1e15, core.CookieMonsterPolicy{})
	req := &core.Request{
		Querier:    site,
		FirstEpoch: 0, LastEpoch: 19,
		Selector:          events.ProductSelector{Advertiser: site, Product: "product-0"},
		Function:          attribution.ScalarValue{Value: 1},
		Epsilon:           1e-9,
		ReportSensitivity: 1,
		QuerySensitivity:  1,
		PNorm:             1,
	}
	b.ReportAllocs()
	var scratch core.Scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dev.GenerateReportScratch(req, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendixBReportGen10(b *testing.B)  { benchReportGeneration(b, 10) }
func BenchmarkAppendixBReportGen25(b *testing.B)  { benchReportGeneration(b, 25) }
func BenchmarkAppendixBReportGen50(b *testing.B)  { benchReportGeneration(b, 50) }
func BenchmarkAppendixBReportGen100(b *testing.B) { benchReportGeneration(b, 100) }

// BenchmarkFilterConsume measures the pure-DP filter's atomic
// check-and-consume, the hot path of every report generation.
func BenchmarkFilterConsume(b *testing.B) {
	f := privacy.NewFilter(float64(b.N) + 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Consume(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregation1000 measures one summation query over a 1000-report
// batch at the trusted aggregation service.
func BenchmarkAggregation1000(b *testing.B) {
	rng := stats.NewRNG(1)
	var nonce core.Nonce
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		svc := aggregation.NewService(rng)
		reports := make([]*core.Report, 1000)
		for j := range reports {
			nonce++
			reports[j] = &core.Report{
				Nonce: nonce, Querier: "nike.example",
				Histogram: attribution.Histogram{float64(j % 10)},
				Epsilon:   1, QuerySensitivity: 10,
			}
		}
		b.StartTimer()
		if _, err := svc.Execute(reports); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadCookieMonster measures the end-to-end workload engine on
// a small microbenchmark dataset (device fleet, batching, aggregation).
func BenchmarkWorkloadCookieMonster(b *testing.B) {
	cfg := dataset.DefaultMicroConfig()
	cfg.BatchSize = 100
	ds, err := dataset.Micro(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Execute(workload.Config{
			Dataset: ds, System: workload.CookieMonster, EpsilonG: 5,
			FixedEpsilon: 1, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWorkloadParallelism measures the end-to-end engine on an
// impression-dense microbenchmark at a fixed report-generation worker count.
// Dense impressions (knob2) and a long window make per-conversion report
// generation the dominant cost, which is the fan-out's target; sequential
// vs parallel results are bit-identical, only wall-clock differs.
func benchWorkloadParallelism(b *testing.B, workers int) {
	b.Helper()
	cfg := dataset.DefaultMicroConfig()
	cfg.BatchSize = 200
	cfg.Knob2 = 2.0
	ds, err := dataset.Micro(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Execute(workload.Config{
			Dataset: ds, System: workload.CookieMonster, EpsilonG: 5,
			FixedEpsilon: 1, Seed: 1, Parallelism: workers,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadSequentialReports pins the batch fan-out to one worker —
// the pre-sharding execution model, kept as the parallel baseline.
func BenchmarkWorkloadSequentialReports(b *testing.B) { benchWorkloadParallelism(b, 1) }

// BenchmarkWorkloadParallelReports fans batch report generation across all
// cores via the sharded fleet; compare ns/op against the sequential twin.
func BenchmarkWorkloadParallelReports(b *testing.B) {
	benchWorkloadParallelism(b, runtime.GOMAXPROCS(0))
}

// BenchmarkMicroDatasetGen measures synthetic dataset generation.
func BenchmarkMicroDatasetGen(b *testing.B) {
	cfg := dataset.DefaultMicroConfig()
	cfg.BatchSize = 100
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := dataset.Micro(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLadder runs the §4.3 optimization-ladder ablation and
// reports each partial policy's average budget relative to the full Cookie
// Monster policy.
func BenchmarkAblationLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablation(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		full := r.AvgBudget[len(r.AvgBudget)-1]
		if full > 0 {
			b.ReportMetric(r.AvgBudget[0]/full, "none/full-budget-ratio")
		}
	}
}

// streamBenchConfig is the sustained-ingest scenario: the synthetic source
// at 10× the default microbenchmark population (DefaultMicroConfig's
// B/knob1 = 5,000 devices), full 120-day trace. The generator emits one day
// at a time, so only the service's retention window bounds resident events.
func streamBenchConfig() dataset.SyntheticConfig {
	cfg := dataset.DefaultSyntheticConfig()
	cfg.Population = 50000
	cfg.ImpressionsPerDay = 0.1
	return cfg
}

func streamBenchSource(b *testing.B) *dataset.SyntheticSource {
	b.Helper()
	src, err := dataset.NewSynthetic(streamBenchConfig())
	if err != nil {
		b.Fatal(err)
	}
	return src
}

// BenchmarkStreamSustainedIngest measures the online measurement service
// end-to-end on the 10× scenario in lean (long-running) retention mode and
// reports sustained ingest throughput plus how far resident state stayed
// below the trace.
func BenchmarkStreamSustainedIngest(b *testing.B) {
	events := 0
	queries := 0
	var peakResident, evicted int
	for i := 0; i < b.N; i++ {
		svc, err := stream.New(stream.Config{
			Source:       streamBenchSource(b),
			EpsilonG:     5,
			FixedEpsilon: 1,
			Seed:         uint64(i + 1),
			Lean:         true,
		})
		if err != nil {
			b.Fatal(err)
		}
		run, err := svc.Serve()
		if err != nil {
			b.Fatal(err)
		}
		events += run.EventsIngested
		queries += len(run.Results)
		if run.PeakResidentRecords > peakResident {
			peakResident = run.PeakResidentRecords
		}
		evicted += run.EvictedRecords
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(queries)/float64(b.N), "queries/run")
	b.ReportMetric(float64(peakResident), "peak-resident-records")
	b.ReportMetric(float64(evicted)/float64(b.N), "evicted-records/run")
}

// peakHeapDuring runs fn with a background sampler watching live heap bytes
// (runtime/metrics) and returns the peak growth over the post-GC baseline —
// the number that distinguishes "memory bounded by the ingest window" from
// "memory proportional to the trace".
func peakHeapDuring(fn func()) uint64 {
	runtime.GC()
	sample := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(sample)
	baseline := sample[0].Value.Uint64()
	peak := baseline
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
		for {
			select {
			case <-stop:
				return
			default:
				metrics.Read(s)
				if v := s[0].Value.Uint64(); v > peak {
					peak = v
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	fn()
	close(stop)
	<-done
	if peak < baseline {
		return 0
	}
	return peak - baseline
}

// BenchmarkStreamPeakMemory runs the 10× scenario through the streaming
// service and reports peak heap growth; compare against
// BenchmarkBatchPeakMemory, which materializes the same trace for the batch
// engine. The streaming peak tracks the ingest queue plus the attribution
// window; the batch peak carries the whole dataset.
func BenchmarkStreamPeakMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		peak := peakHeapDuring(func() {
			svc, err := stream.New(stream.Config{
				Source:       streamBenchSource(b),
				EpsilonG:     5,
				FixedEpsilon: 1,
				Seed:         1,
				Lean:         true,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := svc.Serve(); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(float64(peak)/(1<<20), "peak-MB")
	}
}

// BenchmarkBatchPeakMemory is BenchmarkStreamPeakMemory's twin on the batch
// engine: materialize the identical 10× trace, then Execute. Same queries,
// same results (the equivalence contract) — but the peak includes the full
// event log.
func BenchmarkBatchPeakMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		peak := peakHeapDuring(func() {
			ds := dataset.Materialize(streamBenchSource(b))
			if _, err := workload.Execute(workload.Config{
				Dataset: ds, System: workload.CookieMonster,
				EpsilonG: 5, FixedEpsilon: 1, Seed: 1,
			}); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(float64(peak)/(1<<20), "peak-MB")
	}
}

// BenchmarkStreamPeakMemoryLongTrace doubles the trace length (240 days,
// twice the queries) at the same population. The streaming peak should stay
// roughly where BenchmarkStreamPeakMemory's was — resident state is the
// ingest queue, the attribution window, and live device filters — while a
// batch run's peak grows with the trace.
func BenchmarkStreamPeakMemoryLongTrace(b *testing.B) {
	cfg := streamBenchConfig()
	cfg.DurationDays = 240
	cfg.QueriesPerProduct = 4
	for i := 0; i < b.N; i++ {
		src, err := dataset.NewSynthetic(cfg)
		if err != nil {
			b.Fatal(err)
		}
		peak := peakHeapDuring(func() {
			svc, err := stream.New(stream.Config{
				Source:       src,
				EpsilonG:     5,
				FixedEpsilon: 1,
				Seed:         1,
				Lean:         true,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := svc.Serve(); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(float64(peak)/(1<<20), "peak-MB")
	}
}
