// Adtech: the multi-advertiser perspective (§6.4 / Appendix A). A Criteo-like
// population of advertisers with heavily skewed sizes measures conversions
// through the same device fleet; each advertiser gets its own per-epoch
// filters on every device, so one advertiser exhausting its budget never
// affects another — the per-querier isolation the on-device design provides.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/workload"
)

func main() {
	cfg := dataset.DefaultCriteoConfig()
	cfg.TotalConversions = 20000
	cfg.Users = 10000
	ds, err := dataset.Criteo(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", ds)
	fmt.Printf("queryable advertisers (≥%d conversions per product stream): %d\n\n",
		cfg.MinBatch, len(ds.Advertisers))

	run, err := workload.Execute(workload.Config{
		Dataset:  ds,
		System:   workload.CookieMonster,
		EpsilonG: 10,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Per-advertiser rollup.
	type agg struct {
		queries int
		rmsre   float64
		denied  int
	}
	byAdv := make(map[events.Site]*agg)
	for _, q := range run.Results {
		a := byAdv[q.Querier]
		if a == nil {
			a = &agg{}
			byAdv[q.Querier] = a
		}
		a.queries++
		a.rmsre += q.RMSRE
		a.denied += q.DeniedReports
	}
	sites := make([]events.Site, 0, len(byAdv))
	for s := range byAdv {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return byAdv[sites[i]].queries > byAdv[sites[j]].queries })

	fmt.Printf("%-28s %8s %10s %10s\n", "advertiser", "queries", "avg-RMSRE", "denied")
	for i, s := range sites {
		if i == 10 {
			fmt.Printf("... and %d more advertisers\n", len(sites)-10)
			break
		}
		a := byAdv[s]
		fmt.Printf("%-28s %8d %10.4f %10d\n", s, a.queries, a.rmsre/float64(a.queries), a.denied)
	}
	fmt.Printf("\ntotal: %d queries across %d advertisers, %d active devices\n",
		len(run.Results), len(byAdv), run.ActiveDevices())
}
