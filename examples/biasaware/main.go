// Biasaware: the Appendix F bias-measurement mechanism from the querier's
// seat. Under a deliberately heavy query load, reports start silently
// dropping out-of-budget epochs; the side query gives the querier a
// DP-aggregated count of possibly-affected reports, from which it computes a
// high-probability RMSRE upper bound and rejects queries above a cutoff.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

func main() {
	cfg := dataset.DefaultMicroConfig()
	cfg.DurationDays = 60
	cfg.QueriesPerProduct = 12 // heavy repetition → budget pressure
	cfg.BatchSize = 150
	ds, err := dataset.Micro(cfg)
	if err != nil {
		log.Fatal(err)
	}

	run, err := workload.Execute(workload.Config{
		Dataset:  ds,
		System:   workload.CookieMonster,
		EpsilonG: 4,
		Seed:     11,
		Bias:     &core.BiasSpec{LastTouch: true}, // κ defaults to 10% of Δquery
	})
	if err != nil {
		log.Fatal(err)
	}

	const cutoff = 0.1
	fmt.Printf("%d queries with bias measurement (cutoff %.2f):\n\n", len(run.Results), cutoff)
	fmt.Printf("%5s %10s %10s %10s %10s  %s\n",
		"query", "truth", "estimate", "true-err", "est-bound", "decision")
	accepted, sound := 0, 0
	for _, q := range run.Results {
		decision := "accept"
		if q.BiasEstimate > cutoff {
			decision = "REJECT"
		} else {
			accepted++
			if q.RMSRE <= q.BiasEstimate {
				sound++
			}
		}
		if q.Index%10 == 0 { // sample the log
			fmt.Printf("%5d %10.1f %10.1f %10.4f %10.4f  %s\n",
				q.Index, q.Truth, q.Estimate, q.RMSRE, q.BiasEstimate, decision)
		}
	}
	fmt.Printf("\naccepted %d/%d queries; estimated bound covered the true error for %d/%d accepted\n",
		accepted, len(run.Results), sound, accepted)
	fmt.Println("(rejected queries still consumed budget — rejection is post-processing)")
}
