// Adplatform: the Appendix A ad-tech perspective. A first-party platform
// (the Meta role) trains a conversion-prediction logistic regression from
// attribution reports: features are public on-platform behaviour, labels are
// private cross-site conversions, and every gradient flows through the same
// on-device budgeting engine — devices without a relevant conversion pay
// zero budget (their gradient is a function of public data only).
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/aggregation"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/mlattr"
	"repro/internal/stats"
)

func main() {
	const platform = events.Site("platform.example")
	const advertiser = events.Site("shoes.example")

	// Synthetic population: users with two public interest features;
	// users interested in running (feature 0 high) tend to convert.
	rng := stats.NewRNG(2024)
	db := events.NewDatabase()
	var examples []mlattr.Example
	converts := 0
	const n = 600
	for i := 0; i < n; i++ {
		dev := events.DeviceID(i + 1)
		running := rng.Float64()*2 - 1 // interest score in [-1, 1]
		fashion := rng.Float64()*2 - 1
		// Ground truth: running interest drives conversion.
		if rng.Bool(1 / (1 + math.Exp(-3*running))) {
			converts++
			db.Record(0, events.Event{
				ID: events.EventID(i + 1), Kind: events.KindConversion,
				Device: dev, Day: 2, Advertiser: advertiser, Value: 1,
			})
		}
		examples = append(examples, mlattr.Example{
			Device:     core.NewDevice(dev, db, 20, core.CookieMonsterPolicy{}),
			Features:   []float64{running, fashion, 1},
			FirstEpoch: 0, LastEpoch: 0,
		})
	}

	trainer, err := mlattr.NewTrainer(mlattr.TrainerConfig{
		Querier:      platform,
		Dim:          3,
		FeatureCap:   3,
		Epsilon:      2,
		LearningRate: 1.5,
		Advertisers:  []events.Site{advertiser},
	})
	if err != nil {
		log.Fatal(err)
	}
	service := aggregation.NewService(stats.NewRNG(7))

	fmt.Printf("training on %d devices (%d converters), ε=2 per step\n\n", n, converts)
	for step := 1; step <= 25; step++ {
		denied, err := trainer.Step(service, examples)
		if err != nil {
			log.Fatal(err)
		}
		if step%5 == 0 {
			w := trainer.Weights()
			fmt.Printf("step %2d: weights = [%+.3f %+.3f %+.3f], denied reports = %d\n",
				step, w[0], w[1], w[2], denied)
		}
	}

	w := trainer.Weights()
	fmt.Printf("\nlearned model: running-interest weight %+.3f (ground truth +), fashion %+.3f (ground truth 0)\n", w[0], w[1])
	fmt.Println("non-converting devices paid zero budget for every gradient —")
	fmt.Println("their reports depend only on public features (Thm. 4 case 1).")
}
