// Nike: the single-advertiser measurement scenario of §2.1, run at workload
// scale. A Nike-like advertiser repeatedly measures ten shoe campaigns over
// four months, comparing the three budgeting systems the paper evaluates.
// The output shows utility as the paper defines it: how many accurate
// queries a querier can execute under the same device-epoch DP guarantee.
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	cfg := dataset.DefaultMicroConfig()
	cfg.BatchSize = 300
	ds, err := dataset.Micro(cfg)
	if err != nil {
		log.Fatal(err)
	}
	adv := ds.Advertisers[0]
	eps := privacy.DefaultCalibration.Epsilon(adv.MaxValue, adv.BatchSize, adv.AvgReportValue)
	epsG := eps / 0.25

	fmt.Printf("%s\n", ds)
	fmt.Printf("calibrated ε = %.3f per query (5%% error @ 99%% confidence), ε^G = %.3f per epoch\n\n", eps, epsG)
	fmt.Printf("%-16s %8s %10s %10s %12s %12s\n",
		"system", "queries", "executed", "denied", "avg-budget", "med-RMSRE")

	for _, sys := range workload.Systems {
		run, err := workload.Execute(workload.Config{
			Dataset:  ds,
			System:   sys,
			EpsilonG: epsG,
			Seed:     42,
		})
		if err != nil {
			log.Fatal(err)
		}
		denied := 0
		for _, q := range run.Results {
			denied += q.DeniedReports
		}
		avg, _ := run.BudgetStats()
		rmsres := run.RMSREs()
		med := 0.0
		if len(rmsres) > 0 {
			med = stats.Summarize(rmsres).Median
		}
		fmt.Printf("%-16s %8d %9.0f%% %10d %12.4f %12.4f\n",
			sys, len(run.Results), 100*run.ExecutedFraction(), denied, avg, med)
	}

	fmt.Println("\nCookie Monster executes every query with the least budget and the")
	fmt.Println("fewest nullified reports; IPA-like rejects queries once its central")
	fmt.Println("per-epoch filters drain.")
}
