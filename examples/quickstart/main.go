// Quickstart: the paper's §3.2 running example, end to end on one device.
//
// Ann sees two Nike shoe ads (epochs e1 and e2), nothing in e3, and buys the
// shoes in e4. Nike requests an attribution report with a $100 value cap and
// ε = 0.01; Cookie Monster deducts individual privacy loss only where Ann's
// data could actually influence the query.
package main

import (
	"fmt"
	"log"

	"repro/internal/attribution"
	"repro/internal/core"
	"repro/internal/events"
)

func main() {
	db := events.NewDatabase()
	const nike = events.Site("nike.com")

	// @e1: impression I₁ (nytimes.com), @e2: impression I₂ (bbc.com).
	db.Record(1, events.Event{ID: 1, Kind: events.KindImpression, Device: 1,
		Day: 7, Publisher: "nytimes.com", Advertiser: nike, Campaign: "shoes"})
	db.Record(2, events.Event{ID: 2, Kind: events.KindImpression, Device: 1,
		Day: 15, Publisher: "bbc.com", Advertiser: nike, Campaign: "shoes"})
	// @e4: conversion C₁ — Ann buys the $70 shoes.
	db.Record(4, events.Event{ID: 3, Kind: events.KindConversion, Device: 1,
		Day: 29, Advertiser: nike, Product: "shoes", Value: 70})

	// Ann's device enforces ε^G = 1 per (querier, epoch).
	device := core.NewDevice(1, db, 1.0, core.CookieMonsterPolicy{})

	// Nike's attribution request: search epochs e1–e4, attribute the $70
	// conversion to at most 2 impressions (last-touch), declare the $100
	// price cap as query sensitivity.
	report, diag, err := device.GenerateReport(&core.Request{
		Querier:    nike,
		FirstEpoch: 1, LastEpoch: 4,
		Selector:          events.NewCampaignSelector(nike, "shoes"),
		Function:          attribution.Slots{Logic: attribution.LastTouch{}, MaxImpressions: 2, Value: 70},
		Epsilon:           0.01,
		ReportSensitivity: 70,  // Ann's conversion value
		QuerySensitivity:  100, // the max shoe price
		PNorm:             1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("attribution report ρ = %v  (nonce %d)\n\n", report.Histogram, report.Nonce)
	fmt.Println("individual privacy loss per epoch (Thm. 4):")
	for e := events.Epoch(1); e <= 4; e++ {
		fmt.Printf("  e%d: loss %.4f  (relevant events: %d)\n",
			e, diag.LossAt(e), diag.RelevantAt(e))
	}
	fmt.Println("\n  e1, e2 pay ε·70/100 = 0.007 (report-cap optimization);")
	fmt.Println("  e3, e4 pay 0 (no relevant impressions: zero individual sensitivity).")

	fmt.Println("\nAnn's privacy-loss dashboard after the report:")
	fmt.Print(core.RenderDashboard(device.Ledger(), 30))
}
