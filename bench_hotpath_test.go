package repro

import (
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/attribution"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/privacy"
)

// This file holds the report hot-path micro-benchmarks (run with
// `-bench=Hot`) and the machine-readable perf-trajectory emitter: every
// BenchmarkHot* run records ns/op, allocs/op, and B/op, and TestMain writes
// the collected series out so future changes have a baseline to diff
// against (the CI smoke uploads the files as artifacts). The event-store
// benchmarks (window scan, ingest/seal, shuffled record — see
// bench_events_test.go) land in BENCH_events.json; everything else lands in
// BENCH_hotpath.json.

// hotBenchEntry is one benchmark's record in BENCH_hotpath.json.
type hotBenchEntry struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

var hotBench struct {
	sync.Mutex
	entries []hotBenchEntry
}

// runHot measures fn b.N times, reporting allocations through the standard
// benchmark output and into the BENCH_hotpath.json collector. The mallocs
// delta is read via runtime.MemStats, so fn must not spawn goroutines.
func runHot(b *testing.B, fn func()) {
	b.Helper()
	b.ReportAllocs()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		fn()
	}
	elapsed := time.Since(start)
	b.StopTimer()
	runtime.ReadMemStats(&after)
	n := float64(b.N)
	hotBench.Lock()
	hotBench.entries = append(hotBench.entries, hotBenchEntry{
		Name:        b.Name(),
		N:           b.N,
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	})
	hotBench.Unlock()
}

// isEventsBench routes an entry to BENCH_events.json: the event-store
// series (columnar window scan, ingest/seal, shuffled record) is tracked
// separately from the report-generation series.
func isEventsBench(name string) bool {
	for _, prefix := range []string{
		"BenchmarkHotWindowScan",
		"BenchmarkHotIngestSeal",
		"BenchmarkHotRecordShuffled",
	} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// writeHotBenchJSON persists the collected hot-path series; a run without
// -bench=Hot collects nothing and writes nothing. The benchmark runner
// invokes each function several times while calibrating b.N, so only the
// final (largest-N) measurement per benchmark is kept — the earlier rounds
// are warm-up noise.
func writeHotBenchJSON() {
	hotBench.Lock()
	defer hotBench.Unlock()
	if len(hotBench.entries) == 0 {
		return
	}
	final := make(map[string]hotBenchEntry)
	var order []string
	for _, e := range hotBench.entries {
		if prev, seen := final[e.Name]; !seen {
			order = append(order, e.Name)
			final[e.Name] = e
		} else if e.N >= prev.N {
			final[e.Name] = e
		}
	}
	var hotpath, eventsSeries []hotBenchEntry
	for _, name := range order {
		if isEventsBench(name) {
			eventsSeries = append(eventsSeries, final[name])
		} else {
			hotpath = append(hotpath, final[name])
		}
	}
	writeBenchFile("BENCH_hotpath.json", hotpath)
	writeBenchFile("BENCH_events.json", eventsSeries)
}

func writeBenchFile(path string, entries []hotBenchEntry) {
	if len(entries) == 0 {
		return
	}
	out := struct {
		Go         string          `json:"go"`
		Benchmarks []hotBenchEntry `json:"benchmarks"`
	}{Go: runtime.Version(), Benchmarks: entries}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile(path, append(data, '\n'), 0o644)
}

func TestMain(m *testing.M) {
	code := m.Run()
	writeHotBenchJSON()
	os.Exit(code)
}

// hotDevice is the Appendix B scenario (n impressions over a 20-epoch
// window) used by the report-generation hot-path benchmarks.
func hotDevice(n int) (*core.Device, *core.Request) {
	db := events.NewDatabase()
	const site = events.Site("nike.example")
	const epochDays = 7
	for i := 0; i < n; i++ {
		day := (i * 20 * epochDays) / n
		db.Record(events.EpochOfDay(day, epochDays), events.Event{
			ID: events.EventID(i + 1), Kind: events.KindImpression,
			Device: 1, Day: day, Publisher: "pub.example",
			Advertiser: site, Campaign: "product-0",
		})
	}
	db.Freeze()
	dev := core.NewDevice(1, db, 1e15, core.CookieMonsterPolicy{})
	req := &core.Request{
		Querier:    site,
		FirstEpoch: 0, LastEpoch: 19,
		Selector:          events.ProductSelector{Advertiser: site, Product: "product-0"},
		Function:          attribution.ScalarValue{Value: 1},
		Epsilon:           1e-9,
		ReportSensitivity: 1,
		QuerySensitivity:  1,
		PNorm:             1,
	}
	return dev, req
}

// BenchmarkHotReportGenDiag measures the allocate-per-call GenerateReport
// API (fresh workspace + full Diagnostics each report) — the convenience
// path, and the closest stand-in for the pre-ledger engine's cost profile.
func BenchmarkHotReportGenDiag(b *testing.B) {
	dev, req := hotDevice(50)
	runHot(b, func() {
		if _, _, err := dev.GenerateReport(req); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkHotReportGenScratch measures the production hot path: one
// reusable core.Scratch across all reports, fold-ready stats instead of
// diagnostics. The acceptance target is ≥80% fewer allocs/op than the
// pre-ledger engine (82 allocs/op at this 50-impression, 20-epoch shape —
// the before column of the README perf table).
func BenchmarkHotReportGenScratch(b *testing.B) {
	dev, req := hotDevice(50)
	var scratch core.Scratch
	runHot(b, func() {
		if _, _, err := dev.GenerateReportScratch(req, &scratch); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkHotLedgerCharge measures the flat ledger's single-slot
// check-and-consume over a 32-epoch ring.
func BenchmarkHotLedgerCharge(b *testing.B) {
	l := privacy.NewLedger(float64(b.N) + 1)
	var e int64
	runHot(b, func() {
		if out := l.Charge("nike.example", e&31, 1); out != privacy.ChargeOK {
			b.Fatalf("charge rejected: %v", out)
		}
		e++
	})
}

// BenchmarkHotLedgerChargeWindow measures a whole 20-epoch window charged
// under one lock — the per-report ledger traffic of Listing 1 step 3.
func BenchmarkHotLedgerChargeWindow(b *testing.B) {
	l := privacy.NewLedger(float64(b.N)*20 + 1)
	losses := make([]float64, 20)
	for i := range losses {
		losses[i] = 1
	}
	outcomes := make([]privacy.ChargeOutcome, 20)
	runHot(b, func() {
		l.ChargeWindow("nike.example", 0, losses, outcomes)
	})
}

// BenchmarkHotMapFilterCharge is the ledger-vs-map baseline: the old
// map[querier]map[epoch]*Filter table, including the table mutex and the
// per-Filter mutex the flat ledger eliminated.
func BenchmarkHotMapFilterCharge(b *testing.B) {
	var mu sync.Mutex
	budgets := make(map[events.Site]map[events.Epoch]*privacy.Filter)
	capacity := float64(b.N) + 1
	lookup := func(q events.Site, e events.Epoch) *privacy.Filter {
		mu.Lock()
		defer mu.Unlock()
		byEpoch := budgets[q]
		if byEpoch == nil {
			byEpoch = make(map[events.Epoch]*privacy.Filter)
			budgets[q] = byEpoch
		}
		f := byEpoch[e]
		if f == nil {
			f = privacy.NewFilter(capacity)
			byEpoch[e] = f
		}
		return f
	}
	var e events.Epoch
	runHot(b, func() {
		if err := lookup("nike.example", e&31).Consume(1); err != nil {
			b.Fatal(err)
		}
		e++
	})
}

// hotMultiDevice is the cross-querier variant of the Appendix B scenario: one
// heavily-used device carrying a fixed 4800-impression trace spread evenly
// across q
// advertisers, each advertiser running 10 campaigns (the scanFixtureEvents
// shape — a query's selector matches ~10% of its advertiser's events), over a
// 20-epoch window, plus the q per-querier attribution requests a day
// super-batch would deliver to the device at once. Total event volume is
// constant in q, so the ns/op series isolates how the per-visit costs (window
// traversal, ledger locking, nonce draws) scale with the number of queriers.
func hotMultiDevice(q int) (*core.Device, []*core.Request) {
	var evs []events.Event
	const epochDays = 7
	const total = 4800
	sites := make([]events.Site, q)
	for i := range sites {
		sites[i] = events.Site("adv-" + string(rune('a'+i)) + ".example")
	}
	for i := 0; i < total; i++ {
		day := (i * 20 * epochDays) / total
		evs = append(evs, events.Event{
			ID: events.EventID(i + 1), Kind: events.KindImpression,
			Device: 1, Day: day, Publisher: "pub.example",
			Advertiser: sites[i%q],
			Campaign:   "product-" + string(rune('0'+(i/q)%10)),
		})
	}
	db := events.NewFrozen(epochDays, evs)
	dev := core.NewDevice(1, db, 1e15, core.CookieMonsterPolicy{})
	reqs := make([]*core.Request, q)
	for i, site := range sites {
		reqs[i] = &core.Request{
			Querier:    site,
			FirstEpoch: 0, LastEpoch: 19,
			Selector:          events.ProductSelector{Advertiser: site, Product: "product-0"},
			Function:          attribution.ScalarValue{Value: 1},
			Epsilon:           1e-9,
			ReportSensitivity: 1,
			QuerySensitivity:  1,
			PNorm:             1,
		}
	}
	return dev, reqs
}

// benchHotMultiQuerier measures the batched device visit: all q requests
// evaluated by one GenerateReportBatch call — one multi-matcher window
// traversal, one ledger lock, one nonce block — with a reused MultiScratch.
func benchHotMultiQuerier(b *testing.B, q int) {
	dev, reqs := hotMultiDevice(q)
	var ms core.MultiScratch
	reports := make([]*core.Report, q)
	stats := make([]core.ReportStats, q)
	runHot(b, func() {
		if _, err := dev.GenerateReportBatch(reqs, &ms, reports, stats); err != nil {
			b.Fatal(err)
		}
	})
}

// benchHotMultiQuerierLoop is the per-querier baseline on the same scenario:
// q independent GenerateReportScratch calls, each paying its own window scan,
// selector compile, ledger lock, and nonce draw.
func benchHotMultiQuerierLoop(b *testing.B, q int) {
	dev, reqs := hotMultiDevice(q)
	var scratch core.Scratch
	runHot(b, func() {
		for _, req := range reqs {
			if _, _, err := dev.GenerateReportScratch(req, &scratch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkHotMultiQuerier1(b *testing.B)  { benchHotMultiQuerier(b, 1) }
func BenchmarkHotMultiQuerier4(b *testing.B)  { benchHotMultiQuerier(b, 4) }
func BenchmarkHotMultiQuerier16(b *testing.B) { benchHotMultiQuerier(b, 16) }

func BenchmarkHotMultiQuerierLoop1(b *testing.B)  { benchHotMultiQuerierLoop(b, 1) }
func BenchmarkHotMultiQuerierLoop4(b *testing.B)  { benchHotMultiQuerierLoop(b, 4) }
func BenchmarkHotMultiQuerierLoop16(b *testing.B) { benchHotMultiQuerierLoop(b, 16) }
