package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/stream"
)

// The durability scaling benchmark behind BENCH_durability.json: the same
// generator-backed workload at 1× and 10× fleet size (duration extended at a
// constant daily event rate over a 10× population, so the resident fleet and
// its accumulated state grow tenfold while the per-cadence-window dirty set
// stays flat), run in delta and full snapshot mode. The point of delta
// snapshots is visible in the two growth rows: full-mode capture cost (bytes
// per capture, capture stall) follows the resident state, delta-mode cost
// follows the dirty set. The runs are deliberately non-Lean: a durable
// deployment snapshots everything it holds, and the lean profile's windowed
// eviction would cap resident state and mask exactly the growth this
// benchmark exists to show.
//
// Gated behind DURABILITY_BENCH=1 (the CI durability job sets it): the runs
// take tens of seconds and measure wall-clock stalls, which have no place in
// the ordinary test suite.

// durabilityBenchRow is one (mode, scale) measurement in the JSON artifact.
type durabilityBenchRow struct {
	Mode             string  `json:"mode"`
	Scale            int     `json:"scale"`
	FleetDevices     int     `json:"fleetDevices"`
	EventsIngested   int     `json:"eventsIngested"`
	SnapshotCaptures int     `json:"snapshotCaptures"`
	BaseCompactions  int     `json:"baseCompactions"`
	MaxStallMicros   int64   `json:"maxStallMicros"`
	MaxCaptureMicros int64   `json:"maxCaptureStallMicros"`
	DeltaBytes       int64   `json:"deltaBytes"`
	BaseBytes        int64   `json:"baseBytes"`
	BytesPerCapture  float64 `json:"bytesPerCapture"`
	GroupCommits     int     `json:"groupCommits"`
	WallSeconds      float64 `json:"wallSeconds"`
}

// durabilityBenchConfig builds the scaled synthetic workload: population and
// duration grow with scale, the daily impression volume stays constant.
func durabilityBenchConfig(scale int) dataset.SyntheticConfig {
	return dataset.SyntheticConfig{
		Seed:              1,
		Population:        3000 * scale,
		Products:          2,
		BatchSize:         200,
		QueriesPerProduct: 5 * scale,
		DurationDays:      60 * scale,
		ImpressionsPerDay: 0.1 / float64(scale),
		MaxValue:          10,
		WindowDays:        30,
	}
}

func TestDurabilityBench(t *testing.T) {
	if os.Getenv("DURABILITY_BENCH") == "" {
		t.Skip("set DURABILITY_BENCH=1 to run the durability scaling benchmark")
	}

	var rows []durabilityBenchRow
	for _, mode := range []string{stream.SnapshotModeDelta, stream.SnapshotModeFull} {
		for _, scale := range []int{1, 10} {
			src, err := dataset.NewSynthetic(durabilityBenchConfig(scale))
			if err != nil {
				t.Fatal(err)
			}
			svc, err := stream.New(stream.Config{
				Source:            src,
				EpsilonG:          1,
				Seed:              1,
				Parallelism:       4,
				CheckpointDir:     t.TempDir(),
				SnapshotEveryDays: 7,
				SnapshotMode:      mode,
				BaseEveryDeltas:   8,
				GroupCommitEvents: 256,
			})
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			run, err := svc.Serve()
			if err != nil {
				t.Fatal(err)
			}
			wall := time.Since(start)
			d := run.Durability
			captures := d.SnapshotCaptures
			if captures == 0 {
				t.Fatalf("mode %s scale %d: no cadence captures", mode, scale)
			}
			rows = append(rows, durabilityBenchRow{
				Mode:             mode,
				Scale:            scale,
				FleetDevices:     run.Fleet.Len(),
				EventsIngested:   run.EventsIngested,
				SnapshotCaptures: captures,
				BaseCompactions:  d.BaseCompactions,
				MaxStallMicros:   d.MaxSnapshotStall.Microseconds(),
				MaxCaptureMicros: d.MaxCaptureStall.Microseconds(),
				DeltaBytes:       d.DeltaBytes,
				BaseBytes:        d.BaseBytes,
				BytesPerCapture:  float64(d.DeltaBytes+d.BaseBytes) / float64(captures),
				GroupCommits:     d.GroupCommits,
				WallSeconds:      wall.Seconds(),
			})
			t.Logf("mode=%s scale=%d fleet=%d captures=%d maxStall=%s maxCapture=%s bytes/capture=%.0f",
				mode, scale, run.Fleet.Len(), captures, d.MaxSnapshotStall, d.MaxCaptureStall,
				float64(d.DeltaBytes+d.BaseBytes)/float64(captures))
		}
	}

	// Growth summary: how each mode's capture cost scaled with the 10×
	// fleet. Bytes are deterministic; stalls are wall-clock and recorded as
	// observed (the artifact, not this test, is the judge of "roughly
	// flat" — CI machines are too noisy for a hard timing assertion).
	find := func(mode string, scale int) durabilityBenchRow {
		for _, r := range rows {
			if r.Mode == mode && r.Scale == scale {
				return r
			}
		}
		t.Fatalf("missing row %s/%d", mode, scale)
		return durabilityBenchRow{}
	}
	type growth struct {
		Mode            string  `json:"mode"`
		FleetGrowth     float64 `json:"fleetGrowth"`
		MaxStallGrowth  float64 `json:"maxStallGrowth"`
		CaptureStall    float64 `json:"maxCaptureStallGrowth"`
		BytesPerCapture float64 `json:"bytesPerCaptureGrowth"`
	}
	var growths []growth
	for _, mode := range []string{stream.SnapshotModeDelta, stream.SnapshotModeFull} {
		small, big := find(mode, 1), find(mode, 10)
		growths = append(growths, growth{
			Mode:            mode,
			FleetGrowth:     float64(big.FleetDevices) / float64(small.FleetDevices),
			MaxStallGrowth:  float64(big.MaxStallMicros) / float64(max(small.MaxStallMicros, 1)),
			CaptureStall:    float64(big.MaxCaptureMicros) / float64(max(small.MaxCaptureMicros, 1)),
			BytesPerCapture: big.BytesPerCapture / small.BytesPerCapture,
		})
		t.Logf("mode=%s fleet×%.1f stall×%.1f captureStall×%.1f bytes/capture×%.1f",
			mode, growths[len(growths)-1].FleetGrowth,
			growths[len(growths)-1].MaxStallGrowth,
			growths[len(growths)-1].CaptureStall,
			growths[len(growths)-1].BytesPerCapture)
	}

	// The structural half of the claim is deterministic (serialized bytes,
	// not wall-clock) and asserted:
	//   - delta bytes-per-capture must stay roughly flat — nowhere near the
	//     fleet growth — because delta captures follow the dirty set;
	//   - full bytes-per-capture must grow with the resident state, and at
	//     the large scale a full capture must cost a multiple of a delta.
	deltaG, fullG := growths[0], growths[1]
	if deltaG.BytesPerCapture > deltaG.FleetGrowth/2 {
		t.Errorf("delta bytes/capture grew ×%.1f against fleet ×%.1f — delta capture is not tracking the dirty set",
			deltaG.BytesPerCapture, deltaG.FleetGrowth)
	}
	if fullG.BytesPerCapture <= deltaG.BytesPerCapture {
		t.Errorf("full bytes/capture grew ×%.1f, no faster than delta ×%.1f — the modes are not separating",
			fullG.BytesPerCapture, deltaG.BytesPerCapture)
	}
	bigDelta, bigFull := find(stream.SnapshotModeDelta, 10), find(stream.SnapshotModeFull, 10)
	if bigDelta.BytesPerCapture*2 > bigFull.BytesPerCapture {
		t.Errorf("at scale 10 a delta capture costs %.0f bytes vs %.0f for a full snapshot — expected at least 2× separation",
			bigDelta.BytesPerCapture, bigFull.BytesPerCapture)
	}

	out := struct {
		Rows   []durabilityBenchRow `json:"rows"`
		Growth []growth             `json:"growth"`
	}{rows, growths}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_durability.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote BENCH_durability.json")
}
