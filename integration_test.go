package repro

import (
	"bytes"
	"testing"

	"repro/internal/aggregation"
	"repro/internal/attribution"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/privacy"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestEndToEndPipeline drives the full stack — dataset generation, device
// fleet, report generation, aggregation — and checks the released estimates
// are usable (within 3× the calibration target for clean queries).
func TestEndToEndPipeline(t *testing.T) {
	cfg := dataset.DefaultMicroConfig()
	cfg.BatchSize = 200
	ds, err := dataset.Micro(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adv := ds.Advertisers[0]
	eps := privacy.DefaultCalibration.Epsilon(adv.MaxValue, adv.BatchSize, adv.AvgReportValue)
	run, err := workload.Execute(workload.Config{
		Dataset:  ds,
		System:   workload.CookieMonster,
		EpsilonG: eps * 4,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) != 20 {
		t.Fatalf("queries = %d", len(run.Results))
	}
	clean := 0
	for _, q := range run.Results {
		if q.DeniedReports == 0 && q.Truth > 0 && q.RMSRE < 0.15 {
			clean++
		}
	}
	if clean < 10 {
		t.Fatalf("only %d/20 queries within tolerance", clean)
	}
}

// TestColludingQueriersAccounting: two queriers exercise the same device;
// each has its own filters (so neither can starve the other), and the joint
// leakage about one epoch is bounded by the Thm. 10 composition of their
// individually-consumed budgets.
func TestColludingQueriersAccounting(t *testing.T) {
	db := events.NewDatabase()
	db.Record(1, events.Event{ID: 1, Kind: events.KindImpression, Device: 1,
		Day: 8, Advertiser: "nike.com", Campaign: "shoes"})
	db.Record(1, events.Event{ID: 2, Kind: events.KindImpression, Device: 1,
		Day: 9, Advertiser: "adidas.com", Campaign: "track"})
	dev := core.NewDevice(1, db, 1.0, core.CookieMonsterPolicy{})

	query := func(q events.Site, campaign string) {
		t.Helper()
		_, _, err := dev.GenerateReport(&core.Request{
			Querier:    q,
			FirstEpoch: 0, LastEpoch: 2,
			Selector:          events.NewCampaignSelector(q, campaign),
			Function:          attribution.ScalarValue{Value: 10},
			Epsilon:           0.4,
			ReportSensitivity: 10,
			QuerySensitivity:  10,
			PNorm:             1,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		query("nike.com", "shoes")
		query("adidas.com", "track")
	}

	nikeSpent := dev.Consumed("nike.com", 1)
	adidasSpent := dev.Consumed("adidas.com", 1)
	// Each querier is individually capped at ε^G.
	if nikeSpent > 1.0+1e-9 || adidasSpent > 1.0+1e-9 {
		t.Fatalf("per-querier cap violated: %v / %v", nikeSpent, adidasSpent)
	}
	// The colluding pair's joint guarantee follows Thm. 10's composition
	// over the consumed budgets (general case: factor 2 each).
	joint := privacy.CollusionBound([]float64{nikeSpent, adidasSpent}, false)
	if want := 2 * (nikeSpent + adidasSpent); joint != want {
		t.Fatalf("collusion bound = %v, want %v", joint, want)
	}
	if joint > privacy.CollusionBound([]float64{1, 1}, false) {
		t.Fatal("joint bound exceeds worst case")
	}
}

// TestUnlinkabilityAcrossDevices: a user's events split across two devices
// keep fully independent filter tables, and the Thm. 2 arithmetic bounds the
// linkability advantage by the budgets actually spent.
func TestUnlinkabilityAcrossDevices(t *testing.T) {
	db := events.NewDatabase()
	db.Record(0, events.Event{ID: 1, Kind: events.KindImpression, Device: 1,
		Day: 1, Advertiser: "nike.com", Campaign: "shoes"})
	db.Record(0, events.Event{ID: 2, Kind: events.KindImpression, Device: 2,
		Day: 2, Advertiser: "nike.com", Campaign: "shoes"})
	d1 := core.NewDevice(1, db, 0.5, core.CookieMonsterPolicy{})
	d2 := core.NewDevice(2, db, 0.8, core.CookieMonsterPolicy{})

	req := &core.Request{
		Querier:    "nike.com",
		FirstEpoch: 0, LastEpoch: 0,
		Selector:          events.NewCampaignSelector("nike.com", "shoes"),
		Function:          attribution.ScalarValue{Value: 5},
		Epsilon:           0.2,
		ReportSensitivity: 5,
		QuerySensitivity:  10,
		PNorm:             1,
	}
	if _, _, err := d1.GenerateReport(req); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d2.GenerateReport(req); err != nil {
		t.Fatal(err)
	}
	// Budgets are per device: d2's spend is invisible on d1.
	if d1.Consumed("nike.com", 0) == 0 || d2.Consumed("nike.com", 0) == 0 {
		t.Fatal("devices did not consume independently")
	}
	bound := privacy.UnlinkabilityBound(d1.Capacity(), d2.Capacity())
	if bound != 2*0.5+0.8 {
		t.Fatalf("unlinkability bound = %v", bound)
	}
}

// TestBudgetSurvivesRestartEndToEnd: persistence round-trips through the
// workload-facing device API, and the aggregation service still refuses the
// pre-restart report nonces.
func TestBudgetSurvivesRestartEndToEnd(t *testing.T) {
	db := events.NewDatabase()
	db.Record(0, events.Event{ID: 1, Kind: events.KindImpression, Device: 1,
		Day: 1, Advertiser: "nike.com", Campaign: "shoes"})
	dev := core.NewDevice(1, db, 0.2, core.CookieMonsterPolicy{})
	req := &core.Request{
		Querier:    "nike.com",
		FirstEpoch: 0, LastEpoch: 0,
		Selector:          events.NewCampaignSelector("nike.com", "shoes"),
		Function:          attribution.ScalarValue{Value: 10},
		Epsilon:           0.15,
		ReportSensitivity: 10,
		QuerySensitivity:  10,
		PNorm:             1,
	}
	rep1, _, err := dev.GenerateReport(req)
	if err != nil {
		t.Fatal(err)
	}
	svc := aggregation.NewService(stats.NewRNG(1))
	if _, err := svc.Execute([]*core.Report{rep1}); err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := dev.SaveBudgets(&snap); err != nil {
		t.Fatal(err)
	}
	restarted := core.NewDevice(1, db, 0.2, core.CookieMonsterPolicy{})
	if err := restarted.LoadBudgets(&snap); err != nil {
		t.Fatal(err)
	}
	// The epoch had 0.15 of 0.2 consumed; a second report must be denied.
	_, diag, err := restarted.GenerateReport(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.DeniedEpochs) != 1 {
		t.Fatalf("restart forgot consumption: denied = %v", diag.DeniedEpochs)
	}
	// Replaying the pre-restart report is still caught.
	if _, err := svc.Execute([]*core.Report{rep1}); err == nil {
		t.Fatal("replay accepted after restart")
	}
}

// TestExperimentDeterminism: the quick harnesses are bit-for-bit
// reproducible run to run.
func TestExperimentDeterminism(t *testing.T) {
	a, err := experiments.Fig7(experiments.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.Fig7(experiments.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range experiments.Fig7Variants {
		if a.AvgBudget[v] != b.AvgBudget[v] {
			t.Fatalf("%v: budgets differ across runs", v)
		}
	}
	ta, tb := a.Tables(), b.Tables()
	for i := range ta {
		if ta[i].Render() != tb[i].Render() {
			t.Fatalf("table %s differs across runs", ta[i].ID)
		}
	}
}
