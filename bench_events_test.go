package repro

import (
	"math/rand"
	"testing"

	"repro/internal/events"
)

// Event-store micro-benchmarks (run with `-bench=Hot`): the columnar arena
// layout and compiled selector scan against the pre-columnar map-of-slices
// layout, which lives on below as mapEventStore — a verbatim copy of the old
// store kept as the benchmark baseline. Results land in BENCH_events.json
// (see bench_hotpath_test.go's emitter); the acceptance bar for the columnar
// path is ≥2× lower ns/op at 0 allocs/op on the window scan.

// mapEventStore is the old storage layout: map[device] → map[epoch] →
// []Event, with the dense per-device index compiled at freeze. Selection
// goes through the Selector interface and the allocating events.Select —
// exactly the pre-refactor read path of core.RelevantWindow.
type mapEventStore struct {
	devices map[events.DeviceID]*mapDeviceStore
}

type mapDeviceStore struct {
	epochs  map[events.Epoch][]events.Event
	first   events.Epoch
	byEpoch [][]events.Event
}

func newMapEventStore() *mapEventStore {
	return &mapEventStore{devices: make(map[events.DeviceID]*mapDeviceStore)}
}

func (db *mapEventStore) record(epoch events.Epoch, ev events.Event) {
	ds := db.devices[ev.Device]
	if ds == nil {
		ds = &mapDeviceStore{epochs: make(map[events.Epoch][]events.Event)}
		db.devices[ev.Device] = ds
	}
	evs := ds.epochs[epoch]
	evs = append(evs, ev)
	// The old linear bubble insertion.
	for i := len(evs) - 1; i > 0 && evs[i].Before(evs[i-1]); i-- {
		evs[i], evs[i-1] = evs[i-1], evs[i]
	}
	ds.epochs[epoch] = evs
}

func (db *mapEventStore) freeze() {
	for _, ds := range db.devices {
		first, last, started := events.Epoch(0), events.Epoch(0), false
		for e := range ds.epochs {
			if !started || e < first {
				first = e
			}
			if !started || e > last {
				last = e
			}
			started = true
		}
		if !started {
			ds.byEpoch = [][]events.Event{}
			continue
		}
		ds.first = first
		ds.byEpoch = make([][]events.Event, int(last-first)+1)
		for e, evs := range ds.epochs {
			ds.byEpoch[e-first] = evs
		}
	}
}

func (db *mapEventStore) windowEventsInto(buf [][]events.Event, d events.DeviceID,
	first, last events.Epoch) [][]events.Event {
	k := int(last-first) + 1
	var out [][]events.Event
	if cap(buf) < k {
		out = make([][]events.Event, k)
	} else {
		out = buf[:k]
		for i := range out {
			out[i] = nil
		}
	}
	ds := db.devices[d]
	if ds == nil {
		return out
	}
	for e := first; e <= last; e++ {
		if i := int(e - ds.first); i >= 0 && i < len(ds.byEpoch) {
			out[e-first] = ds.byEpoch[i]
		}
	}
	return out
}

// scanFixtureEvents generates the shared benchmark trace: nDevices devices
// over 20 epochs, eventsPerRecord impressions per (device, epoch) spread
// across 10 campaigns of one advertiser, plus a conversion per device-epoch.
// The selector under test (campaign product-3 within a day window) matches
// ~10% of events, so scans exercise the partial-selection gather path.
func scanFixtureEvents(nDevices, eventsPerRecord int) []events.Event {
	const epochDays = 7
	rng := rand.New(rand.NewSource(42))
	var evs []events.Event
	id := events.EventID(0)
	for dev := 1; dev <= nDevices; dev++ {
		for e := 0; e < 20; e++ {
			for i := 0; i < eventsPerRecord; i++ {
				id++
				evs = append(evs, events.Event{
					ID:         id,
					Kind:       events.KindImpression,
					Device:     events.DeviceID(dev),
					Day:        e*epochDays + rng.Intn(epochDays),
					Publisher:  "pub.example",
					Advertiser: "nike.example",
					Campaign:   "product-" + string(rune('0'+rng.Intn(10))),
				})
			}
			id++
			evs = append(evs, events.Event{
				ID:         id,
				Kind:       events.KindConversion,
				Device:     events.DeviceID(dev),
				Day:        e*epochDays + rng.Intn(epochDays),
				Advertiser: "nike.example",
				Product:    "product-3",
				Value:      5,
			})
		}
	}
	return evs
}

func scanSelector() events.Selector {
	return events.WindowSelector{
		Inner:    events.ProductSelector{Advertiser: "nike.example", Product: "product-3"},
		FirstDay: 0,
		LastDay:  139,
	}
}

// BenchmarkHotWindowScan measures one report-sized relevance scan — a
// 20-epoch window of one device, compiled selector over the frozen columnar
// store, partial matches gathered into a reused arena. This is the storage
// half of the report hot path; the acceptance bar is ≥2× lower ns/op and 0
// allocs/op vs BenchmarkHotWindowScanMap.
func BenchmarkHotWindowScan(b *testing.B) {
	const nDevices = 64
	db := events.NewDatabase()
	db.RecordAll(7, scanFixtureEvents(nDevices, 8))
	db.Freeze()
	sel := scanSelector()
	var views []events.EventView
	arena := make([]events.Event, 0, 256)
	matched := 0
	dev := 0
	runHot(b, func() {
		m, ok := db.Compile(sel)
		if !ok {
			b.Fatal("selector did not compile")
		}
		dev++
		d := events.DeviceID(dev%nDevices + 1)
		views = db.WindowViewsInto(views, d, 0, 19)
		arena = arena[:0]
		for _, v := range views {
			evs := v.Events()
			for i, n := 0, v.Len(); i < n; i++ {
				if m.Match(v, i) {
					arena = append(arena, evs[i])
				}
			}
		}
		matched += len(arena)
	})
	if matched == 0 {
		b.Fatal("scan never matched")
	}
}

// BenchmarkHotWindowScanMap is the same scan on the old layout: dense-index
// window lookup, then the Selector interface per event with the allocating
// Select copy per epoch — the pre-refactor cost of core.RelevantWindow's
// selection step.
func BenchmarkHotWindowScanMap(b *testing.B) {
	const nDevices = 64
	db := newMapEventStore()
	for _, ev := range scanFixtureEvents(nDevices, 8) {
		db.record(events.EpochOfDay(ev.Day, 7), ev)
	}
	db.freeze()
	sel := scanSelector()
	var win [][]events.Event
	matched := 0
	dev := 0
	runHot(b, func() {
		dev++
		d := events.DeviceID(dev%nDevices + 1)
		win = db.windowEventsInto(win, d, 0, 19)
		for _, evs := range win {
			matched += len(events.Select(evs, sel))
		}
	})
	if matched == 0 {
		b.Fatal("scan never matched")
	}
}

// BenchmarkHotIngestSeal measures the full load-and-seal cycle on the
// columnar store: bulk-record a day-ordered 8-device-epoch trace, then
// Freeze into the arena layout. Cost is dominated by segment appends plus
// the one-shot columnar compile.
func BenchmarkHotIngestSeal(b *testing.B) {
	evs := scanFixtureEvents(32, 8)
	runHot(b, func() {
		db := events.NewDatabase()
		db.RecordAll(7, evs)
		db.Freeze()
		if db.NumEvents() != len(evs) {
			b.Fatal("lost events")
		}
	})
}

// BenchmarkHotIngestSealFrozen is the one-shot batch seal (events.NewFrozen,
// the Dataset.Build path): permutation sort plus a single gather straight
// into the columnar arena, no intermediate mutable store.
func BenchmarkHotIngestSealFrozen(b *testing.B) {
	evs := scanFixtureEvents(32, 8)
	runHot(b, func() {
		db := events.NewFrozen(7, evs)
		if db.NumEvents() != len(evs) {
			b.Fatal("lost events")
		}
	})
}

// BenchmarkHotIngestSealMap is the old layout's load-and-seal: per-event
// bubble insertion into the map of maps, then the dense-index build.
func BenchmarkHotIngestSealMap(b *testing.B) {
	evs := scanFixtureEvents(32, 8)
	runHot(b, func() {
		db := newMapEventStore()
		for _, ev := range evs {
			db.record(events.EpochOfDay(ev.Day, 7), ev)
		}
		db.freeze()
	})
}

// shuffledBatch is a deliberately out-of-order ingest batch concentrated on
// few records, the worst case for per-event insertion.
func shuffledBatch() []events.Event {
	evs := scanFixtureEvents(2, 64)
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
	return evs
}

// BenchmarkHotRecordShuffled is the out-of-order ingest regression
// benchmark: Record with binary-search insertion over a fully shuffled
// batch (O(n log n) compares per record).
func BenchmarkHotRecordShuffled(b *testing.B) {
	evs := shuffledBatch()
	runHot(b, func() {
		db := events.NewDatabase()
		for _, ev := range evs {
			db.Record(events.EpochOfDay(ev.Day, 7), ev)
		}
	})
}

// BenchmarkHotRecordShuffledMap is the same shuffled batch through the old
// linear bubble (O(n²) compares and whole-struct swaps per record).
func BenchmarkHotRecordShuffledMap(b *testing.B) {
	evs := shuffledBatch()
	runHot(b, func() {
		db := newMapEventStore()
		for _, ev := range evs {
			db.record(events.EpochOfDay(ev.Day, 7), ev)
		}
	})
}

// BenchmarkHotIngestSealFrozenReuse is the day-over-day variant of the batch
// seal: events.NewFrozenInto re-freezing into one reused FreezeScratch, the
// steady-state cost of rebuilding a frozen store every day without paying the
// arena allocations again.
func BenchmarkHotIngestSealFrozenReuse(b *testing.B) {
	evs := scanFixtureEvents(32, 8)
	var sc events.FreezeScratch
	runHot(b, func() {
		db := events.NewFrozenInto(&sc, 7, evs)
		if db.NumEvents() != len(evs) {
			b.Fatal("lost events")
		}
	})
}
