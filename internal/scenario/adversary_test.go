package scenario

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/workload"
)

// The adversarial-querier property suite: whatever the attacker's
// parameters, the on-device ledger must hold two lines. (1) Safety — no
// (querier, epoch) filter is ever pushed past its capacity; the attacker can
// drain its own lane to the brim and no further. (2) Isolation — the honest
// queriers' lanes, and their query results' deterministic fields, are
// bit-identical to a run with no attacker at all.

// attackVariants spans the attack surface: the calibrated per-query ε grows
// from a small flood (many grants before saturation) through near-capacity
// (a couple of grants then denial) to over-capacity (every charge denied).
// With the micro workload's calibration (α=0.05, β=0.01) and EpsilonG = 2,
// ε = ln(100)/(0.05·B·c̃) · Δ.
func attackVariants() []AdversarySpec {
	return []AdversarySpec{
		// ε ≈ 0.23: flood of cheap queries.
		{Site: "attacker.example", TargetDevices: 6, ConversionsPerDay: 8,
			BatchSize: 200, MaxValue: 1, AvgReportValue: 2},
		// ε ≈ 0.92: the catalog's near-capacity drain.
		{Site: "attacker.example", TargetDevices: 6, ConversionsPerDay: 4,
			BatchSize: 50, MaxValue: 1, AvgReportValue: 2},
		// ε ≈ 1.84: one grant per epoch lane, then denial.
		{Site: "attacker.example", TargetDevices: 6, ConversionsPerDay: 12,
			BatchSize: 25, MaxValue: 1, AvgReportValue: 2},
		// ε ≈ 9.21 > EpsilonG: every single charge denied.
		{Site: "attacker.example", TargetDevices: 6, ConversionsPerDay: 4,
			BatchSize: 10, MaxValue: 1, AvgReportValue: 1},
	}
}

// honestRows collects each device's ledger rows for queriers other than the
// attacker, keyed so two runs can be compared exactly.
type rowKey struct {
	dev   events.DeviceID
	q     events.Site
	epoch events.Epoch
}

func honestRows(run *workload.Run, attacker events.Site) map[rowKey]float64 {
	rows := make(map[rowKey]float64)
	run.RangeDevices(func(d *core.Device) bool {
		for _, r := range d.Ledger() {
			if r.Querier == attacker {
				continue
			}
			rows[rowKey{d.ID(), r.Querier, r.Epoch}] = r.Consumed
		}
		return true
	})
	return rows
}

// execSpec runs a spec's streaming workload at parallelism 4.
func execSpec(t *testing.T, h Harness, sp Spec) *workload.Run {
	t.Helper()
	run, err := workload.ExecuteSource(h.streamCfg(4), sp.Source(h.Dataset))
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestAdversaryNeverExceedsCapacity(t *testing.T) {
	h := newHarness(t)
	for i, adv := range attackVariants() {
		adv := adv
		t.Run(fmt.Sprintf("variant-%d", i), func(t *testing.T) {
			sp := Spec{Name: fmt.Sprintf("attack-%d", i), Seed: 100 + uint64(i), Adversary: &adv}
			run := execSpec(t, h, sp)
			run.RangeDevices(func(d *core.Device) bool {
				for _, r := range d.Ledger() {
					if r.Consumed > r.Capacity*(1+1e-9) {
						t.Errorf("device %d: %s epoch %d consumed %g > capacity %g",
							d.ID(), r.Querier, r.Epoch, r.Consumed, r.Capacity)
					}
				}
				return true
			})
		})
	}
}

func TestAdversaryLedgerIsolation(t *testing.T) {
	h := newHarness(t)
	cleanRun := execSpec(t, h, Spec{Name: "isolation-clean", Seed: 1})
	wantRows := honestRows(cleanRun, "")

	for i, adv := range attackVariants() {
		adv := adv
		t.Run(fmt.Sprintf("variant-%d", i), func(t *testing.T) {
			sp := Spec{Name: fmt.Sprintf("attack-%d", i), Seed: 100 + uint64(i), Adversary: &adv}
			run := execSpec(t, h, sp)

			// Honest lanes: exactly the clean run's, bit for bit.
			got := honestRows(run, adv.Site)
			if len(got) != len(wantRows) {
				t.Errorf("honest ledger rows: %d under attack, %d clean", len(got), len(wantRows))
			}
			for k, want := range wantRows {
				if gotC, ok := got[k]; !ok || gotC != want {
					t.Errorf("device %d %s epoch %d: consumed %v under attack, %v clean",
						k.dev, k.q, k.epoch, gotC, want)
				}
			}

			// Honest results: the non-attacker subsequence of the schedule
			// must match the clean run query for query on every field not
			// fed by the shared noise stream (whose draws the attacker's
			// interleaved queries legitimately shift).
			var honest []workload.QueryResult
			for _, res := range run.Results {
				if res.Querier != adv.Site {
					honest = append(honest, res)
				}
			}
			if len(honest) != len(cleanRun.Results) {
				t.Fatalf("honest queries: %d under attack, %d clean", len(honest), len(cleanRun.Results))
			}
			for j, res := range honest {
				want := cleanRun.Results[j]
				if res.Querier != want.Querier || res.Product != want.Product ||
					res.Batch != want.Batch || res.Epsilon != want.Epsilon ||
					res.Executed != want.Executed || res.Truth != want.Truth ||
					res.DeniedReports != want.DeniedReports ||
					res.BiasedReports != want.BiasedReports ||
					res.FirstEpoch != want.FirstEpoch || res.LastEpoch != want.LastEpoch {
					t.Errorf("honest query %d diverged under attack:\n%+v\n%+v", j, res, want)
				}
			}
		})
	}
}

func TestAdversaryDrainAndDenial(t *testing.T) {
	h := newHarness(t)
	clean := execSpec(t, h, Spec{Name: "drain-clean", Seed: 1})
	cleanDenials := clean.BudgetDenials()

	variants := attackVariants()
	for i, adv := range variants {
		adv := adv
		over := i == len(variants)-1 // the ε > EpsilonG variant
		t.Run(fmt.Sprintf("variant-%d", i), func(t *testing.T) {
			sp := Spec{Name: fmt.Sprintf("attack-%d", i), Seed: 100 + uint64(i), Adversary: &adv}
			run := execSpec(t, h, sp)
			consumed := run.ConsumedByQuerier()[adv.Site]
			switch {
			case over:
				// Requests beyond capacity are denied outright and consume
				// nothing — the attacker cannot even fill its own lane.
				if consumed != 0 {
					t.Errorf("over-capacity attacker consumed %v, want 0", consumed)
				}
			default:
				if consumed <= 0 {
					t.Error("attacker consumed nothing; the attack variant is toothless")
				}
			}
			if run.BudgetDenials() <= cleanDenials {
				t.Errorf("attack denials %d not above clean %d", run.BudgetDenials(), cleanDenials)
			}
			// Drained or denied, the attacker must not move honest totals.
			for q, eps := range clean.ConsumedByQuerier() {
				if got := run.ConsumedByQuerier()[q]; got != eps || math.IsNaN(got) {
					t.Errorf("querier %s consumed %v under attack, %v clean", q, got, eps)
				}
			}
		})
	}
}
