package scenario

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/figures"
	"repro/internal/stream"
)

// newHarness builds the default harness; under -short the crash matrix
// samples three representative fault points and two parallelism levels
// instead of the full grid.
func newHarness(t *testing.T) Harness {
	t.Helper()
	h, err := DefaultHarness()
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		h.Parallelisms = []int{1, 4}
		h.FaultPoints = []stream.FaultPoint{
			stream.PointEventIngested,
			stream.PointQueryExecuted,
			stream.PointSnapshotCommitted,
		}
	}
	return h
}

// goldenDigest reads the committed digest for the named workload.
func goldenDigest(t *testing.T, name string) string {
	t.Helper()
	path, err := figures.GoldenDigestsPath()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var digests map[string]string
	if err := json.Unmarshal(raw, &digests); err != nil {
		t.Fatal(err)
	}
	d, ok := digests[name]
	if !ok {
		t.Fatalf("no golden digest for %q", name)
	}
	return d
}

// TestScenarioCatalog drives the full catalog through the robustness
// harness. Harness.Run itself enforces the hard properties — batch-vs-stream
// bit-equivalence at every parallelism, admission counters matching the pure
// rule, crash→resume bit-identity at every fault point — so this test's own
// assertions are about the catalog: the clean scenario must still produce
// the golden digest (hostile-traffic support cannot move clean results), and
// each perturbation must actually bite (drops where late traffic exists,
// budget drain where the adversary runs).
//
// Set SCENARIO_REPORT=1 to also write BENCH_scenarios.json at the module
// root — the artifact CI uploads.
func TestScenarioCatalog(t *testing.T) {
	h := newHarness(t)
	report := os.Getenv("SCENARIO_REPORT") != ""
	h.MeasureHeap = report

	reports, err := h.RunCatalog(Catalog())
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*Report, len(reports))
	for _, rep := range reports {
		byName[rep.Name] = rep
		if !rep.EquivalentToBatch || !rep.CrashResumeIdentical {
			t.Errorf("%s: verdicts %v/%v", rep.Name, rep.EquivalentToBatch, rep.CrashResumeIdentical)
		}
		if want := len(h.faultPoints()); rep.CrashPointsTested != want {
			t.Errorf("%s: tested %d crash points, want %d", rep.Name, rep.CrashPointsTested, want)
		}
		if rep.EventsAdmitted+rep.EventsDropped != rep.EventsDelivered {
			t.Errorf("%s: admitted %d + dropped %d != delivered %d",
				rep.Name, rep.EventsAdmitted, rep.EventsDropped, rep.EventsDelivered)
		}
	}

	clean := byName["clean"]
	if clean == nil {
		t.Fatal("catalog has no clean scenario")
	}
	if want := goldenDigest(t, "cookie-monster"); clean.Digest != want {
		t.Errorf("clean scenario digest %s diverged from golden %s", clean.Digest, want)
	}
	if clean.AccuracyVsClean != 1 {
		t.Errorf("clean accuracy ratio = %v, want 1", clean.AccuracyVsClean)
	}

	// Which scenarios must drop traffic, and which must not.
	wantDrops := map[string]bool{
		"clean": false, "flash-crowd": false, "device-churn": false,
		"adversarial-querier": false,
		"late-events":         true, "clock-skew": true, "clock-skew-forward": true,
	}
	for name, drops := range wantDrops {
		rep := byName[name]
		if rep == nil {
			t.Errorf("catalog lost scenario %s", name)
			continue
		}
		if drops && rep.EventsDropped == 0 {
			t.Errorf("%s: expected drops, got none", name)
		}
		if !drops && rep.EventsDropped != 0 {
			t.Errorf("%s: unexpected drops: %d", name, rep.EventsDropped)
		}
	}

	// The adversary must drain real budget into its own lane — and only its
	// own lane: the honest querier's total is bit-identical to clean.
	adv := byName["adversarial-querier"]
	if adv == nil {
		t.Fatal("catalog lost the adversarial-querier scenario")
	}
	attacker := "attacker.example"
	if adv.ConsumedEpsilon[attacker] <= 0 {
		t.Error("adversary consumed nothing; the drain has no teeth")
	}
	if adv.LedgerDenials <= clean.LedgerDenials {
		t.Errorf("adversary denials %d not above clean %d", adv.LedgerDenials, clean.LedgerDenials)
	}
	for q, eps := range clean.ConsumedEpsilon {
		if adv.ConsumedEpsilon[q] != eps {
			t.Errorf("honest querier %s consumed %v under attack, %v clean", q, adv.ConsumedEpsilon[q], eps)
		}
	}

	// Accuracy ratios are finite and populated for every executed scenario.
	for _, rep := range reports {
		if rep.QueriesExecuted > 0 && (rep.AccuracyVsClean <= 0 || math.IsNaN(rep.AccuracyVsClean)) {
			t.Errorf("%s: accuracy ratio %v", rep.Name, rep.AccuracyVsClean)
		}
	}

	if report {
		path := filepath.Join(moduleRoot(t), "BENCH_scenarios.json")
		if err := WriteBench(path, reports); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
	}
}

// moduleRoot walks up from the package directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		dir = filepath.Dir(dir)
	}
	t.Fatal("go.mod not found above the working directory")
	return ""
}

// TestScenarioReproducible pins the catalog's determinism contract: two
// sources built from the same (spec, base) pair deliver identical event
// sequences, and the admission oracle over them agrees event for event.
func TestScenarioReproducible(t *testing.T) {
	h := newHarness(t)
	for _, sp := range Catalog() {
		a, b := sp.Source(h.Dataset), sp.Source(h.Dataset)
		n := 0
		for {
			ea, oka := a.Next()
			eb, okb := b.Next()
			if oka != okb {
				t.Fatalf("%s: sources diverged in length at %d", sp.Name, n)
			}
			if !oka {
				break
			}
			if ea != eb {
				t.Fatalf("%s: event %d diverged:\n%+v\n%+v", sp.Name, n, ea, eb)
			}
			n++
		}
		if n == 0 {
			t.Fatalf("%s: empty source", sp.Name)
		}
	}
}

// TestScenarioMetaConsistent checks each perturbation's metadata story: the
// delivered population covers every device ID seen, and injected-adversary
// specs surface the attacker as a querier.
func TestScenarioMetaConsistent(t *testing.T) {
	h := newHarness(t)
	for _, sp := range Catalog() {
		src := sp.Source(h.Dataset)
		m := src.Meta()
		maxDev := 0
		for {
			ev, ok := src.Next()
			if !ok {
				break
			}
			if int(ev.Device) > maxDev {
				maxDev = int(ev.Device)
			}
			if ev.Day < 0 || ev.Day >= m.DurationDays {
				t.Errorf("%s: event day %d outside trace [0, %d)", sp.Name, ev.Day, m.DurationDays)
			}
		}
		if maxDev > m.PopulationDevices {
			t.Errorf("%s: device %d beyond declared population %d", sp.Name, maxDev, m.PopulationDevices)
		}
		if sp.Adversary != nil {
			found := false
			for _, adv := range m.Advertisers {
				if adv.Site == sp.Adversary.Site {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: attacker absent from metadata queriers", sp.Name)
			}
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	h := newHarness(t)
	bad := []Spec{
		{},
		{Name: "x", Burst: &BurstSpec{Day: -1, Events: 10}},
		{Name: "x", Burst: &BurstSpec{Day: 0, Events: 0}},
		{Name: "x", Burst: &BurstSpec{Day: 0, Events: 1, Advertiser: 99}},
		{Name: "x", Late: &LateSpec{Fraction: 1.5, DelayDays: 1}},
		{Name: "x", Late: &LateSpec{Fraction: 0.5, DelayDays: 0}},
		{Name: "x", Churn: &ChurnSpec{Fraction: -0.1}},
		{Name: "x", Skew: &SkewSpec{Fraction: 0.5, MaxSkewDays: 0}},
		{Name: "x", Adversary: &AdversarySpec{}},
	}
	for i, sp := range bad {
		if err := sp.Validate(h.Dataset); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, sp)
		}
	}
	for _, sp := range Catalog() {
		if err := sp.Validate(h.Dataset); err != nil {
			t.Errorf("catalog spec %s rejected: %v", sp.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("flash-crowd"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
