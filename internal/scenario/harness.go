package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/metrics"
	"slices"
	"time"

	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/figures"
	"repro/internal/stream"
	"repro/internal/workload"
)

// Harness drives scenarios through the robustness properties: for each spec
// it computes the admitted-event batch oracle, checks the streaming run
// against it bit for bit at several parallelism levels, runs the crash
// matrix (crash at each fault point mid-run, resume, compare digests), and
// collects the degradation report.
type Harness struct {
	// Dataset is the clean base trace every scenario perturbs.
	Dataset *dataset.Dataset
	// Config carries the scenario-independent workload knobs (system,
	// budgets, seed). Its Dataset, Parallelism, DropLate and checkpoint
	// fields are managed per run by the harness.
	Config workload.Config
	// Parallelisms are the worker counts the equivalence check runs at.
	// Nil selects {1, 4, GOMAXPROCS}.
	Parallelisms []int
	// FaultPoints is the crash matrix. Nil selects every stream.Point;
	// tests under -short sample a subset.
	FaultPoints []stream.FaultPoint
	// SnapshotEveryDays is the checkpoint cadence for the crash runs
	// (0 selects 14, the crash-recovery suite's cadence).
	SnapshotEveryDays int
	// MeasureHeap samples live heap bytes around one streaming run and
	// reports the peak growth. Off by default: the sampler perturbs
	// timing-sensitive callers.
	MeasureHeap bool
}

// DefaultHarness returns the harness the catalog tests, the CLI and the CI
// smoke job share: the figures catalog's "cookie-monster" microbenchmark
// workload, whose clean streaming digest is already pinned by the golden
// fixtures.
func DefaultHarness() (Harness, error) {
	w, err := figures.ByName("cookie-monster")
	if err != nil {
		return Harness{}, err
	}
	cfg, err := w.Config()
	if err != nil {
		return Harness{}, err
	}
	return Harness{Dataset: cfg.Dataset, Config: cfg}, nil
}

// Report is one scenario's robustness outcome — the BENCH_scenarios.json
// row. Counters come from the streaming run, accuracy from its executed
// queries, and the two verdict booleans from the equivalence and crash
// checks.
type Report struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Seed        uint64 `json:"seed"`

	// Admission: delivered = admitted + dropped.
	EventsDelivered int `json:"eventsDelivered"`
	EventsAdmitted  int `json:"eventsAdmitted"`
	EventsDropped   int `json:"eventsDropped"`

	// Query outcomes and budget drain.
	Queries         int                `json:"queries"`
	QueriesExecuted int                `json:"queriesExecuted"`
	DeniedReports   int                `json:"deniedReports"`
	LedgerDenials   uint64             `json:"ledgerDenials"`
	ConsumedEpsilon map[string]float64 `json:"consumedEpsilon"`
	TotalEpsilon    float64            `json:"totalEpsilon"`

	// Accuracy: mean realized RMSRE over executed honest queries, and its
	// ratio to the clean baseline's (1 = parity; 0 until RunCatalog fills
	// it in).
	MeanRMSRE       float64 `json:"meanRMSRE"`
	AccuracyVsClean float64 `json:"accuracyVsClean"`

	// PeakHeapBytes is the peak live-heap growth over the post-GC
	// baseline during one streaming run (0 unless Harness.MeasureHeap).
	PeakHeapBytes uint64 `json:"peakHeapBytes"`

	// Verdicts.
	Parallelisms         []int  `json:"parallelisms"`
	EquivalentToBatch    bool   `json:"equivalentToBatch"`
	CrashPointsTested    int    `json:"crashPointsTested"`
	CrashResumeIdentical bool   `json:"crashResumeIdentical"`
	Digest               string `json:"digest"`
}

// errInjected is the sentinel the crash matrix's fault hooks return.
var errInjected = errors.New("scenario: injected crash")

// Small group-commit and base-compaction knobs for the checkpointed runs,
// so every durability fault point (group-commit, delta-captured,
// base-compacted) fires several times per scenario and the crash matrix
// covers them. The counting run and every crash/resume run must share
// these: the matrix crashes at firing counts measured on the counting run.
const (
	durableGroupCommitEvents = 64
	durableBaseEveryDeltas   = 2
)

// streamCfg is the per-run streaming configuration: fresh Dataset-free
// config (metadata comes from the scenario source), drop-late admission, the
// requested parallelism.
func (h Harness) streamCfg(p int) workload.Config {
	cfg := h.Config
	cfg.Dataset = nil
	cfg.DropLate = true
	cfg.Parallelism = p
	cfg.CheckpointDir = ""
	cfg.SnapshotEveryDays = 0
	cfg.Resume = false
	cfg.FaultHook = nil
	return cfg
}

func (h Harness) parallelisms() []int {
	if len(h.Parallelisms) > 0 {
		return h.Parallelisms
	}
	ps := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		ps = append(ps, n)
	}
	return ps
}

func (h Harness) faultPoints() []stream.FaultPoint {
	if len(h.FaultPoints) > 0 {
		return h.FaultPoints
	}
	return stream.Points
}

func (h Harness) snapshotCadence() int {
	if h.SnapshotEveryDays > 0 {
		return h.SnapshotEveryDays
	}
	return 14
}

// Run drives one scenario through every property and returns its report. A
// property violation (stream diverging from the batch oracle, a resume
// diverging from the uninterrupted run, counter mismatches) is returned as
// an error, not a report row: the harness's promise is that a returned
// report describes a run on which every invariant held.
func (h Harness) Run(spec Spec) (*Report, error) {
	if err := spec.Validate(h.Dataset); err != nil {
		return nil, err
	}

	// The batch oracle: materialize the admission rule's verdicts, then
	// run the batch engine — an independent implementation with no day
	// clock — over the admitted events.
	admitted, dropped := Admitted(spec.Source(h.Dataset))
	batchCfg := h.Config
	batchCfg.Dataset = admitted
	batchCfg.Parallelism = 1
	batchCfg.DropLate = false
	ref, err := workload.Execute(batchCfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: batch oracle: %w", spec.Name, err)
	}
	want := ref.CanonicalDigest()

	rep := &Report{
		Name:            spec.Name,
		Description:     spec.Description,
		Seed:            spec.Seed,
		EventsDelivered: len(admitted.Events) + dropped,
		EventsAdmitted:  len(admitted.Events),
		EventsDropped:   dropped,
		Parallelisms:    h.parallelisms(),
		Digest:          want,
	}

	// Equivalence: the streaming run over the full perturbed source must
	// match the oracle bit for bit at every parallelism, and its admission
	// counters must match the pure rule's.
	var run *workload.Run
	for i, p := range rep.Parallelisms {
		measure := h.MeasureHeap && i == len(rep.Parallelisms)-1
		r, peak, err := h.oneStreamRun(spec, p, measure)
		if err != nil {
			return nil, err
		}
		if got := r.CanonicalDigest(); got != want {
			return nil, fmt.Errorf(
				"scenario %s: stream(parallelism=%d) diverged from batch oracle: %s != %s",
				spec.Name, p, got, want)
		}
		if r.EventsIngested != rep.EventsDelivered || r.EventsDropped != dropped {
			return nil, fmt.Errorf(
				"scenario %s: admission counters diverged: service drained %d dropped %d, rule says %d/%d",
				spec.Name, r.EventsIngested, r.EventsDropped, rep.EventsDelivered, dropped)
		}
		if measure {
			rep.PeakHeapBytes = peak
		}
		run = r
	}
	rep.EquivalentToBatch = true

	// Crash matrix: count each fault point's firings in one checkpointed
	// (uninterrupted) run, then crash mid-run at every point and require
	// the resumed run to reproduce the oracle digest exactly.
	counts, err := h.countFaultPoints(spec, want)
	if err != nil {
		return nil, err
	}
	for _, pt := range h.faultPoints() {
		n := counts[pt]
		if n == 0 {
			return nil, fmt.Errorf("scenario %s: fault point %s never fired", spec.Name, pt)
		}
		if err := h.crashAndResume(spec, pt, (n+1)/2, want); err != nil {
			return nil, err
		}
		rep.CrashPointsTested++
	}
	rep.CrashResumeIdentical = true

	// Degradation numbers from the (equivalence-checked) streaming run.
	rep.Queries = len(run.Results)
	for _, res := range run.Results {
		if res.Executed {
			rep.QueriesExecuted++
		}
		rep.DeniedReports += res.DeniedReports
	}
	rep.LedgerDenials = run.BudgetDenials()
	rep.ConsumedEpsilon = make(map[string]float64)
	queriers := make([]string, 0, len(rep.ConsumedEpsilon))
	for q, eps := range run.ConsumedByQuerier() {
		rep.ConsumedEpsilon[string(q)] = eps
		queriers = append(queriers, string(q))
	}
	slices.Sort(queriers) // deterministic float summation order
	for _, q := range queriers {
		rep.TotalEpsilon += rep.ConsumedEpsilon[q]
	}
	var attacker events.Site
	if spec.Adversary != nil {
		attacker = spec.Adversary.Site
	}
	rep.MeanRMSRE = meanHonestRMSRE(run, attacker)
	return rep, nil
}

// meanHonestRMSRE averages the realized RMSRE of executed queries, excluding
// the attacker's own queries (whose accuracy is not a degradation signal).
func meanHonestRMSRE(run *workload.Run, attacker events.Site) float64 {
	sum, n := 0.0, 0
	for _, res := range run.Results {
		if !res.Executed || (attacker != "" && res.Querier == attacker) {
			continue
		}
		sum += res.RMSRE
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// oneStreamRun executes the scenario's streaming run at one parallelism,
// optionally sampling peak heap growth around it.
func (h Harness) oneStreamRun(spec Spec, parallelism int, measure bool) (*workload.Run, uint64, error) {
	var run *workload.Run
	var err error
	body := func() {
		run, err = workload.ExecuteSource(h.streamCfg(parallelism), spec.Source(h.Dataset))
	}
	var peak uint64
	if measure {
		peak = peakHeapDuring(body)
	} else {
		body()
	}
	if err != nil {
		return nil, 0, fmt.Errorf("scenario %s: stream(parallelism=%d): %w", spec.Name, parallelism, err)
	}
	return run, peak, nil
}

// countFaultPoints runs the scenario once, checkpointed and uninterrupted,
// counting how often each fault point fires — the denominators the crash
// matrix uses to crash mid-run rather than at a trivial first firing. The
// run doubles as the "durability does not perturb results" check.
func (h Harness) countFaultPoints(spec Spec, want string) (map[stream.FaultPoint]int, error) {
	dir, err := os.MkdirTemp("", "scenario-count-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	counts := make(map[stream.FaultPoint]int)
	cfg := h.streamCfg(4)
	cfg.CheckpointDir = dir
	cfg.SnapshotEveryDays = h.snapshotCadence()
	cfg.GroupCommitEvents = durableGroupCommitEvents
	cfg.BaseEveryDeltas = durableBaseEveryDeltas
	cfg.FaultHook = func(p stream.FaultPoint) error {
		counts[p]++
		return nil
	}
	run, err := workload.ExecuteSource(cfg, spec.Source(h.Dataset))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: checkpointed run: %w", spec.Name, err)
	}
	if got := run.CanonicalDigest(); got != want {
		return nil, fmt.Errorf("scenario %s: checkpointed run diverged from oracle", spec.Name)
	}
	return counts, nil
}

// crashAndResume kills the scenario's streaming run at the at-th firing of
// point, resumes from the checkpoint directory, and requires the completed
// resumed run to match the batch oracle digest bit for bit.
func (h Harness) crashAndResume(spec Spec, point stream.FaultPoint, at int, want string) error {
	dir, err := os.MkdirTemp("", "scenario-crash-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	seen := 0
	cfg := h.streamCfg(4)
	cfg.CheckpointDir = dir
	cfg.SnapshotEveryDays = h.snapshotCadence()
	cfg.GroupCommitEvents = durableGroupCommitEvents
	cfg.BaseEveryDeltas = durableBaseEveryDeltas
	cfg.FaultHook = func(p stream.FaultPoint) error {
		if p == point {
			seen++
			if seen == at {
				return errInjected
			}
		}
		return nil
	}
	_, err = workload.ExecuteSource(cfg, spec.Source(h.Dataset))
	switch {
	case err == nil:
		return fmt.Errorf("scenario %s: crash at %s#%d did not fire", spec.Name, point, at)
	case !errors.Is(err, errInjected):
		return fmt.Errorf("scenario %s: crash run at %s#%d: %w", spec.Name, point, at, err)
	}

	rcfg := h.streamCfg(4)
	rcfg.CheckpointDir = dir
	rcfg.SnapshotEveryDays = h.snapshotCadence()
	rcfg.GroupCommitEvents = durableGroupCommitEvents
	rcfg.BaseEveryDeltas = durableBaseEveryDeltas
	rcfg.Resume = true
	run, err := workload.ExecuteSource(rcfg, spec.Source(h.Dataset))
	if err != nil {
		return fmt.Errorf("scenario %s: resume after %s#%d: %w", spec.Name, point, at, err)
	}
	if got := run.CanonicalDigest(); got != want {
		return fmt.Errorf("scenario %s: resume after %s#%d diverged: %s != %s",
			spec.Name, point, at, got, want)
	}
	return nil
}

// RunCatalog runs every spec and fills in each report's accuracy-vs-clean
// ratio from the catalog's clean baseline (the spec with no perturbations).
func (h Harness) RunCatalog(specs []Spec) ([]*Report, error) {
	reports := make([]*Report, 0, len(specs))
	var clean *Report
	for _, sp := range specs {
		rep, err := h.Run(sp)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
		if clean == nil && sp.Burst == nil && sp.Late == nil && sp.Churn == nil &&
			sp.Skew == nil && sp.Adversary == nil {
			clean = rep
		}
	}
	if clean != nil && clean.MeanRMSRE > 0 {
		for _, rep := range reports {
			rep.AccuracyVsClean = rep.MeanRMSRE / clean.MeanRMSRE
		}
	}
	return reports, nil
}

// benchFile is the BENCH_scenarios.json shape, mirroring the other bench
// artifacts' envelope.
type benchFile struct {
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	GoVersion string    `json:"go"`
	Scenarios []*Report `json:"scenarios"`
}

// WriteBench writes the scenario reports as the machine-readable
// BENCH_scenarios.json artifact CI uploads next to the hotpath and event
// benches.
func WriteBench(path string, reports []*Report) error {
	out, err := json.MarshalIndent(benchFile{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		GoVersion: runtime.Version(),
		Scenarios: reports,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// peakHeapDuring runs fn with a background sampler watching live heap bytes
// (runtime/metrics) and returns the peak growth over the post-GC baseline —
// the same measurement as the repository's streaming memory guard.
func peakHeapDuring(fn func()) uint64 {
	runtime.GC()
	sample := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(sample)
	baseline := sample[0].Value.Uint64()
	peak := baseline
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
		for {
			select {
			case <-stop:
				return
			default:
				metrics.Read(s)
				if v := s[0].Value.Uint64(); v > peak {
					peak = v
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	fn()
	close(stop)
	<-done
	if peak < baseline {
		return 0
	}
	return peak - baseline
}
