// Package scenario is the hostile-traffic catalog: named, seeded,
// parameterized perturbations that wrap any dataset.Source and reshape its
// clean, day-ordered event stream into the traffic a production
// ad-measurement service actually receives — flash-crowd bursts, late and
// out-of-order deliveries, device churn, clock-skewed sources, and
// adversarial queriers that spam high-ε requests to drain device budgets.
//
// Every spec is deterministic: the same (spec, base dataset) pair produces
// the same event sequence byte for byte, so a scenario run is as
// reproducible as a clean one. The harness (harness.go) drives each spec
// through the properties the repository already enforces on clean traffic —
// batch-vs-stream bit-equivalence at several parallelism levels and the
// crash matrix's crash→resume bit-identity — and reports the degradation
// numbers (events dropped, budget drained, accuracy vs the clean baseline,
// peak heap) that make robustness measurable. DESIGN.md §11 documents the
// spec format and the invariants, and how to add a scenario.
package scenario

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/events"
)

// Spec is one named scenario: a seed plus at most a handful of perturbation
// layers applied over the base dataset's day-ordered stream. A Spec with no
// layers is the clean identity scenario. The zero value of each layer
// pointer means "not applied"; layers compose in a fixed order (churn, skew,
// burst, adversary, delay) so a spec's event sequence is a pure function of
// (spec, base).
type Spec struct {
	// Name identifies the scenario in reports and the -scenario flag.
	Name string
	// Description is the one-line catalog entry.
	Description string
	// Seed drives every random choice the perturbations make,
	// independently of the base dataset's own generation seed.
	Seed uint64

	// Burst injects a flash-crowd impression spike on one campaign.
	Burst *BurstSpec
	// Late re-delivers a fraction of events after their day has closed.
	Late *LateSpec
	// Churn makes a fraction of devices leave mid-trace and rejoin with
	// fresh identities.
	Churn *ChurnSpec
	// Skew stamps a fraction of devices' events with a shifted day.
	Skew *SkewSpec
	// Adversary adds a hostile querier that floods target devices with
	// high-ε measurement traffic.
	Adversary *AdversarySpec
}

// BurstSpec is a flash crowd: Events extra impressions for one advertiser's
// campaign, all on one day, spread across seeded random devices. A 1000×
// spike over the microbenchmark's ~50 impressions/day is Events ≈ 50000.
type BurstSpec struct {
	// Day is the burst day.
	Day int
	// Events is the number of injected impressions.
	Events int
	// Advertiser indexes the base dataset's advertiser whose first
	// product's campaign receives the burst.
	Advertiser int
}

// LateSpec delays a seeded fraction of events: each held event is
// re-delivered DelayDays later in the stream while keeping its original day
// stamp, so it arrives after its day has closed and the service's admission
// policy must deal with it.
type LateSpec struct {
	// Fraction of events held back, in [0, 1].
	Fraction float64
	// DelayDays is how many stream-days late the held events re-deliver.
	DelayDays int
}

// ChurnSpec is device churn: a seeded fraction of devices leave the
// population mid-trace (at a per-device day in the middle half of the trace)
// and their remaining traffic re-appears under fresh device identities —
// fresh budgets, no history — appended to the population.
type ChurnSpec struct {
	// Fraction of devices that churn, in [0, 1].
	Fraction float64
}

// SkewSpec is clock skew: a seeded fraction of devices stamp their events
// with a day shifted by up to MaxSkewDays. Backward skew (the default) makes
// those devices' events arrive after their stamped day closed, so they are
// dropped; Forward skew advances the service's day clock prematurely, which
// drops honest same-day traffic delivered after the skewed events — the
// blast radius is other devices' data, not the skewed device's.
type SkewSpec struct {
	// Fraction of devices with skewed clocks, in [0, 1].
	Fraction float64
	// MaxSkewDays bounds the per-device shift (each skewed device gets a
	// shift in [1, MaxSkewDays]).
	MaxSkewDays int
	// Forward selects fast clocks (stamps in the future) instead of slow
	// ones.
	Forward bool
}

// AdversarySpec is a budget-drain attacker: a new querier, not part of the
// base dataset, that plants impressions on a set of target devices and then
// streams conversions whose calibrated ε is a large share of the per-epoch
// capacity — the fastest legal way to exhaust the targets' budget for
// itself. The ledger keeps per-querier filters, so the attack saturates only
// the attacker's own lanes; the property tests (adversary_test.go) pin that
// isolation down.
type AdversarySpec struct {
	// Site is the attacker's querier origin.
	Site events.Site
	// TargetDevices is how many devices (IDs 1..TargetDevices) the
	// attacker floods.
	TargetDevices int
	// ConversionsPerDay is the attacker's daily conversion volume,
	// round-robin across the targets.
	ConversionsPerDay int
	// BatchSize, MaxValue and AvgReportValue are the attacker's
	// advertiser parameters; together with the run's calibration they set
	// the per-query ε the attacker requests.
	BatchSize      int
	MaxValue       float64
	AvgReportValue float64
}

// Source returns the scenario's event stream over the base dataset: the
// base's day-ordered stream with the spec's perturbation layers applied, and
// event IDs renumbered sequentially in delivery order. The renumbering makes
// (Day, ID) order coincide with delivery order on every day-monotonic
// subsequence — in particular on the admitted subsequence — which is what
// lets a batch run over the admitted events serve as the streaming run's
// bit-equivalence oracle (see Admitted).
//
// Each call builds a fresh, independent source producing the identical
// sequence; crash-recovery runs rely on that reproducibility.
func (sp Spec) Source(base *dataset.Dataset) dataset.Source {
	var src dataset.Source = base.Stream()
	if sp.Churn != nil {
		src = newChurnSource(src, *sp.Churn, sp.Seed)
	}
	if sp.Skew != nil {
		src = newSkewSource(src, *sp.Skew, sp.Seed)
	}
	if sp.Burst != nil {
		src = newBurstSource(src, *sp.Burst, sp.Seed)
	}
	if sp.Adversary != nil {
		src = newAdversarySource(src, *sp.Adversary, sp.Seed)
	}
	if sp.Late != nil {
		src = newDelaySource(src, *sp.Late, sp.Seed)
	}
	return &renumberSource{base: src}
}

// Validate checks the spec's parameters against a base dataset.
func (sp Spec) Validate(base *dataset.Dataset) error {
	if sp.Name == "" {
		return fmt.Errorf("scenario: spec without a name")
	}
	if b := sp.Burst; b != nil {
		if b.Events <= 0 || b.Day < 0 || b.Day >= base.DurationDays {
			return fmt.Errorf("scenario %s: burst of %d events on day %d outside trace",
				sp.Name, b.Events, b.Day)
		}
		if b.Advertiser < 0 || b.Advertiser >= len(base.Advertisers) {
			return fmt.Errorf("scenario %s: burst advertiser %d out of range", sp.Name, b.Advertiser)
		}
	}
	if l := sp.Late; l != nil && (l.Fraction < 0 || l.Fraction > 1 || l.DelayDays <= 0) {
		return fmt.Errorf("scenario %s: invalid late spec %+v", sp.Name, *l)
	}
	if c := sp.Churn; c != nil && (c.Fraction < 0 || c.Fraction > 1) {
		return fmt.Errorf("scenario %s: invalid churn fraction %v", sp.Name, c.Fraction)
	}
	if k := sp.Skew; k != nil && (k.Fraction < 0 || k.Fraction > 1 || k.MaxSkewDays <= 0) {
		return fmt.Errorf("scenario %s: invalid skew spec %+v", sp.Name, *k)
	}
	if a := sp.Adversary; a != nil {
		if a.Site == "" || a.TargetDevices <= 0 || a.ConversionsPerDay <= 0 ||
			a.BatchSize <= 0 || a.MaxValue <= 0 || a.AvgReportValue <= 0 {
			return fmt.Errorf("scenario %s: invalid adversary spec %+v", sp.Name, *a)
		}
	}
	return nil
}

// Catalog returns the named scenario catalog the robustness harness, the
// -scenario CLI flag, and the CI smoke job all run. Parameters are tuned for
// the figures microbenchmark (100 devices, 120 days, ~50 impressions/day);
// the specs scale with any base via fractions except where noted.
func Catalog() []Spec {
	return []Spec{
		{
			Name:        "clean",
			Description: "unperturbed baseline; the streaming run must match the golden digest",
			Seed:        1,
		},
		{
			Name:        "flash-crowd",
			Description: "1000x impression spike on one campaign for one day",
			Seed:        2,
			Burst:       &BurstSpec{Day: 45, Events: 50000},
		},
		{
			Name:        "late-events",
			Description: "8% of events re-delivered three days after their day closed",
			Seed:        3,
			Late:        &LateSpec{Fraction: 0.08, DelayDays: 3},
		},
		{
			Name:        "device-churn",
			Description: "20% of devices leave mid-trace and rejoin as fresh identities",
			Seed:        4,
			Churn:       &ChurnSpec{Fraction: 0.2},
		},
		{
			Name:        "clock-skew",
			Description: "5% of devices run slow clocks; their events arrive already expired",
			Seed:        5,
			Skew:        &SkewSpec{Fraction: 0.05, MaxSkewDays: 2},
		},
		{
			Name:        "clock-skew-forward",
			Description: "2% of devices run a day fast, prematurely closing days for everyone",
			Seed:        6,
			Skew:        &SkewSpec{Fraction: 0.02, MaxSkewDays: 1, Forward: true},
		},
		{
			Name:        "adversarial-querier",
			Description: "hostile querier floods six devices with near-capacity-epsilon queries",
			Seed:        7,
			Adversary: &AdversarySpec{
				Site:              "attacker.example",
				TargetDevices:     6,
				ConversionsPerDay: 4,
				BatchSize:         50,
				MaxValue:          1,
				AvgReportValue:    2,
			},
		},
	}
}

// ByName returns the cataloged spec with the given name.
func ByName(name string) (Spec, error) {
	for _, sp := range Catalog() {
		if sp.Name == name {
			return sp, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: unknown scenario %q", name)
}
