package scenario

import (
	"repro/internal/dataset"
)

// Admitted replays a scenario source through the streaming service's
// admission rule without any service state: an event is admitted exactly
// when its day stamp is not below the maximum day delivered so far (the
// service's day clock only ever advances, and an event at the clock's
// current day is never late). It returns the admitted events as a
// materialized dataset carrying the source's metadata, plus the number of
// events the rule dropped.
//
// The admitted dataset is the batch-equivalence oracle for hostile traffic:
// a streaming run over the full perturbed source under the drop-with-counter
// policy must be bit-identical to a batch run over Admitted's dataset, and
// the drop counts must agree. Admitted consumes the source; callers build a
// fresh one per use (Spec.Source).
func Admitted(src dataset.Source) (*dataset.Dataset, int) {
	m := src.Meta()
	ds := &dataset.Dataset{
		Name:              m.Name,
		PopulationDevices: m.PopulationDevices,
		DurationDays:      m.DurationDays,
		Advertisers:       m.Advertisers,
	}
	dropped := 0
	day := 0
	started := false
	for {
		ev, ok := src.Next()
		if !ok {
			return ds, dropped
		}
		if started && ev.Day < day {
			dropped++
			continue
		}
		started = true
		day = ev.Day
		ds.Events = append(ds.Events, ev)
	}
}
