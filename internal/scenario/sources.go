package scenario

import (
	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/stats"
)

// The perturbation wrappers. Each wraps a dataset.Source and reshapes its
// delivery sequence deterministically from the spec seed; none of them
// mutates the base dataset. Device identities follow the repository's
// generator convention of IDs 1..PopulationDevices, which churn and the
// adversary rely on when minting fresh IDs and picking targets.

// renumberSource assigns sequential event IDs in delivery order. It is the
// outermost layer of every scenario source: after renumbering, any
// day-monotonic subsequence of the delivery order — in particular the
// subsequence the service admits — is fully (Day, ID) sorted, so the batch
// engine's sorted plan over the admitted events chunks batches exactly as
// the streaming planner's arrival order does.
type renumberSource struct {
	base dataset.Source
	next events.EventID
}

func (r *renumberSource) Meta() dataset.Meta { return r.base.Meta() }

func (r *renumberSource) Next() (events.Event, bool) {
	ev, ok := r.base.Next()
	if !ok {
		return events.Event{}, false
	}
	r.next++
	ev.ID = r.next
	return ev, true
}

// mapSource rewrites each event through a pure function.
type mapSource struct {
	base dataset.Source
	meta dataset.Meta
	fn   func(events.Event) events.Event
}

func (s *mapSource) Meta() dataset.Meta { return s.meta }

func (s *mapSource) Next() (events.Event, bool) {
	ev, ok := s.base.Next()
	if !ok {
		return events.Event{}, false
	}
	return s.fn(ev), true
}

// churnPlan is one churning device's fate: it leaves after leaveDay and its
// later events re-appear under the reborn identity.
type churnPlan struct {
	leaveDay int
	reborn   events.DeviceID
}

// newChurnSource plans churn over the base population: each device churns
// with spec.Fraction probability at a day in the middle half of the trace,
// and its post-leave events remap to a fresh ID appended past the
// population. The metadata's population grows by the number of churners so
// downstream population denominators count the reborn identities.
func newChurnSource(base dataset.Source, spec ChurnSpec, seed uint64) dataset.Source {
	meta := base.Meta()
	rng := stats.Stream(seed, "scenario-churn")
	plans := make(map[events.DeviceID]churnPlan)
	reborn := events.DeviceID(meta.PopulationDevices)
	span := meta.DurationDays / 2
	if span < 1 {
		span = 1
	}
	for id := 1; id <= meta.PopulationDevices; id++ {
		if rng.Float64() >= spec.Fraction {
			continue
		}
		reborn++
		plans[events.DeviceID(id)] = churnPlan{
			leaveDay: meta.DurationDays/4 + rng.Intn(span),
			reborn:   reborn,
		}
	}
	meta.PopulationDevices = int(reborn)
	return &mapSource{base: base, meta: meta, fn: func(ev events.Event) events.Event {
		if p, ok := plans[ev.Device]; ok && ev.Day > p.leaveDay {
			ev.Device = p.reborn
		}
		return ev
	}}
}

// newSkewSource gives a seeded fraction of devices a clock offset: their
// events keep their delivery position but carry a day stamp shifted by the
// device's skew, clamped to the trace. Backward skew turns the device's own
// traffic late; forward skew advances the service's day clock early,
// dropping other devices' still-current traffic.
func newSkewSource(base dataset.Source, spec SkewSpec, seed uint64) dataset.Source {
	meta := base.Meta()
	rng := stats.Stream(seed, "scenario-skew")
	shift := make(map[events.DeviceID]int)
	for id := 1; id <= meta.PopulationDevices; id++ {
		if rng.Float64() >= spec.Fraction {
			continue
		}
		d := 1 + rng.Intn(spec.MaxSkewDays)
		if !spec.Forward {
			d = -d
		}
		shift[events.DeviceID(id)] = d
	}
	maxDay := meta.DurationDays - 1
	return &mapSource{base: base, meta: meta, fn: func(ev events.Event) events.Event {
		d, ok := shift[ev.Device]
		if !ok {
			return ev
		}
		ev.Day += d
		if ev.Day < 0 {
			ev.Day = 0
		}
		if ev.Day > maxDay {
			ev.Day = maxDay
		}
		return ev
	}}
}

// injectSource merges a pre-built day-sorted injection list into the base
// stream: a day's injections deliver after the base events of that day (and
// before any later-day base event), so a day-ordered base stays day-ordered.
type injectSource struct {
	base    dataset.Source
	meta    dataset.Meta
	inject  []events.Event
	i       int
	pending events.Event
	havePen bool
	done    bool
}

func (s *injectSource) Meta() dataset.Meta { return s.meta }

func (s *injectSource) Next() (events.Event, bool) {
	if !s.havePen && !s.done {
		if ev, ok := s.base.Next(); ok {
			s.pending, s.havePen = ev, true
		} else {
			s.done = true
		}
	}
	if s.i < len(s.inject) && (s.done || s.inject[s.i].Day < s.pending.Day) {
		ev := s.inject[s.i]
		s.i++
		return ev, true
	}
	if s.havePen {
		s.havePen = false
		return s.pending, true
	}
	return events.Event{}, false
}

// newBurstSource injects the flash crowd: spec.Events impressions for one
// advertiser's first campaign, all on spec.Day, on seeded random devices.
func newBurstSource(base dataset.Source, spec BurstSpec, seed uint64) dataset.Source {
	meta := base.Meta()
	rng := stats.Stream(seed, "scenario-burst")
	adv := meta.Advertisers[spec.Advertiser]
	campaign := ""
	if len(adv.Products) > 0 {
		campaign = adv.Products[0]
	}
	inject := make([]events.Event, 0, spec.Events)
	for i := 0; i < spec.Events; i++ {
		inject = append(inject, events.Event{
			Kind:       events.KindImpression,
			Device:     events.DeviceID(1 + rng.Intn(meta.PopulationDevices)),
			Day:        spec.Day,
			Publisher:  "flashcrowd.example",
			Advertiser: adv.Site,
			Campaign:   campaign,
		})
	}
	return &injectSource{base: base, meta: meta, inject: inject}
}

// newAdversarySource adds the budget-drain attacker: a new querier in the
// metadata plus its traffic — one daily impression per target device (so the
// targets' epochs hold relevant events and the attacker's charges are
// non-zero under Cookie Monster's zero-loss optimization) and a round-robin
// stream of max-value conversions that fill the attacker's batches.
func newAdversarySource(base dataset.Source, spec AdversarySpec, seed uint64) dataset.Source {
	meta := base.Meta()
	const product = "drain-0"
	advs := make([]dataset.Advertiser, len(meta.Advertisers), len(meta.Advertisers)+1)
	copy(advs, meta.Advertisers)
	meta.Advertisers = append(advs, dataset.Advertiser{
		Site:           spec.Site,
		Products:       []string{product},
		MaxValue:       spec.MaxValue,
		AvgReportValue: spec.AvgReportValue,
		BatchSize:      spec.BatchSize,
	})
	targets := spec.TargetDevices
	if targets > meta.PopulationDevices {
		targets = meta.PopulationDevices
	}
	var inject []events.Event
	conv := 0
	for day := 0; day < meta.DurationDays; day++ {
		for t := 0; t < targets; t++ {
			inject = append(inject, events.Event{
				Kind:       events.KindImpression,
				Device:     events.DeviceID(1 + t),
				Day:        day,
				Publisher:  "attacker-pub.example",
				Advertiser: spec.Site,
				Campaign:   product,
			})
		}
		for k := 0; k < spec.ConversionsPerDay; k++ {
			inject = append(inject, events.Event{
				Kind:       events.KindConversion,
				Device:     events.DeviceID(1 + conv%targets),
				Day:        day,
				Advertiser: spec.Site,
				Product:    product,
				Value:      spec.MaxValue,
			})
			conv++
		}
	}
	_ = seed // the attack schedule is fully deterministic; no randomness needed
	return &injectSource{base: base, meta: meta, inject: inject}
}

// delayed is one held-back event and the stream day it re-delivers on.
type delayed struct {
	release int
	ev      events.Event
}

// newDelaySource holds back a seeded fraction of events and re-delivers each
// DelayDays later in the stream with its original day stamp — by then its
// day has closed, making it late. Held events release in the order they were
// held (their release days are nondecreasing because the base is
// day-ordered); anything still held when the base drains flushes at the end.
func newDelaySource(base dataset.Source, spec LateSpec, seed uint64) dataset.Source {
	return &delaySource{
		base:  base,
		meta:  base.Meta(),
		rng:   stats.Stream(seed, "scenario-late"),
		frac:  spec.Fraction,
		delay: spec.DelayDays,
	}
}

type delaySource struct {
	base    dataset.Source
	meta    dataset.Meta
	rng     *stats.RNG
	frac    float64
	delay   int
	held    []delayed
	head    int
	pending events.Event
	havePen bool
	done    bool
}

func (s *delaySource) Meta() dataset.Meta { return s.meta }

func (s *delaySource) Next() (events.Event, bool) {
	for !s.havePen && !s.done {
		ev, ok := s.base.Next()
		if !ok {
			s.done = true
			break
		}
		if s.rng.Float64() < s.frac {
			s.held = append(s.held, delayed{release: ev.Day + s.delay, ev: ev})
			continue
		}
		s.pending, s.havePen = ev, true
	}
	if s.head < len(s.held) && (s.done || s.held[s.head].release <= s.pending.Day) {
		ev := s.held[s.head].ev
		s.head++
		return ev, true
	}
	if s.havePen {
		s.havePen = false
		return s.pending, true
	}
	return events.Event{}, false
}
