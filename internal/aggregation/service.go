// Package aggregation simulates the trusted aggregation service — the
// MPC (IPA, PAM, Hybrid) or TEE (ARA) of §2.2 — that Cookie Monster treats
// as a black box: it receives encrypted attribution reports, guarantees each
// report is consumed at most once (nonce replay protection), sums a batch,
// and releases the aggregate with Laplace noise calibrated to the query's
// global sensitivity and the ε carried in the reports' authenticated data.
//
// Substitution note (DESIGN.md §3): the MPC/TEE is trusted not to leak
// inputs or intermediate state in the paper's threat model, so an in-process
// implementation that exposes only noisy aggregates preserves everything the
// evaluation measures.
package aggregation

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"repro/internal/attribution"
	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/stats"
)

// ErrReplayedNonce is returned when a batch contains a report whose nonce
// was already consumed — the replay the nonce protocol exists to stop.
var ErrReplayedNonce = errors.New("aggregation: replayed report nonce")

// ErrEmptyBatch is returned for a query over zero reports.
var ErrEmptyBatch = errors.New("aggregation: empty report batch")

// ErrMixedBatch is returned when a batch mixes reports with inconsistent
// authenticated data (querier, ε, query sensitivity or dimension); the
// service refuses rather than guessing which parameters to enforce.
var ErrMixedBatch = errors.New("aggregation: inconsistent report batch")

// Result is the DP output released to the querier for one summation query.
type Result struct {
	// Aggregate is the noisy coordinate-wise sum of the batch's report
	// histograms.
	Aggregate attribution.Histogram
	// BiasCount is the noisy sum of the κ-scaled bias flags (the side
	// query M₀(D) of Appendix F). Zero-noise-free only if bias
	// measurement was off for the whole batch.
	BiasCount float64
	// Batch is the number of reports aggregated.
	Batch int
	// Epsilon echoes the enforced privacy parameter.
	Epsilon float64
	// NoiseScale is the Laplace scale b = Δquery/ε applied per
	// coordinate.
	NoiseScale float64
}

// Service is the trusted aggregator. It is safe for concurrent use.
type Service struct {
	mech *privacy.LaplaceMechanism

	mu   sync.Mutex
	seen map[core.Nonce]struct{}
	// watermark is the retirement horizon: every nonce at or below it has
	// been consumed by a completed batch and evicted from seen. Submissions
	// at or below the watermark are rejected as replays, so compaction
	// never weakens the one-use guarantee.
	watermark core.Nonce
}

// NewService returns a service drawing noise from rng.
func NewService(rng *stats.RNG) *Service {
	return &Service{
		mech: privacy.NewLaplaceMechanism(rng),
		seen: make(map[core.Nonce]struct{}),
	}
}

// Execute runs one summation query over a batch of reports: it validates
// batch consistency, enforces one-use nonces, sums histograms and bias
// flags, and perturbs every output coordinate with Laplace(Δquery/ε) noise,
// yielding ε-DP for the batch under the query's global sensitivity.
//
// On any error nothing is consumed: a rejected batch can be fixed and
// resubmitted.
func (s *Service) Execute(reports []*core.Report) (*Result, error) {
	if len(reports) == 0 {
		return nil, ErrEmptyBatch
	}
	first := reports[0]
	for _, r := range reports[1:] {
		if r.Querier != first.Querier || r.Epsilon != first.Epsilon ||
			r.QuerySensitivity != first.QuerySensitivity ||
			len(r.Histogram) != len(first.Histogram) {
			return nil, fmt.Errorf("%w: report %d disagrees with batch head",
				ErrMixedBatch, r.Nonce)
		}
	}

	// Atomically claim every nonce; roll back on replay so the caller can
	// drop the offender and retry.
	s.mu.Lock()
	claimed := make([]core.Nonce, 0, len(reports))
	for _, r := range reports {
		if r.Nonce <= s.watermark {
			for _, n := range claimed {
				delete(s.seen, n)
			}
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: nonce %d at or below retirement watermark %d",
				ErrReplayedNonce, r.Nonce, s.watermark)
		}
		if _, dup := s.seen[r.Nonce]; dup {
			for _, n := range claimed {
				delete(s.seen, n)
			}
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: nonce %d", ErrReplayedNonce, r.Nonce)
		}
		s.seen[r.Nonce] = struct{}{}
		claimed = append(claimed, r.Nonce)
	}
	s.mu.Unlock()

	sum := attribution.NewHistogram(len(first.Histogram))
	bias := 0.0
	for _, r := range reports {
		sum.Add(r.Histogram)
		bias += r.BiasFlag
	}

	scale := privacy.Scale(first.QuerySensitivity, first.Epsilon)
	s.mu.Lock() // the RNG stream is not concurrency-safe
	s.mech.Perturb(sum, first.QuerySensitivity, first.Epsilon)
	noisy := s.mech.Perturb([]float64{bias}, first.QuerySensitivity, first.Epsilon)
	s.mu.Unlock()

	return &Result{
		Aggregate:  sum,
		BiasCount:  noisy[0],
		Batch:      len(reports),
		Epsilon:    first.Epsilon,
		NoiseScale: scale,
	}, nil
}

// ConsumedNonces reports how many report nonces are currently tracked as
// consumed (retired nonces are not counted), for tests and diagnostics.
func (s *Service) ConsumedNonces() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seen)
}

// Compact retires every consumed nonce at or below watermark, reclaiming the
// replay-protection memory a long-running service would otherwise accumulate
// without bound. Callers invoke it on batch completion, once they know no
// legitimate report at or below the watermark can still be submitted (nonces
// are minted monotonically, so any batch whose reports were all generated
// before the watermark qualifies). Retired nonces stay rejected: Execute
// refuses anything at or below the watermark as a replay. The watermark never
// moves backwards; Compact returns the number of entries evicted.
func (s *Service) Compact(watermark core.Nonce) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if watermark <= s.watermark {
		return 0
	}
	s.watermark = watermark
	evicted := 0
	for n := range s.seen {
		if n <= watermark {
			delete(s.seen, n)
			evicted++
		}
	}
	return evicted
}

// Watermark returns the current retirement horizon: nonces at or below it
// are rejected without consulting the consumed set.
func (s *Service) Watermark() core.Nonce {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watermark
}

// SnapshotNonces returns the replay-protection state for checkpointing: the
// retirement watermark and the consumed nonces above it, in ascending order.
func (s *Service) SnapshotNonces() (watermark core.Nonce, seen []core.Nonce) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen = make([]core.Nonce, 0, len(s.seen))
	for n := range s.seen {
		seen = append(seen, n)
	}
	slices.Sort(seen)
	return s.watermark, seen
}

// RestoreNonces reinstates replay-protection state captured by
// SnapshotNonces. Like Compact, it only ratchets: the watermark never moves
// backwards and restored nonces are added to (never replace) the consumed
// set, so replaying an old snapshot cannot weaken the one-use guarantee.
func (s *Service) RestoreNonces(watermark core.Nonce, seen []core.Nonce) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if watermark > s.watermark {
		s.watermark = watermark
	}
	for _, n := range seen {
		if n > s.watermark {
			s.seen[n] = struct{}{}
		}
	}
}
