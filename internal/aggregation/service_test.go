package aggregation

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/attribution"
	"repro/internal/core"
	"repro/internal/stats"
)

func mkReport(nonce core.Nonce, value, eps, qsens float64) *core.Report {
	return &core.Report{
		Nonce:            nonce,
		Querier:          "nike.com",
		Histogram:        attribution.Histogram{value},
		Epsilon:          eps,
		QuerySensitivity: qsens,
	}
}

func TestExecuteSumsAndNoises(t *testing.T) {
	s := NewService(stats.NewRNG(1))
	var reports []*core.Report
	truth := 0.0
	for i := 1; i <= 1000; i++ {
		v := float64(i % 7)
		truth += v
		reports = append(reports, mkReport(core.Nonce(i), v, 5.0, 7.0))
	}
	res, err := s.Execute(reports)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch != 1000 || res.Epsilon != 5.0 {
		t.Fatalf("result meta = %+v", res)
	}
	// Noise scale Δ/ε = 1.4: the estimate should be near the truth.
	if math.Abs(res.Aggregate[0]-truth) > 30 {
		t.Fatalf("aggregate %v too far from truth %v", res.Aggregate[0], truth)
	}
	if res.NoiseScale != 7.0/5.0 {
		t.Fatalf("noise scale = %v", res.NoiseScale)
	}
}

func TestExecuteEmptyBatch(t *testing.T) {
	s := NewService(stats.NewRNG(2))
	if _, err := s.Execute(nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestExecuteRejectsReplay(t *testing.T) {
	s := NewService(stats.NewRNG(3))
	r := mkReport(42, 1, 1, 1)
	if _, err := s.Execute([]*core.Report{r}); err != nil {
		t.Fatal(err)
	}
	// Same nonce again: replay must be rejected.
	if _, err := s.Execute([]*core.Report{r}); !errors.Is(err, ErrReplayedNonce) {
		t.Fatalf("replay err = %v", err)
	}
}

func TestExecuteReplayRollsBack(t *testing.T) {
	s := NewService(stats.NewRNG(4))
	good := mkReport(1, 1, 1, 1)
	dup := mkReport(2, 1, 1, 1)
	if _, err := s.Execute([]*core.Report{dup}); err != nil {
		t.Fatal(err)
	}
	// Batch with one fresh and one replayed nonce fails entirely...
	if _, err := s.Execute([]*core.Report{good, dup}); !errors.Is(err, ErrReplayedNonce) {
		t.Fatalf("err = %v", err)
	}
	// ...but the fresh nonce was rolled back and can still be used.
	if _, err := s.Execute([]*core.Report{good}); err != nil {
		t.Fatalf("rolled-back nonce unusable: %v", err)
	}
}

func TestExecuteRejectsMixedBatches(t *testing.T) {
	s := NewService(stats.NewRNG(5))
	a := mkReport(1, 1, 1.0, 10)
	cases := []*core.Report{
		mkReport(2, 1, 2.0, 10), // different ε
		mkReport(3, 1, 1.0, 20), // different sensitivity
		{Nonce: 4, Querier: "adidas.com", Histogram: attribution.Histogram{1}, Epsilon: 1, QuerySensitivity: 10},
		{Nonce: 5, Querier: "nike.com", Histogram: attribution.Histogram{1, 2}, Epsilon: 1, QuerySensitivity: 10},
	}
	for i, bad := range cases {
		if _, err := s.Execute([]*core.Report{a, bad}); !errors.Is(err, ErrMixedBatch) {
			t.Fatalf("case %d: err = %v", i, err)
		}
	}
	// The head report's nonce must not have been burned by rejections.
	if _, err := s.Execute([]*core.Report{a}); err != nil {
		t.Fatalf("nonce burned by rejected batches: %v", err)
	}
}

func TestExecuteAggregatesBiasFlags(t *testing.T) {
	s := NewService(stats.NewRNG(6))
	var reports []*core.Report
	flagged := 0.0
	for i := 1; i <= 2000; i++ {
		r := mkReport(core.Nonce(i), 1, 10, 1)
		if i%4 == 0 {
			r.BiasFlag = 0.1
			flagged += 0.1
		}
		reports = append(reports, r)
	}
	res, err := s.Execute(reports)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BiasCount-flagged) > 2 {
		t.Fatalf("bias count %v too far from %v", res.BiasCount, flagged)
	}
}

func TestExecuteIsUnbiasedOverRuns(t *testing.T) {
	// The mechanism must be centered: averaging many runs approaches the
	// true sum.
	truth := 100.0
	sum := 0.0
	const runs = 2000
	for i := 0; i < runs; i++ {
		s := NewService(stats.NewRNG(uint64(i + 10)))
		res, err := s.Execute([]*core.Report{mkReport(1, truth, 1.0, 10)})
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Aggregate[0]
	}
	if mean := sum / runs; math.Abs(mean-truth) > 1.5 {
		t.Fatalf("mean estimate %v, want ~%v", mean, truth)
	}
}

func TestConcurrentExecuteNoDoubleSpend(t *testing.T) {
	s := NewService(stats.NewRNG(7))
	const n = 100
	var wg sync.WaitGroup
	successes := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// All goroutines race to spend the same nonce.
			_, err := s.Execute([]*core.Report{mkReport(core.Nonce(999), 1, 1, 1)})
			successes[i] = err == nil
		}(i)
	}
	wg.Wait()
	count := 0
	for _, ok := range successes {
		if ok {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("nonce spent %d times, want exactly once", count)
	}
	if s.ConsumedNonces() != 1 {
		t.Fatalf("consumed nonces = %d", s.ConsumedNonces())
	}
}
