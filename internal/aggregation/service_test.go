package aggregation

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/attribution"
	"repro/internal/core"
	"repro/internal/stats"
)

func mkReport(nonce core.Nonce, value, eps, qsens float64) *core.Report {
	return &core.Report{
		Nonce:            nonce,
		Querier:          "nike.com",
		Histogram:        attribution.Histogram{value},
		Epsilon:          eps,
		QuerySensitivity: qsens,
	}
}

func TestExecuteSumsAndNoises(t *testing.T) {
	s := NewService(stats.NewRNG(1))
	var reports []*core.Report
	truth := 0.0
	for i := 1; i <= 1000; i++ {
		v := float64(i % 7)
		truth += v
		reports = append(reports, mkReport(core.Nonce(i), v, 5.0, 7.0))
	}
	res, err := s.Execute(reports)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch != 1000 || res.Epsilon != 5.0 {
		t.Fatalf("result meta = %+v", res)
	}
	// Noise scale Δ/ε = 1.4: the estimate should be near the truth.
	if math.Abs(res.Aggregate[0]-truth) > 30 {
		t.Fatalf("aggregate %v too far from truth %v", res.Aggregate[0], truth)
	}
	if res.NoiseScale != 7.0/5.0 {
		t.Fatalf("noise scale = %v", res.NoiseScale)
	}
}

func TestExecuteEmptyBatch(t *testing.T) {
	s := NewService(stats.NewRNG(2))
	if _, err := s.Execute(nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestExecuteRejectsReplay(t *testing.T) {
	s := NewService(stats.NewRNG(3))
	r := mkReport(42, 1, 1, 1)
	if _, err := s.Execute([]*core.Report{r}); err != nil {
		t.Fatal(err)
	}
	// Same nonce again: replay must be rejected.
	if _, err := s.Execute([]*core.Report{r}); !errors.Is(err, ErrReplayedNonce) {
		t.Fatalf("replay err = %v", err)
	}
}

func TestExecuteReplayRollsBack(t *testing.T) {
	s := NewService(stats.NewRNG(4))
	good := mkReport(1, 1, 1, 1)
	dup := mkReport(2, 1, 1, 1)
	if _, err := s.Execute([]*core.Report{dup}); err != nil {
		t.Fatal(err)
	}
	// Batch with one fresh and one replayed nonce fails entirely...
	if _, err := s.Execute([]*core.Report{good, dup}); !errors.Is(err, ErrReplayedNonce) {
		t.Fatalf("err = %v", err)
	}
	// ...but the fresh nonce was rolled back and can still be used.
	if _, err := s.Execute([]*core.Report{good}); err != nil {
		t.Fatalf("rolled-back nonce unusable: %v", err)
	}
}

func TestExecuteRejectsMixedBatches(t *testing.T) {
	s := NewService(stats.NewRNG(5))
	a := mkReport(1, 1, 1.0, 10)
	cases := []*core.Report{
		mkReport(2, 1, 2.0, 10), // different ε
		mkReport(3, 1, 1.0, 20), // different sensitivity
		{Nonce: 4, Querier: "adidas.com", Histogram: attribution.Histogram{1}, Epsilon: 1, QuerySensitivity: 10},
		{Nonce: 5, Querier: "nike.com", Histogram: attribution.Histogram{1, 2}, Epsilon: 1, QuerySensitivity: 10},
	}
	for i, bad := range cases {
		if _, err := s.Execute([]*core.Report{a, bad}); !errors.Is(err, ErrMixedBatch) {
			t.Fatalf("case %d: err = %v", i, err)
		}
	}
	// The head report's nonce must not have been burned by rejections.
	if _, err := s.Execute([]*core.Report{a}); err != nil {
		t.Fatalf("nonce burned by rejected batches: %v", err)
	}
}

func TestExecuteAggregatesBiasFlags(t *testing.T) {
	s := NewService(stats.NewRNG(6))
	var reports []*core.Report
	flagged := 0.0
	for i := 1; i <= 2000; i++ {
		r := mkReport(core.Nonce(i), 1, 10, 1)
		if i%4 == 0 {
			r.BiasFlag = 0.1
			flagged += 0.1
		}
		reports = append(reports, r)
	}
	res, err := s.Execute(reports)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BiasCount-flagged) > 2 {
		t.Fatalf("bias count %v too far from %v", res.BiasCount, flagged)
	}
}

func TestExecuteIsUnbiasedOverRuns(t *testing.T) {
	// The mechanism must be centered: averaging many runs approaches the
	// true sum.
	truth := 100.0
	sum := 0.0
	const runs = 2000
	for i := 0; i < runs; i++ {
		s := NewService(stats.NewRNG(uint64(i + 10)))
		res, err := s.Execute([]*core.Report{mkReport(1, truth, 1.0, 10)})
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Aggregate[0]
	}
	if mean := sum / runs; math.Abs(mean-truth) > 1.5 {
		t.Fatalf("mean estimate %v, want ~%v", mean, truth)
	}
}

func TestCompactReclaimsMemory(t *testing.T) {
	s := NewService(stats.NewRNG(8))
	// Consume three batches' worth of nonces.
	var maxNonce core.Nonce
	for b := 0; b < 3; b++ {
		var batch []*core.Report
		for i := 0; i < 100; i++ {
			maxNonce++
			batch = append(batch, mkReport(maxNonce, 1, 1, 1))
		}
		if _, err := s.Execute(batch); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.ConsumedNonces(); got != 300 {
		t.Fatalf("consumed nonces = %d, want 300", got)
	}

	// Compacting at the completed batches' high-water mark reclaims the
	// tracking memory...
	if evicted := s.Compact(maxNonce); evicted != 300 {
		t.Fatalf("evicted %d nonces, want 300", evicted)
	}
	if got := s.ConsumedNonces(); got != 0 {
		t.Fatalf("consumed nonces after compaction = %d, want 0", got)
	}
	if got := s.Watermark(); got != maxNonce {
		t.Fatalf("watermark = %d, want %d", got, maxNonce)
	}

	// ...while replay of a retired nonce is still rejected, with nothing
	// newly tracked for it.
	if _, err := s.Execute([]*core.Report{mkReport(1, 1, 1, 1)}); !errors.Is(err, ErrReplayedNonce) {
		t.Fatalf("retired nonce replay err = %v", err)
	}
	if got := s.ConsumedNonces(); got != 0 {
		t.Fatalf("rejected replay left %d tracked nonces", got)
	}

	// A mixed batch of fresh and retired nonces fails atomically: the
	// fresh nonce rolls back and stays usable.
	fresh := mkReport(maxNonce+1, 1, 1, 1)
	if _, err := s.Execute([]*core.Report{fresh, mkReport(maxNonce, 1, 1, 1)}); !errors.Is(err, ErrReplayedNonce) {
		t.Fatalf("mixed fresh/retired err = %v", err)
	}
	if _, err := s.Execute([]*core.Report{fresh}); err != nil {
		t.Fatalf("fresh nonce burned by rejected batch: %v", err)
	}

	// The watermark never moves backwards.
	if evicted := s.Compact(1); evicted != 0 {
		t.Fatalf("backwards compaction evicted %d", evicted)
	}
	if got := s.Watermark(); got != maxNonce {
		t.Fatalf("watermark moved backwards to %d", got)
	}
}

// TestConcurrentClaimRollback exercises the atomic claim/rollback path under
// concurrent submitters (run with -race): many goroutines submit batches that
// all share one contended nonce but carry distinct private nonces. Exactly
// one batch may win; every loser must roll back its private nonces so they
// remain spendable.
func TestConcurrentClaimRollback(t *testing.T) {
	s := NewService(stats.NewRNG(9))
	const submitters = 32
	const batchSize = 8
	const contended = core.Nonce(1)

	var wg sync.WaitGroup
	wins := make([]bool, submitters)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := []*core.Report{mkReport(contended, 1, 1, 1)}
			for i := 0; i < batchSize; i++ {
				// Private nonces, disjoint across submitters.
				n := core.Nonce(100 + g*batchSize + i)
				batch = append(batch, mkReport(n, 1, 1, 1))
			}
			_, err := s.Execute(batch)
			if err != nil && !errors.Is(err, ErrReplayedNonce) {
				t.Errorf("submitter %d: unexpected error %v", g, err)
			}
			wins[g] = err == nil
		}(g)
	}
	wg.Wait()

	winners := 0
	for _, ok := range wins {
		if ok {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("%d batches consumed the contended nonce, want exactly 1", winners)
	}
	// Only the winner's nonces are consumed; every loser rolled back.
	if got, want := s.ConsumedNonces(), 1+batchSize; got != want {
		t.Fatalf("consumed nonces = %d, want %d", got, want)
	}
	// Losers resubmit without the offender and must all succeed — their
	// private nonces were rolled back, not burned.
	for g := 0; g < submitters; g++ {
		if wins[g] {
			continue
		}
		var batch []*core.Report
		for i := 0; i < batchSize; i++ {
			n := core.Nonce(100 + g*batchSize + i)
			batch = append(batch, mkReport(n, 1, 1, 1))
		}
		if _, err := s.Execute(batch); err != nil {
			t.Fatalf("submitter %d retry after rollback: %v", g, err)
		}
	}
	if got, want := s.ConsumedNonces(), 1+submitters*batchSize; got != want {
		t.Fatalf("consumed nonces after retries = %d, want %d", got, want)
	}
}

// TestConcurrentCompactAndExecute races compaction against submitters (run
// with -race): whatever the interleaving, a batch either lands entirely above
// the watermark or is rejected whole, and the final tracked set only holds
// above-watermark nonces.
func TestConcurrentCompactAndExecute(t *testing.T) {
	s := NewService(stats.NewRNG(10))
	const submitters = 16
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := core.Nonce(1 + g*10)
			var batch []*core.Report
			for i := 0; i < 10; i++ {
				batch = append(batch, mkReport(base+core.Nonce(i), 1, 1, 1))
			}
			if _, err := s.Execute(batch); err != nil && !errors.Is(err, ErrReplayedNonce) {
				t.Errorf("submitter %d: %v", g, err)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for w := core.Nonce(10); w <= 80; w += 10 {
			s.Compact(w)
		}
	}()
	wg.Wait()
	s.Compact(80)
	// Deterministic final state: the 8 batches with nonces 81–160 sit
	// above every watermark and are unique, so they always succeed and
	// survive compaction; everything at or below 80 has been evicted.
	// Exactly 80 tracked entries — more means compaction missed some,
	// fewer means an above-watermark claim was lost.
	if got, want := s.ConsumedNonces(), 80; got != want {
		t.Fatalf("tracked nonces = %d, want %d after compaction to 80", got, want)
	}
}

func TestConcurrentExecuteNoDoubleSpend(t *testing.T) {
	s := NewService(stats.NewRNG(7))
	const n = 100
	var wg sync.WaitGroup
	successes := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// All goroutines race to spend the same nonce.
			_, err := s.Execute([]*core.Report{mkReport(core.Nonce(999), 1, 1, 1)})
			successes[i] = err == nil
		}(i)
	}
	wg.Wait()
	count := 0
	for _, ok := range successes {
		if ok {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("nonce spent %d times, want exactly once", count)
	}
	if s.ConsumedNonces() != 1 {
		t.Fatalf("consumed nonces = %d", s.ConsumedNonces())
	}
}
