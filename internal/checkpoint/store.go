package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Generation-store layout. A checkpoint directory holds numbered snapshot
// generations and WAL segments instead of one snapshot file and one log:
//
//	base-00000001.ckpt    full snapshot, generation 1
//	wal-00000001.log      events ingested after generation 1 was captured
//	delta-00000002.ckpt   dirty state since generation 1
//	wal-00000002.log      events after generation 2, ...
//
// Every snapshot generation is one framed file:
//
//	magic[8] version[u32] kind[u8] gen[u64] parentFP[u32] chainFP[u32]
//	length[u64] crc32c[u32] payload
//
// (little-endian; the CRC covers the payload only). A delta names its
// parent by fingerprint: parentFP is the parent generation's chainFP, and
// the delta's own chainFP is derived from (parentFP, payload CRC), so a
// chain's head fingerprint commits to every link below it. A base written
// fresh has parentFP 0 and chainFP = its payload CRC; a base written by
// compaction copies the head generation's number and chainFP, so deltas
// captured later chain onto either representation interchangeably.
//
// Recovery (LoadChain) trusts nothing: files that fail their frame checks
// are skipped and counted as fallbacks, the newest intact base wins, and
// the chain is followed strictly by fingerprint. The worst case — every
// generation corrupt — degrades to an empty chain, which the streaming
// recovery protocol handles by replaying the WAL segments from scratch and
// re-reading anything missing from the source. Corrupt state is never
// served.
const (
	genMagic = "CMGEN001"

	// GenKindBase and GenKindDelta are the generation-frame kinds.
	GenKindBase  = 1
	GenKindDelta = 2

	genHeaderLen = 8 + 4 + 1 + 8 + 4 + 4 + 8 + 4
)

// GenFrame is one decoded snapshot-generation frame.
type GenFrame struct {
	Kind     byte
	Gen      uint64
	ParentFP uint32
	ChainFP  uint32
	Payload  []byte
}

// ChainFP derives a delta's chain fingerprint from its parent's and its own
// payload CRC, committing the head fingerprint to the whole chain below it.
func ChainFP(parentFP uint32, payload []byte) uint32 {
	var link [8]byte
	binary.LittleEndian.PutUint32(link[:4], parentFP)
	binary.LittleEndian.PutUint32(link[4:], crc32.Checksum(payload, castagnoli))
	return crc32.Checksum(link[:], castagnoli)
}

// EncodeGenFrame frames one snapshot generation.
func EncodeGenFrame(kind byte, gen uint64, parentFP, chainFP uint32, payload []byte) []byte {
	buf := make([]byte, 0, genHeaderLen+len(payload))
	buf = append(buf, genMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, FormatVersion)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint32(buf, parentFP)
	buf = binary.LittleEndian.AppendUint32(buf, chainFP)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// DecodeGenFrame validates and decodes one generation frame. Every failure
// wraps ErrCorrupt; arbitrary input never panics (the fuzz target's
// contract). For deltas the chain fingerprint is recomputed from the stored
// parent fingerprint and payload, so a frame whose linkage was tampered
// with is refused even when its payload CRC still holds.
func DecodeGenFrame(raw []byte) (GenFrame, error) {
	var g GenFrame
	if len(raw) < genHeaderLen {
		return g, fmt.Errorf("%w: generation frame truncated at %d bytes", ErrCorrupt, len(raw))
	}
	if string(raw[:8]) != genMagic {
		return g, fmt.Errorf("%w: bad generation magic %q", ErrCorrupt, raw[:8])
	}
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != FormatVersion {
		return g, fmt.Errorf("%w: unsupported generation version %d", ErrCorrupt, v)
	}
	g.Kind = raw[12]
	if g.Kind != GenKindBase && g.Kind != GenKindDelta {
		return g, fmt.Errorf("%w: unknown generation kind %d", ErrCorrupt, g.Kind)
	}
	g.Gen = binary.LittleEndian.Uint64(raw[13:21])
	g.ParentFP = binary.LittleEndian.Uint32(raw[21:25])
	g.ChainFP = binary.LittleEndian.Uint32(raw[25:29])
	n := binary.LittleEndian.Uint64(raw[29:37])
	if n > maxRecordLen || n != uint64(len(raw)-genHeaderLen) {
		return g, fmt.Errorf("%w: generation length %d, frame says %d",
			ErrCorrupt, len(raw)-genHeaderLen, n)
	}
	want := binary.LittleEndian.Uint32(raw[37:41])
	g.Payload = raw[genHeaderLen:]
	if got := crc32.Checksum(g.Payload, castagnoli); got != want {
		return g, fmt.Errorf("%w: generation crc %08x, want %08x", ErrCorrupt, got, want)
	}
	if g.Kind == GenKindDelta {
		if want := ChainFP(g.ParentFP, g.Payload); g.ChainFP != want {
			return g, fmt.Errorf("%w: delta chain fingerprint %08x, want %08x",
				ErrCorrupt, g.ChainFP, want)
		}
	} else if g.ParentFP != 0 {
		// Bases never have a parent. Their chain fingerprint is an external
		// linkage claim (a compacted base carries its head delta's), so a
		// flipped bit there is undetectable here — but merely detaches later
		// deltas from the chain; the CRC-checked payload is still intact.
		return g, fmt.Errorf("%w: base with parent fingerprint %08x", ErrCorrupt, g.ParentFP)
	}
	return g, nil
}

// Store manages a checkpoint directory's snapshot generations and WAL
// segments through an FS (nil = the real filesystem), which is where the
// fault injector plugs in.
type Store struct {
	dir string
	fs  FS
}

// NewStore returns a generation store rooted at dir.
func NewStore(dir string, fsys FS) *Store {
	if fsys == nil {
		fsys = OsFS{}
	}
	return &Store{dir: dir, fs: fsys}
}

// FS exposes the store's filesystem, for opening WAL segments through the
// same (possibly fault-injected) layer.
func (st *Store) FS() FS { return st.fs }

func baseName(gen uint64) string   { return fmt.Sprintf("base-%08d.ckpt", gen) }
func deltaName(gen uint64) string  { return fmt.Sprintf("delta-%08d.ckpt", gen) }
func walSegName(gen uint64) string { return fmt.Sprintf("wal-%08d.log", gen) }

// parseGenName classifies a directory entry: kind is 'b' (base), 'd'
// (delta), or 'w' (WAL segment).
func parseGenName(name string) (kind byte, gen uint64, ok bool) {
	var rest string
	var suffix string
	switch {
	case strings.HasPrefix(name, "base-"):
		kind, rest, suffix = 'b', name[len("base-"):], ".ckpt"
	case strings.HasPrefix(name, "delta-"):
		kind, rest, suffix = 'd', name[len("delta-"):], ".ckpt"
	case strings.HasPrefix(name, "wal-"):
		kind, rest, suffix = 'w', name[len("wal-"):], ".log"
	default:
		return 0, 0, false
	}
	num, found := strings.CutSuffix(rest, suffix)
	if !found || num == "" {
		return 0, 0, false
	}
	n, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return kind, n, true
}

// WALSegmentPath returns the path of the numbered WAL segment.
func (st *Store) WALSegmentPath(gen uint64) string {
	return filepath.Join(st.dir, walSegName(gen))
}

// OpenWALSegment opens (creating if needed) the numbered WAL segment.
func (st *Store) OpenWALSegment(gen uint64) (*WAL, error) {
	if err := st.fs.MkdirAll(st.dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", st.dir, err)
	}
	return OpenWALFile(st.fs, st.WALSegmentPath(gen))
}

// Reset removes every generation file, WAL segment, staging file, and
// legacy single-file checkpoint under the store — a fresh run owns its
// directory outright, exactly as the single-snapshot protocol did.
func (st *Store) Reset() error {
	if err := st.fs.MkdirAll(st.dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: creating %s: %w", st.dir, err)
	}
	entries, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: resetting store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		_, _, isGen := parseGenName(name)
		if isGen || name == snapshotName || name == walName ||
			strings.HasSuffix(name, ".tmp") {
			if err := st.fs.Remove(filepath.Join(st.dir, name)); err != nil {
				return fmt.Errorf("checkpoint: resetting store: %w", err)
			}
		}
	}
	return nil
}

// MaxGen scans the directory for the highest generation number in use by
// any file — intact or not, since even a corrupt file's number must never
// be reused. Zero means a fresh directory.
func (st *Store) MaxGen() (uint64, error) {
	entries, err := st.fs.ReadDir(st.dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("checkpoint: scanning store: %w", err)
	}
	var max uint64
	for _, e := range entries {
		if _, gen, ok := parseGenName(e.Name()); ok && gen > max {
			max = gen
		}
	}
	return max, nil
}

// WriteBase commits a fresh full snapshot as generation gen and returns its
// chain fingerprint (the payload CRC).
func (st *Store) WriteBase(gen uint64, payload []byte) (uint32, error) {
	fp := crc32.Checksum(payload, castagnoli)
	return fp, st.writeGen(GenKindBase, baseName(gen), gen, 0, fp, payload)
}

// WriteBaseLinked commits a compacted base: full state equal to folding the
// chain whose head is (gen, chainFP), keeping that head's identity so
// deltas captured after the compaction chain onto either representation.
func (st *Store) WriteBaseLinked(gen uint64, chainFP uint32, payload []byte) error {
	return st.writeGen(GenKindBase, baseName(gen), gen, 0, chainFP, payload)
}

// WriteDelta commits a delta generation chained to the parent fingerprint
// and returns the delta's own chain fingerprint.
func (st *Store) WriteDelta(gen uint64, parentFP uint32, payload []byte) (uint32, error) {
	fp := ChainFP(parentFP, payload)
	return fp, st.writeGen(GenKindDelta, deltaName(gen), gen, parentFP, fp, payload)
}

// writeGen stages, fsyncs, and rename-commits one generation frame — the
// same atomic commit discipline as WriteSnapshot, through the store's FS.
func (st *Store) writeGen(kind byte, name string, gen uint64, parentFP, chainFP uint32, payload []byte) error {
	if err := st.fs.MkdirAll(st.dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: creating %s: %w", st.dir, err)
	}
	frame := EncodeGenFrame(kind, gen, parentFP, chainFP, payload)
	tmp := filepath.Join(st.dir, name+".tmp")
	// O_RDWR, not O_WRONLY: the fault injector's bit-flip reads the byte it
	// flips, and staged generations must be corruptible like any real file.
	f, err := st.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: staging generation: %w", err)
	}
	_, err = f.Write(frame)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		st.fs.Remove(tmp)
		return fmt.Errorf("checkpoint: writing generation %d: %w", gen, err)
	}
	if err := st.fs.Rename(tmp, filepath.Join(st.dir, name)); err != nil {
		st.fs.Remove(tmp)
		return fmt.Errorf("checkpoint: committing generation %d: %w", gen, err)
	}
	return st.fs.SyncDir(st.dir)
}

// Chain is the newest intact base plus the delta chain hanging off it, in
// fold order.
type Chain struct {
	// BaseGen and Gen bracket the chain: Gen/FP identify the head, which
	// new deltas chain onto after a resume.
	BaseGen uint64
	Gen     uint64
	FP      uint32
	// Payloads holds the base payload followed by each delta payload in
	// chain order.
	Payloads [][]byte
	// Deltas is len(Payloads)-1, for telemetry.
	Deltas int
	// Fallbacks counts generation files that existed but were unusable —
	// unreadable, truncated, mislabeled, or CRC-failing — and were skipped
	// on the way to an intact chain.
	Fallbacks int
}

// LoadChain picks the newest intact base and follows delta fingerprints
// upward. A nil chain (with nil error) means no usable generation exists —
// either a fresh directory or every generation corrupt; the fallback count
// distinguishes the two. Corruption is never fatal here: recovery degrades
// to WAL replay plus source re-read.
func (st *Store) LoadChain() (*Chain, int, error) {
	entries, err := st.fs.ReadDir(st.dir)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint: scanning store: %w", err)
	}
	fallbacks := 0
	var bases, deltas []GenFrame
	for _, e := range entries {
		kind, gen, ok := parseGenName(e.Name())
		if !ok || kind == 'w' {
			continue
		}
		raw, err := st.fs.ReadFile(filepath.Join(st.dir, e.Name()))
		if err != nil {
			fallbacks++
			continue
		}
		frame, err := DecodeGenFrame(raw)
		if err != nil || frame.Gen != gen ||
			(kind == 'b') != (frame.Kind == GenKindBase) {
			fallbacks++
			continue
		}
		if frame.Kind == GenKindBase {
			bases = append(bases, frame)
		} else {
			deltas = append(deltas, frame)
		}
	}
	if len(bases) == 0 {
		return nil, fallbacks, nil
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i].Gen > bases[j].Gen })
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Gen < deltas[j].Gen })
	base := bases[0]
	chain := &Chain{
		BaseGen:   base.Gen,
		Gen:       base.Gen,
		FP:        base.ChainFP,
		Payloads:  [][]byte{base.Payload},
		Fallbacks: fallbacks,
	}
	// Follow the fingerprint chain: each step takes the lowest-gen delta
	// above the head that names the head's fingerprint as its parent. The
	// iteration bound makes a (2^-32) fingerprint cycle terminate.
	for steps := 0; steps <= len(deltas); steps++ {
		var next *GenFrame
		for i := range deltas {
			d := &deltas[i]
			if d.Gen > chain.Gen && d.ParentFP == chain.FP {
				next = d
				break
			}
		}
		if next == nil {
			break
		}
		chain.Gen, chain.FP = next.Gen, next.ChainFP
		chain.Payloads = append(chain.Payloads, next.Payload)
		chain.Deltas++
	}
	return chain, fallbacks, nil
}

// ReplayWALSegments replays every retained WAL segment in generation order.
// fn sees records across segment boundaries as one logical log; an error
// from fn aborts the replay (the streaming recovery protocol uses a
// sentinel error to stop cleanly at a sequence gap).
func (st *Store) ReplayWALSegments(fn func(payload []byte) error) (int, error) {
	entries, err := st.fs.ReadDir(st.dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("checkpoint: scanning store: %w", err)
	}
	var gens []uint64
	for _, e := range entries {
		if kind, gen, ok := parseGenName(e.Name()); ok && kind == 'w' {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	total := 0
	for _, gen := range gens {
		n, err := ReplayWALFile(st.fs, st.WALSegmentPath(gen), fn)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// GC keeps the newest keep bases and removes everything they supersede:
// older bases, deltas at or below the oldest kept base's generation, and
// WAL segments below it (a segment numbered g holds only records appended
// after generation g was captured, which that base's state subsumes).
// Corrupt bases don't count toward keep — they are not recovery points.
func (st *Store) GC(keep int) error {
	if keep < 1 {
		keep = 1
	}
	entries, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: scanning store: %w", err)
	}
	var baseGens []uint64
	for _, e := range entries {
		kind, gen, ok := parseGenName(e.Name())
		if !ok || kind != 'b' {
			continue
		}
		raw, err := st.fs.ReadFile(filepath.Join(st.dir, e.Name()))
		if err != nil {
			continue
		}
		if _, err := DecodeGenFrame(raw); err == nil {
			baseGens = append(baseGens, gen)
		}
	}
	if len(baseGens) <= keep {
		return nil
	}
	sort.Slice(baseGens, func(i, j int) bool { return baseGens[i] > baseGens[j] })
	cutoff := baseGens[keep-1]
	for _, e := range entries {
		kind, gen, ok := parseGenName(e.Name())
		if !ok {
			continue
		}
		var dead bool
		switch kind {
		case 'b':
			dead = gen < cutoff
		case 'd':
			dead = gen <= cutoff
		case 'w':
			dead = gen < cutoff
		}
		if dead {
			if err := st.fs.Remove(filepath.Join(st.dir, e.Name())); err != nil {
				return fmt.Errorf("checkpoint: gc: %w", err)
			}
		}
	}
	return nil
}
