// Package checkpoint provides the durable-storage primitives behind the
// streaming service's crash safety: a versioned, CRC-guarded snapshot file
// with atomic rename-commit, and an append-only write-ahead log of framed,
// CRC-guarded records whose replay stops cleanly at a torn tail.
//
// The package is deliberately schema-free: payloads are opaque bytes. The
// streaming service (internal/stream) owns the snapshot schema and the
// recovery protocol — snapshot the full service state at a day boundary,
// log every ingested event ahead of applying it, and on restart restore the
// snapshot and replay the log through the deterministic ingest path. The
// split keeps the on-disk invariants (what "committed" means) auditable in
// one place, independent of what is being persisted.
//
// Durability model: snapshot commits are fsynced before the rename and the
// directory is fsynced after it, so a committed snapshot survives a machine
// crash. WAL appends reach the file with every write but are group-fsynced
// only at Sync points (day boundaries); a real deployment would tune that
// cadence. Torn or bit-flipped tails are detected by per-record CRCs and
// truncated at replay, never silently parsed.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

const (
	// snapshotName is the committed snapshot file inside a checkpoint
	// directory; snapshotTmp is its staging name before the rename-commit.
	snapshotName = "snapshot.ckpt"
	snapshotTmp  = "snapshot.tmp"
	// walName is the write-ahead log inside a checkpoint directory.
	walName = "wal.log"

	// snapshotMagic and walMagic guard against feeding the wrong file (or
	// garbage) to the decoder.
	snapshotMagic = "CMSNAP01"
	walMagic      = "CMWAL001"

	// FormatVersion is the on-disk format version of both files. Readers
	// reject other versions rather than guessing.
	FormatVersion = 1

	// maxRecordLen bounds a single WAL record, so a corrupt length field
	// cannot drive a multi-gigabyte allocation before the CRC check.
	maxRecordLen = 1 << 30
)

// ErrCorrupt is wrapped by errors reporting a snapshot that fails its magic,
// version, length, or CRC checks. A torn WAL *tail* is not corruption — it
// is the expected shape of a crash — and is reported via Replay's clean
// truncation instead.
var ErrCorrupt = errors.New("checkpoint: corrupt data")

// castagnoli is the CRC-32C table; Castagnoli has better error-detection
// properties than IEEE and hardware support on common CPUs.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SnapshotPath returns the committed snapshot's path inside dir.
func SnapshotPath(dir string) string { return filepath.Join(dir, snapshotName) }

// WALPath returns the write-ahead log's path inside dir.
func WALPath(dir string) string { return filepath.Join(dir, walName) }

// WriteSnapshot atomically commits payload as dir's snapshot: the framed
// payload is written to a temporary file, fsynced, and renamed over the
// committed name, so a crash at any instant leaves either the old snapshot
// or the new one — never a torn mix. The frame is
//
//	magic[8] version[u32] length[u64] crc32c[u32] payload
//
// with all integers little-endian and the CRC covering the payload only.
func WriteSnapshot(dir string, payload []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: creating %s: %w", dir, err)
	}
	tmp := filepath.Join(dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: staging snapshot: %w", err)
	}
	header := make([]byte, 0, 8+4+8+4)
	header = append(header, snapshotMagic...)
	header = binary.LittleEndian.AppendUint32(header, FormatVersion)
	header = binary.LittleEndian.AppendUint64(header, uint64(len(payload)))
	header = binary.LittleEndian.AppendUint32(header, crc32.Checksum(payload, castagnoli))
	err = write2(f, header, payload)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, SnapshotPath(dir)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: committing snapshot: %w", err)
	}
	return syncDir(dir)
}

// ReadSnapshot loads dir's committed snapshot payload. ok is false (with a
// nil error) when no snapshot has ever been committed; a snapshot that fails
// its magic, version, or CRC checks is an ErrCorrupt error — recovery must
// not guess at state.
func ReadSnapshot(dir string) (payload []byte, ok bool, err error) {
	raw, err := os.ReadFile(SnapshotPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint: reading snapshot: %w", err)
	}
	const headerLen = 8 + 4 + 8 + 4
	if len(raw) < headerLen {
		return nil, false, fmt.Errorf("%w: snapshot truncated at %d bytes", ErrCorrupt, len(raw))
	}
	if string(raw[:8]) != snapshotMagic {
		return nil, false, fmt.Errorf("%w: bad snapshot magic %q", ErrCorrupt, raw[:8])
	}
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != FormatVersion {
		return nil, false, fmt.Errorf("%w: unsupported snapshot version %d", ErrCorrupt, v)
	}
	n := binary.LittleEndian.Uint64(raw[12:20])
	if n != uint64(len(raw)-headerLen) {
		return nil, false, fmt.Errorf("%w: snapshot length %d, frame says %d",
			ErrCorrupt, len(raw)-headerLen, n)
	}
	want := binary.LittleEndian.Uint32(raw[20:24])
	payload = raw[headerLen:]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, false, fmt.Errorf("%w: snapshot crc %08x, want %08x", ErrCorrupt, got, want)
	}
	return payload, true, nil
}

// WAL is an open write-ahead log. Appends are buffered in userspace and
// reach the file at Sync (which also fsyncs), Close, or when the buffer
// fills. Losing a buffered tail in a crash is safe by protocol: recovery
// re-reads exactly the events the log is missing from the source, because
// the resume cursor counts only replayed records.
//
// The day clock is the only appender. With StartGroupCommit a background
// syncer turns RequestSync into a batched, asynchronous fsync — group
// commit — so the ingest thread never waits on the disk; its Sync errors
// surface at the next RequestSync/Sync/Close.
type WAL struct {
	f File
	w *bufio.Writer

	// Group-commit syncer state: nil syncReq means synchronous mode.
	syncReq chan struct{}
	syncWG  sync.WaitGroup
	errMu   sync.Mutex
	syncErr error
}

// OpenWAL opens (creating if needed) dir's write-ahead log for appending.
// A new log starts with the magic+version preamble; an existing log is
// validated against it.
func OpenWAL(dir string) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", dir, err)
	}
	return OpenWALFile(OsFS{}, WALPath(dir))
}

// OpenWALFile opens (creating if needed) a write-ahead log at path through
// fsys — the FS-parameterized core of OpenWAL, used by the generation store
// for its numbered WAL segments.
func OpenWALFile(fsys FS, path string) (*WAL, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: opening wal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: opening wal: %w", err)
	}
	preamble := make([]byte, 0, 12)
	preamble = append(preamble, walMagic...)
	preamble = binary.LittleEndian.AppendUint32(preamble, FormatVersion)
	if info.Size() < int64(len(preamble)) {
		// Empty, or a torn preamble from a crash during initialization —
		// either way the log holds no records; start it over.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: initializing wal: %w", err)
		}
		if _, err := f.Write(preamble); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: initializing wal: %w", err)
		}
		// Harden the preamble before any record can follow it: the frame
		// that makes the file parseable must not itself be torn state.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: initializing wal: %w", err)
		}
	} else {
		have := make([]byte, len(preamble))
		if _, err := io.ReadFull(f, have); err != nil || string(have) != string(preamble) {
			f.Close()
			return nil, fmt.Errorf("%w: bad wal preamble", ErrCorrupt)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: seeking wal: %w", err)
	}
	return &WAL{f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

// Append buffers one framed record:
//
//	length[u32] crc32c[u32] payload
func (w *WAL) Append(payload []byte) error {
	if len(payload) > maxRecordLen {
		return fmt.Errorf("checkpoint: wal record of %d bytes exceeds limit", len(payload))
	}
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	if _, err := w.w.Write(frame[:]); err != nil {
		return fmt.Errorf("checkpoint: appending wal record: %w", err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return fmt.Errorf("checkpoint: appending wal record: %w", err)
	}
	return nil
}

// Sync flushes buffered records to stable storage, surfacing any pending
// error from the background group-commit syncer.
func (w *WAL) Sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	return w.takeSyncErr()
}

// StartGroupCommit launches the background syncer so RequestSync batches
// fsyncs off the appending thread. Idempotent.
func (w *WAL) StartGroupCommit() {
	if w.syncReq != nil {
		return
	}
	w.syncReq = make(chan struct{}, 1)
	w.syncWG.Add(1)
	go func() {
		defer w.syncWG.Done()
		for range w.syncReq {
			if err := w.f.Sync(); err != nil {
				w.errMu.Lock()
				if w.syncErr == nil {
					w.syncErr = err
				}
				w.errMu.Unlock()
			}
		}
	}()
}

// RequestSync flushes buffered records to the file and asks the background
// syncer for an fsync without waiting for it — one group commit. Several
// requests arriving while a sync is in flight coalesce into the next one.
// Without StartGroupCommit it degrades to a synchronous Sync. The returned
// error includes any failure from earlier asynchronous syncs.
func (w *WAL) RequestSync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.syncReq == nil {
		return w.f.Sync()
	}
	select {
	case w.syncReq <- struct{}{}:
	default: // a sync is already pending; it will cover these bytes
	}
	return w.takeSyncErr()
}

// stopSyncer drains and stops the group-commit goroutine, if running.
func (w *WAL) stopSyncer() {
	if w.syncReq == nil {
		return
	}
	close(w.syncReq)
	w.syncWG.Wait()
	w.syncReq = nil
}

func (w *WAL) takeSyncErr() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	err := w.syncErr
	w.syncErr = nil
	return err
}

// Close flushes buffered records and closes the log file.
func (w *WAL) Close() error {
	w.stopSyncer()
	err := w.w.Flush()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = w.takeSyncErr()
	}
	return err
}

// Abandon closes the log file WITHOUT flushing buffered appends, discarding
// up to a buffer's worth of tail records — exactly what a process kill does
// to them. The fault-injection harness exits through this path so simulated
// crashes leave the log no more durable than real ones; recovery is
// indifferent (the resume cursor counts only replayed records, and the
// dropped events are re-read from the source).
func (w *WAL) Abandon() error {
	w.stopSyncer()
	return w.f.Close()
}

// ResetWAL truncates dir's write-ahead log to empty — called right after a
// snapshot commit, whose state subsumes every logged record. The truncation
// is atomic (fresh file + rename), so a crash between snapshot and reset
// leaves snapshot + full log: replaying the subsumed records is rejected by
// the recovery protocol's ingest cursor, never double-applied.
func ResetWAL(dir string) error {
	tmp := filepath.Join(dir, walName+".tmp")
	preamble := make([]byte, 0, 12)
	preamble = append(preamble, walMagic...)
	preamble = binary.LittleEndian.AppendUint32(preamble, FormatVersion)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: staging wal reset: %w", err)
	}
	// Fsync before the rename, as WriteSnapshot does: committing the name
	// without the preamble's bytes would leave a zero-length log a machine
	// crash turns into an unreadable checkpoint directory.
	_, err = f.Write(preamble)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: staging wal reset: %w", err)
	}
	if err := os.Rename(tmp, WALPath(dir)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: resetting wal: %w", err)
	}
	return syncDir(dir)
}

// ReplayWAL invokes fn on every intact record of dir's write-ahead log in
// append order and returns how many records were delivered. A missing log
// replays zero records. A truncated or CRC-failing *tail* ends the replay
// cleanly — that is what a crash mid-append looks like — but a corrupt
// preamble is an ErrCorrupt error, and an error from fn aborts the replay.
func ReplayWAL(dir string, fn func(payload []byte) error) (int, error) {
	return ReplayWALFile(OsFS{}, WALPath(dir), fn)
}

// ReplayWALFile is ReplayWAL over an arbitrary FS and explicit path — the
// core the generation store replays its numbered WAL segments through.
func ReplayWALFile(fsys FS, path string, fn func(payload []byte) error) (int, error) {
	raw, err := fsys.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("checkpoint: reading wal: %w", err)
	}
	if len(raw) < 12 {
		// Empty or torn preamble — what a crash during initialization
		// leaves behind. No record can precede the preamble, so the log
		// holds nothing to replay.
		return 0, nil
	}
	if string(raw[:8]) != walMagic ||
		binary.LittleEndian.Uint32(raw[8:12]) != FormatVersion {
		return 0, fmt.Errorf("%w: bad wal preamble", ErrCorrupt)
	}
	off, n := 12, 0
	for {
		if len(raw)-off < 8 {
			return n, nil // torn frame header: clean end of log
		}
		length := int(binary.LittleEndian.Uint32(raw[off : off+4]))
		want := binary.LittleEndian.Uint32(raw[off+4 : off+8])
		if length > maxRecordLen || len(raw)-off-8 < length {
			return n, nil // torn payload: clean end of log
		}
		payload := raw[off+8 : off+8+length]
		if crc32.Checksum(payload, castagnoli) != want {
			return n, nil // bit-flipped tail: stop before it
		}
		if err := fn(payload); err != nil {
			return n, err
		}
		n++
		off += 8 + length
	}
}

// write2 writes two byte slices back to back.
func write2(f *os.File, a, b []byte) error {
	if _, err := f.Write(a); err != nil {
		return err
	}
	_, err := f.Write(b)
	return err
}

// syncDir fsyncs a directory so a just-committed rename survives a machine
// crash (best-effort on filesystems that reject directory fsync).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync() // ignore: some filesystems refuse directory fsync
	return nil
}
