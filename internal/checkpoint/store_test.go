package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// chainPayloads extracts the payloads of a loaded chain as strings.
func chainPayloads(c *Chain) []string {
	out := make([]string, len(c.Payloads))
	for i, p := range c.Payloads {
		out[i] = string(p)
	}
	return out
}

func TestGenFrameRoundtrip(t *testing.T) {
	payload := []byte(`{"day": 42}`)
	baseFP := ChainFP(0, payload)

	raw := EncodeGenFrame(GenKindBase, 7, 0, baseFP, payload)
	g, err := DecodeGenFrame(raw)
	if err != nil {
		t.Fatalf("decoding base frame: %v", err)
	}
	if g.Kind != GenKindBase || g.Gen != 7 || g.ParentFP != 0 || !bytes.Equal(g.Payload, payload) {
		t.Fatalf("base frame roundtrip: %+v", g)
	}

	deltaFP := ChainFP(baseFP, payload)
	raw = EncodeGenFrame(GenKindDelta, 8, baseFP, deltaFP, payload)
	g, err = DecodeGenFrame(raw)
	if err != nil {
		t.Fatalf("decoding delta frame: %v", err)
	}
	if g.Kind != GenKindDelta || g.Gen != 8 || g.ParentFP != baseFP || g.ChainFP != deltaFP {
		t.Fatalf("delta frame roundtrip: %+v", g)
	}
}

func TestDecodeGenFrameRefusesCorruption(t *testing.T) {
	payload := []byte("state")
	fp := ChainFP(0, payload)
	valid := EncodeGenFrame(GenKindBase, 3, 0, fp, payload)

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		raw := mutate(bytes.Clone(valid))
		if _, err := DecodeGenFrame(raw); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}

	corrupt("empty", func(b []byte) []byte { return nil })
	corrupt("truncated header", func(b []byte) []byte { return b[:10] })
	corrupt("truncated payload", func(b []byte) []byte { return b[:len(b)-1] })
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	corrupt("bad version", func(b []byte) []byte { b[8] ^= 0xff; return b })
	corrupt("bad kind", func(b []byte) []byte { b[12] = 99; return b })
	corrupt("flipped payload bit", func(b []byte) []byte { b[len(b)-1] ^= 1; return b })
	corrupt("inflated length", func(b []byte) []byte { b[29]++; return b })

	// A delta whose linkage was tampered with must be refused even though
	// its payload CRC still holds.
	deltaFP := ChainFP(fp, payload)
	tampered := EncodeGenFrame(GenKindDelta, 4, fp, deltaFP, payload)
	tampered[21] ^= 1 // parentFP byte
	if _, err := DecodeGenFrame(tampered); !errors.Is(err, ErrCorrupt) {
		t.Errorf("tampered delta linkage: got %v, want ErrCorrupt", err)
	}
}

func TestLoadChainFollowsFingerprints(t *testing.T) {
	st := NewStore(t.TempDir(), nil)
	fp, err := st.WriteBase(1, []byte("base1"))
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := st.WriteDelta(2, fp, []byte("delta2"))
	if err != nil {
		t.Fatal(err)
	}
	fp3, err := st.WriteDelta(3, fp2, []byte("delta3"))
	if err != nil {
		t.Fatal(err)
	}
	// A delta naming a stale parent (simulating a crash that lost its true
	// parent) must not be followed.
	if _, err := st.WriteDelta(4, 0xdeadbeef, []byte("orphan4")); err != nil {
		t.Fatal(err)
	}

	chain, fallbacks, err := st.LoadChain()
	if err != nil {
		t.Fatal(err)
	}
	if chain == nil || fallbacks != 0 {
		t.Fatalf("chain %v, fallbacks %d", chain, fallbacks)
	}
	if chain.BaseGen != 1 || chain.Gen != 3 || chain.FP != fp3 || chain.Deltas != 2 {
		t.Fatalf("chain head: %+v", chain)
	}
	want := []string{"base1", "delta2", "delta3"}
	if got := chainPayloads(chain); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("payload order %v, want %v", got, want)
	}

	// A compacted base keeps the head's identity: replacing gens 1–3 with a
	// base at (3, fp3) must leave later deltas chaining on unchanged.
	if err := st.WriteBaseLinked(3, fp3, []byte("compacted3")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteDelta(5, fp3, []byte("delta5")); err != nil {
		t.Fatal(err)
	}
	chain, _, err = st.LoadChain()
	if err != nil {
		t.Fatal(err)
	}
	if chain.BaseGen != 3 || chain.Gen != 5 || chain.Deltas != 1 {
		t.Fatalf("post-compaction chain: %+v", chain)
	}
	want = []string{"compacted3", "delta5"}
	if got := chainPayloads(chain); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-compaction payloads %v, want %v", got, want)
	}
}

func TestLoadChainFallsBackPastCorruption(t *testing.T) {
	dir := t.TempDir()
	st := NewStore(dir, nil)
	fp1, err := st.WriteBase(1, []byte("base1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteDelta(2, fp1, []byte("delta2")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteBase(3, []byte("base3")); err != nil {
		t.Fatal(err)
	}

	// Flip one bit in the newest base: recovery must fall back to the older
	// base plus its delta, counting the corrupt file.
	path := filepath.Join(dir, "base-00000003.ckpt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	chain, fallbacks, err := st.LoadChain()
	if err != nil {
		t.Fatal(err)
	}
	if fallbacks != 1 {
		t.Fatalf("fallbacks %d, want 1", fallbacks)
	}
	if chain == nil || chain.BaseGen != 1 || chain.Gen != 2 {
		t.Fatalf("fallback chain: %+v", chain)
	}

	// With every generation corrupt, LoadChain reports nothing intact —
	// never an error, never corrupt payloads.
	for _, name := range []string{"base-00000001.ckpt", "delta-00000002.ckpt"} {
		if err := os.Truncate(filepath.Join(dir, name), 5); err != nil {
			t.Fatal(err)
		}
	}
	chain, fallbacks, err = st.LoadChain()
	if err != nil {
		t.Fatal(err)
	}
	if chain != nil || fallbacks != 3 {
		t.Fatalf("all-corrupt store: chain %v, fallbacks %d", chain, fallbacks)
	}
}

func TestGCKeepsNewestGenerations(t *testing.T) {
	dir := t.TempDir()
	st := NewStore(dir, nil)
	fp := uint32(0)
	for gen := uint64(1); gen <= 6; gen++ {
		var err error
		if gen%3 == 1 {
			fp, err = st.WriteBase(gen, []byte(fmt.Sprintf("base%d", gen)))
		} else {
			fp, err = st.WriteDelta(gen, fp, []byte(fmt.Sprintf("delta%d", gen)))
		}
		if err != nil {
			t.Fatal(err)
		}
		w, err := st.OpenWALSegment(gen)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Bases at 1 and 4; keep=1 retains base 4 and everything above it,
	// including WAL segment 4 (records appended after capture 4).
	if err := st.GC(1); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	want := []string{
		"base-00000004.ckpt",
		"delta-00000005.ckpt", "delta-00000006.ckpt",
		"wal-00000004.log", "wal-00000005.log", "wal-00000006.log",
	}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("after GC: %v, want %v", names, want)
	}

	chain, _, err := st.LoadChain()
	if err != nil {
		t.Fatal(err)
	}
	if chain == nil || chain.BaseGen != 4 || chain.Gen != 6 {
		t.Fatalf("chain after GC: %+v", chain)
	}

	// MaxGen never shrinks below a number any file has used.
	max, err := st.MaxGen()
	if err != nil {
		t.Fatal(err)
	}
	if max != 6 {
		t.Fatalf("MaxGen %d, want 6", max)
	}
}

func TestGCSkipsCorruptBases(t *testing.T) {
	dir := t.TempDir()
	st := NewStore(dir, nil)
	for gen := uint64(1); gen <= 3; gen++ {
		if _, err := st.WriteBase(gen, []byte(fmt.Sprintf("base%d", gen))); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest base: it is not a recovery point, so keep=1 must
	// retain base 2, not count base 3 toward the quota.
	path := filepath.Join(dir, "base-00000003.ckpt")
	raw, _ := os.ReadFile(path)
	raw[0] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.GC(1); err != nil {
		t.Fatal(err)
	}
	chain, _, err := st.LoadChain()
	if err != nil {
		t.Fatal(err)
	}
	if chain == nil || chain.BaseGen != 2 {
		t.Fatalf("chain after GC with corrupt head: %+v", chain)
	}
}

func TestFaultFSTornRenameDetected(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, FaultSpec{Seed: 7, TornRename: 1, MaxFaults: 1})
	st := NewStore(dir, ffs)

	if _, err := st.WriteBase(1, []byte("good base")); err == nil {
		// Torn renames are silent; the corruption surfaces on read-back.
		t.Log("torn rename reported success, as a real interrupted rename would")
	}
	if ffs.Injected() != 1 {
		t.Fatalf("injected %d faults, want 1", ffs.Injected())
	}
	chain, fallbacks, err := st.LoadChain()
	if err != nil {
		t.Fatal(err)
	}
	// The torn destination is either absent (zero-length prefix decode
	// fails) or a refused partial frame — never served as state.
	if chain != nil && string(chain.Payloads[0]) != "good base" {
		t.Fatalf("served corrupt payload %q", chain.Payloads[0])
	}
	if chain == nil && fallbacks == 0 {
		t.Fatal("torn rename left nothing and counted no fallback")
	}
}

func TestFaultFSBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, FaultSpec{Seed: 11, BitFlip: 1, MaxFaults: 1})
	st := NewStore(dir, ffs)

	if _, err := st.WriteBase(1, []byte("flip target payload")); err != nil {
		t.Fatal(err)
	}
	if ffs.Injected() != 1 {
		t.Fatalf("injected %d faults, want 1", ffs.Injected())
	}
	// The invariant: recovery never serves bytes that differ from what was
	// committed. A flip in the payload or a checked header field is refused
	// (fallback); a flip confined to a base's unverifiable chain-fingerprint
	// field merely detaches later deltas — the payload served is intact.
	chain, fallbacks, err := st.LoadChain()
	if err != nil {
		t.Fatal(err)
	}
	if chain != nil && string(chain.Payloads[0]) != "flip target payload" {
		t.Fatalf("served corrupt payload %q", chain.Payloads[0])
	}
	if chain == nil && fallbacks != 1 {
		t.Fatalf("refused base but counted %d fallbacks", fallbacks)
	}

	// The budget is spent: a later clean base always wins.
	if _, err := st.WriteBase(2, []byte("clean base")); err != nil {
		t.Fatal(err)
	}
	chain, _, err = st.LoadChain()
	if err != nil {
		t.Fatal(err)
	}
	if chain == nil || string(chain.Payloads[0]) != "clean base" {
		t.Fatalf("chain %+v, want the clean base", chain)
	}
}

func TestFaultFSDeterministic(t *testing.T) {
	run := func() (faults int, names []string) {
		dir := t.TempDir()
		ffs := NewFaultFS(nil, FaultSpec{
			Seed: 42, ShortWrite: 0.3, FsyncFail: 0.2, TornRename: 0.3, BitFlip: 0.2,
		})
		st := NewStore(dir, ffs)
		fp := uint32(0)
		for gen := uint64(1); gen <= 8; gen++ {
			if gen%4 == 1 {
				fp, _ = st.WriteBase(gen, []byte(fmt.Sprintf("base%d", gen)))
			} else {
				fp, _ = st.WriteDelta(gen, fp, []byte(fmt.Sprintf("delta%d", gen)))
			}
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			info, _ := e.Info()
			names = append(names, fmt.Sprintf("%s:%d", e.Name(), info.Size()))
		}
		return ffs.Injected(), names
	}
	faults1, names1 := run()
	faults2, names2 := run()
	if faults1 != faults2 || fmt.Sprint(names1) != fmt.Sprint(names2) {
		t.Fatalf("same seed diverged: %d faults %v vs %d faults %v",
			faults1, names1, faults2, names2)
	}
	if faults1 == 0 {
		t.Fatal("high fault rates injected nothing; the injector is inert")
	}
}

// FuzzDeltaFrame holds the delta-frame decoder to its contract: arbitrary
// bytes never panic, and every failure — truncation, tampered linkage,
// flipped payload bits — is refused with ErrCorrupt. A frame that decodes
// cleanly must re-encode to exactly the input bytes, so the decoder cannot
// silently normalize (and thus mask) malformed frames.
func FuzzDeltaFrame(f *testing.F) {
	payload := []byte(`{"devices":[{"id":1}]}`)
	baseFP := ChainFP(0, payload)
	f.Add(EncodeGenFrame(GenKindBase, 1, 0, baseFP, payload))
	f.Add(EncodeGenFrame(GenKindDelta, 2, baseFP, ChainFP(baseFP, payload), payload))
	f.Add(EncodeGenFrame(GenKindDelta, 2, baseFP, ChainFP(baseFP, payload), payload)[:20])
	f.Add([]byte("CMGEN001 not a frame at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		g, err := DecodeGenFrame(raw)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode failure not wrapped in ErrCorrupt: %v", err)
			}
			return
		}
		if !bytes.Equal(EncodeGenFrame(g.Kind, g.Gen, g.ParentFP, g.ChainFP, g.Payload), raw) {
			t.Fatalf("accepted frame does not re-encode to itself: %+v", g)
		}
	})
}
