package checkpoint

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the narrow filesystem surface the durability layer writes through.
// Production uses OsFS; tests substitute FaultFS to inject disk faults
// (short writes, fsync failures, torn renames, bit-flips) underneath the
// exact code paths that run in production. The interface is deliberately
// small: every durable artifact — snapshot generations and WAL segments —
// is created, synced, renamed, and read back through these calls, so a
// fault injected here is a fault the recovery protocol must survive.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory so a rename into it survives power loss.
	// Implementations may degrade to a no-op on filesystems that refuse
	// directory syncs; the frame CRCs still catch the resulting holes.
	SyncDir(dir string) error
}

// File is the per-file surface: sequential writes for appends, positioned
// reads/writes for corruption injection and inspection, plus the durability
// calls (Sync) the group-commit protocol batches.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	io.ReaderAt
	io.WriterAt
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// OsFS is the passthrough implementation over the real filesystem.
type OsFS struct{}

// OpenFile implements FS.
func (OsFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename implements FS.
func (OsFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OsFS) Remove(name string) error { return os.Remove(name) }

// ReadFile implements FS.
func (OsFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS.
func (OsFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// MkdirAll implements FS.
func (OsFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// SyncDir implements FS. Best-effort, like syncDir: some filesystems refuse
// to sync directories, and the CRC frames catch what slips through.
func (OsFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
