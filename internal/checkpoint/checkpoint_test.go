package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadSnapshot(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%t err=%v", ok, err)
	}
	payload := []byte(`{"state":"day 12"}`)
	if err := WriteSnapshot(dir, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadSnapshot(dir)
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: ok=%t err=%v payload=%q", ok, err, got)
	}
	// Overwrite commits atomically over the previous snapshot.
	if err := WriteSnapshot(dir, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _, _ = ReadSnapshot(dir)
	if string(got) != "v2" {
		t.Fatalf("after overwrite: %q", got)
	}
}

func TestSnapshotDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, []byte("the ledger state")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(SnapshotPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"flipped payload bit": func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		"flipped header bit":  func(b []byte) []byte { b[2] ^= 1; return b },
		"truncated":           func(b []byte) []byte { return b[:len(b)-3] },
		"truncated header":    func(b []byte) []byte { return b[:10] },
		"bad version": func(b []byte) []byte {
			b[8] ^= 0xff
			return b
		},
	} {
		mutated := mutate(append([]byte(nil), raw...))
		if err := os.WriteFile(SnapshotPath(dir), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadSnapshot(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 10; i++ {
		rec := []byte(fmt.Sprintf("event-%d", i))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	n, err := ReplayWAL(dir, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil || n != len(want) {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: %q != %q", i, got[i], want[i])
		}
	}

	// Reopening appends after the existing records.
	w, err = OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("late")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	n, _ = ReplayWAL(dir, func([]byte) error { return nil })
	if n != 11 {
		t.Fatalf("after reopen: %d records", n)
	}
}

func TestWALTornTailTruncatesCleanly(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	raw, err := os.ReadFile(WALPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	// A crash mid-append can tear the tail anywhere: replay must deliver
	// every intact prefix record and stop, never erroring or delivering a
	// torn one.
	for cut := len(raw) - 1; cut > 12; cut-- {
		if err := os.WriteFile(WALPath(dir), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		n, err := ReplayWAL(dir, func([]byte) error { return nil })
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if n > 4 {
			t.Fatalf("cut at %d replayed %d records from a torn log", cut, n)
		}
	}

	// A bit flip in a middle record stops replay before the flip.
	flipped := append([]byte(nil), raw...)
	flipped[30] ^= 1
	if err := os.WriteFile(WALPath(dir), flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := ReplayWAL(dir, func([]byte) error { return nil }); err != nil || n >= 5 {
		t.Fatalf("bit-flipped log: n=%d err=%v", n, err)
	}

	// A corrupt preamble is an error, not a silent empty log.
	if err := os.WriteFile(WALPath(dir), []byte("NOTAWAL0....."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayWAL(dir, func([]byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad preamble: %v", err)
	}

	// A *torn* preamble (crash during initialization, before the fsync
	// landed) is an empty log, not corruption: replay finds nothing and
	// reopening reinitializes the file.
	for _, torn := range [][]byte{{}, raw[:5]} {
		if err := os.WriteFile(WALPath(dir), torn, 0o644); err != nil {
			t.Fatal(err)
		}
		if n, err := ReplayWAL(dir, func([]byte) error { return nil }); err != nil || n != 0 {
			t.Fatalf("torn preamble (%d bytes): n=%d err=%v", len(torn), n, err)
		}
		w, err := OpenWAL(dir)
		if err != nil {
			t.Fatalf("reopening torn preamble: %v", err)
		}
		if err := w.Append([]byte("fresh")); err != nil {
			t.Fatal(err)
		}
		w.Close()
		if n, err := ReplayWAL(dir, func([]byte) error { return nil }); err != nil || n != 1 {
			t.Fatalf("after reinit: n=%d err=%v", n, err)
		}
	}
}

func TestResetWAL(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.Append([]byte("old"))
	w.Close()
	if err := ResetWAL(dir); err != nil {
		t.Fatal(err)
	}
	n, err := ReplayWAL(dir, func([]byte) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("after reset: n=%d err=%v", n, err)
	}
	// The reset log is a valid append target.
	w, err = OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("new")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	n, _ = ReplayWAL(dir, func([]byte) error { return nil })
	if n != 1 {
		t.Fatalf("after reset+append: %d records", n)
	}
}

func TestReplayStopsOnCallbackError(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(dir)
	w.Append([]byte("a"))
	w.Append([]byte("b"))
	w.Close()
	boom := errors.New("boom")
	n, err := ReplayWAL(dir, func(p []byte) error {
		if string(p) == "b" {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}
