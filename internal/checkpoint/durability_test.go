// The durability property harness: random interleavings of ingest, delta
// capture, base compaction, crashes, and injected disk faults (errfs) must
// always converge to a run bit-identical to an undisturbed reference —
// including the admission counters (LatePolicy drops) and the per-device
// ledger denial counters that only exist because hostile traffic was
// drained. This is the fault-matrix complement to sim_test.go's exhaustive
// crash-at-every-point matrix: there the disk is honest and the crash
// placement is exhaustive; here the crash placement is randomized and the
// disk itself lies (short writes, failed fsyncs, torn renames, bit flips).
package checkpoint_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/scenario"
	"repro/internal/stream"
	"repro/internal/workload"
)

// durabilitySpec is the hostile-traffic scenario the property runs under:
// late re-delivery exercises the LatePolicy drop counters, the adversarial
// querier exercises ledger denials — both state that must survive recovery.
func durabilitySpec() scenario.Spec {
	return scenario.Spec{
		Name: "durability-property",
		Seed: 7,
		Late: &scenario.LateSpec{Fraction: 0.08, DelayDays: 3},
		Adversary: &scenario.AdversarySpec{
			Site:              "attacker.example",
			TargetDevices:     6,
			ConversionsPerDay: 4,
			BatchSize:         50,
			MaxValue:          1,
			AvgReportValue:    2,
		},
	}
}

// durabilityCfg is the shared workload configuration (checkpoint knobs added
// per run).
func durabilityCfg(t *testing.T) (workload.Config, scenario.Spec, *workload.Run) {
	t.Helper()
	h, err := scenario.DefaultHarness()
	if err != nil {
		t.Fatal(err)
	}
	spec := durabilitySpec()
	base := h.Dataset
	cfg := h.Config
	cfg.Dataset = nil
	cfg.DropLate = true
	cfg.Parallelism = 4

	ref, err := workload.ExecuteSource(cfg, spec.Source(base))
	if err != nil {
		t.Fatal(err)
	}
	if ref.EventsDropped == 0 {
		t.Fatal("reference run dropped nothing; the LatePolicy path is not exercised")
	}
	if ref.BudgetDenials() == 0 {
		t.Fatal("reference run denied nothing; the ledger-denial path is not exercised")
	}
	h.Dataset = base
	return cfg, spec, ref
}

// checkRun compares one recovered run against the reference on everything
// the durability contract promises to preserve.
func checkRun(t *testing.T, label string, ref, run *workload.Run) {
	t.Helper()
	if got, want := run.CanonicalDigest(), ref.CanonicalDigest(); got != want {
		t.Errorf("%s: digest %s, want %s", label, got, want)
		diffRuns(t, ref, run)
	}
	if run.EventsDropped != ref.EventsDropped {
		t.Errorf("%s: %d dropped events, want %d", label, run.EventsDropped, ref.EventsDropped)
	}
	if got, want := run.BudgetDenials(), ref.BudgetDenials(); got != want {
		t.Errorf("%s: %d ledger denials, want %d", label, got, want)
	}
}

// diffRuns narrows a digest mismatch down to the fields that diverged, so
// a failing interleaving reports what recovery got wrong rather than two
// opaque hashes.
func diffRuns(t *testing.T, ref, run *workload.Run) {
	t.Helper()
	t.Logf("diff: ingested %d vs %d, requested device-epochs %d vs %d, results %d vs %d",
		ref.EventsIngested, run.EventsIngested,
		ref.RequestedDeviceEpochs(), run.RequestedDeviceEpochs(),
		len(ref.Results), len(run.Results))
	refAvg, refMax := ref.BudgetStats()
	runAvg, runMax := run.BudgetStats()
	if refAvg != runAvg || refMax != runMax {
		t.Logf("diff: budget avg/max %v/%v vs %v/%v", refAvg, refMax, runAvg, runMax)
	}
	n := len(ref.Results)
	if len(run.Results) < n {
		n = len(run.Results)
	}
	shown := 0
	for i := 0; i < n && shown < 5; i++ {
		a, b := ref.Results[i], run.Results[i]
		if a != b {
			t.Logf("diff: result %d: ref %+v vs run %+v", i, a, b)
			shown++
		}
	}
}

// TestDurabilityPropertyRandomFaults is the property: for every seeded
// placement of crashes and disk faults, bounded retries always land on a
// completed run identical to the reference, in delta and full snapshot mode
// alike. The fault budget (MaxFaults) guarantees termination: once spent,
// the filesystem behaves and a crash-free attempt completes.
func TestDurabilityPropertyRandomFaults(t *testing.T) {
	cfg, spec, ref := durabilityCfg(t)
	h, err := scenario.DefaultHarness()
	if err != nil {
		t.Fatal(err)
	}
	seeds := []uint64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, mode := range []string{stream.SnapshotModeDelta, stream.SnapshotModeFull} {
		for _, seed := range seeds {
			seed := seed
			t.Run(fmt.Sprintf("%s-seed-%d", mode, seed), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(int64(seed)))
				dir := t.TempDir()
				ffs := checkpoint.NewFaultFS(nil, checkpoint.FaultSpec{
					Seed:       seed,
					MaxFaults:  4,
					ShortWrite: 0.10,
					FsyncFail:  0.10,
					TornRename: 0.25,
					BitFlip:    0.10,
				})

				attempt := func(n int, resume bool) (*workload.Run, error) {
					run := cfg
					run.CheckpointDir = dir
					run.SnapshotEveryDays = 7
					run.SnapshotMode = mode
					run.BaseEveryDeltas = 2
					run.KeepGenerations = 2
					run.GroupCommitEvents = 64
					run.DurableFS = ffs
					run.Resume = resume
					// The first few attempts also crash at a random firing
					// of a random fault point; later attempts rely only on
					// whatever disk faults remain in the budget.
					if n < 5 {
						point := stream.Points[rng.Intn(len(stream.Points))]
						target := 1 + rng.Intn(120)
						fired := 0
						run.FaultHook = func(p stream.FaultPoint) error {
							if p == point {
								fired++
								if fired == target {
									return errInjected
								}
							}
							return nil
						}
					}
					return workload.ExecuteSource(run, spec.Source(h.Dataset))
				}

				const maxAttempts = 12
				var run *workload.Run
				var lastErr error
				for n := 0; n < maxAttempts; n++ {
					run, lastErr = attempt(n, n > 0)
					if lastErr == nil {
						break
					}
					// Every failure — injected crash or surfaced disk
					// fault — is a legal interleaving; recovery must absorb
					// it on a later attempt.
					t.Logf("attempt %d: %v", n, lastErr)
				}
				if lastErr != nil {
					t.Fatalf("no convergence after %d attempts: %v (faults injected: %d)",
						maxAttempts, lastErr, ffs.Injected())
				}
				checkRun(t, fmt.Sprintf("mode %s seed %d", mode, seed), ref, run)
			})
		}
	}
}

// TestCorruptWALSegmentRecovered pins the WAL half of the fallback
// contract: a flipped bit in a retained WAL segment's preamble must not
// make the directory unrecoverable. Replay stops at the corrupt segment as
// if the log ended there, the source re-delivers the tail, and the skipped
// segment is reported as a fallback.
func TestCorruptWALSegmentRecovered(t *testing.T) {
	cfg, spec, ref := durabilityCfg(t)
	h, err := scenario.DefaultHarness()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	crash := cfg
	crash.CheckpointDir = dir
	crash.SnapshotEveryDays = 7
	fired := 0
	crash.FaultHook = func(p stream.FaultPoint) error {
		if p == stream.PointSnapshotCommitted {
			fired++
			if fired == 2 {
				return errInjected
			}
		}
		return nil
	}
	if _, err := workload.ExecuteSource(crash, spec.Source(h.Dataset)); !errors.Is(err, errInjected) {
		t.Fatalf("crash run: %v", err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wals []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".log") {
			wals = append(wals, e.Name())
		}
	}
	if len(wals) == 0 {
		t.Fatal("crash left no WAL segments to corrupt")
	}
	sort.Strings(wals)
	path := filepath.Join(dir, wals[len(wals)-1])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	resume := cfg
	resume.CheckpointDir = dir
	resume.SnapshotEveryDays = 7
	resume.Resume = true
	run, err := workload.ExecuteSource(resume, spec.Source(h.Dataset))
	if err != nil {
		t.Fatalf("resume over corrupt wal segment: %v", err)
	}
	checkRun(t, "corrupt wal resume", ref, run)
	if run.Durability.RecoveryFallbacks == 0 {
		t.Fatal("recovery skipped a corrupt WAL segment but reported no fallbacks")
	}
}

// TestRecoveryFallbackReported pins the telemetry half of the contract
// deterministically: corrupt the newest generation on disk after a crash
// and the resumed run must both converge to the reference and report the
// fallback it took in Run.Durability.RecoveryFallbacks.
func TestRecoveryFallbackReported(t *testing.T) {
	cfg, spec, ref := durabilityCfg(t)
	h, err := scenario.DefaultHarness()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	crash := cfg
	crash.CheckpointDir = dir
	crash.SnapshotEveryDays = 7
	crash.BaseEveryDeltas = 4
	fired := 0
	crash.FaultHook = func(p stream.FaultPoint) error {
		if p == stream.PointSnapshotCommitted {
			fired++
			if fired == 3 {
				return errInjected
			}
		}
		return nil
	}
	if _, err := workload.ExecuteSource(crash, spec.Source(h.Dataset)); !errors.Is(err, errInjected) {
		t.Fatalf("crash run: %v", err)
	}

	// Flip a bit in every non-initial generation payload: recovery must
	// refuse them all, fall back to what remains, and say so.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".ckpt") || name == "base-00000001.ckpt" {
			continue
		}
		path := filepath.Join(dir, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-1] ^= 1
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("crash left no generations beyond the initial base to corrupt")
	}

	resume := cfg
	resume.CheckpointDir = dir
	resume.SnapshotEveryDays = 7
	resume.BaseEveryDeltas = 4
	resume.Resume = true
	run, err := workload.ExecuteSource(resume, spec.Source(h.Dataset))
	if err != nil {
		t.Fatalf("resume over corrupt generations: %v", err)
	}
	checkRun(t, "fallback resume", ref, run)
	if run.Durability.RecoveryFallbacks == 0 {
		t.Fatalf("recovery skipped %d corrupt generations but reported no fallbacks", corrupted)
	}
}
