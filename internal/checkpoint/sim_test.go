// The deterministic crash-recovery harness: in the spirit of the
// state-exploration approach of "Experiments in Model-Checking Optimistic
// Replication Algorithms" (PAPERS.md), recovery is verified not by
// hand-picked unit cases but by exhaustively crashing the streaming service
// at every registered state transition (stream.FaultPoint) across every
// figure workload and parallelism, resuming from the durable state a real
// crash would leave behind, and asserting the resumed run's reports,
// diagnostics, and per-querier remaining budgets are bit-identical to an
// uninterrupted batch run — the same equivalence bar PRs 1–3 established.
//
// The comparison runs through workload.(*Run).CanonicalDigest, which covers
// every released QueryResult field and every post-run budget metric; in
// particular, a report double-charged to any device's ledger (or a noise
// draw consumed twice) would shift the budget metrics or an estimate and
// break the digest. The batch reference itself is pinned by the committed
// golden digests under testdata/golden/.
package checkpoint_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/figures"
	"repro/internal/stream"
	"repro/internal/workload"
)

// errInjected is the sentinel a fault hook returns to simulate a crash.
var errInjected = errors.New("injected crash")

// snapshotCadenceDays keeps several snapshot generations per run (every
// trace in the catalog spans ≥ 90 days), so early crashes recover via pure
// WAL replay and late crashes via snapshot + short replay. The larger
// Criteo/synthetic workloads snapshot less often — their snapshots are
// proportionally bigger, and two generations already cover both recovery
// paths.
const (
	snapshotCadenceDays    = 14
	snapshotCadenceDaysBig = 30
)

// bigWorkload reports whether a cataloged scenario is one of the larger
// traces, which get a trimmed crash matrix (see occurrenceTargets).
func bigWorkload(name string) bool {
	return strings.HasPrefix(name, "criteo") || strings.HasPrefix(name, "synthetic")
}

// goldenDigests loads the committed per-figure-workload digest file, shared
// with internal/stream's TestGolden (which regenerates it under -update).
func goldenDigests(t *testing.T) map[string]string {
	t.Helper()
	path, err := figures.GoldenDigestsPath()
	if err != nil {
		t.Fatalf("locating golden digests (regenerate with "+
			"`go test ./internal/stream -run TestGolden -update`): %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden digests: %v", err)
	}
	var digests map[string]string
	if err := json.Unmarshal(raw, &digests); err != nil {
		t.Fatalf("decoding golden digests: %v", err)
	}
	return digests
}

// batchRef returns the per-process cached batch reference for one cataloged
// workload (figures.BatchRef).
func batchRef(t *testing.T, w figures.Workload) *workload.Run {
	t.Helper()
	run, err := figures.BatchRef(w.Name)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// checkpointedCfg builds one streaming configuration with durability on.
func checkpointedCfg(t *testing.T, w figures.Workload, parallelism int, dir string) workload.Config {
	t.Helper()
	cfg, err := w.Config()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = parallelism
	cfg.CheckpointDir = dir
	cfg.SnapshotEveryDays = snapshotCadenceDays
	if bigWorkload(w.Name) {
		cfg.SnapshotEveryDays = snapshotCadenceDaysBig
	}
	// Small group-commit and compaction knobs so every durability fault
	// point (group-commit, delta-captured, base-compacted) fires several
	// times per run and the crash matrix covers them.
	cfg.GroupCommitEvents = 64
	cfg.BaseEveryDeltas = 2
	return cfg
}

// occurrenceTargets picks which firings of a fault point to crash at, out
// of n total: the first (crash early, recover over the whole remaining
// trace) and — for the micro scenarios — also the last (crash at the end,
// recover from the final durable generation). Each extra occurrence costs
// roughly a full run, so the larger workloads stay at the first and -short
// trims everyone to it.
func occurrenceTargets(n int, big bool) []int {
	if n > 1 && !big && !testing.Short() {
		return []int{1, n}
	}
	return []int{1}
}

// TestCrashRecoveryMatrix is the acceptance check: for every figure workload
// × parallelism {1, 4} × every registered FaultPoint, run → crash → resume
// must reproduce the uninterrupted batch run bit for bit.
func TestCrashRecoveryMatrix(t *testing.T) {
	golden := goldenDigests(t)
	for _, w := range figures.All() {
		big := bigWorkload(w.Name)
		if big && testing.Short() {
			continue // the micro scenarios cover every point in -short
		}
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			batch := batchRef(t, w)
			wantDigest := batch.CanonicalDigest()
			switch g, ok := golden[w.Name]; {
			case !ok:
				t.Fatalf("no golden digest for %s; regenerate with "+
					"`go test ./internal/stream -run TestGolden -update`", w.Name)
			case g != wantDigest:
				t.Fatalf("batch reference %s diverges from committed golden digest %s", wantDigest, g)
			}
			for _, parallelism := range []int{1, 4} {
				t.Run(fmt.Sprintf("parallel-%d", parallelism), func(t *testing.T) {
					t.Parallel()

					// The counting run doubles as the uninterrupted
					// checkpointed run: the live WAL/snapshot path must
					// itself not perturb results.
					counts := map[stream.FaultPoint]int{}
					cfg := checkpointedCfg(t, w, parallelism, t.TempDir())
					cfg.FaultHook = func(p stream.FaultPoint) error { counts[p]++; return nil }
					full, err := workload.ExecuteStream(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if got := full.CanonicalDigest(); got != wantDigest {
						reportDivergence(t, "uninterrupted checkpointed run", batch, full)
					}

					for _, point := range stream.Points {
						n := counts[point]
						if n == 0 {
							t.Errorf("fault point %s never fired — crash matrix has a hole", point)
							continue
						}
						for _, at := range occurrenceTargets(n, big) {
							t.Run(fmt.Sprintf("%s@%d", point, at), func(t *testing.T) {
								crashAndResume(t, w, parallelism, point, at, wantDigest, batch)
							})
						}
					}
				})
			}
		})
	}
}

// crashAndResume kills one checkpointed streaming run at the at-th firing of
// point, resumes it from the durable state left behind, and requires the
// completed resumed run to match the batch reference bit for bit.
func crashAndResume(t *testing.T, w figures.Workload, parallelism int,
	point stream.FaultPoint, at int, wantDigest string, batch *workload.Run) {
	t.Helper()
	dir := t.TempDir()

	crash := checkpointedCfg(t, w, parallelism, dir)
	fired := 0
	crash.FaultHook = func(p stream.FaultPoint) error {
		if p == point {
			fired++
			if fired == at {
				return errInjected
			}
		}
		return nil
	}
	_, err := workload.ExecuteStream(crash)
	if !errors.Is(err, errInjected) {
		t.Fatalf("crash run: got %v, want injected crash (point fired %d times)", err, fired)
	}
	var fe *stream.FaultError
	if !errors.As(err, &fe) || fe.Point != point {
		t.Fatalf("crash surfaced as %v, want FaultError at %s", err, point)
	}

	resume := checkpointedCfg(t, w, parallelism, dir)
	resume.Resume = true
	run, err := workload.ExecuteStream(resume)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := run.CanonicalDigest(); got != wantDigest {
		reportDivergence(t, fmt.Sprintf("resume after crash at %s#%d", point, at), batch, run)
	}
}

// reportDivergence is the diagnostic path behind a digest mismatch: it
// pinpoints the first differing result or metric so a recovery bug reads as
// "query 17 estimate differs", not as an opaque hash.
func reportDivergence(t *testing.T, label string, batch, got *workload.Run) {
	t.Helper()
	if len(batch.Results) != len(got.Results) {
		t.Fatalf("%s: %d results, want %d", label, len(got.Results), len(batch.Results))
	}
	for i := range batch.Results {
		want, have := batch.Results[i], got.Results[i]
		if math.IsNaN(want.RMSRE) && math.IsNaN(have.RMSRE) {
			want.RMSRE, have.RMSRE = 0, 0
		}
		if want != have {
			t.Fatalf("%s: query %d differs:\n  batch:   %+v\n  resumed: %+v", label, i, batch.Results[i], got.Results[i])
		}
	}
	bAvg, bMax := batch.BudgetStats()
	gAvg, gMax := got.BudgetStats()
	if bAvg != gAvg || bMax != gMax {
		t.Fatalf("%s: budget stats (%v, %v), want (%v, %v) — a report was double- or under-charged",
			label, gAvg, gMax, bAvg, bMax)
	}
	if b, g := batch.PopulationAvgBudget(), got.PopulationAvgBudget(); b != g {
		t.Fatalf("%s: population avg budget %v, want %v", label, g, b)
	}
	if b, g := batch.ExecutedFraction(), got.ExecutedFraction(); b != g {
		t.Fatalf("%s: executed fraction %v, want %v", label, g, b)
	}
	if b, g := batch.RequestedDeviceEpochs(), got.RequestedDeviceEpochs(); b != g {
		t.Fatalf("%s: requested device-epochs %d, want %d", label, g, b)
	}
	bp, gp := batch.PerPairAverages(), got.PerPairAverages()
	if len(bp) != len(gp) {
		t.Fatalf("%s: %d pair averages, want %d", label, len(gp), len(bp))
	}
	for i := range bp {
		if bp[i] != gp[i] {
			t.Fatalf("%s: (device, advertiser) pair %d consumed %v, want %v — per-querier ledger state diverged",
				label, i, gp[i], bp[i])
		}
	}
	t.Fatalf("%s: digests differ but results and metrics compare equal — digest fields out of sync", label)
}

// TestCrashDuringRecoveryResume crashes a run, resumes it, crashes the
// *resumed* run too, and resumes again: recovery must compose — the second
// recovery starts from durable state the first recovery's continuation
// wrote.
func TestCrashDuringRecoveryResume(t *testing.T) {
	w, err := figures.ByName("cookie-monster")
	if err != nil {
		t.Fatal(err)
	}
	batch := batchRef(t, w)
	wantDigest := batch.CanonicalDigest()
	dir := t.TempDir()

	crashAt := func(point stream.FaultPoint, at int, resume bool) error {
		cfg := checkpointedCfg(t, w, 4, dir)
		cfg.Resume = resume
		fired := 0
		cfg.FaultHook = func(p stream.FaultPoint) error {
			if p == point {
				fired++
				if fired == at {
					return errInjected
				}
			}
			return nil
		}
		_, err := workload.ExecuteStream(cfg)
		return err
	}

	if err := crashAt(stream.PointQueryExecuted, 3, false); !errors.Is(err, errInjected) {
		t.Fatalf("first crash: %v", err)
	}
	// The resumed run gets further (the second snapshot-commit happens
	// after the first crash's position) and then dies as well.
	if err := crashAt(stream.PointSnapshotCommitted, 2, true); !errors.Is(err, errInjected) {
		t.Fatalf("second crash: %v", err)
	}
	final := checkpointedCfg(t, w, 4, dir)
	final.Resume = true
	run, err := workload.ExecuteStream(final)
	if err != nil {
		t.Fatalf("final resume: %v", err)
	}
	if run.CanonicalDigest() != wantDigest {
		reportDivergence(t, "resume after crashed recovery", batch, run)
	}
}

// TestResumeCompletedRun resumes a run that finished cleanly: the final
// snapshot subsumes the whole stream, so the "recovered" service has nothing
// left to do and must return the identical completed run.
func TestResumeCompletedRun(t *testing.T) {
	w, err := figures.ByName("cookie-monster")
	if err != nil {
		t.Fatal(err)
	}
	batch := batchRef(t, w)
	dir := t.TempDir()
	cfg := checkpointedCfg(t, w, 4, dir)
	if _, err := workload.ExecuteStream(cfg); err != nil {
		t.Fatal(err)
	}
	cfg = checkpointedCfg(t, w, 4, dir)
	cfg.Resume = true
	run, err := workload.ExecuteStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.CanonicalDigest() != batch.CanonicalDigest() {
		reportDivergence(t, "resume of completed run", batch, run)
	}
}

// TestResumeRejectsScenarioMismatch pins the config fingerprint: durable
// state from one scenario must not silently seed a different one — neither
// from a completed run's final snapshot, nor from the initial snapshot that
// guards the WAL-only window before the first cadence snapshot.
func TestResumeRejectsScenarioMismatch(t *testing.T) {
	w, err := figures.ByName("cookie-monster")
	if err != nil {
		t.Fatal(err)
	}

	resumeMismatched := func(t *testing.T, dir string) {
		t.Helper()
		mismatched := checkpointedCfg(t, w, 1, dir)
		mismatched.Resume = true
		mismatched.EpsilonG = 3 // different capacity ⇒ different scenario
		if _, err := workload.ExecuteStream(mismatched); err == nil ||
			!strings.Contains(err.Error(), "different scenario") {
			t.Fatalf("scenario mismatch accepted: %v", err)
		}
	}

	t.Run("after-completed-run", func(t *testing.T) {
		dir := t.TempDir()
		if _, err := workload.ExecuteStream(checkpointedCfg(t, w, 1, dir)); err != nil {
			t.Fatal(err)
		}
		resumeMismatched(t, dir)
	})

	t.Run("before-first-cadence-snapshot", func(t *testing.T) {
		dir := t.TempDir()
		cfg := checkpointedCfg(t, w, 1, dir)
		fired := 0
		cfg.FaultHook = func(p stream.FaultPoint) error {
			// Die on day 2, long before the first cadence snapshot: the
			// directory holds only the fingerprinted initial snapshot and
			// the WAL.
			if p == stream.PointDayEnd {
				fired++
				if fired == 2 {
					return errInjected
				}
			}
			return nil
		}
		if _, err := workload.ExecuteStream(cfg); !errors.Is(err, errInjected) {
			t.Fatalf("crash run: %v", err)
		}
		resumeMismatched(t, dir)
	})
}

// TestLeanCheckpointResume covers the Lean retention mode through the raw
// stream API (the workload client does not expose Lean): crash mid-run with
// filters already released below the horizon, resume, and require the
// stream-level results to match an uninterrupted Lean run exactly.
func TestLeanCheckpointResume(t *testing.T) {
	w, err := figures.ByName("cookie-monster")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := w.Config()
	if err != nil {
		t.Fatal(err)
	}
	leanCfg := func(dir string) stream.Config {
		return stream.Config{
			Source:            cfg.Dataset.Stream(),
			EpsilonG:          cfg.EpsilonG,
			Seed:              cfg.Seed,
			Parallelism:       4,
			Lean:              true,
			CheckpointDir:     dir,
			SnapshotEveryDays: snapshotCadenceDays,
		}
	}

	base := leanCfg(t.TempDir())
	svc, err := stream.New(base)
	if err != nil {
		t.Fatal(err)
	}
	uninterrupted, err := svc.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if uninterrupted.ReleasedFilters == 0 || uninterrupted.EvictedRecords == 0 {
		t.Fatal("lean run reclaimed nothing; retention path not exercised")
	}

	dir := t.TempDir()
	crash := leanCfg(dir)
	fired := 0
	crash.FaultHook = func(p stream.FaultPoint) error {
		// Crash right after a retention advance past the second snapshot,
		// when released filters and evicted records are part of the
		// durable state being recovered.
		if p == stream.PointRetentionAdvanced {
			fired++
			if fired == 5*snapshotCadenceDays {
				return errInjected
			}
		}
		return nil
	}
	svc, err = stream.New(crash)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Serve(); !errors.Is(err, errInjected) {
		t.Fatalf("lean crash run: %v", err)
	}

	svc, err = stream.ResumeFrom(leanCfg(dir), dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := svc.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Results) != len(uninterrupted.Results) {
		t.Fatalf("%d results, want %d", len(resumed.Results), len(uninterrupted.Results))
	}
	for i := range uninterrupted.Results {
		want, got := uninterrupted.Results[i], resumed.Results[i]
		if math.IsNaN(want.RMSRE) && math.IsNaN(got.RMSRE) {
			want.RMSRE, got.RMSRE = 0, 0
		}
		if want != got {
			t.Fatalf("lean query %d differs:\n  uninterrupted: %+v\n  resumed:       %+v",
				i, uninterrupted.Results[i], resumed.Results[i])
		}
	}
	if resumed.Requested != nil {
		t.Fatal("lean resumed run kept requested-epoch accounting")
	}
	if resumed.EvictedRecords != uninterrupted.EvictedRecords ||
		resumed.ReleasedFilters != uninterrupted.ReleasedFilters ||
		resumed.RetiredNonces != uninterrupted.RetiredNonces {
		t.Fatalf("retention telemetry diverged: evicted %d/%d, released %d/%d, retired %d/%d",
			resumed.EvictedRecords, uninterrupted.EvictedRecords,
			resumed.ReleasedFilters, uninterrupted.ReleasedFilters,
			resumed.RetiredNonces, uninterrupted.RetiredNonces)
	}
}
