package checkpoint

import (
	"fmt"
	"os"
	"sync"
)

// FaultSpec configures the errfs-style fault injector. Each rate is the
// per-operation probability of injecting that fault, drawn from a seeded
// generator so a failing run replays exactly from its seed.
type FaultSpec struct {
	// Seed drives the fault generator; runs with equal seeds and equal
	// operation sequences inject the same faults.
	Seed uint64
	// MaxFaults caps the total number of injected faults (0 = unlimited).
	// Crash-loop tests use it to guarantee the run eventually completes:
	// once the budget is spent the filesystem behaves perfectly.
	MaxFaults int
	// ShortWrite is the probability that a Write persists only a prefix
	// of its buffer and reports an I/O error — a crashed write syscall.
	ShortWrite float64
	// FsyncFail is the probability that Sync reports failure. The data
	// may or may not be durable, exactly as after a real fsync error.
	FsyncFail float64
	// TornRename is the probability that Rename leaves only a prefix of
	// the source at the destination — a non-atomic rename interrupted by
	// power loss. The corruption is silent: the caller sees success.
	TornRename float64
	// BitFlip is the probability that Close silently flips one bit at a
	// seeded offset in the file — latent media corruption discovered
	// only when the frame CRC is checked on read-back.
	BitFlip float64
}

// FaultFS wraps an FS and injects disk faults per a FaultSpec. All methods
// are safe for concurrent use (the WAL group-commit syncer calls Sync while
// the ingest thread writes). Injection decisions consume a shared seeded
// stream, so which operation faults depends on operation order — but the
// recovery protocol must tolerate every placement, which is the point.
type FaultFS struct {
	base FS
	spec FaultSpec

	mu       sync.Mutex
	rng      uint64
	injected int
}

// NewFaultFS wraps base (nil = OsFS) with fault injection per spec.
func NewFaultFS(base FS, spec FaultSpec) *FaultFS {
	if base == nil {
		base = OsFS{}
	}
	return &FaultFS{base: base, spec: spec, rng: spec.Seed}
}

// Injected reports how many faults have been injected so far.
func (f *FaultFS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// next advances the seeded stream (SplitMix64). Caller holds f.mu.
func (f *FaultFS) next() uint64 {
	f.rng += 0x9e3779b97f4a7c15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hit rolls the fault die for probability p, respecting the budget.
func (f *FaultFS) hit(p float64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p <= 0 {
		return false
	}
	if f.spec.MaxFaults > 0 && f.injected >= f.spec.MaxFaults {
		return false
	}
	if float64(f.next()>>11)/(1<<53) >= p {
		return false
	}
	f.injected++
	return true
}

// draw returns a seeded value in [0, n). Caller must not hold f.mu.
func (f *FaultFS) draw(n int64) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		return 0
	}
	return int64(f.next() % uint64(n))
}

// OpenFile implements FS.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

// Rename implements FS, occasionally tearing the rename: the destination
// receives only a prefix of the source, silently.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if f.hit(f.spec.TornRename) {
		data, err := f.base.ReadFile(oldpath)
		if err != nil {
			return f.base.Rename(oldpath, newpath)
		}
		torn := data[:f.draw(int64(len(data)+1))]
		dst, err := f.base.OpenFile(newpath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := dst.Write(torn); err != nil {
			dst.Close()
			return err
		}
		if err := dst.Close(); err != nil {
			return err
		}
		return f.base.Remove(oldpath)
	}
	return f.base.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error { return f.base.Remove(name) }

// ReadFile implements FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.base.ReadFile(name) }

// ReadDir implements FS.
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) { return f.base.ReadDir(name) }

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.base.MkdirAll(path, perm)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	if f.hit(f.spec.FsyncFail) {
		return fmt.Errorf("errfs: injected directory fsync failure on %s", dir)
	}
	return f.base.SyncDir(dir)
}

// faultFile injects write/sync/close faults on one file. The mutex makes
// Write and Sync safe to call concurrently, matching os.File semantics that
// the WAL's background syncer relies on.
type faultFile struct {
	fs *FaultFS
	mu sync.Mutex
	f  File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.fs.hit(ff.fs.spec.ShortWrite) && len(p) > 0 {
		n, _ := ff.f.Write(p[:len(p)/2])
		return n, fmt.Errorf("errfs: injected short write (%d of %d bytes)", n, len(p))
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.fs.hit(ff.fs.spec.FsyncFail) {
		return fmt.Errorf("errfs: injected fsync failure")
	}
	return ff.f.Sync()
}

// Close flips one bit at a seeded offset before closing when the BitFlip
// fault fires — the write path never notices; only CRC validation on
// read-back can.
func (ff *faultFile) Close() error {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.fs.hit(ff.fs.spec.BitFlip) {
		if info, err := ff.f.Stat(); err == nil && info.Size() > 0 {
			off := ff.fs.draw(info.Size())
			var b [1]byte
			if _, err := ff.f.ReadAt(b[:], off); err == nil {
				b[0] ^= 1 << uint(ff.fs.draw(8))
				_, _ = ff.f.WriteAt(b[:], off)
			}
		}
	}
	return ff.f.Close()
}

func (ff *faultFile) Read(p []byte) (int, error) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.f.Read(p)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.f.Seek(offset, whence)
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.f.ReadAt(p, off)
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.f.WriteAt(p, off)
}

func (ff *faultFile) Truncate(size int64) error {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.f.Truncate(size)
}

func (ff *faultFile) Stat() (os.FileInfo, error) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.f.Stat()
}
