package stats

import "sort"

// CDF is an empirical cumulative distribution function over a sample.
// The experiment harnesses use it to regenerate the paper's CDF figures
// (Fig. 5b, 6a, 6b, 6d, 7b).
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from a sample (which it copies and sorts).
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X ≤ x), the fraction of the sample at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the sample (0 ≤ q ≤ 1).
func (c *CDF) Quantile(q float64) float64 {
	return Quantile(c.sorted, q)
}

// Point is one (x, cumulative-fraction) pair of a rendered CDF curve.
type Point struct {
	X float64 // sample value
	F float64 // P(X ≤ x)
}

// Curve renders the CDF as up to maxPoints (x, F(x)) pairs, evenly spaced in
// cumulative probability. maxPoints ≤ 0 renders every distinct sample point.
// This is the series printed by the experiment CLIs.
func (c *CDF) Curve(maxPoints int) []Point {
	n := len(c.sorted)
	if n == 0 {
		return nil
	}
	if maxPoints <= 0 || maxPoints > n {
		maxPoints = n
	}
	pts := make([]Point, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		// Pick the order statistic at evenly spaced ranks, always
		// including the first and last.
		rank := n - 1
		if maxPoints > 1 {
			rank = i * (n - 1) / (maxPoints - 1)
		}
		pts = append(pts, Point{
			X: c.sorted[rank],
			F: float64(rank+1) / float64(n),
		})
	}
	return pts
}

// FractionWithin returns the fraction of the sample with value ≤ limit.
// Convenience used in reporting statements like "errors within the 5% mark".
func (c *CDF) FractionWithin(limit float64) float64 { return c.At(limit) }
