package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.Len() != 0 || c.At(5) != 0 {
		t.Fatal("empty CDF misbehaves")
	}
	if c.Curve(10) != nil {
		t.Fatal("empty CDF curve should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Fatalf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFQuantileAgrees(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	c := NewCDF(xs)
	if got := c.Quantile(0.5); got != 5 {
		t.Fatalf("median = %v", got)
	}
}

func TestCDFCurveEndpoints(t *testing.T) {
	c := NewCDF([]float64{4, 1, 3, 2})
	pts := c.Curve(3)
	if len(pts) != 3 {
		t.Fatalf("curve has %d points", len(pts))
	}
	if pts[0].X != 1 {
		t.Fatalf("first point %v, want min", pts[0])
	}
	last := pts[len(pts)-1]
	if last.X != 4 || last.F != 1 {
		t.Fatalf("last point %+v, want (4, 1)", last)
	}
}

func TestCDFCurveFull(t *testing.T) {
	c := NewCDF([]float64{2, 1})
	pts := c.Curve(0)
	if len(pts) != 2 || pts[0].X != 1 || pts[1].X != 2 {
		t.Fatalf("full curve = %v", pts)
	}
}

func TestCDFCurveSinglePoint(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2})
	pts := c.Curve(1)
	if len(pts) != 1 || pts[0].F != 1 {
		t.Fatalf("single-point curve = %v", pts)
	}
}

func TestCDFDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	NewCDF(xs)
	if xs[0] != 3 {
		t.Fatal("NewCDF sorted the caller's slice")
	}
}

func TestCDFMonotoneQuick(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		c := NewCDF(xs)
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFCurveMonotoneQuick(t *testing.T) {
	f := func(raw []float64, m uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		pts := NewCDF(xs).Curve(int(m))
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].F < pts[i-1].F {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
