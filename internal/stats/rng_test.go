package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestNewRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestStreamIndependence(t *testing.T) {
	a := Stream(7, "noise")
	b := Stream(7, "dataset")
	c := Stream(7, "noise")
	if a.Uint64() != c.Uint64() {
		t.Fatal("same (seed, name) must give the same stream")
	}
	// Different names should diverge immediately with overwhelming
	// probability.
	if Stream(7, "noise").Uint64() == b.Uint64() {
		t.Fatal("different names gave identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(6)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %v", b, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(9)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestBoolEdgeCases(t *testing.T) {
	r := NewRNG(10)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", frac)
	}
}

func TestSplitIndependent(t *testing.T) {
	parent := NewRNG(12)
	a := parent.Split()
	b := parent.Split()
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("successive splits produced identical streams")
	}
}

func TestIntnQuick(t *testing.T) {
	r := NewRNG(13)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
