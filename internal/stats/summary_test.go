package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Count != 1 || s.Mean != 3 || s.Min != 3 || s.Max != 3 || s.Median != 3 {
		t.Fatalf("single-element summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Median != 3 || s.Min != 1 || s.Max != 5 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if !approx(s.Q1, 2, 1e-12) || !approx(s.Q3, 4, 1e-12) {
		t.Fatalf("quartiles = %v, %v", s.Q1, s.Q3)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Summarize(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("Summarize mutated input: %v", xs)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Quantile(sorted, 0.5); got != 5 {
		t.Fatalf("median of {0,10} = %v", got)
	}
	if got := Quantile(sorted, 0.25); got != 2.5 {
		t.Fatalf("q1 of {0,10} = %v", got)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	sorted := []float64{1, 2, 3}
	if Quantile(sorted, 0) != 1 || Quantile(sorted, 1) != 3 {
		t.Fatal("quantile endpoints wrong")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Quantile(q=%v) did not panic", q)
				}
			}()
			Quantile([]float64{1}, q)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Quantile of empty did not panic")
			}
		}()
		Quantile(nil, 0.5)
	}()
}

func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if math.IsNaN(qa) || math.IsNaN(qb) {
			return true
		}
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMax(t *testing.T) {
	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Mean/Max not 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
	if Max([]float64{2, 9, 4}) != 9 {
		t.Fatal("Max wrong")
	}
}

func TestRMSREExact(t *testing.T) {
	// Single pair: relative error 0.1 → RMSRE 0.1.
	if got := RMSRE([]float64{110}, []float64{100}); !approx(got, 0.1, 1e-12) {
		t.Fatalf("RMSRE = %v", got)
	}
}

func TestRMSREZeroTruthConvention(t *testing.T) {
	if got := RMSRE([]float64{0}, []float64{0}); got != 0 {
		t.Fatalf("RMSRE(0,0) = %v", got)
	}
	if got := RMSRE([]float64{5}, []float64{0}); got != 1 {
		t.Fatalf("RMSRE(5,0) = %v", got)
	}
}

func TestRMSREPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched RMSRE did not panic")
		}
	}()
	RMSRE([]float64{1}, []float64{1, 2})
}

func TestRMSREEmpty(t *testing.T) {
	if RMSRE(nil, nil) != 0 {
		t.Fatal("empty RMSRE not 0")
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(90, 100) != 0.1 {
		t.Fatal("RelativeError wrong")
	}
	if RelativeError(0, 0) != 0 || RelativeError(1, 0) != 1 {
		t.Fatal("zero-truth convention wrong")
	}
}

func TestRMSRENonNegativeQuick(t *testing.T) {
	f := func(ests, truths []float64) bool {
		n := len(ests)
		if len(truths) < n {
			n = len(truths)
		}
		es, ts := make([]float64, 0, n), make([]float64, 0, n)
		for i := 0; i < n; i++ {
			if math.IsNaN(ests[i]) || math.IsInf(ests[i], 0) ||
				math.IsNaN(truths[i]) || math.IsInf(truths[i], 0) {
				continue
			}
			es = append(es, ests[i])
			ts = append(ts, truths[i])
		}
		return RMSRE(es, ts) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
