package stats

import "math"

// Laplace returns a variate from the Laplace (double exponential)
// distribution with mean 0 and scale b. The Laplace mechanism adds this
// noise to query answers; scale b = Δ/ε yields ε-DP for an L1-sensitivity-Δ
// query.
func (r *RNG) Laplace(b float64) float64 {
	if b < 0 {
		panic("stats: Laplace with negative scale")
	}
	// Inverse-CDF sampling: u uniform on (-1/2, 1/2),
	// X = -b·sgn(u)·ln(1 - 2|u|).
	u := r.Float64() - 0.5
	if u >= 0 {
		return -b * math.Log(1-2*u)
	}
	return b * math.Log(1+2*u)
}

// LaplaceStdDev converts a Laplace scale b to a standard deviation (σ = b√2).
func LaplaceStdDev(b float64) float64 { return b * math.Sqrt2 }

// LaplaceScale converts a standard deviation σ to a Laplace scale (b = σ/√2).
func LaplaceScale(sigma float64) float64 { return sigma / math.Sqrt2 }

// Exponential returns a variate from the exponential distribution with the
// given mean. Used by dataset generators for inter-arrival times.
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("stats: Exponential with non-positive mean")
	}
	return -mean * math.Log(1-r.Float64())
}

// Poisson returns a variate from the Poisson distribution with the given
// mean, via Knuth's method for small means and a normal approximation
// (rounded, clamped at 0) for large ones. Dataset generators use it to draw
// per-day impression counts.
func (r *RNG) Poisson(mean float64) int {
	if mean < 0 {
		panic("stats: Poisson with negative mean")
	}
	if mean == 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := math.Round(r.Normal(mean, math.Sqrt(mean)))
	if n < 0 {
		return 0
	}
	return int(n)
}

// Normal returns a Gaussian variate with the given mean and standard
// deviation (Box–Muller; one variate per call to keep the stream simple and
// deterministic).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Zipf returns a variate in [1, n] from a Zipf distribution with exponent s,
// by inverse-CDF over the precomputed normalization. The Criteo-like dataset
// generator uses it for heavy-tailed advertiser sizes.
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes a Zipf(n, s) sampler. It panics if n <= 0 or s <= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 || s <= 0 {
		panic("stats: NewZipf requires n > 0 and s > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), s)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Sample draws a rank in [1, len(cdf)]; rank 1 is the most probable.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// LogNormal returns a variate exp(Normal(mu, sigma)). Used to draw
// conversion values with a realistic right-skewed shape.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}
