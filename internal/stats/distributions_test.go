package stats

import (
	"math"
	"testing"
)

func TestLaplaceMoments(t *testing.T) {
	r := NewRNG(100)
	const b = 2.5
	const n = 300000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Laplace(b)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("Laplace mean %v not near 0", mean)
	}
	// Var = 2b².
	if want := 2 * b * b; math.Abs(variance-want)/want > 0.05 {
		t.Fatalf("Laplace variance %v, want ~%v", variance, want)
	}
}

func TestLaplaceZeroScale(t *testing.T) {
	r := NewRNG(101)
	for i := 0; i < 100; i++ {
		if x := r.Laplace(0); x != 0 {
			t.Fatalf("Laplace(0) = %v, want 0", x)
		}
	}
}

func TestLaplaceNegativeScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Laplace(-1) did not panic")
		}
	}()
	NewRNG(1).Laplace(-1)
}

func TestLaplaceTailBound(t *testing.T) {
	// P(|X| > b·ln(1/β)) = β for Laplace(b): check empirically at β=0.01.
	r := NewRNG(102)
	const b = 1.0
	const beta = 0.01
	thresh := b * math.Log(1/beta)
	const n = 200000
	exceed := 0
	for i := 0; i < n; i++ {
		if math.Abs(r.Laplace(b)) > thresh {
			exceed++
		}
	}
	frac := float64(exceed) / n
	if frac > 2*beta || frac < beta/2 {
		t.Fatalf("tail fraction %v, want ~%v", frac, beta)
	}
}

func TestLaplaceScaleRoundTrip(t *testing.T) {
	for _, b := range []float64{0.1, 1, 7.5} {
		if got := LaplaceScale(LaplaceStdDev(b)); math.Abs(got-b) > 1e-12 {
			t.Fatalf("round trip %v -> %v", b, got)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(103)
	const mean = 3.0
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Exponential(mean)
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		sum += x
	}
	if got := sum / n; math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("exponential mean %v, want ~%v", got, mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(104)
	for _, mean := range []float64{0.1, 1, 5, 50} {
		const n = 100000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.01 {
			t.Fatalf("Poisson(%v) mean %v", mean, got)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	r := NewRNG(105)
	if r.Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(106)
	const mu, sigma = 4.0, 2.0
	const n = 300000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(mu, sigma)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-mu) > 0.03 {
		t.Fatalf("normal mean %v", mean)
	}
	if want := sigma * sigma; math.Abs(variance-want)/want > 0.03 {
		t.Fatalf("normal variance %v, want ~%v", variance, want)
	}
}

func TestZipfRange(t *testing.T) {
	z := NewZipf(100, 1.2)
	r := NewRNG(107)
	for i := 0; i < 10000; i++ {
		k := z.Sample(r)
		if k < 1 || k > 100 {
			t.Fatalf("Zipf sample %d out of range", k)
		}
	}
}

func TestZipfMonotoneFrequencies(t *testing.T) {
	z := NewZipf(10, 1.5)
	r := NewRNG(108)
	counts := make([]int, 11)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	// Rank 1 must dominate rank 2, which must dominate rank 5.
	if !(counts[1] > counts[2] && counts[2] > counts[5]) {
		t.Fatalf("Zipf frequencies not decreasing: %v", counts[1:])
	}
}

func TestZipfPanicsOnBadParams(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-1, 1}, {5, 0}, {5, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewZipf(%d,%v) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(tc.n, tc.s)
		}()
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(109)
	for i := 0; i < 10000; i++ {
		if x := r.LogNormal(0, 1); x <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", x)
		}
	}
}
