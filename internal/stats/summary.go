package stats

import (
	"math"
	"sort"
)

// Summary holds the descriptive statistics the experiment harnesses report
// for a sample: the same median/quartile/min/max set the paper's box plots
// (Fig. 5c, 6c, 7c) use, plus mean and count.
type Summary struct {
	Count  int
	Mean   float64
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// Summarize computes a Summary of xs. It returns the zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	return Summary{
		Count:  len(sorted),
		Mean:   sum / float64(len(sorted)),
		Min:    sorted[0],
		Q1:     Quantile(sorted, 0.25),
		Median: Quantile(sorted, 0.5),
		Q3:     Quantile(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of a sorted sample using
// linear interpolation between order statistics (the common "type 7"
// estimator). It panics if sorted is empty or q is outside [0, 1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile with q outside [0,1]")
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// RMSRE returns the root mean square relative error of the estimates against
// the true values: sqrt(E[(est−truth)²/truth²]). This is the accuracy metric
// used throughout the paper's evaluation (§6.3). Pairs whose truth is zero
// contribute relative error 0 if the estimate is also zero and 1 otherwise,
// matching the convention that a nullified report for a real conversion
// counts as full error.
func RMSRE(estimates, truths []float64) float64 {
	if len(estimates) != len(truths) {
		panic("stats: RMSRE with mismatched lengths")
	}
	if len(estimates) == 0 {
		return 0
	}
	sum := 0.0
	for i := range estimates {
		var rel float64
		switch {
		case truths[i] != 0:
			rel = (estimates[i] - truths[i]) / truths[i]
		case estimates[i] != 0:
			rel = 1
		}
		sum += rel * rel
	}
	return math.Sqrt(sum / float64(len(estimates)))
}

// RelativeError returns |est−truth|/|truth| with the same zero-truth
// convention as RMSRE.
func RelativeError(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(est-truth) / math.Abs(truth)
}
