// Package stats provides the deterministic statistical substrate used
// throughout the Cookie Monster reproduction: seeded random number streams,
// the samplers needed by the DP mechanisms and synthetic dataset generators,
// and the summary statistics (means, quantiles, empirical CDFs, RMSRE)
// reported by the experiment harnesses.
//
// Everything in this package is deterministic given a seed, so every
// experiment in the repository is exactly reproducible run-to-run.
package stats

import (
	"encoding/binary"
	"hash/fnv"
)

// RNG is a deterministic pseudo-random number generator based on the
// SplitMix64 / xoshiro256** construction. It is not safe for concurrent use;
// derive independent streams with Split or Stream instead of sharing one.
//
// We implement the generator ourselves (rather than using math/rand's global
// state) so that experiments can derive stable, named sub-streams: the
// dataset generator, the noise sampler and the workload driver each get
// their own stream and remain reproducible even if one of them changes how
// many variates it draws.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, which is the
// recommended way to initialize xoshiro state (it guarantees a non-zero,
// well-mixed state even for small seeds).
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Stream derives an independent generator identified by name from a base
// seed. Two streams with different names are statistically independent;
// the same (seed, name) pair always yields the same stream.
func Stream(seed uint64, name string) *RNG {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	h.Write([]byte(name))
	return NewRNG(h.Sum64())
}

// State returns the generator's internal state, for checkpointing. A
// generator restored with SetState continues the exact variate sequence this
// one would have produced — the property crash recovery relies on to keep
// noise streams bit-identical across a restart.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with one previously
// returned by State. It panics on the all-zero state, which xoshiro256**
// cannot escape (and which State never returns).
func (r *RNG) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		panic("stats: all-zero RNG state")
	}
	r.s = s
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator seeded from this one. The parent advances,
// so successive Splits yield independent children.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's unbiased bounded generation.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
