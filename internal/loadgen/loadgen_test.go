package loadgen_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/figures"
	"repro/internal/loadgen"
	"repro/internal/serve"
)

// TestLoadgenAgainstServer runs the generator end to end against an
// in-process server — multiple senders, pacing, warm-up, result polling —
// and checks the report's books balance and the served run still matches
// the batch reference. The multi-sender path interleaves devices within a
// day, which admission must absorb without disorder rejections.
func TestLoadgenAgainstServer(t *testing.T) {
	w, err := figures.ByName("cookie-monster")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := w.Config()
	if err != nil {
		t.Fatal(err)
	}
	ds := cfg.Dataset
	scenario := cfg
	scenario.Dataset = nil

	meta := ds.Meta()
	meta.Advertisers = nil // loadgen registers them
	srv, err := serve.NewServer(serve.Config{Scenario: scenario, Meta: meta})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	report, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:         hs.URL,
		Dataset:        ds,
		Senders:        3,
		BatchSize:      64,
		WarmupFraction: 0.1,
		PollInterval:   5 * time.Millisecond,
		Client:         hs.Client(),
	})
	if err != nil {
		t.Fatalf("loadgen.Run: %v", err)
	}
	if report.EventsSent != len(ds.Events) || report.EventsAccepted != len(ds.Events) {
		t.Fatalf("sent %d accepted %d, want %d", report.EventsSent, report.EventsAccepted, len(ds.Events))
	}
	if report.Duplicates != 0 {
		t.Fatalf("%d duplicates on a clean run", report.Duplicates)
	}
	if report.Requests == 0 || report.SustainedRPS <= 0 || report.DurationSeconds <= 0 {
		t.Fatalf("degenerate throughput report: %+v", report)
	}
	if report.IngestP50Millis <= 0 || report.IngestP99Millis < report.IngestP50Millis {
		t.Fatalf("implausible ingest quantiles: p50 %v p99 %v",
			report.IngestP50Millis, report.IngestP99Millis)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	run, err := srv.Shutdown(ctx, true)
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if run.EventsIngested != len(ds.Events) {
		t.Fatalf("run ingested %d, want %d", run.EventsIngested, len(ds.Events))
	}
	// Multi-sender delivery interleaves within-day arrival order across
	// devices, so the planner's arrival-order-sensitive batching is only
	// digest-stable for single-sender feeds; here the invariant is the
	// result count and clean completion, not bit-equality.
	if len(run.Results) == 0 {
		t.Fatalf("no results released")
	}
}

// TestLoadgenSingleSenderDigest is the bridge between the bench harness
// and the equivalence suite: with one sender the delivery order is the
// canonical (Day, ID) order, so even the full load-generator pipeline
// must reproduce the batch reference digest exactly.
func TestLoadgenSingleSenderDigest(t *testing.T) {
	ref, err := figures.BatchRef("cookie-monster")
	if err != nil {
		t.Fatal(err)
	}
	w, err := figures.ByName("cookie-monster")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := w.Config()
	if err != nil {
		t.Fatal(err)
	}
	ds := cfg.Dataset
	scenario := cfg
	scenario.Dataset = nil

	meta := ds.Meta()
	meta.Advertisers = nil
	srv, err := serve.NewServer(serve.Config{Scenario: scenario, Meta: meta})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	if _, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:    hs.URL,
		Dataset:   ds,
		Senders:   1,
		BatchSize: 128,
		Client:    hs.Client(),
	}); err != nil {
		t.Fatalf("loadgen.Run: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	run, err := srv.Shutdown(ctx, true)
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got, want := run.CanonicalDigest(), ref.CanonicalDigest(); got != want {
		t.Fatalf("single-sender loadgen digest %s != batch reference %s", got, want)
	}
}
