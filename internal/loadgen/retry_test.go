package loadgen_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/loadgen"
	"repro/internal/serve"
)

// retry_test.go pins the client retry discipline against stub servers
// whose behavior the tests control exactly: bounded give-ups when a
// server never relents, and Retry-After hints honored over the client's
// own backoff schedule.

func stubDataset(n int) *dataset.Dataset {
	ds := &dataset.Dataset{
		Name:              "stub",
		PopulationDevices: 4,
		DurationDays:      1,
		Advertisers: []dataset.Advertiser{{
			Site: "stub.example", Products: []string{"p0"},
			MaxValue: 10, AvgReportValue: 5, BatchSize: 10,
		}},
	}
	for i := 0; i < n; i++ {
		ds.Events = append(ds.Events, events.Event{
			ID: events.EventID(i + 1), Kind: events.KindConversion,
			Device: events.DeviceID(i % 4), Day: 0,
			Advertiser: "stub.example", Product: "p0", Value: 1,
		})
	}
	return ds
}

// TestLoadgenGiveUpBounded: a server that refuses every ingest forever
// must not wedge the client. The sender burns its bounded retry budget,
// gives up loudly, and the report locates the abandoned batch.
func TestLoadgenGiveUpBounded(t *testing.T) {
	var ingests atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/queries":
			w.WriteHeader(http.StatusOK)
		case "/v1/events":
			ingests.Add(1)
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(serve.ErrorResponse{
				Error: "full", Code: serve.CodeBackpressure, RetryAfterMs: 1,
			})
		default:
			http.NotFound(w, r)
		}
	}))
	defer hs.Close()

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Target: hs.URL, Dataset: stubDataset(32), Senders: 1, BatchSize: 16,
		MaxRetries: 5, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	})
	if err == nil {
		t.Fatalf("run against an always-refusing server reported success")
	}
	if rep == nil {
		t.Fatalf("failed run returned no report")
	}
	if rep.GiveUps != 1 {
		t.Fatalf("give-ups = %d, want exactly 1 (first batch abandoned, run stops)", rep.GiveUps)
	}
	if len(rep.GiveUpsBySender) != 1 || rep.GiveUpsBySender[0] != 1 {
		t.Fatalf("give-ups by sender = %v, want [1]", rep.GiveUpsBySender)
	}
	// MaxRetries bounds attempts per batch: 1 initial + 5 retries.
	if got := ingests.Load(); got != 6 {
		t.Fatalf("server saw %d ingest attempts, want 6 (1 + MaxRetries)", got)
	}
	if rep.Retries429 != 6 {
		t.Fatalf("retries429 = %d, want 6 (every pushback counted)", rep.Retries429)
	}
	if rep.RetryAfterMissing != 0 {
		t.Fatalf("server sent Retry-After on every refusal, client counted %d missing", rep.RetryAfterMissing)
	}
}

// TestLoadgenHonorsRetryAfter: a pushback carrying a precise hint far
// above the client's own backoff must stall the retry for the hinted
// time, not the exponential schedule's few milliseconds.
func TestLoadgenHonorsRetryAfter(t *testing.T) {
	const hintMs = 300
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/queries":
			w.WriteHeader(http.StatusOK)
		case "/v1/events":
			if calls.Add(1) == 1 {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusTooManyRequests)
				json.NewEncoder(w).Encode(serve.ErrorResponse{
					Error: "overloaded", Code: serve.CodeOverload, RetryAfterMs: hintMs,
				})
				return
			}
			var req serve.IngestRequest
			json.NewDecoder(r.Body).Decode(&req)
			json.NewEncoder(w).Encode(serve.IngestResponse{Accepted: len(req.Events)})
		default:
			http.NotFound(w, r)
		}
	}))
	defer hs.Close()

	start := time.Now()
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Target: hs.URL, Dataset: stubDataset(16), Senders: 1, BatchSize: 16,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("loadgen.Run: %v", err)
	}
	if elapsed < hintMs*time.Millisecond {
		t.Fatalf("run finished in %v; the %dms Retry-After hint was not honored", elapsed, hintMs)
	}
	if rep.RetryAfterWaits != 1 {
		t.Fatalf("retryAfterWaits = %d, want 1", rep.RetryAfterWaits)
	}
	if rep.ShedObserved != 1 {
		t.Fatalf("shedObserved = %d, want 1 (the pushback carried the overload code)", rep.ShedObserved)
	}
	if rep.EventsAccepted != 16 {
		t.Fatalf("accepted %d events, want 16", rep.EventsAccepted)
	}
	if rep.RetryAmplification <= 1 {
		t.Fatalf("retry amplification %.3f, want > 1 after a retried batch", rep.RetryAmplification)
	}
}
