// Package loadgen drives a running measured server (internal/serve) with
// a workload trace: N concurrent senders partition the trace's device
// population and POST event batches at a configurable aggregate request
// rate, while a poller measures querier-side result latency. It reports
// ingest and query latency quantiles (p50/p95/p99) and sustained
// throughput — the numbers behind BENCH_serve.json.
//
// Senders advance through the trace day by day with a barrier between
// days: within a day, batches from different senders interleave freely
// (per-device order is still monotonic, which is all admission dedupe
// needs), but no sender starts day d+1 until every sender finished day d,
// matching the nondecreasing-day arrival contract of a real deployment's
// day clock.
//
// Retry discipline (DESIGN.md §14): a batch is retried verbatim on
// pushback (429/503) and on transport errors — at-least-once delivery,
// safe because the server's (device, seq) dedupe makes redelivery
// idempotent. Each attempt carries its own deadline; waits between
// attempts use capped exponential backoff with seeded equal-jitter, and
// honor the server's Retry-After (header or precise retryAfterMs body
// hint) when it asks for more. A batch still refused after MaxRetries is
// a give-up: counted per sender, and the run fails loudly instead of
// hanging on a wedged server.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/serve"
	"repro/internal/stats"
)

// Config parameterizes one load run.
type Config struct {
	// Target is the server's base URL, e.g. http://127.0.0.1:8080.
	Target string
	// Dataset supplies the trace: its advertisers are registered first (in
	// order, so a fresh server's canonical querier order matches the
	// trace), then its events are sent.
	Dataset *dataset.Dataset
	// Senders is the number of concurrent sender goroutines. The device
	// population is partitioned across them by device ID. 0 selects 4.
	Senders int
	// RPS caps the aggregate ingest request rate across all senders
	// (0 = unpaced, as fast as the server admits).
	RPS float64
	// BatchSize is the number of events per POST /v1/events (capped at
	// the server's per-request limit). 0 selects 256.
	BatchSize int
	// WarmupFraction discards the first fraction of latency samples (and
	// the corresponding wall time) from the quantiles, so connection and
	// day-0 ramp-up don't pollute steady-state numbers. 0 keeps all.
	WarmupFraction float64
	// PollInterval is the result poller's cadence (0 = 50ms).
	PollInterval time.Duration
	// Client overrides the HTTP client (nil = 30s-timeout default). Chaos
	// harnesses install a netfault.Transport here.
	Client *http.Client
	// MaxRetries bounds per-batch retries (pushback and transport errors
	// alike) before the sender gives up and the run fails (0 = 2500,
	// which at the 2ms floor is tens of seconds of pushback).
	MaxRetries int
	// RequestTimeout bounds each individual attempt (0 = 10s); the
	// Client's own timeout still caps the whole exchange.
	RequestTimeout time.Duration
	// BaseBackoff and MaxBackoff bound the jittered exponential backoff
	// between attempts (0 = 2ms and 250ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxRetryAfter caps how long a server Retry-After hint is honored
	// (0 = 30s) — a confused server must not park the client forever.
	MaxRetryAfter time.Duration
	// Seed drives the backoff jitter streams (per sender), so a load run
	// is reproducible end to end.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Senders == 0 {
		c.Senders = 4
	}
	if c.BatchSize == 0 {
		c.BatchSize = 256
	}
	if c.BatchSize > serve.MaxBatchEvents {
		c.BatchSize = serve.MaxBatchEvents
	}
	if c.PollInterval == 0 {
		c.PollInterval = 50 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2500
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 2 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 250 * time.Millisecond
	}
	if c.MaxRetryAfter == 0 {
		c.MaxRetryAfter = 30 * time.Second
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Target == "":
		return fmt.Errorf("loadgen: empty target")
	case c.Dataset == nil:
		return fmt.Errorf("loadgen: nil dataset")
	case c.Senders < 0 || c.BatchSize < 0 || c.RPS < 0:
		return fmt.Errorf("loadgen: negative senders, batch size or rps")
	case c.WarmupFraction < 0 || c.WarmupFraction >= 1:
		return fmt.Errorf("loadgen: warmup fraction outside [0,1)")
	}
	return nil
}

// Report is one load run's measurements. All latencies are milliseconds;
// the flat shape drops straight into BENCH_serve.json rows.
type Report struct {
	Workload  string  `json:"workload"`
	Senders   int     `json:"senders"`
	TargetRPS float64 `json:"targetRPS"`
	BatchSize int     `json:"batchSize"`

	Requests       int `json:"requests"`
	EventsSent     int `json:"eventsSent"`
	EventsAccepted int `json:"eventsAccepted"`
	Duplicates     int `json:"duplicates"`
	Retries429     int `json:"retries429"`
	Retries503     int `json:"retries503"`
	// RetriesNet counts attempts retried after transport-level failures
	// (resets, timeouts, dropped responses) — the at-least-once path.
	RetriesNet int `json:"retriesNet"`
	// ShedObserved counts 429s carrying the overload-shed code, as
	// distinct from queue-full backpressure.
	ShedObserved int `json:"shedObserved"`
	// RetryAfterWaits counts retry waits where the server supplied a
	// Retry-After hint (honored up to MaxRetryAfter); RetryAfterMissing
	// counts pushback responses lacking the header entirely — a server-
	// side contract violation the bench surfaces.
	RetryAfterWaits   int `json:"retryAfterWaits"`
	RetryAfterMissing int `json:"retryAfterMissing"`
	// GiveUps counts batches abandoned after MaxRetries (any give-up
	// fails the run); GiveUpsBySender locates the wedged sender.
	GiveUps         int   `json:"giveUps"`
	GiveUpsBySender []int `json:"giveUpsBySender,omitempty"`
	// RetryAmplification is attempts per unique batch: 1.0 on a clean
	// network, rising with injected faults and pushback.
	RetryAmplification float64 `json:"retryAmplification"`

	DurationSeconds       float64 `json:"durationSeconds"`
	SustainedRPS          float64 `json:"sustainedRPS"`
	SustainedEventsPerSec float64 `json:"sustainedEventsPerSec"`

	IngestP50Millis float64 `json:"ingestP50Millis"`
	IngestP95Millis float64 `json:"ingestP95Millis"`
	IngestP99Millis float64 `json:"ingestP99Millis"`

	// AcceptedP* are quantiles over accepted (200) attempts only — what
	// admitted traffic experienced, excluding fast pushback round-trips.
	// Under shedding this is the bounded-latency claim's metric.
	AcceptedP50Millis float64 `json:"acceptedP50Millis"`
	AcceptedP95Millis float64 `json:"acceptedP95Millis"`
	AcceptedP99Millis float64 `json:"acceptedP99Millis"`

	QueryPolls      int     `json:"queryPolls"`
	ResultsFetched  int     `json:"resultsFetched"`
	QueryP50Millis  float64 `json:"queryP50Millis"`
	QueryP95Millis  float64 `json:"queryP95Millis"`
	QueryP99Millis  float64 `json:"queryP99Millis"`
	WarmupDiscarded int     `json:"warmupDiscarded"`
}

// pacer doles out send slots at an aggregate request rate. The zero rate
// never blocks.
type pacer struct {
	mu       sync.Mutex
	interval time.Duration
	next     time.Time
}

func newPacer(rps float64) *pacer {
	if rps <= 0 {
		return &pacer{}
	}
	return &pacer{interval: time.Duration(float64(time.Second) / rps)}
}

// wait blocks until the caller's slot arrives and returns false if ctx
// ended first.
func (p *pacer) wait(ctx context.Context) bool {
	if p.interval == 0 {
		return ctx.Err() == nil
	}
	p.mu.Lock()
	now := time.Now()
	if p.next.Before(now) {
		p.next = now
	}
	slot := p.next
	p.next = p.next.Add(p.interval)
	p.mu.Unlock()
	if d := time.Until(slot); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return false
		}
	}
	return ctx.Err() == nil
}

// generator is one live load run.
type generator struct {
	cfg   Config
	pacer *pacer
	rngs  []*stats.RNG // per-sender jitter streams

	mu          sync.Mutex
	ingestMs    []float64 // POST /v1/events round-trip, send order
	acceptedMs  []float64 // 200-attempt round-trips only
	queryMs     []float64 // GET /v1/results round-trip, poll order
	requests    int
	batches     int
	accepted    int
	duplicates  int
	retries429  int
	retries503  int
	retriesNet  int
	shedSeen    int
	raWaits     int
	raMissing   int
	giveUps     []int // per sender
	polls       int
	resultsSeen int
}

// Run executes the load run: register queriers, stream the trace through
// N senders, and measure. It returns the report; the server is left
// serving (the caller decides whether to shut it down or keep feeding).
// On failure the report is still returned alongside the error with
// whatever was measured before the run died — give-up telemetry included
// — so a wedged server fails loudly with its numbers attached.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &generator{cfg: cfg, pacer: newPacer(cfg.RPS)}
	g.giveUps = make([]int, cfg.Senders)
	g.rngs = make([]*stats.RNG, cfg.Senders)
	for i := range g.rngs {
		g.rngs[i] = stats.Stream(cfg.Seed, fmt.Sprintf("loadgen/sender/%d", i))
	}
	if err := g.register(ctx); err != nil {
		return nil, err
	}

	// Partition the trace by sender (device ID modulo senders keeps each
	// device's events on one sender, preserving per-device order), then by
	// day for the inter-day barrier.
	days := cfg.Dataset.DurationDays
	bySender := make([][][]events.Event, cfg.Senders) // [sender][day][]event
	for i := range bySender {
		bySender[i] = make([][]events.Event, days)
	}
	ordered := make([]events.Event, len(cfg.Dataset.Events))
	copy(ordered, cfg.Dataset.Events)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Before(ordered[j]) })
	sent := 0
	for _, ev := range ordered {
		s := int(uint64(ev.Device) % uint64(cfg.Senders))
		bySender[s][ev.Day] = append(bySender[s][ev.Day], ev)
		sent++
	}

	pollCtx, stopPoll := context.WithCancel(ctx)
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		g.poll(pollCtx)
	}()

	start := time.Now()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for day := 0; day < days; day++ {
		for s := 0; s < cfg.Senders; s++ {
			batch := bySender[s][day]
			if len(batch) == 0 {
				continue
			}
			wg.Add(1)
			go func(sender int, evs []events.Event) {
				defer wg.Done()
				if err := g.sendDay(ctx, sender, evs); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}(s, batch)
		}
		wg.Wait() // day barrier
		if firstErr != nil {
			break
		}
	}
	elapsed := time.Since(start)
	stopPoll()
	pollWG.Wait()
	return g.report(sent, elapsed), firstErr
}

// register posts the dataset's queriers in order, under the same retry
// discipline as event batches (registration is idempotent server-side, so
// a redelivered registration re-acks instead of conflicting).
func (g *generator) register(ctx context.Context) error {
	for _, a := range g.cfg.Dataset.Advertisers {
		body, err := json.Marshal(serve.RegistrationFromAdvertiser(a))
		if err != nil {
			return err
		}
		backoff := newBackoff(g.cfg, g.rngs[0])
		for attempt := 0; ; attempt++ {
			status, respBody, hdr, err := g.post(ctx, "/v1/queries", body)
			retryable := err != nil ||
				status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
			if !retryable {
				if status != http.StatusOK {
					return fmt.Errorf("loadgen: registering %s: status %d: %s", a.Site, status, respBody)
				}
				break
			}
			if attempt >= g.cfg.MaxRetries {
				if err != nil {
					return fmt.Errorf("loadgen: registering %s: %w", a.Site, err)
				}
				return fmt.Errorf("loadgen: registering %s: still refused (status %d) after %d retries",
					a.Site, status, attempt)
			}
			if werr := backoff.sleep(ctx, retryHint(status, respBody, hdr, g.cfg.MaxRetryAfter)); werr != nil {
				return werr
			}
		}
	}
	return nil
}

// sendDay streams one sender's slice of one day, batch by batch.
func (g *generator) sendDay(ctx context.Context, sender int, evs []events.Event) error {
	for len(evs) > 0 {
		n := min(g.cfg.BatchSize, len(evs))
		if err := g.sendBatch(ctx, sender, evs[:n]); err != nil {
			return err
		}
		evs = evs[n:]
	}
	return nil
}

// backoff is one batch's wait policy: capped exponential with seeded
// equal-jitter, overridden upward by server Retry-After hints.
type backoff struct {
	cur time.Duration
	max time.Duration
	rng *stats.RNG
}

func newBackoff(cfg Config, rng *stats.RNG) *backoff {
	return &backoff{cur: cfg.BaseBackoff, max: cfg.MaxBackoff, rng: rng}
}

// sleep waits out one retry: equal-jitter on the current exponential step
// (half fixed, half uniform), or the server's hint when it asks for more.
func (b *backoff) sleep(ctx context.Context, hint time.Duration) error {
	d := b.cur/2 + time.Duration(b.rng.Float64()*float64(b.cur/2))
	if hint > d {
		d = hint
	}
	if b.cur < b.max {
		b.cur *= 2
		if b.cur > b.max {
			b.cur = b.max
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryHint extracts the server's retry guidance from a pushback
// response: the precise retryAfterMs body field when present, else the
// integer-seconds Retry-After header, capped at maxWait. Zero means the
// server offered none.
func retryHint(status int, body []byte, hdr http.Header, maxWait time.Duration) time.Duration {
	if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
		return 0
	}
	var hint time.Duration
	var er serve.ErrorResponse
	if err := json.Unmarshal(body, &er); err == nil && er.RetryAfterMs > 0 {
		hint = time.Duration(er.RetryAfterMs) * time.Millisecond
	} else if ra := hdr.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			hint = time.Duration(secs) * time.Second
		}
	}
	if hint > maxWait {
		hint = maxWait
	}
	return hint
}

// sendBatch posts one batch, retrying verbatim on pushback (429/503) and
// on transport errors — at-least-once, leaning on the server's
// (device, seq) idempotency — under the jittered backoff discipline. A
// batch still failing after MaxRetries is a give-up: counted against the
// sender and returned as the run's error.
func (g *generator) sendBatch(ctx context.Context, sender int, evs []events.Event) error {
	req := serve.IngestRequest{Events: make([]serve.EventWire, len(evs))}
	for i, ev := range evs {
		req.Events[i] = serve.WireFromEvent(ev)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	g.mu.Lock()
	g.batches++
	g.mu.Unlock()
	bo := newBackoff(g.cfg, g.rngs[sender])
	for attempt := 0; ; attempt++ {
		if !g.pacer.wait(ctx) {
			return ctx.Err()
		}
		attemptCtx, cancel := context.WithTimeout(ctx, g.cfg.RequestTimeout)
		t0 := time.Now()
		status, respBody, hdr, err := g.post(attemptCtx, "/v1/events", body)
		rtt := time.Since(t0)
		cancel()
		if err != nil {
			// Transport-level failure: the server may or may not have
			// processed the batch (lost-ack regime). Redelivery is safe —
			// admitted events dedupe — so retry unless the run itself ended.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			g.mu.Lock()
			g.retriesNet++
			g.mu.Unlock()
			if attempt >= g.cfg.MaxRetries {
				return g.giveUp(sender, fmt.Errorf("loadgen: POST /v1/events failing after %d retries: %w", attempt, err))
			}
			if werr := bo.sleep(ctx, 0); werr != nil {
				return werr
			}
			continue
		}
		g.mu.Lock()
		g.requests++
		g.ingestMs = append(g.ingestMs, float64(rtt)/float64(time.Millisecond))
		g.mu.Unlock()
		switch status {
		case http.StatusOK:
			var resp serve.IngestResponse
			if err := json.Unmarshal(respBody, &resp); err != nil {
				return fmt.Errorf("loadgen: parsing ingest response: %w", err)
			}
			g.mu.Lock()
			g.accepted += resp.Accepted
			g.duplicates += resp.Duplicates
			g.acceptedMs = append(g.acceptedMs, float64(rtt)/float64(time.Millisecond))
			g.mu.Unlock()
			return nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			var er serve.ErrorResponse
			shed := json.Unmarshal(respBody, &er) == nil && er.Code == serve.CodeOverload
			hint := retryHint(status, respBody, hdr, g.cfg.MaxRetryAfter)
			g.mu.Lock()
			if status == http.StatusTooManyRequests {
				g.retries429++
			} else {
				g.retries503++
			}
			if shed {
				g.shedSeen++
			}
			if hdr.Get("Retry-After") == "" {
				g.raMissing++
			}
			if hint > 0 {
				g.raWaits++
			}
			g.mu.Unlock()
			if attempt >= g.cfg.MaxRetries {
				return g.giveUp(sender, fmt.Errorf("loadgen: batch still refused (status %d) after %d retries",
					status, attempt))
			}
			if werr := bo.sleep(ctx, hint); werr != nil {
				return werr
			}
		default:
			return fmt.Errorf("loadgen: POST /v1/events: status %d: %s", status, respBody)
		}
	}
}

// giveUp records an abandoned batch against its sender and fails the run.
func (g *generator) giveUp(sender int, err error) error {
	g.mu.Lock()
	g.giveUps[sender]++
	g.mu.Unlock()
	return fmt.Errorf("%w (sender %d gave up)", err, sender)
}

// poll is the querier side of the load: fetch new results on a fixed
// cadence, measuring each GET's round trip.
func (g *generator) poll(ctx context.Context) {
	after := -1
	t := time.NewTicker(g.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		t0 := time.Now()
		status, body, err := g.get(ctx, fmt.Sprintf("/v1/results?after=%d", after))
		rtt := time.Since(t0)
		if err != nil || status != http.StatusOK {
			continue // poller is best-effort; senders report hard failures
		}
		var resp serve.ResultsResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			continue
		}
		g.mu.Lock()
		g.polls++
		g.queryMs = append(g.queryMs, float64(rtt)/float64(time.Millisecond))
		g.resultsSeen += len(resp.Results)
		g.mu.Unlock()
		for _, r := range resp.Results {
			if r.Index > after {
				after = r.Index
			}
		}
	}
}

func (g *generator) post(ctx context.Context, path string, body []byte) (int, []byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		g.cfg.Target+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return g.do(req)
}

func (g *generator) get(ctx context.Context, path string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.cfg.Target+path, nil)
	if err != nil {
		return 0, nil, err
	}
	status, body, _, err := g.do(req)
	return status, body, err
}

func (g *generator) do(req *http.Request) (int, []byte, http.Header, error) {
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, serve.MaxBodyBytes))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, body, resp.Header, nil
}

// report folds the samples into quantiles, discarding the warm-up prefix.
func (g *generator) report(sent int, elapsed time.Duration) *Report {
	g.mu.Lock()
	defer g.mu.Unlock()
	r := &Report{
		Workload:          g.cfg.Dataset.Name,
		Senders:           g.cfg.Senders,
		TargetRPS:         g.cfg.RPS,
		BatchSize:         g.cfg.BatchSize,
		Requests:          g.requests,
		EventsSent:        sent,
		EventsAccepted:    g.accepted,
		Duplicates:        g.duplicates,
		Retries429:        g.retries429,
		Retries503:        g.retries503,
		RetriesNet:        g.retriesNet,
		ShedObserved:      g.shedSeen,
		RetryAfterWaits:   g.raWaits,
		RetryAfterMissing: g.raMissing,
		DurationSeconds:   elapsed.Seconds(),
		QueryPolls:        g.polls,
		ResultsFetched:    g.resultsSeen,
	}
	for _, n := range g.giveUps {
		r.GiveUps += n
	}
	if r.GiveUps > 0 {
		r.GiveUpsBySender = append([]int(nil), g.giveUps...)
	}
	if g.batches > 0 {
		// Attempts per unique batch: successful requests plus every retried
		// attempt (pushback and transport failures alike).
		r.RetryAmplification = float64(g.requests+g.retriesNet) / float64(g.batches)
	}
	if elapsed > 0 {
		r.SustainedRPS = float64(g.requests) / elapsed.Seconds()
		r.SustainedEventsPerSec = float64(g.accepted) / elapsed.Seconds()
	}
	ingest := g.ingestMs
	if cut := int(float64(len(ingest)) * g.cfg.WarmupFraction); cut > 0 && cut < len(ingest) {
		r.WarmupDiscarded = cut
		ingest = ingest[cut:]
	}
	r.IngestP50Millis, r.IngestP95Millis, r.IngestP99Millis = quantiles(ingest)
	r.AcceptedP50Millis, r.AcceptedP95Millis, r.AcceptedP99Millis = quantiles(g.acceptedMs)
	r.QueryP50Millis, r.QueryP95Millis, r.QueryP99Millis = quantiles(g.queryMs)
	return r
}

// quantiles returns (p50, p95, p99) of the samples, zeros when empty
// (stats.Quantile refuses an empty sample by design).
func quantiles(samples []float64) (p50, p95, p99 float64) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	return stats.Quantile(sorted, 0.50), stats.Quantile(sorted, 0.95), stats.Quantile(sorted, 0.99)
}

// WriteBenchFile writes reports as a BENCH_*.json rows file.
func WriteBenchFile(path string, reports ...*Report) error {
	rows := struct {
		Rows []*Report `json:"rows"`
	}{Rows: reports}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
