package dataset

import (
	"testing"

	"repro/internal/events"
)

func TestMicroDefaultShape(t *testing.T) {
	cfg := DefaultMicroConfig()
	ds, err := Micro(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantConv := cfg.Products * cfg.QueriesPerProduct * cfg.BatchSize
	if got := ds.Conversions(); got != wantConv {
		t.Fatalf("conversions = %d, want %d", got, wantConv)
	}
	if ds.PopulationDevices != int(float64(cfg.BatchSize)/cfg.Knob1+0.5) {
		t.Fatalf("population = %d", ds.PopulationDevices)
	}
	if ds.Impressions() == 0 {
		t.Fatal("no impressions generated")
	}
	if len(ds.Advertisers) != 1 {
		t.Fatalf("advertisers = %d", len(ds.Advertisers))
	}
	adv := ds.Advertisers[0]
	if adv.BatchSize != cfg.BatchSize || adv.MaxValue != 10 || len(adv.Products) != 10 {
		t.Fatalf("advertiser meta = %+v", adv)
	}
	if adv.AvgReportValue <= 0 || adv.AvgReportValue > adv.MaxValue {
		t.Fatalf("c̃ = %v out of range", adv.AvgReportValue)
	}
}

func TestMicroDeterministic(t *testing.T) {
	a, _ := Micro(DefaultMicroConfig())
	b, _ := Micro(DefaultMicroConfig())
	if len(a.Events) != len(b.Events) {
		t.Fatal("non-deterministic event count")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestMicroKnob1ControlsPopulation(t *testing.T) {
	lo := DefaultMicroConfig()
	lo.Knob1 = 0.01
	hi := DefaultMicroConfig()
	hi.Knob1 = 1.0
	dsLo, _ := Micro(lo)
	dsHi, _ := Micro(hi)
	if dsLo.PopulationDevices != 100*dsHi.PopulationDevices {
		t.Fatalf("population %d vs %d, want 100x", dsLo.PopulationDevices, dsHi.PopulationDevices)
	}
	// Same number of conversions either way.
	if dsLo.Conversions() != dsHi.Conversions() {
		t.Fatal("knob1 changed the conversion count")
	}
}

func TestMicroKnob1DistinctDevicesPerBatch(t *testing.T) {
	cfg := DefaultMicroConfig()
	cfg.Knob1 = 1.0 // population == batch: every device in every batch
	ds, _ := Micro(cfg)
	// Count conversions per device: must be exactly one per batch.
	perDevice := make(map[events.DeviceID]int)
	for _, ev := range ds.Events {
		if ev.IsConversion() {
			perDevice[ev.Device]++
		}
	}
	want := cfg.Products * cfg.QueriesPerProduct
	for dev, n := range perDevice {
		if n != want {
			t.Fatalf("device %d has %d conversions, want %d", dev, n, want)
		}
	}
}

func TestMicroKnob2ControlsImpressions(t *testing.T) {
	lo := DefaultMicroConfig()
	lo.Knob2 = 0.01
	hi := DefaultMicroConfig()
	hi.Knob2 = 0.5
	dsLo, _ := Micro(lo)
	dsHi, _ := Micro(hi)
	if dsLo.Impressions() >= dsHi.Impressions() {
		t.Fatalf("impressions %d !< %d", dsLo.Impressions(), dsHi.Impressions())
	}
}

func TestMicroValidation(t *testing.T) {
	bad := []func(*MicroConfig){
		func(c *MicroConfig) { c.Products = 0 },
		func(c *MicroConfig) { c.BatchSize = 0 },
		func(c *MicroConfig) { c.QueriesPerProduct = 0 },
		func(c *MicroConfig) { c.DurationDays = 0 },
		func(c *MicroConfig) { c.Knob1 = 0 },
		func(c *MicroConfig) { c.Knob1 = 1.5 },
		func(c *MicroConfig) { c.Knob2 = -1 },
		func(c *MicroConfig) { c.MaxValue = 0 },
		func(c *MicroConfig) { c.WindowDays = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultMicroConfig()
		mut(&cfg)
		if _, err := Micro(cfg); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestPATCGShape(t *testing.T) {
	cfg := DefaultPATCGConfig()
	cfg.Users = 5000 // keep the test fast
	ds, err := PATCG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conv := ds.Conversions()
	// ~1.5 conversions per user.
	perUser := float64(conv) / float64(cfg.Users)
	if perUser < 1.3 || perUser > 1.7 {
		t.Fatalf("conversions per user = %v, want ~1.5", perUser)
	}
	// ~3.2 impressions per user.
	perUserImp := float64(ds.Impressions()) / float64(cfg.Users)
	if perUserImp < 2.8 || perUserImp > 3.6 {
		t.Fatalf("impressions per user = %v, want ~3.2", perUserImp)
	}
	adv := ds.Advertisers[0]
	// Batch size supports the full query schedule for every product.
	perProduct := make(map[string]int)
	for _, ev := range ds.Events {
		if ev.IsConversion() {
			perProduct[ev.Product]++
		}
	}
	for p, n := range perProduct {
		if n < adv.BatchSize*cfg.QueriesPerProduct {
			t.Fatalf("product %s has %d conversions < %d batches×%d",
				p, n, cfg.QueriesPerProduct, adv.BatchSize)
		}
	}
}

func TestPATCGValidation(t *testing.T) {
	cfg := DefaultPATCGConfig()
	cfg.Users = 0
	if _, err := PATCG(cfg); err == nil {
		t.Fatal("zero users accepted")
	}
	cfg = DefaultPATCGConfig()
	cfg.MeanImpressions = -1
	if _, err := PATCG(cfg); err == nil {
		t.Fatal("negative impressions accepted")
	}
}

func TestCriteoShape(t *testing.T) {
	cfg := DefaultCriteoConfig()
	cfg.TotalConversions = 10000
	cfg.Users = 5000
	ds, err := Criteo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Conversions() != cfg.TotalConversions {
		t.Fatalf("conversions = %d", ds.Conversions())
	}
	if len(ds.Advertisers) == 0 {
		t.Fatal("no queryable advertisers")
	}
	if len(ds.Advertisers) >= cfg.Advertisers {
		t.Fatal("every advertiser queryable; size skew missing")
	}
	// Heavy tail: advertiser 1 (rank 1) must dominate.
	counts := make(map[events.Site]int)
	for _, ev := range ds.Events {
		if ev.IsConversion() {
			counts[ev.Advertiser]++
		}
	}
	if counts["advertiser-001.example"] < counts["advertiser-050.example"] {
		t.Fatal("Zipf skew inverted")
	}
}

func TestCriteoAugmentationAddsImpressions(t *testing.T) {
	base := DefaultCriteoConfig()
	base.TotalConversions = 5000
	base.Users = 2000
	plain, _ := Criteo(base)
	aug := base
	aug.AugmentImpressions = 4
	augmented, _ := Criteo(aug)
	// Augmentation adds ≈ 4 impressions per conversion.
	delta := augmented.Impressions() - plain.Impressions()
	if delta < 3*base.TotalConversions || delta > 5*base.TotalConversions {
		t.Fatalf("augmentation delta = %d impressions for %d conversions", delta, base.TotalConversions)
	}
	if plain.Conversions() != augmented.Conversions() {
		t.Fatal("augmentation changed conversions")
	}
}

func TestCriteoImpressionsInsideWindow(t *testing.T) {
	cfg := DefaultCriteoConfig()
	cfg.TotalConversions = 2000
	cfg.Users = 500
	cfg.AugmentImpressions = 2
	ds, _ := Criteo(cfg)
	for _, ev := range ds.Events {
		if ev.IsImpression() && (ev.Day < 0 || ev.Day >= cfg.DurationDays) {
			t.Fatalf("impression on day %d outside trace", ev.Day)
		}
	}
}

func TestCriteoValidation(t *testing.T) {
	cfg := DefaultCriteoConfig()
	cfg.ZipfExponent = 0
	if _, err := Criteo(cfg); err == nil {
		t.Fatal("zero zipf exponent accepted")
	}
	cfg = DefaultCriteoConfig()
	cfg.MinBatch = 0
	if _, err := Criteo(cfg); err == nil {
		t.Fatal("zero min batch accepted")
	}
}

func TestBuildPartitionsByEpoch(t *testing.T) {
	cfg := DefaultMicroConfig()
	cfg.BatchSize = 50
	ds, _ := Micro(cfg)
	db := ds.Build(7)
	if db.NumEvents() != len(ds.Events) {
		t.Fatalf("db has %d events, dataset has %d", db.NumEvents(), len(ds.Events))
	}
	// Every event must land in the epoch matching its day.
	for _, d := range db.Devices() {
		for _, e := range db.DeviceEpochs(d) {
			for _, ev := range db.EpochEvents(d, e) {
				if events.EpochOfDay(ev.Day, 7) != e {
					t.Fatalf("event day %d in epoch %d", ev.Day, e)
				}
			}
		}
	}
}

func TestEpochsCount(t *testing.T) {
	ds := &Dataset{DurationDays: 120}
	if got := ds.Epochs(7); got != 18 {
		t.Fatalf("Epochs(7) = %d, want 18", got)
	}
	if got := ds.Epochs(30); got != 4 {
		t.Fatalf("Epochs(30) = %d, want 4", got)
	}
	if (&Dataset{}).Epochs(7) != 0 {
		t.Fatal("empty dataset epochs != 0")
	}
}

func TestAttributionRate(t *testing.T) {
	evs := []events.Event{
		{ID: 1, Kind: events.KindImpression, Device: 1, Day: 5, Campaign: "p"},
		{ID: 2, Kind: events.KindConversion, Device: 1, Day: 10, Product: "p"}, // attributed
		{ID: 3, Kind: events.KindConversion, Device: 2, Day: 10, Product: "p"}, // no impression
		{ID: 4, Kind: events.KindConversion, Device: 1, Day: 50, Product: "p"}, // outside window
		{ID: 5, Kind: events.KindConversion, Device: 1, Day: 10, Product: "q"}, // wrong product
	}
	if got := attributionRate(evs, 30); got != 0.25 {
		t.Fatalf("rate = %v, want 0.25", got)
	}
	if attributionRate(nil, 30) != 0 {
		t.Fatal("empty rate != 0")
	}
}

func TestDatasetString(t *testing.T) {
	ds, _ := Micro(DefaultMicroConfig())
	if ds.String() == "" {
		t.Fatal("empty String()")
	}
}
