package dataset

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/stats"
)

// CriteoConfig parameterizes the Criteo-like multi-advertiser dataset
// (§6.4). The real Criteo log spans 90 days, 292 advertisers with heavily
// skewed sizes (0–478k conversions each), 12M impressions and 1.3M
// conversions over 10M users — and is *heavily subsampled*, missing many
// impressions, which favours Cookie Monster's zero-loss optimization. The
// generator reproduces the size skew (Zipf), the impression sparsity
// (ImpressionsPerConversion < 1 models the subsampling) and the Criteo++
// augmentation knob that back-fills synthetic impressions.
type CriteoConfig struct {
	// Seed makes the dataset reproducible.
	Seed uint64
	// Advertisers is the number of advertisers (292 in the paper).
	Advertisers int
	// Users is the shared device population.
	Users int
	// TotalConversions is the target conversion count across all
	// advertisers (1.3M in the paper).
	TotalConversions int
	// ZipfExponent controls advertiser size skew.
	ZipfExponent float64
	// DurationDays is the trace length (90 in the paper).
	DurationDays int
	// MinBatch is the minimum reports per query (350 in the paper);
	// advertisers with fewer conversions are not queryable.
	MinBatch int
	// ImpressionsPerConversion is the population-median expected number
	// of *organic* relevant impressions per conversion, placed within the
	// attribution window (< 1 models the subsampled log). Each advertiser
	// gets its own density, log-normally spread around this median —
	// real advertisers differ hugely in match rate, which is what makes
	// some advertisers' calibrated ε exceed the per-epoch capacity and
	// drives the error tail of Fig. 6b.
	ImpressionsPerConversion float64
	// DensitySpread is the log-normal σ of the per-advertiser impression
	// density factor (0 = homogeneous advertisers).
	DensitySpread float64
	// AugmentImpressions adds this many synthetic relevant impressions
	// per conversion, uniformly spread over the window — the Criteo++
	// knob of Fig. 6d (0, 1, 4 or 9 extra impressions).
	AugmentImpressions int
	// MaxValue caps conversion values (uniform 1..MaxValue).
	MaxValue int
	// WindowDays is the attribution window used for impression placement
	// and c̃ estimation.
	WindowDays int
}

// DefaultCriteoConfig returns the scaled-down default used by the Fig. 6
// experiments.
func DefaultCriteoConfig() CriteoConfig {
	return CriteoConfig{
		Seed:                     3,
		Advertisers:              100,
		Users:                    30000,
		TotalConversions:         50000,
		ZipfExponent:             1.1,
		DurationDays:             90,
		MinBatch:                 350,
		ImpressionsPerConversion: 0.4,
		DensitySpread:            1.0,
		AugmentImpressions:       0,
		MaxValue:                 10,
		WindowDays:               30,
	}
}

func (c CriteoConfig) validate() error {
	switch {
	case c.Advertisers <= 0 || c.Users <= 0 || c.TotalConversions <= 0:
		return fmt.Errorf("dataset: criteo requires positive advertisers/users/conversions")
	case c.ZipfExponent <= 0:
		return fmt.Errorf("dataset: non-positive zipf exponent")
	case c.DurationDays <= 0 || c.WindowDays <= 0:
		return fmt.Errorf("dataset: criteo requires positive duration and window")
	case c.MinBatch <= 0:
		return fmt.Errorf("dataset: non-positive min batch")
	case c.ImpressionsPerConversion < 0 || c.AugmentImpressions < 0 || c.DensitySpread < 0:
		return fmt.Errorf("dataset: negative impression knobs")
	case c.MaxValue <= 0:
		return fmt.Errorf("dataset: non-positive max value")
	}
	return nil
}

// Criteo generates the Criteo-like dataset. Each conversion is assigned to
// an advertiser by a Zipf draw (heavy-tailed sizes), to a uniform user and
// day, and seeds Poisson(ImpressionsPerConversion) + AugmentImpressions
// relevant impressions at uniform offsets inside the attribution window —
// matching the augmentation procedure of §6.4 ("impressions are uniformly
// distributed across the attribution window").
func Criteo(cfg CriteoConfig) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := stats.Stream(cfg.Seed, "criteo")
	zipf := stats.NewZipf(cfg.Advertisers, cfg.ZipfExponent)

	ds := &Dataset{
		Name:              "criteo",
		PopulationDevices: cfg.Users,
		DurationDays:      cfg.DurationDays,
	}
	var nextID events.EventID
	newID := func() events.EventID { nextID++; return nextID }

	advSite := func(a int) events.Site {
		return events.Site(fmt.Sprintf("advertiser-%03d.example", a))
	}
	// Each advertiser sells a handful of products keyed like the paper's
	// "product-category-3" attribute.
	const productsPerAdvertiser = 3

	// Per-advertiser impression density: log-normal spread around the
	// configured median.
	density := make([]float64, cfg.Advertisers+1)
	for a := 1; a <= cfg.Advertisers; a++ {
		density[a] = cfg.ImpressionsPerConversion * rng.LogNormal(0, cfg.DensitySpread)
	}

	perAdvertiser := make([]int, cfg.Advertisers+1)
	attributed := make([]int, cfg.Advertisers+1)
	for i := 0; i < cfg.TotalConversions; i++ {
		a := zipf.Sample(rng)
		perAdvertiser[a]++
		dev := events.DeviceID(rng.Intn(cfg.Users) + 1)
		day := rng.Intn(cfg.DurationDays)
		product := productKey(rng.Intn(productsPerAdvertiser))
		ds.Events = append(ds.Events, events.Event{
			ID:         newID(),
			Kind:       events.KindConversion,
			Device:     dev,
			Day:        day,
			Advertiser: advSite(a),
			Product:    product,
			Value:      float64(1 + rng.Intn(cfg.MaxValue)),
		})
		// Organic (subsampled) + augmented relevant impressions. All
		// are placed inside the window, so the conversion is
		// attributable exactly when n > 0.
		n := rng.Poisson(density[a]) + cfg.AugmentImpressions
		if n > 0 {
			attributed[a]++
		}
		for j := 0; j < n; j++ {
			offset := rng.Intn(cfg.WindowDays)
			impDay := day - offset
			if impDay < 0 {
				impDay = 0
			}
			ds.Events = append(ds.Events, events.Event{
				ID:         newID(),
				Kind:       events.KindImpression,
				Device:     dev,
				Day:        impDay,
				Publisher:  "criteo-publisher.example",
				Advertiser: advSite(a),
				Campaign:   product,
			})
		}
	}

	avgValue := float64(1+cfg.MaxValue) / 2
	products := make([]string, productsPerAdvertiser)
	for p := range products {
		products[p] = productKey(p)
	}
	for a := 1; a <= cfg.Advertisers; a++ {
		if perAdvertiser[a] < cfg.MinBatch {
			continue // not queryable: below the 350-report minimum
		}
		// Per-advertiser c̃ from the advertiser's own match rate — the
		// "rough estimate" a real querier derives from its history.
		rate := float64(attributed[a]) / float64(perAdvertiser[a])
		cTilde := rate * avgValue
		if cTilde <= 0 {
			cTilde = avgValue / float64(cfg.MinBatch)
		}
		ds.Advertisers = append(ds.Advertisers, Advertiser{
			Site:           advSite(a),
			Products:       products,
			MaxValue:       float64(cfg.MaxValue),
			AvgReportValue: cTilde,
			BatchSize:      cfg.MinBatch,
		})
	}
	return ds, nil
}
