package dataset

import (
	"fmt"
	"sort"

	"repro/internal/events"
)

// Meta describes a dataset without its events: everything the workload
// drivers need to plan queries — population, duration, queriers — with no
// reference to the event log itself. A streaming service receives Meta up
// front and the events one at a time.
type Meta struct {
	// Name identifies the dataset in experiment output.
	Name string
	// PopulationDevices is the total device population, including devices
	// that never convert (off-device budgeting charges them too).
	PopulationDevices int
	// DurationDays is the length of the simulated trace.
	DurationDays int
	// Advertisers lists the queriers.
	Advertisers []Advertiser
}

// Epochs returns the number of epochs the trace spans at the given epoch
// length.
func (m Meta) Epochs(epochDays int) int {
	if m.DurationDays == 0 {
		return 0
	}
	return int(events.EpochOfDay(m.DurationDays-1, epochDays)) + 1
}

// Source is a bounded-memory event iterator: it yields a dataset's events
// one at a time in nondecreasing (Day, ID) order — the order a production
// ingestion tier would receive them — without ever materializing the full
// event log. Implementations are not safe for concurrent use; a consumer
// owns its source.
type Source interface {
	// Meta returns the dataset's metadata. It is valid before the first
	// Next call.
	Meta() Meta
	// Next returns the next event; ok is false once the stream is
	// drained, after which every call keeps returning ok = false.
	Next() (ev events.Event, ok bool)
}

// Suspender is an optional Source extension for live feeds that can end
// their stream early. After Next has returned ok == false, Suspended
// reports whether the stream ended by suspension — the consumer should
// drain and preserve resumable state rather than close out the trace (the
// streaming service skips its final day flush, since the suspended day's
// remaining events arrive after resume). Trace-backed sources never
// suspend; they simply end.
type Suspender interface {
	Suspended() bool
}

// SliceSource streams a materialized dataset's events in (Day, ID) order —
// the adapter that turns the batch micro/PATCG/Criteo generators into
// streaming inputs. It copies the slice header and sorts the copy, so the
// dataset's own event order is left untouched; memory stays O(dataset),
// which is what the generator-backed sources avoid.
type SliceSource struct {
	meta   Meta
	events []events.Event
	next   int
}

// Stream returns a source over the dataset's events in day order.
func (d *Dataset) Stream() *SliceSource {
	evs := make([]events.Event, len(d.Events))
	copy(evs, d.Events)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Before(evs[j]) })
	return &SliceSource{meta: d.Meta(), events: evs}
}

// Meta implements Source.
func (s *SliceSource) Meta() Meta { return s.meta }

// Next implements Source.
func (s *SliceSource) Next() (events.Event, bool) {
	if s.next >= len(s.events) {
		return events.Event{}, false
	}
	ev := s.events[s.next]
	s.next++
	return ev, true
}

// Meta returns the dataset's metadata view.
func (d *Dataset) Meta() Meta {
	return Meta{
		Name:              d.Name,
		PopulationDevices: d.PopulationDevices,
		DurationDays:      d.DurationDays,
		Advertisers:       d.Advertisers,
	}
}

// Materialize drains a source into an ordinary in-memory Dataset — the
// bridge from any streaming source to the batch engine, which the
// streaming-vs-batch equivalence contract runs both modes against.
//
// It enforces the Source contract as it drains: events must arrive in
// nondecreasing (Day, ID) order, and a violation panics immediately with
// both offending events. A misbehaving source would otherwise corrupt the
// batch planner's cursor silently — batches are chunked in sorted order, so
// a single out-of-place event shifts every later batch boundary. Sources
// that legitimately deliver disordered traffic (the hostile-traffic
// perturbations of internal/scenario) are consumed by the streaming
// service's admission policy, never materialized directly.
func Materialize(s Source) *Dataset {
	m := s.Meta()
	ds := &Dataset{
		Name:              m.Name,
		PopulationDevices: m.PopulationDevices,
		DurationDays:      m.DurationDays,
		Advertisers:       m.Advertisers,
	}
	for {
		ev, ok := s.Next()
		if !ok {
			return ds
		}
		if n := len(ds.Events); n > 0 && ev.Before(ds.Events[n-1]) {
			panic(fmt.Sprintf(
				"dataset: source %q out of order: event %d (day %d) after event %d (day %d)",
				m.Name, ev.ID, ev.Day, ds.Events[n-1].ID, ds.Events[n-1].Day))
		}
		ds.Events = append(ds.Events, ev)
	}
}
