package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/events"
)

// Trace files are the interchange format between the workload generators
// and the serving stack: a JSON header line carrying the dataset's
// metadata, then one JSON event per line in nondecreasing (Day, ID)
// order. The format is line-oriented so a load generator can stream a
// multi-gigabyte trace without materializing it, and self-describing so
// a server can pre-register the trace's queriers from the header alone.

// traceHeader is the first line of a trace file.
type traceHeader struct {
	Name              string       `json:"name"`
	PopulationDevices int          `json:"populationDevices"`
	DurationDays      int          `json:"durationDays"`
	Advertisers       []traceQuery `json:"advertisers"`
}

// traceQuery serializes one advertiser's query parameters.
type traceQuery struct {
	Site           string   `json:"site"`
	Products       []string `json:"products"`
	MaxValue       float64  `json:"maxValue"`
	AvgReportValue float64  `json:"avgReportValue"`
	BatchSize      int      `json:"batchSize"`
}

// traceEvent serializes one event. Zero-valued fields are elided, so
// impression lines omit product/value and conversion lines omit
// publisher/campaign.
type traceEvent struct {
	ID         uint64  `json:"id"`
	Kind       string  `json:"kind"`
	Device     uint64  `json:"device"`
	Day        int     `json:"day"`
	Publisher  string  `json:"publisher,omitempty"`
	Advertiser string  `json:"advertiser"`
	Campaign   string  `json:"campaign,omitempty"`
	Product    string  `json:"product,omitempty"`
	Value      float64 `json:"value,omitempty"`
}

// WriteTrace drains src into w as a trace file. The source's ordering
// contract (nondecreasing (Day, ID)) is enforced as it drains, so a
// written trace is always replayable in admission order.
func WriteTrace(w io.Writer, src Source) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	m := src.Meta()
	hdr := traceHeader{
		Name:              m.Name,
		PopulationDevices: m.PopulationDevices,
		DurationDays:      m.DurationDays,
		Advertisers:       make([]traceQuery, len(m.Advertisers)),
	}
	for i, a := range m.Advertisers {
		hdr.Advertisers[i] = traceQuery{
			Site:           string(a.Site),
			Products:       a.Products,
			MaxValue:       a.MaxValue,
			AvgReportValue: a.AvgReportValue,
			BatchSize:      a.BatchSize,
		}
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("dataset: writing trace header: %w", err)
	}
	var prev events.Event
	n := 0
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if n > 0 && ev.Before(prev) {
			return fmt.Errorf("dataset: source %q out of order at event %d", m.Name, n)
		}
		prev = ev
		n++
		te := traceEvent{
			ID:         uint64(ev.ID),
			Kind:       ev.Kind.String(),
			Device:     uint64(ev.Device),
			Day:        ev.Day,
			Publisher:  string(ev.Publisher),
			Advertiser: string(ev.Advertiser),
			Campaign:   ev.Campaign,
			Product:    ev.Product,
			Value:      ev.Value,
		}
		if err := enc.Encode(te); err != nil {
			return fmt.Errorf("dataset: writing trace event %d: %w", n-1, err)
		}
	}
	return bw.Flush()
}

// WriteTraceFile writes src to a trace file at path.
func WriteTraceFile(path string, src Source) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return WriteTrace(f, src)
}

// ReadTrace parses a trace file into a materialized Dataset, validating
// the event ordering and every event's structural invariants (known kind,
// day within the trace duration). The returned dataset's Stream() feeds
// the in-process engines; its events convert one-to-one to the serving
// layer's wire shape.
func ReadTrace(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("dataset: reading trace header: %w", err)
		}
		return nil, fmt.Errorf("dataset: empty trace")
	}
	var hdr traceHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("dataset: parsing trace header: %w", err)
	}
	if hdr.PopulationDevices <= 0 || hdr.DurationDays <= 0 {
		return nil, fmt.Errorf("dataset: trace header needs a positive population and duration")
	}
	ds := &Dataset{
		Name:              hdr.Name,
		PopulationDevices: hdr.PopulationDevices,
		DurationDays:      hdr.DurationDays,
		Advertisers:       make([]Advertiser, len(hdr.Advertisers)),
	}
	for i, q := range hdr.Advertisers {
		ds.Advertisers[i] = Advertiser{
			Site:           events.Site(q.Site),
			Products:       q.Products,
			MaxValue:       q.MaxValue,
			AvgReportValue: q.AvgReportValue,
			BatchSize:      q.BatchSize,
		}
	}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var te traceEvent
		if err := json.Unmarshal(sc.Bytes(), &te); err != nil {
			return nil, fmt.Errorf("dataset: trace line %d: %w", line, err)
		}
		ev := events.Event{
			ID:         events.EventID(te.ID),
			Device:     events.DeviceID(te.Device),
			Day:        te.Day,
			Publisher:  events.Site(te.Publisher),
			Advertiser: events.Site(te.Advertiser),
			Campaign:   te.Campaign,
			Product:    te.Product,
			Value:      te.Value,
		}
		switch te.Kind {
		case "impression":
			ev.Kind = events.KindImpression
		case "conversion":
			ev.Kind = events.KindConversion
		default:
			return nil, fmt.Errorf("dataset: trace line %d: unknown kind %q", line, te.Kind)
		}
		if ev.Day < 0 || ev.Day >= hdr.DurationDays {
			return nil, fmt.Errorf("dataset: trace line %d: day %d outside [0,%d)",
				line, ev.Day, hdr.DurationDays)
		}
		if n := len(ds.Events); n > 0 && ev.Before(ds.Events[n-1]) {
			return nil, fmt.Errorf("dataset: trace line %d: event out of (day, id) order", line)
		}
		ds.Events = append(ds.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading trace: %w", err)
	}
	return ds, nil
}

// OpenTrace reads a trace file from path.
func OpenTrace(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
