package dataset

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/stats"
)

// PATCGConfig parameterizes the PATCG-like synthetic dataset (§6.3). The
// W3C PATCG dataset has 24M conversions from a single advertiser over 30
// days, 16M users averaging 3.2 impressions, 1.5 conversions per converting
// user, and 10 products with uniform attribute values; this generator keeps
// those per-user rates and the single-advertiser, 10-product structure at a
// laptop-scale population.
type PATCGConfig struct {
	// Seed makes the dataset reproducible.
	Seed uint64
	// Users is the device population (16M in the paper).
	Users int
	// Products is the number of products (10).
	Products int
	// QueriesPerProduct is how many times each product is queried
	// (8 in the paper, for 80 queries).
	QueriesPerProduct int
	// DurationDays is the trace length (the PATCG dataset spans 30
	// days, which concentrates attribution windows and drives the
	// filter contention the paper measures).
	DurationDays int
	// MeanImpressions is the mean impressions per user over the trace
	// (3.2 in the paper).
	MeanImpressions float64
	// MeanExtraConversions: a converting user has 1 + Poisson(this) many
	// conversions (0.5 reproduces the paper's 1.5 average).
	MeanExtraConversions float64
	// MaxValue caps conversion values (uniform 1..MaxValue).
	MaxValue int
	// WindowDays is the attribution window used to estimate c̃.
	WindowDays int
}

// DefaultPATCGConfig returns the scaled-down default used by the Fig. 5
// experiments.
func DefaultPATCGConfig() PATCGConfig {
	return PATCGConfig{
		Seed:                 2,
		Users:                40000,
		Products:             10,
		QueriesPerProduct:    8,
		DurationDays:         30,
		MeanImpressions:      3.2,
		MeanExtraConversions: 0.5,
		MaxValue:             10,
		WindowDays:           30,
	}
}

func (c PATCGConfig) validate() error {
	switch {
	case c.Users <= 0 || c.Products <= 0 || c.QueriesPerProduct <= 0:
		return fmt.Errorf("dataset: patcg requires positive users/products/queries")
	case c.DurationDays <= 0 || c.WindowDays <= 0:
		return fmt.Errorf("dataset: patcg requires positive duration and window")
	case c.MeanImpressions < 0 || c.MeanExtraConversions < 0:
		return fmt.Errorf("dataset: patcg requires non-negative means")
	case c.MaxValue <= 0:
		return fmt.Errorf("dataset: non-positive max value")
	}
	return nil
}

// PATCG generates the PATCG-like dataset. Every user converts 1 + Poisson(µ)
// times for uniformly chosen products on uniformly chosen days, and sees
// Poisson(MeanImpressions) impressions across the trace whose campaigns are
// uniform over the product space. The advertiser's batch size is derived so
// each product is queried exactly QueriesPerProduct times, mirroring the
// paper's 80-query schedule.
func PATCG(cfg PATCGConfig) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := stats.Stream(cfg.Seed, "patcg")
	ds := &Dataset{
		Name:              "patcg",
		PopulationDevices: cfg.Users,
		DurationDays:      cfg.DurationDays,
	}
	var nextID events.EventID
	newID := func() events.EventID { nextID++; return nextID }

	const site = events.Site("advertiser.example")
	perProduct := make([]int, cfg.Products)
	for u := 0; u < cfg.Users; u++ {
		dev := events.DeviceID(u + 1)
		nConv := 1 + rng.Poisson(cfg.MeanExtraConversions)
		for c := 0; c < nConv; c++ {
			p := rng.Intn(cfg.Products)
			perProduct[p]++
			ds.Events = append(ds.Events, events.Event{
				ID:         newID(),
				Kind:       events.KindConversion,
				Device:     dev,
				Day:        rng.Intn(cfg.DurationDays),
				Advertiser: site,
				Product:    productKey(p),
				Value:      float64(1 + rng.Intn(cfg.MaxValue)),
			})
		}
		for n := rng.Poisson(cfg.MeanImpressions); n > 0; n-- {
			ds.Events = append(ds.Events, events.Event{
				ID:         newID(),
				Kind:       events.KindImpression,
				Device:     dev,
				Day:        rng.Intn(cfg.DurationDays),
				Publisher:  "publisher.example",
				Advertiser: site,
				Campaign:   productKey(rng.Intn(cfg.Products)),
			})
		}
	}

	// Batch size: smallest per-product conversion count divided by the
	// query count, so every product completes its full query schedule.
	minCount := perProduct[0]
	for _, c := range perProduct[1:] {
		if c < minCount {
			minCount = c
		}
	}
	batch := minCount / cfg.QueriesPerProduct
	if batch < 1 {
		batch = 1
	}

	products := make([]string, cfg.Products)
	for p := range products {
		products[p] = productKey(p)
	}
	rate := attributionRate(ds.Events, cfg.WindowDays)
	avgValue := float64(1+cfg.MaxValue) / 2
	cTilde := rate * avgValue
	if cTilde <= 0 {
		cTilde = avgValue / float64(batch)
	}
	ds.Advertisers = []Advertiser{{
		Site:           site,
		Products:       products,
		MaxValue:       float64(cfg.MaxValue),
		AvgReportValue: cTilde,
		BatchSize:      batch,
	}}
	return ds, nil
}
