package dataset_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/figures"
)

// TestTraceRoundTrip writes a cataloged workload as a trace file and
// reads it back: metadata, querier parameters and the (Day, ID)-ordered
// event sequence must survive exactly, because the serving stack treats
// the trace as the ground truth for loopback equivalence.
func TestTraceRoundTrip(t *testing.T) {
	w, err := figures.ByName("cookie-monster")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := w.Config()
	if err != nil {
		t.Fatal(err)
	}
	ds := cfg.Dataset

	path := filepath.Join(t.TempDir(), "micro.trace")
	if err := dataset.WriteTraceFile(path, ds.Stream()); err != nil {
		t.Fatalf("WriteTraceFile: %v", err)
	}
	got, err := dataset.OpenTrace(path)
	if err != nil {
		t.Fatalf("OpenTrace: %v", err)
	}

	if got.Name != ds.Name || got.PopulationDevices != ds.PopulationDevices ||
		got.DurationDays != ds.DurationDays {
		t.Fatalf("metadata mismatch: got %s/%d/%d want %s/%d/%d",
			got.Name, got.PopulationDevices, got.DurationDays,
			ds.Name, ds.PopulationDevices, ds.DurationDays)
	}
	if len(got.Advertisers) != len(ds.Advertisers) {
		t.Fatalf("%d advertisers, want %d", len(got.Advertisers), len(ds.Advertisers))
	}
	for i, a := range ds.Advertisers {
		g := got.Advertisers[i]
		if g.Site != a.Site || g.MaxValue != a.MaxValue ||
			g.AvgReportValue != a.AvgReportValue || g.BatchSize != a.BatchSize ||
			len(g.Products) != len(a.Products) {
			t.Fatalf("advertiser %d mismatch: %+v vs %+v", i, g, a)
		}
	}
	// The trace is written in stream order; compare against the same.
	want := dataset.Materialize(ds.Stream())
	if len(got.Events) != len(want.Events) {
		t.Fatalf("%d events, want %d", len(got.Events), len(want.Events))
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, got.Events[i], want.Events[i])
		}
	}
}

// TestReadTraceRejectsMalformed covers the trace parser's failure modes:
// it is fed from disk, but serves the same admission path as the network,
// so it must reject rather than mis-parse.
func TestReadTraceRejectsMalformed(t *testing.T) {
	header := `{"name":"x","populationDevices":10,"durationDays":3,"advertisers":[]}`
	for name, text := range map[string]string{
		"empty":            "",
		"bad-header":       `{"name":`,
		"zero-population":  `{"name":"x","populationDevices":0,"durationDays":3}`,
		"bad-event-json":   header + "\n" + `{"id":`,
		"unknown-kind":     header + "\n" + `{"id":1,"kind":"click","device":1,"day":0,"advertiser":"a"}`,
		"day-out-of-range": header + "\n" + `{"id":1,"kind":"impression","device":1,"day":3,"advertiser":"a"}`,
		"events-out-of-order": header + "\n" +
			`{"id":2,"kind":"impression","device":1,"day":1,"advertiser":"a"}` + "\n" +
			`{"id":1,"kind":"impression","device":1,"day":0,"advertiser":"a"}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := dataset.ReadTrace(strings.NewReader(text)); err == nil {
				t.Fatalf("malformed trace accepted")
			}
		})
	}
}

// TestWriteTraceRejectsDisorder: a source violating its ordering contract
// must fail the export, not produce a trace that silently breaks replay.
func TestWriteTraceRejectsDisorder(t *testing.T) {
	var buf bytes.Buffer
	if err := dataset.WriteTrace(&buf, &disorderedSource{}); err == nil {
		t.Fatalf("disordered source exported without error")
	}
}

type disorderedSource struct{ n int }

func (s *disorderedSource) Meta() dataset.Meta {
	return dataset.Meta{Name: "bad", PopulationDevices: 1, DurationDays: 5}
}

func (s *disorderedSource) Next() (ev events.Event, ok bool) {
	s.n++
	switch s.n {
	case 1:
		return events.Event{ID: 2, Day: 3, Device: 1}, true
	case 2:
		return events.Event{ID: 1, Day: 1, Device: 1}, true
	}
	return events.Event{}, false
}
