package dataset

import (
	"fmt"
	"sort"

	"repro/internal/events"
	"repro/internal/stats"
)

// MicroConfig parameterizes the §6.2 microbenchmark. The two knobs are the
// paper's: Knob1 is the fraction of the device population that participates
// in each query (lower ⇒ a larger population sharing the same number of
// conversions ⇒ finer-grained on-device accounting pays off more), and Knob2
// is the number of impressions per user per day (lower ⇒ more epochs with no
// relevant impressions ⇒ Cookie Monster's zero-loss optimization fires more).
type MicroConfig struct {
	// Seed makes the dataset reproducible.
	Seed uint64
	// Products is the number of products (10 in the paper).
	Products int
	// BatchSize is B, conversions per query (2,000 in the paper; the
	// default here is scaled down with the population).
	BatchSize int
	// QueriesPerProduct is how many times each product is measured
	// (2 in the paper's default, 40 in the §6.5 bias workload).
	QueriesPerProduct int
	// DurationDays is the trace length (120 in the paper; 60 in §6.5).
	DurationDays int
	// Knob1 is the user participation rate per query in (0, 1].
	Knob1 float64
	// Knob2 is the expected impressions per user per day.
	Knob2 float64
	// MaxValue is the largest conversion value (values are uniform in
	// 1..MaxValue).
	MaxValue int
	// WindowDays is the attribution window used to estimate c̃.
	WindowDays int
}

// DefaultMicroConfig returns the scaled-down default: same knob semantics
// and batch structure as the paper, with B = 500 so the full knob sweep runs
// on a laptop.
func DefaultMicroConfig() MicroConfig {
	return MicroConfig{
		Seed:              1,
		Products:          10,
		BatchSize:         500,
		QueriesPerProduct: 2,
		DurationDays:      120,
		Knob1:             0.1,
		Knob2:             0.1,
		MaxValue:          10,
		WindowDays:        30,
	}
}

func (c MicroConfig) validate() error {
	switch {
	case c.Products <= 0 || c.BatchSize <= 0 || c.QueriesPerProduct <= 0:
		return fmt.Errorf("dataset: micro requires positive products/batch/queries")
	case c.DurationDays <= 0 || c.WindowDays <= 0:
		return fmt.Errorf("dataset: micro requires positive duration and window")
	case c.Knob1 <= 0 || c.Knob1 > 1:
		return fmt.Errorf("dataset: knob1 %v outside (0, 1]", c.Knob1)
	case c.Knob2 < 0:
		return fmt.Errorf("dataset: negative knob2 %v", c.Knob2)
	case c.MaxValue <= 0:
		return fmt.Errorf("dataset: non-positive max value %d", c.MaxValue)
	}
	return nil
}

// Micro generates the microbenchmark dataset. Query batches are laid out in
// time order (batch i's conversions occupy the i-th slice of the trace,
// cycling through products), and each batch's conversions go to BatchSize
// *distinct* devices sampled from a population of BatchSize/Knob1 devices —
// so with Knob1 = 1 every device participates in every query, and with
// Knob1 = 0.001 the same conversions spread over a 1000× larger population,
// exactly the paper's construction. Impressions are generated only for
// devices that ever convert; silent devices count toward PopulationDevices
// (they never generate reports, so their event lists are irrelevant — but
// off-device budgeting still charges them, which Fig. 4's averages expose).
func Micro(cfg MicroConfig) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := stats.Stream(cfg.Seed, "micro")
	population := int(float64(cfg.BatchSize)/cfg.Knob1 + 0.5)
	if population < cfg.BatchSize {
		population = cfg.BatchSize
	}
	totalBatches := cfg.Products * cfg.QueriesPerProduct
	batchSpan := cfg.DurationDays / totalBatches
	if batchSpan == 0 {
		batchSpan = 1
	}

	ds := &Dataset{
		Name:              "micro",
		PopulationDevices: population,
		DurationDays:      cfg.DurationDays,
	}
	var nextID events.EventID
	newID := func() events.EventID { nextID++; return nextID }

	// Sample B distinct devices per batch with a partial Fisher–Yates
	// over a reusable index slice.
	pool := make([]int, population)
	for i := range pool {
		pool[i] = i
	}
	converted := make(map[events.DeviceID]bool)

	const site = events.Site("nike.example")
	for batch := 0; batch < totalBatches; batch++ {
		product := productKey(batch % cfg.Products)
		dayLo := batch * batchSpan
		for i := 0; i < cfg.BatchSize; i++ {
			j := i + rng.Intn(population-i)
			pool[i], pool[j] = pool[j], pool[i]
			dev := events.DeviceID(pool[i] + 1)
			converted[dev] = true
			day := dayLo + rng.Intn(batchSpan)
			if day >= cfg.DurationDays {
				day = cfg.DurationDays - 1
			}
			ds.Events = append(ds.Events, events.Event{
				ID:         newID(),
				Kind:       events.KindConversion,
				Device:     dev,
				Day:        day,
				Advertiser: site,
				Product:    product,
				Value:      float64(1 + rng.Intn(cfg.MaxValue)),
			})
		}
	}

	// Impressions for converting devices only: Poisson(Knob2) per day,
	// campaign uniform over the product space. Devices are visited in
	// sorted order so generation is deterministic.
	devs := make([]events.DeviceID, 0, len(converted))
	for dev := range converted {
		devs = append(devs, dev)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	for _, dev := range devs {
		for day := 0; day < cfg.DurationDays; day++ {
			for n := rng.Poisson(cfg.Knob2); n > 0; n-- {
				ds.Events = append(ds.Events, events.Event{
					ID:         newID(),
					Kind:       events.KindImpression,
					Device:     dev,
					Day:        day,
					Publisher:  "news.example",
					Advertiser: site,
					Campaign:   productKey(rng.Intn(cfg.Products)),
				})
			}
		}
	}

	products := make([]string, cfg.Products)
	for p := range products {
		products[p] = productKey(p)
	}
	rate := attributionRate(ds.Events, cfg.WindowDays)
	avgValue := float64(1+cfg.MaxValue) / 2
	cTilde := rate * avgValue
	if cTilde <= 0 {
		// No attribution at all (e.g. Knob2 = 0): fall back to a floor
		// so calibration stays defined; the resulting ε is large and
		// budget exhausts quickly, which is the honest behaviour.
		cTilde = avgValue / float64(cfg.BatchSize)
	}
	ds.Advertisers = []Advertiser{{
		Site:           site,
		Products:       products,
		MaxValue:       float64(cfg.MaxValue),
		AvgReportValue: cTilde,
		BatchSize:      cfg.BatchSize,
	}}
	return ds, nil
}
