// Package dataset generates the three workloads of the paper's evaluation
// (§6.1): the controlled microbenchmark with its two knobs, a PATCG-like
// synthetic advertising dataset, and a Criteo-like multi-advertiser dataset
// with optional impression augmentation (Criteo++).
//
// All generators are deterministic given a seed and emit day-stamped raw
// events; Build partitions them into device-epoch records for a chosen epoch
// length, so the same dataset can be re-used across the epoch-length sweeps
// of Fig. 5c and 6c.
//
// Scaling note (DESIGN.md §3): populations are scaled down from the paper's
// (which run to 16M users) while preserving the rates that drive the
// results — per-query participation, impressions per user-day, attribution
// rate, conversions per user, and advertiser size skew. Budget dynamics
// depend on the ratio of calibrated query ε to the per-epoch capacity ε^G,
// which the workload keeps in the paper's regime.
package dataset

import (
	"fmt"

	"repro/internal/events"
)

// Advertiser describes one querier in a dataset: its site, the products it
// measures, and the calibration inputs its queries will use.
type Advertiser struct {
	// Site is the advertiser's origin (e.g. "nike.com").
	Site events.Site
	// Products are the product keys the advertiser queries, one query
	// stream per product. Impression campaigns use the same keys.
	Products []string
	// MaxValue is the largest possible conversion value — the query
	// global sensitivity Δ.
	MaxValue float64
	// AvgReportValue is the advertiser's rough estimate c̃ of the average
	// report value (attribution rate × average conversion value), used by
	// the ε-calibration formula of §6.1.
	AvgReportValue float64
	// BatchSize is B, the number of reports the advertiser accumulates
	// before running a summation query.
	BatchSize int
}

// Dataset is a generated workload: raw events plus the metadata the workload
// driver needs to enact the §2.1 scenario.
type Dataset struct {
	// Name identifies the dataset in experiment output.
	Name string
	// Events holds every impression and conversion, day-stamped.
	Events []events.Event
	// PopulationDevices is the total device population, including
	// devices that never convert (they matter for the budget-consumption
	// denominators of Fig. 4: off-device budgeting charges them too).
	PopulationDevices int
	// DurationDays is the length of the simulated trace.
	DurationDays int
	// Advertisers lists the queriers.
	Advertisers []Advertiser
}

// Build partitions the dataset's events into a device-epoch database for the
// given epoch length in days. The database is compiled frozen in one shot
// (events.NewFrozen): events land directly in the columnar arena with no
// intermediate mutable store, and the read path is safe for the workload
// engine's concurrent report generation.
func (d *Dataset) Build(epochDays int) *events.Database {
	return events.NewFrozen(epochDays, d.Events)
}

// BuildInto is Build compiling the frozen columns into sc's reusable arenas
// (events.NewFrozenInto): a caller that builds many databases — epoch-length
// sweeps, repeated runs over regenerated datasets — pays the arena
// allocations once instead of per build. The returned database aliases the
// scratch and is valid only until the next build with the same scratch; a
// nil scratch is plain Build.
func (d *Dataset) BuildInto(sc *events.FreezeScratch, epochDays int) *events.Database {
	return events.NewFrozenInto(sc, epochDays, d.Events)
}

// Epochs returns the number of epochs the trace spans at the given epoch
// length.
func (d *Dataset) Epochs(epochDays int) int {
	if d.DurationDays == 0 {
		return 0
	}
	return int(events.EpochOfDay(d.DurationDays-1, epochDays)) + 1
}

// Conversions counts conversion events.
func (d *Dataset) Conversions() int {
	n := 0
	for _, ev := range d.Events {
		if ev.IsConversion() {
			n++
		}
	}
	return n
}

// Impressions counts impression events.
func (d *Dataset) Impressions() int {
	n := 0
	for _, ev := range d.Events {
		if ev.IsImpression() {
			n++
		}
	}
	return n
}

// String summarizes the dataset.
func (d *Dataset) String() string {
	return fmt.Sprintf("%s: %d devices, %d days, %d impressions, %d conversions, %d advertisers",
		d.Name, d.PopulationDevices, d.DurationDays, d.Impressions(), d.Conversions(), len(d.Advertisers))
}

// productKey names product p of an advertiser; campaigns reuse the key so
// the per-product selectors match.
func productKey(p int) string { return fmt.Sprintf("product-%d", p) }

// attributionRate measures the fraction of conversions that have at least
// one relevant impression (same device, same product key) within windowDays
// days before the conversion. Generators use it to derive the advertiser's
// c̃ estimate, mirroring a querier that knows its historical match rate.
func attributionRate(evs []events.Event, windowDays int) float64 {
	type devProduct struct {
		d events.DeviceID
		p string
	}
	impDays := make(map[devProduct][]int)
	for _, ev := range evs {
		if ev.IsImpression() {
			key := devProduct{ev.Device, ev.Campaign}
			impDays[key] = append(impDays[key], ev.Day)
		}
	}
	conversions, attributed := 0, 0
	for _, ev := range evs {
		if !ev.IsConversion() {
			continue
		}
		conversions++
		for _, day := range impDays[devProduct{ev.Device, ev.Product}] {
			if day <= ev.Day && day > ev.Day-windowDays {
				attributed++
				break
			}
		}
	}
	if conversions == 0 {
		return 0
	}
	return float64(attributed) / float64(conversions)
}
