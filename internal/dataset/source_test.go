package dataset

import (
	"testing"

	"repro/internal/events"
)

// drain collects every event from a source, checking the day-order
// contract as it goes.
func drain(t *testing.T, s Source) []events.Event {
	t.Helper()
	var out []events.Event
	for {
		ev, ok := s.Next()
		if !ok {
			// A drained source keeps reporting done.
			if _, again := s.Next(); again {
				t.Fatal("source yielded an event after reporting done")
			}
			return out
		}
		if n := len(out); n > 0 && ev.Before(out[n-1]) {
			t.Fatalf("event %d (day %d, id %d) out of order after (day %d, id %d)",
				n, ev.Day, ev.ID, out[n-1].Day, out[n-1].ID)
		}
		out = append(out, ev)
	}
}

func TestSliceSourceStreamsInDayOrder(t *testing.T) {
	ds, err := Micro(DefaultMicroConfig())
	if err != nil {
		t.Fatal(err)
	}
	evs := drain(t, ds.Stream())
	if len(evs) != len(ds.Events) {
		t.Fatalf("streamed %d events, dataset has %d", len(evs), len(ds.Events))
	}
	// The dataset's own order must be untouched (micro generates
	// conversions before impressions, not in day order).
	if m := Materialize(ds.Stream()); m.Conversions() != ds.Conversions() ||
		m.Impressions() != ds.Impressions() {
		t.Fatal("materialized stream lost events")
	}
	meta := ds.Stream().Meta()
	if meta.PopulationDevices != ds.PopulationDevices || meta.DurationDays != ds.DurationDays ||
		len(meta.Advertisers) != len(ds.Advertisers) {
		t.Fatalf("meta %+v does not match dataset", meta)
	}
	if meta.Epochs(7) != ds.Epochs(7) {
		t.Fatalf("meta epochs %d != dataset epochs %d", meta.Epochs(7), ds.Epochs(7))
	}
}

func TestSliceSourceCoversCriteo(t *testing.T) {
	cfg := DefaultCriteoConfig()
	cfg.Advertisers = 20
	cfg.Users = 2000
	cfg.TotalConversions = 4000
	ds, err := Criteo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	evs := drain(t, ds.Stream())
	if len(evs) != len(ds.Events) {
		t.Fatalf("streamed %d events, dataset has %d", len(evs), len(ds.Events))
	}
}

func TestSyntheticSourceDeterministicAndDayOrdered(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Population = 2000
	cfg.BatchSize = 200
	a, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	evA, evB := drain(t, a), drain(t, b)
	if len(evA) == 0 {
		t.Fatal("synthetic source yielded no events")
	}
	if len(evA) != len(evB) {
		t.Fatalf("replayed stream has %d events, want %d", len(evB), len(evA))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("event %d differs between identically-seeded sources:\n  %+v\n  %+v",
				i, evA[i], evB[i])
		}
	}

	// Exactly Products × QueriesPerProduct full batches of conversions,
	// each over distinct devices.
	ds := Materialize(func() Source { s, _ := NewSynthetic(cfg); return s }())
	wantConvs := cfg.Products * cfg.QueriesPerProduct * cfg.BatchSize
	if got := ds.Conversions(); got != wantConvs {
		t.Fatalf("conversions = %d, want %d", got, wantConvs)
	}
	perBatchDevices := make(map[events.DeviceID]int)
	batch := 0
	seenInBatch := 0
	for _, ev := range ds.Events {
		if !ev.IsConversion() {
			continue
		}
		if n := perBatchDevices[ev.Device]; n == batch+1 {
			t.Fatalf("device %d converted twice in batch %d", ev.Device, batch)
		}
		perBatchDevices[ev.Device] = batch + 1
		if seenInBatch++; seenInBatch == cfg.BatchSize {
			seenInBatch = 0
			batch++
		}
	}
}

func TestSyntheticSourceValidates(t *testing.T) {
	bad := DefaultSyntheticConfig()
	bad.BatchSize = bad.Population + 1
	if _, err := NewSynthetic(bad); err == nil {
		t.Fatal("batch larger than population accepted")
	}
	bad = DefaultSyntheticConfig()
	bad.DurationDays = bad.Products*bad.QueriesPerProduct - 1
	if _, err := NewSynthetic(bad); err == nil {
		t.Fatal("more batches than days accepted")
	}
}
