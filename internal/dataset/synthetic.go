package dataset

import (
	"fmt"
	"math"

	"repro/internal/events"
	"repro/internal/stats"
)

// SyntheticConfig parameterizes the generator-backed streaming source: a
// micro-style single-advertiser workload (time-ordered query batches cycling
// through products, Poisson impression traffic) generated one day at a time,
// so a trace over millions of devices streams with peak memory proportional
// to a single day's events plus one open batch — never the full trace.
type SyntheticConfig struct {
	// Seed makes the stream reproducible: two sources with the same
	// config yield identical event sequences.
	Seed uint64
	// Population is the device population (millions in production; the
	// generator's memory does not grow with it beyond one batch's device
	// set).
	Population int
	// Products is the number of products (one query stream each).
	Products int
	// BatchSize is B, conversions per query.
	BatchSize int
	// QueriesPerProduct is how many batches each product accumulates.
	QueriesPerProduct int
	// DurationDays is the trace length.
	DurationDays int
	// ImpressionsPerDay is the expected impressions per device per day
	// (the micro benchmark's knob2), spread uniformly over the
	// population.
	ImpressionsPerDay float64
	// MaxValue caps conversion values (uniform 1..MaxValue).
	MaxValue int
	// WindowDays is the attribution window, used for the advertiser's c̃
	// estimate.
	WindowDays int
}

// DefaultSyntheticConfig mirrors the default microbenchmark at the same
// scale; raise Population and DurationDays freely — the source's memory
// stays day-bounded.
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		Seed:              1,
		Population:        5000,
		Products:          10,
		BatchSize:         500,
		QueriesPerProduct: 2,
		DurationDays:      120,
		ImpressionsPerDay: 0.1,
		MaxValue:          10,
		WindowDays:        30,
	}
}

func (c SyntheticConfig) validate() error {
	totalBatches := c.Products * c.QueriesPerProduct
	switch {
	case c.Population <= 0 || c.Products <= 0 || c.BatchSize <= 0 || c.QueriesPerProduct <= 0:
		return fmt.Errorf("dataset: synthetic requires positive population/products/batch/queries")
	case c.DurationDays <= 0 || c.WindowDays <= 0:
		return fmt.Errorf("dataset: synthetic requires positive duration and window")
	case c.ImpressionsPerDay < 0:
		return fmt.Errorf("dataset: negative impressions per day")
	case c.MaxValue <= 0:
		return fmt.Errorf("dataset: non-positive max value %d", c.MaxValue)
	case c.BatchSize > c.Population:
		return fmt.Errorf("dataset: batch size %d exceeds population %d", c.BatchSize, c.Population)
	case totalBatches > c.DurationDays:
		return fmt.Errorf("dataset: %d batches cannot fill within %d days", totalBatches, c.DurationDays)
	}
	return nil
}

// SyntheticSource streams the synthetic workload day by day. It implements
// Source; two instances with the same config produce identical streams, so
// the batch specification (Materialize + workload.Execute) and the streaming
// service can be run against the same scenario and compared bit-for-bit.
type SyntheticSource struct {
	cfg  SyntheticConfig
	meta Meta
	rng  *stats.RNG

	site      events.Site
	batchSpan int
	day       int
	nextID    events.EventID
	// batchUsed tracks the open batch's sampled devices — the only
	// population-dependent state, bounded by one batch.
	batchUsed map[int]struct{}
	lastBatch int

	buf []events.Event // current day's remaining events
	pos int
}

// NewSynthetic returns a generator-backed streaming source for cfg.
func NewSynthetic(cfg SyntheticConfig) (*SyntheticSource, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	const site = events.Site("synthetic.example")
	products := make([]string, cfg.Products)
	for p := range products {
		products[p] = productKey(p)
	}
	// The advertiser's c̃ estimate is analytic: a conversion is
	// attributable when the device saw at least one impression for the
	// product within the window, which under Poisson traffic happens with
	// probability 1 − exp(−λ·W/K). No materialization needed — and both
	// modes see the identical calibration input.
	avgValue := float64(1+cfg.MaxValue) / 2
	rate := 1 - math.Exp(-cfg.ImpressionsPerDay*float64(cfg.WindowDays)/float64(cfg.Products))
	cTilde := rate * avgValue
	if cTilde <= 0 {
		cTilde = avgValue / float64(cfg.BatchSize)
	}
	totalBatches := cfg.Products * cfg.QueriesPerProduct
	span := cfg.DurationDays / totalBatches
	if span == 0 {
		span = 1
	}
	return &SyntheticSource{
		cfg: cfg,
		meta: Meta{
			Name:              "synthetic",
			PopulationDevices: cfg.Population,
			DurationDays:      cfg.DurationDays,
			Advertisers: []Advertiser{{
				Site:           site,
				Products:       products,
				MaxValue:       float64(cfg.MaxValue),
				AvgReportValue: cTilde,
				BatchSize:      cfg.BatchSize,
			}},
		},
		rng:       stats.Stream(cfg.Seed, "synthetic"),
		site:      site,
		batchSpan: span,
		lastBatch: -1,
		batchUsed: make(map[int]struct{}, cfg.BatchSize),
	}, nil
}

// Meta implements Source.
func (s *SyntheticSource) Meta() Meta { return s.meta }

// Next implements Source.
func (s *SyntheticSource) Next() (events.Event, bool) {
	for s.pos >= len(s.buf) {
		if s.day >= s.cfg.DurationDays {
			return events.Event{}, false
		}
		s.generateDay(s.day)
		s.day++
	}
	ev := s.buf[s.pos]
	s.pos++
	return ev, true
}

// sampleBatchDevice draws a device not yet used by the open batch.
// Rejection sampling is O(1) expected while the batch covers less than half
// the population; beyond that the loop still terminates (validate caps B at
// the population) but a dense batch costs more draws.
func (s *SyntheticSource) sampleBatchDevice() events.DeviceID {
	for {
		d := s.rng.Intn(s.cfg.Population)
		if _, dup := s.batchUsed[d]; !dup {
			s.batchUsed[d] = struct{}{}
			return events.DeviceID(d + 1)
		}
	}
}

// generateDay fills s.buf with day d's events: the day's share of the
// current batch's conversions, then Poisson impression traffic across the
// population.
func (s *SyntheticSource) generateDay(d int) {
	s.buf = s.buf[:0]
	s.pos = 0
	totalBatches := s.cfg.Products * s.cfg.QueriesPerProduct

	if bi := d / s.batchSpan; bi < totalBatches {
		if bi != s.lastBatch {
			s.lastBatch = bi
			clear(s.batchUsed)
		}
		// Spread the batch's B conversions evenly across its span.
		b, span := s.cfg.BatchSize, s.batchSpan
		k := d % span
		count := b / span
		if k < b%span {
			count++
		}
		product := productKey(bi % s.cfg.Products)
		for i := 0; i < count; i++ {
			s.nextID++
			s.buf = append(s.buf, events.Event{
				ID:         s.nextID,
				Kind:       events.KindConversion,
				Device:     s.sampleBatchDevice(),
				Day:        d,
				Advertiser: s.site,
				Product:    product,
				Value:      float64(1 + s.rng.Intn(s.cfg.MaxValue)),
			})
		}
	}

	// Impression traffic: one Poisson draw for the population total, then
	// uniform device/campaign placement — O(events), never O(population).
	n := s.rng.Poisson(float64(s.cfg.Population) * s.cfg.ImpressionsPerDay)
	for i := 0; i < n; i++ {
		s.nextID++
		s.buf = append(s.buf, events.Event{
			ID:         s.nextID,
			Kind:       events.KindImpression,
			Device:     events.DeviceID(s.rng.Intn(s.cfg.Population) + 1),
			Day:        d,
			Publisher:  "pub.example",
			Advertiser: s.site,
			Campaign:   productKey(s.rng.Intn(s.cfg.Products)),
		})
	}
}
