// Package figures catalogs the test-scale stand-ins for the paper's figure
// workloads — the scenarios the streaming-vs-batch equivalence suite, the
// golden-output fixtures (testdata/golden/), and the crash-recovery harness
// (internal/checkpoint) all exercise. Keeping the catalog in one place means
// a committed golden digest names exactly the same scenario everywhere, and
// the batch reference for a scenario is computed once per test binary.
package figures

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// Workload is one cataloged scenario: a name (the key into
// testdata/golden/digests.json) and its batch-engine configuration. Config
// returns a fresh Config sharing a lazily built, cached dataset — datasets
// are read-only during execution, so runs may share one.
type Workload struct {
	Name   string
	Config func() (workload.Config, error)
}

// All returns the catalog. Scenario coverage mirrors the paper's evaluation
// matrix at test scale: the three systems on the §6.2 microbenchmark, bias
// measurement (§6.5), an ablation policy override, a truncated query
// schedule, the multi-advertiser Criteo workload for every system, and the
// generator-backed synthetic trace.
func All() []Workload {
	biasSpec := &core.BiasSpec{LastTouch: true}

	microCfg := func(mutate func(*workload.Config)) func() (workload.Config, error) {
		return func() (workload.Config, error) {
			ds, err := micro()
			if err != nil {
				return workload.Config{}, err
			}
			cfg := workload.Config{Dataset: ds, System: workload.CookieMonster, EpsilonG: 2, Seed: 7}
			if mutate != nil {
				mutate(&cfg)
			}
			return cfg, nil
		}
	}
	criteoCfg := func(system workload.System) func() (workload.Config, error) {
		return func() (workload.Config, error) {
			ds, err := criteo()
			if err != nil {
				return workload.Config{}, err
			}
			return workload.Config{Dataset: ds, System: system, EpsilonG: 2, Seed: 11}, nil
		}
	}

	return []Workload{
		{"cookie-monster", microCfg(nil)},
		{"ara-like", microCfg(func(c *workload.Config) { c.System = workload.ARALike })},
		{"ipa-like", microCfg(func(c *workload.Config) { c.System = workload.IPALike })},
		{"cm-bias", microCfg(func(c *workload.Config) { c.Bias = biasSpec })},
		{"ablation-policy", microCfg(func(c *workload.Config) {
			c.PolicyOverride = core.ZeroLossOnlyPolicy{}
		})},
		{"capped-queries", microCfg(func(c *workload.Config) { c.MaxQueriesPerProduct = 1 })},
		{"criteo-cm", criteoCfg(workload.CookieMonster)},
		{"criteo-ara", criteoCfg(workload.ARALike)},
		{"criteo-ipa", criteoCfg(workload.IPALike)},
		{"synthetic-cm", func() (workload.Config, error) {
			ds, err := synth()
			if err != nil {
				return workload.Config{}, err
			}
			return workload.Config{Dataset: ds, System: workload.CookieMonster, EpsilonG: 2, Seed: 3}, nil
		}},
	}
}

// ByName returns the cataloged workload with the given name.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("figures: unknown workload %q", name)
}

// batchRefs caches each workload's batch reference, computed once per
// process.
var batchRefs sync.Map

type batchRefEntry struct {
	once sync.Once
	run  *workload.Run
	err  error
}

// BatchRef returns the named workload's uninterrupted batch-engine
// reference, computed at parallelism 1 once per process — the shared oracle
// behind the streaming equivalence suite, the golden fixtures
// (testdata/golden/), and the crash-recovery harness (internal/checkpoint).
func BatchRef(name string) (*workload.Run, error) {
	v, _ := batchRefs.LoadOrStore(name, &batchRefEntry{})
	e := v.(*batchRefEntry)
	e.once.Do(func() {
		w, err := ByName(name)
		if err != nil {
			e.err = err
			return
		}
		cfg, err := w.Config()
		if err != nil {
			e.err = err
			return
		}
		cfg.Parallelism = 1
		e.run, e.err = workload.Execute(cfg)
	})
	return e.run, e.err
}

// GoldenDigestsPath locates the committed per-workload digest file
// (testdata/golden/digests.json) by walking up from the working directory —
// test binaries run in their package directory, at varying depths below the
// module root.
func GoldenDigestsPath() (string, error) {
	rel := filepath.Join("testdata", "golden", "digests.json")
	dir := "."
	for i := 0; i < 8; i++ {
		p := filepath.Join(dir, rel)
		if _, err := os.Stat(p); err == nil {
			return p, nil
		}
		dir = filepath.Join(dir, "..")
	}
	return "", fmt.Errorf("figures: %s not found above the working directory", rel)
}

// The datasets are built lazily, once per process, and shared by every
// scenario (and every run) that uses them.
var (
	// micro is the equivalence suite's reduced §6.2 microbenchmark.
	micro = cache(func() (*dataset.Dataset, error) {
		cfg := dataset.DefaultMicroConfig()
		cfg.BatchSize = 100
		cfg.Knob1 = 1.0
		cfg.Knob2 = 0.5
		return dataset.Micro(cfg)
	})
	// criteo is the reduced multi-advertiser Criteo workload.
	criteo = cache(func() (*dataset.Dataset, error) {
		cfg := dataset.DefaultCriteoConfig()
		cfg.Advertisers = 30
		cfg.Users = 3000
		cfg.TotalConversions = 12000
		cfg.MinBatch = 150
		return dataset.Criteo(cfg)
	})
	// synth is the generator-backed synthetic trace, materialized.
	synth = cache(func() (*dataset.Dataset, error) {
		cfg := dataset.DefaultSyntheticConfig()
		cfg.Population = 2000
		cfg.BatchSize = 200
		cfg.ImpressionsPerDay = 0.3
		src, err := dataset.NewSynthetic(cfg)
		if err != nil {
			return nil, err
		}
		return dataset.Materialize(src), nil
	})
)

// cache memoizes one dataset builder.
func cache(build func() (*dataset.Dataset, error)) func() (*dataset.Dataset, error) {
	var once sync.Once
	var ds *dataset.Dataset
	var err error
	return func() (*dataset.Dataset, error) {
		once.Do(func() { ds, err = build() })
		return ds, err
	}
}
