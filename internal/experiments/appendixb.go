package experiments

import (
	"fmt"
	"time"

	"repro/internal/attribution"
	"repro/internal/core"
	"repro/internal/events"
)

// AppendixBImpressionCounts are the sweep points of the Appendix B latency
// study (impressions present on the device when a conversion triggers).
var AppendixBImpressionCounts = []int{10, 25, 50, 75, 100}

// AppendixBResult records report-generation latency as a function of the
// number of on-device impressions, over a 20-epoch attribution window — the
// code path whose linear scaling Appendix B measures in Chrome (ARA tracks
// only the latest impression and is flat; Cookie Monster scans all relevant
// impressions grouped by epoch and grows linearly, a timing side channel the
// appendix flags).
type AppendixBResult struct {
	Impressions []int
	// NsPerReport[i] is the mean report-generation latency for
	// Impressions[i] on-device impressions.
	NsPerReport []float64
}

// appendixBDevice builds a single device holding n impressions spread over
// the 20-epoch window.
func appendixBDevice(n int) (*core.Device, *core.Request) {
	const epochs = 20
	const epochDays = 7
	db := events.NewDatabase()
	const site = events.Site("nike.example")
	for i := 0; i < n; i++ {
		day := (i * epochs * epochDays) / n
		db.Record(events.EpochOfDay(day, epochDays), events.Event{
			ID: events.EventID(i + 1), Kind: events.KindImpression,
			Device: 1, Day: day, Publisher: "pub.example",
			Advertiser: site, Campaign: "product-0",
		})
	}
	dev := core.NewDevice(1, db, 1e12, core.CookieMonsterPolicy{})
	req := &core.Request{
		Querier:    site,
		FirstEpoch: 0, LastEpoch: epochs - 1,
		Selector:          events.ProductSelector{Advertiser: site, Product: "product-0"},
		Function:          attribution.ScalarValue{Value: 1},
		Epsilon:           0.01,
		ReportSensitivity: 1,
		QuerySensitivity:  1,
		PNorm:             1,
	}
	return dev, req
}

// AppendixB measures report-generation latency at each impression count.
func AppendixB(o Options) (*AppendixBResult, error) {
	res := &AppendixBResult{Impressions: AppendixBImpressionCounts}
	if o.Quick {
		res.Impressions = []int{10, 100}
	}
	iters := 2000
	if o.Quick {
		iters = 200
	}
	for _, n := range res.Impressions {
		dev, req := appendixBDevice(n)
		// Measure the production hot path: the scratch-reusing variant the
		// fleet pipelines run, not the allocate-per-call convenience API.
		var scratch core.Scratch
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, _, err := dev.GenerateReportScratch(req, &scratch); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		res.NsPerReport = append(res.NsPerReport, float64(elapsed.Nanoseconds())/float64(iters))
	}
	return res, nil
}

// Tables renders the latency series.
func (r *AppendixBResult) Tables() []Table {
	t := Table{
		ID:      "appB",
		Title:   "report-generation latency vs on-device impressions (20 epochs)",
		Columns: []string{"impressions", "ns/report"},
	}
	for i, n := range r.Impressions {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), f(r.NsPerReport[i])})
	}
	return []Table{t}
}
