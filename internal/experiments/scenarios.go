package experiments

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/stream"
)

// ScenariosResult is the hostile-traffic robustness report: one row per
// catalog scenario, each row a full pass through the harness's property
// gauntlet (batch-vs-stream equivalence, crash→resume identity) plus its
// degradation numbers.
type ScenariosResult struct {
	Reports []*scenario.Report
}

// Scenarios runs the hostile-traffic catalog — or a single named scenario —
// through the robustness harness (DESIGN.md §11). Unlike the figure
// harnesses, Scenarios does not route through Options.run: every scenario
// inherently runs both engines (the batch oracle and the streaming service)
// and its own checkpointed crash matrix, so the Streaming/CheckpointDir
// knobs do not apply. Quick trims the crash matrix to three representative
// fault points and two parallelism levels. out, when non-empty, also writes
// the reports as the BENCH_scenarios.json artifact.
func Scenarios(o Options, name, out string) (*ScenariosResult, error) {
	h, err := scenario.DefaultHarness()
	if err != nil {
		return nil, err
	}
	h.MeasureHeap = out != ""
	if o.Quick {
		h.Parallelisms = []int{1, 4}
		h.FaultPoints = []stream.FaultPoint{
			stream.PointEventIngested,
			stream.PointQueryExecuted,
			stream.PointSnapshotCommitted,
		}
	}
	specs := scenario.Catalog()
	if name != "" {
		sp, err := scenario.ByName(name)
		if err != nil {
			return nil, err
		}
		// Keep the clean baseline so the accuracy ratio stays defined.
		if sp.Name != "clean" {
			clean, err := scenario.ByName("clean")
			if err != nil {
				return nil, err
			}
			specs = []scenario.Spec{clean, sp}
		} else {
			specs = []scenario.Spec{sp}
		}
	}
	reports, err := h.RunCatalog(specs)
	if err != nil {
		return nil, err
	}
	if out != "" {
		if err := scenario.WriteBench(out, reports); err != nil {
			return nil, err
		}
	}
	return &ScenariosResult{Reports: reports}, nil
}

// Tables renders the robustness report.
func (r *ScenariosResult) Tables() []Table {
	t := Table{
		ID:    "scenarios",
		Title: "hostile-traffic robustness (every row passed stream≡batch and crash→resume identity)",
		Columns: []string{"scenario", "delivered", "dropped", "queries", "denials",
			"consumed ε", "RMSRE", "vs clean", "crash pts"},
	}
	for _, rep := range r.Reports {
		t.Rows = append(t.Rows, []string{
			rep.Name,
			fmt.Sprintf("%d", rep.EventsDelivered),
			fmt.Sprintf("%d", rep.EventsDropped),
			fmt.Sprintf("%d", rep.QueriesExecuted),
			fmt.Sprintf("%d", rep.LedgerDenials),
			f(rep.TotalEpsilon),
			f(rep.MeanRMSRE),
			f(rep.AccuracyVsClean),
			fmt.Sprintf("%d", rep.CrashPointsTested),
		})
	}
	return []Table{t}
}
