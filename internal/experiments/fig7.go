package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig7Cutoffs are the error-estimation cutoffs of Fig. 7c (math.Inf(1)
// renders as the paper's "N/A" column: accept everything).
var Fig7Cutoffs = []float64{math.Inf(1), 0.02, 0.05, 0.1, 0.2}

// fig7EpsilonRatio fixes ε/ε^G ≈ 0.25 at any scale; the §6.5 workload's
// budget pressure comes from its 40×-repeated queries, not a smaller
// capacity.
const fig7EpsilonRatio = 0.25

// Fig7Variant identifies the four lines of Fig. 7.
type Fig7Variant int

const (
	// Fig7IPA is the off-device baseline.
	Fig7IPA Fig7Variant = iota
	// Fig7ARA is the on-device baseline (no bias measurement).
	Fig7ARA
	// Fig7CM is Cookie Monster without bias measurement.
	Fig7CM
	// Fig7CMBias is Cookie Monster with the Appendix F side query.
	Fig7CMBias
)

// String implements fmt.Stringer.
func (v Fig7Variant) String() string {
	switch v {
	case Fig7IPA:
		return "ipa-like"
	case Fig7ARA:
		return "ara-like"
	case Fig7CM:
		return "cm-no-bias-meas"
	case Fig7CMBias:
		return "cm-bias-meas"
	default:
		return fmt.Sprintf("Fig7Variant(%d)", int(v))
	}
}

// Fig7Variants lists the four lines in plot order.
var Fig7Variants = []Fig7Variant{Fig7IPA, Fig7ARA, Fig7CM, Fig7CMBias}

// Fig7Result holds the three panels of Fig. 7 (bias measurement on the
// microbenchmark under heavy query load).
type Fig7Result struct {
	// AvgBudget[v] is the average normalized budget across requested
	// device-epochs (panel a).
	AvgBudget map[Fig7Variant]float64
	// RMSRECDF[v] is the true-RMSRE distribution (panel b)...
	RMSRECDF map[Fig7Variant]*stats.CDF
	// ...and EstimateCDF the querier-side estimated-RMSRE distribution
	// for the bias-measuring variant (panel b's light line).
	EstimateCDF *stats.CDF
	// ExecutedFraction[v] is the fraction of queries executed.
	ExecutedFraction map[Fig7Variant]float64
	// Cutoffs and per-cutoff acceptance/true-error stats (panel c).
	Cutoffs        []float64
	AcceptFraction []float64
	AcceptedRMSRE  []stats.Summary
	// Queries is the number of queries submitted per variant.
	Queries int
	// Epsilon is the calibrated per-query ε, EpsilonG the derived
	// capacity.
	Epsilon  float64
	EpsilonG float64
}

func fig7Dataset(o Options) (*dataset.Dataset, error) {
	cfg := dataset.DefaultMicroConfig()
	cfg.Seed += o.Seed
	// §6.5: default knobs (0.1), 60 days, each query repeated 40 times.
	cfg.DurationDays = 60
	cfg.QueriesPerProduct = 40
	cfg.BatchSize = 150
	if o.Quick {
		cfg.QueriesPerProduct = 8
		cfg.BatchSize = 60
	}
	return dataset.Micro(cfg)
}

// Fig7 regenerates Fig. 7: budget and accuracy with bias measurement.
func Fig7(o Options) (*Fig7Result, error) {
	ds, err := fig7Dataset(o)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{
		AvgBudget:        make(map[Fig7Variant]float64),
		RMSRECDF:         make(map[Fig7Variant]*stats.CDF),
		ExecutedFraction: make(map[Fig7Variant]float64),
		Cutoffs:          Fig7Cutoffs,
	}
	adv := ds.Advertisers[0]
	res.Epsilon = privacy.DefaultCalibration.Epsilon(adv.MaxValue, adv.BatchSize, adv.AvgReportValue)
	res.EpsilonG = res.Epsilon / fig7EpsilonRatio

	runVariant := func(v Fig7Variant) (*workload.Run, error) {
		cfg := workload.Config{
			Dataset:     ds,
			EpochDays:   7,
			EpsilonG:    res.EpsilonG,
			Seed:        o.Seed + 70,
			Parallelism: o.Parallelism,
		}
		switch v {
		case Fig7IPA:
			cfg.System = workload.IPALike
		case Fig7ARA:
			cfg.System = workload.ARALike
		case Fig7CM:
			cfg.System = workload.CookieMonster
		case Fig7CMBias:
			cfg.System = workload.CookieMonster
			// Kappa ≤ 0 selects the default 10%-of-Δquery scaling.
			cfg.Bias = &core.BiasSpec{LastTouch: true}
		}
		return o.run(cfg)
	}

	var biasRun *workload.Run
	for _, v := range Fig7Variants {
		run, err := runVariant(v)
		if err != nil {
			return nil, err
		}
		avg, _ := run.BudgetStats()
		res.AvgBudget[v] = avg
		res.RMSRECDF[v] = stats.NewCDF(run.RMSREs())
		res.ExecutedFraction[v] = run.ExecutedFraction()
		res.Queries = len(run.Results)
		if v == Fig7CMBias {
			biasRun = run
		}
	}

	// Panel b's estimate line and panel c's cutoff study come from the
	// bias-measuring run.
	var estimates []float64
	for _, q := range biasRun.Results {
		estimates = append(estimates, q.BiasEstimate)
	}
	res.EstimateCDF = stats.NewCDF(estimates)

	for _, cutoff := range res.Cutoffs {
		var accepted []float64
		for _, q := range biasRun.Results {
			if q.BiasEstimate <= cutoff && q.Executed {
				accepted = append(accepted, q.RMSRE)
			}
		}
		res.AcceptFraction = append(res.AcceptFraction,
			float64(len(accepted))/float64(len(biasRun.Results)))
		res.AcceptedRMSRE = append(res.AcceptedRMSRE, stats.Summarize(accepted))
	}
	return res, nil
}

// Tables renders the three panels.
func (r *Fig7Result) Tables() []Table {
	var tables []Table

	ta := Table{
		ID:      "fig7a",
		Title:   fmt.Sprintf("avg budget consumed across requested device-epochs (normalized by ε^G=%.3g; %d queries)", r.EpsilonG, r.Queries),
		Columns: []string{"variant", "avg-budget", "executed"},
	}
	for _, v := range Fig7Variants {
		ta.Rows = append(ta.Rows, []string{
			v.String(), f(r.AvgBudget[v]), pct(r.ExecutedFraction[v]),
		})
	}
	tables = append(tables, ta)

	tb := Table{
		ID:      "fig7b",
		Title:   "CDF of true RMSRE per variant, plus the bias-measurement error estimate",
		Columns: []string{"percentile"},
	}
	for _, v := range Fig7Variants {
		tb.Columns = append(tb.Columns, v.String())
	}
	tb.Columns = append(tb.Columns, "cm-bias-meas(estimate)")
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		row := []string{pct(q)}
		for _, v := range Fig7Variants {
			cdf := r.RMSRECDF[v]
			if cdf.Len() == 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, f(cdf.Quantile(q)))
			}
		}
		row = append(row, f(r.EstimateCDF.Quantile(q)))
		tb.Rows = append(tb.Rows, row)
	}
	tables = append(tables, tb)

	tc := Table{
		ID:      "fig7c",
		Title:   "true RMSRE of accepted queries vs error-estimation cutoff",
		Columns: []string{"cutoff", "accepted", "median", "q3", "max"},
	}
	for i, cutoff := range r.Cutoffs {
		label := "N/A"
		if !math.IsInf(cutoff, 1) {
			label = f(cutoff)
		}
		s := r.AcceptedRMSRE[i]
		tc.Rows = append(tc.Rows, []string{
			label, pct(r.AcceptFraction[i]), f(s.Median), f(s.Q3), f(s.Max),
		})
	}
	tables = append(tables, tc)
	return tables
}
