package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/workload"
)

// Fig4Knob1Values and Fig4Knob2Values are the sweep points of Fig. 4.
var (
	Fig4Knob1Values = []float64{0.001, 0.01, 0.1, 1.0}
	Fig4Knob2Values = []float64{0.001, 0.01, 0.1, 1.0}
)

// Fig4Result holds the four panels of Fig. 4: average and maximum budget
// consumption across requested device-epochs (normalized by ε^G) as a
// function of each knob, per system.
type Fig4Result struct {
	Knob1 []float64
	Knob2 []float64
	// Avg/MaxByKnob1[sys][i] corresponds to Knob1[i] (knob2 fixed at
	// its default, 0.1); likewise for knob2 with knob1 fixed at 0.1.
	AvgByKnob1 map[workload.System][]float64
	MaxByKnob1 map[workload.System][]float64
	AvgByKnob2 map[workload.System][]float64
	MaxByKnob2 map[workload.System][]float64
	// Epsilon is the fixed requested ε used across the sweep (calibrated
	// once on the default-knob dataset, so the curves reflect data shape
	// only, as in the paper where IPA's consumption is knob-independent).
	Epsilon float64
	// EpsilonG is the per-epoch capacity.
	EpsilonG float64
}

// fig4EpsilonRatio fixes ε/ε^G ≈ 0.25 — the regime of the paper's ε ≈ 0.3
// vs ε^G = 1 — at any dataset scale: the capacity is derived from the
// calibrated ε rather than hardcoded.
const fig4EpsilonRatio = 0.25

func fig4Micro(o Options, knob1, knob2 float64) (*dataset.Dataset, error) {
	cfg := dataset.DefaultMicroConfig()
	cfg.Seed += o.Seed
	cfg.Knob1 = knob1
	cfg.Knob2 = knob2
	if o.Quick {
		cfg.BatchSize = 100
	}
	return dataset.Micro(cfg)
}

// Fig4 regenerates the four panels of Fig. 4 (budget consumption on the
// microbenchmark as a function of knob1 and knob2).
func Fig4(o Options) (*Fig4Result, error) {
	res := &Fig4Result{
		Knob1:      Fig4Knob1Values,
		Knob2:      Fig4Knob2Values,
		AvgByKnob1: make(map[workload.System][]float64),
		MaxByKnob1: make(map[workload.System][]float64),
		AvgByKnob2: make(map[workload.System][]float64),
		MaxByKnob2: make(map[workload.System][]float64),
	}
	if o.Quick {
		res.Knob1 = []float64{0.01, 1.0}
		res.Knob2 = []float64{0.01, 1.0}
	}

	// Calibrate ε once, on the default-knob dataset, then hold it fixed
	// across the sweep.
	ref, err := fig4Micro(o, 0.1, 0.1)
	if err != nil {
		return nil, err
	}
	adv := ref.Advertisers[0]
	res.Epsilon = privacy.DefaultCalibration.Epsilon(adv.MaxValue, adv.BatchSize, adv.AvgReportValue)
	res.EpsilonG = res.Epsilon / fig4EpsilonRatio

	runPoint := func(knob1, knob2 float64, sys workload.System) (avg, max float64, err error) {
		ds, err := fig4Micro(o, knob1, knob2)
		if err != nil {
			return 0, 0, err
		}
		run, err := o.run(workload.Config{
			Dataset:      ds,
			System:       sys,
			EpsilonG:     res.EpsilonG,
			FixedEpsilon: res.Epsilon,
			Seed:         o.Seed + 40,
			Parallelism:  o.Parallelism,
		})
		if err != nil {
			return 0, 0, err
		}
		avg, max = run.BudgetStats()
		return avg, max, nil
	}

	for _, sys := range workload.Systems {
		for _, k1 := range res.Knob1 {
			avg, max, err := runPoint(k1, 0.1, sys)
			if err != nil {
				return nil, err
			}
			res.AvgByKnob1[sys] = append(res.AvgByKnob1[sys], avg)
			res.MaxByKnob1[sys] = append(res.MaxByKnob1[sys], max)
		}
		for _, k2 := range res.Knob2 {
			avg, max, err := runPoint(0.1, k2, sys)
			if err != nil {
				return nil, err
			}
			res.AvgByKnob2[sys] = append(res.AvgByKnob2[sys], avg)
			res.MaxByKnob2[sys] = append(res.MaxByKnob2[sys], max)
		}
	}
	return res, nil
}

// Tables renders the four panels.
func (r *Fig4Result) Tables() []Table {
	panel := func(id, title, xlabel string, xs []float64, by map[workload.System][]float64) Table {
		t := Table{
			ID:      id,
			Title:   title + fmt.Sprintf(" (ε=%.3g, ε^G=%.3g, values normalized by ε^G)", r.Epsilon, r.EpsilonG),
			Columns: []string{xlabel},
		}
		for _, sys := range workload.Systems {
			t.Columns = append(t.Columns, sys.String())
		}
		for i, x := range xs {
			row := []string{f(x)}
			for _, sys := range workload.Systems {
				row = append(row, f(by[sys][i]))
			}
			t.Rows = append(t.Rows, row)
		}
		return t
	}
	return []Table{
		panel("fig4a", "avg budget varying knob1 (fraction of users per query)", "knob1", r.Knob1, r.AvgByKnob1),
		panel("fig4b", "max budget varying knob1", "knob1", r.Knob1, r.MaxByKnob1),
		panel("fig4c", "avg budget varying knob2 (user impressions per day)", "knob2", r.Knob2, r.AvgByKnob2),
		panel("fig4d", "max budget varying knob2", "knob2", r.Knob2, r.MaxByKnob2),
	}
}
