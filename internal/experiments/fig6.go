package experiments

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig6EpochLengths are the epoch-length sweep points (days) of Fig. 6c.
var Fig6EpochLengths = []int{1, 7, 30, 60}

// Fig6AugmentLevels are the Criteo++ augmentation levels of Fig. 6d (extra
// synthetic impressions per conversion).
var Fig6AugmentLevels = []int{0, 1, 4, 9}

// fig6EpsilonRatio fixes ε/ε^G ≈ 0.3 at any scale.
const fig6EpsilonRatio = 0.3

// Fig6Result holds the four panels of Fig. 6 (Criteo-like dataset).
type Fig6Result struct {
	// BudgetCDF[sys] is the per-(device, advertiser) average normalized
	// budget distribution (panel a).
	BudgetCDF map[workload.System]*stats.CDF
	// RMSRECDF[sys] is the distribution of per-query RMSRE (panel b).
	RMSRECDF map[workload.System]*stats.CDF
	// ExecutedFraction[sys] is the fraction of queries executed.
	ExecutedFraction map[workload.System]float64
	// EpochSweep[sys][i] summarizes RMSRE at EpochLengths[i] (panel c).
	EpochSweep   map[workload.System][]stats.Summary
	EpochLengths []int
	// AugmentCDF[level] is Cookie Monster's budget CDF at each Criteo++
	// augmentation level (panel d); AugmentARA is the (augmentation-
	// independent) ARA-like reference at level 0.
	AugmentCDF    map[int]*stats.CDF
	AugmentLevels []int
	AugmentARA    *stats.CDF
	// Queries and QueryableAdvertisers record the workload size.
	Queries              int
	QueryableAdvertisers int
	// Epsilon is the calibrated per-query ε, EpsilonG the derived
	// capacity.
	Epsilon  float64
	EpsilonG float64
}

func fig6Dataset(o Options, augment int) (*dataset.Dataset, error) {
	cfg := dataset.DefaultCriteoConfig()
	cfg.Seed += o.Seed
	cfg.AugmentImpressions = augment
	if o.Quick {
		cfg.TotalConversions = 8000
		cfg.Users = 4000
		cfg.MinBatch = 100
	}
	return dataset.Criteo(cfg)
}

// Fig6 regenerates Fig. 6: budget consumption and query accuracy across the
// Criteo-like dataset's many advertisers, plus the Criteo++ augmentation
// study.
func Fig6(o Options) (*Fig6Result, error) {
	ds, err := fig6Dataset(o, 0)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{
		BudgetCDF:            make(map[workload.System]*stats.CDF),
		RMSRECDF:             make(map[workload.System]*stats.CDF),
		ExecutedFraction:     make(map[workload.System]float64),
		EpochSweep:           make(map[workload.System][]stats.Summary),
		AugmentCDF:           make(map[int]*stats.CDF),
		AugmentLevels:        Fig6AugmentLevels,
		EpochLengths:         Fig6EpochLengths,
		QueryableAdvertisers: len(ds.Advertisers),
	}
	if o.Quick {
		res.EpochLengths = []int{7, 30}
		res.AugmentLevels = []int{0, 4}
	}

	// Advertisers calibrate individually (their match rates differ); the
	// capacity derives from the median advertiser's ε, so dense
	// advertisers fit comfortably while sparse ones exceed capacity —
	// the regime behind the paper's Fig. 6b error tail.
	var epss []float64
	for _, adv := range ds.Advertisers {
		epss = append(epss, privacy.DefaultCalibration.Epsilon(
			adv.MaxValue, adv.BatchSize, adv.AvgReportValue))
	}
	sort.Float64s(epss)
	res.Epsilon = epss[len(epss)/2]
	res.EpsilonG = res.Epsilon / fig6EpsilonRatio

	for _, sys := range workload.Systems {
		run, err := o.run(workload.Config{
			Dataset:     ds,
			System:      sys,
			EpochDays:   7,
			EpsilonG:    res.EpsilonG,
			Seed:        o.Seed + 60,
			Parallelism: o.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		res.BudgetCDF[sys] = stats.NewCDF(run.PerPairAverages())
		res.RMSRECDF[sys] = stats.NewCDF(run.RMSREs())
		res.ExecutedFraction[sys] = run.ExecutedFraction()
		res.Queries = len(run.Results)

		for _, days := range res.EpochLengths {
			sweep, err := o.run(workload.Config{
				Dataset:     ds,
				System:      sys,
				EpochDays:   days,
				EpsilonG:    res.EpsilonG,
				Seed:        o.Seed + 61,
				Parallelism: o.Parallelism,
			})
			if err != nil {
				return nil, err
			}
			res.EpochSweep[sys] = append(res.EpochSweep[sys], stats.Summarize(sweep.RMSREs()))
		}
	}
	res.AugmentARA = res.BudgetCDF[workload.ARALike]

	// Panel d: Cookie Monster under increasing augmentation. ARA-like and
	// IPA-like are augmentation-invariant (they never look at relevant
	// impressions when charging), so only CM is re-run.
	for _, level := range res.AugmentLevels {
		if level == 0 {
			res.AugmentCDF[0] = res.BudgetCDF[workload.CookieMonster]
			continue
		}
		aug, err := fig6Dataset(o, level)
		if err != nil {
			return nil, err
		}
		run, err := o.run(workload.Config{
			Dataset:     aug,
			System:      workload.CookieMonster,
			EpochDays:   7,
			EpsilonG:    res.EpsilonG,
			Seed:        o.Seed + 60,
			Parallelism: o.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		res.AugmentCDF[level] = stats.NewCDF(run.PerPairAverages())
	}
	return res, nil
}

// Tables renders the four panels.
func (r *Fig6Result) Tables() []Table {
	var tables []Table
	quantiles := []float64{0.5, 0.75, 0.9, 0.95, 0.99, 1.0}

	ta := Table{
		ID:      "fig6a",
		Title:   fmt.Sprintf("CDF of per-(device, advertiser) avg budget across epochs (normalized by ε^G=%.3g; %d advertisers, %d queries)", r.EpsilonG, r.QueryableAdvertisers, r.Queries),
		Columns: []string{"percentile"},
	}
	for _, sys := range workload.Systems {
		ta.Columns = append(ta.Columns, sys.String())
	}
	for _, q := range quantiles {
		row := []string{pct(q)}
		for _, sys := range workload.Systems {
			row = append(row, f(r.BudgetCDF[sys].Quantile(q)))
		}
		ta.Rows = append(ta.Rows, row)
	}
	tables = append(tables, ta)

	tb := Table{
		ID:      "fig6b",
		Title:   "CDF of query RMSRE (7-day epoch)",
		Columns: []string{"percentile"},
	}
	for _, sys := range workload.Systems {
		tb.Columns = append(tb.Columns, fmt.Sprintf("%s (%s exec)", sys, pct(r.ExecutedFraction[sys])))
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.96, 0.99} {
		row := []string{pct(q)}
		for _, sys := range workload.Systems {
			cdf := r.RMSRECDF[sys]
			if cdf.Len() == 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, f(cdf.Quantile(q)))
			}
		}
		tb.Rows = append(tb.Rows, row)
	}
	tables = append(tables, tb)

	tc := Table{
		ID:      "fig6c",
		Title:   "RMSRE vs epoch length (median [q1, q3] (min–max))",
		Columns: []string{"epoch-days"},
	}
	for _, sys := range workload.Systems {
		tc.Columns = append(tc.Columns, sys.String())
	}
	for i, days := range r.EpochLengths {
		row := []string{fmt.Sprintf("%d", days)}
		for _, sys := range workload.Systems {
			s := r.EpochSweep[sys][i]
			row = append(row, fmt.Sprintf("%s [%s, %s] (%s–%s)",
				f(s.Median), f(s.Q1), f(s.Q3), f(s.Min), f(s.Max)))
		}
		tc.Rows = append(tc.Rows, row)
	}
	tables = append(tables, tc)

	td := Table{
		ID:      "fig6d",
		Title:   "Criteo++: Cookie Monster budget CDF vs impression augmentation (ARA-like reference unchanged)",
		Columns: []string{"percentile"},
	}
	for _, level := range r.AugmentLevels {
		td.Columns = append(td.Columns, fmt.Sprintf("cm+%d", level))
	}
	td.Columns = append(td.Columns, "ara-like")
	for _, q := range quantiles {
		row := []string{pct(q)}
		for _, level := range r.AugmentLevels {
			row = append(row, f(r.AugmentCDF[level].Quantile(q)))
		}
		row = append(row, f(r.AugmentARA.Quantile(q)))
		td.Rows = append(td.Rows, row)
	}
	tables = append(tables, td)
	return tables
}
