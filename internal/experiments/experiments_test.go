package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/workload"
)

var quick = Options{Quick: true}

func TestFig4ShapesHold(t *testing.T) {
	r, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range workload.Systems {
		if len(r.AvgByKnob1[sys]) != len(r.Knob1) || len(r.AvgByKnob2[sys]) != len(r.Knob2) {
			t.Fatalf("%v: series length mismatch", sys)
		}
	}
	// The paper's qualitative claims: CM ≤ ARA at every sweep point, and
	// ARA ≤ IPA up to saturation noise (at knob1 = 1 both converge near
	// capacity, as in Fig. 4a's rightmost points).
	for i := range r.Knob1 {
		cm := r.AvgByKnob1[workload.CookieMonster][i]
		ara := r.AvgByKnob1[workload.ARALike][i]
		ipa := r.AvgByKnob1[workload.IPALike][i]
		if !(cm <= ara+1e-12 && ara <= ipa*1.05+1e-12) {
			t.Fatalf("knob1=%v: ordering broken cm=%v ara=%v ipa=%v",
				r.Knob1[i], cm, ara, ipa)
		}
	}
	// At the lowest participation the gap is strict and large.
	if !(r.AvgByKnob1[workload.ARALike][0] < 0.5*r.AvgByKnob1[workload.IPALike][0]) {
		t.Fatalf("low-knob1 ARA %v not well below IPA %v",
			r.AvgByKnob1[workload.ARALike][0], r.AvgByKnob1[workload.IPALike][0])
	}
	// IPA's average is knob1-invariant (population-level accounting).
	ipa := r.AvgByKnob1[workload.IPALike]
	for i := 1; i < len(ipa); i++ {
		if relDiff(ipa[i], ipa[0]) > 0.15 {
			t.Fatalf("IPA avg varies with knob1: %v", ipa)
		}
	}
	// On-device consumption grows with participation (knob1).
	ara := r.AvgByKnob1[workload.ARALike]
	if !(ara[0] < ara[len(ara)-1]) {
		t.Fatalf("ARA avg not increasing in knob1: %v", ara)
	}
	// CM's advantage over ARA shrinks as impressions densify (knob2).
	gapLo := r.AvgByKnob2[workload.ARALike][0] - r.AvgByKnob2[workload.CookieMonster][0]
	last := len(r.Knob2) - 1
	gapHi := r.AvgByKnob2[workload.ARALike][last] - r.AvgByKnob2[workload.CookieMonster][last]
	if !(gapHi < gapLo) {
		t.Fatalf("CM advantage did not shrink with knob2: gaps %v -> %v", gapLo, gapHi)
	}
	if len(r.Tables()) != 4 {
		t.Fatal("fig4 must have 4 panels")
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	d := (a - b) / b
	if d < 0 {
		return -d
	}
	return d
}

func TestFig5ShapesHold(t *testing.T) {
	r, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	// On-device systems execute everything; IPA-like rejects some.
	if r.ExecutedFraction[workload.CookieMonster] != 1 ||
		r.ExecutedFraction[workload.ARALike] != 1 {
		t.Fatal("on-device system rejected queries")
	}
	if r.ExecutedFraction[workload.IPALike] >= 1 {
		t.Fatalf("IPA executed everything (%v); budget should deplete",
			r.ExecutedFraction[workload.IPALike])
	}
	// CM's final average budget is below ARA's.
	cm := r.CumulativeAvg[workload.CookieMonster]
	ara := r.CumulativeAvg[workload.ARALike]
	if !(cm[len(cm)-1] < ara[len(ara)-1]) {
		t.Fatalf("CM final avg %v !< ARA %v", cm[len(cm)-1], ara[len(ara)-1])
	}
	// Cumulative averages are non-decreasing (filters only fill).
	for i := 1; i < len(cm); i++ {
		if cm[i] < cm[i-1]-1e-12 {
			t.Fatalf("CM cumulative avg decreased at %d: %v -> %v", i, cm[i-1], cm[i])
		}
	}
	// CM's median error is no worse than ARA's.
	if r.RMSRECDF[workload.CookieMonster].Quantile(0.5) > r.RMSRECDF[workload.ARALike].Quantile(0.5)+1e-9 {
		t.Fatal("CM median RMSRE worse than ARA")
	}
	if len(r.Tables()) != 3 {
		t.Fatal("fig5 must have 3 panels")
	}
}

func TestFig6ShapesHold(t *testing.T) {
	r, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.Queries == 0 || r.QueryableAdvertisers == 0 {
		t.Fatal("no queries planned")
	}
	// Budget CDF: CM's 95th percentile pair consumption below baselines'.
	q95 := func(sys workload.System) float64 { return r.BudgetCDF[sys].Quantile(0.95) }
	if !(q95(workload.CookieMonster) <= q95(workload.ARALike)+1e-12) {
		t.Fatalf("CM 95th pct budget %v !<= ARA %v", q95(workload.CookieMonster), q95(workload.ARALike))
	}
	if !(q95(workload.CookieMonster) <= q95(workload.IPALike)+1e-12) {
		t.Fatalf("CM 95th pct budget %v !<= IPA %v", q95(workload.CookieMonster), q95(workload.IPALike))
	}
	// Criteo++: augmentation pushes CM's budget toward ARA's.
	lo := r.AugmentCDF[r.AugmentLevels[0]].Quantile(0.99)
	hi := r.AugmentCDF[r.AugmentLevels[len(r.AugmentLevels)-1]].Quantile(0.99)
	if !(hi >= lo) {
		t.Fatalf("augmentation decreased CM budget: %v -> %v", lo, hi)
	}
	if len(r.Tables()) != 4 {
		t.Fatal("fig6 must have 4 panels")
	}
}

func TestFig7ShapesHold(t *testing.T) {
	r, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Bias measurement costs budget: CM-with-bias > CM-without.
	if !(r.AvgBudget[Fig7CMBias] > r.AvgBudget[Fig7CM]) {
		t.Fatalf("bias measurement did not cost budget: %v vs %v",
			r.AvgBudget[Fig7CMBias], r.AvgBudget[Fig7CM])
	}
	// Both CM variants stay below ARA.
	if !(r.AvgBudget[Fig7CM] < r.AvgBudget[Fig7ARA]) {
		t.Fatalf("CM avg %v !< ARA avg %v", r.AvgBudget[Fig7CM], r.AvgBudget[Fig7ARA])
	}
	// Cutoff study: acceptance fraction decreases as the cutoff tightens
	// (cutoffs are ordered Inf, 0.02, 0.05, 0.1, 0.2 — Inf accepts all).
	if r.AcceptFraction[0] != r.ExecutedFraction[Fig7CMBias] {
		t.Fatalf("infinite cutoff accepted %v of queries", r.AcceptFraction[0])
	}
	for i := 2; i < len(r.Cutoffs); i++ {
		if r.AcceptFraction[i] < r.AcceptFraction[i-1]-1e-12 {
			t.Fatalf("acceptance not monotone in cutoff: %v", r.AcceptFraction)
		}
	}
	if len(r.Tables()) != 3 {
		t.Fatal("fig7 must have 3 panels")
	}
}

func TestAppendixBLatencyGrows(t *testing.T) {
	r, err := AppendixB(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.NsPerReport) != len(r.Impressions) {
		t.Fatal("series length mismatch")
	}
	for _, ns := range r.NsPerReport {
		if ns <= 0 {
			t.Fatalf("non-positive latency %v", ns)
		}
	}
	// More impressions should not be dramatically *cheaper* (the scan is
	// linear; allow generous noise margins).
	first, last := r.NsPerReport[0], r.NsPerReport[len(r.NsPerReport)-1]
	if last < first/2 {
		t.Fatalf("latency shrank with impressions: %v -> %v", first, last)
	}
	if len(r.Tables()) != 1 {
		t.Fatal("appendix B must have 1 table")
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		ID: "x", Title: "t",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tab.Render()
	if !strings.Contains(out, "== x: t ==") || !strings.Contains(out, "333") {
		t.Fatalf("render = %q", out)
	}
}

func TestFormatHelpers(t *testing.T) {
	if f(0) != "0" {
		t.Fatal("f(0)")
	}
	if f(123.456) != "123.5" {
		t.Fatalf("f(123.456) = %s", f(123.456))
	}
	if f(0.5) != "0.5" {
		t.Fatalf("f(0.5) = %s", f(0.5))
	}
	if !strings.Contains(f(0.0001), "e") {
		t.Fatalf("f(0.0001) = %s", f(0.0001))
	}
	if pct(0.5) != "50.0%" {
		t.Fatalf("pct = %s", pct(0.5))
	}
}

func TestAblationLadderMonotone(t *testing.T) {
	r, err := Ablation(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Policies) != 4 {
		t.Fatalf("policies = %v", r.Policies)
	}
	// The ladder is ordered by increasing savings: each optimization
	// subset consumes no more than the previous one (ARA-like first,
	// full Cookie Monster last).
	for i := 1; i < len(r.AvgBudget); i++ {
		if r.AvgBudget[i] > r.AvgBudget[i-1]*1.001+1e-12 {
			t.Fatalf("ladder not monotone at %s: %v", r.Policies[i], r.AvgBudget)
		}
	}
	// Full Cookie Monster strictly beats no-optimizations.
	if !(r.AvgBudget[len(r.AvgBudget)-1] < r.AvgBudget[0]) {
		t.Fatalf("full CM did not save budget: %v", r.AvgBudget)
	}
	if len(r.Tables()) != 1 {
		t.Fatal("ablation must have 1 table")
	}
}

func TestHeadlineRatioAboveOne(t *testing.T) {
	r, err := Headline(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.AccuracyRatio) != len(r.Pressure) {
		t.Fatal("series length mismatch")
	}
	for i, ratio := range r.AccuracyRatio {
		if ratio < 1-1e-9 {
			t.Fatalf("pressure %d: ARA more accurate than CM (ratio %v)", r.Pressure[i], ratio)
		}
	}
	// Pressure increases the gap (ARA degrades first).
	if !(r.AccuracyRatio[len(r.AccuracyRatio)-1] > r.AccuracyRatio[0]) {
		t.Fatalf("ratio not increasing with pressure: %v", r.AccuracyRatio)
	}
	if len(r.Tables()) != 1 {
		t.Fatal("headline must have 1 table")
	}
}

// TestStreamingModeReproducesFigures pins the harness-level consequence of
// the streaming-vs-batch equivalence contract: with Options.Streaming every
// figure's numbers come out bit-identical, so -stream runs are directly
// comparable to published batch runs.
func TestStreamingModeReproducesFigures(t *testing.T) {
	streaming := Options{Quick: true, Streaming: true}

	batch4, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	stream4, err := Fig4(streaming)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch4, stream4) {
		t.Fatalf("Fig4 diverges in streaming mode:\n  batch:  %+v\n  stream: %+v", batch4, stream4)
	}

	batch7, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	stream7, err := Fig7(streaming)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch7, stream7) {
		t.Fatalf("Fig7 diverges in streaming mode:\n  batch:  %+v\n  stream: %+v", batch7, stream7)
	}
}

func TestScenariosHarness(t *testing.T) {
	res, err := Scenarios(Options{Quick: true}, "late-events", "")
	if err != nil {
		t.Fatal(err)
	}
	// Single-scenario selection keeps the clean baseline for the ratio.
	if len(res.Reports) != 2 {
		t.Fatalf("got %d reports, want clean + late-events", len(res.Reports))
	}
	late := res.Reports[1]
	if late.Name != "late-events" || late.EventsDropped == 0 {
		t.Fatalf("late-events report malformed: %+v", late)
	}
	if !late.EquivalentToBatch || !late.CrashResumeIdentical {
		t.Fatal("robustness verdicts not set")
	}
	tables := res.Tables()
	if len(tables) != 1 || len(tables[0].Rows) != 2 {
		t.Fatalf("unexpected tables: %+v", tables)
	}
	if _, err := Scenarios(Options{Quick: true}, "no-such", ""); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
