// Package experiments contains one harness per table/figure of the paper's
// evaluation (§6): each builds the figure's dataset, runs the workload under
// the three systems, and returns both structured results (for tests and
// benchmarks) and printable tables with the same rows/series the paper
// reports. The per-experiment index in DESIGN.md maps each harness to its
// figure.
package experiments

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/workload"
)

// Options tunes harness scale.
type Options struct {
	// Quick shrinks datasets so a harness finishes in roughly a second;
	// used by unit tests and the smoke benchmarks. Full-scale runs (the
	// default) regenerate the figures at the scaled-down sizes recorded
	// in DESIGN.md (§3).
	Quick bool
	// Seed offsets all dataset and noise seeds, for replication studies.
	Seed uint64
	// Parallelism bounds each workload run's report-generation worker
	// pool (0 = GOMAXPROCS, 1 = sequential). Results are identical for
	// any value; the knob only trades wall-clock for cores.
	Parallelism int
	// Streaming routes every workload run through the online measurement
	// service (internal/stream) instead of the batch engine: events are
	// ingested as a day-ordered stream and queries fire as their batches
	// fill. Results are bit-identical to batch mode (DESIGN.md §6), so
	// every figure reproduces exactly; the knob exists to exercise the
	// streaming path at full experiment scale.
	Streaming bool
	// CheckpointDir makes every streaming run crash-safe (DESIGN.md §8):
	// run i of the invocation persists its WAL and snapshots under
	// CheckpointDir/run-i. Implies Streaming semantics for durability;
	// ignored in batch mode.
	CheckpointDir string
	// SnapshotEveryDays is the snapshot cadence inside CheckpointDir
	// (0 = WAL only during the run).
	SnapshotEveryDays int
	// SnapshotMode picks how the cadence persists state: "delta" (the
	// default) writes only the lanes dirtied since the previous generation
	// and compacts periodically; "full" serializes everything every tick
	// (DESIGN.md §12).
	SnapshotMode string
	// GroupCommitEvents batches WAL fsyncs: the log is fsynced after this
	// many appended events instead of once per append (0 = every append).
	GroupCommitEvents int
	// Resume restarts crashed runs from CheckpointDir's durable state:
	// each run-i that already completed is replayed from its final
	// snapshot, and the interrupted one recovers and continues. The run-i
	// numbering is process-global and deterministic, so a resuming process
	// must re-run the same selection the crashed process ran (as the CLI
	// does); a mispaired directory is refused by the snapshot's scenario
	// fingerprint rather than silently mixed in.
	Resume bool
}

// runCounter numbers workload runs in process-global order, giving each its
// own checkpoint subdirectory. The order is deterministic for a fixed
// harness selection, which is what makes run-i pairing stable between a
// crashed process and the process resuming it.
var runCounter atomic.Int64

// run executes one workload configuration in the mode Options selects —
// the single seam through which every harness reaches the engine.
func (o Options) run(cfg workload.Config) (*workload.Run, error) {
	if o.CheckpointDir != "" {
		cfg.CheckpointDir = filepath.Join(o.CheckpointDir,
			fmt.Sprintf("run-%d", runCounter.Add(1)-1))
		cfg.SnapshotEveryDays = o.SnapshotEveryDays
		cfg.SnapshotMode = o.SnapshotMode
		cfg.GroupCommitEvents = o.GroupCommitEvents
		cfg.Resume = o.Resume
		return workload.ExecuteStream(cfg)
	}
	if o.Streaming {
		return workload.ExecuteStream(cfg)
	}
	return workload.Execute(cfg)
}

// Table is a printable result table: one per figure panel.
type Table struct {
	// ID names the panel, e.g. "fig4a".
	ID string
	// Title describes the panel, e.g. "avg budget vs knob1".
	Title string
	// Columns are the header names.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// f formats a float compactly for table cells.
func f(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
