package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig5EpochLengths are the epoch-length sweep points (days) of Fig. 5c.
var Fig5EpochLengths = []int{1, 7, 14, 21, 30}

// fig5EpsilonRatio fixes ε/ε^G ≈ 0.3, the paper's PATCG regime (ε ≈ 0.3 vs
// ε^G = 1); the capacity is derived from the calibrated ε at any scale.
const fig5EpsilonRatio = 0.3

// Fig5Result holds the three panels of Fig. 5 (PATCG dataset).
type Fig5Result struct {
	// CumulativeAvg[sys][q] is the average normalized budget over
	// requested device-epochs after query q (panel a).
	CumulativeAvg map[workload.System][]float64
	// ExecutedFraction[sys] is the fraction of submitted queries that ran.
	ExecutedFraction map[workload.System]float64
	// RMSRECDF[sys] is the distribution of realized per-query RMSRE at
	// the default 7-day epoch (panel b).
	RMSRECDF map[workload.System]*stats.CDF
	// EpochSweep[sys][i] summarizes RMSRE at Fig5EpochLengths[i]
	// (panel c).
	EpochSweep map[workload.System][]stats.Summary
	// EpochExecuted[sys][i] is the executed fraction at each epoch length.
	EpochExecuted map[workload.System][]float64
	// EpochLengths records the sweep points used (days).
	EpochLengths []int
	// Queries is the number of queries submitted.
	Queries int
	// Epsilon is the calibrated per-query ε, and EpsilonG the derived
	// per-epoch capacity.
	Epsilon  float64
	EpsilonG float64
}

func fig5Dataset(o Options) (*dataset.Dataset, error) {
	cfg := dataset.DefaultPATCGConfig()
	cfg.Seed += o.Seed
	if o.Quick {
		cfg.Users = 4000
		cfg.QueriesPerProduct = 2
	}
	return dataset.PATCG(cfg)
}

// Fig5 regenerates Fig. 5: budget consumption and query accuracy on the
// PATCG-like dataset.
func Fig5(o Options) (*Fig5Result, error) {
	ds, err := fig5Dataset(o)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{
		CumulativeAvg:    make(map[workload.System][]float64),
		ExecutedFraction: make(map[workload.System]float64),
		RMSRECDF:         make(map[workload.System]*stats.CDF),
		EpochSweep:       make(map[workload.System][]stats.Summary),
		EpochExecuted:    make(map[workload.System][]float64),
	}

	lengths := Fig5EpochLengths
	if o.Quick {
		lengths = []int{7, 30}
	}
	res.EpochLengths = lengths

	adv := ds.Advertisers[0]
	res.Epsilon = privacy.DefaultCalibration.Epsilon(adv.MaxValue, adv.BatchSize, adv.AvgReportValue)
	res.EpsilonG = res.Epsilon / fig5EpsilonRatio

	for _, sys := range workload.Systems {
		// Panels a & b: default 7-day epoch, with cumulative tracking.
		run, err := o.run(workload.Config{
			Dataset:     ds,
			System:      sys,
			EpochDays:   7,
			EpsilonG:    res.EpsilonG,
			Seed:        o.Seed + 50,
			Parallelism: o.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		res.CumulativeAvg[sys] = run.CumulativeAvgBudget()
		res.ExecutedFraction[sys] = run.ExecutedFraction()
		res.RMSRECDF[sys] = stats.NewCDF(run.RMSREs())
		res.Queries = len(run.Results)

		// Panel c: epoch-length sweep.
		for _, days := range lengths {
			sweep, err := o.run(workload.Config{
				Dataset:     ds,
				System:      sys,
				EpochDays:   days,
				EpsilonG:    res.EpsilonG,
				Seed:        o.Seed + 51,
				Parallelism: o.Parallelism,
			})
			if err != nil {
				return nil, err
			}
			res.EpochSweep[sys] = append(res.EpochSweep[sys], stats.Summarize(sweep.RMSREs()))
			res.EpochExecuted[sys] = append(res.EpochExecuted[sys], sweep.ExecutedFraction())
		}
	}
	return res, nil
}

// Tables renders the three panels.
func (r *Fig5Result) Tables() []Table {
	var tables []Table

	// Panel a: cumulative average budget after each query (sampled).
	ta := Table{
		ID:      "fig5a",
		Title:   fmt.Sprintf("population-avg budget consumed vs queries submitted (ε=%.3g, normalized by ε^G=%.3g)", r.Epsilon, r.EpsilonG),
		Columns: []string{"query#"},
	}
	for _, sys := range workload.Systems {
		ta.Columns = append(ta.Columns, sys.String())
	}
	step := len(r.CumulativeAvg[workload.CookieMonster]) / 10
	if step == 0 {
		step = 1
	}
	for q := 0; q < len(r.CumulativeAvg[workload.CookieMonster]); q += step {
		row := []string{fmt.Sprintf("%d", q+1)}
		for _, sys := range workload.Systems {
			row = append(row, f(r.CumulativeAvg[sys][q]))
		}
		ta.Rows = append(ta.Rows, row)
	}
	exec := []string{"executed"}
	for _, sys := range workload.Systems {
		exec = append(exec, pct(r.ExecutedFraction[sys]))
	}
	ta.Rows = append(ta.Rows, exec)
	tables = append(tables, ta)

	// Panel b: RMSRE CDF at a 7-day epoch.
	tb := Table{
		ID:      "fig5b",
		Title:   "CDF of query RMSRE (7-day epoch); IPA-like's line ends at its executed fraction",
		Columns: []string{"percentile"},
	}
	for _, sys := range workload.Systems {
		tb.Columns = append(tb.Columns, sys.String())
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		row := []string{pct(q)}
		for _, sys := range workload.Systems {
			cdf := r.RMSRECDF[sys]
			if cdf.Len() == 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, f(cdf.Quantile(q)))
			}
		}
		tb.Rows = append(tb.Rows, row)
	}
	tables = append(tables, tb)

	// Panel c: RMSRE vs epoch length (box stats).
	tc := Table{
		ID:      "fig5c",
		Title:   "RMSRE vs epoch length (median [q1, q3] (min–max), executed%)",
		Columns: []string{"epoch-days"},
	}
	for _, sys := range workload.Systems {
		tc.Columns = append(tc.Columns, sys.String())
	}
	for i, days := range r.EpochLengths {
		row := []string{fmt.Sprintf("%d", days)}
		for _, sys := range workload.Systems {
			s := r.EpochSweep[sys][i]
			row = append(row, fmt.Sprintf("%s [%s, %s] (%s–%s) %s",
				f(s.Median), f(s.Q1), f(s.Q3), f(s.Min), f(s.Max),
				pct(r.EpochExecuted[sys][i])))
		}
		tc.Rows = append(tc.Rows, row)
	}
	tables = append(tables, tc)
	return tables
}
