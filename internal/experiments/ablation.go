package experiments

import (
	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/workload"
)

// AblationResult decomposes Cookie Monster's budget savings across the
// §4.3 optimization ladder (DESIGN.md's ablation study): the same
// microbenchmark workload runs under each partial loss policy, isolating
// the contribution of the zero-loss, report-cap and single-epoch
// optimizations.
type AblationResult struct {
	// Policies lists the ladder in increasing-savings order.
	Policies []string
	// AvgBudget[i] is the average normalized budget across requested
	// device-epochs under Policies[i].
	AvgBudget []float64
	// MaxBudget[i] is the corresponding maximum.
	MaxBudget []float64
	// DeniedReports[i] counts reports with at least one denied epoch.
	DeniedReports []int
	// Epsilon and EpsilonG record the calibration.
	Epsilon, EpsilonG float64
}

// Ablation runs the optimization-ladder study on the default
// microbenchmark.
func Ablation(o Options) (*AblationResult, error) {
	ds, err := fig4Micro(o, 0.1, 0.1)
	if err != nil {
		return nil, err
	}
	adv := ds.Advertisers[0]
	eps := privacy.DefaultCalibration.Epsilon(adv.MaxValue, adv.BatchSize, adv.AvgReportValue)
	res := &AblationResult{Epsilon: eps, EpsilonG: eps / fig4EpsilonRatio}

	for _, policy := range core.AblationPolicies {
		run, err := o.run(workload.Config{
			Dataset:        ds,
			System:         workload.CookieMonster,
			PolicyOverride: policy,
			EpsilonG:       res.EpsilonG,
			FixedEpsilon:   eps,
			Seed:           o.Seed + 80,
			Parallelism:    o.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		avg, max := run.BudgetStats()
		denied := 0
		for _, q := range run.Results {
			denied += q.DeniedReports
		}
		res.Policies = append(res.Policies, policy.Name())
		res.AvgBudget = append(res.AvgBudget, avg)
		res.MaxBudget = append(res.MaxBudget, max)
		res.DeniedReports = append(res.DeniedReports, denied)
	}
	return res, nil
}

// Tables renders the ladder.
func (r *AblationResult) Tables() []Table {
	t := Table{
		ID:      "ablation",
		Title:   "optimization ladder: budget consumption per §4.3 optimization subset",
		Columns: []string{"policy", "avg-budget", "max-budget", "denied-reports"},
	}
	for i, name := range r.Policies {
		t.Rows = append(t.Rows, []string{
			name, f(r.AvgBudget[i]), f(r.MaxBudget[i]),
			f(float64(r.DeniedReports[i])),
		})
	}
	return []Table{t}
}
