package experiments

import (
	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/stats"
	"repro/internal/workload"
)

// HeadlineResult backs the paper's abstract claim: "×1.16–2.88 better query
// accuracy compared to a user-time version of ARA and substantially
// outperforms IPA, which exhausts its budget very early." It runs the three
// systems over a ladder of budget-pressure levels on the microbenchmark and
// reports the ARA/CM RMSRE ratio and IPA's executed fraction at each level.
type HeadlineResult struct {
	// Pressure labels the workload intensity (queries per product).
	Pressure []int
	// AccuracyRatio[i] is ARA-like's mean RMSRE divided by Cookie
	// Monster's at Pressure[i] (> 1 means CM is more accurate).
	AccuracyRatio []float64
	// CMError and ARAError are the mean RMSREs behind the ratio.
	CMError, ARAError []float64
	// IPAExecuted[i] is IPA-like's executed query fraction.
	IPAExecuted []float64
}

// Headline runs the accuracy-ratio ladder.
func Headline(o Options) (*HeadlineResult, error) {
	res := &HeadlineResult{Pressure: []int{2, 8, 16}}
	if o.Quick {
		res.Pressure = []int{2, 8}
	}
	for _, qpp := range res.Pressure {
		cfg := dataset.DefaultMicroConfig()
		cfg.Seed += o.Seed
		cfg.QueriesPerProduct = qpp
		cfg.BatchSize = 200
		if o.Quick {
			cfg.BatchSize = 80
		}
		ds, err := dataset.Micro(cfg)
		if err != nil {
			return nil, err
		}
		adv := ds.Advertisers[0]
		eps := privacy.DefaultCalibration.Epsilon(adv.MaxValue, adv.BatchSize, adv.AvgReportValue)
		epsG := eps / 0.25

		means := make(map[workload.System]float64)
		var ipaExec float64
		for _, sys := range workload.Systems {
			run, err := o.run(workload.Config{
				Dataset:     ds,
				System:      sys,
				EpsilonG:    epsG,
				Seed:        o.Seed + 90,
				Parallelism: o.Parallelism,
			})
			if err != nil {
				return nil, err
			}
			means[sys] = stats.Mean(run.RMSREs())
			if sys == workload.IPALike {
				ipaExec = run.ExecutedFraction()
			}
		}
		ratio := 1.0
		if means[workload.CookieMonster] > 0 {
			ratio = means[workload.ARALike] / means[workload.CookieMonster]
		}
		res.AccuracyRatio = append(res.AccuracyRatio, ratio)
		res.CMError = append(res.CMError, means[workload.CookieMonster])
		res.ARAError = append(res.ARAError, means[workload.ARALike])
		res.IPAExecuted = append(res.IPAExecuted, ipaExec)
	}
	return res, nil
}

// Tables renders the ladder.
func (r *HeadlineResult) Tables() []Table {
	t := Table{
		ID:      "headline",
		Title:   "ARA-like vs Cookie Monster accuracy ratio under rising query pressure (paper: ×1.16–2.88)",
		Columns: []string{"queries/product", "cm-mean-RMSRE", "ara-mean-RMSRE", "ara/cm-ratio", "ipa-executed"},
	}
	for i, qpp := range r.Pressure {
		t.Rows = append(t.Rows, []string{
			f(float64(qpp)), f(r.CMError[i]), f(r.ARAError[i]),
			f(r.AccuracyRatio[i]), pct(r.IPAExecuted[i]),
		})
	}
	return []Table{t}
}
