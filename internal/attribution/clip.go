package attribution

// ClipL1 enforces the querier-declared report global sensitivity: if the
// histogram's L1 norm exceeds cap, every coordinate is scaled down
// proportionally so the norm equals cap exactly (Listing 1, step 4 (1)).
// The histogram is modified in place and returned.
//
// Proportional scaling (rather than per-coordinate truncation) preserves the
// relative attribution the logic computed, which is what the ARA-style
// contribution-bounding literature recommends; any strategy that guarantees
// ‖A(F)‖₁ ≤ cap preserves the DP proof (§7, "clipping strategies").
func ClipL1(h Histogram, cap float64) Histogram {
	if cap < 0 {
		panic("attribution: negative clipping cap")
	}
	norm := h.L1()
	if norm <= cap || norm == 0 {
		return h
	}
	scale := cap / norm
	for i := range h {
		h[i] *= scale
	}
	return h
}

// ClipNorm clips under the p-norm for p ∈ {1, 2}, the generalization used
// when the aggregation service runs a Gaussian mechanism.
func ClipNorm(h Histogram, cap float64, p int) Histogram {
	if cap < 0 {
		panic("attribution: negative clipping cap")
	}
	norm := h.Norm(p)
	if norm <= cap || norm == 0 {
		return h
	}
	scale := cap / norm
	for i := range h {
		h[i] *= scale
	}
	return h
}
