package attribution

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHistogramZero(t *testing.T) {
	h := NewHistogram(3)
	if len(h) != 3 || !h.IsZero() {
		t.Fatalf("NewHistogram = %v", h)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(0) did not panic")
		}
	}()
	NewHistogram(0)
}

func TestNorms(t *testing.T) {
	h := Histogram{3, -4}
	if h.L1() != 7 {
		t.Fatalf("L1 = %v", h.L1())
	}
	if h.L2() != 5 {
		t.Fatalf("L2 = %v", h.L2())
	}
	if h.Norm(1) != 7 || h.Norm(2) != 5 {
		t.Fatal("Norm dispatch wrong")
	}
	if h.Total() != -1 {
		t.Fatalf("Total = %v", h.Total())
	}
}

func TestNormPanicsOnUnsupportedP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Norm(3) did not panic")
		}
	}()
	Histogram{1}.Norm(3)
}

func TestAdd(t *testing.T) {
	h := Histogram{1, 2}
	h.Add(Histogram{10, 20})
	if h[0] != 11 || h[1] != 22 {
		t.Fatalf("Add = %v", h)
	}
}

func TestAddDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	Histogram{1}.Add(Histogram{1, 2})
}

func TestCloneIndependent(t *testing.T) {
	h := Histogram{1, 2}
	c := h.Clone()
	c[0] = 99
	if h[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestIsZero(t *testing.T) {
	if !(Histogram{0, 0}).IsZero() {
		t.Fatal("zero histogram not detected")
	}
	if (Histogram{0, 0.001}).IsZero() {
		t.Fatal("nonzero histogram reported zero")
	}
}

func TestL1TriangleInequalityQuick(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		ha, hb := make(Histogram, n), make(Histogram, n)
		for i := 0; i < n; i++ {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
			ha[i] = math.Mod(a[i], 1e6)
			hb[i] = math.Mod(b[i], 1e6)
		}
		sum := ha.Clone()
		sum.Add(hb)
		return sum.L1() <= ha.L1()+hb.L1()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
