package attribution

import (
	"repro/internal/events"
)

// Function is the attribution function A : P(I∪C)^k → R^m of §4.1.2. The
// engine hands it the *relevant* events of each epoch in the attribution
// window (oldest epoch first; out-of-budget epochs arrive as nil, i.e. ∅),
// and it returns a fixed-dimension histogram. Implementations must satisfy
// the defining property A(F₁,...,F_k) = A(F₁∩F_A,...,F_k∩F_A) — they only
// ever look at relevant events — which holds trivially here because
// selection happens before the call.
type Function interface {
	// Attribute computes the report vector from per-epoch relevant
	// events. It must return an all-zero histogram (never nil) when no
	// impressions are present, so null reports are indistinguishable in
	// shape from real ones.
	Attribute(epochs [][]events.Event) Histogram
	// OutputDim returns m, the fixed report dimension.
	OutputDim() int
}

// flattenImpressions concatenates the impressions of all epochs in time
// order. Epoch slices are already internally ordered and epochs are given
// oldest-first, so concatenation preserves (Day, ID) order. The output is
// sized in a counting pre-pass: one exact allocation instead of append
// growth, and nil when no impression exists.
func flattenImpressions(epochs [][]events.Event) []events.Event {
	n := 0
	for _, evs := range epochs {
		for _, ev := range evs {
			if ev.IsImpression() {
				n++
			}
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]events.Event, 0, n)
	for _, evs := range epochs {
		for _, ev := range evs {
			if ev.IsImpression() {
				out = append(out, ev)
			}
		}
	}
	return out
}

// Slots is the per-impression-slot attribution function of the paper's
// running example (§3.2): the conversion value is distributed by Logic over
// at most MaxImpressions most-recent relevant impressions, and slot i of the
// output holds the credit of the i-th most recent one, padded with zeros to
// a fixed dimension so the encrypted report's shape leaks nothing.
type Slots struct {
	// Logic distributes Value over the selected impressions.
	Logic Logic
	// MaxImpressions is m, the number of slots (≥ 1).
	MaxImpressions int
	// Value is the conversion value to distribute.
	Value float64
}

// Attribute implements Function.
func (s Slots) Attribute(epochs [][]events.Event) Histogram {
	h := NewHistogram(s.MaxImpressions)
	imps := flattenImpressions(epochs)
	if len(imps) > s.MaxImpressions {
		imps = imps[len(imps)-s.MaxImpressions:]
	}
	credits := s.Logic.Credits(imps, s.Value)
	// Slot 0 = most recent impression, matching ρ={(I₂,70),(0,0)}.
	for i := range credits {
		h[len(credits)-1-i] = credits[i]
	}
	return h
}

// OutputDim implements Function.
func (s Slots) OutputDim() int { return s.MaxImpressions }

// Binned is the per-campaign histogram attribution function of §4.1.3: each
// impression's credit lands in the bin of its campaign (the one-hot mapping
// H(f) of Thm. 18), letting a querier compare campaigns a₁ vs a₂ in one
// query. Impressions whose campaign is unmapped are ignored.
type Binned struct {
	// Logic distributes Value over all relevant impressions.
	Logic Logic
	// Bins maps campaign identifiers to bin indices in [0, Dim).
	Bins map[string]int
	// Dim is the histogram dimension m.
	Dim int
	// Value is the conversion value to distribute.
	Value float64
}

// Attribute implements Function.
func (b Binned) Attribute(epochs [][]events.Event) Histogram {
	h := NewHistogram(b.Dim)
	imps := flattenImpressions(epochs)
	// Only impressions with a mapped campaign participate, so credit is
	// computed over that subset.
	mapped := imps[:0:0]
	for _, imp := range imps {
		if idx, ok := b.Bins[imp.Campaign]; ok && idx >= 0 && idx < b.Dim {
			mapped = append(mapped, imp)
		}
	}
	credits := b.Logic.Credits(mapped, b.Value)
	for i, imp := range mapped {
		h[b.Bins[imp.Campaign]] += credits[i]
	}
	return h
}

// OutputDim implements Function.
func (b Binned) OutputDim() int { return b.Dim }

// ScalarValue is the attribution function used throughout the paper's
// evaluation (§6.1): a one-dimensional report that carries the conversion
// value C if any relevant impression exists in the (in-budget) window and 0
// otherwise, under last-touch semantics.
type ScalarValue struct {
	// Value is the conversion value C.
	Value float64
}

// Attribute implements Function. Presence of any relevant impression is the
// only input, so the window is scanned in place — no flattening copy on the
// evaluation workloads' hot path.
func (s ScalarValue) Attribute(epochs [][]events.Event) Histogram {
	h := NewHistogram(1)
	for _, evs := range epochs {
		for _, ev := range evs {
			if ev.IsImpression() {
				h[0] = s.Value
				return h
			}
		}
	}
	return h
}

// OutputDim implements Function.
func (ScalarValue) OutputDim() int { return 1 }

// ReportGlobalSensitivity returns Δ(ρ) for a report produced by a
// value-distributing attribution function with per-report value cap amax
// (= min(conversion value, querier cap)), output dimension m and epoch
// window length k, following Thm. 18: Amax when m = 1 or k = 1; 2·Amax when
// m ≥ 2, k ≥ 2 and the logic can shift credit between coordinates; Amax
// otherwise.
func ReportGlobalSensitivity(logic Logic, amax float64, m, k int) float64 {
	if amax < 0 {
		panic("attribution: negative value cap")
	}
	if m <= 0 || k <= 0 {
		panic("attribution: non-positive dimensions")
	}
	if m == 1 || k == 1 {
		return amax
	}
	if logic.ShiftsCredit() {
		return 2 * amax
	}
	return amax
}

// MaxEpochRemovalSensitivity returns Δmax(ρ) (Thm. 15): the largest L1
// change from emptying *any subset* of epochs. For the one-hot histogram
// functions of Thm. 18 this coincides with the global sensitivity, which is
// what the bias-measurement bound uses.
func MaxEpochRemovalSensitivity(logic Logic, amax float64, m, k int) float64 {
	return ReportGlobalSensitivity(logic, amax, m, k)
}
