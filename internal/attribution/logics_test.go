package attribution

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/events"
)

func imps(days ...int) []events.Event {
	out := make([]events.Event, len(days))
	for i, d := range days {
		out[i] = events.Event{
			ID:         events.EventID(i + 1),
			Kind:       events.KindImpression,
			Day:        d,
			Advertiser: "nike.com",
		}
	}
	return out
}

func TestLastTouchCredits(t *testing.T) {
	credits := LastTouch{}.Credits(imps(1, 5, 9), 70)
	if len(credits) != 3 || credits[0] != 0 || credits[1] != 0 || credits[2] != 70 {
		t.Fatalf("last-touch credits = %v", credits)
	}
}

func TestFirstTouchCredits(t *testing.T) {
	credits := FirstTouch{}.Credits(imps(1, 5, 9), 70)
	if credits[0] != 70 || credits[1] != 0 || credits[2] != 0 {
		t.Fatalf("first-touch credits = %v", credits)
	}
}

func TestEqualCreditCredits(t *testing.T) {
	credits := EqualCredit{}.Credits(imps(1, 5), 70)
	if credits[0] != 35 || credits[1] != 35 {
		t.Fatalf("equal-credit credits = %v", credits)
	}
}

func TestLinearDecayCredits(t *testing.T) {
	credits := LinearDecay{}.Credits(imps(1, 5, 9), 60)
	// Weights 1/6, 2/6, 3/6 of 60 → 10, 20, 30.
	if math.Abs(credits[0]-10) > 1e-9 || math.Abs(credits[1]-20) > 1e-9 || math.Abs(credits[2]-30) > 1e-9 {
		t.Fatalf("linear-decay credits = %v", credits)
	}
	// Most recent impression must earn the most.
	if !(credits[2] > credits[1] && credits[1] > credits[0]) {
		t.Fatalf("decay not increasing with recency: %v", credits)
	}
}

func TestAllLogicsEmptyInput(t *testing.T) {
	for _, l := range []Logic{LastTouch{}, FirstTouch{}, EqualCredit{}, LinearDecay{}} {
		if l.Credits(nil, 70) != nil {
			t.Fatalf("%s: empty input must give nil credits", l.Name())
		}
	}
}

func TestAllLogicsConserveValueQuick(t *testing.T) {
	logics := []Logic{LastTouch{}, FirstTouch{}, EqualCredit{}, LinearDecay{}}
	f := func(n uint8, rawValue float64) bool {
		value := math.Mod(math.Abs(rawValue), 1000)
		if math.IsNaN(value) {
			return true
		}
		count := int(n%20) + 1
		days := make([]int, count)
		for i := range days {
			days[i] = i
		}
		for _, l := range logics {
			credits := l.Credits(imps(days...), value)
			if len(credits) != count {
				return false
			}
			sum := 0.0
			for _, c := range credits {
				if c < 0 {
					return false // credits are non-negative
				}
				sum += c
			}
			if math.Abs(sum-value) > 1e-9*(1+value) {
				return false // credits must sum to the value
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftsCredit(t *testing.T) {
	for _, l := range []Logic{LastTouch{}, FirstTouch{}, EqualCredit{}, LinearDecay{}} {
		if !l.ShiftsCredit() {
			t.Fatalf("%s should report credit shifting", l.Name())
		}
	}
}

func TestLogicByName(t *testing.T) {
	for _, name := range []string{"last-touch", "first-touch", "equal-credit", "linear-decay"} {
		l, err := LogicByName(name)
		if err != nil || l.Name() != name {
			t.Fatalf("LogicByName(%q) = %v, %v", name, l, err)
		}
	}
	if _, err := LogicByName("mystery"); err == nil {
		t.Fatal("unknown logic should error")
	}
}
