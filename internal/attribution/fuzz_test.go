package attribution

import (
	"math"
	"testing"

	"repro/internal/events"
)

// FuzzAttributionLogics decodes arbitrary bytes into an impression list —
// including malformed day orderings the Logic contract says cannot happen —
// plus a conversion value (zero and negative included) and a logic
// selector, and checks the invariants every attribution logic must uphold
// regardless of input shape:
//
//   - never panic, never emit NaN/±Inf for finite inputs;
//   - one credit per impression, nil for an empty list;
//   - credits conserve the value: they sum to value (within float
//     tolerance) and, for non-negative values, each credit stays in
//     [0, value·(1+ε)];
//   - Credits is a pure function: same input, same output, input unchanged.
//
// Report clipping (clip.go) separately bounds what leaves the device, but
// these invariants are what the global-sensitivity argument (Thm. 18)
// assumes of the logics themselves.
func FuzzAttributionLogics(f *testing.F) {
	// Seeds: well-formed ascending days; duplicate days; strictly
	// descending days (malformed); a huge day gap (the Exp2 overflow
	// regime); zero and negative values.
	f.Add(uint8(0), float64(70), []byte{1, 2, 5, 9})
	f.Add(uint8(3), float64(70), []byte{9, 5, 2, 1})
	f.Add(uint8(5), float64(1), []byte{0, 0, 0})
	f.Add(uint8(4), float64(0), []byte{200, 1})
	f.Add(uint8(2), float64(-3.5), []byte{1, 255, 1})
	f.Add(uint8(1), float64(0.25), []byte{})
	// Steeply descending days under the short half-life: before TimeDecay
	// anchored its ages at the maximum day, this input overflowed Exp2 to
	// +Inf and returned all-NaN credits.
	f.Add(uint8(7), float64(70), make([]byte, 40))

	logics := []Logic{
		LastTouch{},
		FirstTouch{},
		EqualCredit{},
		LinearDecay{},
		NewPositionBased(0.4, 0.4),
		NewPositionBased(0, 0),
		NewTimeDecay(7),
		NewTimeDecay(0.5),
	}

	f.Fuzz(func(t *testing.T, which uint8, value float64, days []byte) {
		if math.IsNaN(value) || math.IsInf(value, 0) {
			t.Skip("logics are only specified for finite values")
		}
		logic := logics[int(which)%len(logics)]

		// Each input byte becomes one impression; consecutive bytes chain
		// into day deltas with sign flips, so fuzzing explores ascending,
		// duplicate, descending, and wildly out-of-order day sequences.
		if len(days) > 64 {
			days = days[:64]
		}
		imps := make([]events.Event, len(days))
		day := 0
		for i, b := range days {
			delta := int(b) - 100
			day += delta
			imps[i] = events.Event{
				ID:         events.EventID(i + 1),
				Kind:       events.KindImpression,
				Device:     7,
				Day:        day,
				Publisher:  "pub.example",
				Advertiser: "adv.example",
				Campaign:   "c",
			}
		}
		before := make([]events.Event, len(imps))
		copy(before, imps)

		credits := logic.Credits(imps, value)

		if len(imps) == 0 {
			if credits != nil {
				t.Fatalf("%s: non-nil credits %v for empty impression list", logic.Name(), credits)
			}
			return
		}
		if len(credits) != len(imps) {
			t.Fatalf("%s: %d credits for %d impressions", logic.Name(), len(credits), len(imps))
		}
		for i := range imps {
			if imps[i] != before[i] {
				t.Fatalf("%s: mutated impression %d", logic.Name(), i)
			}
		}

		const tol = 1e-9
		sum := 0.0
		absBound := math.Abs(value) * (1 + tol)
		for i, c := range credits {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatalf("%s: credit %d is %v (days %v, value %v)", logic.Name(), i, c, days, value)
			}
			if value >= 0 && (c < 0 || c > absBound) {
				t.Fatalf("%s: credit %d = %v outside [0, %v]", logic.Name(), i, c, value)
			}
			sum += c
		}
		if math.Abs(sum-value) > tol*math.Max(1, math.Abs(value)) {
			t.Fatalf("%s: credits sum to %v, want %v", logic.Name(), sum, value)
		}

		// Purity: a second evaluation is bit-identical.
		again := logic.Credits(imps, value)
		for i := range credits {
			if credits[i] != again[i] {
				t.Fatalf("%s: non-deterministic credit %d: %v then %v",
					logic.Name(), i, credits[i], again[i])
			}
		}
	})
}
