package attribution

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/events"
)

// epochsOf builds per-epoch event slices from day lists; nil entries model
// empty (or budget-denied) epochs.
func epochsOf(dayLists ...[]int) [][]events.Event {
	out := make([][]events.Event, len(dayLists))
	id := events.EventID(1)
	for i, days := range dayLists {
		for _, d := range days {
			out[i] = append(out[i], events.Event{
				ID:         id,
				Kind:       events.KindImpression,
				Day:        d,
				Advertiser: "nike.com",
			})
			id++
		}
	}
	return out
}

func TestSlotsPaperExample(t *testing.T) {
	// §3.2: impressions I₁@e1, I₂@e2, none in e3, conversion in e4.
	// e1 is budget-denied (nil), so only I₂ remains; with m=2 and
	// last-touch the report is {(I₂,70),(0,0)}.
	fn := Slots{Logic: LastTouch{}, MaxImpressions: 2, Value: 70}
	epochs := epochsOf(nil, []int{8}, nil, nil) // e1 denied→nil, I₂ on day 8
	h := fn.Attribute(epochs)
	if len(h) != 2 || h[0] != 70 || h[1] != 0 {
		t.Fatalf("report = %v, want [70 0]", h)
	}
}

func TestSlotsTwoImpressions(t *testing.T) {
	fn := Slots{Logic: EqualCredit{}, MaxImpressions: 2, Value: 70}
	epochs := epochsOf([]int{1}, []int{8})
	h := fn.Attribute(epochs)
	if h[0] != 35 || h[1] != 35 {
		t.Fatalf("report = %v, want [35 35]", h)
	}
}

func TestSlotsNullReportShape(t *testing.T) {
	fn := Slots{Logic: LastTouch{}, MaxImpressions: 2, Value: 70}
	h := fn.Attribute(nil)
	if len(h) != 2 || !h.IsZero() {
		t.Fatalf("null report = %v, want zero vector of dim 2", h)
	}
}

func TestSlotsTruncatesToMostRecent(t *testing.T) {
	fn := Slots{Logic: EqualCredit{}, MaxImpressions: 2, Value: 60}
	epochs := epochsOf([]int{1, 2, 3}) // three impressions, two slots
	h := fn.Attribute(epochs)
	// Only the two most recent (days 2, 3) participate: 30 each; slot 0
	// is the most recent.
	if h[0] != 30 || h[1] != 30 {
		t.Fatalf("report = %v", h)
	}
}

func TestSlotsMostRecentFirst(t *testing.T) {
	fn := Slots{Logic: LinearDecay{}, MaxImpressions: 3, Value: 60}
	epochs := epochsOf([]int{1, 2, 3})
	h := fn.Attribute(epochs)
	// linear-decay gives 10,20,30 oldest-first; slots are newest-first.
	if h[0] != 30 || h[1] != 20 || h[2] != 10 {
		t.Fatalf("report = %v", h)
	}
}

func TestBinnedByCampaign(t *testing.T) {
	epochs := epochsOf([]int{1, 2}, []int{8})
	epochs[0][0].Campaign = "a1"
	epochs[0][1].Campaign = "a2"
	epochs[1][0].Campaign = "a1"
	fn := Binned{
		Logic: EqualCredit{},
		Bins:  map[string]int{"a1": 0, "a2": 1},
		Dim:   2,
		Value: 90,
	}
	h := fn.Attribute(epochs)
	if h[0] != 60 || h[1] != 30 {
		t.Fatalf("binned report = %v, want [60 30]", h)
	}
}

func TestBinnedIgnoresUnmappedCampaigns(t *testing.T) {
	epochs := epochsOf([]int{1, 2})
	epochs[0][0].Campaign = "a1"
	epochs[0][1].Campaign = "unknown"
	fn := Binned{Logic: LastTouch{}, Bins: map[string]int{"a1": 0}, Dim: 1, Value: 50}
	h := fn.Attribute(epochs)
	// Last-touch over the *mapped* subset: a1 gets everything.
	if h[0] != 50 {
		t.Fatalf("binned report = %v", h)
	}
}

func TestScalarValue(t *testing.T) {
	fn := ScalarValue{Value: 42}
	if h := fn.Attribute(epochsOf([]int{3})); h[0] != 42 {
		t.Fatalf("hit report = %v", h)
	}
	if h := fn.Attribute(epochsOf(nil)); !h.IsZero() || len(h) != 1 {
		t.Fatalf("miss report = %v", h)
	}
	if fn.OutputDim() != 1 {
		t.Fatal("dim wrong")
	}
}

func TestScalarValueIgnoresConversions(t *testing.T) {
	fn := ScalarValue{Value: 42}
	conv := events.Event{Kind: events.KindConversion, Advertiser: "nike.com", Value: 10}
	h := fn.Attribute([][]events.Event{{conv}})
	if !h.IsZero() {
		t.Fatal("conversion-only epoch must yield a null report")
	}
}

func TestReportGlobalSensitivity(t *testing.T) {
	lt := LastTouch{}
	if got := ReportGlobalSensitivity(lt, 70, 1, 4); got != 70 {
		t.Fatalf("m=1: %v", got)
	}
	if got := ReportGlobalSensitivity(lt, 70, 2, 1); got != 70 {
		t.Fatalf("k=1: %v", got)
	}
	if got := ReportGlobalSensitivity(lt, 70, 2, 4); got != 140 {
		t.Fatalf("m,k≥2 shifting: %v", got)
	}
}

func TestReportGlobalSensitivityPanics(t *testing.T) {
	for _, tc := range []struct {
		amax float64
		m, k int
	}{{-1, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for %+v", tc)
				}
			}()
			ReportGlobalSensitivity(LastTouch{}, tc.amax, tc.m, tc.k)
		}()
	}
}

func TestMaxEpochRemovalSensitivityMatchesGlobal(t *testing.T) {
	// Thm. 18: for one-hot histogram attributions Δmax = Δ.
	if MaxEpochRemovalSensitivity(LastTouch{}, 70, 2, 4) != ReportGlobalSensitivity(LastTouch{}, 70, 2, 4) {
		t.Fatal("Δmax should equal Δ for last-touch")
	}
}

// Property: ‖A(F)‖₁ ≤ value for every function/logic combination — the
// individual sensitivity of a single-epoch report never exceeds the
// conversion value (the basis for the single-epoch optimization).
func TestAttributionNormBoundedQuick(t *testing.T) {
	f := func(dayBytes []uint8, rawValue float64, dim uint8) bool {
		value := math.Mod(math.Abs(rawValue), 1000)
		if math.IsNaN(value) {
			return true
		}
		m := int(dim%4) + 1
		days := make([]int, len(dayBytes))
		for i, b := range dayBytes {
			days[i] = int(b)
		}
		epochs := epochsOf(days)
		fns := []Function{
			Slots{Logic: LastTouch{}, MaxImpressions: m, Value: value},
			Slots{Logic: EqualCredit{}, MaxImpressions: m, Value: value},
			ScalarValue{Value: value},
		}
		for _, fn := range fns {
			h := fn.Attribute(epochs)
			if len(h) != fn.OutputDim() {
				return false
			}
			if h.L1() > value*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: attribution output is insensitive to empty epochs being nil vs
// absent-but-present-as-empty — A treats ∅ uniformly.
func TestNilVsEmptyEpochEquivalenceQuick(t *testing.T) {
	f := func(days []uint8) bool {
		dayInts := make([]int, len(days))
		for i, d := range days {
			dayInts[i] = int(d)
		}
		fn := Slots{Logic: LastTouch{}, MaxImpressions: 2, Value: 10}
		withNil := fn.Attribute(append(epochsOf(dayInts), nil))
		withEmpty := fn.Attribute(append(epochsOf(dayInts), []events.Event{}))
		for i := range withNil {
			if withNil[i] != withEmpty[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
