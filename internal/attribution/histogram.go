// Package attribution implements the paper's attribution functions
// (§4.1.2): querier-chosen logics (last-touch, first-touch, equal-credit,
// linear-decay) that distribute a conversion's value over the relevant
// impressions found in an epoch window, produce a fixed-dimension report
// vector, and are clipped so the report's L1 norm never exceeds the
// querier-declared report global sensitivity.
package attribution

import "math"

// Histogram is the m-dimensional output vector of an attribution function
// A : P(I∪C)^k → R^m. Depending on the function it is either a
// per-impression-slot vector (the §3.2 example's ρ = {(I₂,70),(0,0)}) or a
// per-campaign-bin histogram (the a₁-vs-a₂ comparison of §4.1.3).
type Histogram []float64

// NewHistogram returns an all-zero histogram of dimension m — the value of
// A(∅), and the padding used for null reports.
func NewHistogram(m int) Histogram {
	if m <= 0 {
		panic("attribution: non-positive histogram dimension")
	}
	return make(Histogram, m)
}

// L1 returns the L1 norm ‖h‖₁ = Σ|hᵢ| — the sensitivity norm for the
// Laplace mechanism and the paper's DP theorem.
func (h Histogram) L1() float64 {
	sum := 0.0
	for _, v := range h {
		sum += math.Abs(v)
	}
	return sum
}

// L2 returns the L2 norm, the sensitivity norm a Gaussian-mechanism
// deployment would use (the p-norm generalization of §3.3).
func (h Histogram) L2() float64 {
	sum := 0.0
	for _, v := range h {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Norm returns the p-norm for p ∈ {1, 2}.
func (h Histogram) Norm(p int) float64 {
	switch p {
	case 1:
		return h.L1()
	case 2:
		return h.L2()
	default:
		panic("attribution: only L1 and L2 norms are supported")
	}
}

// Total returns the sum of coordinates (the quantity a summation query
// aggregates).
func (h Histogram) Total() float64 {
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	return sum
}

// Add accumulates other into h coordinate-wise. It panics on dimension
// mismatch: the aggregation service only ever sums reports from the same
// query, which share a dimension by construction.
func (h Histogram) Add(other Histogram) {
	if len(h) != len(other) {
		panic("attribution: histogram dimension mismatch")
	}
	for i, v := range other {
		h[i] += v
	}
}

// Clone returns an independent copy.
func (h Histogram) Clone() Histogram {
	return append(Histogram(nil), h...)
}

// IsZero reports whether every coordinate is exactly zero (a null report).
func (h Histogram) IsZero() bool {
	for _, v := range h {
		if v != 0 {
			return false
		}
	}
	return true
}
