package attribution

import (
	"fmt"

	"repro/internal/events"
)

// Logic distributes a conversion's value over a time-ordered list of
// relevant impressions. It is the policy knob of the attribution function:
// last-touch gives all credit to the most recent impression, equal-credit
// splits it, and so on (§2.1).
type Logic interface {
	// Credits returns one credit per impression in imps (aligned by
	// index, imps in ascending time order) summing to at most value.
	// It must return nil for an empty impression list.
	Credits(imps []events.Event, value float64) []float64
	// Name identifies the logic in experiment output.
	Name() string
	// ShiftsCredit reports whether removing events can move credit
	// between output coordinates (rather than only removing it). It
	// selects between the Δ = Amax and Δ = 2·Amax cases of the report
	// global-sensitivity formula (Thm. 18): last-touch shifts (removing
	// the last impression promotes an earlier one), equal-credit does
	// not.
	ShiftsCredit() bool
}

// LastTouch assigns the full conversion value to the most recent relevant
// impression — the default policy of ARA and of the paper's evaluation.
type LastTouch struct{}

// Credits implements Logic.
func (LastTouch) Credits(imps []events.Event, value float64) []float64 {
	if len(imps) == 0 {
		return nil
	}
	credits := make([]float64, len(imps))
	credits[len(imps)-1] = value
	return credits
}

// Name implements Logic.
func (LastTouch) Name() string { return "last-touch" }

// ShiftsCredit implements Logic: removing the last impression shifts the
// whole value to the previous one.
func (LastTouch) ShiftsCredit() bool { return true }

// FirstTouch assigns the full conversion value to the earliest relevant
// impression.
type FirstTouch struct{}

// Credits implements Logic.
func (FirstTouch) Credits(imps []events.Event, value float64) []float64 {
	if len(imps) == 0 {
		return nil
	}
	credits := make([]float64, len(imps))
	credits[0] = value
	return credits
}

// Name implements Logic.
func (FirstTouch) Name() string { return "first-touch" }

// ShiftsCredit implements Logic.
func (FirstTouch) ShiftsCredit() bool { return true }

// EqualCredit splits the conversion value evenly across all relevant
// impressions (the paper's "equal credit" policy).
type EqualCredit struct{}

// Credits implements Logic.
func (EqualCredit) Credits(imps []events.Event, value float64) []float64 {
	if len(imps) == 0 {
		return nil
	}
	credits := make([]float64, len(imps))
	share := value / float64(len(imps))
	for i := range credits {
		credits[i] = share
	}
	return credits
}

// Name implements Logic.
func (EqualCredit) Name() string { return "equal-credit" }

// ShiftsCredit implements Logic: removing one impression renormalizes the
// share of the others, moving credit between coordinates.
func (EqualCredit) ShiftsCredit() bool { return true }

// LinearDecay weights impressions by recency: the i-th of n impressions
// (1-based, oldest first) receives weight i/Σj, so newer impressions earn
// proportionally more.
type LinearDecay struct{}

// Credits implements Logic.
func (LinearDecay) Credits(imps []events.Event, value float64) []float64 {
	n := len(imps)
	if n == 0 {
		return nil
	}
	credits := make([]float64, n)
	total := float64(n*(n+1)) / 2
	for i := range credits {
		credits[i] = value * float64(i+1) / total
	}
	return credits
}

// Name implements Logic.
func (LinearDecay) Name() string { return "linear-decay" }

// ShiftsCredit implements Logic.
func (LinearDecay) ShiftsCredit() bool { return true }

// LogicByName returns the logic registered under name; the CLI uses it to
// parse flags.
func LogicByName(name string) (Logic, error) {
	switch name {
	case "last-touch":
		return LastTouch{}, nil
	case "first-touch":
		return FirstTouch{}, nil
	case "equal-credit":
		return EqualCredit{}, nil
	case "linear-decay":
		return LinearDecay{}, nil
	case "position-based":
		return NewPositionBased(0.4, 0.4), nil
	case "time-decay":
		return NewTimeDecay(7), nil
	default:
		return nil, fmt.Errorf("attribution: unknown logic %q", name)
	}
}
