package attribution

import (
	"math"

	"repro/internal/events"
)

// PositionBased is the U-shaped industry policy: the first and last
// impressions each receive FirstWeight and LastWeight of the value, and the
// remainder is split evenly among the middle impressions. The common 40/20/40
// configuration is NewPositionBased(0.4, 0.4).
type PositionBased struct {
	// FirstWeight and LastWeight are the endpoint shares; they must be
	// non-negative and sum to at most 1.
	FirstWeight, LastWeight float64
}

// NewPositionBased returns a validated position-based logic. It panics on
// negative weights or weights summing above 1.
func NewPositionBased(first, last float64) PositionBased {
	if first < 0 || last < 0 || first+last > 1+1e-12 {
		panic("attribution: invalid position-based weights")
	}
	return PositionBased{FirstWeight: first, LastWeight: last}
}

// Credits implements Logic.
func (p PositionBased) Credits(imps []events.Event, value float64) []float64 {
	n := len(imps)
	if n == 0 {
		return nil
	}
	credits := make([]float64, n)
	switch n {
	case 1:
		credits[0] = value
	case 2:
		// No middle: endpoints share proportionally to their weights.
		total := p.FirstWeight + p.LastWeight
		if total == 0 {
			credits[0] = value / 2
			credits[1] = value / 2
		} else {
			credits[0] = value * p.FirstWeight / total
			credits[1] = value * p.LastWeight / total
		}
	default:
		credits[0] = value * p.FirstWeight
		credits[n-1] = value * p.LastWeight
		middle := value * (1 - p.FirstWeight - p.LastWeight) / float64(n-2)
		for i := 1; i < n-1; i++ {
			credits[i] = middle
		}
	}
	return credits
}

// Name implements Logic.
func (PositionBased) Name() string { return "position-based" }

// ShiftsCredit implements Logic.
func (PositionBased) ShiftsCredit() bool { return true }

// TimeDecay weights impressions by exponential recency relative to the
// *most recent* impression: an impression h half-lives older than the newest
// one receives 2^−h of its weight before normalization. This is the policy
// ad platforms call "time decay" (7-day half-life is the common default).
type TimeDecay struct {
	// HalfLifeDays is the decay half-life in days (> 0).
	HalfLifeDays float64
}

// NewTimeDecay returns a validated time-decay logic.
func NewTimeDecay(halfLifeDays float64) TimeDecay {
	if halfLifeDays <= 0 {
		panic("attribution: non-positive half-life")
	}
	return TimeDecay{HalfLifeDays: halfLifeDays}
}

// Credits implements Logic.
func (d TimeDecay) Credits(imps []events.Event, value float64) []float64 {
	n := len(imps)
	if n == 0 {
		return nil
	}
	// The anchor is the maximum day, not imps[n-1]: for the documented
	// ascending-order input they coincide, but an out-of-order list would
	// otherwise produce negative ages, overflow Exp2 to +Inf, and turn
	// every credit into NaN (Inf/Inf). Anchoring at the maximum keeps all
	// ages ≥ 0, so weights stay in (0, 1] and the total is ≥ 1.
	newest := imps[0].Day
	for _, imp := range imps[1:] {
		if imp.Day > newest {
			newest = imp.Day
		}
	}
	weights := make([]float64, n)
	total := 0.0
	for i, imp := range imps {
		age := float64(newest - imp.Day)
		weights[i] = math.Exp2(-age / d.HalfLifeDays)
		total += weights[i]
	}
	credits := make([]float64, n)
	for i := range credits {
		credits[i] = value * weights[i] / total
	}
	return credits
}

// Name implements Logic.
func (TimeDecay) Name() string { return "time-decay" }

// ShiftsCredit implements Logic.
func (TimeDecay) ShiftsCredit() bool { return true }
