package attribution

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClipL1NoOpWhenUnderCap(t *testing.T) {
	h := Histogram{3, 4}
	ClipL1(h, 10)
	if h[0] != 3 || h[1] != 4 {
		t.Fatalf("under-cap clip changed histogram: %v", h)
	}
}

func TestClipL1ScalesToCap(t *testing.T) {
	h := Histogram{30, 70}
	ClipL1(h, 50)
	if math.Abs(h.L1()-50) > 1e-9 {
		t.Fatalf("clipped norm = %v", h.L1())
	}
	// Relative attribution preserved: 30:70 ratio.
	if math.Abs(h[0]/h[1]-30.0/70.0) > 1e-9 {
		t.Fatalf("clip distorted ratio: %v", h)
	}
}

func TestClipL1ZeroHistogram(t *testing.T) {
	h := Histogram{0, 0}
	ClipL1(h, 0)
	if !h.IsZero() {
		t.Fatal("zero histogram changed")
	}
}

func TestClipL1NegativeCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative cap did not panic")
		}
	}()
	ClipL1(Histogram{1}, -1)
}

func TestClipNormL2(t *testing.T) {
	h := Histogram{3, 4} // L2 = 5
	ClipNorm(h, 1, 2)
	if math.Abs(h.L2()-1) > 1e-9 {
		t.Fatalf("L2 clip = %v (norm %v)", h, h.L2())
	}
}

func TestClipL1BoundsQuick(t *testing.T) {
	f := func(raw []float64, rawCap float64) bool {
		cap := math.Mod(math.Abs(rawCap), 1e6)
		if math.IsNaN(cap) {
			return true
		}
		h := make(Histogram, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			h = append(h, math.Mod(v, 1e6))
		}
		before := h.Clone()
		ClipL1(h, cap)
		if h.L1() > cap*(1+1e-9)+1e-9 && before.L1() > cap {
			return false // still over cap
		}
		if before.L1() <= cap {
			for i := range h {
				if h[i] != before[i] {
					return false // clip must be a no-op under cap
				}
			}
		}
		// Signs preserved.
		for i := range h {
			if before[i]*h[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
