package attribution

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPositionBased402040(t *testing.T) {
	p := NewPositionBased(0.4, 0.4)
	credits := p.Credits(imps(1, 5, 9, 12), 100)
	// 40 / 10 / 10 / 40.
	want := []float64{40, 10, 10, 40}
	for i := range want {
		if math.Abs(credits[i]-want[i]) > 1e-9 {
			t.Fatalf("credits = %v, want %v", credits, want)
		}
	}
}

func TestPositionBasedSmallCounts(t *testing.T) {
	p := NewPositionBased(0.4, 0.4)
	if c := p.Credits(imps(3), 100); c[0] != 100 {
		t.Fatalf("single impression credits = %v", c)
	}
	c := p.Credits(imps(3, 8), 100)
	if math.Abs(c[0]-50) > 1e-9 || math.Abs(c[1]-50) > 1e-9 {
		t.Fatalf("two-impression credits = %v", c)
	}
	// Asymmetric endpoints share proportionally.
	q := NewPositionBased(0.3, 0.6)
	c = q.Credits(imps(3, 8), 90)
	if math.Abs(c[0]-30) > 1e-9 || math.Abs(c[1]-60) > 1e-9 {
		t.Fatalf("asymmetric two-impression credits = %v", c)
	}
}

func TestPositionBasedZeroEndpoints(t *testing.T) {
	p := NewPositionBased(0, 0)
	c := p.Credits(imps(1, 2), 10)
	if c[0] != 5 || c[1] != 5 {
		t.Fatalf("zero-endpoint credits = %v", c)
	}
}

func TestPositionBasedPanics(t *testing.T) {
	for _, tc := range [][2]float64{{-0.1, 0.4}, {0.4, -0.1}, {0.6, 0.6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("weights %v did not panic", tc)
				}
			}()
			NewPositionBased(tc[0], tc[1])
		}()
	}
}

func TestTimeDecayHalving(t *testing.T) {
	d := NewTimeDecay(7)
	// Two impressions exactly one half-life apart: 1/3 vs 2/3.
	credits := d.Credits(imps(0, 7), 90)
	if math.Abs(credits[0]-30) > 1e-9 || math.Abs(credits[1]-60) > 1e-9 {
		t.Fatalf("credits = %v, want [30 60]", credits)
	}
}

func TestTimeDecaySameDayUniform(t *testing.T) {
	d := NewTimeDecay(7)
	credits := d.Credits(imps(5, 5, 5), 90)
	for _, c := range credits {
		if math.Abs(c-30) > 1e-9 {
			t.Fatalf("same-day credits = %v", credits)
		}
	}
}

func TestTimeDecayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero half-life did not panic")
		}
	}()
	NewTimeDecay(0)
}

func TestExtraLogicsConserveValueQuick(t *testing.T) {
	logics := []Logic{NewPositionBased(0.4, 0.4), NewTimeDecay(7), NewPositionBased(0.1, 0.2)}
	f := func(dayBytes []uint8, rawValue float64) bool {
		value := math.Mod(math.Abs(rawValue), 1000)
		if math.IsNaN(value) || len(dayBytes) == 0 {
			return true
		}
		days := make([]int, len(dayBytes))
		for i, b := range dayBytes {
			days[i] = int(b)
		}
		// Credits expect time order.
		for i := 1; i < len(days); i++ {
			if days[i] < days[i-1] {
				days[i] = days[i-1]
			}
		}
		for _, l := range logics {
			credits := l.Credits(imps(days...), value)
			sum := 0.0
			for _, c := range credits {
				if c < 0 {
					return false
				}
				sum += c
			}
			if math.Abs(sum-value) > 1e-9*(1+value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeDecayRecencyMonotoneQuick(t *testing.T) {
	d := NewTimeDecay(7)
	f := func(gaps []uint8) bool {
		if len(gaps) == 0 {
			return true
		}
		days := make([]int, len(gaps))
		acc := 0
		for i, g := range gaps {
			acc += int(g % 10)
			days[i] = acc
		}
		credits := d.Credits(imps(days...), 100)
		for i := 1; i < len(credits); i++ {
			if credits[i] < credits[i-1]-1e-9 {
				return false // newer must earn at least as much
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExtendedLogicByName(t *testing.T) {
	for _, name := range []string{"position-based", "time-decay"} {
		l, err := LogicByName(name)
		if err != nil || l.Name() != name {
			t.Fatalf("LogicByName(%q) = %v, %v", name, l, err)
		}
	}
}
