package events

// PublicView models the querier's public-event domain P ⊆ I ∪ C (§4.1.1):
// the events the querier can reliably observe first-party. For an advertiser
// this is the conversions on its own site; for a publisher/ad-tech it is the
// impressions it served. Modelling P explicitly is what lets Cookie Monster
// (1) spend zero budget in the conversion's own epoch when queries only use
// public events through their report identifier (Thm. 1 case 1), and
// (2) state the within-site unlinkability guarantee (Thm. 2).
type PublicView struct {
	// Querier is the site whose viewpoint this is.
	Querier Site
	// AsAdvertiser marks conversions on Querier's site public.
	AsAdvertiser bool
	// AsPublisher marks impressions served on Querier's site public.
	AsPublisher bool
}

// AdvertiserView returns the public view of an advertiser querier: P = C_q,
// all conversions on its own site (the Nike perspective of §4.1.3).
func AdvertiserView(q Site) PublicView {
	return PublicView{Querier: q, AsAdvertiser: true}
}

// PublisherView returns the public view of a publisher/ad-tech querier:
// P = I_q, all impressions served on its site (the Meta perspective of
// Appendix A).
func PublisherView(q Site) PublicView {
	return PublicView{Querier: q, AsPublisher: true}
}

// Contains reports whether the event is in the querier's public domain P.
func (p PublicView) Contains(ev Event) bool {
	switch ev.Kind {
	case KindConversion:
		return p.AsAdvertiser && ev.Advertiser == p.Querier
	case KindImpression:
		return p.AsPublisher && ev.Publisher == p.Querier
	default:
		return false
	}
}

// Restrict returns F ∩ P, the public part of a device-epoch record.
func (p PublicView) Restrict(evs []Event) []Event {
	var out []Event
	for _, ev := range evs {
		if p.Contains(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// Union merges two public views, modelling colluding queriers whose joint
// side information is P = P₁ ∪ ... ∪ Pₙ (Thm. 10). The merged view contains
// an event if either constituent does.
type Union []PublicView

// Contains reports whether any constituent view contains ev.
func (u Union) Contains(ev Event) bool {
	for _, p := range u {
		if p.Contains(ev) {
			return true
		}
	}
	return false
}
