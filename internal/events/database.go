package events

import (
	"slices"
	"sort"
)

// DeviceEpoch is a device-epoch record x = (d, e, F): the events F logged on
// device d during epoch e. Events are kept sorted by (Day, ID) so that
// recency-based attribution logics are deterministic.
type DeviceEpoch struct {
	Device DeviceID
	Epoch  Epoch
	Events []Event
}

// Database is the paper's database D: a set of device-epoch records in
// which each (device, epoch) pair appears at most once. It is the
// simulator's stand-in for the union of all on-device event stores; the
// on-device engine only ever reads its own device's rows, preserving the
// paper's trust model.
//
// A Database has two phases. While loading, the store is segmented by epoch:
// Record appends into the owning segment's per-device record (interning the
// scan-key column as it goes — see columnar.go) and EvictBefore reclaims by
// dropping whole epoch segments, O(1) per evicted epoch. No reader or writer
// may run concurrently with either, but concurrent *read-only* phases are
// fine as long as they never overlap a mutation — the streaming service
// relies on exactly this, alternating a single-writer ingest phase with a
// fan-out read phase on its day clock.
//
// Freeze ends the loading phase: it compiles every record into one
// contiguous columnar arena — events, scan keys, and per-(device, epoch)
// {off, len} spans in a handful of flat allocations — and from then on the
// database is immutable and safe for any number of concurrent readers with
// no phase discipline at all (the batch fleet engine reads it from every
// worker). EpochEvents on the report hot path becomes one map lookup plus a
// bounds-checked span index.
type Database struct {
	epochs map[Epoch]*epochSegment // loading phase; nil once frozen
	col    *colStore               // frozen phase; nil while loading
	intern intern
	nextID EventID
	frozen bool
	// deferredKeys marks that RecordAll skipped building the mutable
	// per-record key columns (the bulk-load path defers them to Freeze);
	// selector compilation falls back to interface dispatch until then.
	deferredKeys bool
	// dirty, when tracking is enabled, holds every (device, epoch) record
	// touched since the last DrainDirty — the incremental checkpointer's
	// record-level dirty set. nil when tracking is off, so the streaming
	// ingest path pays nothing by default.
	dirty map[DeviceEpochKey]struct{}
}

// DeviceEpochKey identifies one device-epoch record in the dirty set.
type DeviceEpochKey struct {
	Device DeviceID
	Epoch  Epoch
}

// TrackDirty enables record-level dirty tracking: from now on every Record
// or RecordAll marks its (device, epoch) key until DrainDirty collects it.
// Only meaningful during the loading phase.
func (db *Database) TrackDirty() {
	if db.dirty == nil {
		db.dirty = make(map[DeviceEpochKey]struct{})
	}
}

// DrainDirty returns the keys dirtied since the last drain, sorted by
// (device, epoch) for deterministic serialization, and resets the set.
// Records evicted since they were dirtied are already pruned (EvictBefore
// maintains the set), so every returned key is live.
func (db *Database) DrainDirty() []DeviceEpochKey {
	if len(db.dirty) == 0 {
		return nil
	}
	keys := make([]DeviceEpochKey, 0, len(db.dirty))
	for k := range db.dirty {
		keys = append(keys, k)
	}
	clear(db.dirty)
	slices.SortFunc(keys, func(a, b DeviceEpochKey) int {
		switch {
		case a.Device != b.Device:
			if a.Device < b.Device {
				return -1
			}
			return 1
		case a.Epoch < b.Epoch:
			return -1
		case a.Epoch > b.Epoch:
			return 1
		}
		return 0
	})
	return keys
}

// epochSegment holds one epoch's device records — the retention unit: the
// streaming service's horizon advance drops segments whole. Records are map
// values (slice headers, not pointers), so a record costs no allocation of
// its own.
type epochSegment struct {
	byDevice map[DeviceID]record
}

// record is one mutable device-epoch record: events in (Day, ID) order with
// their parallel scan keys. keys is either parallel to evs or nil (deferred
// to Freeze — see RecordAll).
type record struct {
	evs  []Event
	keys []evKey
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{epochs: make(map[Epoch]*epochSegment), intern: newIntern()}
}

// NextEventID mints a fresh unique event identifier.
func (db *Database) NextEventID() EventID {
	db.nextID++
	return db.nextID
}

// Record appends an event to the device-epoch record for (ev.Device, epoch).
// Events within an epoch are kept in (Day, ID) order; the append-at-end case
// (datasets are generated in time order) is O(1), and an out-of-order event
// finds its slot by binary search instead of the old linear bubble — O(log n)
// compares plus one memmove, so a fully shuffled batch costs O(n log n)
// compares rather than O(n²).
func (db *Database) Record(epoch Epoch, ev Event) {
	if db.frozen {
		panic("events: Record on frozen database")
	}
	seg := db.segment(epoch)
	rec := seg.byDevice[ev.Device]
	rec.insert(ev, &db.intern)
	seg.byDevice[ev.Device] = rec
	if db.dirty != nil {
		db.dirty[DeviceEpochKey{ev.Device, epoch}] = struct{}{}
	}
}

// segment returns (creating if needed) the epoch's segment. Caller has
// checked the phase.
func (db *Database) segment(epoch Epoch) *epochSegment {
	seg := db.epochs[epoch]
	if seg == nil {
		seg = &epochSegment{byDevice: make(map[DeviceID]record)}
		db.epochs[epoch] = seg
	}
	return seg
}

// insert places ev at its (Day, ID) position, maintaining the parallel key
// column unless this record's keys are deferred. Equal keys keep arrival
// order, matching the old bubble's stability exactly.
func (r *record) insert(ev Event, in *intern) {
	n := len(r.evs)
	keyed := r.keys != nil || n == 0
	if n == 0 || !ev.Before(r.evs[n-1]) {
		r.evs = append(r.evs, ev)
		if keyed {
			r.keys = append(r.keys, in.keyOf(ev))
		}
		return
	}
	i := sort.Search(n, func(i int) bool { return ev.Before(r.evs[i]) })
	r.evs = slices.Insert(r.evs, i, ev)
	if keyed {
		r.keys = slices.Insert(r.keys, i, in.keyOf(ev))
	}
}

// RecordAll bulk-records a batch of day-stamped events under the given epoch
// length, into a database that stays loadable afterwards — the general bulk
// path for callers that keep mutating or evicting after the load. (A
// load-once-then-freeze caller wants NewFrozen instead, which skips the
// mutable store entirely and is what Dataset.Build uses.) The batch is
// permuted (via an index sort; the caller's slice is never reordered) into
// (device, day, ID, arrival) order, which makes every device-epoch record a
// contiguous run: each record is then located once and grown once to its
// exact size, instead of paying a map lookup and an insertion search per
// event. The resulting records are identical to a Record loop over the same
// batch.
//
// RecordAll defers the per-record scan-key columns to Freeze (they would be
// a second allocation per record); until then selector compilation falls
// back to interface dispatch. The streaming service's per-event Record path
// keeps its keys inline and is unaffected.
func (db *Database) RecordAll(epochDays int, evs []Event) {
	if db.frozen {
		panic("events: RecordAll on frozen database")
	}
	if len(evs) == 0 {
		return
	}
	db.deferredKeys = true
	idx := sortByDeviceDayID(evs)
	var lastEpoch Epoch
	var lastSeg *epochSegment
	for i := 0; i < len(idx); {
		first := &evs[idx[i]]
		epoch := EpochOfDay(first.Day, epochDays)
		j := i + 1
		for j < len(idx) {
			ev := &evs[idx[j]]
			if ev.Device != first.Device || EpochOfDay(ev.Day, epochDays) != epoch {
				break
			}
			j++
		}
		if lastSeg == nil || epoch != lastEpoch {
			lastSeg = db.segment(epoch)
			lastEpoch = epoch
		}
		rec := lastSeg.byDevice[first.Device]
		rec.keys = nil // deferred; Freeze rebuilds the column
		if n := len(rec.evs); n > 0 && first.Before(rec.evs[n-1]) {
			// The record predates this batch and the run doesn't append
			// cleanly after it: per-event insertion (keys stay deferred).
			for _, k := range idx[i:j] {
				rec.insert(evs[k], &db.intern)
			}
		} else {
			rec.evs = slices.Grow(rec.evs, j-i)
			for _, k := range idx[i:j] {
				rec.evs = append(rec.evs, evs[k])
			}
		}
		lastSeg.byDevice[first.Device] = rec
		if db.dirty != nil {
			db.dirty[DeviceEpochKey{first.Device, epoch}] = struct{}{}
		}
		i = j
	}
}

// compareEvents orders by (Day, ID) — Event.Before as a three-way compare.
func compareEvents(a, b Event) int {
	switch {
	case a.Before(b):
		return -1
	case b.Before(a):
		return 1
	}
	return 0
}

// Freeze ends the loading phase: it compiles every epoch segment into the
// columnar arena layout behind EpochEvents, WindowEvents, and the compiled
// selector scans, releases the segment maps, and marks the database
// immutable. After Freeze the read path is safe for concurrent use; Record
// panics. Freezing an already-frozen database is a no-op.
func (db *Database) Freeze() {
	if db.frozen {
		return
	}
	db.col = db.compileColumns()
	db.epochs = nil
	db.frozen = true
}

// Frozen reports whether the database has been frozen.
func (db *Database) Frozen() bool { return db.frozen }

// compileColumns lays the mutable store out as the frozen arena: records
// sorted by (device, epoch), events and keys concatenated (key columns a
// bulk loader deferred are computed here), each record a span, each device
// a dense span run. The mutable store is released as it is copied, so a
// collection triggered mid-compile can already reclaim the moved records.
func (db *Database) compileColumns() *colStore {
	type recRef struct {
		dev DeviceID
		e   Epoch
		rec record
	}
	var refs []recRef
	total := 0
	for e, seg := range db.epochs {
		for d, rec := range seg.byDevice {
			refs = append(refs, recRef{d, e, rec})
			total += len(rec.evs)
		}
	}
	db.epochs = nil // refs own the record headers now
	slices.SortFunc(refs, func(a, b recRef) int {
		switch {
		case a.dev != b.dev:
			if a.dev < b.dev {
				return -1
			}
			return 1
		case a.e < b.e:
			return -1
		case a.e > b.e:
			return 1
		}
		return 0
	})

	col := &colStore{
		evs:     make([]Event, 0, total),
		keys:    make([]evKey, 0, total),
		records: len(refs),
	}
	if len(refs) > 0 {
		// Size the device map from the device count, not the record count
		// (maps never shrink, and a long-lived fleet has many records per
		// device). refs is device-grouped after the sort above.
		devices := 1
		for k := 1; k < len(refs); k++ {
			if refs[k].dev != refs[k-1].dev {
				devices++
			}
		}
		col.dev = make(map[DeviceID]devIndex, devices)
	}
	i := 0
	for i < len(refs) {
		j := i
		for j < len(refs) && refs[j].dev == refs[i].dev {
			j++
		}
		first, last := refs[i].e, refs[j-1].e
		di := devIndex{
			base:  uint32(len(col.spans)),
			count: uint32(int64(last-first) + 1),
			first: first,
		}
		next := i
		for e := first; e <= last; e++ {
			var sp span
			if next < j && refs[next].e == e {
				rec := &refs[next].rec
				sp = span{off: uint32(len(col.evs)), n: uint32(len(rec.evs))}
				col.evs = append(col.evs, rec.evs...)
				if rec.keys != nil {
					col.keys = append(col.keys, rec.keys...)
				} else {
					for _, ev := range rec.evs {
						col.keys = append(col.keys, db.intern.keyOf(ev))
					}
				}
				rec.evs, rec.keys = nil, nil // progressive release
				next++
			}
			col.spans = append(col.spans, sp)
		}
		col.devs = append(col.devs, refs[i].dev)
		col.dev[refs[i].dev] = di
		i = j
	}
	return col
}

// EvictBefore removes every device-epoch record with epoch < first,
// releasing the events' memory. It is the streaming ingestion's retention
// primitive: a day-ordered event stream never revisits old epochs, and once
// no in-flight query window can reach below first, those records are dead
// weight. The epoch-segmented layout makes this a map sweep that drops each
// evicted epoch's whole segment at once — O(resident epochs) per call, not
// O(devices × epochs). Only valid during the loading phase — a frozen
// database is immutable — and, like Record, not safe for concurrent use.
// It returns the number of device-epoch records removed.
func (db *Database) EvictBefore(first Epoch) int {
	if db.frozen {
		panic("events: EvictBefore on frozen database")
	}
	removed := 0
	for e, seg := range db.epochs {
		if e < first {
			removed += len(seg.byDevice)
			delete(db.epochs, e)
		}
	}
	for k := range db.dirty {
		if k.Epoch < first {
			delete(db.dirty, k)
		}
	}
	return removed
}

// EpochEvents returns the events of device d at epoch e (the paper's D^e_d),
// or nil when the device-epoch is empty. The returned slice is shared;
// callers must not modify it. On a frozen database this is one map lookup
// plus a span index into the arena — the hottest read in report generation.
func (db *Database) EpochEvents(d DeviceID, e Epoch) []Event {
	if db.col != nil {
		return db.col.epochEvents(d, e)
	}
	seg := db.epochs[e]
	if seg == nil {
		return nil
	}
	rec, ok := seg.byDevice[d]
	if !ok {
		return nil
	}
	return rec.evs
}

// WindowEvents returns the per-epoch event sets of device d over the epoch
// window [first, last] (the paper's D^E_d), indexed by position in the
// window. Empty epochs yield nil entries; the result always has
// last-first+1 entries so callers can align it with EpochsIn(first, last).
func (db *Database) WindowEvents(d DeviceID, first, last Epoch) [][]Event {
	if last < first {
		return nil
	}
	return db.WindowEventsInto(nil, d, first, last)
}

// WindowEventsInto is WindowEvents writing into a reusable buffer: buf is
// resized (reallocating only when capacity is short) to last-first+1 entries
// and returned. The report hot path calls this once per conversion, so
// reusing one buffer per worker removes a per-report allocation. The entry
// slices are shared with the database; callers must not modify them.
func (db *Database) WindowEventsInto(buf [][]Event, d DeviceID, first, last Epoch) [][]Event {
	if last < first {
		return buf[:0]
	}
	k := int(last-first) + 1
	var out [][]Event
	if cap(buf) < k {
		out = make([][]Event, k)
	} else {
		out = buf[:k]
		for i := range out {
			out[i] = nil
		}
	}
	if db.col != nil {
		di, ok := db.col.dev[d]
		if !ok {
			return out
		}
		for e := first; e <= last; e++ {
			i := int64(e) - int64(di.first)
			if i < 0 || i >= int64(di.count) {
				continue
			}
			if sp := db.col.spans[int64(di.base)+i]; sp.n > 0 {
				out[e-first] = db.col.evs[sp.off : sp.off+sp.n : sp.off+sp.n]
			}
		}
		return out
	}
	for e := first; e <= last; e++ {
		if seg := db.epochs[e]; seg != nil {
			if rec, ok := seg.byDevice[d]; ok {
				out[e-first] = rec.evs
			}
		}
	}
	return out
}

// Devices returns all device IDs present in the database, in ascending
// order (deterministic iteration for experiments). On a frozen database
// this is a copy of the precompiled device list.
func (db *Database) Devices() []DeviceID {
	if db.col != nil {
		return slices.Clone(db.col.devs)
	}
	seen := make(map[DeviceID]struct{})
	for _, seg := range db.epochs {
		for d := range seg.byDevice {
			seen[d] = struct{}{}
		}
	}
	out := make([]DeviceID, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	slices.Sort(out)
	return out
}

// DeviceEpochs returns the populated epochs of a device in ascending order.
func (db *Database) DeviceEpochs(d DeviceID) []Epoch {
	if db.col != nil {
		di, ok := db.col.dev[d]
		if !ok {
			return nil
		}
		var out []Epoch
		for i := uint32(0); i < di.count; i++ {
			if db.col.spans[di.base+i].n > 0 {
				out = append(out, di.first+Epoch(i))
			}
		}
		return out
	}
	var out []Epoch
	for e, seg := range db.epochs {
		if _, ok := seg.byDevice[d]; ok {
			out = append(out, e)
		}
	}
	if out == nil {
		return nil
	}
	slices.Sort(out)
	return out
}

// NumDevices returns the number of devices with at least one event.
func (db *Database) NumDevices() int {
	if db.col != nil {
		return len(db.col.devs)
	}
	return len(db.Devices())
}

// NumRecords returns the number of non-empty device-epoch records |D|.
func (db *Database) NumRecords() int {
	if db.col != nil {
		return db.col.records
	}
	n := 0
	for _, seg := range db.epochs {
		n += len(seg.byDevice)
	}
	return n
}

// NumEvents returns the total number of events stored.
func (db *Database) NumEvents() int {
	if db.col != nil {
		return len(db.col.evs)
	}
	n := 0
	for _, seg := range db.epochs {
		for _, rec := range seg.byDevice {
			n += len(rec.evs)
		}
	}
	return n
}

// ForEachConversion visits every conversion event in deterministic order
// (by device, then epoch, then event order). Workload drivers use it to
// replay conversions as attribution triggers. On a frozen database this is
// a single sweep of the arena.
func (db *Database) ForEachConversion(visit func(epoch Epoch, conv Event)) {
	if db.col != nil {
		for _, d := range db.col.devs {
			di := db.col.dev[d]
			for i := uint32(0); i < di.count; i++ {
				sp := db.col.spans[di.base+i]
				for _, ev := range db.col.evs[sp.off : sp.off+sp.n] {
					if ev.IsConversion() {
						visit(di.first+Epoch(i), ev)
					}
				}
			}
		}
		return
	}
	for _, d := range db.Devices() {
		for _, e := range db.DeviceEpochs(d) {
			for _, ev := range db.EpochEvents(d, e) {
				if ev.IsConversion() {
					visit(e, ev)
				}
			}
		}
	}
}

// Conversions returns all conversion events in deterministic global time
// order (by Day, then ID). This is the order in which advertisers observe
// them and request attribution reports.
func (db *Database) Conversions() []Event {
	var out []Event
	db.ForEachConversion(func(_ Epoch, conv Event) {
		out = append(out, conv)
	})
	slices.SortFunc(out, compareEvents)
	return out
}
