package events

import "slices"

// DeviceEpoch is a device-epoch record x = (d, e, F): the events F logged on
// device d during epoch e. Events are kept sorted by (Day, ID) so that
// recency-based attribution logics are deterministic.
type DeviceEpoch struct {
	Device DeviceID
	Epoch  Epoch
	Events []Event
}

// Database is the paper's database D: a set of device-epoch records in
// which each (device, epoch) pair appears at most once. It is the
// simulator's stand-in for the union of all on-device event stores; the
// on-device engine only ever reads its own device's rows, preserving the
// paper's trust model.
//
// A Database has two phases. While loading, Record appends and EvictBefore
// reclaims; no reader or writer may run concurrently with either, but
// concurrent *read-only* phases are fine as long as they never overlap a
// mutation — the streaming service relies on exactly this, alternating a
// single-writer ingest phase with a fan-out read phase on its day clock.
// Freeze ends the loading phase: it compiles a dense per-(device, epoch)
// index so EpochEvents on the report hot path is a single bounds-checked
// slice lookup, and from then on the database is immutable and safe for any
// number of concurrent readers with no phase discipline at all (the batch
// fleet engine reads it from every worker).
type Database struct {
	devices map[DeviceID]*deviceStore
	nextID  EventID
	frozen  bool
}

type deviceStore struct {
	epochs map[Epoch][]Event

	// Dense index, built by Freeze: byEpoch[e-first] holds epoch e's
	// events. Windows span a handful of epochs, so the dense span costs a
	// few nil slots per device and makes the hot-path lookup branch-free.
	first   Epoch
	byEpoch [][]Event
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{devices: make(map[DeviceID]*deviceStore)}
}

// NextEventID mints a fresh unique event identifier.
func (db *Database) NextEventID() EventID {
	db.nextID++
	return db.nextID
}

// Record appends an event to the device-epoch record for (ev.Device, epoch).
// Events within an epoch are kept in (Day, ID) order; Record preserves the
// invariant with an insertion step that is O(1) for the common append-at-end
// case (datasets are generated in time order).
func (db *Database) Record(epoch Epoch, ev Event) {
	if db.frozen {
		panic("events: Record on frozen database")
	}
	ds := db.devices[ev.Device]
	if ds == nil {
		ds = &deviceStore{epochs: make(map[Epoch][]Event)}
		db.devices[ev.Device] = ds
	}
	evs := ds.epochs[epoch]
	evs = append(evs, ev)
	// Restore ordering if the new event is out of order.
	for i := len(evs) - 1; i > 0 && evs[i].Before(evs[i-1]); i-- {
		evs[i], evs[i-1] = evs[i-1], evs[i]
	}
	ds.epochs[epoch] = evs
}

// Freeze ends the loading phase: it builds the dense per-(device, epoch)
// index behind EpochEvents and WindowEvents and marks the database
// immutable. After Freeze the read path is safe for concurrent use; Record
// panics. Freezing an already-frozen database is a no-op.
func (db *Database) Freeze() {
	if db.frozen {
		return
	}
	for _, ds := range db.devices {
		ds.buildIndex()
	}
	db.frozen = true
}

// Frozen reports whether the database has been frozen.
func (db *Database) Frozen() bool { return db.frozen }

// EvictBefore removes every device-epoch record with epoch < first,
// releasing the events' memory, and drops devices left with no records. It
// is the streaming ingestion's retention primitive: a day-ordered event
// stream never revisits old epochs, and once no in-flight query window can
// reach below first, those records are dead weight. Only valid during the
// loading phase — a frozen database is immutable, and its dense index could
// not shrink anyway — and, like Record, not safe for concurrent use.
// It returns the number of device-epoch records removed.
func (db *Database) EvictBefore(first Epoch) int {
	if db.frozen {
		panic("events: EvictBefore on frozen database")
	}
	removed := 0
	for d, ds := range db.devices {
		for e := range ds.epochs {
			if e < first {
				delete(ds.epochs, e)
				removed++
			}
		}
		if len(ds.epochs) == 0 {
			delete(db.devices, d)
		}
	}
	return removed
}

// buildIndex compiles the epoch map into a dense slice spanning the device's
// populated epoch range.
func (ds *deviceStore) buildIndex() {
	if len(ds.epochs) == 0 {
		ds.byEpoch = [][]Event{}
		return
	}
	first, last := Epoch(0), Epoch(0)
	started := false
	for e := range ds.epochs {
		if !started || e < first {
			first = e
		}
		if !started || e > last {
			last = e
		}
		started = true
	}
	ds.first = first
	ds.byEpoch = make([][]Event, int(last-first)+1)
	for e, evs := range ds.epochs {
		ds.byEpoch[e-first] = evs
	}
}

// EpochEvents returns the events of device d at epoch e (the paper's D^e_d),
// or nil when the device-epoch is empty. The returned slice is shared;
// callers must not modify it. On a frozen database this is a single indexed
// slice lookup — the hottest read in report generation.
func (db *Database) EpochEvents(d DeviceID, e Epoch) []Event {
	ds := db.devices[d]
	if ds == nil {
		return nil
	}
	if ds.byEpoch != nil {
		i := int(e - ds.first)
		if i < 0 || i >= len(ds.byEpoch) {
			return nil
		}
		return ds.byEpoch[i]
	}
	return ds.epochs[e]
}

// WindowEvents returns the per-epoch event sets of device d over the epoch
// window [first, last] (the paper's D^E_d), indexed by position in the
// window. Empty epochs yield nil entries; the result always has
// last-first+1 entries so callers can align it with EpochsIn(first, last).
func (db *Database) WindowEvents(d DeviceID, first, last Epoch) [][]Event {
	if last < first {
		return nil
	}
	return db.WindowEventsInto(nil, d, first, last)
}

// WindowEventsInto is WindowEvents writing into a reusable buffer: buf is
// resized (reallocating only when capacity is short) to last-first+1 entries
// and returned. The report hot path calls this once per conversion, so
// reusing one buffer per worker removes a per-report allocation. The entry
// slices are shared with the database; callers must not modify them.
func (db *Database) WindowEventsInto(buf [][]Event, d DeviceID, first, last Epoch) [][]Event {
	if last < first {
		return buf[:0]
	}
	k := int(last-first) + 1
	var out [][]Event
	if cap(buf) < k {
		out = make([][]Event, k)
	} else {
		out = buf[:k]
		for i := range out {
			out[i] = nil
		}
	}
	ds := db.devices[d]
	if ds == nil {
		return out
	}
	if ds.byEpoch != nil {
		for e := first; e <= last; e++ {
			if i := int(e - ds.first); i >= 0 && i < len(ds.byEpoch) {
				out[e-first] = ds.byEpoch[i]
			}
		}
		return out
	}
	for e := first; e <= last; e++ {
		out[e-first] = ds.epochs[e]
	}
	return out
}

// Devices returns all device IDs present in the database, in ascending
// order (deterministic iteration for experiments).
func (db *Database) Devices() []DeviceID {
	out := make([]DeviceID, 0, len(db.devices))
	for d := range db.devices {
		out = append(out, d)
	}
	slices.Sort(out)
	return out
}

// DeviceEpochs returns the populated epochs of a device in ascending order.
func (db *Database) DeviceEpochs(d DeviceID) []Epoch {
	ds := db.devices[d]
	if ds == nil {
		return nil
	}
	out := make([]Epoch, 0, len(ds.epochs))
	for e := range ds.epochs {
		out = append(out, e)
	}
	slices.Sort(out)
	return out
}

// NumDevices returns the number of devices with at least one event.
func (db *Database) NumDevices() int { return len(db.devices) }

// NumRecords returns the number of non-empty device-epoch records |D|.
func (db *Database) NumRecords() int {
	n := 0
	for _, ds := range db.devices {
		n += len(ds.epochs)
	}
	return n
}

// NumEvents returns the total number of events stored.
func (db *Database) NumEvents() int {
	n := 0
	for _, ds := range db.devices {
		for _, evs := range ds.epochs {
			n += len(evs)
		}
	}
	return n
}

// ForEachConversion visits every conversion event in deterministic order
// (by device, then epoch, then event order). Workload drivers use it to
// replay conversions as attribution triggers.
func (db *Database) ForEachConversion(visit func(epoch Epoch, conv Event)) {
	for _, d := range db.Devices() {
		ds := db.devices[d]
		for _, e := range db.DeviceEpochs(d) {
			for _, ev := range ds.epochs[e] {
				if ev.IsConversion() {
					visit(e, ev)
				}
			}
		}
	}
}

// Conversions returns all conversion events in deterministic global time
// order (by Day, then ID). This is the order in which advertisers observe
// them and request attribution reports.
func (db *Database) Conversions() []Event {
	var out []Event
	db.ForEachConversion(func(_ Epoch, conv Event) {
		out = append(out, conv)
	})
	slices.SortFunc(out, func(a, b Event) int {
		switch {
		case a.Before(b):
			return -1
		case b.Before(a):
			return 1
		}
		return 0
	})
	return out
}
