package events

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if KindImpression.String() != "impression" || KindConversion.String() != "conversion" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown Kind.String wrong")
	}
}

func TestIsImpressionConversion(t *testing.T) {
	imp := Event{Kind: KindImpression}
	conv := Event{Kind: KindConversion}
	if !imp.IsImpression() || imp.IsConversion() {
		t.Fatal("impression predicates wrong")
	}
	if !conv.IsConversion() || conv.IsImpression() {
		t.Fatal("conversion predicates wrong")
	}
}

func TestBeforeOrdersByDayThenID(t *testing.T) {
	a := Event{ID: 1, Day: 1}
	b := Event{ID: 2, Day: 2}
	c := Event{ID: 3, Day: 2}
	if !a.Before(b) || b.Before(a) {
		t.Fatal("day ordering wrong")
	}
	if !b.Before(c) || c.Before(b) {
		t.Fatal("ID tiebreak wrong")
	}
	if a.Before(a) {
		t.Fatal("Before not irreflexive")
	}
}

func TestEpochOfDay(t *testing.T) {
	cases := []struct {
		day, epochDays int
		want           Epoch
	}{
		{0, 7, 0}, {6, 7, 0}, {7, 7, 1}, {13, 7, 1}, {14, 7, 2},
		{0, 1, 0}, {5, 1, 5},
		{-1, 7, -1}, {-7, 7, -1}, {-8, 7, -2},
		{29, 30, 0}, {30, 30, 1},
	}
	for _, tc := range cases {
		if got := EpochOfDay(tc.day, tc.epochDays); got != tc.want {
			t.Fatalf("EpochOfDay(%d, %d) = %d, want %d", tc.day, tc.epochDays, got, tc.want)
		}
	}
}

func TestEpochOfDayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EpochOfDay(0, 0) did not panic")
		}
	}()
	EpochOfDay(0, 0)
}

func TestEpochWindow(t *testing.T) {
	// 30-day window ending on day 35, 7-day epochs: days 6..35 → epochs 0..5.
	first, last := EpochWindow(35, 30, 7)
	if first != 0 || last != 5 {
		t.Fatalf("window = [%d, %d], want [0, 5]", first, last)
	}
	// Window entirely inside one epoch.
	first, last = EpochWindow(3, 3, 7)
	if first != 0 || last != 0 {
		t.Fatalf("window = [%d, %d], want [0, 0]", first, last)
	}
}

func TestEpochWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EpochWindow with zero window did not panic")
		}
	}()
	EpochWindow(10, 0, 7)
}

func TestEpochWindowCoversConversionDayQuick(t *testing.T) {
	f := func(day uint16, window, epochDays uint8) bool {
		w := int(window%60) + 1
		ed := int(epochDays%30) + 1
		first, last := EpochWindow(int(day), w, ed)
		conv := EpochOfDay(int(day), ed)
		firstDayEpoch := EpochOfDay(int(day)-w+1, ed)
		return first <= last && conv == last && first == firstDayEpoch
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEpochsIn(t *testing.T) {
	got := EpochsIn(2, 5)
	want := []Epoch{2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("EpochsIn = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EpochsIn = %v", got)
		}
	}
	if EpochsIn(5, 2) != nil {
		t.Fatal("inverted range should be nil")
	}
	if len(EpochsIn(3, 3)) != 1 {
		t.Fatal("singleton range wrong")
	}
}
