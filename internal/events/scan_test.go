package events

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
)

// refLaneSelect is the executable reference for one lane of ScanWindow: the
// single-matcher scan (a Matcher.Match loop per epoch, as core's compiled
// selection runs it), producing freshly copied slices.
func refLaneSelect(db *Database, d DeviceID, m *Matcher, first, last Epoch) [][]Event {
	k := int(last-first) + 1
	out := make([][]Event, k)
	if m.MatchesNone() {
		return out
	}
	views := db.WindowViewsInto(nil, d, first, last)
	for i, v := range views {
		var sel []Event
		for j := 0; j < v.Len(); j++ {
			if m.Match(v, j) {
				sel = append(sel, v.Events()[j])
			}
		}
		out[i] = sel
	}
	return out
}

// scanSites: the fourth site is never recorded, so selectors over it compile
// to MatchesNone lanes.
var scanSites = []Site{"nike.example", "adidas.example", "puma.example", "ghost.example"}
var scanCamps = []string{"shoes", "hats", "socks"}

func randomScanDB(rng *rand.Rand) *Database {
	var evs []Event
	n := rng.Intn(120)
	for i := 0; i < n; i++ {
		kind := KindImpression
		if rng.Intn(5) == 0 {
			kind = KindConversion
		}
		evs = append(evs, Event{
			ID: EventID(i + 1), Kind: kind,
			Device:     DeviceID(1 + rng.Intn(3)),
			Day:        rng.Intn(60),
			Advertiser: scanSites[rng.Intn(3)],
			Campaign:   scanCamps[rng.Intn(3)],
			Product:    scanCamps[rng.Intn(3)],
		})
	}
	return NewFrozen(7, evs)
}

func randomCompiledSelector(rng *rand.Rand) Selector {
	site := scanSites[rng.Intn(len(scanSites))]
	switch rng.Intn(4) {
	case 0:
		return ProductSelector{Advertiser: site, Product: scanCamps[rng.Intn(3)]}
	case 1:
		return NewCampaignSelector(site)
	case 2:
		return NewCampaignSelector(site, scanCamps[rng.Intn(3)], scanCamps[rng.Intn(3)])
	default:
		return WindowSelector{
			Inner:    ProductSelector{Advertiser: site, Product: scanCamps[rng.Intn(3)]},
			FirstDay: rng.Intn(40),
			LastDay:  20 + rng.Intn(50),
		}
	}
}

// TestScanWindowMultiMatchesSingleMatcher property-tests the multi-matcher
// traversal against the single-matcher reference: for random lane banks
// (random selectors, windows, devices — including absent devices and
// MatchesNone lanes), every lane's output slices must equal its own
// single-matcher scan element for element. Each seed scans twice with the
// same (dirty) lane bank on different devices, so arena and span reuse is
// exercised under maximal staleness.
func TestScanWindowMultiMatchesSingleMatcher(t *testing.T) {
	var ms MultiScan
	var lanes []ScanLane
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randomScanDB(rng)
		nl := 1 + rng.Intn(8)
		if cap(lanes) < nl {
			lanes = slices.Grow(lanes, nl-len(lanes))
		}
		lanes = lanes[:nl]
		for j := 0; j < nl; j++ {
			m, ok := db.Compile(randomCompiledSelector(rng))
			if !ok {
				t.Fatalf("seed %d: built-in selector failed to compile", seed)
			}
			first := Epoch(rng.Intn(5))
			last := first + Epoch(rng.Intn(8))
			ln := &lanes[j]
			ln.Matcher, ln.First, ln.Last = m, first, last
			k := int(last-first) + 1
			if cap(ln.Out) < k {
				ln.Out = make([][]Event, k)
			} else {
				ln.Out = ln.Out[:k]
			}
		}
		for scan := 0; scan < 2; scan++ {
			dev := DeviceID(1 + rng.Intn(4)) // 4 is never recorded
			ms.ScanWindow(db, dev, lanes)
			for j := range lanes {
				ln := &lanes[j]
				want := refLaneSelect(db, dev, &ln.Matcher, ln.First, ln.Last)
				for i := range want {
					if !slices.Equal(ln.Out[i], want[i]) {
						t.Fatalf("seed %d scan %d lane %d epoch slot %d: got %v want %v",
							seed, scan, j, i, ln.Out[i], want[i])
					}
				}
			}
		}
	}
}

// TestScanWindowMultiAliasesFullMatches pins the aliasing discipline: an
// epoch whose events all match must alias the store's arena (no copy), and a
// partial selection must not.
func TestScanWindowMultiAliasesFullMatches(t *testing.T) {
	site := Site("nike.example")
	evs := []Event{
		{ID: 1, Kind: KindImpression, Device: 1, Day: 0, Advertiser: site, Campaign: "shoes"},
		{ID: 2, Kind: KindImpression, Device: 1, Day: 1, Advertiser: site, Campaign: "shoes"},
		{ID: 3, Kind: KindImpression, Device: 1, Day: 7, Advertiser: site, Campaign: "shoes"},
		{ID: 4, Kind: KindImpression, Device: 1, Day: 8, Advertiser: site, Campaign: "hats"},
	}
	db := NewFrozen(7, evs)
	m, ok := db.Compile(ProductSelector{Advertiser: site, Product: "shoes"})
	if !ok {
		t.Fatal("compile failed")
	}
	lanes := []ScanLane{{Matcher: m, First: 0, Last: 1, Out: make([][]Event, 2)}}
	var ms MultiScan
	ms.ScanWindow(db, 1, lanes)
	epoch0 := db.EpochEvents(1, 0)
	if got := lanes[0].Out[0]; len(got) != 2 || &got[0] != &epoch0[0] {
		t.Fatalf("full-match epoch not aliased to the store: %v", got)
	}
	epoch1 := db.EpochEvents(1, 1)
	if got := lanes[0].Out[1]; len(got) != 1 || &got[0] == &epoch1[0] {
		t.Fatalf("partial epoch should be an arena copy: %v", got)
	}
}

// TestNewFrozenIntoMatchesNewFrozen builds successive frozen databases into
// one shared FreezeScratch and checks each against the freshly allocated
// NewFrozen of the same batch: devices, records, and every device-epoch's
// events must be identical, with the scratch arenas recycled in between.
func TestNewFrozenIntoMatchesNewFrozen(t *testing.T) {
	var sc FreezeScratch
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var evs []Event
		for i, n := 0, rng.Intn(200); i < n; i++ {
			evs = append(evs, Event{
				ID: EventID(i + 1), Kind: KindImpression,
				Device:     DeviceID(rng.Intn(6)),
				Day:        rng.Intn(40),
				Advertiser: scanSites[rng.Intn(3)],
				Campaign:   scanCamps[rng.Intn(3)],
			})
		}
		rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
		want := NewFrozen(7, evs)
		got := NewFrozenInto(&sc, 7, evs)
		if got.NumEvents() != want.NumEvents() || got.NumRecords() != want.NumRecords() ||
			got.NumDevices() != want.NumDevices() {
			t.Fatalf("seed %d: shape mismatch", seed)
		}
		if !reflect.DeepEqual(got.Devices(), want.Devices()) {
			t.Fatalf("seed %d: device lists differ", seed)
		}
		for _, d := range want.Devices() {
			if !reflect.DeepEqual(got.DeviceEpochs(d), want.DeviceEpochs(d)) {
				t.Fatalf("seed %d: device %d epochs differ", seed, d)
			}
			for _, e := range want.DeviceEpochs(d) {
				if !slices.Equal(got.EpochEvents(d, e), want.EpochEvents(d, e)) {
					t.Fatalf("seed %d: device %d epoch %d events differ", seed, d, e)
				}
			}
		}
	}
}
