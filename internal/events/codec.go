package events

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Compact binary encodings for events — the hot serialization on the
// streaming service's durability path. Two codecs share this file:
//
//   - AppendBinary/DecodeBinary: one event, row layout — the WAL record
//     codec, where events are logged one at a time as they are ingested.
//     Layout (little-endian): ID u64, Kind u8, Device u64, Day i64, four
//     length-prefixed strings (u32 + bytes): Publisher, Advertiser,
//     Campaign, Product, then Value as IEEE-754 bits (u64) — bit-exact by
//     construction.
//   - MarshalEvents/UnmarshalEvents: an event list, columnar layout with a
//     per-blob string table — the snapshot codec, where every live
//     device-epoch record is serialized at each checkpoint.
//
// Hand-rolled fixed layouts here are ~10× cheaper than reflective JSON and
// keep checkpoint overhead from dominating ingest.

// AppendBinary appends ev's binary encoding to buf and returns the
// extended slice.
func AppendBinary(buf []byte, ev Event) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.ID))
	buf = append(buf, byte(ev.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.Device))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(ev.Day)))
	for _, s := range [...]string{string(ev.Publisher), string(ev.Advertiser), ev.Campaign, ev.Product} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(ev.Value))
}

// DecodeBinary decodes one event from the front of buf, returning the event
// and the remaining bytes. It never panics on truncated or oversized input.
func DecodeBinary(buf []byte) (Event, []byte, error) {
	var ev Event
	if len(buf) < 8+1+8+8 {
		return ev, nil, fmt.Errorf("events: truncated event header (%d bytes)", len(buf))
	}
	ev.ID = EventID(binary.LittleEndian.Uint64(buf))
	ev.Kind = Kind(buf[8])
	ev.Device = DeviceID(binary.LittleEndian.Uint64(buf[9:]))
	ev.Day = int(int64(binary.LittleEndian.Uint64(buf[17:])))
	buf = buf[25:]
	var fields [4]string
	for i := range fields {
		if len(buf) < 4 {
			return ev, nil, fmt.Errorf("events: truncated string length")
		}
		n := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if n < 0 || n > len(buf) {
			return ev, nil, fmt.Errorf("events: string of %d bytes exceeds buffer", n)
		}
		fields[i] = string(buf[:n])
		buf = buf[n:]
	}
	ev.Publisher = Site(fields[0])
	ev.Advertiser = Site(fields[1])
	ev.Campaign = fields[2]
	ev.Product = fields[3]
	if len(buf) < 8 {
		return ev, nil, fmt.Errorf("events: truncated value")
	}
	ev.Value = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	return ev, buf[8:], nil
}

// MarshalEvents encodes a slice of events with a count prefix. The layout is
// columnar, mirroring the frozen store: each field serialized as one
// contiguous column (IDs, kinds, devices, days, string indices, value bits),
// with the four string fields deduplicated through a per-blob string table.
// Snapshot blobs hold one device-epoch record whose publishers, advertisers,
// and campaigns repeat heavily, so the table both shrinks the snapshot and
// replaces the per-event field interleaving with straight bulk column
// writes. Layout (little-endian):
//
//	u32 n
//	n × u64 IDs, n × u8 kinds, n × u64 devices, n × u64 days (two's compl.)
//	string table: u32 count, count × (u32 len + bytes)
//	4 columns of n × u32 table indices: publisher, advertiser, campaign,
//	product
//	n × u64 value bits (IEEE-754 — bit-exact by construction)
func MarshalEvents(evs []Event) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(evs)))
	if len(evs) == 0 {
		return buf
	}
	for _, ev := range evs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.ID))
	}
	for _, ev := range evs {
		buf = append(buf, byte(ev.Kind))
	}
	for _, ev := range evs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.Device))
	}
	for _, ev := range evs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(ev.Day)))
	}
	// String table in first-appearance order, so equal inputs yield equal
	// bytes regardless of map iteration.
	index := make(map[string]uint32)
	var table []string
	internStr := func(s string) uint32 {
		if id, ok := index[s]; ok {
			return id
		}
		id := uint32(len(table))
		index[s] = id
		table = append(table, s)
		return id
	}
	cols := make([]uint32, 0, 4*len(evs))
	for _, ev := range evs {
		cols = append(cols, internStr(string(ev.Publisher)))
	}
	for _, ev := range evs {
		cols = append(cols, internStr(string(ev.Advertiser)))
	}
	for _, ev := range evs {
		cols = append(cols, internStr(ev.Campaign))
	}
	for _, ev := range evs {
		cols = append(cols, internStr(ev.Product))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(table)))
	for _, s := range table {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	for _, id := range cols {
		buf = binary.LittleEndian.AppendUint32(buf, id)
	}
	for _, ev := range evs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ev.Value))
	}
	return buf
}

// UnmarshalEvents decodes a MarshalEvents blob. It never panics on truncated
// or corrupt input. Decoded string fields share the table's backing strings,
// so a restored record costs one string allocation per distinct value, not
// per event.
func UnmarshalEvents(buf []byte) ([]Event, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("events: truncated event list")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if n == 0 {
		if len(buf) != 0 {
			return nil, fmt.Errorf("events: %d trailing bytes after event list", len(buf))
		}
		return nil, nil
	}
	// Fixed columns alone need 41n bytes plus the table header; reject
	// implausible counts before allocating.
	const minPerEvent = 8 + 1 + 8 + 8 + 4*4
	if n < 0 || n > len(buf)/minPerEvent+1 {
		return nil, fmt.Errorf("events: implausible event count %d for %d bytes", n, len(buf))
	}
	out := make([]Event, n)
	if len(buf) < (8+1+8+8)*n+4 {
		return nil, fmt.Errorf("events: truncated fixed columns (%d bytes for %d events)", len(buf), n)
	}
	for i := range out {
		out[i].ID = EventID(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	buf = buf[8*n:]
	for i := range out {
		out[i].Kind = Kind(buf[i])
	}
	buf = buf[n:]
	for i := range out {
		out[i].Device = DeviceID(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	buf = buf[8*n:]
	for i := range out {
		out[i].Day = int(int64(binary.LittleEndian.Uint64(buf[8*i:])))
	}
	buf = buf[8*n:]

	tn := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if tn < 0 || tn > len(buf)/4+1 {
		return nil, fmt.Errorf("events: implausible string table of %d entries", tn)
	}
	table := make([]string, tn)
	for i := range table {
		if len(buf) < 4 {
			return nil, fmt.Errorf("events: truncated string length")
		}
		sl := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if sl < 0 || sl > len(buf) {
			return nil, fmt.Errorf("events: string of %d bytes exceeds buffer", sl)
		}
		table[i] = string(buf[:sl])
		buf = buf[sl:]
	}
	if len(buf) < 4*4*n+8*n {
		return nil, fmt.Errorf("events: truncated index or value columns (%d bytes for %d events)", len(buf), n)
	}
	str := func(off int) (string, error) {
		id := binary.LittleEndian.Uint32(buf[4*off:])
		if int(id) >= tn {
			return "", fmt.Errorf("events: string index %d outside table of %d", id, tn)
		}
		return table[id], nil
	}
	var err error
	var s string
	for i := range out {
		if s, err = str(i); err != nil {
			return nil, err
		}
		out[i].Publisher = Site(s)
		if s, err = str(n + i); err != nil {
			return nil, err
		}
		out[i].Advertiser = Site(s)
		if s, err = str(2*n + i); err != nil {
			return nil, err
		}
		out[i].Campaign = s
		if s, err = str(3*n + i); err != nil {
			return nil, err
		}
		out[i].Product = s
	}
	buf = buf[4*4*n:]
	for i := range out {
		out[i].Value = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	if len(buf) != 8*n {
		return nil, fmt.Errorf("events: %d trailing bytes after event list", len(buf)-8*n)
	}
	return out, nil
}
