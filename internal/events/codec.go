package events

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Compact binary encoding for events — the hot serialization on the
// streaming service's durability path, where every ingested event is
// written ahead to the WAL and every live device-epoch record is serialized
// into each snapshot. A hand-rolled fixed layout here is ~10× cheaper than
// reflective JSON and keeps checkpoint overhead from dominating ingest.
//
// Layout (little-endian): ID u64, Kind u8, Device u64, Day i64,
// four length-prefixed strings (u32 + bytes): Publisher, Advertiser,
// Campaign, Product, then Value as IEEE-754 bits (u64) — bit-exact by
// construction.

// AppendBinary appends ev's binary encoding to buf and returns the
// extended slice.
func AppendBinary(buf []byte, ev Event) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.ID))
	buf = append(buf, byte(ev.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.Device))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(ev.Day)))
	for _, s := range [...]string{string(ev.Publisher), string(ev.Advertiser), ev.Campaign, ev.Product} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(ev.Value))
}

// DecodeBinary decodes one event from the front of buf, returning the event
// and the remaining bytes. It never panics on truncated or oversized input.
func DecodeBinary(buf []byte) (Event, []byte, error) {
	var ev Event
	if len(buf) < 8+1+8+8 {
		return ev, nil, fmt.Errorf("events: truncated event header (%d bytes)", len(buf))
	}
	ev.ID = EventID(binary.LittleEndian.Uint64(buf))
	ev.Kind = Kind(buf[8])
	ev.Device = DeviceID(binary.LittleEndian.Uint64(buf[9:]))
	ev.Day = int(int64(binary.LittleEndian.Uint64(buf[17:])))
	buf = buf[25:]
	var fields [4]string
	for i := range fields {
		if len(buf) < 4 {
			return ev, nil, fmt.Errorf("events: truncated string length")
		}
		n := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if n < 0 || n > len(buf) {
			return ev, nil, fmt.Errorf("events: string of %d bytes exceeds buffer", n)
		}
		fields[i] = string(buf[:n])
		buf = buf[n:]
	}
	ev.Publisher = Site(fields[0])
	ev.Advertiser = Site(fields[1])
	ev.Campaign = fields[2]
	ev.Product = fields[3]
	if len(buf) < 8 {
		return ev, nil, fmt.Errorf("events: truncated value")
	}
	ev.Value = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	return ev, buf[8:], nil
}

// MarshalEvents encodes a slice of events with a count prefix.
func MarshalEvents(evs []Event) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(evs)))
	for _, ev := range evs {
		buf = AppendBinary(buf, ev)
	}
	return buf
}

// UnmarshalEvents decodes a MarshalEvents blob.
func UnmarshalEvents(buf []byte) ([]Event, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("events: truncated event list")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if n == 0 {
		return nil, nil
	}
	const minEventLen = 8 + 1 + 8 + 8 + 4*4 + 8
	if n < 0 || n > len(buf)/minEventLen+1 {
		return nil, fmt.Errorf("events: implausible event count %d for %d bytes", n, len(buf))
	}
	out := make([]Event, 0, n)
	var ev Event
	var err error
	for i := 0; i < n; i++ {
		ev, buf, err = DecodeBinary(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("events: %d trailing bytes after event list", len(buf))
	}
	return out, nil
}
