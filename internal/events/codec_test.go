package events

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func codecEvent(rng *rand.Rand, id EventID) Event {
	sites := []Site{"", "nike.com", "adidas.com"}
	strs := []string{"", "p0", "p1", "a-much-longer-campaign-name"}
	ev := Event{
		ID:         id,
		Kind:       Kind(rng.Intn(3)), // including an out-of-range kind
		Device:     DeviceID(rng.Uint64()),
		Day:        rng.Intn(200) - 100,
		Publisher:  sites[rng.Intn(len(sites))],
		Advertiser: sites[rng.Intn(len(sites))],
		Campaign:   strs[rng.Intn(len(strs))],
		Product:    strs[rng.Intn(len(strs))],
	}
	switch rng.Intn(4) {
	case 0:
		ev.Value = math.NaN()
	case 1:
		ev.Value = math.Inf(-1)
	default:
		ev.Value = rng.NormFloat64() * 100
	}
	return ev
}

// eventsEqual compares bit-exactly (NaN payloads included), which
// reflect.DeepEqual does for float64 fields only when bits match — exactly
// the codec's contract.
func eventsEqual(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if math.Float64bits(x.Value) != math.Float64bits(y.Value) {
			return false
		}
		x.Value, y.Value = 0, 0
		if !reflect.DeepEqual(x, y) {
			return false
		}
	}
	return true
}

func TestMarshalEventsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		evs := make([]Event, rng.Intn(20))
		for i := range evs {
			evs[i] = codecEvent(rng, EventID(i+1))
		}
		got, err := UnmarshalEvents(MarshalEvents(evs))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(evs) == 0 {
			if got != nil {
				t.Fatalf("trial %d: empty list decoded to %v", trial, got)
			}
			continue
		}
		if !eventsEqual(evs, got) {
			t.Fatalf("trial %d: round trip diverged:\n in %v\nout %v", trial, evs, got)
		}
	}
}

func TestMarshalEventsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	evs := make([]Event, 16)
	for i := range evs {
		evs[i] = codecEvent(rng, EventID(i+1))
	}
	a, b := MarshalEvents(evs), MarshalEvents(evs)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("MarshalEvents is not byte-deterministic for equal input")
	}
}

// TestUnmarshalEventsRobustToTruncation feeds every prefix of a valid blob
// (and a bit-flipped variant) to the decoder: it must return an error or a
// valid result, never panic — the WAL/snapshot corruption contract.
func TestUnmarshalEventsRobustToTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	evs := make([]Event, 8)
	for i := range evs {
		evs[i] = codecEvent(rng, EventID(i+1))
	}
	blob := MarshalEvents(evs)
	for cut := 0; cut < len(blob); cut++ {
		if _, err := UnmarshalEvents(blob[:cut]); err == nil && cut < len(blob) {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(blob))
		}
	}
	for i := 0; i < len(blob); i += 7 {
		corrupt := append([]byte(nil), blob...)
		corrupt[i] ^= 0x40
		_, _ = UnmarshalEvents(corrupt) // must not panic
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		ev := codecEvent(rng, EventID(trial+1))
		got, rest, err := DecodeBinary(AppendBinary(nil, ev))
		if err != nil || len(rest) != 0 {
			t.Fatalf("trial %d: err=%v rest=%d", trial, err, len(rest))
		}
		if !eventsEqual([]Event{ev}, []Event{got}) {
			t.Fatalf("trial %d: row round trip diverged: %v vs %v", trial, ev, got)
		}
	}
}
