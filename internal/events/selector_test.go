package events

import (
	"testing"
	"testing/quick"
)

func TestSelectPreservesOrderAndFilters(t *testing.T) {
	sel := NewCampaignSelector("nike.com")
	evs := []Event{
		imp(1, 1, 0, "nike.com"),
		imp(2, 1, 1, "adidas.com"),
		imp(3, 1, 2, "nike.com"),
		conv(4, 1, 3, "nike.com", 70),
	}
	got := Select(evs, sel)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Fatalf("Select = %v", got)
	}
}

func TestSelectEmptyIsNil(t *testing.T) {
	sel := NewCampaignSelector("nike.com")
	if Select(nil, sel) != nil {
		t.Fatal("Select(nil) should be nil")
	}
	if Select([]Event{imp(1, 1, 0, "adidas.com")}, sel) != nil {
		t.Fatal("all-irrelevant selection should be nil")
	}
}

func TestCampaignSelectorCampaignFilter(t *testing.T) {
	sel := NewCampaignSelector("nike.com", "spring", "summer")
	mk := func(c string) Event {
		e := imp(1, 1, 0, "nike.com")
		e.Campaign = c
		return e
	}
	if !sel.Relevant(mk("spring")) || !sel.Relevant(mk("summer")) {
		t.Fatal("listed campaigns must be relevant")
	}
	if sel.Relevant(mk("winter")) {
		t.Fatal("unlisted campaign must be irrelevant")
	}
}

func TestCampaignSelectorNeverMatchesConversions(t *testing.T) {
	// Conversions are public to the advertiser; F_A ∩ P = ∅ is the
	// sufficient condition for the stronger Thm. 1 guarantee, so the
	// selector must reject conversions even from the right site.
	sel := NewCampaignSelector("nike.com")
	if sel.Relevant(conv(1, 1, 0, "nike.com", 70)) {
		t.Fatal("selector matched a conversion")
	}
}

func TestProductSelector(t *testing.T) {
	sel := ProductSelector{Advertiser: "nike.com", Product: "shoe-3"}
	e := imp(1, 1, 0, "nike.com")
	e.Campaign = "shoe-3"
	if !sel.Relevant(e) {
		t.Fatal("matching product impression rejected")
	}
	e.Campaign = "shoe-4"
	if sel.Relevant(e) {
		t.Fatal("other product accepted")
	}
	c := conv(2, 1, 0, "nike.com", 1)
	c.Product = "shoe-3"
	if sel.Relevant(c) {
		t.Fatal("conversion accepted")
	}
}

func TestWindowSelector(t *testing.T) {
	inner := NewCampaignSelector("nike.com")
	sel := WindowSelector{Inner: inner, FirstDay: 10, LastDay: 20}
	in := imp(1, 1, 15, "nike.com")
	early := imp(2, 1, 9, "nike.com")
	late := imp(3, 1, 21, "nike.com")
	edge1 := imp(4, 1, 10, "nike.com")
	edge2 := imp(5, 1, 20, "nike.com")
	if !sel.Relevant(in) || !sel.Relevant(edge1) || !sel.Relevant(edge2) {
		t.Fatal("in-window impression rejected")
	}
	if sel.Relevant(early) || sel.Relevant(late) {
		t.Fatal("out-of-window impression accepted")
	}
}

func TestSelectorFunc(t *testing.T) {
	sel := SelectorFunc(func(ev Event) bool { return ev.Day == 3 })
	if !sel.Relevant(Event{Day: 3}) || sel.Relevant(Event{Day: 4}) {
		t.Fatal("SelectorFunc adapter broken")
	}
}

// The defining property of attribution functions is A(F) = A(F ∩ F_A);
// Select must therefore be idempotent.
func TestSelectIdempotentQuick(t *testing.T) {
	sel := NewCampaignSelector("nike.com")
	f := func(ids []uint8) bool {
		evs := make([]Event, len(ids))
		for i, id := range ids {
			adv := Site("nike.com")
			if id%3 == 0 {
				adv = "adidas.com"
			}
			evs[i] = imp(EventID(id), 1, int(id), adv)
		}
		once := Select(evs, sel)
		twice := Select(once, sel)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i].ID != twice[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
