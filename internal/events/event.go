// Package events implements the paper's data model (§4.1.1): impression and
// conversion events collected by user devices, grouped into device-epoch
// records x = (d, e, F), and assembled into the database D that queries
// operate on. It also models the per-querier public-event domain P and the
// relevant-event selectors F_A used by attribution functions.
package events

import "fmt"

// DeviceID identifies a user device d ∈ D. In a browser deployment this is
// implicit (the code runs on the device); the simulator carries it
// explicitly so one process can host the whole device population.
type DeviceID uint64

// Epoch identifies a time epoch e ∈ E. Epochs are contiguous, fixed-length
// windows of days (weeks or months in the paper); the on-device database is
// partitioned by epoch and privacy filters are maintained per epoch.
type Epoch int32

// Site is a web origin: a publisher (nytimes.com), an advertiser (nike.com)
// or an ad-tech acting as the querier.
type Site string

// EventID uniquely identifies an event within the simulation.
type EventID uint64

// Kind distinguishes impressions from conversions.
type Kind uint8

const (
	// KindImpression marks an ad view or click recorded on a publisher
	// site.
	KindImpression Kind = iota
	// KindConversion marks a purchase, sign-up or cart addition recorded
	// on an advertiser site.
	KindConversion
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindImpression:
		return "impression"
	case KindConversion:
		return "conversion"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is a single element of I ∪ C. One struct covers both domains; Kind
// selects which fields are meaningful. Keeping a single type lets a
// device-epoch record F ⊂ I ∪ C be an ordinary slice.
type Event struct {
	ID     EventID
	Kind   Kind
	Device DeviceID
	// Day is the absolute day index since the start of the simulation.
	// Attribution logics that depend on recency (last-touch, first-touch)
	// order events by (Day, ID).
	Day int
	// Publisher is the site on which an impression was shown
	// (impressions only).
	Publisher Site
	// Advertiser is the advertiser the event concerns: the advertiser
	// whose ad was shown (impressions) or on whose site the conversion
	// happened (conversions).
	Advertiser Site
	// Campaign identifies the ad campaign (impressions only).
	Campaign string
	// Product identifies the product bought (conversions only).
	Product string
	// Value is the conversion value in currency units (conversions only).
	Value float64
}

// IsImpression reports whether the event belongs to the impression domain I.
func (ev Event) IsImpression() bool { return ev.Kind == KindImpression }

// IsConversion reports whether the event belongs to the conversion domain C.
func (ev Event) IsConversion() bool { return ev.Kind == KindConversion }

// Before reports whether ev happened strictly before other, breaking day
// ties by event ID so that ordering is total and deterministic.
func (ev Event) Before(other Event) bool {
	if ev.Day != other.Day {
		return ev.Day < other.Day
	}
	return ev.ID < other.ID
}

// EpochOfDay maps an absolute day index to its epoch, for a given epoch
// length in days. It panics if epochDays is not positive.
func EpochOfDay(day, epochDays int) Epoch {
	if epochDays <= 0 {
		panic("events: EpochOfDay with non-positive epoch length")
	}
	if day < 0 {
		// Negative days belong to negative epochs; floor division.
		return Epoch((day - epochDays + 1) / epochDays)
	}
	return Epoch(day / epochDays)
}

// EpochWindow returns the inclusive epoch range [first, last] covering the
// attribution window of windowDays days that ends on (and includes)
// conversionDay, under the given epoch length. This is the set of epochs E
// the attribution function searches for relevant impressions.
func EpochWindow(conversionDay, windowDays, epochDays int) (first, last Epoch) {
	if windowDays <= 0 {
		panic("events: EpochWindow with non-positive window")
	}
	last = EpochOfDay(conversionDay, epochDays)
	first = EpochOfDay(conversionDay-windowDays+1, epochDays)
	return first, last
}

// EpochsIn enumerates the epochs in [first, last] in increasing order.
func EpochsIn(first, last Epoch) []Epoch {
	if last < first {
		return nil
	}
	out := make([]Epoch, 0, int(last-first)+1)
	for e := first; e <= last; e++ {
		out = append(out, e)
	}
	return out
}
