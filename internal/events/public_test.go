package events

import "testing"

func TestAdvertiserView(t *testing.T) {
	p := AdvertiserView("nike.com")
	ownConv := conv(1, 1, 0, "nike.com", 70)
	otherConv := conv(2, 1, 0, "adidas.com", 30)
	ownImp := Event{Kind: KindImpression, Publisher: "nike.com", Advertiser: "nike.com"}
	if !p.Contains(ownConv) {
		t.Fatal("advertiser must see own conversions")
	}
	if p.Contains(otherConv) {
		t.Fatal("advertiser must not see other sites' conversions")
	}
	if p.Contains(ownImp) {
		t.Fatal("pure advertiser view must not include impressions")
	}
}

func TestPublisherView(t *testing.T) {
	p := PublisherView("facebook.com")
	servedImp := Event{Kind: KindImpression, Publisher: "facebook.com", Advertiser: "nike.com"}
	otherImp := Event{Kind: KindImpression, Publisher: "nytimes.com", Advertiser: "nike.com"}
	ownConv := conv(1, 1, 0, "facebook.com", 5)
	if !p.Contains(servedImp) {
		t.Fatal("publisher must see impressions it served")
	}
	if p.Contains(otherImp) {
		t.Fatal("publisher must not see impressions elsewhere")
	}
	if p.Contains(ownConv) {
		t.Fatal("pure publisher view must not include conversions")
	}
}

func TestRestrict(t *testing.T) {
	p := AdvertiserView("nike.com")
	evs := []Event{
		imp(1, 1, 0, "nike.com"),
		conv(2, 1, 1, "nike.com", 70),
		conv(3, 1, 2, "adidas.com", 30),
	}
	got := p.Restrict(evs)
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("Restrict = %v", got)
	}
	if p.Restrict(nil) != nil {
		t.Fatal("Restrict(nil) should be nil")
	}
}

func TestUnionContains(t *testing.T) {
	u := Union{AdvertiserView("nike.com"), PublisherView("nytimes.com")}
	nikeConv := conv(1, 1, 0, "nike.com", 70)
	nytImp := Event{Kind: KindImpression, Publisher: "nytimes.com", Advertiser: "nike.com"}
	strangerImp := Event{Kind: KindImpression, Publisher: "bbc.com", Advertiser: "nike.com"}
	if !u.Contains(nikeConv) || !u.Contains(nytImp) {
		t.Fatal("union missing constituent events")
	}
	if u.Contains(strangerImp) {
		t.Fatal("union contains unrelated event")
	}
	if (Union{}).Contains(nikeConv) {
		t.Fatal("empty union contains something")
	}
}

func TestContainsUnknownKind(t *testing.T) {
	p := PublicView{Querier: "x", AsAdvertiser: true, AsPublisher: true}
	if p.Contains(Event{Kind: Kind(7), Advertiser: "x", Publisher: "x"}) {
		t.Fatal("unknown kind should never be public")
	}
}
