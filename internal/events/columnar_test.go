package events

import (
	"testing"
)

func colTestDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	db.Record(0, Event{ID: 1, Kind: KindImpression, Device: 1, Day: 1,
		Publisher: "pub", Advertiser: "nike.com", Campaign: "p0"})
	db.Record(0, Event{ID: 2, Kind: KindImpression, Device: 1, Day: 2,
		Publisher: "pub", Advertiser: "nike.com", Campaign: "p1"})
	db.Record(0, Event{ID: 3, Kind: KindImpression, Device: 1, Day: 3,
		Publisher: "pub", Advertiser: "adidas.com", Campaign: "p0"})
	db.Record(1, Event{ID: 4, Kind: KindConversion, Device: 1, Day: 8,
		Advertiser: "nike.com", Product: "p0", Value: 7})
	db.Record(1, Event{ID: 5, Kind: KindImpression, Device: 2, Day: 9,
		Publisher: "pub", Advertiser: "nike.com", Campaign: "p0"})
	return db
}

// matchAll collects the relevant events of a window via the compiled
// matcher.
func matchAll(db *Database, sel Selector, d DeviceID, first, last Epoch) []Event {
	m, ok := db.Compile(sel)
	if !ok {
		panic("selector did not compile")
	}
	var out []Event
	for _, v := range db.WindowViewsInto(nil, d, first, last) {
		for i := 0; i < v.Len(); i++ {
			if m.Match(v, i) {
				out = append(out, v.Events()[i])
			}
		}
	}
	return out
}

func TestCompileMatchesSelectorForms(t *testing.T) {
	for _, frozen := range []bool{false, true} {
		db := colTestDB(t)
		if frozen {
			db.Freeze()
		}
		sels := []Selector{
			CampaignSelector{Advertiser: "nike.com"},
			NewCampaignSelector("nike.com", "p0"),
			NewCampaignSelector("nike.com", "p0", "p1", "p9"),
			NewCampaignSelector("absent.example", "p0"),
			CampaignSelector{Advertiser: "nike.com", Campaigns: map[string]bool{"p0": false}},
			ProductSelector{Advertiser: "nike.com", Product: "p0"},
			ProductSelector{Advertiser: "nike.com", Product: "unseen"},
			WindowSelector{Inner: ProductSelector{Advertiser: "nike.com", Product: "p0"}, FirstDay: 2, LastDay: 9},
			WindowSelector{Inner: WindowSelector{
				Inner: CampaignSelector{Advertiser: "nike.com"}, FirstDay: 0, LastDay: 5},
				FirstDay: 2, LastDay: 9},
			&ProductSelector{Advertiser: "nike.com", Product: "p0"},
		}
		for _, sel := range sels {
			for d := DeviceID(1); d <= 3; d++ {
				got := matchAll(db, sel, d, 0, 1)
				var want []Event
				for e := Epoch(0); e <= 1; e++ {
					want = append(want, Select(db.EpochEvents(d, e), sel)...)
				}
				if len(got) != len(want) {
					t.Fatalf("frozen=%v %T device %d: matcher found %d events, Select %d",
						frozen, sel, d, len(got), len(want))
				}
				for i := range got {
					if got[i].ID != want[i].ID {
						t.Fatalf("frozen=%v %T device %d: event %d = ID %d, want %d",
							frozen, sel, d, i, got[i].ID, want[i].ID)
					}
				}
			}
		}
	}
}

func TestCompileRejectsOpaqueSelectors(t *testing.T) {
	db := colTestDB(t)
	if _, ok := db.Compile(SelectorFunc(func(Event) bool { return true })); ok {
		t.Fatal("SelectorFunc unexpectedly compiled")
	}
	if _, ok := db.Compile(WindowSelector{Inner: SelectorFunc(func(Event) bool { return true })}); ok {
		t.Fatal("WindowSelector over SelectorFunc unexpectedly compiled")
	}
}

func TestCompileMissingSymbolsMatchesNone(t *testing.T) {
	db := colTestDB(t)
	m, ok := db.Compile(ProductSelector{Advertiser: "absent.example", Product: "p0"})
	if !ok || !m.MatchesNone() {
		t.Fatalf("absent advertiser: ok=%v none=%v, want compiled match-none", ok, m.MatchesNone())
	}
	m, ok = db.Compile(NewCampaignSelector("nike.com", "never-seen"))
	if !ok || !m.MatchesNone() {
		t.Fatalf("absent campaign: ok=%v none=%v, want compiled match-none", ok, m.MatchesNone())
	}
	m, ok = db.Compile(CampaignSelector{Advertiser: "nike.com"})
	if !ok || m.MatchesNone() {
		t.Fatalf("open campaign set: ok=%v none=%v, want compiled matchable", ok, m.MatchesNone())
	}
}

func TestEventViewZeroCopy(t *testing.T) {
	db := colTestDB(t)
	db.Freeze()
	views := db.WindowViewsInto(nil, 1, 0, 1)
	evs := db.EpochEvents(1, 0)
	if len(views) != 2 || views[0].Len() != len(evs) {
		t.Fatalf("views = %v", views)
	}
	// Zero-copy: the view aliases the same arena memory EpochEvents serves.
	if &views[0].Events()[0] != &evs[0] {
		t.Fatal("EventView copied the record instead of aliasing the arena")
	}
}

func TestWindowViewsIntoReusesBuffer(t *testing.T) {
	db := colTestDB(t)
	db.Freeze()
	buf := make([]EventView, 0, 8)
	got := db.WindowViewsInto(buf, 1, 0, 1)
	if cap(got) != cap(buf) {
		t.Fatal("WindowViewsInto reallocated a buffer with sufficient capacity")
	}
	// Stale entries must be cleared on reuse.
	got = db.WindowViewsInto(got, 99, 0, 1)
	for i, v := range got {
		if v.Len() != 0 {
			t.Fatalf("stale view survived reuse at %d", i)
		}
	}
	if inv := db.WindowViewsInto(got, 1, 3, 1); len(inv) != 0 {
		t.Fatalf("inverted window returned %d views", len(inv))
	}
}

func TestFreezeReleasesMutableSegments(t *testing.T) {
	db := colTestDB(t)
	db.Freeze()
	if db.epochs != nil {
		t.Fatal("Freeze left the mutable epoch segments alive")
	}
	if db.col == nil || db.col.records != 3 {
		t.Fatalf("columnar store records = %v", db.col)
	}
	if len(db.col.evs) != 5 || len(db.col.keys) != 5 {
		t.Fatalf("arena sizes = %d events, %d keys", len(db.col.evs), len(db.col.keys))
	}
}

func TestCompileZeroAlloc(t *testing.T) {
	db := colTestDB(t)
	db.Freeze()
	sel := WindowSelector{Inner: ProductSelector{Advertiser: "nike.com", Product: "p0"}, FirstDay: 0, LastDay: 30}
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := db.Compile(sel); !ok {
			t.Fatal("did not compile")
		}
	})
	if allocs != 0 {
		t.Fatalf("Compile of the workload selector allocates %v/op, want 0", allocs)
	}
}
