package events

import (
	"sync"
	"testing"
	"testing/quick"
)

func imp(id EventID, d DeviceID, day int, adv Site) Event {
	return Event{ID: id, Kind: KindImpression, Device: d, Day: day, Advertiser: adv, Publisher: "pub.example"}
}

func conv(id EventID, d DeviceID, day int, adv Site, value float64) Event {
	return Event{ID: id, Kind: KindConversion, Device: d, Day: day, Advertiser: adv, Value: value}
}

func TestDatabaseEmpty(t *testing.T) {
	db := NewDatabase()
	if db.NumDevices() != 0 || db.NumRecords() != 0 || db.NumEvents() != 0 {
		t.Fatal("fresh database not empty")
	}
	if db.EpochEvents(1, 0) != nil {
		t.Fatal("missing device-epoch should be nil")
	}
	if db.DeviceEpochs(1) != nil {
		t.Fatal("missing device epochs should be nil")
	}
}

func TestRecordAndLookup(t *testing.T) {
	db := NewDatabase()
	db.Record(0, imp(1, 7, 0, "nike.com"))
	db.Record(0, imp(2, 7, 1, "nike.com"))
	db.Record(1, conv(3, 7, 8, "nike.com", 70))
	if db.NumDevices() != 1 || db.NumRecords() != 2 || db.NumEvents() != 3 {
		t.Fatalf("counts: devices=%d records=%d events=%d",
			db.NumDevices(), db.NumRecords(), db.NumEvents())
	}
	e0 := db.EpochEvents(7, 0)
	if len(e0) != 2 || e0[0].ID != 1 || e0[1].ID != 2 {
		t.Fatalf("epoch 0 events = %v", e0)
	}
	if got := db.EpochEvents(7, 2); got != nil {
		t.Fatalf("empty epoch returned %v", got)
	}
}

func TestRecordKeepsOrder(t *testing.T) {
	db := NewDatabase()
	// Insert out of order; DB must keep (Day, ID) order.
	db.Record(0, imp(5, 1, 9, "a"))
	db.Record(0, imp(2, 1, 3, "a"))
	db.Record(0, imp(9, 1, 3, "a"))
	evs := db.EpochEvents(1, 0)
	if len(evs) != 3 || evs[0].ID != 2 || evs[1].ID != 9 || evs[2].ID != 5 {
		t.Fatalf("events not sorted: %v", evs)
	}
}

func TestWindowEvents(t *testing.T) {
	db := NewDatabase()
	db.Record(1, imp(1, 4, 8, "a"))
	db.Record(3, imp(2, 4, 22, "a"))
	w := db.WindowEvents(4, 0, 3)
	if len(w) != 4 {
		t.Fatalf("window length %d", len(w))
	}
	if w[0] != nil || w[2] != nil {
		t.Fatal("empty epochs should be nil")
	}
	if len(w[1]) != 1 || w[1][0].ID != 1 {
		t.Fatalf("epoch 1 = %v", w[1])
	}
	if len(w[3]) != 1 || w[3][0].ID != 2 {
		t.Fatalf("epoch 3 = %v", w[3])
	}
	// Unknown device: all nil but correct length.
	w = db.WindowEvents(99, 0, 2)
	if len(w) != 3 || w[0] != nil || w[1] != nil || w[2] != nil {
		t.Fatalf("unknown device window = %v", w)
	}
	if db.WindowEvents(4, 3, 1) != nil {
		t.Fatal("inverted window should be nil")
	}
}

func TestDevicesSorted(t *testing.T) {
	db := NewDatabase()
	for _, d := range []DeviceID{5, 1, 9, 3} {
		db.Record(0, imp(EventID(d), d, 0, "a"))
	}
	ds := db.Devices()
	for i := 1; i < len(ds); i++ {
		if ds[i-1] >= ds[i] {
			t.Fatalf("devices not sorted: %v", ds)
		}
	}
}

func TestDeviceEpochsSorted(t *testing.T) {
	db := NewDatabase()
	for _, e := range []Epoch{4, 0, 2} {
		db.Record(e, imp(EventID(e+1), 1, int(e)*7, "a"))
	}
	es := db.DeviceEpochs(1)
	if len(es) != 3 || es[0] != 0 || es[1] != 2 || es[2] != 4 {
		t.Fatalf("epochs = %v", es)
	}
}

func TestNextEventIDUnique(t *testing.T) {
	db := NewDatabase()
	seen := map[EventID]bool{}
	for i := 0; i < 1000; i++ {
		id := db.NextEventID()
		if seen[id] {
			t.Fatalf("duplicate event ID %d", id)
		}
		seen[id] = true
	}
}

func TestForEachConversionVisitsOnlyConversions(t *testing.T) {
	db := NewDatabase()
	db.Record(0, imp(1, 1, 0, "a"))
	db.Record(0, conv(2, 1, 1, "a", 10))
	db.Record(1, conv(3, 2, 8, "b", 20))
	var got []EventID
	db.ForEachConversion(func(_ Epoch, c Event) {
		if !c.IsConversion() {
			t.Fatalf("visited non-conversion %v", c)
		}
		got = append(got, c.ID)
	})
	if len(got) != 2 {
		t.Fatalf("visited %v", got)
	}
}

func TestConversionsGlobalTimeOrder(t *testing.T) {
	db := NewDatabase()
	db.Record(1, conv(10, 5, 9, "a", 1))
	db.Record(0, conv(11, 9, 2, "a", 1))
	db.Record(0, conv(12, 1, 5, "a", 1))
	cs := db.Conversions()
	if len(cs) != 3 || cs[0].ID != 11 || cs[1].ID != 12 || cs[2].ID != 10 {
		t.Fatalf("conversions order = %v", cs)
	}
}

func TestRecordOrderInvariantQuick(t *testing.T) {
	f := func(days []uint8) bool {
		db := NewDatabase()
		for i, d := range days {
			db.Record(0, imp(EventID(i+1), 1, int(d), "a"))
		}
		evs := db.EpochEvents(1, 0)
		for i := 1; i < len(evs); i++ {
			if evs[i].Before(evs[i-1]) {
				return false
			}
		}
		return len(evs) == len(days)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFreezeIndexMatchesMapReads(t *testing.T) {
	db := NewDatabase()
	db.Record(-2, imp(1, 1, -14, "a"))
	db.Record(0, imp(2, 1, 3, "a"))
	db.Record(3, imp(3, 1, 25, "a"))
	db.Record(1, conv(4, 2, 9, "a", 5))

	type probe struct {
		d DeviceID
		e Epoch
	}
	probes := []probe{{1, -3}, {1, -2}, {1, -1}, {1, 0}, {1, 2}, {1, 3}, {1, 4}, {2, 1}, {2, 0}, {3, 0}}
	before := make(map[probe]int)
	for _, p := range probes {
		before[p] = len(db.EpochEvents(p.d, p.e))
	}
	if db.Frozen() {
		t.Fatal("database frozen before Freeze")
	}
	db.Freeze()
	if !db.Frozen() {
		t.Fatal("Freeze did not mark the database frozen")
	}
	for _, p := range probes {
		if got := len(db.EpochEvents(p.d, p.e)); got != before[p] {
			t.Fatalf("device %d epoch %d: %d events after Freeze, %d before", p.d, p.e, got, before[p])
		}
	}
	w := db.WindowEvents(1, -3, 4)
	if len(w) != 8 || len(w[1]) != 1 || len(w[3]) != 1 || len(w[6]) != 1 || w[0] != nil {
		t.Fatalf("frozen WindowEvents = %v", w)
	}
	db.Freeze() // idempotent
}

func TestFreezeRejectsRecord(t *testing.T) {
	db := NewDatabase()
	db.Record(0, imp(1, 1, 1, "a"))
	db.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Record on a frozen database did not panic")
		}
	}()
	db.Record(0, imp(2, 1, 2, "a"))
}

func TestEvictBefore(t *testing.T) {
	db := NewDatabase()
	// Device 1 spans epochs 0..3; device 2 only epoch 0.
	for e := 0; e < 4; e++ {
		db.Record(Epoch(e), imp(EventID(e+1), 1, e*7, "a"))
	}
	db.Record(0, imp(10, 2, 0, "a"))

	if removed := db.EvictBefore(0); removed != 0 {
		t.Fatalf("EvictBefore(0) removed %d records, want 0", removed)
	}
	if removed := db.EvictBefore(2); removed != 3 {
		t.Fatalf("EvictBefore(2) removed %d records, want 3", removed)
	}
	// Evicted epochs read as empty; surviving epochs are intact.
	if evs := db.EpochEvents(1, 1); evs != nil {
		t.Fatalf("evicted epoch still has %d events", len(evs))
	}
	if evs := db.EpochEvents(1, 2); len(evs) != 1 {
		t.Fatalf("surviving epoch has %d events, want 1", len(evs))
	}
	// Device 2 lost its only record and is gone entirely.
	if n := db.NumDevices(); n != 1 {
		t.Fatalf("devices after eviction = %d, want 1", n)
	}
	if n := db.NumRecords(); n != 2 {
		t.Fatalf("records after eviction = %d, want 2", n)
	}
	// Ingestion continues at and above the horizon.
	db.Record(5, imp(11, 1, 35, "a"))
	if evs := db.EpochEvents(1, 5); len(evs) != 1 {
		t.Fatalf("post-eviction record lost: %d events", len(evs))
	}
}

func TestEvictBeforePanicsWhenFrozen(t *testing.T) {
	db := NewDatabase()
	db.Record(0, imp(1, 1, 0, "a"))
	db.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("EvictBefore on a frozen database did not panic")
		}
	}()
	db.EvictBefore(1)
}

func TestFrozenConcurrentReaders(t *testing.T) {
	db := NewDatabase()
	for i := 0; i < 200; i++ {
		db.Record(Epoch(i%5), imp(EventID(i+1), DeviceID(i%7), i, "a"))
	}
	db.Freeze()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := DeviceID(0); d < 7; d++ {
				for e := Epoch(-1); e < 6; e++ {
					db.EpochEvents(d, e)
				}
				db.WindowEvents(d, 0, 4)
			}
		}()
	}
	wg.Wait()
}
