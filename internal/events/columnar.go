package events

import (
	"math"
	"slices"
)

// Columnar frozen layout and compiled selectors (DESIGN.md §9).
//
// The report hot path spends its time in two places: charging the budget
// ledger and scanning device-epoch records for relevant events. The ledger
// side is a flat table since PR 3; this file gives the storage side the same
// treatment. A frozen database holds every event in one contiguous arena,
// grouped by (device, epoch), with each record reduced to an {off, len}
// span — no per-record heap slices, no map lookup per epoch — and carries a
// parallel column of integer scan keys (site and campaign interned to dense
// IDs, day, kind) so the built-in selectors lower to straight integer
// compares instead of an interface call per event.
//
// The same key column exists on the mutable (loading-phase) store: Record
// interns as it appends, so the streaming service's day-flush reads get the
// compiled scan without ever freezing.

// evKey is the scan-hot projection of one event: every field the built-in
// selectors can test, reduced to integers. Day saturates at the int32
// bounds; the Epoch math in event.go already confines realistic simulations
// well inside them.
type evKey struct {
	day  int32
	adv  uint32
	camp uint32
	kind uint8
}

// intern is the database's append-only symbol table: advertiser sites and
// campaign strings mapped to dense IDs at Record/Freeze time. Lookups during
// selector compilation are read-only on the maps, so any number of
// concurrent readers may compile; the maps and the one-entry caches are
// written only inside Record/RecordAll, under the store's existing
// single-writer phase discipline (readers never touch the caches).
type intern struct {
	adv  map[Site]uint32
	camp map[string]uint32
	// One-entry caches for the ingest path: consecutive events overwhelmingly
	// repeat the advertiser (and often the campaign), and the repeated
	// strings usually share backing storage, so the equality check is a
	// pointer compare — much cheaper than re-hashing the string per event.
	lastAdv    Site
	lastAdvID  uint32
	lastCamp   string
	lastCampID uint32
	cached     bool
}

func newIntern() intern {
	return intern{adv: make(map[Site]uint32), camp: make(map[string]uint32)}
}

func (in *intern) siteID(s Site) uint32 {
	id, ok := in.adv[s]
	if !ok {
		id = uint32(len(in.adv) + 1)
		in.adv[s] = id
	}
	return id
}

func (in *intern) campaignID(c string) uint32 {
	id, ok := in.camp[c]
	if !ok {
		id = uint32(len(in.camp) + 1)
		in.camp[c] = id
	}
	return id
}

// keyOf projects ev onto its scan key, interning the string fields.
func (in *intern) keyOf(ev Event) evKey {
	if !in.cached || ev.Advertiser != in.lastAdv {
		in.lastAdv, in.lastAdvID = ev.Advertiser, in.siteID(ev.Advertiser)
	}
	if !in.cached || ev.Campaign != in.lastCamp {
		in.lastCamp, in.lastCampID = ev.Campaign, in.campaignID(ev.Campaign)
		in.cached = true
	}
	return evKey{
		day:  clampDay(ev.Day),
		adv:  in.lastAdvID,
		camp: in.lastCampID,
		kind: uint8(ev.Kind),
	}
}

func clampDay(d int) int32 {
	if d < math.MinInt32 {
		return math.MinInt32
	}
	if d > math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(d)
}

// FreezeScratch holds the reusable arenas of NewFrozenInto: the permutation
// index and every frozen-store column (events, keys, spans, device list,
// device index). A caller that freezes many event batches — rebuild-per-day
// executors, sweep harnesses, benchmarks — reuses one scratch so each freeze
// costs zero steady-state arena allocations instead of re-growing megabytes
// of column storage per build.
//
// Lifecycle: the Database returned by NewFrozenInto aliases the scratch's
// arenas. It is valid only until the next NewFrozenInto call with the same
// scratch, which recycles the arenas underneath it; the caller must drop (or
// finish with) the previous database first. A scratch serves one goroutine
// at a time. The zero value is ready for use.
type FreezeScratch struct {
	idx   []int32
	evs   []Event
	keys  []evKey
	spans []span
	devs  []DeviceID
	dev   map[DeviceID]devIndex
}

// NewFrozen builds a frozen database straight from a batch of day-stamped
// events, skipping the mutable epoch segments entirely: one permutation
// sort into (device, day, ID, arrival) order — epochs are monotone in days,
// so each device's records come out as contiguous, epoch-ordered runs — then
// a single gather pass lays the arena, key column, and span table. This is
// the batch engine's load path (Dataset.Build): it allocates the columnar
// arenas and one index, instead of a map entry and two slices per record
// that Freeze would immediately copy out and discard. The result is
// indistinguishable from Record-per-event followed by Freeze.
func NewFrozen(epochDays int, evs []Event) *Database {
	return NewFrozenInto(nil, epochDays, evs)
}

// NewFrozenInto is NewFrozen building into sc's reusable arenas (see
// FreezeScratch for the aliasing lifecycle); a nil scratch allocates fresh
// arenas, which is exactly NewFrozen. The produced database is identical to
// NewFrozen's either way — only the backing storage provenance differs.
func NewFrozenInto(sc *FreezeScratch, epochDays int, evs []Event) *Database {
	if sc == nil {
		sc = &FreezeScratch{}
	}
	db := NewDatabase()
	col := &colStore{
		evs:   growCap(sc.evs, len(evs)),
		keys:  growCap(sc.keys, len(evs)),
		spans: sc.spans[:0],
		devs:  sc.devs[:0],
	}
	if len(evs) > 0 {
		idx := sortByDeviceDayIDInto(sc.idx, evs)
		sc.idx = idx
		if sc.dev == nil {
			sc.dev = make(map[DeviceID]devIndex)
		} else {
			clear(sc.dev)
		}
		col.dev = sc.dev
		for i := 0; i < len(idx); {
			dev := evs[idx[i]].Device
			di := devIndex{base: uint32(len(col.spans)), first: EpochOfDay(evs[idx[i]].Day, epochDays)}
			prev := di.first - 1
			for i < len(idx) && evs[idx[i]].Device == dev {
				e := EpochOfDay(evs[idx[i]].Day, epochDays)
				for prev+1 < e { // empty slots between populated epochs
					col.spans = append(col.spans, span{})
					prev++
				}
				sp := span{off: uint32(len(col.evs))}
				for i < len(idx) && evs[idx[i]].Device == dev &&
					EpochOfDay(evs[idx[i]].Day, epochDays) == e {
					ev := evs[idx[i]]
					col.evs = append(col.evs, ev)
					col.keys = append(col.keys, db.intern.keyOf(ev))
					i++
				}
				sp.n = uint32(len(col.evs)) - sp.off
				col.spans = append(col.spans, sp)
				col.records++
				prev = e
			}
			di.count = uint32(len(col.spans)) - di.base
			col.devs = append(col.devs, dev)
			col.dev[dev] = di
		}
	}
	db.col = col
	db.epochs = nil
	db.frozen = true
	// The grown columns return to the scratch for the next freeze.
	sc.evs, sc.keys, sc.spans, sc.devs = col.evs, col.keys, col.spans, col.devs
	return db
}

// growCap returns s emptied, reallocated only when its capacity is below n.
func growCap[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, 0, n)
	}
	return s[:0]
}

// sortByDeviceDayID returns the permutation of evs in (device, day, ID,
// arrival) order — the bulk loaders' layout order. Epochs are monotone in
// days, so each device's records come out as contiguous epoch-ordered runs,
// and the arrival-index tiebreak makes the permutation equal to a stable
// (Day, ID) sort.
func sortByDeviceDayID(evs []Event) []int32 {
	return sortByDeviceDayIDInto(nil, evs)
}

// sortByDeviceDayIDInto is sortByDeviceDayID filling a reusable index buffer.
func sortByDeviceDayIDInto(idx []int32, evs []Event) []int32 {
	if cap(idx) < len(evs) {
		idx = make([]int32, len(evs))
	} else {
		idx = idx[:len(evs)]
	}
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(a, b int32) int {
		ea, eb := &evs[a], &evs[b]
		switch {
		case ea.Device != eb.Device:
			if ea.Device < eb.Device {
				return -1
			}
			return 1
		case ea.Day != eb.Day:
			if ea.Day < eb.Day {
				return -1
			}
			return 1
		case ea.ID != eb.ID:
			if ea.ID < eb.ID {
				return -1
			}
			return 1
		}
		return int(a - b) // arrival order for ties: a stable sort
	})
	return idx
}

// span is one (device, epoch) record's range in the frozen arena.
type span struct{ off, n uint32 }

// devIndex locates one device's dense epoch-span run inside the shared span
// table: slot i covers epoch first+i.
type devIndex struct {
	base  uint32
	count uint32
	first Epoch
}

// colStore is the frozen database: four flat arenas (events, keys, spans,
// device list) plus one map from device to its span run. Offsets are u32 —
// a single in-process store past 4.29 G events is out of scope by orders of
// magnitude.
type colStore struct {
	evs     []Event // payload arena, grouped by device then epoch, (Day, ID)-sorted within a record
	keys    []evKey // scan column, parallel to evs
	spans   []span  // dense per-(device, epoch) ranges
	devs    []DeviceID
	dev     map[DeviceID]devIndex
	records int // non-empty spans
}

// spanAt returns device d's span at epoch e (zero span when empty or out of
// the device's populated range).
func (c *colStore) spanAt(d DeviceID, e Epoch) span {
	di, ok := c.dev[d]
	if !ok {
		return span{}
	}
	i := int64(e) - int64(di.first)
	if i < 0 || i >= int64(di.count) {
		return span{}
	}
	return c.spans[int64(di.base)+i]
}

func (c *colStore) epochEvents(d DeviceID, e Epoch) []Event {
	sp := c.spanAt(d, e)
	if sp.n == 0 {
		return nil
	}
	return c.evs[sp.off : sp.off+sp.n : sp.off+sp.n]
}

// EventView is a zero-copy view of one device-epoch record: the record's
// slice of the event arena plus its parallel scan keys. The view shares the
// database's memory; callers must not modify the events it exposes.
type EventView struct {
	evs  []Event
	keys []evKey
}

// Len returns the number of events in the record.
func (v EventView) Len() int { return len(v.evs) }

// Events returns the record's events without copying. The slice aliases the
// database; treat it as read-only.
func (v EventView) Events() []Event { return v.evs }

// WindowViewsInto fills buf (resized to last-first+1 entries, reallocating
// only when capacity is short) with zero-copy views of device d's records
// over the epoch window [first, last], empty views for empty epochs. It is
// the scan-path sibling of WindowEventsInto and works in both phases: on a
// frozen store each view is a span lookup into the arena, on a loading-phase
// store it reads the epoch segments directly (same single-writer discipline
// as every other read).
func (db *Database) WindowViewsInto(buf []EventView, d DeviceID, first, last Epoch) []EventView {
	if last < first {
		return buf[:0]
	}
	k := int(last-first) + 1
	if cap(buf) < k {
		buf = make([]EventView, k)
	} else {
		buf = buf[:k]
		for i := range buf {
			buf[i] = EventView{}
		}
	}
	if db.col != nil {
		di, ok := db.col.dev[d]
		if !ok {
			return buf
		}
		for e := first; e <= last; e++ {
			i := int64(e) - int64(di.first)
			if i < 0 || i >= int64(di.count) {
				continue
			}
			if sp := db.col.spans[int64(di.base)+i]; sp.n > 0 {
				buf[e-first] = EventView{
					evs:  db.col.evs[sp.off : sp.off+sp.n : sp.off+sp.n],
					keys: db.col.keys[sp.off : sp.off+sp.n],
				}
			}
		}
		return buf
	}
	for e := first; e <= last; e++ {
		if seg := db.epochs[e]; seg != nil {
			if rec, ok := seg.byDevice[d]; ok {
				buf[e-first] = EventView{evs: rec.evs, keys: rec.keys}
			}
		}
	}
	return buf
}

// Matcher is a Selector compiled against this database's interned columns:
// the relevance predicate of the built-in selector forms lowered to integer
// compares over evKey. A Matcher is only meaningful against views of the
// database that compiled it (the intern IDs are per-database).
type Matcher struct {
	none     bool
	anyCamp  bool
	adv      uint32
	camp     uint32
	camps    []uint32
	firstDay int32
	lastDay  int32
}

// MatchesNone reports that the compiled selector can match no event in this
// database (e.g. its advertiser or campaigns never occur) — the caller may
// skip the scan entirely, which is exactly the zero-loss case.
func (m *Matcher) MatchesNone() bool { return m.none }

// Match reports whether event i of v is relevant — the compiled equivalent
// of Selector.Relevant, with no interface dispatch and no string compares.
func (m *Matcher) Match(v EventView, i int) bool {
	k := v.keys[i]
	if m.none || k.kind != uint8(KindImpression) || k.adv != m.adv ||
		k.day < m.firstDay || k.day > m.lastDay {
		return false
	}
	if m.anyCamp || k.camp == m.camp {
		return true
	}
	for _, c := range m.camps {
		if k.camp == c {
			return true
		}
	}
	return false
}

// Compile lowers sel to a column Matcher. ok is false when sel is not one of
// the built-in selector forms (CampaignSelector, ProductSelector,
// WindowSelector over either, by value or pointer) — the caller then falls
// back to interface dispatch. Compilation is read-only on the intern tables,
// so concurrent readers may compile freely; the common selectors compile
// with zero allocations (only a CampaignSelector naming ≥ 2 campaigns
// allocates its small ID set).
func (db *Database) Compile(sel Selector) (Matcher, bool) {
	if db.col == nil && db.deferredKeys {
		// A bulk load deferred the mutable key columns to Freeze; until
		// then the store cannot serve keyed views.
		return Matcher{}, false
	}
	m := Matcher{firstDay: math.MinInt32, lastDay: math.MaxInt32}
	if !db.compileInto(&m, sel) {
		return Matcher{}, false
	}
	return m, true
}

func (db *Database) compileInto(m *Matcher, sel Selector) bool {
	switch s := sel.(type) {
	case WindowSelector:
		if d := clampDay(s.FirstDay); d > m.firstDay {
			m.firstDay = d
		}
		if d := clampDay(s.LastDay); d < m.lastDay {
			m.lastDay = d
		}
		return db.compileInto(m, s.Inner)
	case *WindowSelector:
		return db.compileInto(m, *s)
	case CampaignSelector:
		return db.compileCampaign(m, s)
	case *CampaignSelector:
		return db.compileCampaign(m, *s)
	case ProductSelector:
		return db.compileProduct(m, s)
	case *ProductSelector:
		return db.compileProduct(m, *s)
	default:
		return false
	}
}

func (db *Database) compileCampaign(m *Matcher, s CampaignSelector) bool {
	adv, ok := db.intern.adv[s.Advertiser]
	if !ok {
		m.none = true
		return true
	}
	m.adv = adv
	if len(s.Campaigns) == 0 {
		m.anyCamp = true
		return true
	}
	// Campaigns the database never interned cannot match any event and
	// drop out of the compiled set, as do entries explicitly mapped to
	// false (Relevant tests the map value, not mere presence); an empty
	// surviving set matches nothing.
	first := true
	for c, on := range s.Campaigns {
		if !on {
			continue
		}
		id, ok := db.intern.camp[c]
		if !ok {
			continue
		}
		if first {
			m.camp = id
			first = false
			continue
		}
		m.camps = append(m.camps, id)
	}
	m.none = first
	return true
}

func (db *Database) compileProduct(m *Matcher, s ProductSelector) bool {
	adv, okA := db.intern.adv[s.Advertiser]
	camp, okC := db.intern.camp[s.Product]
	if !okA || !okC {
		m.none = true
		return true
	}
	m.adv = adv
	m.camp = camp
	return true
}
