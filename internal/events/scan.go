package events

// Multi-matcher window scan (DESIGN.md §10).
//
// The batched generate stage evaluates every pending request of one device in
// a single pass over the device's window records: instead of Q compiled-
// selector scans re-reading the same arena spans, one traversal tests each
// event against a bank of Matcher lanes. Events dispatch to lanes by the
// event's interned advertiser ID through a dense advertiser→lanes table
// (advertiser symbols are small intern-table indices, so the table is a flat
// offset array built by counting sort), making per-event cost O(1) plus the
// lanes that actually share the event's advertiser — independent of querier
// count, which is what makes the per-day super-batch cheaper than Q
// independent scans.
//
// Each lane owns its selection output: a private arena so a lane's selected
// events stay contiguous per epoch even though the traversal interleaves
// lanes, plus the same span/alias discipline as the single-matcher path
// (core's selectWindowCompiled) — full-match epochs alias the store's arena,
// sub-slices are taken only after the lane's arena stops growing. Per lane,
// the produced slices are identical, element for element and aliasing
// decision for aliasing decision, to a Matcher.Match loop over the lane's own
// window; the property suite in scan_test.go holds the two paths equal.

// ScanLane is one compiled selection in a multi-matcher window scan: the
// compiled matcher, the lane's epoch window, and the caller's output slots.
// The unexported fields are the lane's reusable selection state; zero-value
// lanes are ready for use and callers reuse the same lane structs (arena
// capacity included) across scans.
type ScanLane struct {
	// Matcher is the lane's compiled relevance predicate. It must have been
	// compiled by the same database the scan runs against.
	Matcher Matcher
	// First and Last delimit the lane's epoch window [First, Last].
	First, Last Epoch
	// Out receives the lane's per-epoch relevant-event slices: Out[i] is
	// epoch First+i's selection (nil when nothing matched). It must be
	// pre-sized to Last-First+1 entries; ScanWindow fills it in place.
	// Entries alias either the database or the lane's internal arena and are
	// valid until the lane's next scan.
	Out [][]Event

	arena   []Event
	spans   [][2]int
	cur     Epoch
	start   int
	matched int
}

// closeSpan seals the lane's open epoch, if any: the record is aliased when
// every one of its events matched (the arena space is returned), otherwise the
// span of arena entries accumulated since the epoch opened is recorded. Safe
// because arenas are lane-private — nothing was appended for a later epoch yet.
func (ln *ScanLane) closeSpan(views []EventView, uf Epoch) {
	if ln.matched == 0 {
		return
	}
	i := int(ln.cur - ln.First)
	if ln.matched == views[ln.cur-uf].Len() {
		ln.arena = ln.arena[:ln.start]
		ln.spans[i] = [2]int{scanAlias, int(ln.cur - uf)}
		return
	}
	ln.spans[i] = [2]int{ln.start, len(ln.arena)}
}

// laneRef is the dispatch table entry: one non-degenerate lane keyed by its
// matcher's interned advertiser ID.
type laneRef struct {
	adv  uint32
	lane int32
}

// scanAlias marks a lane epoch whose events all matched; the selection then
// aliases the store's record instead of an arena copy (the span's second
// element holds the view index to alias).
const scanAlias = -1

// laneHot is one dispatch-table entry: the lane's match-relevant state packed
// contiguously so the per-event test touches one small struct instead of
// chasing into the full ScanLane. The camps slow path (multi-campaign
// selectors) indirects through lane.
type laneHot struct {
	first, last       Epoch
	firstDay, lastDay int32
	camp              uint32
	lane              int32
	anyCamp           bool
	hasCamps          bool
}

// MultiScan is the reusable workspace of ScanWindow: the union-window view
// buffer and the advertiser dispatch table. One MultiScan serves one
// goroutine at a time; the zero value is ready for use.
type MultiScan struct {
	views []EventView
	byAdv []laneRef
	// starts/hot are the dense dispatch table: hot[starts[a]:starts[a+1]]
	// holds the lanes (in lane order) whose matcher is keyed to interned
	// advertiser a. cursor is the counting sort's scatter scratch.
	starts []int32
	cursor []int32
	hot    []laneHot
}

// growI32 resizes a reusable int32 slice to n zeroed entries.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// ScanWindow runs every lane's compiled selection over device d in one
// traversal of the union of the lanes' epoch windows. Each lane's Out is
// filled exactly as a per-lane Matcher.Match scan over [lane.First,
// lane.Last] would fill it: same slices, same store aliasing for full-match
// epochs, nil for empty selections. Lanes whose matcher can match nothing
// are filled with nil without touching the store (the zero-loss shortcut of
// the single-matcher path).
//
// Works in both database phases under the store's usual read discipline; the
// matchers must have been compiled by db.
func (ms *MultiScan) ScanWindow(db *Database, d DeviceID, lanes []ScanLane) {
	// Pass 1: reset lanes, shortcut degenerate matchers, build the dispatch
	// table, and accumulate the union window over the lanes that scan.
	var uf, ul Epoch
	ms.byAdv = ms.byAdv[:0]
	for li := range lanes {
		ln := &lanes[li]
		k := int(ln.Last-ln.First) + 1
		_ = ln.Out[:k]
		ln.arena = ln.arena[:0]
		ln.spans = ln.spans[:0]
		if ln.Matcher.MatchesNone() {
			for i := 0; i < k; i++ {
				ln.Out[i] = nil
			}
			continue
		}
		if len(ms.byAdv) == 0 {
			uf, ul = ln.First, ln.Last
		} else {
			if ln.First < uf {
				uf = ln.First
			}
			if ln.Last > ul {
				ul = ln.Last
			}
		}
		ms.byAdv = append(ms.byAdv, laneRef{adv: ln.Matcher.adv, lane: int32(li)})
	}
	if len(ms.byAdv) == 0 {
		return
	}
	// Build the dense dispatch table by counting sort over the lanes'
	// advertiser symbols (intern-table indices, so the offset array is small
	// and the scatter is stable in lane order).
	maxAdv := uint32(0)
	for _, lr := range ms.byAdv {
		if lr.adv > maxAdv {
			maxAdv = lr.adv
		}
	}
	nAdv := int(maxAdv) + 1
	ms.starts = growI32(ms.starts, nAdv+1)
	for _, lr := range ms.byAdv {
		ms.starts[lr.adv+1]++
	}
	for a := 0; a < nAdv; a++ {
		ms.starts[a+1] += ms.starts[a]
	}
	ms.cursor = growI32(ms.cursor, nAdv)
	copy(ms.cursor, ms.starts[:nAdv])
	if cap(ms.hot) < len(ms.byAdv) {
		ms.hot = make([]laneHot, len(ms.byAdv))
	} else {
		ms.hot = ms.hot[:len(ms.byAdv)]
	}
	for _, lr := range ms.byAdv {
		ln := &lanes[lr.lane]
		m := &ln.Matcher
		ms.hot[ms.cursor[lr.adv]] = laneHot{
			first: ln.First, last: ln.Last,
			firstDay: m.firstDay, lastDay: m.lastDay,
			camp: m.camp, lane: lr.lane,
			anyCamp: m.anyCamp, hasCamps: len(m.camps) > 0,
		}
		ms.cursor[lr.adv]++
		// Per-lane selection bookkeeping: spans direct-indexed by window
		// slot, zeroed ({0,0} reads as "nothing matched"); cur marks the
		// lane's open epoch — none yet.
		k := int(ln.Last-ln.First) + 1
		if cap(ln.spans) < k {
			ln.spans = make([][2]int, k)
		} else {
			ln.spans = ln.spans[:k]
			clear(ln.spans)
		}
		ln.cur = uf - 1
		ln.matched = 0
	}

	// Pass 2: one view fetch for the union window, then one event traversal.
	// Per event, the lane bank is entered by advertiser ID, so lanes that
	// cannot match the event (different advertiser — the overwhelmingly
	// common case with many queriers) are never tested at all. A lane does
	// per-epoch work only for epochs in which it actually matches something:
	// its first match of an epoch seals the previous epoch's span (closeSpan)
	// and opens a new one; untouched epochs keep their zeroed span.
	ms.views = db.WindowViewsInto(ms.views, d, uf, ul)
	views := ms.views
	starts := ms.starts
	hot := ms.hot
	for e := uf; e <= ul; e++ {
		v := views[e-uf]
		n := v.Len()
		if n == 0 {
			continue
		}
		evs := v.evs
		keys := v.keys
		for i := 0; i < n; i++ {
			key := keys[i]
			if key.kind != uint8(KindImpression) {
				continue
			}
			a := int(key.adv)
			if a >= nAdv {
				continue
			}
			lo, hi := starts[a], starts[a+1]
			for j := lo; j < hi; j++ {
				h := &hot[j]
				// Campaign first: with per-advertiser campaign fan-out it is
				// by far the most selective predicate, so most lane tests end
				// on this one compare.
				if !h.anyCamp && key.camp != h.camp {
					if !h.hasCamps || !matchCamps(lanes[h.lane].Matcher.camps, key.camp) {
						continue
					}
				}
				if e < h.first || e > h.last {
					continue
				}
				if key.day < h.firstDay || key.day > h.lastDay {
					continue
				}
				ln := &lanes[h.lane]
				if ln.cur != e {
					ln.closeSpan(views, uf)
					ln.cur = e
					ln.start = len(ln.arena)
					ln.matched = 0
				}
				ln.arena = append(ln.arena, evs[i])
				ln.matched++
			}
		}
	}

	// Pass 3: seal the still-open spans; the arenas have stopped growing, so
	// resolve spans to stable sub-slices, exactly as the single-matcher path
	// does.
	for _, lr := range ms.byAdv {
		ln := &lanes[lr.lane]
		ln.closeSpan(views, uf)
		for i, sp := range ln.spans {
			switch {
			case sp[0] == scanAlias:
				ln.Out[i] = views[sp[1]].evs
			case sp[0] == sp[1]:
				ln.Out[i] = nil // nothing relevant: the zero-loss signal
			default:
				ln.Out[i] = ln.arena[sp[0]:sp[1]:sp[1]]
			}
		}
	}
}

// matchCamps is the multi-campaign slow path of the per-event test.
func matchCamps(camps []uint32, camp uint32) bool {
	for _, c := range camps {
		if camp == c {
			return true
		}
	}
	return false
}
