package events

// Selector is the querier-provided relevant-event predicate F_A (§4.1.2):
// attribution functions only ever see F ∩ F_A, so the selector fully
// determines which on-device data a query can touch. Cookie Monster's
// zero-loss optimization fires exactly when an epoch's selection is empty.
type Selector interface {
	// Relevant reports whether the event belongs to F_A.
	Relevant(ev Event) bool
}

// SelectorFunc adapts a function to the Selector interface.
type SelectorFunc func(ev Event) bool

// Relevant implements Selector.
func (f SelectorFunc) Relevant(ev Event) bool { return f(ev) }

// Select returns the relevant subset F ∩ F_A of a device-epoch record,
// preserving order. It returns nil when nothing is relevant, which is the
// signal the budgeting engine uses for the zero-loss case.
func Select(evs []Event, sel Selector) []Event {
	var out []Event
	for _, ev := range evs {
		if sel.Relevant(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// CampaignSelector matches impressions for one advertiser whose campaign is
// in a given set. An empty campaign set matches every campaign of the
// advertiser. This is the selector used by the single-advertiser summation
// queries of §2.1 ("any impressions of campaigns a1 and a2").
type CampaignSelector struct {
	Advertiser Site
	Campaigns  map[string]bool
}

// NewCampaignSelector builds a CampaignSelector over the listed campaigns.
func NewCampaignSelector(advertiser Site, campaigns ...string) CampaignSelector {
	set := make(map[string]bool, len(campaigns))
	for _, c := range campaigns {
		set[c] = true
	}
	return CampaignSelector{Advertiser: advertiser, Campaigns: set}
}

// Relevant implements Selector: impressions of the advertiser, filtered by
// campaign when a campaign set was given. Conversions are never relevant;
// queries access public conversions only through report identifiers, which
// is the sufficient condition F_A ∩ P = ∅ for Thm. 1 case 1.
func (s CampaignSelector) Relevant(ev Event) bool {
	if !ev.IsImpression() || ev.Advertiser != s.Advertiser {
		return false
	}
	return len(s.Campaigns) == 0 || s.Campaigns[ev.Campaign]
}

// ProductSelector matches impressions for one advertiser that advertise a
// specific product (by campaign naming convention campaign == product key).
// Dataset generators tag campaigns with product keys so the workload's
// per-product queries can reuse this selector.
type ProductSelector struct {
	Advertiser Site
	Product    string
}

// Relevant implements Selector.
func (s ProductSelector) Relevant(ev Event) bool {
	return ev.IsImpression() && ev.Advertiser == s.Advertiser && ev.Campaign == s.Product
}

// WindowSelector wraps a Selector with a day range [FirstDay, LastDay],
// restricting relevance to impressions that occurred within the attribution
// window measured in days (epochs are coarser than days, so the first epoch
// of a window may straddle its boundary).
type WindowSelector struct {
	Inner    Selector
	FirstDay int
	LastDay  int
}

// Relevant implements Selector.
func (s WindowSelector) Relevant(ev Event) bool {
	if ev.Day < s.FirstDay || ev.Day > s.LastDay {
		return false
	}
	return s.Inner.Relevant(ev)
}
