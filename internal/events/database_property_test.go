package events

import (
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"sync"
	"testing"
)

// refStore is the pre-columnar map-of-slices store (device → epoch → []Event
// with a dense per-device index compiled at freeze), kept verbatim as the
// executable specification the columnar layout is property-tested against.
type refStore struct {
	devices map[DeviceID]*refDeviceStore
	frozen  bool
}

type refDeviceStore struct {
	epochs  map[Epoch][]Event
	first   Epoch
	byEpoch [][]Event
}

func newRefStore() *refStore {
	return &refStore{devices: make(map[DeviceID]*refDeviceStore)}
}

func (db *refStore) record(epoch Epoch, ev Event) {
	ds := db.devices[ev.Device]
	if ds == nil {
		ds = &refDeviceStore{epochs: make(map[Epoch][]Event)}
		db.devices[ev.Device] = ds
	}
	evs := ds.epochs[epoch]
	evs = append(evs, ev)
	// The old linear bubble, preserved as the ordering specification.
	for i := len(evs) - 1; i > 0 && evs[i].Before(evs[i-1]); i-- {
		evs[i], evs[i-1] = evs[i-1], evs[i]
	}
	ds.epochs[epoch] = evs
}

func (db *refStore) evictBefore(first Epoch) int {
	removed := 0
	for d, ds := range db.devices {
		for e := range ds.epochs {
			if e < first {
				delete(ds.epochs, e)
				removed++
			}
		}
		if len(ds.epochs) == 0 {
			delete(db.devices, d)
		}
	}
	return removed
}

func (db *refStore) freeze() {
	for _, ds := range db.devices {
		if len(ds.epochs) == 0 {
			ds.byEpoch = [][]Event{}
			continue
		}
		first, last := Epoch(0), Epoch(0)
		started := false
		for e := range ds.epochs {
			if !started || e < first {
				first = e
			}
			if !started || e > last {
				last = e
			}
			started = true
		}
		ds.first = first
		ds.byEpoch = make([][]Event, int(last-first)+1)
		for e, evs := range ds.epochs {
			ds.byEpoch[e-first] = evs
		}
	}
	db.frozen = true
}

func (db *refStore) epochEvents(d DeviceID, e Epoch) []Event {
	ds := db.devices[d]
	if ds == nil {
		return nil
	}
	if ds.byEpoch != nil {
		i := int(e - ds.first)
		if i < 0 || i >= len(ds.byEpoch) {
			return nil
		}
		return ds.byEpoch[i]
	}
	return ds.epochs[e]
}

func (db *refStore) numRecords() int {
	n := 0
	for _, ds := range db.devices {
		n += len(ds.epochs)
	}
	return n
}

func (db *refStore) numEvents() int {
	n := 0
	for _, ds := range db.devices {
		for _, evs := range ds.epochs {
			n += len(evs)
		}
	}
	return n
}

// randomEvent draws an event whose field values collide often, so ordering,
// interning, and selector corner cases all get exercised.
func randomEvent(rng *rand.Rand, id EventID) Event {
	sites := []Site{"nike.com", "adidas.com", "puma.com"}
	camps := []string{"", "p0", "p1", "p2", "p3"}
	ev := Event{
		ID:         id,
		Device:     DeviceID(rng.Intn(7)),
		Day:        rng.Intn(70) - 10,
		Advertiser: sites[rng.Intn(len(sites))],
		Publisher:  Site([]string{"pub.example", "news.example"}[rng.Intn(2)]),
		Campaign:   camps[rng.Intn(len(camps))],
	}
	if rng.Intn(4) == 0 {
		ev.Kind = KindConversion
		ev.Product = camps[rng.Intn(len(camps))]
		ev.Value = float64(rng.Intn(100))
	}
	return ev
}

// randomSelector draws one of the compilable selector forms, or (sometimes)
// a SelectorFunc that forces the generic fallback.
func randomSelector(rng *rand.Rand) Selector {
	sites := []Site{"nike.com", "adidas.com", "absent.example"}
	camps := []string{"", "p0", "p1", "p2", "p9"}
	var sel Selector
	switch rng.Intn(4) {
	case 0:
		n := rng.Intn(4)
		set := make(map[string]bool, n)
		for i := 0; i < n; i++ {
			set[camps[rng.Intn(len(camps))]] = rng.Intn(5) != 0 // some false entries
		}
		sel = CampaignSelector{Advertiser: sites[rng.Intn(len(sites))], Campaigns: set}
	case 1:
		sel = ProductSelector{Advertiser: sites[rng.Intn(len(sites))], Product: camps[rng.Intn(len(camps))]}
	case 2:
		adv := sites[rng.Intn(len(sites))]
		sel = SelectorFunc(func(ev Event) bool { return ev.IsImpression() && ev.Advertiser == adv })
	default:
		first := rng.Intn(60) - 15
		sel = WindowSelector{
			Inner:    ProductSelector{Advertiser: sites[rng.Intn(len(sites))], Product: camps[rng.Intn(len(camps))]},
			FirstDay: first,
			LastDay:  first + rng.Intn(40),
		}
	}
	return sel
}

// selectCompiled runs the compiled scan of one window epoch (matcher path
// when the selector compiles, Select otherwise) and returns the relevant
// subset — the columnar side of the property comparison.
func selectCompiled(db *Database, sel Selector, dev DeviceID, first, last Epoch) [][]Event {
	views := db.WindowViewsInto(nil, dev, first, last)
	out := make([][]Event, len(views))
	m, ok := db.Compile(sel)
	for i, v := range views {
		if !ok {
			out[i] = Select(v.Events(), sel)
			continue
		}
		var sub []Event
		for j := 0; j < v.Len(); j++ {
			if m.Match(v, j) {
				sub = append(sub, v.Events()[j])
			}
		}
		out[i] = sub
	}
	return out
}

// TestStorePropertyVsReference drives random interleavings of Record,
// EvictBefore, reads, Freeze, and compiled-selector scans against the
// reference map-of-slices store. Both sides must agree on every observable
// at every step.
func TestStorePropertyVsReference(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			db := NewDatabase()
			ref := newRefStore()
			var nextID EventID

			checkReads := func(stage string) {
				t.Helper()
				if db.NumRecords() != ref.numRecords() || db.NumEvents() != ref.numEvents() ||
					db.NumDevices() != len(ref.devices) {
					t.Fatalf("%s: counts diverge: records %d/%d events %d/%d devices %d/%d",
						stage, db.NumRecords(), ref.numRecords(), db.NumEvents(), ref.numEvents(),
						db.NumDevices(), len(ref.devices))
				}
				for d := DeviceID(0); d < 8; d++ {
					for e := Epoch(-4); e <= 10; e++ {
						got, want := db.EpochEvents(d, e), ref.epochEvents(d, e)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s: EpochEvents(%d,%d) = %v, ref %v", stage, d, e, got, want)
						}
					}
					w := db.WindowEvents(d, -2, 9)
					for i, evs := range w {
						if want := ref.epochEvents(d, Epoch(i)-2); !reflect.DeepEqual(evs, want) {
							t.Fatalf("%s: WindowEvents(%d)[%d] = %v, ref %v", stage, d, i, evs, want)
						}
					}
				}
			}

			checkScan := func(stage string) {
				t.Helper()
				for trial := 0; trial < 8; trial++ {
					sel := randomSelector(rng)
					d := DeviceID(rng.Intn(8))
					first := Epoch(rng.Intn(8) - 3)
					last := first + Epoch(rng.Intn(6))
					got := selectCompiled(db, sel, d, first, last)
					for i := range got {
						want := Select(ref.epochEvents(d, first+Epoch(i)), sel)
						if !reflect.DeepEqual(got[i], want) {
							t.Fatalf("%s: compiled scan (%T, dev %d, epoch %d) = %v, ref Select %v",
								stage, sel, d, first+Epoch(i), got[i], want)
						}
					}
				}
			}

			for op := 0; op < 300; op++ {
				switch r := rng.Intn(100); {
				case r < 70:
					nextID++
					ev := randomEvent(rng, nextID)
					epoch := Epoch(rng.Intn(10) - 3)
					db.Record(epoch, ev)
					ref.record(epoch, ev)
				case r < 75:
					floor := Epoch(rng.Intn(12) - 4)
					if got, want := db.EvictBefore(floor), ref.evictBefore(floor); got != want {
						t.Fatalf("op %d: EvictBefore(%d) removed %d, ref %d", op, floor, got, want)
					}
				case r < 90:
					checkReads(fmt.Sprintf("op %d", op))
				default:
					checkScan(fmt.Sprintf("op %d", op))
				}
			}

			checkReads("pre-freeze")
			checkScan("pre-freeze")
			db.Freeze()
			ref.freeze()
			checkReads("post-freeze")
			checkScan("post-freeze")

			// Deterministic iteration surfaces must agree too.
			if !reflect.DeepEqual(db.Conversions(), refConversions(ref)) {
				t.Fatal("Conversions diverges from reference")
			}
		})
	}
}

// refConversions mirrors Database.Conversions over the reference store.
func refConversions(ref *refStore) []Event {
	var out []Event
	for d := DeviceID(0); d < 8; d++ {
		for e := Epoch(-4); e <= 10; e++ {
			for _, ev := range ref.epochEvents(d, e) {
				if ev.IsConversion() {
					out = append(out, ev)
				}
			}
		}
	}
	// Same global (Day, ID) sort as the real implementation.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Before(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestBulkLoadersMatchRecordLoop holds RecordAll and NewFrozen to the
// per-event Record loop: same batch (including duplicated (Day, ID) keys,
// which the loaders' stability tiebreak must keep in arrival order), same
// frozen store observables, same compiled scans.
func TestBulkLoadersMatchRecordLoop(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		batch := make([]Event, 400)
		for i := range batch {
			id := EventID(i + 1)
			if i > 0 && rng.Intn(10) == 0 {
				id = batch[rng.Intn(i)].ID // duplicate key: stability matters
			}
			batch[i] = randomEvent(rng, id)
			if id != EventID(i+1) {
				batch[i].Day = batch[slices.IndexFunc(batch[:i], func(e Event) bool { return e.ID == id })].Day
			}
		}
		const epochDays = 7
		loop, bulk := NewDatabase(), NewDatabase()
		for _, ev := range batch {
			loop.Record(EpochOfDay(ev.Day, epochDays), ev)
		}
		bulk.RecordAll(epochDays, batch)
		// Pre-freeze, the bulk store must serve the same reads (with keys
		// deferred, compilation falls back — Compile must say so).
		if _, ok := bulk.Compile(ProductSelector{Advertiser: "nike.com", Product: "p0"}); ok {
			t.Fatal("Compile succeeded on a store with deferred keys")
		}
		loop.Freeze()
		bulk.Freeze()
		frozen := NewFrozen(epochDays, batch)
		for name, db := range map[string]*Database{"RecordAll": bulk, "NewFrozen": frozen} {
			if !reflect.DeepEqual(loop.Devices(), db.Devices()) {
				t.Fatalf("seed %d: %s device sets diverge", seed, name)
			}
			if loop.NumRecords() != db.NumRecords() || loop.NumEvents() != db.NumEvents() {
				t.Fatalf("seed %d: %s counts diverge", seed, name)
			}
			for _, d := range loop.Devices() {
				if !reflect.DeepEqual(loop.DeviceEpochs(d), db.DeviceEpochs(d)) {
					t.Fatalf("seed %d: %s epochs of device %d diverge", seed, name, d)
				}
				for _, e := range loop.DeviceEpochs(d) {
					if !reflect.DeepEqual(loop.EpochEvents(d, e), db.EpochEvents(d, e)) {
						t.Fatalf("seed %d: %s record (%d, %d) diverges:\nloop %v\nbulk %v",
							seed, name, d, e, loop.EpochEvents(d, e), db.EpochEvents(d, e))
					}
				}
			}
			if !reflect.DeepEqual(loop.Conversions(), db.Conversions()) {
				t.Fatalf("seed %d: %s conversions diverge", seed, name)
			}
			for trial := 0; trial < 10; trial++ {
				sel := randomSelector(rng)
				d := DeviceID(rng.Intn(8))
				if !reflect.DeepEqual(selectCompiled(db, sel, d, -2, 9), selectCompiled(loop, sel, d, -2, 9)) {
					t.Fatalf("seed %d: %s compiled scan diverges", seed, name)
				}
			}
		}
	}
}

// TestFrozenConcurrentCompiledScans hammers a frozen store from concurrent
// readers running compiled scans, window views, and plain reads — the
// -race proof that the columnar read path needs no synchronization.
func TestFrozenConcurrentCompiledScans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := NewDatabase()
	for i := 0; i < 500; i++ {
		db.Record(Epoch(rng.Intn(6)), randomEvent(rng, EventID(i+1)))
	}
	db.Freeze()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var views []EventView
			for iter := 0; iter < 200; iter++ {
				sel := randomSelector(rng)
				m, ok := db.Compile(sel)
				d := DeviceID(rng.Intn(8))
				views = db.WindowViewsInto(views, d, 0, 5)
				for _, v := range views {
					for i := 0; i < v.Len(); i++ {
						want := sel.Relevant(v.Events()[i])
						if ok {
							if got := m.Match(v, i); got != want {
								panic(fmt.Sprintf("matcher diverges from selector: %v vs %v", got, want))
							}
						}
					}
				}
				db.EpochEvents(d, Epoch(rng.Intn(6)))
				db.WindowEvents(d, 0, 5)
			}
		}(w)
	}
	wg.Wait()
}
