package budget

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/events"
	"repro/internal/privacy"
)

const nike = events.Site("nike.com")

func TestAuthorizeConsumesAllWindowEpochs(t *testing.T) {
	b := NewIPALike(1.0)
	if err := b.Authorize(nike, 0, 3, 0.25); err != nil {
		t.Fatal(err)
	}
	for e := events.Epoch(0); e <= 3; e++ {
		if got := b.Consumed(nike, e); got != 0.25 {
			t.Fatalf("epoch %d consumed = %v", e, got)
		}
	}
	if b.Consumed(nike, 4) != 0 {
		t.Fatal("untouched epoch consumed")
	}
}

func TestAuthorizeAllOrNothing(t *testing.T) {
	b := NewIPALike(1.0)
	// Exhaust epoch 2 only.
	if err := b.Authorize(nike, 2, 2, 1.0); err != nil {
		t.Fatal(err)
	}
	// A window covering epoch 2 must be rejected *without* charging the
	// other epochs.
	err := b.Authorize(nike, 0, 3, 0.5)
	if !errors.Is(err, privacy.ErrBudgetExhausted) {
		t.Fatalf("err = %v", err)
	}
	for _, e := range []events.Epoch{0, 1, 3} {
		if got := b.Consumed(nike, e); got != 0 {
			t.Fatalf("epoch %d charged by rejected query: %v", e, got)
		}
	}
	// A window avoiding epoch 2 still works.
	if err := b.Authorize(nike, 0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestAuthorizePerQuerierIsolation(t *testing.T) {
	b := NewIPALike(1.0)
	if err := b.Authorize(nike, 0, 0, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := b.Authorize("adidas.com", 0, 0, 1.0); err != nil {
		t.Fatalf("other querier blocked: %v", err)
	}
}

func TestAuthorizeSequentialDepletion(t *testing.T) {
	// The headline IPA behaviour: repeated queries deplete the shared
	// filter after capacity/ε queries, then everything is rejected.
	b := NewIPALike(1.0)
	const eps = 0.3
	granted := 0
	for i := 0; i < 10; i++ {
		if b.Authorize(nike, 0, 4, eps) == nil {
			granted++
		}
	}
	if granted != 3 {
		t.Fatalf("granted %d queries, want 3 (= ⌊1/0.3⌋)", granted)
	}
}

func TestAuthorizeEmptyWindow(t *testing.T) {
	b := NewIPALike(1.0)
	if err := b.Authorize(nike, 5, 4, 0.5); err != nil {
		t.Fatalf("inverted window should be a no-op: %v", err)
	}
	if b.Consumed(nike, 4) != 0 || b.Consumed(nike, 5) != 0 {
		t.Fatal("inverted window consumed budget")
	}
}

func TestAuthorizeNegativeEpsilonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative eps did not panic")
		}
	}()
	NewIPALike(1).Authorize(nike, 0, 0, -0.1)
}

func TestNewIPALikeNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative capacity did not panic")
		}
	}()
	NewIPALike(-1)
}

func TestCapacityAccessor(t *testing.T) {
	if NewIPALike(2.5).Capacity() != 2.5 {
		t.Fatal("capacity accessor wrong")
	}
}

func TestConcurrentAuthorizeNeverOverConsumes(t *testing.T) {
	b := NewIPALike(1.0)
	const eps = 0.1
	const workers = 50
	var wg sync.WaitGroup
	var mu sync.Mutex
	granted := 0
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Authorize(nike, 0, 2, eps) == nil {
				mu.Lock()
				granted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if granted != 10 {
		t.Fatalf("granted %d, want 10", granted)
	}
	for e := events.Epoch(0); e <= 2; e++ {
		if got := b.Consumed(nike, e); math.Abs(got-1.0) > 1e-9 {
			t.Fatalf("epoch %d consumed %v, want 1.0", e, got)
		}
	}
}
