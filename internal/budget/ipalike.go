// Package budget implements the off-device budgeting baseline: the paper's
// IPA-like system (§6.1), in which DP budgeting happens centrally at the
// MPC, with one privacy filter per (querier, epoch) shared by the whole
// device population. Under traditional DP the central filter must charge the
// query's full ε to every epoch the query touches, regardless of which
// devices actually contributed data (Thm. 3) — the coarseness Cookie
// Monster's IDP formulation eliminates.
package budget

import (
	"sync"

	"repro/internal/events"
	"repro/internal/privacy"
)

// IPALike is the centralized budgeter. Unlike the on-device systems it
// rejects queries outright when budget is insufficient (it has no need to
// hide budget state: the budget is population-level, not data-dependent).
type IPALike struct {
	capacity float64

	mu      sync.Mutex
	filters map[events.Site]map[events.Epoch]*privacy.Filter
}

// NewIPALike returns a central budgeter with per-epoch capacity epsG for
// each querier.
func NewIPALike(epsG float64) *IPALike {
	if epsG < 0 {
		panic("budget: negative capacity")
	}
	return &IPALike{
		capacity: epsG,
		filters:  make(map[events.Site]map[events.Epoch]*privacy.Filter),
	}
}

// filter returns (lazily creating) the central filter for (querier, epoch).
// Callers must hold b.mu.
func (b *IPALike) filter(q events.Site, e events.Epoch) *privacy.Filter {
	byEpoch := b.filters[q]
	if byEpoch == nil {
		byEpoch = make(map[events.Epoch]*privacy.Filter)
		b.filters[q] = byEpoch
	}
	f := byEpoch[e]
	if f == nil {
		f = privacy.NewFilter(b.capacity)
		byEpoch[e] = f
	}
	return f
}

// Authorize checks that querier q can spend eps on every epoch in
// [first, last] and, if so, consumes it from all of them atomically.
// If any epoch lacks budget it consumes nothing and returns
// privacy.ErrBudgetExhausted: the query is rejected (IPA refuses further
// queries until the per-site budget refreshes, §2.2).
func (b *IPALike) Authorize(q events.Site, first, last events.Epoch, eps float64) error {
	if eps < 0 {
		panic("budget: negative epsilon")
	}
	if last < first {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for e := first; e <= last; e++ {
		if !b.filter(q, e).CanConsume(eps) {
			return privacy.ErrBudgetExhausted
		}
	}
	for e := first; e <= last; e++ {
		if err := b.filter(q, e).Consume(eps); err != nil {
			// Unreachable: we hold the lock and just checked.
			panic("budget: central consume failed after check")
		}
	}
	return nil
}

// Consumed returns the budget querier q has consumed from epoch e's central
// filter. Under centralized DP this is the privacy loss charged to *every*
// device for that epoch, which is how the experiments attribute IPA
// consumption to device-epochs.
func (b *IPALike) Consumed(q events.Site, e events.Epoch) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	byEpoch := b.filters[q]
	if byEpoch == nil {
		return 0
	}
	f := byEpoch[e]
	if f == nil {
		return 0
	}
	return f.Consumed()
}

// Capacity returns the per-epoch capacity.
func (b *IPALike) Capacity() float64 { return b.capacity }
