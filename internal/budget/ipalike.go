// Package budget implements the off-device budgeting baseline: the paper's
// IPA-like system (§6.1), in which DP budgeting happens centrally at the
// MPC, with one privacy filter per (querier, epoch) shared by the whole
// device population. Under traditional DP the central filter must charge the
// query's full ε to every epoch the query touches, regardless of which
// devices actually contributed data (Thm. 3) — the coarseness Cookie
// Monster's IDP formulation eliminates.
package budget

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/events"
	"repro/internal/privacy"
)

// IPALike is the centralized budgeter. Unlike the on-device systems it
// rejects queries outright when budget is insufficient (it has no need to
// hide budget state: the budget is population-level, not data-dependent).
type IPALike struct {
	capacity float64

	mu      sync.Mutex
	filters map[events.Site]map[events.Epoch]*privacy.Filter
}

// NewIPALike returns a central budgeter with per-epoch capacity epsG for
// each querier.
func NewIPALike(epsG float64) *IPALike {
	if epsG < 0 {
		panic("budget: negative capacity")
	}
	return &IPALike{
		capacity: epsG,
		filters:  make(map[events.Site]map[events.Epoch]*privacy.Filter),
	}
}

// filter returns (lazily creating) the central filter for (querier, epoch).
// Callers must hold b.mu.
func (b *IPALike) filter(q events.Site, e events.Epoch) *privacy.Filter {
	byEpoch := b.filters[q]
	if byEpoch == nil {
		byEpoch = make(map[events.Epoch]*privacy.Filter)
		b.filters[q] = byEpoch
	}
	f := byEpoch[e]
	if f == nil {
		f = privacy.NewFilter(b.capacity)
		byEpoch[e] = f
	}
	return f
}

// Authorize checks that querier q can spend eps on every epoch in
// [first, last] and, if so, consumes it from all of them atomically.
// If any epoch lacks budget it consumes nothing and returns
// privacy.ErrBudgetExhausted: the query is rejected (IPA refuses further
// queries until the per-site budget refreshes, §2.2).
func (b *IPALike) Authorize(q events.Site, first, last events.Epoch, eps float64) error {
	if eps < 0 {
		panic("budget: negative epsilon")
	}
	if last < first {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for e := first; e <= last; e++ {
		if !b.filter(q, e).CanConsume(eps) {
			return privacy.ErrBudgetExhausted
		}
	}
	for e := first; e <= last; e++ {
		if err := b.filter(q, e).Consume(eps); err != nil {
			// Unreachable: we hold the lock and just checked.
			panic("budget: central consume failed after check")
		}
	}
	return nil
}

// Consumed returns the budget querier q has consumed from epoch e's central
// filter. Under centralized DP this is the privacy loss charged to *every*
// device for that epoch, which is how the experiments attribute IPA
// consumption to device-epochs.
func (b *IPALike) Consumed(q events.Site, e events.Epoch) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	byEpoch := b.filters[q]
	if byEpoch == nil {
		return 0
	}
	f := byEpoch[e]
	if f == nil {
		return 0
	}
	return f.Consumed()
}

// Capacity returns the per-epoch capacity.
func (b *IPALike) Capacity() float64 { return b.capacity }

// FilterRow is one initialized (querier, epoch) central filter, the unit of
// the checkpoint snapshot.
type FilterRow struct {
	Querier  events.Site
	Epoch    events.Epoch
	Consumed float64
}

// Rows returns every initialized central filter's consumed budget, sorted by
// querier then epoch — the checkpoint snapshot source.
func (b *IPALike) Rows() []FilterRow {
	b.mu.Lock()
	defer b.mu.Unlock()
	var rows []FilterRow
	for q, byEpoch := range b.filters {
		for e, f := range byEpoch {
			rows = append(rows, FilterRow{Querier: q, Epoch: e, Consumed: f.Consumed()})
		}
	}
	slices.SortFunc(rows, func(x, y FilterRow) int {
		if x.Querier != y.Querier {
			if x.Querier < y.Querier {
				return -1
			}
			return 1
		}
		switch {
		case x.Epoch < y.Epoch:
			return -1
		case x.Epoch > y.Epoch:
			return 1
		}
		return 0
	})
	return rows
}

// Restore sets one central filter's consumed budget from a persisted row.
// Consumption is charged through the filter's own check-and-consume path on
// a fresh filter, so a row that would exceed capacity is rejected rather
// than silently clamped — a corrupt snapshot must not manufacture budget
// headroom or hide an exhausted filter.
func (b *IPALike) Restore(q events.Site, e events.Epoch, consumed float64) error {
	if consumed < 0 {
		return fmt.Errorf("budget: negative restored consumption %v for %s/%d", consumed, q, e)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	f := b.filter(q, e)
	if already := f.Consumed(); already > consumed {
		return fmt.Errorf("budget: restore would refund %s/%d from %v to %v", q, e, already, consumed)
	} else if already > 0 {
		consumed -= already
	}
	if err := f.Consume(consumed); err != nil {
		return fmt.Errorf("budget: restoring %s/%d: %w", q, e, err)
	}
	return nil
}
