package stream

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/events"
)

// This file holds the deterministic fan-out primitives shared by the batch
// engine (internal/workload's generate stage) and the streaming service's
// per-day multiplexed generation. Both rely on the same two properties:
// work partitioned by device keeps same-device filter operations sequential
// in submission order, and index-addressed output slots make the fold order
// independent of the goroutine schedule.

// FanOut runs fn(job) for jobs [0, n) on up to workers goroutines, pulling
// jobs from an atomic queue. It propagates the first panic to the caller and
// returns once every job finished.
func FanOut(n, workers int, fn func(job int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for job := 0; job < n; job++ {
			fn(job)
		}
		return
	}
	var next atomic.Int64
	var panicMu sync.Mutex
	var panicked any
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				job := int(next.Add(1)) - 1
				if job >= n {
					return
				}
				fn(job)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// GroupByDevice partitions batch indices by device, groups ordered by first
// appearance and each group preserving batch order — the unit of parallel
// work that keeps same-device filter operations sequential. When the batch
// concatenates several queries' conversions in canonical query order, the
// groups serialize a device's operations across all of them, which is what
// lets the streaming service multiplex queriers concurrently and still match
// the batch engine bit for bit.
func GroupByDevice(batch []events.Event) [][]int {
	order := make(map[events.DeviceID]int, len(batch))
	var groups [][]int
	for i, conv := range batch {
		g, ok := order[conv.Device]
		if !ok {
			g = len(groups)
			order[conv.Device] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], i)
	}
	return groups
}

// GenerateReports runs the on-device generate stage for one batch of
// conversions: device-grouped GenerateReport calls fanned out across
// workers, reports and diagnostics slotted by conversion index. This is the
// single copy of the determinism-critical loop both engines execute — the
// batch engine per query batch, the streaming service per day super-batch.
func GenerateReports(fleet *core.Fleet, reqs []*core.Request, batch []events.Event,
	workers int) (reports []*core.Report, diags []*core.Diagnostics) {
	reports = make([]*core.Report, len(batch))
	diags = make([]*core.Diagnostics, len(batch))
	groups := GroupByDevice(batch)
	FanOut(len(groups), workers, func(g int) {
		for _, i := range groups[g] {
			dev := fleet.GetOrCreate(batch[i].Device)
			rep, diag, err := dev.GenerateReport(reqs[i])
			if err != nil {
				panic("stream: internal request invalid: " + err.Error())
			}
			reports[i], diags[i] = rep, diag
		}
	})
	return reports, diags
}

// TrueValues runs the centralized generate stage: every conversion's true
// report value computed from the full data. The reads are side-effect free,
// so the fan-out needs no device grouping.
func TrueValues(db *events.Database, reqs []*core.Request, batch []events.Event,
	workers int) []float64 {
	out := make([]float64, len(batch))
	FanOut(len(batch), workers, func(i int) {
		out[i] = core.TrueReportValue(db, batch[i].Device, reqs[i])
	})
	return out
}
