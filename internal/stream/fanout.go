package stream

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/events"
)

// This file holds the deterministic fan-out primitives shared by the batch
// engine (internal/workload's generate stage) and the streaming service's
// per-day multiplexed generation. Both rely on the same two properties:
// work partitioned by device keeps same-device budget operations sequential
// in submission order, and index-addressed output slots make the fold order
// independent of the goroutine schedule.

// FanOutWorkers runs fn(worker, job) for jobs [0, n) on up to workers
// goroutines, pulling jobs from an atomic queue. The worker index is dense
// in [0, min(workers, n)) and identifies the calling goroutine, so callers
// can hand each worker private scratch state without locking. It propagates
// the first panic to the caller and returns once every job finished.
func FanOutWorkers(n, workers int, fn func(worker, job int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for job := 0; job < n; job++ {
			fn(0, job)
		}
		return
	}
	var next atomic.Int64
	var panicMu sync.Mutex
	var panicked any
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				job := int(next.Add(1)) - 1
				if job >= n {
					return
				}
				fn(w, job)
			}
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// FanOut is FanOutWorkers for callers with no per-worker state.
func FanOut(n, workers int, fn func(job int)) {
	FanOutWorkers(n, workers, func(_, job int) { fn(job) })
}

// scratchPerWorker sizes a per-worker scratch pool for n jobs on up to
// workers goroutines (matching FanOutWorkers' clamping).
func scratchPerWorker(n, workers int) []core.Scratch {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return make([]core.Scratch, workers)
}

// Grouper is the reusable grouping scratch behind GroupByDevice: the
// device-order map and the group slices persist across batches, so the
// steady-state per-day cost of grouping in the streaming executor is zero
// allocations (the map is cleared, the inner slices truncated in place).
// One Grouper serves one goroutine at a time; the zero value is ready.
type Grouper struct {
	order  map[events.DeviceID]int
	groups [][]int
}

// Group partitions batch indices by device, groups ordered by first
// appearance and each group preserving batch order — the unit of parallel
// work that keeps same-device budget operations sequential. When the batch
// concatenates several queries' conversions in canonical query order, the
// groups serialize a device's operations across all of them, which is what
// lets the streaming service multiplex queriers concurrently and still match
// the batch engine bit for bit. The returned groups alias the Grouper's
// scratch and are valid until the next Group call.
func (g *Grouper) Group(batch []events.Event) [][]int {
	if g.order == nil {
		g.order = make(map[events.DeviceID]int, len(batch))
	} else {
		clear(g.order)
	}
	used := 0
	for i, conv := range batch {
		gi, ok := g.order[conv.Device]
		if !ok {
			gi = used
			g.order[conv.Device] = gi
			if used < len(g.groups) {
				g.groups[used] = g.groups[used][:0]
			} else {
				g.groups = append(g.groups, nil)
			}
			used++
		}
		g.groups[gi] = append(g.groups[gi], i)
	}
	return g.groups[:used]
}

// GroupByDevice is Group over a one-shot Grouper, for callers without a
// batch loop worth amortizing.
func GroupByDevice(batch []events.Event) [][]int {
	var g Grouper
	return g.Group(batch)
}

// Generator runs the on-device generate stage with state that persists
// across batches: the grouping scratch, one core.MultiScratch per worker,
// and the output slices. The streaming service holds one per run (a day
// super-batch per call), the batch engine one per workload. A Generator
// serves one batch at a time; the zero value is ready.
type Generator struct {
	grouper Grouper
	workers []genWorker
	reports []*core.Report
	stats   []core.ReportStats
}

// genWorker is one worker's private state: the batched-generation workspace,
// the per-group gather buffers, and the worker's first observed error.
type genWorker struct {
	ms    core.MultiScratch
	reqs  []*core.Request
	reps  []*core.Report
	stats []core.ReportStats
	// errConv is the smallest conversion index whose request this worker
	// found invalid (-1 when none); err is that conversion's error.
	errConv int
	err     error
}

// Generate runs the on-device generate stage for one batch of conversions:
// requests grouped by device, each device visited once per batch with all of
// its requests evaluated in a single pass (core.Device.GenerateReportBatch —
// one window traversal feeding every compiled matcher lane, one ledger lock
// for every querier's charge, one nonce draw per device). Reports and
// fold-ready stats land slotted by conversion index; the returned slices are
// reused by the next Generate call, so callers must copy out (the *Report
// pointers themselves are the caller's to retain). This is the single copy
// of the determinism-critical loop both engines execute — the batch engine
// per query batch, the streaming service per day super-batch.
//
// A malformed request surfaces as an error after the fan-out barrier — the
// offending device visit charges nothing and every other device's work
// completes normally — and the reported error is deterministically the one
// with the smallest conversion index, regardless of worker schedule.
func (g *Generator) Generate(fleet *core.Fleet, reqs []*core.Request, batch []events.Event,
	workers int) ([]*core.Report, []core.ReportStats, error) {
	n := len(batch)
	if cap(g.reports) < n {
		g.reports = make([]*core.Report, n)
		g.stats = make([]core.ReportStats, n)
	} else {
		g.reports = g.reports[:n]
		g.stats = g.stats[:n]
		clear(g.reports)
		clear(g.stats)
	}
	groups := g.grouper.Group(batch)
	nw := min(workers, len(groups))
	if nw < 1 {
		nw = 1
	}
	if cap(g.workers) < nw {
		ws := make([]genWorker, nw)
		copy(ws, g.workers[:cap(g.workers)])
		g.workers = ws
	} else {
		g.workers = g.workers[:nw]
	}
	for w := range g.workers {
		g.workers[w].errConv = -1
		g.workers[w].err = nil
	}
	FanOutWorkers(len(groups), workers, func(w, gi int) {
		ws := &g.workers[w]
		group := groups[gi]
		ws.reqs = ws.reqs[:0]
		for _, i := range group {
			ws.reqs = append(ws.reqs, reqs[i])
		}
		if cap(ws.reps) < len(group) {
			ws.reps = make([]*core.Report, len(group))
			ws.stats = make([]core.ReportStats, len(group))
		} else {
			ws.reps = ws.reps[:len(group)]
			ws.stats = ws.stats[:len(group)]
		}
		dev := fleet.GetOrCreate(batch[group[0]].Device)
		lane, err := dev.GenerateReportBatch(ws.reqs, &ws.ms, ws.reps, ws.stats)
		if err != nil {
			if conv := group[lane]; ws.errConv < 0 || conv < ws.errConv {
				ws.errConv, ws.err = conv, err
			}
			return
		}
		for j, i := range group {
			g.reports[i], g.stats[i] = ws.reps[j], ws.stats[j]
		}
	})
	firstConv, firstErr := -1, error(nil)
	for w := range g.workers {
		if ws := &g.workers[w]; ws.err != nil && (firstConv < 0 || ws.errConv < firstConv) {
			firstConv, firstErr = ws.errConv, ws.err
		}
	}
	if firstErr != nil {
		return nil, nil, fmt.Errorf("stream: request for conversion %d invalid: %w", firstConv, firstErr)
	}
	return g.reports, g.stats, nil
}

// GenerateReports is Generate over a one-shot Generator: same outputs, no
// state reuse. Kept for callers outside the two engines' batch loops.
func GenerateReports(fleet *core.Fleet, reqs []*core.Request, batch []events.Event,
	workers int) ([]*core.Report, []core.ReportStats, error) {
	var g Generator
	return g.Generate(fleet, reqs, batch, workers)
}

// TrueValues runs the centralized generate stage: every conversion's true
// report value computed from the full data. The reads are side-effect free,
// so the fan-out needs no device grouping; the selection buffers are still
// reused per worker.
func TrueValues(db *events.Database, reqs []*core.Request, batch []events.Event,
	workers int) []float64 {
	out := make([]float64, len(batch))
	scratch := scratchPerWorker(len(batch), workers)
	FanOutWorkers(len(batch), workers, func(w, i int) {
		out[i] = core.TrueReportValueScratch(db, batch[i].Device, reqs[i], &scratch[w])
	})
	return out
}
