package stream

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/events"
)

// This file holds the deterministic fan-out primitives shared by the batch
// engine (internal/workload's generate stage) and the streaming service's
// per-day multiplexed generation. Both rely on the same two properties:
// work partitioned by device keeps same-device budget operations sequential
// in submission order, and index-addressed output slots make the fold order
// independent of the goroutine schedule.

// FanOutWorkers runs fn(worker, job) for jobs [0, n) on up to workers
// goroutines, pulling jobs from an atomic queue. The worker index is dense
// in [0, min(workers, n)) and identifies the calling goroutine, so callers
// can hand each worker private scratch state without locking. It propagates
// the first panic to the caller and returns once every job finished.
func FanOutWorkers(n, workers int, fn func(worker, job int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for job := 0; job < n; job++ {
			fn(0, job)
		}
		return
	}
	var next atomic.Int64
	var panicMu sync.Mutex
	var panicked any
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				job := int(next.Add(1)) - 1
				if job >= n {
					return
				}
				fn(w, job)
			}
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// FanOut is FanOutWorkers for callers with no per-worker state.
func FanOut(n, workers int, fn func(job int)) {
	FanOutWorkers(n, workers, func(_, job int) { fn(job) })
}

// scratchPerWorker sizes a per-worker scratch pool for n jobs on up to
// workers goroutines (matching FanOutWorkers' clamping).
func scratchPerWorker(n, workers int) []core.Scratch {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return make([]core.Scratch, workers)
}

// GroupByDevice partitions batch indices by device, groups ordered by first
// appearance and each group preserving batch order — the unit of parallel
// work that keeps same-device budget operations sequential. When the batch
// concatenates several queries' conversions in canonical query order, the
// groups serialize a device's operations across all of them, which is what
// lets the streaming service multiplex queriers concurrently and still match
// the batch engine bit for bit.
func GroupByDevice(batch []events.Event) [][]int {
	order := make(map[events.DeviceID]int, len(batch))
	var groups [][]int
	for i, conv := range batch {
		g, ok := order[conv.Device]
		if !ok {
			g = len(groups)
			order[conv.Device] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], i)
	}
	return groups
}

// GenerateReports runs the on-device generate stage for one batch of
// conversions: device-grouped GenerateReportScratch calls fanned out across
// workers, reports and fold-ready stats slotted by conversion index. Each
// worker reuses one core.Scratch for its whole share of the batch, so the
// per-conversion hot path allocates only the report it returns. This is the
// single copy of the determinism-critical loop both engines execute — the
// batch engine per query batch, the streaming service per day super-batch.
func GenerateReports(fleet *core.Fleet, reqs []*core.Request, batch []events.Event,
	workers int) (reports []*core.Report, stats []core.ReportStats) {
	reports = make([]*core.Report, len(batch))
	stats = make([]core.ReportStats, len(batch))
	groups := GroupByDevice(batch)
	scratch := scratchPerWorker(len(groups), workers)
	FanOutWorkers(len(groups), workers, func(w, g int) {
		s := &scratch[w]
		for _, i := range groups[g] {
			dev := fleet.GetOrCreate(batch[i].Device)
			rep, st, err := dev.GenerateReportScratch(reqs[i], s)
			if err != nil {
				panic("stream: internal request invalid: " + err.Error())
			}
			reports[i], stats[i] = rep, st
		}
	})
	return reports, stats
}

// TrueValues runs the centralized generate stage: every conversion's true
// report value computed from the full data. The reads are side-effect free,
// so the fan-out needs no device grouping; the selection buffers are still
// reused per worker.
func TrueValues(db *events.Database, reqs []*core.Request, batch []events.Event,
	workers int) []float64 {
	out := make([]float64, len(batch))
	scratch := scratchPerWorker(len(batch), workers)
	FanOutWorkers(len(batch), workers, func(w, i int) {
		out[i] = core.TrueReportValueScratch(db, batch[i].Device, reqs[i], &scratch[w])
	})
	return out
}
