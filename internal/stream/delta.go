package stream

import (
	"encoding/json"
	"fmt"
	"math"
	"slices"

	"repro/internal/core"
	"repro/internal/events"
)

// Delta snapshots (DESIGN.md §12). A cadence tick no longer serializes the
// whole service: the service tracks which state changed since the previous
// capture — device ledgers by mutation version, event-store records and
// planner streams by dirty set, results by high-water mark — and captures
// only that, chained to its parent generation by fingerprint. mergeSnap is
// the single definition of what a delta means: folding a chain's payloads in
// order reproduces, bit for bit, the full snapshot the service would have
// written at the head capture.

// resetDirtyTracking arms the dirty trackers with the current state as the
// baseline: the next captureDelta reports exactly what changes after this
// call. On a resume it must run after restore() and before WAL replay, so
// replay-era mutations land in the first post-recovery delta.
func (s *Service) resetDirtyTracking() {
	s.db.TrackDirty()
	s.db.DrainDirty()
	s.plan.trackDirty()
	if s.run.Requested != nil {
		s.dirtyReq = make(map[DevEpoch]struct{})
	}
	s.ledgerVers = make(map[events.DeviceID]uint64)
	s.fleet.Range(func(d *core.Device) bool {
		s.ledgerVers[d.ID()] = d.LedgerVersion()
		return true
	})
	s.resultsMark = len(s.run.Results)
}

// captureDelta builds the dirty-state snapshot since the previous capture
// and advances the baselines. Scalars, the central budgeter, and the
// replay-protection set are captured whole — they are small and change
// every day; the sections that dominate snapshot bytes carry only what
// changed. The returned state is self-contained (every slice freshly
// encoded), so the background writer can serialize it while ingest runs.
func (s *Service) captureDelta() *snapState {
	snap := s.scalarSnap()

	// Devices whose ledger mutated since the last capture, or are new.
	s.fleet.Range(func(d *core.Device) bool {
		v := d.LedgerVersion()
		if last, ok := s.ledgerVers[d.ID()]; ok && last == v {
			return true
		}
		s.ledgerVers[d.ID()] = v
		snap.Devices = append(snap.Devices, deviceState{
			ID:      uint64(d.ID()),
			Slots:   encodeSlots(d.Ledger()),
			Denials: d.BudgetDenials(),
		})
		return true
	})

	for _, key := range s.db.DrainDirty() {
		snap.Records = append(snap.Records, recordState{
			Device: uint64(key.Device),
			Epoch:  int32(key.Epoch),
			Events: events.MarshalEvents(s.db.EpochEvents(key.Device, key.Epoch)),
		})
	}

	for _, key := range s.plan.drainDirty() {
		st := s.plan.streams[key]
		snap.Streams = append(snap.Streams, streamSnap{
			Site:    string(key.site),
			Product: key.product,
			Epsilon: math.Float64bits(st.epsilon),
			Seq:     st.seq,
			Capped:  st.capped,
			Pending: events.MarshalEvents(st.pending),
		})
	}

	snap.Results = appendResultStates(nil, s.run.Results[s.resultsMark:])
	s.resultsMark = len(s.run.Results)

	if s.run.Requested != nil && len(s.dirtyReq) > 0 {
		sub := make(map[DevEpoch]map[events.Site]struct{}, len(s.dirtyReq))
		for key := range s.dirtyReq {
			if m, ok := s.run.Requested[key]; ok {
				sub[key] = m
			}
		}
		snap.Requested = encodeRequested(sub)
		clear(s.dirtyReq)
	}
	return snap
}

// mergeSnap folds one delta over its parent snapshot: scalars and the
// whole-captured sections come from the delta, keyed sections overlay the
// parent's entries, and results append. Records at epochs below the delta's
// eviction floor are dropped from both sides — the merged state must not
// resurrect evicted records. Recovery and the background writer's base
// compaction share this fold, so the two representations cannot drift.
func mergeSnap(base, delta *snapState) (*snapState, error) {
	out := new(snapState)
	*out = *delta

	out.Devices = overlayDevices(base.Devices, delta.Devices)
	out.Records = overlayRecords(base.Records, delta.Records, delta.EvictFloor)
	out.Streams = overlayStreams(base.Streams, delta.Streams)
	out.Results = append(base.Results, delta.Results...)

	switch {
	case len(base.Requested) == 0:
		out.Requested = delta.Requested
	case len(delta.Requested) == 0:
		out.Requested = base.Requested
	default:
		m := make(map[DevEpoch]map[events.Site]struct{})
		if err := decodeRequested(base.Requested, m); err != nil {
			return nil, err
		}
		if err := decodeRequested(delta.Requested, m); err != nil {
			return nil, err
		}
		out.Requested = encodeRequested(m)
	}
	return out, nil
}

// overlayDevices merges device rows by ID, the delta's winning.
func overlayDevices(base, delta []deviceState) []deviceState {
	if len(base) == 0 {
		return delta
	}
	if len(delta) == 0 {
		return base
	}
	byID := make(map[uint64]int, len(base))
	merged := base
	for i, d := range merged {
		byID[d.ID] = i
	}
	for _, d := range delta {
		if i, ok := byID[d.ID]; ok {
			merged[i] = d
		} else {
			byID[d.ID] = len(merged)
			merged = append(merged, d)
		}
	}
	slices.SortFunc(merged, func(a, b deviceState) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	return merged
}

// overlayRecords merges event-store records by (device, epoch), the delta's
// winning, and drops epochs the delta's eviction floor has passed.
func overlayRecords(base, delta []recordState, evictFloor int32) []recordState {
	type key struct {
		dev   uint64
		epoch int32
	}
	byKey := make(map[key]int, len(base)+len(delta))
	merged := make([]recordState, 0, len(base)+len(delta))
	for _, lists := range [][]recordState{base, delta} {
		for _, rec := range lists {
			if rec.Epoch < evictFloor {
				continue
			}
			k := key{rec.Device, rec.Epoch}
			if i, ok := byKey[k]; ok {
				merged[i] = rec
			} else {
				byKey[k] = len(merged)
				merged = append(merged, rec)
			}
		}
	}
	slices.SortFunc(merged, func(a, b recordState) int {
		switch {
		case a.Device != b.Device:
			if a.Device < b.Device {
				return -1
			}
			return 1
		case a.Epoch < b.Epoch:
			return -1
		case a.Epoch > b.Epoch:
			return 1
		}
		return 0
	})
	return merged
}

// overlayStreams merges planner cursors by (site, product), the delta's
// winning.
func overlayStreams(base, delta []streamSnap) []streamSnap {
	if len(base) == 0 {
		return delta
	}
	if len(delta) == 0 {
		return base
	}
	type key struct{ site, product string }
	byKey := make(map[key]int, len(base))
	merged := base
	for i, ss := range merged {
		byKey[key{ss.Site, ss.Product}] = i
	}
	for _, ss := range delta {
		k := key{ss.Site, ss.Product}
		if i, ok := byKey[k]; ok {
			merged[i] = ss
		} else {
			byKey[k] = len(merged)
			merged = append(merged, ss)
		}
	}
	slices.SortFunc(merged, func(a, b streamSnap) int {
		switch {
		case a.Site != b.Site:
			if a.Site < b.Site {
				return -1
			}
			return 1
		case a.Product < b.Product:
			return -1
		case a.Product > b.Product:
			return 1
		}
		return 0
	})
	return merged
}

// foldChain decodes a generation chain's payloads (base first, then each
// delta in chain order) and folds them into one full snapshot.
func foldChain(payloads [][]byte) (*snapState, error) {
	var folded *snapState
	for i, payload := range payloads {
		snap := new(snapState)
		if err := json.Unmarshal(payload, snap); err != nil {
			return nil, fmt.Errorf("stream: decoding chain generation %d: %w", i, err)
		}
		if folded == nil {
			folded = snap
			continue
		}
		var err error
		folded, err = mergeSnap(folded, snap)
		if err != nil {
			return nil, err
		}
	}
	return folded, nil
}
