package stream

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/events"
)

// FuzzScenarioIngest feeds arbitrary hostile event streams — late,
// out-of-order, bursty, device-churning, any shape three bytes can encode —
// to the service under the drop-late admission policy and checks the
// robustness invariants the scenario harness relies on:
//
//   - Serve never panics and never errors: hostile *traffic* is an admission
//     problem, not a service failure.
//   - The run is deterministic: serving the same stream twice produces
//     identical results and counters.
//   - Admission matches the pure rule: an event is dropped exactly when its
//     day is behind the day clock, and drained = accepted + dropped.
//   - No device filter is ever over-consumed, whatever the traffic does.
//
// Each fuzz event is three bytes: day, device, and a kind/value byte.
func FuzzScenarioIngest(f *testing.F) {
	// In-order clean traffic.
	f.Add([]byte{5, 1, 2, 5, 2, 3, 6, 3, 1, 7, 4, 5})
	// Late shape: days walk backwards past a closed day.
	f.Add([]byte{9, 1, 3, 4, 2, 3, 3, 3, 1, 9, 4, 1, 0, 5, 7})
	// Churn shape: one device's traffic continues under other identities.
	f.Add([]byte{2, 1, 1, 4, 1, 3, 8, 9, 3, 12, 9, 1, 20, 9, 5})
	// Skew shape: day jumps far forward, then stragglers behind it.
	f.Add([]byte{1, 1, 1, 29, 2, 3, 2, 3, 1, 2, 4, 3, 29, 5, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		evs := decodeFuzzEvents(data)
		run := serveFuzz(t, evs)

		// Determinism: an identical stream reproduces the run bit for bit.
		again := serveFuzz(t, evs)
		if !reflect.DeepEqual(run.Results, again.Results) ||
			run.EventsIngested != again.EventsIngested ||
			run.EventsDropped != again.EventsDropped {
			t.Fatal("same stream served twice diverged")
		}

		// Admission oracle: day clock starts at 0 and only advances.
		day, dropped := 0, 0
		for _, ev := range evs {
			if ev.Day < day {
				dropped++
				continue
			}
			day = ev.Day
		}
		if run.EventsIngested != len(evs) || run.EventsDropped != dropped {
			t.Fatalf("drained %d dropped %d, admission rule says %d/%d",
				run.EventsIngested, run.EventsDropped, len(evs), dropped)
		}

		// Budget safety: no (querier, epoch) filter over capacity.
		run.Fleet.Range(func(d *core.Device) bool {
			for _, row := range d.Ledger() {
				if row.Consumed > row.Capacity*(1+1e-9) {
					t.Errorf("device %d: querier %s epoch %d consumed %g over capacity %g",
						d.ID(), row.Querier, row.Epoch, row.Consumed, row.Capacity)
				}
			}
			return true
		})
	})
}

// decodeFuzzEvents maps the fuzz payload to a bounded event stream over the
// fakeSource scenario: days in [0, 30), eight devices, conversions and
// impressions for the one advertiser. Event IDs are sequential in delivery
// order, matching the scenario generator's renumbering convention.
func decodeFuzzEvents(data []byte) []events.Event {
	const maxEvents = 256
	var evs []events.Event
	for i := 0; i+2 < len(data) && len(evs) < maxEvents; i += 3 {
		day := int(data[i]) % 30
		dev := events.DeviceID(1 + int(data[i+1])%8)
		kv := data[i+2]
		ev := events.Event{
			ID:         events.EventID(len(evs) + 1),
			Device:     dev,
			Day:        day,
			Advertiser: "nike.example",
		}
		if kv&1 == 0 {
			ev.Kind = events.KindImpression
			ev.Publisher = "pub.example"
			ev.Campaign = "product-0"
		} else {
			ev.Kind = events.KindConversion
			ev.Product = "product-0"
			ev.Value = float64((kv >> 1) & 7)
		}
		evs = append(evs, ev)
	}
	return evs
}

// serveFuzz runs one hostile stream through the service with a tight global
// budget (so denials actually occur) and fails the test on any error.
func serveFuzz(t *testing.T, evs []events.Event) *Run {
	t.Helper()
	svc, err := New(Config{
		Source:       &fakeSource{meta: testMeta(), evs: evs},
		FixedEpsilon: 1, EpsilonG: 2,
		LatePolicy: LateDrop,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := svc.Serve()
	if err != nil {
		t.Fatalf("hostile stream errored under LateDrop: %v", err)
	}
	return run
}
