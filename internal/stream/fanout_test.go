package stream

import (
	"math/rand"
	"reflect"
	"slices"
	"strings"
	"testing"

	"repro/internal/attribution"
	"repro/internal/core"
	"repro/internal/events"
)

var fanSites = []events.Site{"nike.com", "adidas.com", "puma.com"}

func fanoutDB(rng *rand.Rand, devices int) *events.Database {
	var evs []events.Event
	for i, n := 0, 40+rng.Intn(80); i < n; i++ {
		evs = append(evs, events.Event{
			ID: events.EventID(i + 1), Kind: events.KindImpression,
			Device:     events.DeviceID(1 + rng.Intn(devices)),
			Day:        rng.Intn(42),
			Advertiser: fanSites[rng.Intn(3)],
			Campaign:   []string{"shoes", "hats"}[rng.Intn(2)],
		})
	}
	return events.NewFrozen(7, evs)
}

func fanoutRequest(rng *rand.Rand) *core.Request {
	site := fanSites[rng.Intn(3)]
	req := &core.Request{
		Querier:           site,
		FirstEpoch:        events.Epoch(rng.Intn(3)),
		Selector:          events.NewCampaignSelector(site, "shoes"),
		Function:          attribution.Slots{Logic: attribution.LastTouch{}, MaxImpressions: 2, Value: 70},
		Epsilon:           []float64{0.004, 0.01, 0.4}[rng.Intn(3)],
		ReportSensitivity: 70,
		QuerySensitivity:  100,
		PNorm:             1,
	}
	req.LastEpoch = req.FirstEpoch + events.Epoch(rng.Intn(5))
	return req
}

func fanoutFleet(db *events.Database, epsG float64) *core.Fleet {
	return core.NewFleet(0, func(id events.DeviceID) *core.Device {
		return core.NewDevice(id, db, epsG, core.CookieMonsterPolicy{})
	})
}

// TestGeneratorMatchesSequential holds the parallel, batched-per-device
// generate stage to the sequential one-at-a-time reference: for random
// super-batches (several queriers' conversions concatenated, devices shared
// across them) the Generator at parallelism 4 must produce the reports, stats,
// and per-device ledger states of a plain batch-order GenerateReportScratch
// loop over a second fleet. One Generator carries its scratch across every
// batch and seed; under `go test -race` this doubles as the concurrent
// device-group race check.
func TestGeneratorMatchesSequential(t *testing.T) {
	var gen Generator
	var scratch core.Scratch
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const devices = 6
		db := fanoutDB(rng, devices)
		epsG := []float64{0.004, 0.02, 1}[rng.Intn(3)]
		fleetPar := fanoutFleet(db, epsG)
		fleetSeq := fanoutFleet(db, epsG)

		for batch := 0; batch < 4; batch++ {
			n := 1 + rng.Intn(24)
			convs := make([]events.Event, n)
			reqs := make([]*core.Request, n)
			for i := range convs {
				convs[i] = events.Event{
					ID: events.EventID(1000 + i), Kind: events.KindConversion,
					Device: events.DeviceID(1 + rng.Intn(devices)),
					Day:    30 + rng.Intn(5),
				}
				reqs[i] = fanoutRequest(rng)
			}

			reports, stats, err := gen.Generate(fleetPar, reqs, convs, 4)
			if err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}

			for i := range convs {
				dev := fleetSeq.GetOrCreate(convs[i].Device)
				repRef, stRef, err := dev.GenerateReportScratch(reqs[i], &scratch)
				if err != nil {
					t.Fatal(err)
				}
				rep := reports[i]
				if rep.Querier != repRef.Querier || rep.Device != repRef.Device ||
					!slices.Equal(rep.Histogram, repRef.Histogram) ||
					rep.BiasFlag != repRef.BiasFlag {
					t.Fatalf("seed %d batch %d conv %d: report %+v vs %+v",
						seed, batch, i, rep, repRef)
				}
				if stats[i] != stRef {
					t.Fatalf("seed %d batch %d conv %d: stats %+v vs %+v",
						seed, batch, i, stats[i], stRef)
				}
			}
			for d := events.DeviceID(1); d <= devices; d++ {
				lp := fleetPar.GetOrCreate(d).Ledger()
				ls := fleetSeq.GetOrCreate(d).Ledger()
				if !reflect.DeepEqual(lp, ls) {
					t.Fatalf("seed %d batch %d device %d: ledgers diverged", seed, batch, d)
				}
			}
		}
	}
}

// TestGeneratorErrorDeterministic pins the satellite contract that replaced
// the worker panic: malformed requests at several conversion indices, on
// different devices, must surface as one error naming the smallest offending
// conversion index — the same error for every worker count — while valid
// devices' visits complete without charging the offenders.
func TestGeneratorErrorDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := fanoutDB(rng, 6)
	const n = 20
	convs := make([]events.Event, n)
	reqs := make([]*core.Request, n)
	for i := range convs {
		convs[i] = events.Event{
			ID: events.EventID(1000 + i), Kind: events.KindConversion,
			Device: events.DeviceID(1 + i%6), Day: 30,
		}
		reqs[i] = fanoutRequest(rng)
	}
	// Invalid requests on three different devices; 7 is the smallest index.
	reqs[7].Epsilon = -1
	reqs[11].LastEpoch = reqs[11].FirstEpoch - 1
	reqs[16].Selector = nil

	var msgs []string
	for _, workers := range []int{1, 2, 8} {
		fleet := fanoutFleet(db, 1)
		_, _, err := GenerateReports(fleet, reqs, convs, workers)
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if !strings.Contains(err.Error(), "conversion 7") {
			t.Fatalf("workers=%d: error does not name smallest conversion: %v", workers, err)
		}
		msgs = append(msgs, err.Error())
	}
	for _, m := range msgs[1:] {
		if m != msgs[0] {
			t.Fatalf("error differs across worker counts: %q vs %q", msgs[0], m)
		}
	}
}

// TestGrouperReuse checks the reusable grouping scratch against the one-shot
// GroupByDevice across a sequence of batches of varying shape (growing,
// shrinking, empty), where the returned groups alias scratch reused from
// prior calls.
func TestGrouperReuse(t *testing.T) {
	var g Grouper
	rng := rand.New(rand.NewSource(9))
	for batch := 0; batch < 30; batch++ {
		n := rng.Intn(25)
		convs := make([]events.Event, n)
		for i := range convs {
			convs[i] = events.Event{Device: events.DeviceID(rng.Intn(5))}
		}
		got := g.Group(convs)
		want := GroupByDevice(convs)
		if len(got) != len(want) {
			t.Fatalf("batch %d: %d groups, want %d", batch, len(got), len(want))
		}
		for gi := range want {
			if !slices.Equal(got[gi], want[gi]) {
				t.Fatalf("batch %d group %d: %v want %v", batch, gi, got[gi], want[gi])
			}
		}
	}
}
