// Package stream is the online measurement service: it turns the repository's
// plan→generate→aggregate batch pipeline (internal/workload) into a
// long-running system that ingests day-stamped events as they arrive and
// fires each advertiser's summation query the moment its batch fills.
//
// Architecture (DESIGN.md §6):
//
//   - A dataset.Source delivers events in (Day, ID) order through a bounded
//     ingest queue. The queue is the service's backpressure valve: when
//     query execution falls behind, the producer blocks, so peak memory is
//     set by the queue capacity and the attribution-window retention
//     horizon — never by trace length.
//   - Ingestion is day-clocked. All of day d's events land in the event
//     store before any day-d query fires; queries only read windows ending
//     at or before d, so the generate stage's concurrent readers never
//     overlap the (single-writer) ingest phase and the store needs no read
//     locks.
//   - Queries due on the same day execute as one multiplexed super-batch:
//     their conversions concatenate in canonical (site, product, seq)
//     order, partition by device, and fan out across the worker pool over
//     core.Fleet. Aggregation then releases each query sequentially in the
//     same canonical order, drawing noise from the run's seeded stream.
//   - Retention: once no open batch's attribution window can reach below an
//     epoch, the event store evicts it (events.Database.EvictBefore), the
//     aggregation service retires the day's consumed nonces
//     (aggregation.Service.Compact), and — in Lean mode — the fleet
//     advances every device's retention floor.
//
// Equivalence contract: the canonical execution order (fireDay, site,
// product, seq) is exactly the batch engine's plan order, per-device
// operations serialize identically inside the super-batch, and noise streams
// are consumed in the same sequence — so a streaming run over a source is
// bit-identical to a batch run over the materialized dataset, at any
// parallelism and any queue size. internal/stream's equivalence tests hold
// the two implementations to that contract, in the spirit of showing an
// optimistic online system equivalent to its batch specification.
package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/aggregation"
	"repro/internal/budget"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/privacy"
	"repro/internal/stats"
)

// LatePolicy selects how the service treats a late event: one whose stamped
// day is already closed (strictly below the day clock) when it reaches the
// ingest path. The day a given event closes is data-dependent — day d closes
// the moment the first day->d' event (d' > d) is drained — so an event
// stamped with the current day is never late, even if it is the last event
// of that day.
type LatePolicy uint8

const (
	// LateReject treats a late event as a broken source and aborts the
	// run — the strict contract every clean, day-ordered source satisfies.
	// This is the default.
	LateReject LatePolicy = iota
	// LateDrop admits hostile and messy traffic: late events are dropped
	// at admission, counted in Run.EventsDropped, and never reach the
	// event store, the planner, or the budget ledgers. An event for an
	// already-evicted epoch is necessarily late (eviction only passes day
	// boundaries), so it takes the same drop path and can never resurrect
	// evicted state. Drops are WAL-logged like ingests, so crash recovery
	// replays the same admission decisions and the resume cursor stays
	// exact.
	LateDrop
)

// Config parameterizes one streaming service instance. The scenario knobs
// (epoch length, window, budgets, calibration, bias) have the same meaning
// as the batch engine's workload.Config; the service-only knobs tune the
// ingest queue and retention behaviour.
type Config struct {
	// Source supplies the event stream and the dataset metadata.
	Source dataset.Source
	// EpochDays is the on-device epoch length (7 by default).
	EpochDays int
	// WindowDays is the attribution window (30 by default).
	WindowDays int
	// EpsilonG is the per-epoch budget capacity ε^G.
	EpsilonG float64
	// Calibration derives each advertiser's requested ε. Ignored when
	// FixedEpsilon > 0.
	Calibration privacy.Calibration
	// FixedEpsilon, when positive, uses the same requested ε everywhere.
	FixedEpsilon float64
	// Bias, when non-nil, runs the Appendix F side query with every
	// report.
	Bias *core.BiasSpec
	// Seed drives the aggregation (and IPA-like) noise streams.
	Seed uint64
	// Parallelism bounds the worker pool for the multiplexed generate
	// stage. 0 selects GOMAXPROCS; results are bit-identical for every
	// value.
	Parallelism int
	// MaxQueriesPerProduct truncates each product's query schedule
	// (0 = run every full batch).
	MaxQueriesPerProduct int
	// Policy is the on-device loss policy; nil selects
	// core.CookieMonsterPolicy. Ignored when Central is set.
	Policy core.LossPolicy
	// Central, when true, runs the IPA-like centralized baseline: budget
	// is authorized per query at a population-wide filter and attribution
	// is computed on the full data.
	Central bool
	// LatePolicy selects the admission rule for events whose day has
	// already closed (LateReject aborts, LateDrop drops with a counter).
	// The policy shapes which events the run admits, so it is part of the
	// checkpoint scenario fingerprint.
	LatePolicy LatePolicy

	// QueueSize bounds the ingest queue (the backpressure window between
	// the source and the day clock). 0 selects a default of 1024 events.
	QueueSize int
	// Lean selects long-running-service retention: device filters below
	// the horizon are released (core.Fleet.AdvanceEpochFloor) and the
	// per-device-epoch requested-budget accounting behind the Fig. 4
	// metrics is skipped. Query results are bit-identical either way;
	// Lean trades post-run budget metrics for bounded resident state.
	Lean bool

	// CheckpointDir enables crash safety: every ingested event is logged
	// to a write-ahead log in this directory before it is applied, day
	// boundaries commit snapshots per SnapshotEveryDays, and Serve writes
	// a final snapshot on completion. ResumeFrom rebuilds a service from
	// the directory after a crash. Empty disables durability.
	CheckpointDir string
	// SnapshotEveryDays commits a snapshot generation (and rotates the WAL
	// to a fresh segment) at every N-th completed day while serving. 0
	// keeps only the WAL during the run — recovery then replays from the
	// stream's beginning (or the last explicit Checkpoint). Ignored
	// without CheckpointDir.
	SnapshotEveryDays int
	// SnapshotMode selects the cadence snapshot representation:
	// SnapshotModeDelta (the default) captures only the state dirtied
	// since the previous generation, chained to it by fingerprint, with
	// periodic base compaction; SnapshotModeFull captures the complete
	// state every time. Restores are bit-identical either way. Ignored
	// without CheckpointDir.
	SnapshotMode string
	// BaseEveryDeltas folds the delta chain into a fresh base after this
	// many deltas (default 8). Ignored in full mode.
	BaseEveryDeltas int
	// KeepGenerations retains the newest K intact base generations (with
	// the deltas and WAL segments above them) at GC time (default 2).
	KeepGenerations int
	// GroupCommitEvents, when positive, batches WAL fsyncs into group
	// commits: after this many appended events the service flushes the log
	// and signals a background syncer instead of fsyncing inline, so the
	// ingest thread never waits on the disk. 0 syncs only at day
	// boundaries and snapshot rotations, as before.
	GroupCommitEvents int
	// GroupCommitBytes, when positive, additionally requests a group
	// commit once this many WAL bytes accumulate — whichever threshold
	// trips first.
	GroupCommitBytes int
	// DurableFS overrides the filesystem the checkpoint store and WAL
	// segments go through — the disk-fault injection seam
	// (checkpoint.NewFaultFS). nil selects the real filesystem. Like
	// Parallelism, it cannot change what a run computes, only whether its
	// durable writes fail.
	DurableFS checkpoint.FS
	// FaultHook, when non-nil, observes every state transition (see
	// FaultPoint) and can return an error to simulate a crash there. Test
	// instrumentation; nil in production.
	FaultHook FaultHook

	// AdmitObserver, when non-nil, observes every admission decision the
	// service commits: it fires once per drained event, after the event's
	// WAL record was appended (live path) and the decision applied, with
	// dropped reporting a LateDrop rejection. It also fires for every event
	// carried by a restored snapshot, for every WAL record replayed during
	// ResumeFrom, and (with dropped=true) for every restored late-drop
	// mark — the latter carry only the admission identity (Device, Day,
	// ID), since a dropped event's payload never reaches durable state —
	// so an external admission layer (internal/serve) can rebuild its
	// per-device dedupe cursors from the durable state.
	// Execution-only: never part of the checkpoint fingerprint or the
	// equivalence digests. The observer runs on the service goroutine and
	// must not block.
	AdmitObserver func(ev events.Event, dropped bool)
	// ResultObserver, when non-nil, observes every released query result in
	// canonical order, including results restored from a snapshot and
	// results re-executed during WAL replay. Same execution-only contract
	// as AdmitObserver.
	ResultObserver func(res Result)
	// LiveSource marks the source as an admission-filtered live feed (a
	// network ingest tier) rather than a replayable trace: a resumed
	// service must not skip a source prefix by count, because the feed
	// delivers only events the durable state does not already cover — the
	// serving layer's (device, seq) dedupe guarantees it. Execution-only.
	LiveSource bool
}

// Snapshot representations for Config.SnapshotMode.
const (
	SnapshotModeDelta = "delta"
	SnapshotModeFull  = "full"
)

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.EpochDays == 0 {
		c.EpochDays = 7
	}
	if c.WindowDays == 0 {
		c.WindowDays = 30
	}
	if c.EpsilonG == 0 {
		c.EpsilonG = 1
	}
	if c.Calibration == (privacy.Calibration{}) {
		c.Calibration = privacy.DefaultCalibration
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize == 0 {
		c.QueueSize = 1024
	}
	if c.Policy == nil && !c.Central {
		c.Policy = core.CookieMonsterPolicy{}
	}
	if c.SnapshotMode == "" {
		c.SnapshotMode = SnapshotModeDelta
	}
	if c.BaseEveryDeltas == 0 {
		c.BaseEveryDeltas = 8
	}
	if c.KeepGenerations == 0 {
		c.KeepGenerations = 2
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Source == nil:
		return fmt.Errorf("stream: nil source")
	case c.EpochDays <= 0 || c.WindowDays <= 0:
		return fmt.Errorf("stream: non-positive epoch or window length")
	case c.EpsilonG < 0:
		return fmt.Errorf("stream: negative capacity")
	case c.FixedEpsilon < 0:
		return fmt.Errorf("stream: negative fixed epsilon")
	case c.Parallelism < 0:
		return fmt.Errorf("stream: negative parallelism")
	case c.QueueSize < 0:
		return fmt.Errorf("stream: negative queue size")
	case c.SnapshotEveryDays < 0:
		return fmt.Errorf("stream: negative snapshot cadence")
	case c.SnapshotEveryDays > 0 && c.CheckpointDir == "":
		return fmt.Errorf("stream: snapshot cadence without checkpoint directory")
	case c.SnapshotMode != SnapshotModeDelta && c.SnapshotMode != SnapshotModeFull:
		return fmt.Errorf("stream: unknown snapshot mode %q", c.SnapshotMode)
	case c.BaseEveryDeltas < 0:
		return fmt.Errorf("stream: negative base compaction cadence")
	case c.KeepGenerations < 0:
		return fmt.Errorf("stream: negative generation retention")
	case c.GroupCommitEvents < 0 || c.GroupCommitBytes < 0:
		return fmt.Errorf("stream: negative group-commit threshold")
	}
	return nil
}

// Result records one summation query's outcome. Fields mirror the batch
// engine's QueryResult one-for-one; the equivalence tests compare them
// bit-for-bit.
type Result struct {
	Querier  events.Site
	Product  string
	Index    int
	Batch    int
	Epsilon  float64
	Executed bool
	Truth    float64
	Estimate float64
	RMSRE    float64
	// FireDay is the day the batch filled and the query ran — streaming
	// observability the batch engine derives from its plan.
	FireDay        int
	DeniedReports  int
	BiasedReports  int
	BiasEstimate   float64
	FirstEpoch     events.Epoch
	LastEpoch      events.Epoch
	AvgBudgetAfter float64
}

// DevEpoch identifies a requested device-epoch in the Run's accounting.
type DevEpoch struct {
	Device events.DeviceID
	Epoch  events.Epoch
}

// Run is a completed streaming execution: per-query results plus the final
// budget state and the service's ingest/retention telemetry.
type Run struct {
	Meta        dataset.Meta
	Results     []Result
	TotalEpochs int

	// Fleet is the device registry with its final filter state (for
	// on-device runs).
	Fleet *core.Fleet
	// Central is the population-wide budgeter (for Central runs).
	Central *budget.IPALike
	// Requested maps each device-epoch touched by a query window to the
	// queriers that touched it (nil in Lean mode).
	Requested map[DevEpoch]map[events.Site]struct{}
	// TotalConsumed is the summed consumed privacy loss across all
	// device-epochs.
	TotalConsumed float64
	// FirstSpanEpoch and LastSpanEpoch delimit every epoch a query window
	// can touch.
	FirstSpanEpoch, LastSpanEpoch events.Epoch

	// EventsIngested counts events drained from the source — accepted and
	// dropped alike, so it is also the WAL sequence cursor and the resume
	// skip count.
	EventsIngested int
	// EventsDropped counts late events dropped at admission under
	// Config.LatePolicy == LateDrop (always 0 under LateReject, which
	// aborts instead).
	EventsDropped int
	// PeakQueue is the deepest the ingest queue got — how close the
	// service came to exerting backpressure.
	PeakQueue int
	// MaxQueueDelay and AvgQueueDelay measure ingest-queue sojourn time:
	// how long events sat buffered between the producer's enqueue and the
	// day clock draining them. Sustained growth here is the overload
	// signal the serving layer's shedding gate acts on (DESIGN.md §14).
	// Observability only — never part of the equivalence digests.
	MaxQueueDelay time.Duration
	AvgQueueDelay time.Duration
	// PeakResidentRecords is the maximum number of device-epoch records
	// resident in the event store at any day boundary; with retention on,
	// it tracks the attribution window rather than the trace length.
	PeakResidentRecords int
	// EvictedRecords counts device-epoch records reclaimed by retention.
	EvictedRecords int
	// RetiredNonces counts replay-protection entries reclaimed by
	// aggregation compaction.
	RetiredNonces int
	// ReleasedFilters counts device filters reclaimed in Lean mode.
	ReleasedFilters int

	// Durability is the run's checkpoint/WAL telemetry (zero without
	// Config.CheckpointDir). It is observability only — never part of the
	// durable state or the equivalence digests.
	Durability DurabilityStats
}

// DurabilityStats measures the durability machinery's cost and behaviour
// over one run.
type DurabilityStats struct {
	// SnapshotCaptures counts cadence snapshot captures (delta or full).
	SnapshotCaptures int
	// MaxSnapshotStall is the longest the ingest thread was paused by one
	// cadence tick: harvesting the previous generation's commit, capturing
	// state, and rotating the WAL. The serialized write itself happens off
	// the ingest thread and does not stall it.
	MaxSnapshotStall time.Duration
	// MaxCaptureStall is the capture-and-rotate portion of the worst tick,
	// excluding the wait for the background writer's previous commit. The
	// difference between the two maxima is writer backpressure (commits or
	// compactions outrunning the cadence), not capture cost.
	MaxCaptureStall time.Duration
	// DeltaBytes and BaseBytes total the serialized snapshot payload bytes
	// committed by kind (bases include initial, compacted, and final).
	DeltaBytes int64
	BaseBytes  int64
	// BaseCompactions counts delta chains folded into fresh bases.
	BaseCompactions int
	// GroupCommits counts asynchronous WAL group commits; GroupCommitBytes
	// and MaxGroupCommitBytes total and bound the bytes per batch.
	GroupCommits        int
	GroupCommitBytes    int64
	MaxGroupCommitBytes int
	// RecoveryFallbacks counts the downgrades recovery took on the way to
	// intact state: generation files skipped as unusable plus WAL replays
	// stopped at a sequence gap. 0 on a clean resume.
	RecoveryFallbacks int
}

// Service is the online measurement service. Create one with New, then
// drive it to completion with Serve.
type Service struct {
	cfg  Config
	meta dataset.Meta

	db       *events.Database
	fleet    *core.Fleet
	central  *budget.IPALike
	agg      *aggregation.Service
	aggNoise *stats.RNG
	ipaNoise *stats.RNG
	plan     *planner
	run      *Run

	curDay     int
	started    bool
	due        []*pendingQuery
	nextIndex  int
	evictFloor events.Epoch

	// dropMarks is the per-device late-drop admission high-water mark:
	// the (day, id) of each device's newest dropped event, kept only while
	// no later event for that device reaches the store. A dropped event is
	// a durable admission decision that leaves no trace in the event store,
	// so without these marks a snapshot that subsumes the WAL would lose
	// the decision and an external admission layer (internal/serve) would
	// regress its dedupe cursor across suspend/resume. Snapshot state.
	dropMarks map[events.DeviceID]dropMark

	// gen and the day buffers are the generate stage's cross-day reusable
	// state: grouping scratch, per-worker multi-request workspaces, and the
	// super-batch concatenation/output slices (see generateDay).
	gen      Generator
	dayConvs []events.Event
	dayReqs  []*core.Request
	dayOut   []convOutput

	// Durability state (nil/zero without Config.CheckpointDir).
	wal         *checkpoint.WAL
	walBuf      []byte // reused WAL record encoding buffer
	lastSnapDay int
	// store is the generation store; headGen/headFP identify the chain
	// head new deltas link onto, and nextGen numbers the next generation
	// or WAL segment (monotonic across kinds, never reused).
	store   *checkpoint.Store
	headGen uint64
	headFP  uint32
	nextGen uint64
	// writer commits captured snapshots off the ingest thread; snapPending
	// marks an enqueued capture whose result has not been harvested yet.
	writer      *snapWriter
	snapPending bool
	// gcEvents/gcBytes accumulate WAL appends toward the next group
	// commit.
	gcEvents int
	gcBytes  int
	// Dirty-state baselines for delta capture (delta.go): per-device
	// ledger versions, requested-accounting keys touched, and the results
	// high-water mark since the previous capture.
	ledgerVers  map[events.DeviceID]uint64
	dirtyReq    map[DevEpoch]struct{}
	resultsMark int
	// skip counts source events already covered by the restored durable
	// state; Serve discards that prefix before going live (the source
	// delivers events in a deterministic order, so skip-by-count is exact).
	skip int
	// resumed marks a service built by ResumeFrom: Serve continues the
	// checkpoint directory's run instead of reinitializing it.
	resumed bool
	// replaying is set while ResumeFrom feeds WAL records through the
	// ingest path: no WAL writes, no snapshots, no fault hooks.
	replaying bool
}

// New builds a service for cfg without consuming the source.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	meta := cfg.Source.Meta()
	aggNoise := stats.Stream(cfg.Seed, "aggregation-noise")
	s := &Service{
		cfg:      cfg,
		meta:     meta,
		db:       events.NewDatabase(),
		agg:      aggregation.NewService(aggNoise),
		aggNoise: aggNoise,
		plan:     newPlanner(meta, cfg.Calibration, cfg.FixedEpsilon, cfg.MaxQueriesPerProduct),
		run: &Run{
			Meta:        meta,
			TotalEpochs: meta.Epochs(cfg.EpochDays),
		},
		evictFloor: events.Epoch(-1 << 31),
		dropMarks:  make(map[events.DeviceID]dropMark),
	}
	policy := cfg.Policy
	if policy == nil {
		// Central runs never charge per-device policies; give the fleet
		// a harmless default in case a device is ever instantiated.
		policy = core.CookieMonsterPolicy{}
	}
	db, epsG := s.db, cfg.EpsilonG
	s.fleet = core.NewFleet(0, func(id events.DeviceID) *core.Device {
		return core.NewDevice(id, db, epsG, policy)
	})
	s.run.Fleet = s.fleet
	if cfg.Central {
		s.central = budget.NewIPALike(cfg.EpsilonG)
		s.ipaNoise = stats.Stream(cfg.Seed, "ipa-noise")
		s.run.Central = s.central
	}
	if !cfg.Lean {
		s.run.Requested = make(map[DevEpoch]map[events.Site]struct{})
	}
	s.run.FirstSpanEpoch = events.EpochOfDay(1-cfg.WindowDays, cfg.EpochDays)
	s.run.LastSpanEpoch = events.EpochOfDay(meta.DurationDays-1, cfg.EpochDays)
	if s.run.LastSpanEpoch < s.run.FirstSpanEpoch {
		s.run.LastSpanEpoch = s.run.FirstSpanEpoch
	}
	return s, nil
}

// Serve drains the source to completion: a producer goroutine feeds the
// bounded ingest queue while the service's day clock ingests events, fires
// due queries at each day boundary, and advances retention. It returns the
// completed run. Serve is single-shot; the service cannot be reused.
//
// With Config.CheckpointDir set, every event is logged ahead of being
// applied, snapshots commit on the SnapshotEveryDays cadence, and a final
// snapshot commits on completion. On a resumed service (ResumeFrom), the
// source prefix the durable state already covers is skipped before the day
// clock goes live.
func (s *Service) Serve() (run *Run, err error) {
	if s.cfg.CheckpointDir != "" {
		if err := s.openDurability(); err != nil {
			return nil, err
		}
		defer func() {
			if s.writer != nil {
				// The writer goroutine must not outlive the service. On
				// error paths an in-flight commit is simply allowed to
				// land — one of the legal outcomes of the crash being
				// simulated — and its result discarded.
				if s.snapPending {
					<-s.writer.results
					s.snapPending = false
				}
				s.writer.close()
				s.writer = nil
			}
			if s.wal == nil {
				return
			}
			// An injected fault is a simulated kill: drop the buffered WAL
			// tail rather than flushing it, so the directory is left no
			// more durable than a real crash would leave it (and the
			// recovery harness genuinely exercises lost-tail recovery).
			var fe *FaultError
			if errors.As(err, &fe) {
				s.wal.Abandon()
			} else if cerr := s.wal.Close(); cerr != nil && err == nil {
				run, err = nil, cerr
			}
			s.wal = nil
		}()
	}

	queue := make(chan events.Event, s.cfg.QueueSize)
	// times runs in lockstep with queue, carrying each event's enqueue
	// instant so the drain loop can measure sojourn time — the queue-delay
	// signal the serving layer's overload shedding keys on.
	times := make(chan int64, s.cfg.QueueSize)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(queue)
		for {
			ev, ok := s.cfg.Source.Next()
			if !ok {
				return
			}
			t := time.Now().UnixNano()
			select {
			case queue <- ev:
			case <-done:
				return
			}
			select {
			case times <- t:
			case <-done:
				return
			}
		}
	}()

	skip := s.skip
	var delaySum, delayCount int64
	for ev := range queue {
		enq := <-times
		if d := time.Now().UnixNano() - enq; d > 0 {
			if time.Duration(d) > s.run.MaxQueueDelay {
				s.run.MaxQueueDelay = time.Duration(d)
			}
			delaySum += d
			delayCount++
		}
		if skip > 0 {
			skip--
			continue
		}
		// Occupancy after the receive: how much buffered backlog the
		// producer built up while the day clock was busy.
		if depth := len(queue); depth > s.run.PeakQueue {
			s.run.PeakQueue = depth
		}
		if err := s.step(ev); err != nil {
			return nil, err
		}
	}
	if delayCount > 0 {
		s.run.AvgQueueDelay = time.Duration(delaySum / delayCount)
	}
	// A suspended source ended mid-trace (graceful shutdown of a live
	// feed): the in-progress day must NOT flush — its remaining events
	// arrive after resume, and day-d queries only fire once all of day d is
	// in the store. A drained source reached the end of its trace, so the
	// final day closes out exactly as the batch engine would.
	suspended := false
	if sus, ok := s.cfg.Source.(dataset.Suspender); ok {
		suspended = sus.Suspended()
	}
	if s.started && !suspended {
		if err := s.endOfDay(s.curDay + 1); err != nil {
			return nil, err
		}
	}
	if s.wal != nil {
		// Final commit: harvest any in-flight generation, sync the log (so
		// a crash during the final base write still recovers everything),
		// then write the run's full state as a fresh base and collect the
		// generations it supersedes. A suspended run takes the same path —
		// drained queue, synced log, final generation — unless a filled
		// batch is awaiting its day flush: that state is WAL-derived only
		// (snapshots are day-boundary states), so the suspend keeps the
		// synced log and recovery rebuilds the batch by replay.
		if err := s.harvestSnap(); err != nil {
			return nil, err
		}
		if err := s.wal.Sync(); err != nil {
			return nil, err
		}
		if !suspended || len(s.due) == 0 {
			payload, err := json.Marshal(s.snapshot())
			if err != nil {
				return nil, fmt.Errorf("stream: encoding snapshot: %w", err)
			}
			gen := s.nextGen
			s.nextGen++
			fp, err := s.store.WriteBase(gen, payload)
			if err != nil {
				return nil, err
			}
			s.headGen, s.headFP = gen, fp
			s.run.Durability.BaseBytes += int64(len(payload))
			if err := s.store.GC(s.cfg.KeepGenerations); err != nil {
				return nil, err
			}
		}
	}
	return s.run, nil
}

// openDurability prepares the generation store, the initial base (fresh
// runs), the WAL segment, and the background writer for one Serve.
func (s *Service) openDurability() error {
	if s.store == nil {
		s.store = checkpoint.NewStore(s.cfg.CheckpointDir, s.cfg.DurableFS)
	}
	walGen := s.nextGen
	if !s.resumed {
		// A fresh run owns the directory: clear leftovers from any
		// previous run and commit an initial base whose scenario
		// fingerprint every later ResumeFrom must match, even before the
		// first cadence snapshot.
		if err := s.store.Reset(); err != nil {
			return err
		}
		payload, err := json.Marshal(s.snapshot())
		if err != nil {
			return fmt.Errorf("stream: encoding snapshot: %w", err)
		}
		fp, err := s.store.WriteBase(1, payload)
		if err != nil {
			return err
		}
		s.headGen, s.headFP = 1, fp
		s.run.Durability.BaseBytes += int64(len(payload))
		// The initial base and its WAL segment share generation 1: the
		// segment holds exactly the events ingested after that capture.
		walGen, s.nextGen = 1, 2
		if s.cfg.SnapshotMode == SnapshotModeDelta {
			s.resetDirtyTracking()
		}
	} else {
		// A resumed run appends to a segment number no crashed process
		// ever wrote — an old segment's tail may be torn, and recovery
		// already accounted for exactly what is durable in it.
		s.nextGen++
		if s.headGen == 0 {
			// Recovery refused every generation on disk and rebuilt state
			// from WAL replay and the source alone. Re-anchor the chain
			// with a fresh full base: deltas need an intact parent, and
			// the next recovery must not depend on a second full replay.
			payload, err := json.Marshal(s.snapshot())
			if err != nil {
				return fmt.Errorf("stream: encoding snapshot: %w", err)
			}
			fp, err := s.store.WriteBase(walGen, payload)
			if err != nil {
				return err
			}
			s.headGen, s.headFP = walGen, fp
			s.run.Durability.BaseBytes += int64(len(payload))
			// The re-anchor base subsumes everything recovery replayed, so
			// the dirty marks taken before replay are stale: without a
			// reset the first delta would re-carry state the base already
			// holds, and append-only sections (Results) would duplicate on
			// fold.
			if s.cfg.SnapshotMode == SnapshotModeDelta {
				s.resetDirtyTracking()
			}
		}
	}
	wal, err := s.store.OpenWALSegment(walGen)
	if err != nil {
		return err
	}
	s.wal = wal
	if s.cfg.GroupCommitEvents > 0 || s.cfg.GroupCommitBytes > 0 {
		s.wal.StartGroupCommit()
	}
	s.writer = newSnapWriter(s.store, s.cfg.BaseEveryDeltas, s.cfg.KeepGenerations)
	return nil
}

// harvestSnap waits for the background writer's in-flight commit, if any,
// folds its telemetry into the run, and fires the commit fault points.
func (s *Service) harvestSnap() error {
	if s.writer == nil || !s.snapPending {
		return nil
	}
	res := <-s.writer.results
	s.snapPending = false
	if res.err != nil {
		return res.err
	}
	s.headGen, s.headFP = res.gen, res.fp
	if res.base {
		s.run.Durability.BaseBytes += int64(res.bytes)
	} else {
		s.run.Durability.DeltaBytes += int64(res.bytes)
	}
	if res.compacted {
		s.run.Durability.BaseCompactions++
		s.run.Durability.BaseBytes += int64(res.compactBytes)
	}
	if err := s.fault(PointSnapshotCommitted); err != nil {
		return err
	}
	if res.compacted {
		if err := s.fault(PointBaseCompacted); err != nil {
			return err
		}
	}
	return nil
}

// step advances the day clock for one event and applies it — the single
// ingest path shared by live serving and WAL replay. On the live path the
// event reaches the write-ahead log before any in-memory state changes.
func (s *Service) step(ev events.Event) error {
	if !s.started {
		s.started = true
		s.curDay = ev.Day
		s.lastSnapDay = ev.Day
	}
	if ev.Day < s.curDay {
		if s.cfg.LatePolicy != LateDrop {
			return fmt.Errorf("stream: source out of order: day %d after day %d",
				ev.Day, s.curDay)
		}
		// Late drop: the admission decision is durable — WAL-logged and
		// counted against the drain cursor like an accepted event, so
		// replay re-drops it at the same sequence number — but the event
		// itself never touches the event store, the planner, or (for an
		// evicted epoch) any state retention already reclaimed.
		if err := s.logWAL(ev); err != nil {
			return err
		}
		s.run.EventsIngested++
		s.run.EventsDropped++
		if m, ok := s.dropMarks[ev.Device]; !ok || m.beforeEvent(ev) {
			s.dropMarks[ev.Device] = dropMark{Day: ev.Day, ID: ev.ID}
		}
		if err := s.fault(PointEventIngested); err != nil {
			return err
		}
		s.observeAdmit(ev, true)
		return nil
	}
	if ev.Day > s.curDay {
		if err := s.endOfDay(ev.Day); err != nil {
			return err
		}
		s.curDay = ev.Day
	}
	if err := s.logWAL(ev); err != nil {
		return err
	}
	if len(s.dropMarks) != 0 {
		// A newer event reached the store, so the store itself now carries
		// this device's admission high-water mark; the drop mark is spent.
		if m, ok := s.dropMarks[ev.Device]; ok && m.beforeEvent(ev) {
			delete(s.dropMarks, ev.Device)
		}
	}
	s.ingest(ev)
	if err := s.fault(PointEventIngested); err != nil {
		return err
	}
	s.observeAdmit(ev, false)
	return nil
}

// dropMark is one device's newest late-drop admission: the durable
// (day, id) high-water mark of a decision the event store cannot carry.
type dropMark struct {
	Day int
	ID  events.EventID
}

// beforeEvent reports whether the mark precedes ev in (Day, ID) admission
// order.
func (m dropMark) beforeEvent(ev events.Event) bool {
	return m.Day < ev.Day || (m.Day == ev.Day && m.ID < ev.ID)
}

// observeAdmit notifies the configured admission observer. It fires after
// the fault point, so a simulated crash at PointEventIngested is a crash
// between the WAL append and the externally visible acknowledgement — the
// regime the serving layer's idempotent-retry test exercises.
func (s *Service) observeAdmit(ev events.Event, dropped bool) {
	if s.cfg.AdmitObserver != nil {
		s.cfg.AdmitObserver(ev, dropped)
	}
}

// observeResult notifies the configured result observer.
func (s *Service) observeResult(res Result) {
	if s.cfg.ResultObserver != nil {
		s.cfg.ResultObserver(res)
	}
}

// logWAL appends one drained event to the write-ahead log on the live path
// (no-op without durability or during replay), tagged with its drain
// sequence number. With group commit configured, crossing either threshold
// flushes the batch and signals the background syncer instead of fsyncing
// inline.
func (s *Service) logWAL(ev events.Event) error {
	if s.wal == nil || s.replaying {
		return nil
	}
	s.walBuf = encodeWALRecord(s.walBuf, s.run.EventsIngested, ev)
	if err := s.wal.Append(s.walBuf); err != nil {
		return err
	}
	if s.cfg.GroupCommitEvents <= 0 && s.cfg.GroupCommitBytes <= 0 {
		return nil
	}
	s.gcEvents++
	s.gcBytes += len(s.walBuf) + 8
	if (s.cfg.GroupCommitEvents > 0 && s.gcEvents >= s.cfg.GroupCommitEvents) ||
		(s.cfg.GroupCommitBytes > 0 && s.gcBytes >= s.cfg.GroupCommitBytes) {
		if err := s.wal.RequestSync(); err != nil {
			return err
		}
		d := &s.run.Durability
		d.GroupCommits++
		d.GroupCommitBytes += int64(s.gcBytes)
		if s.gcBytes > d.MaxGroupCommitBytes {
			d.MaxGroupCommitBytes = s.gcBytes
		}
		s.gcEvents, s.gcBytes = 0, 0
		return s.fault(PointGroupCommit)
	}
	return nil
}

// ingest records one event and routes conversions to the planner.
func (s *Service) ingest(ev events.Event) {
	s.db.Record(events.EpochOfDay(ev.Day, s.cfg.EpochDays), ev)
	s.run.EventsIngested++
	if ev.IsConversion() {
		if q := s.plan.add(ev); q != nil {
			s.due = append(s.due, q)
		}
	}
}

// endOfDay closes out the current day before advancing to nextDay: it fires
// every query whose batch filled today, then advances the retention horizon
// now that those batches' windows are settled, and — on the snapshot
// cadence — commits a checkpoint and rotates the WAL.
func (s *Service) endOfDay(nextDay int) error {
	if err := s.fault(PointDayEnd); err != nil {
		return err
	}
	if err := s.flushDue(); err != nil {
		return err
	}
	if err := s.fault(PointDayFlushed); err != nil {
		return err
	}
	s.advanceRetention(nextDay)
	if err := s.fault(PointRetentionAdvanced); err != nil {
		return err
	}
	if s.wal != nil && !s.replaying && s.cfg.SnapshotEveryDays > 0 &&
		s.curDay-s.lastSnapDay >= s.cfg.SnapshotEveryDays {
		s.lastSnapDay = s.curDay
		if err := s.rotateCheckpoint(); err != nil {
			return err
		}
	}
	return nil
}

// rotateCheckpoint is the cadence tick: harvest the previous generation's
// commit, capture this one (dirty state in delta mode, everything in full
// mode), rotate the WAL to the capture's numbered segment, and hand the
// capture to the background writer. Only the capture and rotation pause
// ingest — serialization and fsync happen off the ingest thread.
//
// Order matters for crash safety: the old segment syncs before the capture
// is enqueued, so by the time the new generation can exist on disk, every
// event below its cursor is durable. A crash leaves either the old state
// (recover from the previous generation, replaying the synced segment) or
// both the generation and the stale records (the replay cursor skips the
// overlap) — never a generation whose history is missing.
func (s *Service) rotateCheckpoint() error {
	start := time.Now()
	if err := s.harvestSnap(); err != nil {
		return err
	}
	capStart := time.Now()
	gen := s.nextGen
	s.nextGen++
	job := snapJob{gen: gen, parentFP: s.headFP}
	if s.cfg.SnapshotMode == SnapshotModeFull {
		job.base = true
		job.snap = s.snapshot()
	} else {
		job.snap = s.captureDelta()
	}
	s.run.Durability.SnapshotCaptures++
	if err := s.wal.Sync(); err != nil {
		return err
	}
	if err := s.wal.Close(); err != nil {
		return err
	}
	s.wal = nil
	wal, err := s.store.OpenWALSegment(gen)
	if err != nil {
		return err
	}
	s.wal = wal
	if s.cfg.GroupCommitEvents > 0 || s.cfg.GroupCommitBytes > 0 {
		s.wal.StartGroupCommit()
	}
	s.gcEvents, s.gcBytes = 0, 0
	now := time.Now()
	if stall := now.Sub(start); stall > s.run.Durability.MaxSnapshotStall {
		s.run.Durability.MaxSnapshotStall = stall
	}
	if stall := now.Sub(capStart); stall > s.run.Durability.MaxCaptureStall {
		s.run.Durability.MaxCaptureStall = stall
	}
	if err := s.fault(PointDeltaCaptured); err != nil {
		return err
	}
	s.writer.enqueue(job)
	s.snapPending = true
	return nil
}

// advanceRetention computes the oldest epoch any future query window can
// reach — bounded by the earliest still-pending conversion and the next
// ingest day — and evicts everything below it from the event store, the
// replay-protection set, and (in Lean mode) the device filters.
func (s *Service) advanceRetention(nextDay int) {
	if n := s.db.NumRecords(); n > s.run.PeakResidentRecords {
		s.run.PeakResidentRecords = n
	}
	minLive := nextDay
	if d, ok := s.plan.minPendingDay(); ok && d < minLive {
		minLive = d
	}
	floor := events.EpochOfDay(minLive-s.cfg.WindowDays+1, s.cfg.EpochDays)
	if floor <= s.evictFloor {
		return
	}
	s.evictFloor = floor
	s.run.EvictedRecords += s.db.EvictBefore(floor)
	if s.cfg.Lean {
		s.run.ReleasedFilters += s.fleet.AdvanceEpochFloor(floor)
	}
}
