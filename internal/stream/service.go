// Package stream is the online measurement service: it turns the repository's
// plan→generate→aggregate batch pipeline (internal/workload) into a
// long-running system that ingests day-stamped events as they arrive and
// fires each advertiser's summation query the moment its batch fills.
//
// Architecture (DESIGN.md §6):
//
//   - A dataset.Source delivers events in (Day, ID) order through a bounded
//     ingest queue. The queue is the service's backpressure valve: when
//     query execution falls behind, the producer blocks, so peak memory is
//     set by the queue capacity and the attribution-window retention
//     horizon — never by trace length.
//   - Ingestion is day-clocked. All of day d's events land in the event
//     store before any day-d query fires; queries only read windows ending
//     at or before d, so the generate stage's concurrent readers never
//     overlap the (single-writer) ingest phase and the store needs no read
//     locks.
//   - Queries due on the same day execute as one multiplexed super-batch:
//     their conversions concatenate in canonical (site, product, seq)
//     order, partition by device, and fan out across the worker pool over
//     core.Fleet. Aggregation then releases each query sequentially in the
//     same canonical order, drawing noise from the run's seeded stream.
//   - Retention: once no open batch's attribution window can reach below an
//     epoch, the event store evicts it (events.Database.EvictBefore), the
//     aggregation service retires the day's consumed nonces
//     (aggregation.Service.Compact), and — in Lean mode — the fleet
//     advances every device's retention floor.
//
// Equivalence contract: the canonical execution order (fireDay, site,
// product, seq) is exactly the batch engine's plan order, per-device
// operations serialize identically inside the super-batch, and noise streams
// are consumed in the same sequence — so a streaming run over a source is
// bit-identical to a batch run over the materialized dataset, at any
// parallelism and any queue size. internal/stream's equivalence tests hold
// the two implementations to that contract, in the spirit of showing an
// optimistic online system equivalent to its batch specification.
package stream

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/aggregation"
	"repro/internal/budget"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/privacy"
	"repro/internal/stats"
)

// LatePolicy selects how the service treats a late event: one whose stamped
// day is already closed (strictly below the day clock) when it reaches the
// ingest path. The day a given event closes is data-dependent — day d closes
// the moment the first day->d' event (d' > d) is drained — so an event
// stamped with the current day is never late, even if it is the last event
// of that day.
type LatePolicy uint8

const (
	// LateReject treats a late event as a broken source and aborts the
	// run — the strict contract every clean, day-ordered source satisfies.
	// This is the default.
	LateReject LatePolicy = iota
	// LateDrop admits hostile and messy traffic: late events are dropped
	// at admission, counted in Run.EventsDropped, and never reach the
	// event store, the planner, or the budget ledgers. An event for an
	// already-evicted epoch is necessarily late (eviction only passes day
	// boundaries), so it takes the same drop path and can never resurrect
	// evicted state. Drops are WAL-logged like ingests, so crash recovery
	// replays the same admission decisions and the resume cursor stays
	// exact.
	LateDrop
)

// Config parameterizes one streaming service instance. The scenario knobs
// (epoch length, window, budgets, calibration, bias) have the same meaning
// as the batch engine's workload.Config; the service-only knobs tune the
// ingest queue and retention behaviour.
type Config struct {
	// Source supplies the event stream and the dataset metadata.
	Source dataset.Source
	// EpochDays is the on-device epoch length (7 by default).
	EpochDays int
	// WindowDays is the attribution window (30 by default).
	WindowDays int
	// EpsilonG is the per-epoch budget capacity ε^G.
	EpsilonG float64
	// Calibration derives each advertiser's requested ε. Ignored when
	// FixedEpsilon > 0.
	Calibration privacy.Calibration
	// FixedEpsilon, when positive, uses the same requested ε everywhere.
	FixedEpsilon float64
	// Bias, when non-nil, runs the Appendix F side query with every
	// report.
	Bias *core.BiasSpec
	// Seed drives the aggregation (and IPA-like) noise streams.
	Seed uint64
	// Parallelism bounds the worker pool for the multiplexed generate
	// stage. 0 selects GOMAXPROCS; results are bit-identical for every
	// value.
	Parallelism int
	// MaxQueriesPerProduct truncates each product's query schedule
	// (0 = run every full batch).
	MaxQueriesPerProduct int
	// Policy is the on-device loss policy; nil selects
	// core.CookieMonsterPolicy. Ignored when Central is set.
	Policy core.LossPolicy
	// Central, when true, runs the IPA-like centralized baseline: budget
	// is authorized per query at a population-wide filter and attribution
	// is computed on the full data.
	Central bool
	// LatePolicy selects the admission rule for events whose day has
	// already closed (LateReject aborts, LateDrop drops with a counter).
	// The policy shapes which events the run admits, so it is part of the
	// checkpoint scenario fingerprint.
	LatePolicy LatePolicy

	// QueueSize bounds the ingest queue (the backpressure window between
	// the source and the day clock). 0 selects a default of 1024 events.
	QueueSize int
	// Lean selects long-running-service retention: device filters below
	// the horizon are released (core.Fleet.AdvanceEpochFloor) and the
	// per-device-epoch requested-budget accounting behind the Fig. 4
	// metrics is skipped. Query results are bit-identical either way;
	// Lean trades post-run budget metrics for bounded resident state.
	Lean bool

	// CheckpointDir enables crash safety: every ingested event is logged
	// to a write-ahead log in this directory before it is applied, day
	// boundaries commit snapshots per SnapshotEveryDays, and Serve writes
	// a final snapshot on completion. ResumeFrom rebuilds a service from
	// the directory after a crash. Empty disables durability.
	CheckpointDir string
	// SnapshotEveryDays commits a full snapshot (and rotates the WAL) at
	// every N-th completed day while serving. 0 keeps only the WAL during
	// the run — recovery then replays from the stream's beginning (or the
	// last explicit Checkpoint). Ignored without CheckpointDir.
	SnapshotEveryDays int
	// FaultHook, when non-nil, observes every state transition (see
	// FaultPoint) and can return an error to simulate a crash there. Test
	// instrumentation; nil in production.
	FaultHook FaultHook
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.EpochDays == 0 {
		c.EpochDays = 7
	}
	if c.WindowDays == 0 {
		c.WindowDays = 30
	}
	if c.EpsilonG == 0 {
		c.EpsilonG = 1
	}
	if c.Calibration == (privacy.Calibration{}) {
		c.Calibration = privacy.DefaultCalibration
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize == 0 {
		c.QueueSize = 1024
	}
	if c.Policy == nil && !c.Central {
		c.Policy = core.CookieMonsterPolicy{}
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Source == nil:
		return fmt.Errorf("stream: nil source")
	case c.EpochDays <= 0 || c.WindowDays <= 0:
		return fmt.Errorf("stream: non-positive epoch or window length")
	case c.EpsilonG < 0:
		return fmt.Errorf("stream: negative capacity")
	case c.FixedEpsilon < 0:
		return fmt.Errorf("stream: negative fixed epsilon")
	case c.Parallelism < 0:
		return fmt.Errorf("stream: negative parallelism")
	case c.QueueSize < 0:
		return fmt.Errorf("stream: negative queue size")
	case c.SnapshotEveryDays < 0:
		return fmt.Errorf("stream: negative snapshot cadence")
	case c.SnapshotEveryDays > 0 && c.CheckpointDir == "":
		return fmt.Errorf("stream: snapshot cadence without checkpoint directory")
	}
	return nil
}

// Result records one summation query's outcome. Fields mirror the batch
// engine's QueryResult one-for-one; the equivalence tests compare them
// bit-for-bit.
type Result struct {
	Querier  events.Site
	Product  string
	Index    int
	Batch    int
	Epsilon  float64
	Executed bool
	Truth    float64
	Estimate float64
	RMSRE    float64
	// FireDay is the day the batch filled and the query ran — streaming
	// observability the batch engine derives from its plan.
	FireDay        int
	DeniedReports  int
	BiasedReports  int
	BiasEstimate   float64
	FirstEpoch     events.Epoch
	LastEpoch      events.Epoch
	AvgBudgetAfter float64
}

// DevEpoch identifies a requested device-epoch in the Run's accounting.
type DevEpoch struct {
	Device events.DeviceID
	Epoch  events.Epoch
}

// Run is a completed streaming execution: per-query results plus the final
// budget state and the service's ingest/retention telemetry.
type Run struct {
	Meta        dataset.Meta
	Results     []Result
	TotalEpochs int

	// Fleet is the device registry with its final filter state (for
	// on-device runs).
	Fleet *core.Fleet
	// Central is the population-wide budgeter (for Central runs).
	Central *budget.IPALike
	// Requested maps each device-epoch touched by a query window to the
	// queriers that touched it (nil in Lean mode).
	Requested map[DevEpoch]map[events.Site]struct{}
	// TotalConsumed is the summed consumed privacy loss across all
	// device-epochs.
	TotalConsumed float64
	// FirstSpanEpoch and LastSpanEpoch delimit every epoch a query window
	// can touch.
	FirstSpanEpoch, LastSpanEpoch events.Epoch

	// EventsIngested counts events drained from the source — accepted and
	// dropped alike, so it is also the WAL sequence cursor and the resume
	// skip count.
	EventsIngested int
	// EventsDropped counts late events dropped at admission under
	// Config.LatePolicy == LateDrop (always 0 under LateReject, which
	// aborts instead).
	EventsDropped int
	// PeakQueue is the deepest the ingest queue got — how close the
	// service came to exerting backpressure.
	PeakQueue int
	// PeakResidentRecords is the maximum number of device-epoch records
	// resident in the event store at any day boundary; with retention on,
	// it tracks the attribution window rather than the trace length.
	PeakResidentRecords int
	// EvictedRecords counts device-epoch records reclaimed by retention.
	EvictedRecords int
	// RetiredNonces counts replay-protection entries reclaimed by
	// aggregation compaction.
	RetiredNonces int
	// ReleasedFilters counts device filters reclaimed in Lean mode.
	ReleasedFilters int
}

// Service is the online measurement service. Create one with New, then
// drive it to completion with Serve.
type Service struct {
	cfg  Config
	meta dataset.Meta

	db       *events.Database
	fleet    *core.Fleet
	central  *budget.IPALike
	agg      *aggregation.Service
	aggNoise *stats.RNG
	ipaNoise *stats.RNG
	plan     *planner
	run      *Run

	curDay     int
	started    bool
	due        []*pendingQuery
	nextIndex  int
	evictFloor events.Epoch

	// gen and the day buffers are the generate stage's cross-day reusable
	// state: grouping scratch, per-worker multi-request workspaces, and the
	// super-batch concatenation/output slices (see generateDay).
	gen      Generator
	dayConvs []events.Event
	dayReqs  []*core.Request
	dayOut   []convOutput

	// Durability state (nil/zero without Config.CheckpointDir).
	wal         *checkpoint.WAL
	walBuf      []byte // reused WAL record encoding buffer
	lastSnapDay int
	// skip counts source events already covered by the restored durable
	// state; Serve discards that prefix before going live (the source
	// delivers events in a deterministic order, so skip-by-count is exact).
	skip int
	// resumed marks a service built by ResumeFrom: Serve continues the
	// checkpoint directory's run instead of reinitializing it.
	resumed bool
	// replaying is set while ResumeFrom feeds WAL records through the
	// ingest path: no WAL writes, no snapshots, no fault hooks.
	replaying bool
}

// New builds a service for cfg without consuming the source.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	meta := cfg.Source.Meta()
	aggNoise := stats.Stream(cfg.Seed, "aggregation-noise")
	s := &Service{
		cfg:      cfg,
		meta:     meta,
		db:       events.NewDatabase(),
		agg:      aggregation.NewService(aggNoise),
		aggNoise: aggNoise,
		plan:     newPlanner(meta, cfg.Calibration, cfg.FixedEpsilon, cfg.MaxQueriesPerProduct),
		run: &Run{
			Meta:        meta,
			TotalEpochs: meta.Epochs(cfg.EpochDays),
		},
		evictFloor: events.Epoch(-1 << 31),
	}
	policy := cfg.Policy
	if policy == nil {
		// Central runs never charge per-device policies; give the fleet
		// a harmless default in case a device is ever instantiated.
		policy = core.CookieMonsterPolicy{}
	}
	db, epsG := s.db, cfg.EpsilonG
	s.fleet = core.NewFleet(0, func(id events.DeviceID) *core.Device {
		return core.NewDevice(id, db, epsG, policy)
	})
	s.run.Fleet = s.fleet
	if cfg.Central {
		s.central = budget.NewIPALike(cfg.EpsilonG)
		s.ipaNoise = stats.Stream(cfg.Seed, "ipa-noise")
		s.run.Central = s.central
	}
	if !cfg.Lean {
		s.run.Requested = make(map[DevEpoch]map[events.Site]struct{})
	}
	s.run.FirstSpanEpoch = events.EpochOfDay(1-cfg.WindowDays, cfg.EpochDays)
	s.run.LastSpanEpoch = events.EpochOfDay(meta.DurationDays-1, cfg.EpochDays)
	if s.run.LastSpanEpoch < s.run.FirstSpanEpoch {
		s.run.LastSpanEpoch = s.run.FirstSpanEpoch
	}
	return s, nil
}

// Serve drains the source to completion: a producer goroutine feeds the
// bounded ingest queue while the service's day clock ingests events, fires
// due queries at each day boundary, and advances retention. It returns the
// completed run. Serve is single-shot; the service cannot be reused.
//
// With Config.CheckpointDir set, every event is logged ahead of being
// applied, snapshots commit on the SnapshotEveryDays cadence, and a final
// snapshot commits on completion. On a resumed service (ResumeFrom), the
// source prefix the durable state already covers is skipped before the day
// clock goes live.
func (s *Service) Serve() (run *Run, err error) {
	if s.cfg.CheckpointDir != "" {
		if !s.resumed {
			// A fresh run owns the directory: commit an initial snapshot
			// (whose scenario fingerprint every later ResumeFrom must
			// match, even before the first cadence snapshot) and truncate
			// any stale WAL, so leftovers from a previous run can never
			// leak into this one's recovery.
			if err := s.Checkpoint(s.cfg.CheckpointDir); err != nil {
				return nil, err
			}
			if err := checkpoint.ResetWAL(s.cfg.CheckpointDir); err != nil {
				return nil, err
			}
		}
		wal, err := checkpoint.OpenWAL(s.cfg.CheckpointDir)
		if err != nil {
			return nil, err
		}
		s.wal = wal
		defer func() {
			if s.wal == nil {
				return
			}
			// An injected fault is a simulated kill: drop the buffered WAL
			// tail rather than flushing it, so the directory is left no
			// more durable than a real crash would leave it (and the
			// recovery harness genuinely exercises lost-tail recovery).
			var fe *FaultError
			if errors.As(err, &fe) {
				s.wal.Abandon()
			} else {
				s.wal.Close()
			}
			s.wal = nil
		}()
	}

	queue := make(chan events.Event, s.cfg.QueueSize)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(queue)
		for {
			ev, ok := s.cfg.Source.Next()
			if !ok {
				return
			}
			select {
			case queue <- ev:
			case <-done:
				return
			}
		}
	}()

	skip := s.skip
	for ev := range queue {
		if skip > 0 {
			skip--
			continue
		}
		// Occupancy after the receive: how much buffered backlog the
		// producer built up while the day clock was busy.
		if depth := len(queue); depth > s.run.PeakQueue {
			s.run.PeakQueue = depth
		}
		if err := s.step(ev); err != nil {
			return nil, err
		}
	}
	if s.started {
		if err := s.endOfDay(s.curDay + 1); err != nil {
			return nil, err
		}
	}
	if s.wal != nil {
		// Final commit: the completed run's full state, subsuming the WAL.
		if err := s.wal.Sync(); err != nil {
			return nil, err
		}
		if err := s.Checkpoint(s.cfg.CheckpointDir); err != nil {
			return nil, err
		}
		if err := checkpoint.ResetWAL(s.cfg.CheckpointDir); err != nil {
			return nil, err
		}
	}
	return s.run, nil
}

// step advances the day clock for one event and applies it — the single
// ingest path shared by live serving and WAL replay. On the live path the
// event reaches the write-ahead log before any in-memory state changes.
func (s *Service) step(ev events.Event) error {
	if !s.started {
		s.started = true
		s.curDay = ev.Day
		s.lastSnapDay = ev.Day
	}
	if ev.Day < s.curDay {
		if s.cfg.LatePolicy != LateDrop {
			return fmt.Errorf("stream: source out of order: day %d after day %d",
				ev.Day, s.curDay)
		}
		// Late drop: the admission decision is durable — WAL-logged and
		// counted against the drain cursor like an accepted event, so
		// replay re-drops it at the same sequence number — but the event
		// itself never touches the event store, the planner, or (for an
		// evicted epoch) any state retention already reclaimed.
		if err := s.logWAL(ev); err != nil {
			return err
		}
		s.run.EventsIngested++
		s.run.EventsDropped++
		return s.fault(PointEventIngested)
	}
	if ev.Day > s.curDay {
		if err := s.endOfDay(ev.Day); err != nil {
			return err
		}
		s.curDay = ev.Day
	}
	if err := s.logWAL(ev); err != nil {
		return err
	}
	s.ingest(ev)
	return s.fault(PointEventIngested)
}

// logWAL appends one drained event to the write-ahead log on the live path
// (no-op without durability or during replay), tagged with its drain
// sequence number.
func (s *Service) logWAL(ev events.Event) error {
	if s.wal == nil || s.replaying {
		return nil
	}
	s.walBuf = encodeWALRecord(s.walBuf, s.run.EventsIngested, ev)
	return s.wal.Append(s.walBuf)
}

// ingest records one event and routes conversions to the planner.
func (s *Service) ingest(ev events.Event) {
	s.db.Record(events.EpochOfDay(ev.Day, s.cfg.EpochDays), ev)
	s.run.EventsIngested++
	if ev.IsConversion() {
		if q := s.plan.add(ev); q != nil {
			s.due = append(s.due, q)
		}
	}
}

// endOfDay closes out the current day before advancing to nextDay: it fires
// every query whose batch filled today, then advances the retention horizon
// now that those batches' windows are settled, and — on the snapshot
// cadence — commits a checkpoint and rotates the WAL.
func (s *Service) endOfDay(nextDay int) error {
	if err := s.fault(PointDayEnd); err != nil {
		return err
	}
	if err := s.flushDue(); err != nil {
		return err
	}
	if err := s.fault(PointDayFlushed); err != nil {
		return err
	}
	s.advanceRetention(nextDay)
	if err := s.fault(PointRetentionAdvanced); err != nil {
		return err
	}
	if s.wal != nil && !s.replaying && s.cfg.SnapshotEveryDays > 0 &&
		s.curDay-s.lastSnapDay >= s.cfg.SnapshotEveryDays {
		s.lastSnapDay = s.curDay
		if err := s.rotateCheckpoint(); err != nil {
			return err
		}
		if err := s.fault(PointSnapshotCommitted); err != nil {
			return err
		}
	}
	return nil
}

// rotateCheckpoint commits a snapshot of the current state and starts a
// fresh WAL. Order matters for crash safety: sync the old log (so a crash
// mid-rotation can still replay it), commit the snapshot, then truncate —
// a crash between the last two steps leaves snapshot + stale log, whose
// subsumed records the replay cursor skips.
func (s *Service) rotateCheckpoint() error {
	if err := s.wal.Sync(); err != nil {
		return err
	}
	if err := s.Checkpoint(s.cfg.CheckpointDir); err != nil {
		return err
	}
	if err := s.wal.Close(); err != nil {
		return err
	}
	s.wal = nil
	if err := checkpoint.ResetWAL(s.cfg.CheckpointDir); err != nil {
		return err
	}
	wal, err := checkpoint.OpenWAL(s.cfg.CheckpointDir)
	if err != nil {
		return err
	}
	s.wal = wal
	return nil
}

// advanceRetention computes the oldest epoch any future query window can
// reach — bounded by the earliest still-pending conversion and the next
// ingest day — and evicts everything below it from the event store, the
// replay-protection set, and (in Lean mode) the device filters.
func (s *Service) advanceRetention(nextDay int) {
	if n := s.db.NumRecords(); n > s.run.PeakResidentRecords {
		s.run.PeakResidentRecords = n
	}
	minLive := nextDay
	if d, ok := s.plan.minPendingDay(); ok && d < minLive {
		minLive = d
	}
	floor := events.EpochOfDay(minLive-s.cfg.WindowDays+1, s.cfg.EpochDays)
	if floor <= s.evictFloor {
		return
	}
	s.evictFloor = floor
	s.run.EvictedRecords += s.db.EvictBefore(floor)
	if s.cfg.Lean {
		s.run.ReleasedFilters += s.fleet.AdvanceEpochFloor(floor)
	}
}
