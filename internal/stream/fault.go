package stream

// Fault injection: the crash-recovery harness (internal/checkpoint) needs to
// kill the service at every durable-state transition and prove that resuming
// from disk reproduces the uninterrupted run bit for bit. FaultPoints name
// those transitions; a Config.FaultHook observes each one and returns a
// non-nil error to simulate a crash there — Serve abandons the in-memory
// state and propagates the error, leaving the checkpoint directory exactly
// as a real crash would.
//
// Hooks fire only on the live path: WAL replay during ResumeFrom is already
// recovery and is never re-crashed from within.

// FaultPoint identifies one state transition of the day-clocked service.
type FaultPoint string

const (
	// PointEventIngested fires after one event was appended to the WAL and
	// applied to the in-memory state (event store + planner cursor).
	PointEventIngested FaultPoint = "event-ingested"
	// PointDayEnd fires at a day boundary, before the day's due queries
	// flush — the last instant at which the day's charges are not yet
	// applied.
	PointDayEnd FaultPoint = "day-end"
	// PointQueryExecuted fires after one query's ledger charges, noise
	// draw, and result record — mid-flush, the regime where recovery must
	// not double-charge the already-executed queries of the day.
	PointQueryExecuted FaultPoint = "query-executed"
	// PointDayFlushed fires after the whole day flushed and the day's
	// consumed nonces retired.
	PointDayFlushed FaultPoint = "day-flushed"
	// PointRetentionAdvanced fires after the retention horizon moved:
	// event records evicted, and (Lean mode) device filters released.
	PointRetentionAdvanced FaultPoint = "retention-advanced"
	// PointSnapshotCommitted fires when a snapshot generation's durable
	// commit is observed by the day clock (the background writer's result
	// is harvested) — crashing here must resume from the generation just
	// written.
	PointSnapshotCommitted FaultPoint = "snapshot-committed"
	// PointDeltaCaptured fires after the day clock captured the dirty
	// state for a snapshot generation and rotated the WAL, before the
	// background writer has durably committed it — crashing here must
	// recover from the previous generation plus the rotated log.
	PointDeltaCaptured FaultPoint = "delta-captured"
	// PointBaseCompacted fires when a base compaction's durable commit is
	// observed: the delta chain was folded into a fresh base and
	// superseded generations collected.
	PointBaseCompacted FaultPoint = "base-compacted"
	// PointGroupCommit fires after a WAL group commit was requested: the
	// buffered records reached the file and the background syncer was
	// signalled. The records are not yet guaranteed durable — which is
	// exactly the regime recovery must tolerate.
	PointGroupCommit FaultPoint = "group-commit"
)

// Points lists every registered fault point — the crash-point matrix the
// recovery harness iterates.
var Points = []FaultPoint{
	PointEventIngested,
	PointDayEnd,
	PointQueryExecuted,
	PointDayFlushed,
	PointRetentionAdvanced,
	PointSnapshotCommitted,
	PointDeltaCaptured,
	PointBaseCompacted,
	PointGroupCommit,
}

// FaultHook observes a state transition. Returning a non-nil error makes
// Serve stop there, as if the process had crashed at that instant.
type FaultHook func(FaultPoint) error

// fault notifies the configured hook, if any. Replay of the WAL is exempt:
// recovery itself is never re-crashed from within.
func (s *Service) fault(p FaultPoint) error {
	if s.cfg.FaultHook == nil || s.replaying {
		return nil
	}
	if err := s.cfg.FaultHook(p); err != nil {
		return &FaultError{Point: p, Err: err}
	}
	return nil
}

// FaultError wraps the error a FaultHook returned, recording where the
// simulated crash happened.
type FaultError struct {
	Point FaultPoint
	Err   error
}

// Error implements error.
func (e *FaultError) Error() string {
	return "stream: injected fault at " + string(e.Point) + ": " + e.Err.Error()
}

// Unwrap lets errors.Is reach the hook's sentinel.
func (e *FaultError) Unwrap() error { return e.Err }
