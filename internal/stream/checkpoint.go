package stream

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/events"
)

// Crash-safe checkpoint/restore for the streaming service (DESIGN.md §8,
// §12).
//
// The durable state is a chain of snapshot generations (a full base plus
// incremental deltas, see delta.go) and numbered write-ahead-log segments,
// all owned by internal/checkpoint's CRC-guarded formats:
//
//   - A full snapshot captures the service's complete state at a day
//     boundary:
//     every device's budget-ledger lanes, the fleet's retention floor, the
//     live device-epoch records of the event store, the incremental
//     planner's cursor (per-stream pending conversions, sequence numbers,
//     caps), the aggregation service's nonce watermark and consumed set,
//     both noise-stream RNG states, the central budgeter (IPA-like runs),
//     and the run's results and accumulators. Scalar floats are serialized
//     as IEEE-754 bit patterns, so restore is bit-exact by construction
//     (including the NaN RMSRE of rejected queries).
//
//   - The WAL records every ingested event ahead of applying it, tagged
//     with its global ingest sequence number.
//
// Recovery = truncate + deterministic replay: ResumeFrom restores the
// snapshot, replays the WAL's events through the ordinary ingest path
// (re-executing any day flush the replay crosses — same ledger state, same
// RNG positions, so the same charges and noise draws), and then Serve skips
// the source prefix the durable state already covers. Work the crashed
// process did after its last durable write is simply re-done from the same
// pre-state, which is why nothing is ever double-charged: the in-memory
// effects of that work died with the process.

// snapSchemaVersion guards the snapshot payload layout (the file framing has
// its own version, checkpoint.FormatVersion). v2: event blobs switched from
// the row codec to the columnar events.MarshalEvents layout — a v1 snapshot
// must be refused up front, not fed to the incompatible decoder. v3: devices
// carry their ledger denial counters, so the budget-drain telemetry survives
// recovery, and snapshots may be deltas folded over a base generation.
const snapSchemaVersion = 3

// snapConfig is the scenario fingerprint stored in every snapshot. Resuming
// under a different scenario would silently diverge from the original run,
// so ResumeFrom refuses mismatches. Execution-only knobs (Parallelism,
// QueueSize) are excluded: results are invariant to them.
type snapConfig struct {
	EpochDays            int     `json:"epochDays"`
	WindowDays           int     `json:"windowDays"`
	EpsilonG             uint64  `json:"epsilonGBits"`
	CalibrationAlpha     float64 `json:"calAlpha"`
	CalibrationBeta      float64 `json:"calBeta"`
	FixedEpsilon         uint64  `json:"fixedEpsilonBits"`
	Bias                 bool    `json:"bias"`
	BiasLastTouch        bool    `json:"biasLastTouch"`
	BiasKappa            uint64  `json:"biasKappaBits"`
	Seed                 uint64  `json:"seed"`
	MaxQueriesPerProduct int     `json:"maxQueries"`
	Central              bool    `json:"central"`
	Lean                 bool    `json:"lean"`
	LatePolicy           int     `json:"latePolicy"`
	Dataset              string  `json:"dataset"`
}

func (s *Service) snapConfig() snapConfig {
	sc := snapConfig{
		EpochDays:            s.cfg.EpochDays,
		WindowDays:           s.cfg.WindowDays,
		EpsilonG:             math.Float64bits(s.cfg.EpsilonG),
		CalibrationAlpha:     s.cfg.Calibration.Alpha,
		CalibrationBeta:      s.cfg.Calibration.Beta,
		FixedEpsilon:         math.Float64bits(s.cfg.FixedEpsilon),
		Seed:                 s.cfg.Seed,
		MaxQueriesPerProduct: s.cfg.MaxQueriesPerProduct,
		Central:              s.cfg.Central,
		Lean:                 s.cfg.Lean,
		LatePolicy:           int(s.cfg.LatePolicy),
		Dataset:              s.meta.Name,
	}
	if s.cfg.Bias != nil {
		sc.Bias = true
		sc.BiasLastTouch = s.cfg.Bias.LastTouch
		sc.BiasKappa = math.Float64bits(s.cfg.Bias.Kappa)
	}
	return sc
}

// deviceState is one device's budget-ledger lanes. Slots carry the binary
// slot encoding (encodeSlots): the fleet's slot table is the snapshot's
// biggest section after the event store, and reflective JSON there would
// dominate snapshot cost.
type deviceState struct {
	ID    uint64 `json:"id"`
	Slots []byte `json:"slots,omitempty"`
	// Denials is the device ledger's lifetime denial counter — pure
	// telemetry, but telemetry the hostile-traffic scenarios assert on, so
	// it must survive recovery like any other state.
	Denials uint64 `json:"denials,omitempty"`
}

// encodeSlots packs a device's ledger rows: u32 count, then per slot a
// length-prefixed querier string, the epoch (u32, two's complement), and
// consumed/capacity as IEEE-754 bits.
func encodeSlots(rows []core.LedgerRow) []byte {
	if len(rows) == 0 {
		return nil
	}
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(rows)))
	for _, r := range rows {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Querier)))
		buf = append(buf, r.Querier...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(r.Epoch)))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Consumed))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Capacity))
	}
	return buf
}

// decodeSlots streams an encodeSlots blob into fn.
func decodeSlots(buf []byte, fn func(q events.Site, e events.Epoch, consumed, capacity float64) error) error {
	if len(buf) == 0 {
		return nil
	}
	if len(buf) < 4 {
		return fmt.Errorf("stream: truncated slot table")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	for i := 0; i < n; i++ {
		if len(buf) < 4 {
			return fmt.Errorf("stream: truncated slot querier")
		}
		qn := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if qn < 0 || qn+4+16 > len(buf) {
			return fmt.Errorf("stream: slot querier of %d bytes exceeds buffer", qn)
		}
		q := events.Site(buf[:qn])
		buf = buf[qn:]
		e := events.Epoch(int32(binary.LittleEndian.Uint32(buf)))
		consumed := math.Float64frombits(binary.LittleEndian.Uint64(buf[4:]))
		capacity := math.Float64frombits(binary.LittleEndian.Uint64(buf[12:]))
		buf = buf[20:]
		if err := fn(q, e, consumed, capacity); err != nil {
			return err
		}
	}
	if len(buf) != 0 {
		return fmt.Errorf("stream: %d trailing bytes in slot table", len(buf))
	}
	return nil
}

// recordState is one live device-epoch record of the event store. Events
// use the compact binary codec (events.MarshalEvents) — they dominate the
// snapshot's bytes, and reflective JSON there would dominate its cost.
type recordState struct {
	Device uint64 `json:"d"`
	Epoch  int32  `json:"e"`
	Events []byte `json:"events"`
}

// streamSnap is one query stream's planner cursor.
type streamSnap struct {
	Site    string `json:"site"`
	Product string `json:"product"`
	Epsilon uint64 `json:"epsilonBits"`
	Seq     int    `json:"seq"`
	Capped  bool   `json:"capped"`
	Pending []byte `json:"pending,omitempty"`
}

// resultState is one released query result, floats as bit patterns.
type resultState struct {
	Querier        string `json:"querier"`
	Product        string `json:"product"`
	Index          int    `json:"index"`
	Batch          int    `json:"batch"`
	Epsilon        uint64 `json:"epsilonBits"`
	Executed       bool   `json:"executed"`
	Truth          uint64 `json:"truthBits"`
	Estimate       uint64 `json:"estimateBits"`
	RMSRE          uint64 `json:"rmsreBits"`
	FireDay        int    `json:"fireDay"`
	DeniedReports  int    `json:"denied"`
	BiasedReports  int    `json:"biased"`
	BiasEstimate   uint64 `json:"biasEstimateBits"`
	FirstEpoch     int32  `json:"firstEpoch"`
	LastEpoch      int32  `json:"lastEpoch"`
	AvgBudgetAfter uint64 `json:"avgBudgetAfterBits"`
}

// The requested-epoch accounting (Fig. 4 denominators) serializes as one
// binary blob for the same reason as the slot tables: it holds an entry per
// (device, epoch, querier) touch. Layout: u32 entry count, then per entry
// u64 device, u32 epoch (two's complement), u32 site count, and the
// length-prefixed site strings.

// encodeRequested packs the accounting in sorted order.
func encodeRequested(requested map[DevEpoch]map[events.Site]struct{}) []byte {
	if len(requested) == 0 {
		return nil
	}
	keys := make([]DevEpoch, 0, len(requested))
	for key := range requested {
		keys = append(keys, key)
	}
	slices.SortFunc(keys, func(a, b DevEpoch) int {
		switch {
		case a.Device != b.Device:
			if a.Device < b.Device {
				return -1
			}
			return 1
		case a.Epoch < b.Epoch:
			return -1
		case a.Epoch > b.Epoch:
			return 1
		}
		return 0
	})
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(keys)))
	var sites []string
	for _, key := range keys {
		sites = sites[:0]
		for site := range requested[key] {
			sites = append(sites, string(site))
		}
		slices.Sort(sites)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(key.Device))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(key.Epoch)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sites)))
		for _, s := range sites {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
			buf = append(buf, s...)
		}
	}
	return buf
}

// decodeRequested rebuilds the accounting map from an encodeRequested blob.
func decodeRequested(buf []byte, into map[DevEpoch]map[events.Site]struct{}) error {
	if len(buf) == 0 {
		return nil
	}
	if len(buf) < 4 {
		return fmt.Errorf("stream: truncated requested table")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	for i := 0; i < n; i++ {
		if len(buf) < 16 {
			return fmt.Errorf("stream: truncated requested entry")
		}
		dev := events.DeviceID(binary.LittleEndian.Uint64(buf))
		epoch := events.Epoch(int32(binary.LittleEndian.Uint32(buf[8:])))
		sn := int(binary.LittleEndian.Uint32(buf[12:]))
		buf = buf[16:]
		m := make(map[events.Site]struct{}, sn)
		for j := 0; j < sn; j++ {
			if len(buf) < 4 {
				return fmt.Errorf("stream: truncated requested site")
			}
			ln := int(binary.LittleEndian.Uint32(buf))
			buf = buf[4:]
			if ln < 0 || ln > len(buf) {
				return fmt.Errorf("stream: requested site of %d bytes exceeds buffer", ln)
			}
			m[events.Site(buf[:ln])] = struct{}{}
			buf = buf[ln:]
		}
		into[DevEpoch{dev, epoch}] = m
	}
	if len(buf) != 0 {
		return fmt.Errorf("stream: %d trailing bytes in requested table", len(buf))
	}
	return nil
}

// centralState is one central (IPA-like) filter row.
type centralState struct {
	Querier  string `json:"q"`
	Epoch    int32  `json:"e"`
	Consumed uint64 `json:"c"`
}

// dropMarkState is one device's late-drop admission mark (see
// Service.dropMarks): a durable admission decision the event store cannot
// carry, persisted so external dedupe cursors survive a snapshot that
// subsumes the WAL.
type dropMarkState struct {
	Device uint64 `json:"d"`
	Day    int    `json:"day"`
	ID     uint64 `json:"id"`
}

// snapState is the full snapshot payload.
type snapState struct {
	Schema int        `json:"schema"`
	Config snapConfig `json:"config"`

	// Day clock and ingest cursor.
	CurDay         int   `json:"curDay"`
	Started        bool  `json:"started"`
	EventsIngested int   `json:"eventsIngested"`
	EventsDropped  int   `json:"eventsDropped,omitempty"`
	NextIndex      int   `json:"nextIndex"`
	EvictFloor     int32 `json:"evictFloor"`
	LastSnapDay    int   `json:"lastSnapDay"`
	// DropMarks are the per-device late-drop admission marks, captured
	// whole (the map holds at most one entry per device, and only while
	// that device's newest admission was a drop).
	DropMarks []dropMarkState `json:"dropMarks,omitempty"`

	// Replay protection and noise streams.
	NonceFloor   uint64     `json:"nonceFloor"`
	AggWatermark uint64     `json:"aggWatermark"`
	AggSeen      []uint64   `json:"aggSeen,omitempty"`
	AggNoise     [4]uint64  `json:"aggNoise"`
	IPANoise     *[4]uint64 `json:"ipaNoise,omitempty"`

	// Budget state.
	FleetFloor int32          `json:"fleetFloor"`
	Devices    []deviceState  `json:"devices"`
	Central    []centralState `json:"central,omitempty"`

	// Event store and planner cursor.
	Records []recordState `json:"records"`
	Streams []streamSnap  `json:"streams"`

	// Run accumulators and telemetry.
	Results             []resultState `json:"results"`
	Requested           []byte        `json:"requested,omitempty"`
	TotalConsumed       uint64        `json:"totalConsumedBits"`
	PeakQueue           int           `json:"peakQueue"`
	PeakResidentRecords int           `json:"peakResidentRecords"`
	EvictedRecords      int           `json:"evictedRecords"`
	RetiredNonces       int           `json:"retiredNonces"`
	ReleasedFilters     int           `json:"releasedFilters"`
}

// WAL record layout: the event's global ingest sequence number (u64,
// little-endian) followed by the event's binary encoding. The sequence
// number is the cursor that makes replay after a crash between snapshot
// commit and WAL rotation skip already-snapshotted records instead of
// double-applying them.

// encodeWALRecord frames one ingested event for the WAL.
func encodeWALRecord(buf []byte, seq int, ev events.Event) []byte {
	buf = binary.LittleEndian.AppendUint64(buf[:0], uint64(seq))
	return events.AppendBinary(buf, ev)
}

// decodeWALRecord parses one WAL record.
func decodeWALRecord(rec []byte) (seq int, ev events.Event, err error) {
	if len(rec) < 8 {
		return 0, ev, fmt.Errorf("stream: truncated wal record (%d bytes)", len(rec))
	}
	seq = int(int64(binary.LittleEndian.Uint64(rec)))
	ev, rest, err := events.DecodeBinary(rec[8:])
	if err == nil && len(rest) != 0 {
		err = fmt.Errorf("stream: %d trailing bytes in wal record", len(rest))
	}
	return seq, ev, err
}

// Checkpoint commits a full snapshot of the service's current state as a
// fresh base generation in dir. The service must be at a quiescent point —
// no day flush in progress (Serve takes snapshots itself at day boundaries
// via Config.SnapshotEveryDays; call Checkpoint directly only before Serve
// starts or after it returns).
func (s *Service) Checkpoint(dir string) error {
	if len(s.due) != 0 {
		return fmt.Errorf("stream: checkpoint with %d unflushed queries", len(s.due))
	}
	payload, err := json.Marshal(s.snapshot())
	if err != nil {
		return fmt.Errorf("stream: encoding snapshot: %w", err)
	}
	st := s.store
	if st == nil || dir != s.cfg.CheckpointDir {
		st = checkpoint.NewStore(dir, s.cfg.DurableFS)
	}
	gen, err := st.MaxGen()
	if err != nil {
		return err
	}
	gen++
	fp, err := st.WriteBase(gen, payload)
	if err != nil {
		return err
	}
	if st == s.store {
		s.headGen, s.headFP = gen, fp
		if s.nextGen <= gen {
			s.nextGen = gen + 1
		}
	}
	return nil
}

// snapshot captures the complete service state. Caller guarantees
// quiescence.
func (s *Service) snapshot() *snapState {
	snap := s.scalarSnap()

	// Fleet: every created device (even ones with no initialized slots —
	// device existence is itself state) with its sorted ledger rows.
	s.fleet.Range(func(d *core.Device) bool {
		snap.Devices = append(snap.Devices, deviceState{
			ID:      uint64(d.ID()),
			Slots:   encodeSlots(d.Ledger()),
			Denials: d.BudgetDenials(),
		})
		return true
	})

	// Event store: live device-epoch records in deterministic order.
	for _, dev := range s.db.Devices() {
		for _, e := range s.db.DeviceEpochs(dev) {
			rec := recordState{Device: uint64(dev), Epoch: int32(e),
				Events: events.MarshalEvents(s.db.EpochEvents(dev, e))}
			snap.Records = append(snap.Records, rec)
		}
	}

	// Planner cursor, sorted by stream key for deterministic bytes.
	for key, st := range s.plan.streams {
		snap.Streams = append(snap.Streams, streamSnap{
			Site:    string(key.site),
			Product: key.product,
			Epsilon: math.Float64bits(st.epsilon),
			Seq:     st.seq,
			Capped:  st.capped,
			Pending: events.MarshalEvents(st.pending),
		})
	}
	slices.SortFunc(snap.Streams, func(a, b streamSnap) int {
		if a.Site != b.Site {
			if a.Site < b.Site {
				return -1
			}
			return 1
		}
		if a.Product != b.Product {
			if a.Product < b.Product {
				return -1
			}
			return 1
		}
		return 0
	})

	snap.Results = appendResultStates(nil, s.run.Results)
	if s.run.Requested != nil {
		snap.Requested = encodeRequested(s.run.Requested)
	}
	return snap
}

// scalarSnap captures everything a snapshot carries whole regardless of
// representation: the day clock, cursors, telemetry accumulators, noise
// streams, replay protection, and the central budgeter. Shared by full
// snapshots and deltas, so the two can never disagree on the scalars.
func (s *Service) scalarSnap() *snapState {
	snap := &snapState{
		Schema:         snapSchemaVersion,
		Config:         s.snapConfig(),
		CurDay:         s.curDay,
		Started:        s.started,
		EventsIngested: s.run.EventsIngested,
		EventsDropped:  s.run.EventsDropped,
		NextIndex:      s.nextIndex,
		EvictFloor:     int32(s.evictFloor),
		LastSnapDay:    s.lastSnapDay,

		NonceFloor: uint64(core.NonceFloor()),
		AggNoise:   s.aggNoise.State(),

		FleetFloor: int32(s.fleet.EpochFloor()),

		TotalConsumed:       math.Float64bits(s.run.TotalConsumed),
		PeakQueue:           s.run.PeakQueue,
		PeakResidentRecords: s.run.PeakResidentRecords,
		EvictedRecords:      s.run.EvictedRecords,
		RetiredNonces:       s.run.RetiredNonces,
		ReleasedFilters:     s.run.ReleasedFilters,
	}

	for dev, m := range s.dropMarks {
		snap.DropMarks = append(snap.DropMarks, dropMarkState{
			Device: uint64(dev), Day: m.Day, ID: uint64(m.ID),
		})
	}
	slices.SortFunc(snap.DropMarks, func(a, b dropMarkState) int {
		switch {
		case a.Device < b.Device:
			return -1
		case a.Device > b.Device:
			return 1
		}
		return 0
	})

	watermark, seen := s.agg.SnapshotNonces()
	snap.AggWatermark = uint64(watermark)
	for _, n := range seen {
		snap.AggSeen = append(snap.AggSeen, uint64(n))
	}
	if s.ipaNoise != nil {
		st := s.ipaNoise.State()
		snap.IPANoise = &st
	}

	if s.central != nil {
		for _, row := range s.central.Rows() {
			snap.Central = append(snap.Central, centralState{
				Querier:  string(row.Querier),
				Epoch:    int32(row.Epoch),
				Consumed: math.Float64bits(row.Consumed),
			})
		}
	}
	return snap
}

// appendResultStates converts released results to their persisted form.
func appendResultStates(dst []resultState, results []Result) []resultState {
	for _, res := range results {
		dst = append(dst, resultState{
			Querier:        string(res.Querier),
			Product:        res.Product,
			Index:          res.Index,
			Batch:          res.Batch,
			Epsilon:        math.Float64bits(res.Epsilon),
			Executed:       res.Executed,
			Truth:          math.Float64bits(res.Truth),
			Estimate:       math.Float64bits(res.Estimate),
			RMSRE:          math.Float64bits(res.RMSRE),
			FireDay:        res.FireDay,
			DeniedReports:  res.DeniedReports,
			BiasedReports:  res.BiasedReports,
			BiasEstimate:   math.Float64bits(res.BiasEstimate),
			FirstEpoch:     int32(res.FirstEpoch),
			LastEpoch:      int32(res.LastEpoch),
			AvgBudgetAfter: math.Float64bits(res.AvgBudgetAfter),
		})
	}
	return dst
}

// errReplayGap stops WAL replay cleanly when a record's sequence number
// jumps past the ingest cursor — a mid-chain segment lost records to
// corruption (bit-flip, lost tail). Everything from the cursor on is
// re-read from the deterministic source instead.
var errReplayGap = errors.New("stream: wal sequence gap")

// ResumeFrom rebuilds a service from dir's durable state: it loads the
// newest intact base generation, folds its delta chain into a full
// snapshot, restores it, and replays the retained WAL segments through the
// ordinary ingest path — re-executing any day flush the log crosses, with
// the restored ledger and noise-stream state, so the re-execution is
// bit-identical to what the crashed process computed. The returned
// service's Serve skips the source prefix the durable state already covers
// and continues live from there.
//
// Recovery never serves corrupt state and never fails on it either:
// generations that fail their frame or chain checks are skipped (falling
// back to the newest intact base below them), a WAL sequence gap stops
// replay cleanly, and in the worst case — nothing intact at all — the run
// restarts from the source. Every such downgrade is counted in
// Run.Durability.RecoveryFallbacks. Only a genuine mismatch (a snapshot
// from a different scenario) is an error.
//
// cfg must describe the same scenario as the original run (ResumeFrom
// verifies the snapshot's config fingerprint) with the source positioned at
// the start of the stream; Parallelism and QueueSize may differ.
func ResumeFrom(cfg Config, dir string) (*Service, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	st := checkpoint.NewStore(dir, s.cfg.DurableFS)
	s.store = st
	chain, fallbacks, err := st.LoadChain()
	if err != nil {
		return nil, err
	}
	restored := false
	if chain != nil {
		folded, err := foldChain(chain.Payloads)
		if err != nil {
			return nil, err
		}
		if err := s.restore(folded); err != nil {
			return nil, err
		}
		s.headGen, s.headFP = chain.Gen, chain.FP
		restored = true
	}
	maxGen, err := st.MaxGen()
	if err != nil {
		return nil, err
	}
	s.nextGen = maxGen + 1

	// Dirty tracking goes live before replay: the mutations replay makes
	// are exactly what the first post-recovery delta must capture.
	if s.cfg.CheckpointDir != "" && s.cfg.SnapshotMode == SnapshotModeDelta {
		s.resetDirtyTracking()
	}

	// Replay the retained WAL segments through the normal ingest path.
	// Records at sequence numbers the snapshot already covers (segments
	// rotated before the chain head was captured, or a crash between
	// commit and rotation) are skipped by the cursor.
	s.replaying = true
	var replayed int
	replayed, err = st.ReplayWALSegments(func(rec []byte) error {
		seq, ev, err := decodeWALRecord(rec)
		if err != nil {
			return err
		}
		switch {
		case seq < s.run.EventsIngested:
			return nil // already in the snapshot
		case seq > s.run.EventsIngested:
			return errReplayGap
		}
		return s.step(ev)
	})
	s.replaying = false
	if errors.Is(err, errReplayGap) || errors.Is(err, checkpoint.ErrCorrupt) {
		// Clean stop: the durable state ends at the cursor; Serve re-reads
		// the rest from the source. A corrupt segment (a flipped preamble
		// bit, a record that fails to decode) ends the durable log exactly
		// like a torn tail — everything past it is re-delivered by the
		// source and re-applied deterministically, so refusing to start
		// would turn one lost tail into a permanently unrecoverable
		// directory. The skipped tail is reported as a fallback.
		fallbacks++
		err = nil
	}
	if err != nil {
		return nil, err
	}
	s.run.Durability.RecoveryFallbacks = fallbacks
	s.skip = s.run.EventsIngested
	if cfg.LiveSource {
		// A live feed never re-delivers the covered prefix — its admission
		// layer dedupes against the very cursors the observers just rebuilt
		// — so there is no prefix to skip: the next event drained is new.
		s.skip = 0
	}
	// An empty directory holds no run to continue: leave resumed unset so
	// Serve initializes it as a fresh run (a Serve-owned directory always
	// carries a fingerprinted base from the very start, so a later
	// ResumeFrom can check the scenario even before any cadence snapshot).
	s.resumed = restored || replayed > 0
	return s, nil
}

// restore applies a decoded snapshot to a freshly built service.
func (s *Service) restore(snap *snapState) error {
	if snap.Schema != snapSchemaVersion {
		return fmt.Errorf("stream: unsupported snapshot schema %d", snap.Schema)
	}
	if want, got := s.snapConfig(), snap.Config; got != want {
		return fmt.Errorf("stream: snapshot is for a different scenario (%+v, running %+v)",
			got, want)
	}

	s.curDay = snap.CurDay
	s.started = snap.Started
	s.nextIndex = snap.NextIndex
	s.evictFloor = events.Epoch(snap.EvictFloor)
	s.lastSnapDay = snap.LastSnapDay
	s.run.EventsIngested = snap.EventsIngested
	s.run.EventsDropped = snap.EventsDropped
	s.run.TotalConsumed = math.Float64frombits(snap.TotalConsumed)
	s.run.PeakQueue = snap.PeakQueue
	s.run.PeakResidentRecords = snap.PeakResidentRecords
	s.run.EvictedRecords = snap.EvictedRecords
	s.run.RetiredNonces = snap.RetiredNonces
	s.run.ReleasedFilters = snap.ReleasedFilters

	// Replay protection: never re-mint a nonce the crashed process already
	// issued, and reinstate the aggregation service's one-use state.
	core.EnsureNonceFloor(core.Nonce(snap.NonceFloor))
	seen := make([]core.Nonce, 0, len(snap.AggSeen))
	for _, n := range snap.AggSeen {
		seen = append(seen, core.Nonce(n))
	}
	s.agg.RestoreNonces(core.Nonce(snap.AggWatermark), seen)

	// Noise streams continue from their exact crash-time positions.
	s.aggNoise.SetState(snap.AggNoise)
	switch {
	case s.ipaNoise != nil && snap.IPANoise != nil:
		s.ipaNoise.SetState(*snap.IPANoise)
	case (s.ipaNoise == nil) != (snap.IPANoise == nil):
		return fmt.Errorf("stream: snapshot central-noise state mismatch")
	}

	// Budget state: retention floor first (devices created below inherit
	// it; every restored row is at or above it by construction).
	if floor := events.Epoch(snap.FleetFloor); floor > s.fleet.EpochFloor() {
		s.fleet.AdvanceEpochFloor(floor)
	}
	for _, ds := range snap.Devices {
		d := s.fleet.GetOrCreate(events.DeviceID(ds.ID))
		err := decodeSlots(ds.Slots, d.RestoreBudgetRow)
		if err != nil {
			return fmt.Errorf("stream: device %d: %w", ds.ID, err)
		}
		d.RestoreBudgetDenials(ds.Denials)
	}
	if len(snap.Central) > 0 && s.central == nil {
		return fmt.Errorf("stream: snapshot has central filters but run is on-device")
	}
	for _, cs := range snap.Central {
		err := s.central.Restore(events.Site(cs.Querier), events.Epoch(cs.Epoch),
			math.Float64frombits(cs.Consumed))
		if err != nil {
			return err
		}
	}

	// Event store: live records re-recorded in their stored (Day, ID)
	// order. The admission observer sees every restored event, so an
	// external admission layer rebuilds its dedupe cursors from the same
	// durable state the service resumes from.
	for _, rec := range snap.Records {
		evs, err := events.UnmarshalEvents(rec.Events)
		if err != nil {
			return fmt.Errorf("stream: record %d/%d: %w", rec.Device, rec.Epoch, err)
		}
		for _, ev := range evs {
			s.db.Record(events.Epoch(rec.Epoch), ev)
			s.observeAdmit(ev, false)
		}
	}

	// Late-drop admission marks: durable admission decisions with no event
	// behind them. The observer sees each one as a dropped admission (the
	// synthesized event carries only its identity), so the serving layer's
	// dedupe cursor for a device whose newest admission was late-dropped
	// does not regress across suspend/resume even after the snapshot has
	// subsumed the WAL records of those drops.
	for _, dm := range snap.DropMarks {
		dev := events.DeviceID(dm.Device)
		mark := dropMark{Day: dm.Day, ID: events.EventID(dm.ID)}
		s.dropMarks[dev] = mark
		s.observeAdmit(events.Event{ID: mark.ID, Device: dev, Day: mark.Day}, true)
	}

	// Planner cursor.
	for _, ss := range snap.Streams {
		adv, ok := s.plan.advBySite[events.Site(ss.Site)]
		if !ok {
			return fmt.Errorf("stream: snapshot stream for unknown advertiser %s", ss.Site)
		}
		pending, err := events.UnmarshalEvents(ss.Pending)
		if err != nil {
			return fmt.Errorf("stream: stream %s/%s: %w", ss.Site, ss.Product, err)
		}
		key := streamKey{events.Site(ss.Site), ss.Product}
		s.plan.streams[key] = &streamState{
			adv:     adv,
			product: ss.Product,
			epsilon: math.Float64frombits(ss.Epsilon),
			pending: pending,
			seq:     ss.Seq,
			capped:  ss.Capped,
		}
	}

	// Released results and the Fig. 4 accounting. Restored results replay
	// through the result observer so the serving layer's poll buffer
	// survives recovery.
	for _, rs := range snap.Results {
		s.run.Results = append(s.run.Results, Result{
			Querier:        events.Site(rs.Querier),
			Product:        rs.Product,
			Index:          rs.Index,
			Batch:          rs.Batch,
			Epsilon:        math.Float64frombits(rs.Epsilon),
			Executed:       rs.Executed,
			Truth:          math.Float64frombits(rs.Truth),
			Estimate:       math.Float64frombits(rs.Estimate),
			RMSRE:          math.Float64frombits(rs.RMSRE),
			FireDay:        rs.FireDay,
			DeniedReports:  rs.DeniedReports,
			BiasedReports:  rs.BiasedReports,
			BiasEstimate:   math.Float64frombits(rs.BiasEstimate),
			FirstEpoch:     events.Epoch(rs.FirstEpoch),
			LastEpoch:      events.Epoch(rs.LastEpoch),
			AvgBudgetAfter: math.Float64frombits(rs.AvgBudgetAfter),
		})
		s.observeResult(s.run.Results[len(s.run.Results)-1])
	}
	if s.run.Requested != nil {
		if err := decodeRequested(snap.Requested, s.run.Requested); err != nil {
			return err
		}
	}
	return nil
}
