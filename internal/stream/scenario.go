package stream

import (
	"repro/internal/attribution"
	"repro/internal/bias"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/privacy"
)

// This file holds the scenario constructions shared verbatim by the batch
// engine (internal/workload) and the streaming executor. They define the
// content of reports and released results, so the streaming-vs-batch
// bit-equivalence contract depends on there being exactly one copy of each.

// BuildRequest constructs the §6.1 attribution request for one conversion:
// last-touch scalar-value attribution over the windowDays window ending on
// the conversion day, with the advertiser's query sensitivity and, when
// biasSpec is non-nil, the Appendix F side query (Kappa ≤ 0 selects the
// paper's default of 10% of the query sensitivity).
func BuildRequest(adv dataset.Advertiser, product string, conv events.Event,
	eps float64, windowDays, epochDays int, biasSpec *core.BiasSpec) *core.Request {
	firstDay := conv.Day - windowDays + 1
	first, last := events.EpochWindow(conv.Day, windowDays, epochDays)
	req := &core.Request{
		Querier:    adv.Site,
		FirstEpoch: first,
		LastEpoch:  last,
		Selector: events.WindowSelector{
			Inner:    events.ProductSelector{Advertiser: adv.Site, Product: product},
			FirstDay: firstDay,
			LastDay:  conv.Day,
		},
		Function:          attribution.ScalarValue{Value: conv.Value},
		Epsilon:           eps,
		ReportSensitivity: conv.Value,
		QuerySensitivity:  adv.MaxValue,
		PNorm:             1,
	}
	if biasSpec != nil {
		spec := *biasSpec
		if spec.Kappa <= 0 {
			spec.Kappa = 0.1 * adv.MaxValue // the paper's 10% scaling
		}
		req.Bias = &spec
	}
	return req
}

// BiasBound computes the querier-side RMSRE upper bound from one query's
// noisy side-query count (Appendix F), with the same Kappa defaulting as
// BuildRequest.
func BiasBound(biasCount, estimate float64, adv dataset.Advertiser,
	eps float64, batch int, spec *core.BiasSpec, beta float64) float64 {
	kappa := spec.Kappa
	if kappa <= 0 {
		kappa = 0.1 * adv.MaxValue
	}
	bound := bias.Compute(biasCount, estimate, bias.Params{
		Kappa:       kappa,
		NoiseStdDev: privacy.NoiseStdDev(adv.MaxValue, eps),
		Beta:        beta,
		DeltaMax:    adv.MaxValue,
		ScaleFloor:  float64(batch) * adv.AvgReportValue,
	})
	return bound.RMSRE
}
