package stream

import (
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/privacy"
)

// The incremental planner is the streaming counterpart of the batch engine's
// plan(): each queryable advertiser's conversions accumulate per product
// into time-ordered batches of B, and a query becomes due the moment its
// B-th conversion arrives (the paper's "once B reports are gathered, Nike
// runs its query" loop, now clocked by arrival instead of replayed from a
// materialized trace). Because the source delivers conversions in the same
// (Day, ID) order the batch planner sorts them into, the two produce
// identical batch boundaries, fire days, and requested ε — the first half of
// the streaming-vs-batch equivalence argument.

// pendingQuery is one filled batch awaiting execution.
type pendingQuery struct {
	adv     dataset.Advertiser
	product string
	batch   []events.Event // the B conversions, in arrival order
	fireDay int            // day the batch filled
	seq     int            // batch index within the stream (sort tie-break)
	epsilon float64

	// Execution scratch, populated by the day flush (executor.go).
	reqs        []*core.Request
	first, last events.Epoch
}

// streamKey identifies one advertiser×product query stream.
type streamKey struct {
	site    events.Site
	product string
}

// streamState accumulates one query stream.
type streamState struct {
	adv     dataset.Advertiser
	product string
	epsilon float64
	pending []events.Event
	seq     int
	capped  bool
}

// planner tracks every open query stream. Memory is bounded by one open
// batch per stream (B conversions each), independent of trace length.
type planner struct {
	advBySite  map[events.Site]dataset.Advertiser
	streams    map[streamKey]*streamState
	maxQueries int
	cal        privacy.Calibration
	fixedEps   float64
	// dirty, when non-nil, collects the streams mutated since the last
	// incremental checkpoint drained it (nil when the service is not
	// delta-checkpointing, so the hot path pays nothing).
	dirty map[streamKey]struct{}
}

func newPlanner(meta dataset.Meta, cal privacy.Calibration, fixedEps float64, maxQueries int) *planner {
	advBySite := make(map[events.Site]dataset.Advertiser, len(meta.Advertisers))
	for _, adv := range meta.Advertisers {
		advBySite[adv.Site] = adv
	}
	return &planner{
		advBySite:  advBySite,
		streams:    make(map[streamKey]*streamState),
		maxQueries: maxQueries,
		cal:        cal,
		fixedEps:   fixedEps,
	}
}

// add routes one conversion to its stream and returns the query it
// completed, or nil. Conversions from non-queryable advertisers are
// ignored; capped streams drop conversions immediately so they cannot pin
// the retention horizon.
func (p *planner) add(conv events.Event) *pendingQuery {
	adv, ok := p.advBySite[conv.Advertiser]
	if !ok {
		return nil
	}
	key := streamKey{conv.Advertiser, conv.Product}
	st := p.streams[key]
	if st == nil {
		eps := p.fixedEps
		if eps <= 0 {
			eps = p.cal.Epsilon(adv.MaxValue, adv.BatchSize, adv.AvgReportValue)
		}
		st = &streamState{adv: adv, product: conv.Product, epsilon: eps}
		p.streams[key] = st
	}
	if st.capped {
		return nil
	}
	if p.dirty != nil {
		p.dirty[key] = struct{}{}
	}
	st.pending = append(st.pending, conv)
	if len(st.pending) < adv.BatchSize {
		return nil
	}
	q := &pendingQuery{
		adv:     adv,
		product: st.product,
		batch:   st.pending,
		fireDay: conv.Day,
		seq:     st.seq,
		epsilon: st.epsilon,
	}
	st.pending = nil
	st.seq++
	if p.maxQueries > 0 && st.seq >= p.maxQueries {
		st.capped = true
	}
	return q
}

// trackDirty enables (and clears) dirty-stream tracking: every stream
// mutated after this call is reported by the next drainDirty.
func (p *planner) trackDirty() {
	p.dirty = make(map[streamKey]struct{})
}

// drainDirty returns the streams mutated since tracking was last enabled or
// drained, sorted by (site, product), and clears the set.
func (p *planner) drainDirty() []streamKey {
	if len(p.dirty) == 0 {
		return nil
	}
	keys := make([]streamKey, 0, len(p.dirty))
	for key := range p.dirty {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].site != keys[j].site {
			return keys[i].site < keys[j].site
		}
		return keys[i].product < keys[j].product
	})
	clear(p.dirty)
	return keys
}

// minPendingDay returns the earliest day among buffered conversions across
// all open streams — the oldest attribution window any future query can
// still reach — and whether any conversion is pending at all.
func (p *planner) minPendingDay() (int, bool) {
	min, found := 0, false
	for _, st := range p.streams {
		if st.capped || len(st.pending) == 0 {
			continue
		}
		if d := st.pending[0].Day; !found || d < min {
			min, found = d, true
		}
	}
	return min, found
}
