package stream

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/privacy"
	"repro/internal/stats"
)

// This file is the streaming execution engine: everything that happens when
// the day clock fires. The batch engine (internal/workload) is the
// specification this code must match bit for bit — see the package comment
// for the three order-preserving properties the equivalence rests on.

// convOutput is one conversion's generate-stage result. On-device runs carry
// the fold-ready core.ReportStats instead of a full Diagnostics; the
// generate stage reuses per-worker scratch and never materializes one.
type convOutput struct {
	report *core.Report
	stats  core.ReportStats
	truth  float64 // Central path: the true report value
}

// flushDue executes every query whose batch filled during the current day,
// in the canonical (site, product, seq) order that matches the batch plan's
// (fireDay, site, product, seq) total order.
func (s *Service) flushDue() error {
	if len(s.due) == 0 {
		return nil
	}
	due := s.due
	s.due = nil
	sort.Slice(due, func(i, j int) bool {
		if due[i].adv.Site != due[j].adv.Site {
			return due[i].adv.Site < due[j].adv.Site
		}
		if due[i].product != due[j].product {
			return due[i].product < due[j].product
		}
		return due[i].seq < due[j].seq
	})

	// Stage 1: prepare. Requests are pure values; the requested-epoch
	// bookkeeping stays on the coordinator, in canonical order.
	for _, q := range due {
		s.prepare(q)
	}

	// Stage 2: generate — the day's queries multiplexed as one
	// device-partitioned super-batch (see generateDay).
	outputs, err := s.generateDay(due)
	if err != nil {
		return err
	}

	// Stage 3: aggregate sequentially in canonical order, folding each
	// query's per-conversion outputs in conversion order so sums and
	// noise draws are schedule-independent.
	off := 0
	var maxNonce core.Nonce
	for _, q := range due {
		out := outputs[off : off+len(q.batch)]
		off += len(q.batch)
		res, err := s.aggregate(q, out)
		if err != nil {
			return err
		}
		for _, o := range out {
			if o.report != nil && o.report.Nonce > maxNonce {
				maxNonce = o.report.Nonce
			}
		}
		res.Index = s.nextIndex
		s.nextIndex++
		res.AvgBudgetAfter = s.populationAvgBudget()
		s.run.Results = append(s.run.Results, res)
		if err := s.fault(PointQueryExecuted); err != nil {
			return err
		}
		s.observeResult(res)
	}

	// Batch completion: every nonce minted for today's queries has been
	// consumed (or the run already failed), so the replay-protection
	// entries at or below the day's high-water mark retire.
	if maxNonce > 0 {
		s.run.RetiredNonces += s.agg.Compact(maxNonce)
	}
	return nil
}

// prepare builds every conversion's attribution request for one query and
// records the device-epochs its windows touch.
func (s *Service) prepare(q *pendingQuery) {
	first, last := events.EpochWindow(q.batch[0].Day, s.cfg.WindowDays, s.cfg.EpochDays)
	q.first, q.last = first, last
	q.reqs = make([]*core.Request, len(q.batch))
	for i, conv := range q.batch {
		req := s.request(q.adv, q.product, conv, q.epsilon)
		q.reqs[i] = req
		s.markRequested(conv.Device, q.adv.Site, req.FirstEpoch, req.LastEpoch)
		if req.FirstEpoch < q.first {
			q.first = req.FirstEpoch
		}
		if req.LastEpoch > q.last {
			q.last = req.LastEpoch
		}
	}
}

// request builds the attribution request for one conversion via the shared
// constructor (scenario.go), so reports are indistinguishable between modes
// by construction.
func (s *Service) request(adv dataset.Advertiser, product string, conv events.Event, eps float64) *core.Request {
	return BuildRequest(adv, product, conv, eps, s.cfg.WindowDays, s.cfg.EpochDays, s.cfg.Bias)
}

// markRequested records the device-epochs a report's window touches (skipped
// in Lean mode, which trades the Fig. 4 denominators for bounded state).
func (s *Service) markRequested(dev events.DeviceID, q events.Site, first, last events.Epoch) {
	if s.run.Requested == nil {
		return
	}
	for e := first; e <= last; e++ {
		key := DevEpoch{dev, e}
		m := s.run.Requested[key]
		if m == nil {
			m = make(map[events.Site]struct{}, 1)
			s.run.Requested[key] = m
		}
		m[q] = struct{}{}
		if s.dirtyReq != nil {
			s.dirtyReq[key] = struct{}{}
		}
	}
}

// generateDay runs the generate stage for every due query at once. The
// queries' conversions concatenate in canonical order; on-device generation
// partitions the concatenation by device so a device shared across queries
// (or across conversions of one query) executes its filter operations
// sequentially in exactly the batch engine's order, while distinct devices
// from any number of queriers run concurrently. Central runs compute true
// report values instead — side-effect-free reads needing no grouping.
// Outputs land slotted by concatenated conversion index, in day buffers the
// service reuses across days (consumed synchronously by flushDue's
// aggregation loop, so reuse is safe); together with the Generator's own
// reuse, a steady-state day flush allocates only the reports it returns.
func (s *Service) generateDay(due []*pendingQuery) ([]convOutput, error) {
	total := 0
	for _, q := range due {
		total += len(q.batch)
	}
	convs := s.dayConvs[:0]
	reqs := s.dayReqs[:0]
	for _, q := range due {
		convs = append(convs, q.batch...)
		reqs = append(reqs, q.reqs...)
	}
	s.dayConvs, s.dayReqs = convs, reqs
	if cap(s.dayOut) < total {
		s.dayOut = make([]convOutput, total)
	} else {
		s.dayOut = s.dayOut[:total]
		clear(s.dayOut)
	}
	out := s.dayOut

	if s.cfg.Central {
		truths := TrueValues(s.db, reqs, convs, s.cfg.Parallelism)
		for i := range out {
			out[i].truth = truths[i]
		}
		return out, nil
	}

	reports, stats, err := s.gen.Generate(s.fleet, reqs, convs, s.cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i] = convOutput{report: reports[i], stats: stats[i]}
	}
	return out, nil
}

// aggregate folds one query's per-conversion outputs in conversion order and
// releases the noisy result through the trusted aggregation service (or the
// central authorize-and-noise path).
func (s *Service) aggregate(q *pendingQuery, outputs []convOutput) (Result, error) {
	res := Result{
		Querier:    q.adv.Site,
		Product:    q.product,
		Batch:      len(q.batch),
		Epsilon:    q.epsilon,
		FireDay:    q.fireDay,
		FirstEpoch: q.first,
		LastEpoch:  q.last,
	}

	if s.cfg.Central {
		err := s.central.Authorize(q.adv.Site, res.FirstEpoch, res.LastEpoch, q.epsilon)
		for i := range outputs {
			res.Truth += outputs[i].truth
		}
		if err == nil {
			res.Executed = true
			res.Estimate = res.Truth +
				s.ipaNoise.Laplace(privacy.Scale(q.adv.MaxValue, q.epsilon))
			span := float64(res.LastEpoch-res.FirstEpoch) + 1
			s.run.TotalConsumed += q.epsilon * span * float64(s.meta.PopulationDevices)
		}
		res.RMSRE = rmsre(res)
		return res, nil
	}

	reports := make([]*core.Report, len(outputs))
	for i := range outputs {
		st := outputs[i].stats
		res.Truth += st.TruthTotal
		s.run.TotalConsumed += st.TotalLoss
		if st.Denied {
			res.DeniedReports++
		}
		if st.Biased {
			res.BiasedReports++
		}
		reports[i] = outputs[i].report
	}
	out, err := s.agg.Execute(reports)
	if err != nil {
		return res, fmt.Errorf("stream: aggregation failed for %s/%s#%d: %w",
			q.adv.Site, q.product, q.seq, err)
	}
	res.Executed = true
	res.Estimate = out.Aggregate.Total()
	if s.cfg.Bias != nil {
		res.BiasEstimate = BiasBound(out.BiasCount, res.Estimate, q.adv,
			q.epsilon, len(q.batch), s.cfg.Bias, s.cfg.Calibration.Beta)
	}
	res.RMSRE = rmsre(res)
	return res, nil
}

// rmsre computes the realized relative error of an executed query (NaN when
// the query was rejected).
func rmsre(res Result) float64 {
	if !res.Executed {
		return math.NaN()
	}
	return stats.RelativeError(res.Estimate, res.Truth)
}

// populationAvgBudget returns the average normalized budget consumption over
// all device-epochs in the population — the batch engine's
// PopulationAvgBudget, computed from the same folded diagnostics.
func (s *Service) populationAvgBudget() float64 {
	denom := float64(s.meta.PopulationDevices) * float64(s.epochSpan()) * s.cfg.EpsilonG
	if denom == 0 {
		return 0
	}
	return s.run.TotalConsumed / denom
}

// epochSpan returns the number of epochs any query window can touch.
func (s *Service) epochSpan() int {
	return int(s.run.LastSpanEpoch-s.run.FirstSpanEpoch) + 1
}
