package stream_test

// Golden-output fixtures: the canonical SHA-256 digest of each figure
// workload's batch reference (every QueryResult field plus the post-run
// budget metrics — see workload.(*Run).CanonicalDigest) is committed under
// testdata/golden/. The digests pin the batch engine's output across
// refactors, and let the equivalence suite here and the crash-recovery
// harness (internal/checkpoint) verify against one shared reference instead
// of recomputing the batch run per test.
//
// Regenerate after an intentional output change with
//
//	go test ./internal/stream -run TestGolden -update

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/figures"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite testdata/golden/digests.json from the current batch engine")

// batchRef returns the per-process cached batch reference for one cataloged
// workload (figures.BatchRef).
func batchRef(t *testing.T, name string) *workload.Run {
	t.Helper()
	run, err := figures.BatchRef(name)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestGolden holds every figure workload's batch output to its committed
// digest (or rewrites the file under -update).
func TestGolden(t *testing.T) {
	digests := make(map[string]string)
	for _, w := range figures.All() {
		digests[w.Name] = batchRef(t, w.Name).CanonicalDigest()
	}

	if *update {
		goldenPath := filepath.Join("..", "..", "testdata", "golden", "digests.json")
		out, err := json.MarshalIndent(digests, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d digests", goldenPath, len(digests))
		return
	}

	goldenPath, err := figures.GoldenDigestsPath()
	if err != nil {
		t.Fatalf("locating golden digests (regenerate with -update): %v", err)
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden digests (regenerate with -update): %v", err)
	}
	var committed map[string]string
	if err := json.Unmarshal(raw, &committed); err != nil {
		t.Fatalf("decoding golden digests: %v", err)
	}
	for name, digest := range digests {
		want, ok := committed[name]
		if !ok {
			t.Errorf("%s: no committed digest (regenerate with -update)", name)
			continue
		}
		if digest != want {
			t.Errorf("%s: batch output digest %s, committed %s — the engine's "+
				"output changed; if intentional, regenerate with -update", name, digest, want)
		}
	}
	for name := range committed {
		if _, ok := digests[name]; !ok {
			t.Errorf("%s: committed digest for unknown workload (regenerate with -update)", name)
		}
	}
}
