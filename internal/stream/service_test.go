package stream

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/events"
)

// fakeSource yields a fixed event slice with fixed metadata.
type fakeSource struct {
	meta dataset.Meta
	evs  []events.Event
	next int
}

func (f *fakeSource) Meta() dataset.Meta { return f.meta }
func (f *fakeSource) Next() (events.Event, bool) {
	if f.next >= len(f.evs) {
		return events.Event{}, false
	}
	ev := f.evs[f.next]
	f.next++
	return ev, true
}

func testMeta() dataset.Meta {
	return dataset.Meta{
		Name:              "fake",
		PopulationDevices: 10,
		DurationDays:      30,
		Advertisers: []dataset.Advertiser{{
			Site:           "nike.example",
			Products:       []string{"product-0"},
			MaxValue:       10,
			AvgReportValue: 1,
			BatchSize:      2,
		}},
	}
}

func conv(id events.EventID, dev events.DeviceID, day int) events.Event {
	return events.Event{
		ID: id, Kind: events.KindConversion, Device: dev, Day: day,
		Advertiser: "nike.example", Product: "product-0", Value: 1,
	}
}

func TestServeEmptySource(t *testing.T) {
	svc, err := New(Config{Source: &fakeSource{meta: testMeta()}})
	if err != nil {
		t.Fatal(err)
	}
	run, err := svc.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) != 0 || run.EventsIngested != 0 {
		t.Fatalf("empty source produced %+v", run)
	}
}

func TestServeRejectsOutOfOrderSource(t *testing.T) {
	src := &fakeSource{meta: testMeta(), evs: []events.Event{
		conv(1, 1, 5), conv(2, 2, 3),
	}}
	svc, err := New(Config{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Serve(); err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("out-of-order source gave err = %v", err)
	}
}

func TestServeFiresBatchesOnFillDay(t *testing.T) {
	// Batch size 2: conversions on days 1, 4 fill a batch on day 4; the
	// next two on days 4, 9 fill on day 9; a trailing odd conversion
	// never fires.
	src := &fakeSource{meta: testMeta(), evs: []events.Event{
		conv(1, 1, 1), conv(2, 2, 4), conv(3, 3, 4), conv(4, 4, 9), conv(5, 5, 11),
	}}
	svc, err := New(Config{Source: src, FixedEpsilon: 1, EpsilonG: 100})
	if err != nil {
		t.Fatal(err)
	}
	run, err := svc.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d queries, want 2", len(run.Results))
	}
	if run.Results[0].FireDay != 4 || run.Results[1].FireDay != 9 {
		t.Fatalf("fire days = %d, %d; want 4, 9",
			run.Results[0].FireDay, run.Results[1].FireDay)
	}
	if run.Results[0].Index != 0 || run.Results[1].Index != 1 {
		t.Fatalf("indices = %d, %d", run.Results[0].Index, run.Results[1].Index)
	}
	if run.EventsIngested != 5 {
		t.Fatalf("ingested %d events, want 5", run.EventsIngested)
	}
}

func TestPlannerCapDropsPendingAndHorizonAdvances(t *testing.T) {
	// With MaxQueriesPerProduct = 1 the stream caps after its first
	// batch; later conversions must not accumulate or pin retention.
	src := &fakeSource{meta: testMeta(), evs: []events.Event{
		conv(1, 1, 0), conv(2, 2, 0), conv(3, 3, 1), conv(4, 4, 25),
		{ID: 5, Kind: events.KindImpression, Device: 1, Day: 29,
			Publisher: "pub.example", Advertiser: "nike.example", Campaign: "product-0"},
	}}
	svc, err := New(Config{Source: src, FixedEpsilon: 1, EpsilonG: 100,
		MaxQueriesPerProduct: 1, WindowDays: 7, EpochDays: 7})
	if err != nil {
		t.Fatal(err)
	}
	run, err := svc.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) != 1 {
		t.Fatalf("got %d queries, want 1", len(run.Results))
	}
	// By day 29 every epoch but the current one is out of window reach;
	// with no pending conversions left, the day-0 records must be gone.
	if run.EvictedRecords == 0 {
		t.Fatal("capped stream pinned the retention horizon: nothing evicted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := New(Config{Source: &fakeSource{meta: testMeta()}, Parallelism: -1}); err == nil {
		t.Fatal("negative parallelism accepted")
	}
	if _, err := New(Config{Source: &fakeSource{meta: testMeta()}, QueueSize: -1}); err == nil {
		t.Fatal("negative queue size accepted")
	}
	if _, err := New(Config{Source: &fakeSource{meta: testMeta()}, FixedEpsilon: -1}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}
