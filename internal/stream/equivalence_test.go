package stream_test

// The streaming-vs-batch equivalence suite: the batch engine
// (workload.Execute) is the specification, the streaming service is the
// online implementation, and the contract is bit-identical QueryResults —
// same estimates, same denial counts, same budget trajectories — for the
// same seed and scenario, at any parallelism and any queue size.

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/figures"
	"repro/internal/stream"
	"repro/internal/workload"
)

func smallMicro(t *testing.T, knob1, knob2 float64) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultMicroConfig()
	cfg.BatchSize = 100
	cfg.Knob1 = knob1
	cfg.Knob2 = knob2
	ds, err := dataset.Micro(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// figureConfig returns a cataloged figure workload's configuration.
func figureConfig(t *testing.T, name string) workload.Config {
	t.Helper()
	w, err := figures.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := w.Config()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// resultsIdentical compares QueryResult slices bit-for-bit (struct equality
// covers every field including the budget snapshot; the NaN RMSRE of
// unexecuted queries is normalized first).
func resultsIdentical(t *testing.T, label string, a, b []workload.QueryResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d results", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		nx, ny := math.IsNaN(x.RMSRE), math.IsNaN(y.RMSRE)
		if nx && ny {
			x.RMSRE, y.RMSRE = 0, 0
		}
		if x != y {
			t.Fatalf("%s: query %d differs:\n  batch:  %+v\n  stream: %+v", label, i, a[i], b[i])
		}
	}
}

// metricsIdentical compares every post-run budget metric the experiment
// harnesses read.
func metricsIdentical(t *testing.T, label string, batch, streamed *workload.Run) {
	t.Helper()
	bAvg, bMax := batch.BudgetStats()
	sAvg, sMax := streamed.BudgetStats()
	if bAvg != sAvg || bMax != sMax {
		t.Fatalf("%s: budget stats (%v, %v) != (%v, %v)", label, sAvg, sMax, bAvg, bMax)
	}
	if b, s := batch.PopulationAvgBudget(), streamed.PopulationAvgBudget(); b != s {
		t.Fatalf("%s: population avg budget %v != %v", label, s, b)
	}
	if b, s := batch.ExecutedFraction(), streamed.ExecutedFraction(); b != s {
		t.Fatalf("%s: executed fraction %v != %v", label, s, b)
	}
	if b, s := batch.RequestedDeviceEpochs(), streamed.RequestedDeviceEpochs(); b != s {
		t.Fatalf("%s: requested device-epochs %d != %d", label, s, b)
	}
	bp, sp := batch.PerPairAverages(), streamed.PerPairAverages()
	if len(bp) != len(sp) {
		t.Fatalf("%s: %d pair averages, want %d", label, len(sp), len(bp))
	}
	for i := range bp {
		if bp[i] != sp[i] {
			t.Fatalf("%s: pair average %d: %v != %v", label, i, sp[i], bp[i])
		}
	}
}

// TestStreamingBatchEquivalence is the tentpole's acceptance check: for
// every system (and with bias measurement and an ablation policy override),
// the streaming service must reproduce the batch engine's QueryResults
// bit-identically at parallelism 1, 4, and GOMAXPROCS. The batch reference
// comes from the shared per-binary cache (golden_test.go), whose digest is
// itself pinned by testdata/golden/.
func TestStreamingBatchEquivalence(t *testing.T) {
	for _, name := range []string{
		"cookie-monster", "ara-like", "ipa-like",
		"cm-bias", "ablation-policy", "capped-queries",
	} {
		t.Run(name, func(t *testing.T) {
			batch := batchRef(t, name)
			if len(batch.Results) == 0 {
				t.Fatal("batch run produced no queries")
			}
			for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				cfg := figureConfig(t, name)
				cfg.Parallelism = par
				streamed, err := workload.ExecuteStream(cfg)
				if err != nil {
					t.Fatal(err)
				}
				resultsIdentical(t, name, batch.Results, streamed.Results)
				metricsIdentical(t, name, batch, streamed)
			}
		})
	}
}

// TestStreamingEquivalenceCriteo covers the multi-advertiser case, where
// many queriers' batches fill on the same day and the service multiplexes
// them through one super-batch — the regime where a wrong canonical order or
// a device shared across queriers would diverge from the batch schedule.
func TestStreamingEquivalenceCriteo(t *testing.T) {
	for _, name := range []string{"criteo-cm", "criteo-ara", "criteo-ipa"} {
		batch := batchRef(t, name)
		if len(batch.Results) < 10 {
			t.Fatalf("criteo run produced only %d queries", len(batch.Results))
		}
		cfg := figureConfig(t, name)
		cfg.Parallelism = runtime.GOMAXPROCS(0)
		streamed, err := workload.ExecuteStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		resultsIdentical(t, name, batch.Results, streamed.Results)
		metricsIdentical(t, name, batch, streamed)
	}
}

// TestStreamingEquivalenceSyntheticSource runs the generator-backed source
// both ways: materialized through the batch engine (the cataloged
// "synthetic-cm" workload), and streamed directly from a fresh generator —
// the trace is never held in memory on the streaming side.
func TestStreamingEquivalenceSyntheticSource(t *testing.T) {
	cfg := dataset.DefaultSyntheticConfig()
	cfg.Population = 2000
	cfg.BatchSize = 200
	cfg.ImpressionsPerDay = 0.3
	newSource := func() dataset.Source {
		src, err := dataset.NewSynthetic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	batch := batchRef(t, "synthetic-cm")
	if len(batch.Results) == 0 {
		t.Fatal("no queries from synthetic source")
	}
	// The streaming side passes no Dataset at all: the scenario comes from
	// the source's metadata, and the Run's metrics must still work
	// (metricsIdentical reads the population- and advertiser-dependent
	// ones).
	scfg := figureConfig(t, "synthetic-cm")
	scfg.Dataset = nil
	streamed, err := workload.ExecuteSource(scfg, newSource())
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, "synthetic", batch.Results, streamed.Results)
	metricsIdentical(t, "synthetic", batch, streamed)
}

// serveRaw drives a stream.Service directly for service-level knobs the
// workload client does not expose (queue size, lean retention).
func serveRaw(t *testing.T, cfg stream.Config) *stream.Run {
	t.Helper()
	svc, err := stream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := svc.Serve()
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func streamResultsIdentical(t *testing.T, label string, a, b []stream.Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d results", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if math.IsNaN(x.RMSRE) && math.IsNaN(y.RMSRE) {
			x.RMSRE, y.RMSRE = 0, 0
		}
		if x != y {
			t.Fatalf("%s: query %d differs:\n  %+v\n  %+v", label, i, a[i], b[i])
		}
	}
}

// TestBackpressureInvariance pins the other half of the bounded-memory
// claim: a one-slot ingest queue throttles the producer to lockstep with
// the day clock yet changes nothing about the results.
func TestBackpressureInvariance(t *testing.T) {
	ds := smallMicro(t, 1.0, 0.5)
	base := stream.Config{Source: ds.Stream(), EpsilonG: 2, Seed: 7}
	wide := base
	wide.QueueSize = 4096
	narrow := base
	narrow.Source = ds.Stream()
	narrow.QueueSize = 1
	runWide := serveRaw(t, wide)
	runNarrow := serveRaw(t, narrow)
	streamResultsIdentical(t, "queue=1 vs queue=4096", runWide.Results, runNarrow.Results)
	if runNarrow.PeakQueue > 1 {
		t.Fatalf("one-slot queue reported peak depth %d", runNarrow.PeakQueue)
	}
	if runWide.EventsIngested != runNarrow.EventsIngested {
		t.Fatalf("ingest counts differ: %d vs %d", runWide.EventsIngested, runNarrow.EventsIngested)
	}
}

// TestLeanRetentionInvariance checks the long-running-service mode: device
// filters and event records below the horizon are reclaimed, the
// requested-epoch accounting is off — and the query results are still
// bit-identical.
func TestLeanRetentionInvariance(t *testing.T) {
	ds := smallMicro(t, 0.5, 0.5)
	full := stream.Config{Source: ds.Stream(), EpsilonG: 2, Seed: 7}
	lean := full
	lean.Source = ds.Stream()
	lean.Lean = true
	runFull := serveRaw(t, full)
	runLean := serveRaw(t, lean)
	streamResultsIdentical(t, "lean vs full", runFull.Results, runLean.Results)
	if runLean.Requested != nil {
		t.Fatal("lean run kept requested-epoch accounting")
	}
	if runLean.EvictedRecords == 0 {
		t.Fatal("lean run evicted no event records")
	}
	if runLean.ReleasedFilters == 0 {
		t.Fatal("lean run released no device filters")
	}
	if runLean.RetiredNonces == 0 {
		t.Fatal("lean run retired no nonces")
	}
	// Retention keeps resident state to the attribution window, so the
	// peak must sit well below the total record count ingested.
	totalRecords := ds.Build(7).NumRecords()
	if runLean.PeakResidentRecords >= totalRecords {
		t.Fatalf("peak resident records %d not below trace total %d",
			runLean.PeakResidentRecords, totalRecords)
	}
}
