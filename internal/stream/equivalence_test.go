package stream_test

// The streaming-vs-batch equivalence suite: the batch engine
// (workload.Execute) is the specification, the streaming service is the
// online implementation, and the contract is bit-identical QueryResults —
// same estimates, same denial counts, same budget trajectories — for the
// same seed and scenario, at any parallelism and any queue size.

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stream"
	"repro/internal/workload"
)

func smallMicro(t *testing.T, knob1, knob2 float64) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultMicroConfig()
	cfg.BatchSize = 100
	cfg.Knob1 = knob1
	cfg.Knob2 = knob2
	ds, err := dataset.Micro(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func smallCriteo(t *testing.T) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultCriteoConfig()
	cfg.Advertisers = 30
	cfg.Users = 3000
	cfg.TotalConversions = 12000
	cfg.MinBatch = 150
	ds, err := dataset.Criteo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// resultsIdentical compares QueryResult slices bit-for-bit (struct equality
// covers every field including the budget snapshot; the NaN RMSRE of
// unexecuted queries is normalized first).
func resultsIdentical(t *testing.T, label string, a, b []workload.QueryResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d results", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		nx, ny := math.IsNaN(x.RMSRE), math.IsNaN(y.RMSRE)
		if nx && ny {
			x.RMSRE, y.RMSRE = 0, 0
		}
		if x != y {
			t.Fatalf("%s: query %d differs:\n  batch:  %+v\n  stream: %+v", label, i, a[i], b[i])
		}
	}
}

// metricsIdentical compares every post-run budget metric the experiment
// harnesses read.
func metricsIdentical(t *testing.T, label string, batch, streamed *workload.Run) {
	t.Helper()
	bAvg, bMax := batch.BudgetStats()
	sAvg, sMax := streamed.BudgetStats()
	if bAvg != sAvg || bMax != sMax {
		t.Fatalf("%s: budget stats (%v, %v) != (%v, %v)", label, sAvg, sMax, bAvg, bMax)
	}
	if b, s := batch.PopulationAvgBudget(), streamed.PopulationAvgBudget(); b != s {
		t.Fatalf("%s: population avg budget %v != %v", label, s, b)
	}
	if b, s := batch.ExecutedFraction(), streamed.ExecutedFraction(); b != s {
		t.Fatalf("%s: executed fraction %v != %v", label, s, b)
	}
	if b, s := batch.RequestedDeviceEpochs(), streamed.RequestedDeviceEpochs(); b != s {
		t.Fatalf("%s: requested device-epochs %d != %d", label, s, b)
	}
	bp, sp := batch.PerPairAverages(), streamed.PerPairAverages()
	if len(bp) != len(sp) {
		t.Fatalf("%s: %d pair averages, want %d", label, len(sp), len(bp))
	}
	for i := range bp {
		if bp[i] != sp[i] {
			t.Fatalf("%s: pair average %d: %v != %v", label, i, sp[i], bp[i])
		}
	}
}

// TestStreamingBatchEquivalence is the tentpole's acceptance check: for
// every system (and with bias measurement and an ablation policy override),
// the streaming service must reproduce the batch engine's QueryResults
// bit-identically at parallelism 1, 4, and GOMAXPROCS.
func TestStreamingBatchEquivalence(t *testing.T) {
	ds := smallMicro(t, 1.0, 0.5)
	biasSpec := &core.BiasSpec{LastTouch: true}
	cases := []struct {
		name string
		cfg  workload.Config
	}{
		{"cookie-monster", workload.Config{Dataset: ds, System: workload.CookieMonster, EpsilonG: 2, Seed: 7}},
		{"ara-like", workload.Config{Dataset: ds, System: workload.ARALike, EpsilonG: 2, Seed: 7}},
		{"ipa-like", workload.Config{Dataset: ds, System: workload.IPALike, EpsilonG: 2, Seed: 7}},
		{"cm-bias", workload.Config{Dataset: ds, System: workload.CookieMonster, EpsilonG: 2, Seed: 7, Bias: biasSpec}},
		{"ablation-policy", workload.Config{Dataset: ds, System: workload.CookieMonster, EpsilonG: 2, Seed: 7,
			PolicyOverride: core.ZeroLossOnlyPolicy{}}},
		{"capped-queries", workload.Config{Dataset: ds, System: workload.CookieMonster, EpsilonG: 2, Seed: 7,
			MaxQueriesPerProduct: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := tc.cfg
			seq.Parallelism = 1
			batch, err := workload.Execute(seq)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch.Results) == 0 {
				t.Fatal("batch run produced no queries")
			}
			for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				cfg := tc.cfg
				cfg.Parallelism = par
				streamed, err := workload.ExecuteStream(cfg)
				if err != nil {
					t.Fatal(err)
				}
				label := tc.name
				resultsIdentical(t, label, batch.Results, streamed.Results)
				metricsIdentical(t, label, batch, streamed)
			}
		})
	}
}

// TestStreamingEquivalenceCriteo covers the multi-advertiser case, where
// many queriers' batches fill on the same day and the service multiplexes
// them through one super-batch — the regime where a wrong canonical order or
// a device shared across queriers would diverge from the batch schedule.
func TestStreamingEquivalenceCriteo(t *testing.T) {
	ds := smallCriteo(t)
	for _, system := range workload.Systems {
		cfg := workload.Config{Dataset: ds, System: system, EpsilonG: 2, Seed: 11}
		batch, err := workload.Execute(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch.Results) < 10 {
			t.Fatalf("criteo run produced only %d queries", len(batch.Results))
		}
		cfg.Parallelism = runtime.GOMAXPROCS(0)
		streamed, err := workload.ExecuteStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		resultsIdentical(t, system.String(), batch.Results, streamed.Results)
		metricsIdentical(t, system.String(), batch, streamed)
	}
}

// TestStreamingEquivalenceSyntheticSource runs the generator-backed source
// both ways: materialized through the batch engine, and streamed directly —
// the trace is never held in memory on the streaming side.
func TestStreamingEquivalenceSyntheticSource(t *testing.T) {
	cfg := dataset.DefaultSyntheticConfig()
	cfg.Population = 2000
	cfg.BatchSize = 200
	cfg.ImpressionsPerDay = 0.3
	newSource := func() dataset.Source {
		src, err := dataset.NewSynthetic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	wcfg := workload.Config{Dataset: dataset.Materialize(newSource()), System: workload.CookieMonster,
		EpsilonG: 2, Seed: 3}
	batch, err := workload.Execute(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) == 0 {
		t.Fatal("no queries from synthetic source")
	}
	// The streaming side passes no Dataset at all: the scenario comes from
	// the source's metadata, and the Run's metrics must still work
	// (metricsIdentical reads the population- and advertiser-dependent
	// ones).
	scfg := wcfg
	scfg.Dataset = nil
	streamed, err := workload.ExecuteSource(scfg, newSource())
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, "synthetic", batch.Results, streamed.Results)
	metricsIdentical(t, "synthetic", batch, streamed)
}

// serveRaw drives a stream.Service directly for service-level knobs the
// workload client does not expose (queue size, lean retention).
func serveRaw(t *testing.T, cfg stream.Config) *stream.Run {
	t.Helper()
	svc, err := stream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := svc.Serve()
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func streamResultsIdentical(t *testing.T, label string, a, b []stream.Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d results", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if math.IsNaN(x.RMSRE) && math.IsNaN(y.RMSRE) {
			x.RMSRE, y.RMSRE = 0, 0
		}
		if x != y {
			t.Fatalf("%s: query %d differs:\n  %+v\n  %+v", label, i, a[i], b[i])
		}
	}
}

// TestBackpressureInvariance pins the other half of the bounded-memory
// claim: a one-slot ingest queue throttles the producer to lockstep with
// the day clock yet changes nothing about the results.
func TestBackpressureInvariance(t *testing.T) {
	ds := smallMicro(t, 1.0, 0.5)
	base := stream.Config{Source: ds.Stream(), EpsilonG: 2, Seed: 7}
	wide := base
	wide.QueueSize = 4096
	narrow := base
	narrow.Source = ds.Stream()
	narrow.QueueSize = 1
	runWide := serveRaw(t, wide)
	runNarrow := serveRaw(t, narrow)
	streamResultsIdentical(t, "queue=1 vs queue=4096", runWide.Results, runNarrow.Results)
	if runNarrow.PeakQueue > 1 {
		t.Fatalf("one-slot queue reported peak depth %d", runNarrow.PeakQueue)
	}
	if runWide.EventsIngested != runNarrow.EventsIngested {
		t.Fatalf("ingest counts differ: %d vs %d", runWide.EventsIngested, runNarrow.EventsIngested)
	}
}

// TestLeanRetentionInvariance checks the long-running-service mode: device
// filters and event records below the horizon are reclaimed, the
// requested-epoch accounting is off — and the query results are still
// bit-identical.
func TestLeanRetentionInvariance(t *testing.T) {
	ds := smallMicro(t, 0.5, 0.5)
	full := stream.Config{Source: ds.Stream(), EpsilonG: 2, Seed: 7}
	lean := full
	lean.Source = ds.Stream()
	lean.Lean = true
	runFull := serveRaw(t, full)
	runLean := serveRaw(t, lean)
	streamResultsIdentical(t, "lean vs full", runFull.Results, runLean.Results)
	if runLean.Requested != nil {
		t.Fatal("lean run kept requested-epoch accounting")
	}
	if runLean.EvictedRecords == 0 {
		t.Fatal("lean run evicted no event records")
	}
	if runLean.ReleasedFilters == 0 {
		t.Fatal("lean run released no device filters")
	}
	if runLean.RetiredNonces == 0 {
		t.Fatal("lean run retired no nonces")
	}
	// Retention keeps resident state to the attribution window, so the
	// peak must sit well below the total record count ingested.
	totalRecords := ds.Build(7).NumRecords()
	if runLean.PeakResidentRecords >= totalRecords {
		t.Fatalf("peak resident records %d not below trace total %d",
			runLean.PeakResidentRecords, totalRecords)
	}
}
