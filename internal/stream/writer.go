package stream

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/checkpoint"
)

// The background snapshot writer takes serialization and fsync off the
// ingest thread. The day clock captures state synchronously (cheap — a delta
// touches only what changed) and hands the capture here; JSON encoding, the
// staged write, the fsync, chain compaction, and generation GC all happen on
// this goroutine while ingest continues. At most one job is ever in flight:
// the day clock harvests the previous result before enqueueing the next
// capture, so commits overlap ingest, never each other, and the chain's
// parent fingerprints stay sequential.

// snapJob is one captured snapshot handed to the background writer.
type snapJob struct {
	gen      uint64
	parentFP uint32
	base     bool // write a fresh full base (full mode) instead of a delta
	snap     *snapState
}

// snapResult reports one job's durable commit.
type snapResult struct {
	gen   uint64
	fp    uint32
	bytes int
	base  bool
	// compacted marks that the delta tripped a base compaction: the chain
	// was folded into a fresh base of compactBytes and superseded
	// generations collected.
	compacted    bool
	compactBytes int
	err          error
}

// snapWriter owns the writer goroutine and its single-slot channels.
type snapWriter struct {
	store     *checkpoint.Store
	baseEvery int
	keep      int

	jobs    chan snapJob
	results chan snapResult
	wg      sync.WaitGroup

	deltasSince int // deltas committed since the last base, writer-owned
}

func newSnapWriter(store *checkpoint.Store, baseEvery, keep int) *snapWriter {
	w := &snapWriter{
		store:     store,
		baseEvery: baseEvery,
		keep:      keep,
		jobs:      make(chan snapJob, 1),
		results:   make(chan snapResult, 1),
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for job := range w.jobs {
			w.results <- w.commit(job)
		}
	}()
	return w
}

// enqueue hands one capture to the writer. The caller must have harvested
// the previous result first; with the single-slot channel the send never
// blocks under that protocol.
func (w *snapWriter) enqueue(job snapJob) { w.jobs <- job }

// close stops the writer goroutine. The caller must have harvested or
// drained any in-flight result first.
func (w *snapWriter) close() {
	close(w.jobs)
	w.wg.Wait()
}

// commit serializes and durably writes one generation, compacting the chain
// into a fresh base every baseEvery deltas.
func (w *snapWriter) commit(job snapJob) snapResult {
	res := snapResult{gen: job.gen, base: job.base}
	payload, err := json.Marshal(job.snap)
	if err != nil {
		res.err = fmt.Errorf("stream: encoding snapshot: %w", err)
		return res
	}
	res.bytes = len(payload)
	if job.base {
		fp, err := w.store.WriteBase(job.gen, payload)
		if err != nil {
			res.err = err
			return res
		}
		res.fp = fp
		w.deltasSince = 0
		res.err = w.store.GC(w.keep)
		return res
	}
	fp, err := w.store.WriteDelta(job.gen, job.parentFP, payload)
	if err != nil {
		res.err = err
		return res
	}
	res.fp = fp
	w.deltasSince++
	if w.baseEvery > 0 && w.deltasSince >= w.baseEvery {
		res.err = w.compact(&res)
	}
	return res
}

// compact folds the newest intact chain (which includes the delta just
// written) into a base carrying the head's generation and fingerprint, so
// later deltas chain onto either representation, then collects superseded
// generations. Failure is reported as a crash, never as corrupt state: the
// chain the fold read stays intact on disk.
func (w *snapWriter) compact(res *snapResult) error {
	chain, _, err := w.store.LoadChain()
	if err != nil {
		return err
	}
	if chain == nil {
		return fmt.Errorf("stream: base compaction found no intact chain")
	}
	folded, err := foldChain(chain.Payloads)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(folded)
	if err != nil {
		return fmt.Errorf("stream: encoding compacted base: %w", err)
	}
	if err := w.store.WriteBaseLinked(chain.Gen, chain.FP, payload); err != nil {
		return err
	}
	w.deltasSince = 0
	res.compacted = true
	res.compactBytes = len(payload)
	return w.store.GC(w.keep)
}
