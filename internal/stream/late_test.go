package stream

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/events"
)

// lateEvents is a delivery order that exercises every admission boundary:
//
//	#1 day-5 conversion, clock at day 0→5                → accepted
//	#2 day-5 conversion, clock at day 5 (exact day-close) → accepted
//	#3 day-6 conversion, advances the clock               → accepted
//	#4 day-5 conversion after day 6 opened (one day late) → late
//	#5 day-0 conversion at day 6 (epoch long behind)      → late
//	#6 day-6 conversion, clock still at day 6             → accepted
func lateEvents() []events.Event {
	return []events.Event{
		conv(1, 1, 5),
		conv(2, 2, 5),
		conv(3, 3, 6),
		conv(4, 4, 5),
		conv(5, 5, 0),
		conv(6, 6, 6),
	}
}

func serveLate(t *testing.T, cfg Config) *Run {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := svc.Serve()
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestLateRejectIsDefaultAndAborts(t *testing.T) {
	src := &fakeSource{meta: testMeta(), evs: lateEvents()}
	svc, err := New(Config{Source: src, FixedEpsilon: 1, EpsilonG: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Serve(); err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("late event under LateReject gave err = %v", err)
	}
}

func TestLateDropBoundaries(t *testing.T) {
	evs := lateEvents()
	run := serveLate(t, Config{Source: &fakeSource{meta: testMeta(), evs: evs},
		FixedEpsilon: 1, EpsilonG: 100, LatePolicy: LateDrop})

	if run.EventsIngested != 6 || run.EventsDropped != 2 {
		t.Fatalf("drained %d dropped %d, want 6/2", run.EventsIngested, run.EventsDropped)
	}

	// The dropped events must leave no trace: the run must be identical to
	// one that was never sent the late events at all. (Batch size 2: the
	// two day-5 conversions fire on day 5, the two day-6 ones on day 6; a
	// wrongly admitted late event would join — and change — a batch.)
	accepted := []events.Event{evs[0], evs[1], evs[2], evs[5]}
	ref := serveLate(t, Config{Source: &fakeSource{meta: testMeta(), evs: accepted},
		FixedEpsilon: 1, EpsilonG: 100})
	if len(run.Results) != 2 {
		t.Fatalf("got %d queries, want 2", len(run.Results))
	}
	if !reflect.DeepEqual(run.Results, ref.Results) {
		t.Fatalf("drop run diverged from accepted-only run:\n%+v\n%+v", run.Results, ref.Results)
	}
}

func TestLateDropCountersSurviveCrashResume(t *testing.T) {
	// Uninterrupted reference under the drop policy.
	want := serveLate(t, Config{Source: &fakeSource{meta: testMeta(), evs: lateEvents()},
		FixedEpsilon: 1, EpsilonG: 100, LatePolicy: LateDrop})

	// Crash right after the 5th drained event — the day-0 drop — so both
	// the snapshot-visible and WAL-replayed parts of the run contain drops.
	dir := t.TempDir()
	boom := errors.New("boom")
	n := 0
	cfg := Config{
		Source:       &fakeSource{meta: testMeta(), evs: lateEvents()},
		FixedEpsilon: 1, EpsilonG: 100, LatePolicy: LateDrop,
		CheckpointDir: dir, SnapshotEveryDays: 2,
		FaultHook: func(p FaultPoint) error {
			if p == PointEventIngested {
				if n++; n == 5 {
					return boom
				}
			}
			return nil
		},
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Serve(); !errors.Is(err, boom) {
		t.Fatalf("crash run gave err = %v", err)
	}

	rcfg := cfg
	rcfg.Source = &fakeSource{meta: testMeta(), evs: lateEvents()}
	rcfg.FaultHook = nil
	svc, err = ResumeFrom(rcfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	run, err := svc.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if run.EventsIngested != want.EventsIngested || run.EventsDropped != want.EventsDropped {
		t.Fatalf("resumed counters %d/%d, want %d/%d",
			run.EventsIngested, run.EventsDropped, want.EventsIngested, want.EventsDropped)
	}
	if !reflect.DeepEqual(run.Results, want.Results) {
		t.Fatalf("resumed run diverged:\n%+v\n%+v", run.Results, want.Results)
	}
}

func TestLatePolicyMismatchRefusesResume(t *testing.T) {
	// LatePolicy is part of the checkpoint's scenario fingerprint: a
	// directory written under LateDrop must not resume under LateReject —
	// the replayed WAL contains events the reject policy would abort on.
	dir := t.TempDir()
	cfg := Config{Source: &fakeSource{meta: testMeta(), evs: lateEvents()},
		FixedEpsilon: 1, EpsilonG: 100, LatePolicy: LateDrop,
		CheckpointDir: dir, SnapshotEveryDays: 2}
	serveLate(t, cfg)

	rcfg := cfg
	rcfg.Source = &fakeSource{meta: testMeta(), evs: lateEvents()}
	rcfg.LatePolicy = LateReject
	if _, err := ResumeFrom(rcfg, dir); err == nil {
		t.Fatal("resume with mismatched LatePolicy accepted")
	}
}
