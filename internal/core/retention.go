package core

import "repro/internal/events"

// Epoch retention: browsers do not keep impression data forever — ARA-style
// APIs expire events after a retention window, and the paper's per-epoch
// budget slots only matter while their epoch can still appear in an
// attribution window. A device can therefore evict old epochs' slots — but
// *only* by also refusing all future access to those epochs: recycling a
// slot and later recharging it fresh would silently refund consumed budget.
//
// SetEpochFloor implements the sound version of this: epochs strictly below
// the floor become permanently out of scope. Report generation treats them
// as empty (∅, the same null contribution an exhausted slot produces, so
// the report shape still leaks nothing), no budget is ever charged for them
// again, and their ledger slots are recycled (an O(1) lane re-slice per
// querier — see privacy.Ledger.AdvanceFloor).

// SetEpochFloor advances the device's retention floor and recycles the
// slots of evicted epochs. The floor never moves backwards; calls with a
// lower value are no-ops. It returns the number of initialized slots
// released.
func (d *Device) SetEpochFloor(floor events.Epoch) int {
	return d.ledger.AdvanceFloor(int64(floor))
}

// EpochFloor returns the current retention floor (epochs below it are
// permanently inaccessible).
func (d *Device) EpochFloor() events.Epoch {
	return events.Epoch(d.ledger.Floor())
}
