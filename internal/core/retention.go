package core

import "repro/internal/events"

// Epoch retention: browsers do not keep impression data forever — ARA-style
// APIs expire events after a retention window, and the paper's per-epoch
// filters only matter while their epoch can still appear in an attribution
// window. A device can therefore evict old epochs' filters — but *only* by
// also refusing all future access to those epochs: dropping a filter and
// later recreating it fresh would silently refund consumed budget.
//
// SetEpochFloor implements the sound version of this: epochs strictly below
// the floor become permanently out of scope. Report generation treats them
// as empty (∅, the same null contribution an exhausted filter produces, so
// the report shape still leaks nothing), no budget is ever charged for them
// again, and their filters are released.

// SetEpochFloor advances the device's retention floor and releases the
// filters of evicted epochs. The floor never moves backwards; calls with a
// lower value are no-ops. It returns the number of filters released.
func (d *Device) SetEpochFloor(floor events.Epoch) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if floor <= d.epochFloor {
		return 0
	}
	d.epochFloor = floor
	released := 0
	for _, byEpoch := range d.budgets {
		for e := range byEpoch {
			if e < floor {
				delete(byEpoch, e)
				released++
			}
		}
	}
	return released
}

// EpochFloor returns the current retention floor (epochs below it are
// permanently inaccessible).
func (d *Device) EpochFloor() events.Epoch {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epochFloor
}
