package core

import (
	"sync"
	"testing"

	"repro/internal/attribution"
	"repro/internal/events"
	"repro/internal/privacy"
)

func testFleet(shards int) *Fleet {
	db := events.NewDatabase()
	db.Freeze()
	return NewFleet(shards, func(id events.DeviceID) *Device {
		return NewDevice(id, db, 1, CookieMonsterPolicy{})
	})
}

func TestFleetShardCountRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {100, 128}} {
		f := testFleet(tc.in)
		if len(f.shards) != tc.want {
			t.Fatalf("shards(%d) = %d, want %d", tc.in, len(f.shards), tc.want)
		}
	}
	if f := testFleet(0); len(f.shards) == 0 || len(f.shards)&(len(f.shards)-1) != 0 {
		t.Fatalf("default shard count %d not a power of two", len(f.shards))
	}
}

func TestFleetGetOrCreateIsStable(t *testing.T) {
	f := testFleet(8)
	if f.Get(7) != nil {
		t.Fatal("Get invented a device")
	}
	d := f.GetOrCreate(7)
	if d == nil || d.ID() != 7 {
		t.Fatalf("GetOrCreate(7) = %v", d)
	}
	if f.GetOrCreate(7) != d || f.Get(7) != d {
		t.Fatal("second lookup returned a different device")
	}
	if f.Len() != 1 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestFleetDevicesSortedAndRangeOrder(t *testing.T) {
	f := testFleet(4)
	for _, id := range []events.DeviceID{42, 3, 17, 99, 1} {
		f.GetOrCreate(id)
	}
	ids := f.Devices()
	want := []events.DeviceID{1, 3, 17, 42, 99}
	if len(ids) != len(want) {
		t.Fatalf("Devices = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Devices = %v, want %v", ids, want)
		}
	}
	var seen []events.DeviceID
	f.Range(func(d *Device) bool {
		seen = append(seen, d.ID())
		return len(seen) < 3
	})
	if len(seen) != 3 || seen[0] != 1 || seen[1] != 3 || seen[2] != 17 {
		t.Fatalf("Range visited %v", seen)
	}
}

// TestFleetConcurrentGetOrCreate hammers one fleet from many goroutines;
// under -race this covers the sharded registry's locking, and the identity
// checks prove no ID was ever created twice.
func TestFleetConcurrentGetOrCreate(t *testing.T) {
	f := testFleet(0)
	const workers = 16
	const devices = 200
	first := make([][]*Device, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]*Device, devices)
			for i := 0; i < devices; i++ {
				mine[i] = f.GetOrCreate(events.DeviceID(i))
			}
			first[w] = mine
		}(w)
	}
	wg.Wait()
	if f.Len() != devices {
		t.Fatalf("Len = %d, want %d", f.Len(), devices)
	}
	for w := 1; w < workers; w++ {
		for i := 0; i < devices; i++ {
			if first[w][i] != first[0][i] {
				t.Fatalf("worker %d saw a different device %d", w, i)
			}
		}
	}
}

// TestFleetConcurrentReportsAndReads generates reports on many devices while
// other goroutines read Consumed and ConsumedAt — the -race coverage for the
// Device.Consumed locking fix and the fleet read path.
func TestFleetConcurrentReportsAndReads(t *testing.T) {
	db := events.NewDatabase()
	const site = events.Site("nike.example")
	for i := 0; i < 64; i++ {
		db.Record(0, events.Event{
			ID: events.EventID(i + 1), Kind: events.KindImpression,
			Device: events.DeviceID(i % 8), Day: 1,
			Advertiser: site, Campaign: "product-0",
		})
	}
	db.Freeze()
	f := NewFleet(4, func(id events.DeviceID) *Device {
		return NewDevice(id, db, 100, CookieMonsterPolicy{})
	})
	req := &Request{
		Querier:    site,
		FirstEpoch: 0, LastEpoch: 3,
		Selector:          events.ProductSelector{Advertiser: site, Product: "product-0"},
		Function:          attribution.ScalarValue{Value: 1},
		Epsilon:           0.01,
		ReportSensitivity: 1,
		QuerySensitivity:  1,
		PNorm:             1,
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				dev := events.DeviceID((w + i) % 8)
				if w%2 == 0 {
					if _, _, err := f.GetOrCreate(dev).GenerateReport(req); err != nil {
						t.Error(err)
						return
					}
				} else {
					f.ConsumedAt(dev, site, 0)
					if d := f.Get(dev); d != nil {
						d.ConsumedByQuerier()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0.0
	f.Range(func(d *Device) bool {
		total += d.ConsumedByQuerier()[site]
		return true
	})
	if total <= 0 {
		t.Fatal("no budget consumed across the fleet")
	}
}

func TestFleetAdvanceEpochFloor(t *testing.T) {
	f := testFleet(4)
	const q = events.Site("nike.example")
	// Touch budget slots on epochs 0..4 of three devices.
	for dev := events.DeviceID(1); dev <= 3; dev++ {
		d := f.GetOrCreate(dev)
		for e := events.Epoch(0); e < 5; e++ {
			if out := d.testCharge(q, e, 0.1); out != privacy.ChargeOK {
				t.Fatalf("pre-charge rejected: %v", out)
			}
		}
	}

	// Advancing to epoch 2 releases epochs 0 and 1 on every device.
	if released := f.AdvanceEpochFloor(2); released != 6 {
		t.Fatalf("released %d filters, want 6", released)
	}
	if f.EpochFloor() != 2 {
		t.Fatalf("fleet floor = %d, want 2", f.EpochFloor())
	}
	for dev := events.DeviceID(1); dev <= 3; dev++ {
		if got := f.ConsumedAt(dev, q, 1); got != 0 {
			t.Fatalf("device %d epoch 1 consumed = %v after eviction", dev, got)
		}
		if got := f.ConsumedAt(dev, q, 3); got != 0.1 {
			t.Fatalf("device %d epoch 3 consumed = %v, want 0.1", dev, got)
		}
	}

	// The floor never moves backwards.
	if released := f.AdvanceEpochFloor(1); released != 0 {
		t.Fatalf("backwards advance released %d filters", released)
	}
	if f.EpochFloor() != 2 {
		t.Fatalf("fleet floor moved backwards to %d", f.EpochFloor())
	}

	// Devices created after the advance inherit the floor: evicted epochs
	// are permanently out of scope for them too.
	late := f.GetOrCreate(9)
	if late.EpochFloor() != 2 {
		t.Fatalf("late device floor = %d, want 2", late.EpochFloor())
	}
}

func TestFleetAdvanceEpochFloorConcurrentRatchet(t *testing.T) {
	f := testFleet(4)
	f.GetOrCreate(1)
	var wg sync.WaitGroup
	// Racing advances with different floors: the floor must end at the
	// maximum, never regress to a later-arriving lower value.
	for _, floor := range []events.Epoch{3, 9, 5, 7, 1} {
		wg.Add(1)
		go func(e events.Epoch) {
			defer wg.Done()
			f.AdvanceEpochFloor(e)
		}(floor)
	}
	wg.Wait()
	if got := f.EpochFloor(); got != 9 {
		t.Fatalf("fleet floor = %d after concurrent advances, want 9", got)
	}
}
