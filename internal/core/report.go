package core

import (
	"slices"
	"sync/atomic"

	"repro/internal/attribution"
	"repro/internal/events"
)

// Nonce is the unique report identifier r: the device generates it at report
// time and the aggregation service tracks it to guarantee each report is
// consumed at most once (sensitivity control, §2.2).
type Nonce uint64

var nonceCounter atomic.Uint64

// newNonce mints a process-unique nonce. A deployment would use a random
// 128-bit value; uniqueness is the only property the protocol needs.
func newNonce() Nonce { return Nonce(nonceCounter.Add(1)) }

// Report is the attribution report ρ a device returns for a conversion. In a
// deployment the histogram and bias flag are secret-shared/encrypted toward
// the MPC/TEE with (Nonce, Epsilon, QuerySensitivity) as authenticated data;
// the simulator carries them in the clear but the aggregation service is the
// only component that reads the payload.
type Report struct {
	// Nonce uniquely identifies the report for replay protection.
	Nonce Nonce
	// Querier is the site the report is destined for.
	Querier events.Site
	// Device records the generating device (used only by simulator
	// metrics; a deployment does not transmit it).
	Device events.DeviceID
	// Histogram is the clipped, padded attribution output.
	Histogram attribution.Histogram
	// BiasFlag is the κ-scaled side-query coordinate (0 when bias
	// measurement is disabled or the report cannot be biased).
	BiasFlag float64
	// Epsilon echoes the requested ε as authenticated data; the
	// aggregation service enforces exactly this parameter.
	Epsilon float64
	// QuerySensitivity echoes the query global sensitivity as
	// authenticated data for noise scaling.
	QuerySensitivity float64
}

// Diagnostics is simulator-side instrumentation emitted next to each report.
// None of it is visible to queriers (budget states must stay hidden under
// IDP); experiments use it to compute ground truth and budget metrics.
type Diagnostics struct {
	// TrueHistogram is the attribution output had no epoch been denied —
	// the contribution to the unbiased Q(D) that RMSRE is measured
	// against.
	TrueHistogram attribution.Histogram
	// PerEpochLoss maps each window epoch to the privacy loss actually
	// consumed from it (0 for zero-loss and denied epochs).
	PerEpochLoss map[events.Epoch]float64
	// DeniedEpochs lists epochs whose filter rejected the loss; their
	// events were dropped from attribution.
	DeniedEpochs []events.Epoch
	// RelevantPerEpoch counts relevant events found per window epoch
	// (pre-denial).
	RelevantPerEpoch map[events.Epoch]int
	// Biased reports whether the generated report differs from the true
	// one because of denied epochs.
	Biased bool
}

// TotalLoss sums the privacy loss consumed across window epochs. Epochs are
// summed in ascending order so the float result is bit-identical run-to-run
// (the workload's budget totals are built from these sums, and map iteration
// order would perturb the low bits).
func (d *Diagnostics) TotalLoss() float64 {
	epochs := make([]events.Epoch, 0, len(d.PerEpochLoss))
	for e := range d.PerEpochLoss {
		epochs = append(epochs, e)
	}
	slices.Sort(epochs)
	sum := 0.0
	for _, e := range epochs {
		sum += d.PerEpochLoss[e]
	}
	return sum
}
