package core

import (
	"sync/atomic"

	"repro/internal/attribution"
	"repro/internal/events"
)

// Nonce is the unique report identifier r: the device generates it at report
// time and the aggregation service tracks it to guarantee each report is
// consumed at most once (sensitivity control, §2.2).
type Nonce uint64

var nonceCounter atomic.Uint64

// newNonce mints a process-unique nonce. A deployment would use a random
// 128-bit value; uniqueness is the only property the protocol needs.
func newNonce() Nonce { return Nonce(nonceCounter.Add(1)) }

// newNonceBlock reserves n consecutive nonces with a single atomic add and
// returns the first — the batched generate stage's per-device draw, one
// counter operation for a whole device's reports instead of one per report.
// Uniqueness and monotonicity (the NonceFloor contract) hold exactly as for
// newNonce; nothing downstream depends on nonce values beyond that.
func newNonceBlock(n int) Nonce {
	return Nonce(nonceCounter.Add(uint64(n))-uint64(n)) + 1
}

// NonceFloor returns the highest nonce minted so far — the high-water mark a
// crash-safe service records so that a restarted process never re-mints a
// nonce the aggregation service has already consumed or retired.
func NonceFloor() Nonce { return Nonce(nonceCounter.Load()) }

// EnsureNonceFloor ratchets the nonce counter up to at least floor, so every
// nonce minted from now on is strictly greater. It never lowers the counter
// (which could re-mint a consumed nonce); a CAS loop keeps concurrent
// ratchets monotone.
func EnsureNonceFloor(floor Nonce) {
	for {
		cur := nonceCounter.Load()
		if cur >= uint64(floor) {
			return
		}
		if nonceCounter.CompareAndSwap(cur, uint64(floor)) {
			return
		}
	}
}

// Report is the attribution report ρ a device returns for a conversion. In a
// deployment the histogram and bias flag are secret-shared/encrypted toward
// the MPC/TEE with (Nonce, Epsilon, QuerySensitivity) as authenticated data;
// the simulator carries them in the clear but the aggregation service is the
// only component that reads the payload.
type Report struct {
	// Nonce uniquely identifies the report for replay protection.
	Nonce Nonce
	// Querier is the site the report is destined for.
	Querier events.Site
	// Device records the generating device (used only by simulator
	// metrics; a deployment does not transmit it).
	Device events.DeviceID
	// Histogram is the clipped, padded attribution output.
	Histogram attribution.Histogram
	// BiasFlag is the κ-scaled side-query coordinate (0 when bias
	// measurement is disabled or the report cannot be biased).
	BiasFlag float64
	// Epsilon echoes the requested ε as authenticated data; the
	// aggregation service enforces exactly this parameter.
	Epsilon float64
	// QuerySensitivity echoes the query global sensitivity as
	// authenticated data for noise scaling.
	QuerySensitivity float64
}

// Diagnostics is simulator-side instrumentation emitted next to each report.
// None of it is visible to queriers (budget states must stay hidden under
// IDP); experiments use it to compute ground truth and budget metrics.
// Per-epoch series are window-indexed slices (slot i is epoch FirstEpoch+i)
// rather than maps, so building them costs two allocations instead of one
// map insert per epoch; use LossAt/RelevantAt for epoch-keyed reads.
type Diagnostics struct {
	// FirstEpoch anchors the window-indexed slices below.
	FirstEpoch events.Epoch
	// TrueHistogram is the attribution output had no epoch been denied —
	// the contribution to the unbiased Q(D) that RMSRE is measured
	// against.
	TrueHistogram attribution.Histogram
	// PerEpochLoss[i] is the privacy loss actually consumed from epoch
	// FirstEpoch+i (0 for zero-loss, denied, and evicted epochs).
	PerEpochLoss []float64
	// DeniedEpochs lists epochs whose budget slot rejected the loss; their
	// events were dropped from attribution.
	DeniedEpochs []events.Epoch
	// RelevantPerEpoch[i] counts relevant events found at epoch
	// FirstEpoch+i (pre-denial).
	RelevantPerEpoch []int
	// Biased reports whether the generated report differs from the true
	// one because of denied epochs.
	Biased bool
}

// LossAt returns the privacy loss consumed from epoch e (0 outside the
// window).
func (d *Diagnostics) LossAt(e events.Epoch) float64 {
	i := int(e - d.FirstEpoch)
	if i < 0 || i >= len(d.PerEpochLoss) {
		return 0
	}
	return d.PerEpochLoss[i]
}

// RelevantAt returns the relevant-event count of epoch e (0 outside the
// window).
func (d *Diagnostics) RelevantAt(e events.Epoch) int {
	i := int(e - d.FirstEpoch)
	if i < 0 || i >= len(d.RelevantPerEpoch) {
		return 0
	}
	return d.RelevantPerEpoch[i]
}

// TotalLoss sums the privacy loss consumed across window epochs, in
// ascending epoch order so the float result is bit-identical run-to-run.
func (d *Diagnostics) TotalLoss() float64 {
	sum := 0.0
	for _, l := range d.PerEpochLoss {
		sum += l
	}
	return sum
}

// ReportStats is the fold-ready scalar summary GenerateReportScratch emits
// in place of a full Diagnostics: exactly the per-conversion values the
// batch and streaming aggregate stages fold, with no retained allocations.
// Every field is derived from the same intermediate state as the
// Diagnostics equivalent, in the same order, so folds over either are
// bit-identical.
type ReportStats struct {
	// TruthTotal is Diagnostics.TrueHistogram.Total(): the conversion's
	// contribution to the unbiased Q(D).
	TruthTotal float64
	// TotalLoss is Diagnostics.TotalLoss(): privacy loss consumed across
	// the window, accumulated in ascending epoch order.
	TotalLoss float64
	// Denied reports whether any window epoch's charge was rejected
	// (len(Diagnostics.DeniedEpochs) > 0).
	Denied bool
	// Biased mirrors Diagnostics.Biased.
	Biased bool
}
