package core

import (
	"slices"
	"sort"
	"sync"

	"repro/internal/events"
	"repro/internal/privacy"
)

// Device is the on-device Cookie Monster engine for a single device d: it
// owns the device's view of the events database, a table of privacy filters
// — one per (querier, epoch) pair, each with capacity ε^G_d — and the report
// generation algorithm of Listing 1. All methods are safe for concurrent
// use; the budget check-and-consume per epoch is atomic.
type Device struct {
	id       events.DeviceID
	db       *events.Database
	capacity float64
	policy   LossPolicy

	mu         sync.Mutex
	budgets    map[events.Site]map[events.Epoch]*privacy.Filter
	epochFloor events.Epoch
}

// NewDevice returns a device engine with per-epoch, per-querier budget
// capacity epsG, charging losses according to policy (CookieMonsterPolicy
// for the real system, ARALikePolicy for the baseline).
func NewDevice(id events.DeviceID, db *events.Database, epsG float64, policy LossPolicy) *Device {
	if db == nil {
		panic("core: nil database")
	}
	if epsG < 0 {
		panic("core: negative budget capacity")
	}
	if policy == nil {
		panic("core: nil loss policy")
	}
	return &Device{
		id:         id,
		db:         db,
		capacity:   epsG,
		policy:     policy,
		budgets:    make(map[events.Site]map[events.Epoch]*privacy.Filter),
		epochFloor: events.Epoch(-1 << 31),
	}
}

// ID returns the device identifier.
func (d *Device) ID() events.DeviceID { return d.id }

// Capacity returns the per-epoch budget capacity ε^G_d.
func (d *Device) Capacity() float64 { return d.capacity }

// Policy returns the loss policy in effect.
func (d *Device) Policy() LossPolicy { return d.policy }

// filter returns (lazily creating) the privacy filter F_x for
// (querier, epoch), or nil when the epoch sits below the retention floor —
// the floor check shares the mutex with creation so a concurrent
// SetEpochFloor can never be interleaved with recreating an evicted filter
// (which would silently refund consumed budget).
func (d *Device) filter(q events.Site, e events.Epoch) *privacy.Filter {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e < d.epochFloor {
		return nil
	}
	byEpoch := d.budgets[q]
	if byEpoch == nil {
		byEpoch = make(map[events.Epoch]*privacy.Filter)
		d.budgets[q] = byEpoch
	}
	f := byEpoch[e]
	if f == nil {
		f = privacy.NewFilter(d.capacity)
		byEpoch[e] = f
	}
	return f
}

// Consumed returns the privacy loss consumed so far by querier q from epoch
// e on this device (0 if the filter was never touched). Experiments read
// it; queriers never can — remaining budgets are data-dependent and must
// stay hidden (§3.4).
func (d *Device) Consumed(q events.Site, e events.Epoch) float64 {
	// The whole read happens under the lock: filter() can insert into the
	// inner byEpoch map concurrently, so it must not be read unlocked.
	d.mu.Lock()
	defer d.mu.Unlock()
	byEpoch := d.budgets[q]
	if byEpoch == nil {
		return 0
	}
	f := byEpoch[e]
	if f == nil {
		return 0
	}
	return f.Consumed()
}

// ConsumedByQuerier returns each querier's total consumed budget across all
// of the device's epochs — the per-(device, advertiser) aggregate behind the
// Fig. 6 CDFs.
func (d *Device) ConsumedByQuerier() map[events.Site]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[events.Site]float64, len(d.budgets))
	for q, byEpoch := range d.budgets {
		// Sum in epoch order so float accumulation is deterministic
		// run-to-run (map order would perturb the low bits).
		epochs := make([]events.Epoch, 0, len(byEpoch))
		for e := range byEpoch {
			epochs = append(epochs, e)
		}
		sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
		sum := 0.0
		for _, e := range epochs {
			sum += byEpoch[e].Consumed()
		}
		out[q] = sum
	}
	return out
}

// GenerateReport runs Listing 1's compute_attribution_report for one
// conversion. It always returns a fixed-shape report (null-padded when
// budget or data is missing) so that report presence and shape leak nothing;
// an error is returned only for malformed requests.
func (d *Device) GenerateReport(req *Request) (*Report, *Diagnostics, error) {
	if err := req.Validate(); err != nil {
		return nil, nil, err
	}

	epochs := req.Epochs()
	k := len(epochs)
	// Step 1: select relevant events from every window epoch (the shared
	// truth computation — see window.go).
	truthful := RelevantWindow(d.db, d.id, req) // pre-filter relevant events
	surviving := make([][]events.Event, k)      // post-filter relevant events
	diag := &Diagnostics{
		PerEpochLoss:     make(map[events.Epoch]float64, k),
		RelevantPerEpoch: make(map[events.Epoch]int, k),
	}
	surcharge := biasSurcharge(req)
	denied := make(map[events.Epoch]bool, k)
	floor := d.EpochFloor()

	for i, e := range epochs {
		// Evicted epochs are permanently out of scope: they contribute
		// ∅ and are never charged (their filters are gone; recreating
		// one would refund budget).
		if e < floor {
			truthful[i] = nil
			diag.PerEpochLoss[e] = 0
			diag.RelevantPerEpoch[e] = 0
			continue
		}
		relevant := truthful[i]
		diag.RelevantPerEpoch[e] = len(relevant)

		// Step 2: individual privacy loss for this epoch, plus the
		// side query's κ surcharge when bias measurement is on.
		loss := d.policy.EpochLoss(relevant, req) + surcharge

		// Step 3: atomic check-and-consume; on Halt the epoch's
		// events are dropped (replaced by ∅) and nothing is charged.
		if loss == 0 {
			diag.PerEpochLoss[e] = 0
			surviving[i] = relevant
			continue
		}
		f := d.filter(req.Querier, e)
		if f == nil {
			// The epoch was evicted between the floor snapshot and
			// the charge: fall back to the evicted-epoch behavior —
			// ∅ contribution, nothing charged.
			truthful[i] = nil
			diag.PerEpochLoss[e] = 0
			diag.RelevantPerEpoch[e] = 0
			continue
		}
		if err := f.Consume(loss); err != nil {
			denied[e] = true
			diag.DeniedEpochs = append(diag.DeniedEpochs, e)
			diag.PerEpochLoss[e] = 0
			surviving[i] = nil
			continue
		}
		diag.PerEpochLoss[e] = loss
		surviving[i] = relevant
	}

	// Step 4: attribution over surviving epochs, clipped to the report
	// global sensitivity and already padded to fixed dimension by the
	// attribution function.
	h := AttributeWindow(req, surviving)

	truth := AttributeWindow(req, truthful)
	diag.TrueHistogram = truth
	diag.Biased = !slices.Equal(h, truth)

	rep := &Report{
		Nonce:            newNonce(),
		Querier:          req.Querier,
		Device:           d.id,
		Histogram:        h,
		Epsilon:          req.Epsilon,
		QuerySensitivity: req.QuerySensitivity,
	}
	if req.Bias != nil {
		rep.BiasFlag = biasFlag(req, epochs, surviving, denied)
	}
	return rep, diag, nil
}

// biasFlag computes the κ-scaled side-query coordinate of Appendix F. Under
// the heartbeat convention an epoch reads as ∅ exactly when its filter
// denied the loss, so:
//
//   - generic flag (Thm. 15): fires when any window epoch was denied;
//   - last-touch flag (Thm. 16): fires when some denied epoch has no
//     relevant impression in any *later* surviving epoch — i.e. the denial
//     could actually have changed a last-touch report.
func biasFlag(req *Request, epochs []events.Epoch, surviving [][]events.Event, denied map[events.Epoch]bool) float64 {
	if len(denied) == 0 {
		return 0
	}
	if !req.Bias.LastTouch {
		return req.Bias.Kappa
	}
	for i, e := range epochs {
		if !denied[e] {
			continue
		}
		later := false
		for j := i + 1; j < len(surviving); j++ {
			if len(surviving[j]) > 0 {
				later = true
				break
			}
		}
		if !later {
			return req.Bias.Kappa
		}
	}
	return 0
}
