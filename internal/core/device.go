package core

import (
	"slices"

	"repro/internal/events"
	"repro/internal/privacy"
)

// Device is the on-device Cookie Monster engine for a single device d: it
// owns the device's view of the events database, the flat privacy-budget
// ledger — one consumed-ε slot per (querier, epoch), each with capacity
// ε^G_d — and the report generation algorithm of Listing 1. All methods are
// safe for concurrent use; a report's whole budget check-and-consume
// sequence runs under a single ledger lock acquisition.
type Device struct {
	id       events.DeviceID
	db       *events.Database
	capacity float64
	policy   LossPolicy
	ledger   *privacy.Ledger
}

// NewDevice returns a device engine with per-epoch, per-querier budget
// capacity epsG, charging losses according to policy (CookieMonsterPolicy
// for the real system, ARALikePolicy for the baseline).
func NewDevice(id events.DeviceID, db *events.Database, epsG float64, policy LossPolicy) *Device {
	if db == nil {
		panic("core: nil database")
	}
	if epsG < 0 {
		panic("core: negative budget capacity")
	}
	if policy == nil {
		panic("core: nil loss policy")
	}
	return &Device{
		id:       id,
		db:       db,
		capacity: epsG,
		policy:   policy,
		ledger:   privacy.NewLedger(epsG),
	}
}

// ID returns the device identifier.
func (d *Device) ID() events.DeviceID { return d.id }

// Capacity returns the per-epoch budget capacity ε^G_d.
func (d *Device) Capacity() float64 { return d.capacity }

// Policy returns the loss policy in effect.
func (d *Device) Policy() LossPolicy { return d.policy }

// Consumed returns the privacy loss consumed so far by querier q from epoch
// e on this device (0 if the slot was never touched). Experiments read
// it; queriers never can — remaining budgets are data-dependent and must
// stay hidden (§3.4).
func (d *Device) Consumed(q events.Site, e events.Epoch) float64 {
	return d.ledger.Consumed(string(q), int64(e))
}

// ConsumedByQuerier returns each querier's total consumed budget across all
// of the device's epochs — the per-(device, advertiser) aggregate behind the
// Fig. 6 CDFs. Each total accumulates in ascending epoch order (the ledger
// lane's natural order), so float results are deterministic run-to-run.
func (d *Device) ConsumedByQuerier() map[events.Site]float64 {
	out := make(map[events.Site]float64, d.ledger.NumQueriers())
	d.ledger.RangeTotals(func(q string, total float64) {
		out[events.Site(q)] = total
	})
	return out
}

// BudgetDenials returns the number of budget charges this device's ledger
// has denied — how often queriers ran into the device's filter capacity.
// The count never influences charge outcomes, but it is checkpointed (and
// reinstated via RestoreBudgetDenials) so drain telemetry survives crashes.
func (d *Device) BudgetDenials() uint64 { return d.ledger.Denials() }

// RestoreBudgetDenials reinstates a checkpointed denial count (monotone:
// the larger of snapshot and live value wins).
func (d *Device) RestoreBudgetDenials(n uint64) { d.ledger.RestoreDenials(n) }

// LedgerVersion returns the device ledger's mutation counter — the dirty
// bit the incremental checkpointer compares against the version it last
// captured. Equal versions guarantee the device's persisted budget state
// (rows and denial count) is unchanged.
func (d *Device) LedgerVersion() uint64 { return d.ledger.Version() }

// RestoreBudgetRow sets one (querier, epoch) budget slot from persisted
// state — the checkpoint/restore path into the device's flat ledger. It
// refuses refunds and epochs below the retention floor, and honors a
// capacity differing from the device's ε^G per slot (see
// privacy.Ledger.Restore).
func (d *Device) RestoreBudgetRow(q events.Site, e events.Epoch, consumed, capacity float64) error {
	return d.ledger.Restore(string(q), int64(e), consumed, capacity)
}

// GenerateReport runs Listing 1's compute_attribution_report for one
// conversion. It always returns a fixed-shape report (null-padded when
// budget or data is missing) so that report presence and shape leak nothing;
// an error is returned only for malformed requests.
//
// This variant allocates a fresh workspace and full Diagnostics per call —
// convenient for tests, examples, and one-off callers. The fleet pipelines
// use GenerateReportScratch, which reuses a per-worker workspace and skips
// the diagnostics entirely.
func (d *Device) GenerateReport(req *Request) (*Report, *Diagnostics, error) {
	var s Scratch
	diag := &Diagnostics{}
	rep, _, err := d.generate(req, &s, diag)
	if err != nil {
		return nil, nil, err
	}
	return rep, diag, nil
}

// GenerateReportScratch is the zero-diagnostics hot path: it runs the same
// algorithm as GenerateReport while reusing s's buffers, and returns the
// fold-ready ReportStats instead of a Diagnostics. Only the *Report (and its
// histogram) are freshly allocated; see Scratch for the reuse contract.
func (d *Device) GenerateReportScratch(req *Request, s *Scratch) (*Report, ReportStats, error) {
	return d.generate(req, s, nil)
}

// generate is the shared implementation of Listing 1. When diag is non-nil
// it is additionally populated with freshly allocated (retainable)
// diagnostics.
//
// The batched path (GenerateReportBatch) runs the same three phases through
// the same helpers — lossPass between selection and charge, finish after —
// with only the selection fan-in, the charge's lock batching, and the nonce
// draw differing, so the two paths produce bit-identical reports and stats
// by construction.
func (d *Device) generate(req *Request, s *Scratch, diag *Diagnostics) (*Report, ReportStats, error) {
	if err := req.Validate(); err != nil {
		return nil, ReportStats{}, err
	}

	s.grow(req.WindowSize())

	// Step 1: select relevant events from every window epoch (the shared
	// truth computation — see window.go), into the reused workspace.
	selectWindow(d.db, d.id, req, s)

	// Step 2: per-epoch individual privacy loss.
	d.lossPass(req, s, d.EpochFloor())

	// Step 3: atomic check-and-consume for the whole window under one
	// ledger lock; on Halt an epoch's events are dropped (replaced by ∅)
	// and nothing is charged.
	d.ledger.ChargeWindow(string(req.Querier), int64(req.FirstEpoch), s.losses, s.outcomes)

	rep, stats := d.finish(req, s, newNonce(), diag)
	return rep, stats, nil
}

// lossPass computes step 2 of Listing 1 over a filled selection: the
// individual privacy loss per window epoch (Thm. 4), plus the side query's κ
// surcharge when bias measurement is on. Epochs below the retention floor
// are permanently out of scope: they contribute ∅ and request no loss (their
// slots are gone; recharging one would refund budget). The floor is a
// parameter so the batched path can snapshot it once per device — it cannot
// move during a generate phase (retention advances only between phases), so
// one read is equivalent to one per report.
func (d *Device) lossPass(req *Request, s *Scratch, floor events.Epoch) {
	first := req.FirstEpoch
	surcharge := biasSurcharge(req)
	for i, k := 0, req.WindowSize(); i < k; i++ {
		if first+events.Epoch(i) < floor {
			s.truthful[i] = nil
			s.relevant[i] = 0
			s.losses[i] = 0
			continue
		}
		rel := s.truthful[i]
		s.relevant[i] = len(rel)
		s.losses[i] = d.policy.EpochLoss(rel, req) + surcharge
	}
}

// finish folds the charge outcomes and runs step 4: attribution over
// surviving epochs, the lazy truth pass, and report assembly around the
// caller-minted nonce.
func (d *Device) finish(req *Request, s *Scratch, nonce Nonce, diag *Diagnostics) (*Report, ReportStats) {
	first := req.FirstEpoch
	k := req.WindowSize()
	stats := ReportStats{}
	diverged := false
	for i := 0; i < k; i++ {
		switch s.outcomes[i] {
		case privacy.ChargeZero:
			s.surviving[i] = s.truthful[i]
		case privacy.ChargeOK:
			s.surviving[i] = s.truthful[i]
			// Ascending-epoch accumulation keeps the fold bit-identical
			// to the old sorted per-epoch sum.
			stats.TotalLoss += s.losses[i]
		case privacy.ChargeDenied:
			s.surviving[i] = nil
			stats.Denied = true
			if len(s.truthful[i]) > 0 {
				diverged = true
			}
		case privacy.ChargeEvicted:
			// The epoch was evicted between the floor snapshot and the
			// charge: fall back to the evicted-epoch behavior — ∅
			// contribution, nothing charged.
			s.truthful[i] = nil
			s.surviving[i] = nil
			s.relevant[i] = 0
		}
	}

	// Step 4: attribution over surviving epochs, clipped to the report
	// global sensitivity and already padded to fixed dimension by the
	// attribution function.
	h := AttributeWindow(req, s.surviving)

	// The truth pass is lazy: surviving and truthful only differ when a
	// denial dropped relevant events, so in the common (no-denial) case the
	// report histogram *is* the truth and the second attribution pass —
	// previously unconditional — is skipped entirely, bit for bit.
	if diverged {
		tr := AttributeWindow(req, s.truthful)
		stats.TruthTotal = tr.Total()
		stats.Biased = !slices.Equal(h, tr)
		if diag != nil {
			diag.TrueHistogram = tr
		}
	} else {
		stats.TruthTotal = h.Total()
		if diag != nil {
			diag.TrueHistogram = h.Clone()
		}
	}

	rep := &Report{
		Nonce:            nonce,
		Querier:          req.Querier,
		Device:           d.id,
		Histogram:        h,
		Epsilon:          req.Epsilon,
		QuerySensitivity: req.QuerySensitivity,
	}
	if req.Bias != nil {
		rep.BiasFlag = biasFlag(req, s.outcomes, s.surviving)
	}

	if diag != nil {
		diag.FirstEpoch = first
		diag.Biased = stats.Biased
		diag.PerEpochLoss = make([]float64, k)
		diag.RelevantPerEpoch = make([]int, k)
		copy(diag.RelevantPerEpoch, s.relevant)
		for i := 0; i < k; i++ {
			if s.outcomes[i] == privacy.ChargeOK {
				diag.PerEpochLoss[i] = s.losses[i]
			}
			if s.outcomes[i] == privacy.ChargeDenied {
				diag.DeniedEpochs = append(diag.DeniedEpochs, first+events.Epoch(i))
			}
		}
	}
	return rep, stats
}

// biasFlag computes the κ-scaled side-query coordinate of Appendix F. Under
// the heartbeat convention an epoch reads as ∅ exactly when its slot denied
// the loss, so:
//
//   - generic flag (Thm. 15): fires when any window epoch was denied;
//   - last-touch flag (Thm. 16): fires when some denied epoch has no
//     relevant impression in any *later* surviving epoch — i.e. the denial
//     could actually have changed a last-touch report.
func biasFlag(req *Request, outcomes []privacy.ChargeOutcome, surviving [][]events.Event) float64 {
	anyDenied := false
	for _, o := range outcomes {
		if o == privacy.ChargeDenied {
			anyDenied = true
			break
		}
	}
	if !anyDenied {
		return 0
	}
	if !req.Bias.LastTouch {
		return req.Bias.Kappa
	}
	for i, o := range outcomes {
		if o != privacy.ChargeDenied {
			continue
		}
		later := false
		for j := i + 1; j < len(surviving); j++ {
			if len(surviving[j]) > 0 {
				later = true
				break
			}
		}
		if !later {
			return req.Bias.Kappa
		}
	}
	return 0
}
