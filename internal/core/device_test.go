package core

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/attribution"
	"repro/internal/events"
	"repro/internal/privacy"
)

const nike = events.Site("nike.com")

// paperDevice builds the §3.2 scenario: impressions I₁ in epoch e1 and I₂ in
// epoch e2, nothing in e3, and the conversion C₁ in epoch e4 (7-day epochs).
func paperDevice(t *testing.T, policy LossPolicy, epsG float64) (*Device, *events.Database) {
	t.Helper()
	db := events.NewDatabase()
	db.Record(1, events.Event{
		ID: 1, Kind: events.KindImpression, Device: 7, Day: 7,
		Publisher: "nytimes.com", Advertiser: nike, Campaign: "shoes",
	})
	db.Record(2, events.Event{
		ID: 2, Kind: events.KindImpression, Device: 7, Day: 15,
		Publisher: "bbc.com", Advertiser: nike, Campaign: "shoes",
	})
	db.Record(4, events.Event{
		ID: 3, Kind: events.KindConversion, Device: 7, Day: 29,
		Advertiser: nike, Product: "shoes", Value: 70,
	})
	return NewDevice(7, db, epsG, policy), db
}

func paperRequest(bias *BiasSpec) *Request {
	return &Request{
		Querier:           nike,
		FirstEpoch:        1,
		LastEpoch:         4,
		Selector:          events.NewCampaignSelector(nike, "shoes"),
		Function:          attribution.Slots{Logic: attribution.LastTouch{}, MaxImpressions: 2, Value: 70},
		Epsilon:           0.01,
		ReportSensitivity: 70,
		QuerySensitivity:  100,
		PNorm:             1,
		Bias:              bias,
	}
}

func TestPaperExampleExecution(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	// Exhaust nike.com's budget slot for epoch 1, as in Fig. 3.
	if out := d.testCharge(nike, 1, 1.0); out != privacy.ChargeOK {
		t.Fatalf("pre-charge rejected: %v", out)
	}

	rep, diag, err := d.GenerateReport(paperRequest(nil))
	if err != nil {
		t.Fatal(err)
	}
	// e1 denied: its I₁ is dropped.
	if len(diag.DeniedEpochs) != 1 || diag.DeniedEpochs[0] != 1 {
		t.Fatalf("denied epochs = %v, want [1]", diag.DeniedEpochs)
	}
	// e2 pays ε' = 0.01·70/100 = 0.007.
	if got := diag.LossAt(2); math.Abs(got-0.007) > 1e-12 {
		t.Fatalf("e2 loss = %v, want 0.007", got)
	}
	// e3 (no relevant impressions) and e4 (conversion only) pay zero.
	if diag.LossAt(3) != 0 || diag.LossAt(4) != 0 {
		t.Fatalf("e3/e4 losses = %v/%v, want 0/0", diag.LossAt(3), diag.LossAt(4))
	}
	// Report assigns the $70 to I₂ and pads the second slot: {(I₂,70),(0,0)}.
	if rep.Histogram[0] != 70 || rep.Histogram[1] != 0 {
		t.Fatalf("report = %v, want [70 0]", rep.Histogram)
	}
	// Consumed budget is recorded only on e2.
	if got := d.Consumed(nike, 2); math.Abs(got-0.007) > 1e-12 {
		t.Fatalf("consumed(e2) = %v", got)
	}
	if d.Consumed(nike, 3) != 0 || d.Consumed(nike, 4) != 0 {
		t.Fatal("zero-loss epochs consumed budget")
	}
	// Under last-touch, denying e1 does not change the numeric report
	// (all value was going to I₂ anyway) — the paper's observation that
	// "some out-of-budget epochs can leave the final report value
	// unchanged" (Appendix F).
	if diag.Biased {
		t.Fatal("denying e1 cannot bias a last-touch report when I₂ survives")
	}
}

func TestDenialOfLaterEpochBiasesBinnedReport(t *testing.T) {
	// With a per-campaign histogram, denying the most recent impression's
	// epoch visibly shifts credit between bins.
	db := events.NewDatabase()
	db.Record(1, events.Event{ID: 1, Kind: events.KindImpression, Device: 7, Day: 7, Advertiser: nike, Campaign: "a1"})
	db.Record(2, events.Event{ID: 2, Kind: events.KindImpression, Device: 7, Day: 15, Advertiser: nike, Campaign: "a2"})
	d := NewDevice(7, db, 1, CookieMonsterPolicy{})
	d.testCharge(nike, 2, 1) // deny the a2 epoch
	req := &Request{
		Querier:    nike,
		FirstEpoch: 1, LastEpoch: 4,
		Selector: events.NewCampaignSelector(nike, "a1", "a2"),
		Function: attribution.Binned{
			Logic: attribution.LastTouch{},
			Bins:  map[string]int{"a1": 0, "a2": 1},
			Dim:   2,
			Value: 70,
		},
		Epsilon:           0.01,
		ReportSensitivity: 140,
		QuerySensitivity:  200,
		PNorm:             1,
	}
	rep, diag, err := d.GenerateReport(req)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Biased {
		t.Fatal("credit shifted between bins; report must be biased")
	}
	if rep.Histogram[0] != 70 || rep.Histogram[1] != 0 {
		t.Fatalf("report = %v, want credit shifted to a1", rep.Histogram)
	}
	if diag.TrueHistogram[0] != 0 || diag.TrueHistogram[1] != 70 {
		t.Fatalf("truth = %v, want credit on a2", diag.TrueHistogram)
	}
}

func TestPaperExampleWithFullBudget(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	rep, diag, err := d.GenerateReport(paperRequest(nil))
	if err != nil {
		t.Fatal(err)
	}
	// Last-touch: all value to I₂ (most recent), I₁ second slot 0.
	if rep.Histogram[0] != 70 || rep.Histogram[1] != 0 {
		t.Fatalf("report = %v", rep.Histogram)
	}
	if diag.Biased {
		t.Fatal("nothing denied, report should be unbiased")
	}
	// Both e1 and e2 hold relevant impressions → both pay 0.007.
	for _, e := range []events.Epoch{1, 2} {
		if got := diag.LossAt(e); math.Abs(got-0.007) > 1e-12 {
			t.Fatalf("epoch %d loss = %v", e, got)
		}
	}
}

func TestNullReportWhenEverythingDenied(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 0)
	rep, diag, err := d.GenerateReport(paperRequest(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Histogram) != 2 || !rep.Histogram.IsZero() {
		t.Fatalf("null report shape = %v, want zero dim-2", rep.Histogram)
	}
	if !diag.Biased {
		t.Fatal("null report with real impressions must be biased")
	}
	// Fixed shape: indistinguishable from a real report's shape.
	rep2, _, _ := d.GenerateReport(paperRequest(nil))
	if len(rep2.Histogram) != len(rep.Histogram) {
		t.Fatal("report shape varies with budget state")
	}
}

func TestARALikeChargesEveryWindowEpoch(t *testing.T) {
	d, _ := paperDevice(t, ARALikePolicy{}, 1.0)
	_, diag, err := d.GenerateReport(paperRequest(nil))
	if err != nil {
		t.Fatal(err)
	}
	// All four window epochs pay the full ε, relevant data or not.
	for _, e := range []events.Epoch{1, 2, 3, 4} {
		if got := diag.LossAt(e); got != 0.01 {
			t.Fatalf("ARA epoch %d loss = %v, want 0.01", e, got)
		}
	}
}

func TestCookieMonsterNeverExceedsARA(t *testing.T) {
	// Pointwise dominance: for the same request, CM charges each epoch at
	// most what ARA-like charges.
	f := func(hasRelevant bool, windowLen uint8, rawVal float64) bool {
		val := math.Mod(math.Abs(rawVal), 100) + 1
		k := int(windowLen%5) + 1
		req := &Request{
			Querier:           nike,
			FirstEpoch:        0,
			LastEpoch:         events.Epoch(k - 1),
			Selector:          events.NewCampaignSelector(nike),
			Function:          attribution.ScalarValue{Value: val},
			Epsilon:           0.5,
			ReportSensitivity: val,
			QuerySensitivity:  100 + val,
			PNorm:             1,
		}
		var relevant []events.Event
		if hasRelevant {
			relevant = []events.Event{{Kind: events.KindImpression, Advertiser: nike}}
		}
		cm := CookieMonsterPolicy{}.EpochLoss(relevant, req)
		ara := ARALikePolicy{}.EpochLoss(relevant, req)
		return cm <= ara*(1+1e-9) && cm >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleEpochUsesOutputNorm(t *testing.T) {
	// The delay example of §4.3: if the single epoch's attribution output
	// has norm v < Δreport, only ε·v/Δquery is charged.
	db := events.NewDatabase()
	db.Record(0, events.Event{
		ID: 1, Kind: events.KindImpression, Device: 1, Day: 6,
		Advertiser: nike, Campaign: "shoes",
	})
	d := NewDevice(1, db, 10, CookieMonsterPolicy{})
	req := &Request{
		Querier:    nike,
		FirstEpoch: 0, LastEpoch: 0,
		Selector: events.NewCampaignSelector(nike, "shoes"),
		// Attribution output = 1 day of delay out of a 7-day cap.
		Function:          attribution.ScalarValue{Value: 1},
		Epsilon:           0.7,
		ReportSensitivity: 7,
		QuerySensitivity:  7,
		PNorm:             1,
	}
	_, diag, err := d.GenerateReport(req)
	if err != nil {
		t.Fatal(err)
	}
	// Individual sensitivity 1, query sensitivity 7 → ε/7 = 0.1.
	if got := diag.LossAt(0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("single-epoch loss = %v, want 0.1", got)
	}
}

func TestValidateRejectsBadRequests(t *testing.T) {
	base := paperRequest(nil)
	mutations := []func(*Request){
		func(r *Request) { r.Querier = "" },
		func(r *Request) { r.FirstEpoch, r.LastEpoch = 4, 1 },
		func(r *Request) { r.Selector = nil },
		func(r *Request) { r.Function = nil },
		func(r *Request) { r.Epsilon = 0 },
		func(r *Request) { r.Epsilon = -1 },
		func(r *Request) { r.ReportSensitivity = -1 },
		func(r *Request) { r.QuerySensitivity = 0 },
		func(r *Request) { r.ReportSensitivity = 200 }, // exceeds query sens
		func(r *Request) { r.PNorm = 3 },
		func(r *Request) { r.Bias = &BiasSpec{Kappa: 0} },
	}
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1)
	for i, mut := range mutations {
		req := *base
		mut(&req)
		if _, _, err := d.GenerateReport(&req); err == nil {
			t.Fatalf("mutation %d: bad request accepted", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base request invalid: %v", err)
	}
}

func TestNoncesUnique(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 100)
	seen := make(map[Nonce]bool)
	for i := 0; i < 50; i++ {
		rep, _, err := d.GenerateReport(paperRequest(nil))
		if err != nil {
			t.Fatal(err)
		}
		if seen[rep.Nonce] {
			t.Fatalf("duplicate nonce %d", rep.Nonce)
		}
		seen[rep.Nonce] = true
	}
}

func TestBudgetIsolationAcrossQueriers(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1)
	// Exhaust nike's budget on epoch 2.
	d.testCharge(nike, 2, 1)
	// A different querier still has a full budget.
	req := paperRequest(nil)
	req.Querier = "criteo.com"
	req.Selector = events.NewCampaignSelector(nike, "shoes")
	_, diag, err := d.GenerateReport(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.DeniedEpochs) != 0 {
		t.Fatalf("other querier denied: %v", diag.DeniedEpochs)
	}
}

func TestConcurrentReportsNeverOverConsume(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 0.02) // fits two e2 losses of 0.007
	var wg sync.WaitGroup
	const n = 32
	diags := make([]*Diagnostics, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, diag, err := d.GenerateReport(paperRequest(nil))
			if err != nil {
				t.Error(err)
				return
			}
			diags[i] = diag
		}(i)
	}
	wg.Wait()
	total := 0.0
	for _, diag := range diags {
		total += diag.LossAt(2)
	}
	if total > 0.02*(1+1e-9) {
		t.Fatalf("epoch 2 over-consumed: %v > 0.02", total)
	}
	if got := d.Consumed(nike, 2); math.Abs(got-total) > 1e-9 {
		t.Fatalf("ledger mismatch: %v vs %v", got, total)
	}
}

func TestTotalLossAndTruth(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1)
	_, diag, err := d.GenerateReport(paperRequest(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := diag.TotalLoss(); math.Abs(got-0.014) > 1e-12 {
		t.Fatalf("total loss = %v, want 0.014 (two epochs × 0.007)", got)
	}
	if diag.TrueHistogram[0] != 70 {
		t.Fatalf("truth = %v", diag.TrueHistogram)
	}
}

func TestNewDevicePanics(t *testing.T) {
	db := events.NewDatabase()
	cases := []func(){
		func() { NewDevice(1, nil, 1, CookieMonsterPolicy{}) },
		func() { NewDevice(1, db, -1, CookieMonsterPolicy{}) },
		func() { NewDevice(1, db, 1, nil) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPolicyNames(t *testing.T) {
	if (CookieMonsterPolicy{}).Name() != "cookie-monster" || (ARALikePolicy{}).Name() != "ara-like" {
		t.Fatal("policy names wrong")
	}
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1)
	if d.Policy().Name() != "cookie-monster" || d.Capacity() != 1 || d.ID() != 7 {
		t.Fatal("device accessors wrong")
	}
}

func TestAblationPolicyLadder(t *testing.T) {
	// The two partial optimizations are not pointwise comparable (one
	// saves on empty epochs, the other on all epochs), but every rung is
	// bracketed: it never under-charges the full Cookie Monster policy
	// (soundness) and never over-charges ARA-like (it is an optimization).
	req := paperRequest(nil)
	relevantSets := [][]events.Event{
		nil,
		{{Kind: events.KindImpression, Advertiser: nike, Campaign: "shoes"}},
	}
	for _, relevant := range relevantSets {
		cm := CookieMonsterPolicy{}.EpochLoss(relevant, req)
		ara := ARALikePolicy{}.EpochLoss(relevant, req)
		for _, p := range AblationPolicies {
			loss := p.EpochLoss(relevant, req)
			if loss < 0 {
				t.Fatalf("%s: negative loss", p.Name())
			}
			if loss < cm-1e-12 {
				t.Fatalf("%s under-charges: %v < CM %v", p.Name(), loss, cm)
			}
			if loss > ara+1e-12 {
				t.Fatalf("%s over-charges: %v > ARA %v", p.Name(), loss, ara)
			}
		}
	}
}

func TestSingleEpochAwarePolicy(t *testing.T) {
	p := SingleEpochAwarePolicy{}
	req := paperRequest(nil)
	// Multi-epoch window with relevant events: full ε.
	relevant := []events.Event{{Kind: events.KindImpression, Advertiser: nike, Campaign: "shoes"}}
	if got := p.EpochLoss(relevant, req); got != req.Epsilon {
		t.Fatalf("multi-epoch loss = %v", got)
	}
	// Empty: zero.
	if p.EpochLoss(nil, req) != 0 {
		t.Fatal("empty epoch charged")
	}
	// Single-epoch: output-norm scaled.
	single := *req
	single.FirstEpoch, single.LastEpoch = 2, 2
	got := p.EpochLoss(relevant, &single)
	want := req.Epsilon * 70 / 100
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("single-epoch loss = %v, want %v", got, want)
	}
}

func TestPartialPolicyNames(t *testing.T) {
	names := map[string]bool{}
	for _, p := range AblationPolicies {
		if names[p.Name()] {
			t.Fatalf("duplicate policy name %s", p.Name())
		}
		names[p.Name()] = true
	}
}
