package core

import (
	"repro/internal/events"
	"repro/internal/privacy"
)

// testCharge deducts eps from (q, e)'s ledger slot directly — the test
// analogue of the old d.filter(q, e).Consume(eps), used to pre-exhaust
// budgets before exercising report generation.
func (d *Device) testCharge(q events.Site, e events.Epoch, eps float64) privacy.ChargeOutcome {
	return d.ledger.Charge(string(q), int64(e), eps)
}
