package core

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"repro/internal/attribution"
	"repro/internal/events"
)

var multiSites = []events.Site{"nike.com", "adidas.com", "puma.com"}

func randomMultiDB(rng *rand.Rand, dev events.DeviceID) *events.Database {
	var evs []events.Event
	n := rng.Intn(60)
	for i := 0; i < n; i++ {
		kind := events.KindImpression
		if rng.Intn(6) == 0 {
			kind = events.KindConversion
		}
		evs = append(evs, events.Event{
			ID: events.EventID(i + 1), Kind: kind,
			Device:     dev,
			Day:        rng.Intn(42),
			Advertiser: multiSites[rng.Intn(3)],
			Campaign:   []string{"shoes", "hats"}[rng.Intn(2)],
			Product:    []string{"shoes", "hats"}[rng.Intn(2)],
		})
	}
	return events.NewFrozen(7, evs)
}

// randomMultiRequest builds a valid request with a random querier, window,
// selector (occasionally a SelectorFunc, which cannot compile and forces the
// batched path onto its generic-selection fallback), epsilon, and bias spec.
func randomMultiRequest(rng *rand.Rand) *Request {
	site := multiSites[rng.Intn(3)]
	var sel events.Selector
	switch rng.Intn(4) {
	case 0:
		sel = events.NewCampaignSelector(site, "shoes")
	case 1:
		sel = events.ProductSelector{Advertiser: site, Product: "hats"}
	case 2:
		sel = events.WindowSelector{
			Inner:    events.NewCampaignSelector(site),
			FirstDay: rng.Intn(20),
			LastDay:  10 + rng.Intn(40),
		}
	default:
		day := rng.Intn(42)
		sel = events.SelectorFunc(func(ev events.Event) bool {
			return ev.IsImpression() && ev.Advertiser == site && ev.Day >= day
		})
	}
	req := &Request{
		Querier:           site,
		FirstEpoch:        events.Epoch(rng.Intn(3)),
		Selector:          sel,
		Function:          attribution.Slots{Logic: attribution.LastTouch{}, MaxImpressions: 2, Value: 70},
		Epsilon:           []float64{0.004, 0.01, 0.4}[rng.Intn(3)],
		ReportSensitivity: 70,
		QuerySensitivity:  100,
		PNorm:             1,
	}
	req.LastEpoch = req.FirstEpoch + events.Epoch(rng.Intn(5))
	if rng.Intn(4) == 0 {
		req.Bias = &BiasSpec{Kappa: 10, LastTouch: rng.Intn(2) == 0}
	}
	return req
}

func sameReportModuloNonce(a, b *Report) bool {
	return a.Querier == b.Querier && a.Device == b.Device &&
		slices.Equal(a.Histogram, b.Histogram) && a.BiasFlag == b.BiasFlag &&
		a.Epsilon == b.Epsilon && a.QuerySensitivity == b.QuerySensitivity
}

// TestBatchMatchesSequentialScratch is the batched path's equivalence
// property: random request batches against random frozen stores must produce,
// via one GenerateReportBatch visit, exactly what the one-at-a-time
// GenerateReportScratch reference produces request by request — reports
// (modulo nonce), fold stats, and the device's full ledger state after every
// batch. Low epsilon-G values force denials so the charge order is load-
// bearing, and SelectorFunc lanes exercise the non-compiled fallback.
func TestBatchMatchesSequentialScratch(t *testing.T) {
	var scratch Scratch
	var ms MultiScratch
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const dev = events.DeviceID(7)
		db := randomMultiDB(rng, dev)
		epsG := []float64{0, 0.004, 0.02, 1}[rng.Intn(4)]
		var policy LossPolicy = CookieMonsterPolicy{}
		if rng.Intn(2) == 1 {
			policy = ARALikePolicy{}
		}
		// Two devices over one store: budgets must evolve identically.
		dRef := NewDevice(dev, db, epsG, policy)
		dBat := NewDevice(dev, db, epsG, policy)

		for batch := 0; batch < 6; batch++ {
			if rng.Intn(3) == 0 {
				floor := events.Epoch(rng.Intn(4))
				dRef.SetEpochFloor(floor)
				dBat.SetEpochFloor(floor)
			}
			n := 1 + rng.Intn(6)
			reqs := make([]*Request, n)
			for j := range reqs {
				reqs[j] = randomMultiRequest(rng)
			}

			reports := make([]*Report, n)
			stats := make([]ReportStats, n)
			if lane, err := dBat.GenerateReportBatch(reqs, &ms, reports, stats); err != nil {
				t.Fatalf("seed %d batch %d: lane %d: %v", seed, batch, lane, err)
			}

			for j, req := range reqs {
				repRef, stRef, err := dRef.GenerateReportScratch(req, &scratch)
				if err != nil {
					t.Fatal(err)
				}
				if !sameReportModuloNonce(repRef, reports[j]) {
					t.Fatalf("seed %d batch %d req %d: report %+v vs %+v",
						seed, batch, j, repRef, reports[j])
				}
				if stRef != stats[j] {
					t.Fatalf("seed %d batch %d req %d: stats %+v vs %+v",
						seed, batch, j, stRef, stats[j])
				}
			}
			for j := 1; j < n; j++ {
				if reports[j].Nonce != reports[j-1].Nonce+1 {
					t.Fatalf("seed %d batch %d: nonce block not consecutive: %d after %d",
						seed, batch, reports[j].Nonce, reports[j-1].Nonce)
				}
			}
			if !reflect.DeepEqual(dRef.Ledger(), dBat.Ledger()) {
				t.Fatalf("seed %d batch %d: ledger states diverged:\n%v\nvs\n%v",
					seed, batch, dRef.Ledger(), dBat.Ledger())
			}
		}
	}
}

// TestBatchMutableStoreFallback runs the same equivalence against the mutable
// store (selectors never compile there), pinning that the batched charge and
// nonce paths are correct independent of the columnar scan.
func TestBatchMutableStoreFallback(t *testing.T) {
	var scratch Scratch
	var ms MultiScratch
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := events.NewDatabase()
		for i, n := 0, rng.Intn(40); i < n; i++ {
			day := rng.Intn(35)
			db.Record(events.EpochOfDay(day, 7), events.Event{
				ID: events.EventID(i + 1), Kind: events.KindImpression,
				Device: 7, Day: day, Advertiser: multiSites[rng.Intn(3)],
				Campaign: []string{"shoes", "hats"}[rng.Intn(2)],
			})
		}
		dRef := NewDevice(7, db, 0.02, CookieMonsterPolicy{})
		dBat := NewDevice(7, db, 0.02, CookieMonsterPolicy{})
		for batch := 0; batch < 4; batch++ {
			n := 2 + rng.Intn(4)
			reqs := make([]*Request, n)
			for j := range reqs {
				reqs[j] = randomMultiRequest(rng)
			}
			reports := make([]*Report, n)
			stats := make([]ReportStats, n)
			if lane, err := dBat.GenerateReportBatch(reqs, &ms, reports, stats); err != nil {
				t.Fatalf("seed %d: lane %d: %v", seed, lane, err)
			}
			for j, req := range reqs {
				repRef, stRef, err := dRef.GenerateReportScratch(req, &scratch)
				if err != nil {
					t.Fatal(err)
				}
				if !sameReportModuloNonce(repRef, reports[j]) || stRef != stats[j] {
					t.Fatalf("seed %d batch %d req %d: mismatch", seed, batch, j)
				}
			}
			if !reflect.DeepEqual(dRef.Ledger(), dBat.Ledger()) {
				t.Fatalf("seed %d batch %d: ledger diverged", seed, batch)
			}
		}
	}
}

// TestBatchValidatesUpFront pins the error contract: a malformed request
// anywhere in the batch aborts the whole visit before anything is selected,
// charged, or written, and identifies the first offending lane.
func TestBatchValidatesUpFront(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := randomMultiDB(rng, 7)
	d := NewDevice(7, db, 1, CookieMonsterPolicy{})
	var ms MultiScratch

	good := func() *Request { return randomMultiRequest(rand.New(rand.NewSource(5))) }
	bad := good()
	bad.Epsilon = -1

	reqs := []*Request{good(), bad, good()}
	reports := make([]*Report, 3)
	stats := make([]ReportStats, 3)
	before := d.Ledger()
	lane, err := d.GenerateReportBatch(reqs, &ms, reports, stats)
	if err == nil || lane != 1 {
		t.Fatalf("want error at lane 1, got lane %d err %v", lane, err)
	}
	for j, rep := range reports {
		if rep != nil {
			t.Fatalf("slot %d written despite abort", j)
		}
	}
	if !reflect.DeepEqual(before, d.Ledger()) {
		t.Fatal("ledger mutated despite abort")
	}

	// An empty batch is a no-op success.
	if lane, err := d.GenerateReportBatch(nil, &ms, nil, nil); lane != -1 || err != nil {
		t.Fatalf("empty batch: lane %d err %v", lane, err)
	}
}
