package core

import (
	"math"
	"testing"

	"repro/internal/events"
)

func TestSetEpochFloorReleasesFilters(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	if _, _, err := d.GenerateReport(paperRequest(nil)); err != nil {
		t.Fatal(err)
	}
	// Filters exist for epochs 1 and 2 (the impression epochs).
	if len(d.Ledger()) == 0 {
		t.Fatal("no filters before eviction")
	}
	released := d.SetEpochFloor(3)
	if released != 2 {
		t.Fatalf("released %d filters, want 2", released)
	}
	if d.EpochFloor() != 3 {
		t.Fatalf("floor = %d", d.EpochFloor())
	}
	for _, row := range d.Ledger() {
		if row.Epoch < 3 {
			t.Fatalf("evicted epoch %d still in ledger", row.Epoch)
		}
	}
}

func TestEvictedEpochsContributeNothing(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	d.SetEpochFloor(3) // epochs 1 and 2 (both impressions) evicted
	rep, diag, err := d.GenerateReport(paperRequest(nil))
	if err != nil {
		t.Fatal(err)
	}
	// Both impressions are out of scope: null report, zero charges.
	if !rep.Histogram.IsZero() {
		t.Fatalf("evicted epochs leaked into report: %v", rep.Histogram)
	}
	if diag.TotalLoss() != 0 {
		t.Fatalf("evicted epochs charged %v", diag.TotalLoss())
	}
	if d.Consumed(nike, 1) != 0 || d.Consumed(nike, 2) != 0 {
		t.Fatal("evicted epochs recreated filters")
	}
}

func TestEvictionNeverRefundsBudget(t *testing.T) {
	// Exhaust epoch 2, evict it, then query again: the epoch must stay
	// inaccessible rather than coming back with a fresh filter.
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 0.007)
	if _, _, err := d.GenerateReport(paperRequest(nil)); err != nil {
		t.Fatal(err)
	}
	if got := d.Consumed(nike, 1); math.Abs(got-0.007) > 1e-12 {
		t.Fatalf("pre-eviction consumption = %v", got)
	}
	d.SetEpochFloor(2) // evict epoch 1
	_, diag, err := d.GenerateReport(paperRequest(nil))
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1 contributes nothing and is never recharged.
	if diag.LossAt(1) != 0 {
		t.Fatalf("evicted epoch charged %v", diag.LossAt(1))
	}
	if d.Consumed(nike, 1) != 0 {
		t.Fatal("evicted epoch has a filter again")
	}
}

func TestFloorNeverMovesBackwards(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	d.SetEpochFloor(5)
	if released := d.SetEpochFloor(3); released != 0 {
		t.Fatal("lowering the floor released filters")
	}
	if d.EpochFloor() != 5 {
		t.Fatalf("floor moved backwards to %d", d.EpochFloor())
	}
}

func TestPartialEvictionKeepsLaterEpochs(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	d.SetEpochFloor(2) // evict only epoch 1
	rep, diag, err := d.GenerateReport(paperRequest(nil))
	if err != nil {
		t.Fatal(err)
	}
	// I₂ (epoch 2) still attributes; only e1 is gone.
	if rep.Histogram[0] != 70 {
		t.Fatalf("report = %v, want I₂ attribution", rep.Histogram)
	}
	if diag.LossAt(2) == 0 {
		t.Fatal("surviving epoch paid nothing")
	}
	if diag.LossAt(1) != 0 {
		t.Fatal("evicted epoch paid")
	}
}

func TestEvictionAppliesToAllQueriers(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	req := paperRequest(nil)
	if _, _, err := d.GenerateReport(req); err != nil {
		t.Fatal(err)
	}
	other := *req
	other.Querier = "criteo.com"
	other.Selector = events.NewCampaignSelector(nike, "shoes")
	if _, _, err := d.GenerateReport(&other); err != nil {
		t.Fatal(err)
	}
	released := d.SetEpochFloor(5)
	if released != 4 { // 2 epochs × 2 queriers
		t.Fatalf("released %d, want 4", released)
	}
}
