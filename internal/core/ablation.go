package core

import (
	"repro/internal/attribution"
	"repro/internal/events"
)

// This file decomposes Cookie Monster's loss policy into its constituent
// optimizations (§4.3) so experiments can ablate each design choice:
//
//	opt 1 (zero-loss):   epochs with no relevant events pay nothing;
//	opt 2 (report cap):  epochs pay ε·Δreport/Δquery instead of ε;
//	opt 3 (single-epoch): one-epoch windows pay the exact output norm.
//
// CookieMonsterPolicy == all three; ARALikePolicy == none. The two partial
// policies below sit between them and remain sound: each charges at least
// the Thm. 4 individual loss for every epoch.

// ZeroLossOnlyPolicy applies only optimization 1: epochs without relevant
// events pay nothing, but participating epochs pay the full requested ε
// (no report-cap or single-epoch scaling).
type ZeroLossOnlyPolicy struct{}

// EpochLoss implements LossPolicy.
func (ZeroLossOnlyPolicy) EpochLoss(relevant []events.Event, req *Request) float64 {
	if len(relevant) == 0 {
		return 0
	}
	return req.Epsilon
}

// Name implements LossPolicy.
func (ZeroLossOnlyPolicy) Name() string { return "zero-loss-only" }

// ReportCapOnlyPolicy applies only optimization 2: every window epoch pays
// the report-cap-scaled loss ε·Δreport/Δquery, relevant data or not (the
// $70/$100 scaling without the empty-epoch discount).
type ReportCapOnlyPolicy struct{}

// EpochLoss implements LossPolicy.
func (ReportCapOnlyPolicy) EpochLoss(_ []events.Event, req *Request) float64 {
	return req.Epsilon * req.ReportSensitivity / req.QuerySensitivity
}

// Name implements LossPolicy.
func (ReportCapOnlyPolicy) Name() string { return "report-cap-only" }

// SingleEpochAwarePolicy applies optimizations 1 and 3 but not 2: empty
// epochs pay nothing, single-epoch windows pay the output norm scaled by
// the *query* sensitivity, and multi-epoch participating epochs pay full ε.
type SingleEpochAwarePolicy struct{}

// EpochLoss implements LossPolicy.
func (SingleEpochAwarePolicy) EpochLoss(relevant []events.Event, req *Request) float64 {
	if len(relevant) == 0 {
		return 0
	}
	if req.WindowSize() == 1 {
		h := req.Function.Attribute([][]events.Event{relevant})
		attribution.ClipNorm(h, req.ReportSensitivity, req.PNorm)
		return req.Epsilon * h.Norm(req.PNorm) / req.QuerySensitivity
	}
	return req.Epsilon
}

// Name implements LossPolicy.
func (SingleEpochAwarePolicy) Name() string { return "single-epoch-aware" }

// AblationPolicies lists the policy ladder from no optimizations to all of
// them, in increasing savings order.
var AblationPolicies = []LossPolicy{
	ARALikePolicy{},
	ReportCapOnlyPolicy{},
	ZeroLossOnlyPolicy{},
	CookieMonsterPolicy{},
}
