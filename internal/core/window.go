package core

import (
	"repro/internal/attribution"
	"repro/internal/events"
)

// This file holds the epoch-window truth computation shared by report
// generation (Diagnostics.TrueHistogram) and the workload's IPA-like
// baseline (which computes attribution centrally on the full data): select
// the relevant events of every window epoch, attribute, clip. Keeping one
// implementation guarantees the two sides judge estimates against the same
// ground truth.

// RelevantWindow returns, for each epoch of req's window oldest-first, the
// events of device dev relevant to req — the paper's D^E_d filtered by the
// selector F_A. It only reads the database, so concurrent workers may call
// it on a frozen database, or on a loading-phase database during a phase
// with no concurrent Record/EvictBefore (the streaming service's day-clock
// discipline).
func RelevantWindow(db *events.Database, dev events.DeviceID, req *Request) [][]events.Event {
	out := db.WindowEvents(dev, req.FirstEpoch, req.LastEpoch)
	for i, evs := range out {
		out[i] = events.Select(evs, req.Selector)
	}
	return out
}

// AttributeWindow runs req's attribution function over per-epoch relevant
// events and clips the result to the report global sensitivity — the
// report-value computation applied to both the surviving (post-filter) and
// truthful (pre-filter) event sets.
func AttributeWindow(req *Request, perEpoch [][]events.Event) attribution.Histogram {
	h := req.Function.Attribute(perEpoch)
	attribution.ClipNorm(h, req.ReportSensitivity, req.PNorm)
	return h
}

// TrueReportValue computes the unbudgeted report value of one conversion
// request on dev — its contribution to Q(D) that estimates are judged
// against.
func TrueReportValue(db *events.Database, dev events.DeviceID, req *Request) float64 {
	return AttributeWindow(req, RelevantWindow(db, dev, req)).Total()
}

// TrueReportValueScratch is TrueReportValue on a reusable workspace: the
// window and selection buffers come from s, so the central (IPA-like)
// generate stage allocates only the transient attribution histogram per
// conversion. Same reuse contract as GenerateReportScratch.
func TrueReportValueScratch(db *events.Database, dev events.DeviceID, req *Request, s *Scratch) float64 {
	k := req.WindowSize()
	if k <= 0 {
		return AttributeWindow(req, nil).Total()
	}
	s.grow(k)
	selectWindow(db, dev, req, s)
	return AttributeWindow(req, s.truthful).Total()
}
