// Package core implements the on-device side of Cookie Monster: the
// per-querier, per-epoch privacy-filter table, the individual-sensitivity
// privacy-loss computation (Thm. 4), and the attribution-report generation
// algorithm of Listing 1 / Alg. 1, including the bias-measurement side query
// of Appendix F. It is the paper's primary contribution.
package core

import (
	"errors"
	"fmt"

	"repro/internal/attribution"
	"repro/internal/events"
)

// Request is the sanitized attribution_request of Listing 1: everything a
// querier provides when it asks a device for an attribution report upon a
// conversion.
type Request struct {
	// Querier is the site requesting the report; filters are maintained
	// per querier.
	Querier events.Site
	// FirstEpoch and LastEpoch delimit the inclusive attribution window
	// (the `epochs` parameter).
	FirstEpoch, LastEpoch events.Epoch
	// Selector is the relevant-event predicate F_A
	// (`select_relevant_events`).
	Selector events.Selector
	// Function is the attribution policy A (`compute_attribution`).
	Function attribution.Function
	// Epsilon is the requested privacy budget the MPC/TEE will enforce
	// when executing the aggregation query (`requested_epsilon`).
	Epsilon float64
	// ReportSensitivity is the report global sensitivity: the maximum
	// change this device-epoch can make to the report generation output
	// (`report_global_sensitivity`, e.g. $70 in §3.2). The device clips
	// the attribution histogram to enforce it.
	ReportSensitivity float64
	// QuerySensitivity is the query global sensitivity: the maximum
	// across all devices and reports (`query_global_sensitivity`, e.g.
	// $100 in §3.2).
	QuerySensitivity float64
	// PNorm selects the sensitivity norm (1 for Laplace, 2 for
	// Gaussian). The DP theorem is proven for 1.
	PNorm int
	// Bias, when non-nil, requests the Appendix F side query alongside
	// the report.
	Bias *BiasSpec
}

// BiasSpec configures the bias-measurement side query (Appendix F): a
// per-report flag, scaled by Kappa, that counts reports possibly affected by
// an out-of-budget epoch.
type BiasSpec struct {
	// Kappa is the flag's scale κ. The paper's evaluation sets it to 10%
	// of the query's global sensitivity (§6.5).
	Kappa float64
	// LastTouch selects the tighter Thm. 16 flag (an out-of-budget epoch
	// only matters when no later in-budget epoch holds a relevant
	// impression) instead of the generic Thm. 15 flag.
	LastTouch bool
}

// Validate checks the request is well-formed; devices sanitize
// querier-provided parameters before acting on them.
func (r *Request) Validate() error {
	switch {
	case r.Querier == "":
		return errors.New("core: request missing querier")
	case r.LastEpoch < r.FirstEpoch:
		return fmt.Errorf("core: inverted epoch window [%d, %d]", r.FirstEpoch, r.LastEpoch)
	case r.Selector == nil:
		return errors.New("core: request missing selector")
	case r.Function == nil:
		return errors.New("core: request missing attribution function")
	case r.Epsilon <= 0:
		return fmt.Errorf("core: non-positive epsilon %v", r.Epsilon)
	case r.ReportSensitivity < 0:
		return fmt.Errorf("core: negative report sensitivity %v", r.ReportSensitivity)
	case r.QuerySensitivity <= 0:
		return fmt.Errorf("core: non-positive query sensitivity %v", r.QuerySensitivity)
	case r.ReportSensitivity > r.QuerySensitivity*(1+1e-9):
		return fmt.Errorf("core: report sensitivity %v exceeds query sensitivity %v",
			r.ReportSensitivity, r.QuerySensitivity)
	case r.PNorm != 1 && r.PNorm != 2:
		return fmt.Errorf("core: unsupported p-norm %d", r.PNorm)
	case r.Bias != nil && r.Bias.Kappa <= 0:
		return errors.New("core: bias measurement requires positive kappa")
	}
	return nil
}

// WindowSize returns k, the number of epochs in the attribution window.
func (r *Request) WindowSize() int { return int(r.LastEpoch-r.FirstEpoch) + 1 }

// Epochs enumerates the window's epochs, oldest first.
func (r *Request) Epochs() []events.Epoch {
	return events.EpochsIn(r.FirstEpoch, r.LastEpoch)
}
