package core

import (
	"math"

	"repro/internal/attribution"
	"repro/internal/events"
)

// LossPolicy computes the privacy loss a single epoch is charged for one
// report. It is the policy difference between Cookie Monster and the
// ARA-like baseline: both run on-device with per-epoch filters (the
// "inherent" optimization — only participating devices pay), but only
// Cookie Monster applies the individual-sensitivity optimizations of
// Thm. 4.
type LossPolicy interface {
	// EpochLoss returns the loss to deduct from one window epoch's
	// filter, given the relevant events found there (nil when none).
	EpochLoss(relevant []events.Event, req *Request) float64
	// Name identifies the policy in experiment output.
	Name() string
}

// CookieMonsterPolicy implements compute_individual_privacy_loss from
// Listing 1, i.e. the three cases of Thm. 4:
//
//  1. no relevant events in the epoch → individual sensitivity 0 → loss 0;
//  2. single-epoch window → individual sensitivity ‖A(F)‖_p (capped at the
//     report global sensitivity, which clipping enforces);
//  3. multi-epoch window → individual sensitivity = report global
//     sensitivity.
//
// The loss is the requested ε scaled by individual/query sensitivity
// (Eq. 4 with σ = √2·Δquery/ε).
type CookieMonsterPolicy struct{}

// EpochLoss implements LossPolicy.
func (CookieMonsterPolicy) EpochLoss(relevant []events.Event, req *Request) float64 {
	if len(relevant) == 0 {
		return 0 // Case 1: Δ_x = 0.
	}
	var individual float64
	if req.WindowSize() == 1 {
		// Case 2: the exact output norm of this epoch's data, after
		// clipping.
		h := req.Function.Attribute([][]events.Event{relevant})
		attribution.ClipNorm(h, req.ReportSensitivity, req.PNorm)
		individual = h.Norm(req.PNorm)
	} else {
		// Case 3: the report's global sensitivity.
		individual = req.ReportSensitivity
	}
	if individual > req.ReportSensitivity {
		individual = req.ReportSensitivity
	}
	return req.Epsilon * individual / req.QuerySensitivity
}

// Name implements LossPolicy.
func (CookieMonsterPolicy) Name() string { return "cookie-monster" }

// ARALikePolicy is the paper's ARA-like baseline: a user-time (device-epoch)
// variant of ARA that keeps the inherent on-device optimization but none of
// the new ones. Every epoch of the attribution window is charged the full
// requested ε, whether or not it holds relevant data and regardless of the
// report's individual sensitivity.
type ARALikePolicy struct{}

// EpochLoss implements LossPolicy.
func (ARALikePolicy) EpochLoss(_ []events.Event, req *Request) float64 {
	return req.Epsilon
}

// Name implements LossPolicy.
func (ARALikePolicy) Name() string { return "ara-like" }

// biasSurcharge returns the extra loss an epoch pays for the side query
// (Thm. 17): ε·κ/Δquery for every window epoch of a participating device
// with data. The engine treats every requested epoch as holding data (the
// heartbeat-event convention Appendix F describes: an active device-epoch
// always contains at least a heartbeat), so the surcharge is uniform across
// epochs that pass their filter check.
func biasSurcharge(req *Request) float64 {
	if req.Bias == nil {
		return 0
	}
	return req.Epsilon * req.Bias.Kappa / req.QuerySensitivity
}

// individualSensitivityUpperBound returns the data-independent bound
// min(Δreport, m·Amax) on an epoch's individual sensitivity, used in tests
// to check Thm. 4's Δ_x ≤ Δ(ρ) chain.
func individualSensitivityUpperBound(req *Request) float64 {
	return math.Min(req.ReportSensitivity, req.QuerySensitivity)
}
