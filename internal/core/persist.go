package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/events"
)

// This file persists a device's budget state — the analogue of the Chrome
// prototype's privacy-filter database table (§5): ARA's database is extended
// with one row per (epoch, querier) pair, and the browser must survive
// restarts without forgetting consumed budget (forgetting would let queriers
// reset a user's filters by waiting for a crash).
//
// Only filter states are persisted; the events database has its own
// lifecycle, and loss policies are code, not state.

// snapshotVersion guards the on-disk format. Version 2 added the retention
// floor: without it, a restored device forgot which epochs it had already
// evicted, and would charge (and attribute events to) epochs the original
// device treated as permanently out of scope.
const snapshotVersion = 2

// filterState is one persisted (querier, epoch) filter row.
type filterState struct {
	Querier  events.Site  `json:"querier"`
	Epoch    events.Epoch `json:"epoch"`
	Consumed float64      `json:"consumed"`
	Capacity float64      `json:"capacity"`
}

// snapshot is the serialized device budget state.
type snapshot struct {
	Version  int             `json:"version"`
	Device   events.DeviceID `json:"device"`
	Capacity float64         `json:"capacity"`
	// Floor is the retention floor (see Device.SetEpochFloor): epochs
	// strictly below it are permanently out of scope and their filter rows
	// are gone from Filters.
	Floor   events.Epoch  `json:"floor"`
	Filters []filterState `json:"filters"`
}

// SaveBudgets serializes the device's filter table to w. The snapshot is a
// consistent point-in-time view: concurrent report generation serializes
// against it on the device mutex.
func (d *Device) SaveBudgets(w io.Writer) error {
	rows := d.Ledger() // sorted, locked internally
	snap := snapshot{
		Version:  snapshotVersion,
		Device:   d.id,
		Capacity: d.capacity,
		Floor:    d.EpochFloor(),
		Filters:  make([]filterState, 0, len(rows)),
	}
	for _, r := range rows {
		snap.Filters = append(snap.Filters, filterState{
			Querier:  r.Querier,
			Epoch:    r.Epoch,
			Consumed: r.Consumed,
			Capacity: r.Capacity,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&snap)
}

// LoadBudgets restores a filter table previously written by SaveBudgets into
// a fresh device. It refuses snapshots for a different device ID and
// snapshots that would *lower* any filter's consumed budget below what the
// device has already spent (replaying an old snapshot must never refund
// privacy loss).
func (d *Device) LoadBudgets(rd io.Reader) error {
	var snap snapshot
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&snap); err != nil {
		return fmt.Errorf("core: decoding budget snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("core: unsupported snapshot version %d", snap.Version)
	}
	if snap.Device != d.id {
		return fmt.Errorf("core: snapshot for device %d, not %d", snap.Device, d.id)
	}
	// Restore the retention floor before any rows: evicted epochs must stay
	// evicted (recharging one would refund budget), and every valid row is
	// at or above the floor, so the order is never restrictive.
	d.SetEpochFloor(snap.Floor)
	for _, fs := range snap.Filters {
		if fs.Consumed < 0 || fs.Capacity < 0 || fs.Consumed > fs.Capacity*(1+1e-9) {
			return fmt.Errorf("core: corrupt filter state %+v", fs)
		}
		if err := d.ledger.Restore(string(fs.Querier), int64(fs.Epoch),
			fs.Consumed, fs.Capacity); err != nil {
			return fmt.Errorf("core: restoring filter state: %w", err)
		}
	}
	return nil
}
