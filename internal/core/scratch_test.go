package core

import (
	"math/rand"
	"slices"
	"sync"
	"testing"

	"repro/internal/attribution"
	"repro/internal/events"
)

// TestScratchPathMatchesDiagnosticsPath runs the allocate-per-call API and
// the scratch-reusing hot path over identical randomized devices and asserts
// reports and fold stats are bit-identical, with one shared Scratch carried
// across every call (the reuse contract under maximal buffer staleness).
func TestScratchPathMatchesDiagnosticsPath(t *testing.T) {
	var scratch Scratch
	for seed := int64(1); seed <= 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := events.NewDatabase()
		nEvents := rng.Intn(40)
		for i := 0; i < nEvents; i++ {
			day := rng.Intn(35)
			db.Record(events.EpochOfDay(day, 7), events.Event{
				ID: events.EventID(i + 1), Kind: events.KindImpression,
				Device: 1, Day: day, Advertiser: nike,
				Campaign: []string{"shoes", "hats"}[rng.Intn(2)],
			})
		}
		epsG := []float64{0, 0.005, 0.02, 1}[rng.Intn(4)]
		var policy LossPolicy = CookieMonsterPolicy{}
		if rng.Intn(2) == 1 {
			policy = ARALikePolicy{}
		}
		// Two devices sharing the database: one serves the reference API,
		// one the scratch API, so budget states evolve identically.
		dRef := NewDevice(1, db, epsG, policy)
		dScr := NewDevice(1, db, epsG, policy)

		for call := 0; call < 12; call++ {
			req := paperRequest(nil)
			req.FirstEpoch = events.Epoch(rng.Intn(3))
			req.LastEpoch = req.FirstEpoch + events.Epoch(rng.Intn(5))
			if rng.Intn(3) == 0 {
				req.Bias = &BiasSpec{Kappa: 10, LastTouch: rng.Intn(2) == 0}
			}
			if rng.Intn(4) == 0 {
				floor := events.Epoch(rng.Intn(4))
				dRef.SetEpochFloor(floor)
				dScr.SetEpochFloor(floor)
			}

			repRef, diag, err := dRef.GenerateReport(req)
			if err != nil {
				t.Fatal(err)
			}
			repScr, st, err := dScr.GenerateReportScratch(req, &scratch)
			if err != nil {
				t.Fatal(err)
			}

			if !slices.Equal(repRef.Histogram, repScr.Histogram) {
				t.Fatalf("seed %d call %d: histogram %v vs %v",
					seed, call, repRef.Histogram, repScr.Histogram)
			}
			if repRef.BiasFlag != repScr.BiasFlag {
				t.Fatalf("seed %d call %d: bias flag %v vs %v",
					seed, call, repRef.BiasFlag, repScr.BiasFlag)
			}
			if st.TruthTotal != diag.TrueHistogram.Total() {
				t.Fatalf("seed %d call %d: truth %v vs %v",
					seed, call, st.TruthTotal, diag.TrueHistogram.Total())
			}
			if st.TotalLoss != diag.TotalLoss() {
				t.Fatalf("seed %d call %d: loss %v vs %v",
					seed, call, st.TotalLoss, diag.TotalLoss())
			}
			if st.Denied != (len(diag.DeniedEpochs) > 0) || st.Biased != diag.Biased {
				t.Fatalf("seed %d call %d: flags %+v vs diag %+v", seed, call, st, diag)
			}
			// The two devices' ledgers must agree exactly after every call.
			for e := req.FirstEpoch; e <= req.LastEpoch; e++ {
				if a, b := dRef.Consumed(nike, e), dScr.Consumed(nike, e); a != b {
					t.Fatalf("seed %d call %d: consumed(%d) %v vs %v", seed, call, e, a, b)
				}
			}
		}
	}
}

// TestDiagnosticsEpochIndexing pins the window-indexed slice layout and its
// epoch-keyed accessors.
func TestDiagnosticsEpochIndexing(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1)
	_, diag, err := d.GenerateReport(paperRequest(nil))
	if err != nil {
		t.Fatal(err)
	}
	if diag.FirstEpoch != 1 || len(diag.PerEpochLoss) != 4 || len(diag.RelevantPerEpoch) != 4 {
		t.Fatalf("window-indexed layout wrong: first=%d lens=%d/%d",
			diag.FirstEpoch, len(diag.PerEpochLoss), len(diag.RelevantPerEpoch))
	}
	if diag.LossAt(1) != diag.PerEpochLoss[0] || diag.RelevantAt(2) != diag.RelevantPerEpoch[1] {
		t.Fatal("accessors disagree with slices")
	}
	// Out-of-window reads are zero, not panics.
	if diag.LossAt(0) != 0 || diag.LossAt(99) != 0 || diag.RelevantAt(-5) != 0 {
		t.Fatal("out-of-window reads nonzero")
	}
}

// TestDeviceLedgerConcurrentRace drives concurrent GenerateReport (scratch
// and diagnostics variants), Consumed, ConsumedByQuerier, and fleet-wide
// AdvanceEpochFloor against the flat ledger, interleaved with the streaming
// service's phase discipline for events.Database.EvictBefore (a mutation
// phase with no concurrent readers). Run under -race.
func TestDeviceLedgerConcurrentRace(t *testing.T) {
	const site = events.Site("nike.example")
	db := events.NewDatabase()
	record := func(epoch events.Epoch, n int) {
		for i := 0; i < n; i++ {
			db.Record(epoch, events.Event{
				ID: db.NextEventID(), Kind: events.KindImpression,
				Device: events.DeviceID(i % 4), Day: int(epoch) * 7,
				Advertiser: site, Campaign: "product-0",
			})
		}
	}
	for e := events.Epoch(0); e < 6; e++ {
		record(e, 16)
	}
	fleet := NewFleet(4, func(id events.DeviceID) *Device {
		return NewDevice(id, db, 0.5, CookieMonsterPolicy{})
	})
	req := func(first, last events.Epoch) *Request {
		return &Request{
			Querier:    site,
			FirstEpoch: first, LastEpoch: last,
			Selector:          events.ProductSelector{Advertiser: site, Product: "product-0"},
			Function:          attribution.ScalarValue{Value: 1},
			Epsilon:           0.01,
			ReportSensitivity: 1,
			QuerySensitivity:  1,
			PNorm:             1,
		}
	}

	// Day-clock phases: a concurrent read/report phase, then a sequential
	// retention phase (EvictBefore + AdvanceEpochFloor), repeated.
	for phase := 0; phase < 3; phase++ {
		floor := events.Epoch(phase * 2)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var scratch Scratch
				for i := 0; i < 40; i++ {
					dev := fleet.GetOrCreate(events.DeviceID((w + i) % 4))
					switch w % 4 {
					case 0:
						if _, _, err := dev.GenerateReportScratch(req(floor, floor+3), &scratch); err != nil {
							t.Error(err)
							return
						}
					case 1:
						if _, _, err := dev.GenerateReport(req(floor, floor+3)); err != nil {
							t.Error(err)
							return
						}
					case 2:
						dev.Consumed(site, floor+events.Epoch(i%4))
						dev.ConsumedByQuerier()
					case 3:
						// Raced floor advances ratchet monotonically and
						// may interleave with any charge.
						fleet.AdvanceEpochFloor(floor + events.Epoch(i%2))
						dev.Ledger()
					}
				}
			}(w)
		}
		wg.Wait()

		// Retention phase: single-writer, no concurrent readers — the
		// streaming day-clock discipline for database mutation.
		next := events.Epoch((phase + 1) * 2)
		db.EvictBefore(next)
		record(next+4, 8) // keep future epochs populated
		fleet.AdvanceEpochFloor(next)
	}

	// Post-run invariants: no slot above capacity, floors consistent.
	fleet.Range(func(d *Device) bool {
		for _, row := range d.Ledger() {
			if row.Consumed > row.Capacity*(1+1e-9) {
				t.Errorf("device %d slot %s/%d over capacity: %v",
					d.ID(), row.Querier, row.Epoch, row.Consumed)
			}
			if row.Epoch < d.EpochFloor() {
				t.Errorf("device %d retains evicted slot at epoch %d", d.ID(), row.Epoch)
			}
		}
		return true
	})
}
