package core

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/events"
)

// Fleet is the sharded device registry behind the workload engine: one
// *Device per DeviceID, lazily created on first use. The paper's whole point
// is that budgeting runs independently on millions of devices, so the
// registry is built for concurrent access — devices hash onto a power-of-two
// number of lock-striped shards, and GetOrCreate takes only the owning
// shard's lock (read-locked on the fast path).
type Fleet struct {
	shards []fleetShard
	mask   uint64
	spawn  func(events.DeviceID) *Device
	// floor is the fleet-wide retention floor (see AdvanceEpochFloor),
	// applied to devices created after the last advance.
	floor atomic.Int32
}

type fleetShard struct {
	mu      sync.RWMutex
	devices map[events.DeviceID]*Device
}

// NewFleet returns a fleet that creates missing devices with spawn. shards
// is rounded up to a power of two; 0 selects a default sized to the
// machine's parallelism.
func NewFleet(shards int, spawn func(events.DeviceID) *Device) *Fleet {
	if spawn == nil {
		panic("core: nil device factory")
	}
	if shards <= 0 {
		// Enough stripes that GOMAXPROCS workers rarely collide.
		shards = 8 * runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	f := &Fleet{
		shards: make([]fleetShard, n),
		mask:   uint64(n - 1),
		spawn:  spawn,
	}
	for i := range f.shards {
		f.shards[i].devices = make(map[events.DeviceID]*Device)
	}
	f.floor.Store(-1 << 31)
	return f
}

// shard maps a device ID to its owning shard. IDs are often small and
// sequential (the simulator numbers devices densely), so the raw low bits
// would pile consecutive devices onto consecutive shards; the SplitMix64
// finalizer mixes all 64 bits first.
func (f *Fleet) shard(id events.DeviceID) *fleetShard {
	z := uint64(id)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return &f.shards[z&f.mask]
}

// GetOrCreate returns the device engine for id, creating it on first use.
// Safe for concurrent use; exactly one device is ever created per ID.
func (f *Fleet) GetOrCreate(id events.DeviceID) *Device {
	s := f.shard(id)
	s.mu.RLock()
	d := s.devices[id]
	s.mu.RUnlock()
	if d != nil {
		return d
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d = s.devices[id]; d == nil {
		d = f.spawn(id)
		// A device first seen after a fleet-wide floor advance inherits
		// the floor: its evicted epochs are just as permanently out of
		// scope as for devices that lived through the advance.
		d.SetEpochFloor(events.Epoch(f.floor.Load()))
		s.devices[id] = d
	}
	return d
}

// Get returns the device for id, or nil if it was never created.
func (f *Fleet) Get(id events.DeviceID) *Device {
	s := f.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.devices[id]
}

// Len returns the number of devices created so far.
func (f *Fleet) Len() int {
	n := 0
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.RLock()
		n += len(s.devices)
		s.mu.RUnlock()
	}
	return n
}

// Devices returns the IDs of all created devices in ascending order, the
// deterministic iteration order experiments need.
func (f *Fleet) Devices() []events.DeviceID {
	out := make([]events.DeviceID, 0, f.Len())
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.RLock()
		for id := range s.devices {
			out = append(out, id)
		}
		s.mu.RUnlock()
	}
	slices.Sort(out)
	return out
}

// Range calls fn for every created device in ascending ID order, stopping
// early if fn returns false. The snapshot of IDs is taken up front, so fn
// may itself use the fleet.
func (f *Fleet) Range(fn func(*Device) bool) {
	for _, id := range f.Devices() {
		if d := f.Get(id); d != nil {
			if !fn(d) {
				return
			}
		}
	}
}

// AdvanceEpochFloor raises the retention floor of every created device to
// floor (see Device.SetEpochFloor), releasing the filters of evicted epochs,
// and records the floor so devices created later inherit it. Long-running
// services call it once per epoch boundary, after no in-flight query window
// can reach below the floor any more. The floor never moves backwards.
// It returns the total number of filters released.
//
// Concurrent GetOrCreate during the advance is safe — SetEpochFloor is
// per-device sound in either interleaving — but a device created mid-advance
// may only pick the floor up on the next call, so callers that need a strict
// bound should advance from the same goroutine that drives ingestion.
func (f *Fleet) AdvanceEpochFloor(floor events.Epoch) int {
	// CAS loop so concurrent advances can only ratchet the floor upward —
	// a plain load-check-store could let a lower floor land last and
	// resurrect evicted epochs for devices created afterwards.
	for {
		cur := f.floor.Load()
		if events.Epoch(cur) >= floor {
			return 0
		}
		if f.floor.CompareAndSwap(cur, int32(floor)) {
			break
		}
	}
	released := 0
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.RLock()
		for _, d := range s.devices {
			released += d.SetEpochFloor(floor)
		}
		s.mu.RUnlock()
	}
	return released
}

// EpochFloor returns the fleet-wide retention floor last set by
// AdvanceEpochFloor (devices created from now on start at this floor).
func (f *Fleet) EpochFloor() events.Epoch { return events.Epoch(f.floor.Load()) }

// ConsumedAt returns the budget querier q has consumed from epoch e on
// device dev, or 0 when the device was never created — the fleet-level
// accounting read behind the Fig. 4 budget metrics.
func (f *Fleet) ConsumedAt(dev events.DeviceID, q events.Site, e events.Epoch) float64 {
	d := f.Get(dev)
	if d == nil {
		return 0
	}
	return d.Consumed(q, e)
}
