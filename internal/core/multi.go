package core

import (
	"repro/internal/events"
	"repro/internal/privacy"
)

// Batched cross-querier report generation (DESIGN.md §10): a device visited
// by several pending requests in one day super-batch evaluates all of them
// in a single visit — one columnar window scan feeding a bank of compiled
// matcher lanes, one ledger lock for every querier's check-and-consume, one
// nonce-counter operation for the whole batch. The one-at-a-time path
// (GenerateReportScratch) remains the executable reference: both paths run
// the identical lossPass/finish helpers around the identical selection and
// charge arithmetic, and the property suite in multi_test.go holds them to
// bit-equal reports, stats, and ledger state.

// MultiScratch is the reusable per-worker workspace of GenerateReportBatch:
// one Scratch per request lane plus the multi-matcher scan state and the
// batched charge table. The reuse contract matches Scratch — one goroutine
// at a time, nothing observed from a previous call may be retained except
// the returned reports. The zero value is ready for use.
type MultiScratch struct {
	ss      []Scratch
	lanes   []events.ScanLane
	charges []privacy.WindowCharge
	scan    events.MultiScan
}

// grow resizes the lane-indexed tables for n requests, preserving the
// capacity (arena space included) of existing lanes.
func (ms *MultiScratch) grow(n int) {
	if cap(ms.ss) < n {
		ss := make([]Scratch, n)
		copy(ss, ms.ss)
		ms.ss = ss
		lanes := make([]events.ScanLane, n)
		copy(lanes, ms.lanes[:cap(ms.lanes)])
		ms.lanes = lanes
		ms.charges = make([]privacy.WindowCharge, n)
	} else {
		ms.ss = ms.ss[:n]
		ms.lanes = ms.lanes[:n]
		ms.charges = ms.charges[:n]
	}
}

// GenerateReportBatch runs Listing 1 for every request of one device in a
// single device visit. reports[j] and stats[j] receive request j's outputs
// (both must be pre-sized to len(reqs)); the slots are written exactly as
// len(reqs) GenerateReportScratch calls in slice order would fill them —
// same histograms, flags, and stats, same ledger outcomes — with the
// per-request fixed costs amortized across the batch:
//
//   - selection: when every selector compiles, one multi-matcher traversal
//     of the union window replaces len(reqs) independent window scans (the
//     generic fallback still runs per-request selection but keeps the
//     batched charge and nonce draw);
//   - budget: one ledger lock acquisition covers every querier's whole-
//     window check-and-consume, in request order (ChargeWindowBatch);
//   - nonces: one atomic add reserves the device's whole nonce block.
//
// Requests are validated up front: on a malformed request the index of the
// first offending request and its error are returned, and nothing is
// selected, charged, or written. On success it returns (-1, nil).
func (d *Device) GenerateReportBatch(reqs []*Request, ms *MultiScratch,
	reports []*Report, stats []ReportStats) (int, error) {
	for j, req := range reqs {
		if err := req.Validate(); err != nil {
			return j, err
		}
	}
	n := len(reqs)
	if n == 0 {
		return -1, nil
	}
	ms.grow(n)
	if n == 1 {
		// A single-request device gains nothing from lane dispatch; the
		// one-at-a-time path is already one scan, one lock, one nonce.
		rep, st, err := d.generate(reqs[0], &ms.ss[0], nil)
		if err != nil {
			return 0, err
		}
		reports[0], stats[0] = rep, st
		return -1, nil
	}

	// Step 1: selection. All selectors compiled → one multi-matcher scan
	// over the union window; otherwise per-request selection (which still
	// uses the compiled single-matcher scan where it can).
	compiled := true
	for j, req := range reqs {
		m, ok := d.db.Compile(req.Selector)
		if !ok {
			compiled = false
			break
		}
		s := &ms.ss[j]
		s.grow(req.WindowSize())
		ln := &ms.lanes[j]
		ln.Matcher = m
		ln.First, ln.Last = req.FirstEpoch, req.LastEpoch
		ln.Out = s.truthful
	}
	if compiled {
		ms.scan.ScanWindow(d.db, d.id, ms.lanes)
	} else {
		for j, req := range reqs {
			s := &ms.ss[j]
			s.grow(req.WindowSize())
			selectWindow(d.db, d.id, req, s)
		}
	}

	// Step 2: per-epoch losses for every lane, under one floor snapshot
	// (the floor cannot move during a generate phase; see lossPass).
	floor := d.EpochFloor()
	for j, req := range reqs {
		s := &ms.ss[j]
		d.lossPass(req, s, floor)
		ms.charges[j] = privacy.WindowCharge{
			Querier:  string(req.Querier),
			First:    int64(req.FirstEpoch),
			Losses:   s.losses,
			Outcomes: s.outcomes,
		}
	}

	// Step 3: every querier's check-and-consume under one ledger lock, in
	// request order — the same charge sequence as the sequential path.
	d.ledger.ChargeWindowBatch(ms.charges)

	// Step 4: attribution and report assembly per lane, nonces drawn as one
	// block.
	base := newNonceBlock(n)
	for j, req := range reqs {
		reports[j], stats[j] = d.finish(req, &ms.ss[j], base+Nonce(j), nil)
	}
	return -1, nil
}
