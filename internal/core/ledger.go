package core

import (
	"fmt"
	"strings"

	"repro/internal/events"
)

// LedgerRow is one line of the device's privacy-loss ledger: how much budget
// one querier has consumed from one epoch. The Fig. 1 dashboard renders
// these rows so users can monitor the privacy loss their device has granted
// to each site.
type LedgerRow struct {
	Querier  events.Site
	Epoch    events.Epoch
	Consumed float64
	Capacity float64
}

// Fraction returns consumed/capacity, the fill level of the bar the
// dashboard draws (1 when capacity is zero and anything was consumed).
func (r LedgerRow) Fraction() float64 {
	if r.Capacity == 0 {
		if r.Consumed > 0 {
			return 1
		}
		return 0
	}
	f := r.Consumed / r.Capacity
	if f > 1 {
		f = 1
	}
	return f
}

// Ledger returns a snapshot of every (querier, epoch) budget slot the device
// has initialized, sorted by querier then epoch. Unlike IPA — where the
// device only sees encrypted match keys leave — on-device budgeting lets the
// device itself account every loss, which is the transparency benefit §2.3
// argues for.
func (d *Device) Ledger() []LedgerRow {
	entries := d.ledger.Rows() // sorted by querier then epoch
	rows := make([]LedgerRow, len(entries))
	for i, en := range entries {
		rows[i] = LedgerRow{
			Querier:  events.Site(en.Querier),
			Epoch:    events.Epoch(en.Epoch),
			Consumed: en.Consumed,
			Capacity: en.Capacity,
		}
	}
	return rows
}

// RenderDashboard formats the ledger as the text analogue of the Fig. 1
// privacy-loss dashboard: one bar per (querier, epoch), scaled to width
// characters.
func RenderDashboard(rows []LedgerRow, width int) string {
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	var current events.Site
	for _, r := range rows {
		if r.Querier != current {
			current = r.Querier
			fmt.Fprintf(&b, "%s\n", current)
		}
		filled := int(r.Fraction() * float64(width))
		bar := strings.Repeat("█", filled) + strings.Repeat("·", width-filled)
		fmt.Fprintf(&b, "  epoch %4d  [%s] %.3f/%.3f\n", r.Epoch, bar, r.Consumed, r.Capacity)
	}
	return b.String()
}
