package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/events"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	d, db := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	if _, _, err := d.GenerateReport(paperRequest(nil)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveBudgets(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh device (same ID) restores the exact filter table.
	restored := NewDevice(7, db, 1.0, CookieMonsterPolicy{})
	if err := restored.LoadBudgets(&buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range []events.Epoch{1, 2, 3, 4} {
		if got, want := restored.Consumed(nike, e), d.Consumed(nike, e); math.Abs(got-want) > 1e-12 {
			t.Fatalf("epoch %d: restored %v, want %v", e, got, want)
		}
	}
	// The restored device keeps budgeting from where it left off: a
	// second identical report consumes on top of the restored state.
	if _, _, err := restored.GenerateReport(paperRequest(nil)); err != nil {
		t.Fatal(err)
	}
	if got := restored.Consumed(nike, 2); math.Abs(got-0.014) > 1e-12 {
		t.Fatalf("post-restore consume = %v, want 0.014", got)
	}
}

func TestLoadRejectsWrongDevice(t *testing.T) {
	d, db := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	d.GenerateReport(paperRequest(nil))
	var buf bytes.Buffer
	if err := d.SaveBudgets(&buf); err != nil {
		t.Fatal(err)
	}
	other := NewDevice(8, db, 1.0, CookieMonsterPolicy{})
	if err := other.LoadBudgets(&buf); err == nil {
		t.Fatal("snapshot for device 7 accepted by device 8")
	}
}

func TestLoadRejectsBudgetRefund(t *testing.T) {
	// Save an early (low-consumption) snapshot, consume more, then try to
	// roll back: the load must refuse to refund privacy loss.
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	d.GenerateReport(paperRequest(nil))
	var early bytes.Buffer
	if err := d.SaveBudgets(&early); err != nil {
		t.Fatal(err)
	}
	d.GenerateReport(paperRequest(nil)) // consume more
	if err := d.LoadBudgets(&early); err == nil {
		t.Fatal("rollback snapshot accepted")
	}
}

func TestLoadRejectsCorruptStates(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	cases := []string{
		`{`, // malformed JSON
		`{"version":99,"device":7,"capacity":1,"filters":[]}`,                                                    // bad version
		`{"version":1,"device":7,"capacity":1,"filters":[{"querier":"x","epoch":0,"consumed":-1,"capacity":1}]}`, // negative consumed
		`{"version":1,"device":7,"capacity":1,"filters":[{"querier":"x","epoch":0,"consumed":2,"capacity":1}]}`,  // over capacity
	}
	for i, raw := range cases {
		if err := d.LoadBudgets(strings.NewReader(raw)); err == nil {
			t.Fatalf("case %d: corrupt snapshot accepted", i)
		}
	}
}

func TestSaveEmptyDevice(t *testing.T) {
	d, db := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	var buf bytes.Buffer
	if err := d.SaveBudgets(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewDevice(7, db, 1.0, CookieMonsterPolicy{})
	if err := restored.LoadBudgets(&buf); err != nil {
		t.Fatal(err)
	}
	if len(restored.Ledger()) != 0 {
		t.Fatal("empty snapshot created filters")
	}
}

func TestLoadPreservesExhaustion(t *testing.T) {
	// An exhausted filter must stay exhausted across restart — otherwise
	// crashing the browser would reset per-site budgets.
	d, db := paperDevice(t, CookieMonsterPolicy{}, 0.007)
	d.GenerateReport(paperRequest(nil)) // exhausts e1 and e2 exactly
	var buf bytes.Buffer
	if err := d.SaveBudgets(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewDevice(7, db, 0.007, CookieMonsterPolicy{})
	if err := restored.LoadBudgets(&buf); err != nil {
		t.Fatal(err)
	}
	_, diag, err := restored.GenerateReport(paperRequest(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.DeniedEpochs) != 2 {
		t.Fatalf("restored device denied %v, want both impression epochs", diag.DeniedEpochs)
	}
}
