package core

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/events"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	d, db := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	if _, _, err := d.GenerateReport(paperRequest(nil)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveBudgets(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh device (same ID) restores the exact filter table.
	restored := NewDevice(7, db, 1.0, CookieMonsterPolicy{})
	if err := restored.LoadBudgets(&buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range []events.Epoch{1, 2, 3, 4} {
		if got, want := restored.Consumed(nike, e), d.Consumed(nike, e); math.Abs(got-want) > 1e-12 {
			t.Fatalf("epoch %d: restored %v, want %v", e, got, want)
		}
	}
	// The restored device keeps budgeting from where it left off: a
	// second identical report consumes on top of the restored state.
	if _, _, err := restored.GenerateReport(paperRequest(nil)); err != nil {
		t.Fatal(err)
	}
	if got := restored.Consumed(nike, 2); math.Abs(got-0.014) > 1e-12 {
		t.Fatalf("post-restore consume = %v, want 0.014", got)
	}
}

func TestLoadRejectsWrongDevice(t *testing.T) {
	d, db := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	d.GenerateReport(paperRequest(nil))
	var buf bytes.Buffer
	if err := d.SaveBudgets(&buf); err != nil {
		t.Fatal(err)
	}
	other := NewDevice(8, db, 1.0, CookieMonsterPolicy{})
	if err := other.LoadBudgets(&buf); err == nil {
		t.Fatal("snapshot for device 7 accepted by device 8")
	}
}

func TestLoadRejectsBudgetRefund(t *testing.T) {
	// Save an early (low-consumption) snapshot, consume more, then try to
	// roll back: the load must refuse to refund privacy loss.
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	d.GenerateReport(paperRequest(nil))
	var early bytes.Buffer
	if err := d.SaveBudgets(&early); err != nil {
		t.Fatal(err)
	}
	d.GenerateReport(paperRequest(nil)) // consume more
	if err := d.LoadBudgets(&early); err == nil {
		t.Fatal("rollback snapshot accepted")
	}
}

func TestLoadRejectsCorruptStates(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	cases := []string{
		`{`, // malformed JSON
		`{"version":99,"device":7,"capacity":1,"floor":0,"filters":[]}`,                                                     // bad version
		`{"version":1,"device":7,"capacity":1,"filters":[]}`,                                                                // pre-floor format
		`{"version":2,"device":7,"capacity":1,"floor":0,"filters":[{"querier":"x","epoch":0,"consumed":-1,"capacity":1}]}`,  // negative consumed
		`{"version":2,"device":7,"capacity":1,"floor":0,"filters":[{"querier":"x","epoch":0,"consumed":2,"capacity":1}]}`,   // over capacity
		`{"version":2,"device":7,"capacity":1,"floor":5,"filters":[{"querier":"x","epoch":0,"consumed":0.5,"capacity":1}]}`, // row below its own floor
	}
	for i, raw := range cases {
		if err := d.LoadBudgets(strings.NewReader(raw)); err == nil {
			t.Fatalf("case %d: corrupt snapshot accepted", i)
		}
	}
}

func TestSaveEmptyDevice(t *testing.T) {
	d, db := paperDevice(t, CookieMonsterPolicy{}, 1.0)
	var buf bytes.Buffer
	if err := d.SaveBudgets(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewDevice(7, db, 1.0, CookieMonsterPolicy{})
	if err := restored.LoadBudgets(&buf); err != nil {
		t.Fatal(err)
	}
	if len(restored.Ledger()) != 0 {
		t.Fatal("empty snapshot created filters")
	}
}

// TestPersistRoundTripProperty drives a device through randomized budget
// histories — charges, snapshot restores with per-slot capacity overrides,
// and retention-floor advances — then save/loads into a fresh device and
// requires *behavioral* equivalence, not just equal rows: the same follow-up
// charges must produce the same outcomes on both. This is the test that
// catches floor amnesia: before snapshots carried the floor, a restored
// device would happily charge an epoch the original had evicted (silently
// refunding budget a crash should never refund).
func TestPersistRoundTripProperty(t *testing.T) {
	queriers := []events.Site{"nike.com", "adidas.com", "criteo.com"}
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		epsG := []float64{0.01, 0.5, 1, 3}[rng.Intn(4)]
		db := events.NewDatabase()
		d := NewDevice(7, db, epsG, CookieMonsterPolicy{})

		// A random budget history. Restores use random capacities, so some
		// slots end up with per-slot overrides differing from ε^G.
		for op := 0; op < 120; op++ {
			q := queriers[rng.Intn(len(queriers))]
			e := events.Epoch(rng.Intn(40))
			switch rng.Intn(10) {
			case 0: // retention-floor advance (sometimes a no-op)
				d.SetEpochFloor(events.Epoch(rng.Intn(30) - 5))
			case 1, 2: // snapshot-restore row, possibly with a capacity override
				capacity := epsG
				if rng.Intn(2) == 0 {
					capacity = rng.Float64() * 4
				}
				consumed := rng.Float64() * capacity
				// May legitimately fail (refund refusal, below floor).
				d.RestoreBudgetRow(q, e, consumed, capacity)
			default: // plain charge
				d.testCharge(q, e, rng.Float64()*epsG*1.3)
			}
		}

		var buf bytes.Buffer
		if err := d.SaveBudgets(&buf); err != nil {
			t.Fatalf("seed %d: save: %v", seed, err)
		}
		restored := NewDevice(7, db, epsG, CookieMonsterPolicy{})
		if err := restored.LoadBudgets(&buf); err != nil {
			t.Fatalf("seed %d: load: %v", seed, err)
		}

		// State equivalence: identical floor and identical rows (consumed
		// and per-slot capacities, bitwise).
		if got, want := restored.EpochFloor(), d.EpochFloor(); got != want {
			t.Fatalf("seed %d: restored floor %d, want %d", seed, got, want)
		}
		origRows, restRows := d.Ledger(), restored.Ledger()
		if len(origRows) != len(restRows) {
			t.Fatalf("seed %d: %d rows restored, want %d", seed, len(restRows), len(origRows))
		}
		for i := range origRows {
			if origRows[i] != restRows[i] {
				t.Fatalf("seed %d: row %d restored as %+v, want %+v",
					seed, i, restRows[i], origRows[i])
			}
		}

		// Behavioral equivalence: an identical follow-up charge sequence —
		// including charges below the original floor and charges probing
		// each override slot's remaining headroom — must branch identically.
		for op := 0; op < 150; op++ {
			q := queriers[rng.Intn(len(queriers))]
			e := events.Epoch(rng.Intn(40) - 8) // reaches below any floor
			eps := rng.Float64() * epsG * 1.3
			got, want := restored.testCharge(q, e, eps), d.testCharge(q, e, eps)
			if got != want {
				t.Fatalf("seed %d: post-restore charge(%s, %d, %v) = %v on restored, %v on original",
					seed, q, e, eps, got, want)
			}
		}
	}
}

func TestLoadPreservesExhaustion(t *testing.T) {
	// An exhausted filter must stay exhausted across restart — otherwise
	// crashing the browser would reset per-site budgets.
	d, db := paperDevice(t, CookieMonsterPolicy{}, 0.007)
	d.GenerateReport(paperRequest(nil)) // exhausts e1 and e2 exactly
	var buf bytes.Buffer
	if err := d.SaveBudgets(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewDevice(7, db, 0.007, CookieMonsterPolicy{})
	if err := restored.LoadBudgets(&buf); err != nil {
		t.Fatal(err)
	}
	_, diag, err := restored.GenerateReport(paperRequest(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.DeniedEpochs) != 2 {
		t.Fatalf("restored device denied %v, want both impression epochs", diag.DeniedEpochs)
	}
}
