package core

import (
	"repro/internal/events"
	"repro/internal/privacy"
)

// Scratch is the reusable per-worker workspace of the report hot path. The
// per-conversion cost of GenerateReport is dominated by constant factors —
// window/selection slices, per-epoch loss and outcome buffers, diagnostics
// maps — that a worker would otherwise reallocate for every conversion in
// the fleet. A Scratch owns all of them; GenerateReportScratch reuses the
// buffers across calls and allocates only what the caller actually retains
// (the Report and its histogram).
//
// Reuse contract: a Scratch may be used by one goroutine at a time, and
// nothing reachable from it survives the call that filled it — callers may
// retain the returned *Report (and the *Diagnostics of GenerateReport, which
// is built from fresh allocations) but must not hold any slice observed
// during a previous call. The fan-out engine (stream.GenerateReports) keeps
// one Scratch per worker for exactly this reason.
type Scratch struct {
	// win holds the raw per-epoch database slices of the current window
	// (generic-selector fallback path).
	win [][]events.Event
	// views holds the zero-copy per-epoch record views of the current
	// window (compiled-selector path).
	views []events.EventView
	// truthful holds the relevant (pre-filter) events per window epoch;
	// entries alias either the database (epochs where every event is
	// relevant) or the arena below.
	truthful [][]events.Event
	// surviving holds the post-filter events per window epoch.
	surviving [][]events.Event
	// arena is the backing store for partial epoch selections; spans
	// records each epoch's [start, end) range until the arena stops
	// growing and stable sub-slices can be taken.
	arena []events.Event
	spans [][2]int
	// losses, outcomes, and relevant are the per-epoch charge pipeline.
	losses   []float64
	outcomes []privacy.ChargeOutcome
	relevant []int
}

// spanAlias marks a window epoch whose events were all relevant, so the
// truthful slice aliases the database record instead of an arena copy.
const spanAlias = -1

// grow resizes the scratch buffers for a k-epoch window. Slice contents are
// left stale; every entry is overwritten by the passes that follow.
func (s *Scratch) grow(k int) {
	if cap(s.truthful) < k {
		s.truthful = make([][]events.Event, k)
		s.surviving = make([][]events.Event, k)
		s.losses = make([]float64, k)
		s.outcomes = make([]privacy.ChargeOutcome, k)
		s.relevant = make([]int, k)
	} else {
		s.truthful = s.truthful[:k]
		s.surviving = s.surviving[:k]
		s.losses = s.losses[:k]
		s.outcomes = s.outcomes[:k]
		s.relevant = s.relevant[:k]
	}
}

// selectWindow fills s.truthful with the relevant events of every window
// epoch — RelevantWindow's job, without the per-epoch allocations. Partial
// selections are copied into the shared arena; sub-slices are only taken
// once the arena has stopped growing, so no span is invalidated by a later
// reallocation.
//
// When the request's selector compiles against the database's interned
// columns (every built-in selector form does), the scan runs over zero-copy
// EventViews with integer compares per event — no interface dispatch, no
// string compares, and full-match epochs alias the store's arena directly.
// Both paths produce identical slices by construction; the events property
// suite holds the compiled matcher to Selector.Relevant event for event.
func selectWindow(db *events.Database, dev events.DeviceID, req *Request, s *Scratch) {
	if m, ok := db.Compile(req.Selector); ok {
		selectWindowCompiled(db, dev, req, s, &m)
		return
	}
	s.win = db.WindowEventsInto(s.win, dev, req.FirstEpoch, req.LastEpoch)
	s.arena = s.arena[:0]
	s.spans = s.spans[:0]
	for _, evs := range s.win {
		start := len(s.arena)
		all := true
		for _, ev := range evs {
			if req.Selector.Relevant(ev) {
				s.arena = append(s.arena, ev)
			} else {
				all = false
			}
		}
		if all && len(evs) > 0 {
			// Every event relevant: alias the (read-only) database slice
			// and return the arena space.
			s.arena = s.arena[:start]
			s.spans = append(s.spans, [2]int{spanAlias, 0})
			continue
		}
		s.spans = append(s.spans, [2]int{start, len(s.arena)})
	}
	for i, sp := range s.spans {
		switch {
		case sp[0] == spanAlias:
			s.truthful[i] = s.win[i]
		case sp[0] == sp[1]:
			s.truthful[i] = nil // nothing relevant: the zero-loss signal
		default:
			s.truthful[i] = s.arena[sp[0]:sp[1]:sp[1]]
		}
	}
}

// selectWindowCompiled is selectWindow over the columnar scan path: window
// record views fetched zero-copy, relevance decided by the compiled matcher.
// The arena/span discipline is identical to the generic path.
func selectWindowCompiled(db *events.Database, dev events.DeviceID, req *Request, s *Scratch, m *events.Matcher) {
	k := req.WindowSize()
	if m.MatchesNone() {
		// The selector cannot match any stored event: every epoch selects
		// ∅ — the zero-loss case, decided without touching the store.
		for i := 0; i < k; i++ {
			s.truthful[i] = nil
		}
		return
	}
	s.views = db.WindowViewsInto(s.views, dev, req.FirstEpoch, req.LastEpoch)
	s.arena = s.arena[:0]
	s.spans = s.spans[:0]
	for _, v := range s.views {
		start := len(s.arena)
		all := true
		evs := v.Events()
		for i, n := 0, v.Len(); i < n; i++ {
			if m.Match(v, i) {
				s.arena = append(s.arena, evs[i])
			} else {
				all = false
			}
		}
		if all && v.Len() > 0 {
			// Every event relevant: alias the (read-only) store memory
			// and return the arena space.
			s.arena = s.arena[:start]
			s.spans = append(s.spans, [2]int{spanAlias, 0})
			continue
		}
		s.spans = append(s.spans, [2]int{start, len(s.arena)})
	}
	for i, sp := range s.spans {
		switch {
		case sp[0] == spanAlias:
			s.truthful[i] = s.views[i].Events()
		case sp[0] == sp[1]:
			s.truthful[i] = nil // nothing relevant: the zero-loss signal
		default:
			s.truthful[i] = s.arena[sp[0]:sp[1]:sp[1]]
		}
	}
}
