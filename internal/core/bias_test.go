package core

import (
	"math"
	"testing"

	"repro/internal/attribution"
	"repro/internal/events"
)

func TestBiasSurchargeChargedOnAllPassingEpochs(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1)
	bias := &BiasSpec{Kappa: 10, LastTouch: true} // 10% of Δquery=100
	_, diag, err := d.GenerateReport(paperRequest(bias))
	if err != nil {
		t.Fatal(err)
	}
	surcharge := 0.01 * 10 / 100 // ε·κ/Δquery = 0.001
	// Epochs with relevant impressions: 0.007 + 0.001.
	for _, e := range []events.Epoch{1, 2} {
		if got := diag.LossAt(e); math.Abs(got-0.008) > 1e-12 {
			t.Fatalf("epoch %d loss = %v, want 0.008", e, got)
		}
	}
	// Epochs that paid zero before now pay the surcharge (§6.5: "some
	// epochs that originally paid zero budget... now pay for bias
	// counts").
	for _, e := range []events.Epoch{3, 4} {
		if got := diag.LossAt(e); math.Abs(got-surcharge) > 1e-12 {
			t.Fatalf("epoch %d loss = %v, want %v", e, got, surcharge)
		}
	}
}

func TestBiasFlagZeroWhenNothingDenied(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1)
	rep, _, err := d.GenerateReport(paperRequest(&BiasSpec{Kappa: 10, LastTouch: true}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.BiasFlag != 0 {
		t.Fatalf("flag = %v, want 0", rep.BiasFlag)
	}
}

func TestBiasFlagGenericFiresOnAnyDenial(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1)
	d.testCharge(nike, 1, 1)
	rep, _, err := d.GenerateReport(paperRequest(&BiasSpec{Kappa: 10, LastTouch: false}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.BiasFlag != 10 {
		t.Fatalf("generic flag = %v, want κ=10", rep.BiasFlag)
	}
}

func TestBiasFlagLastTouchSuppressedByLaterImpression(t *testing.T) {
	// Thm. 16: denying e1 cannot bias a last-touch report when e2 (later)
	// still holds a relevant impression.
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1)
	d.testCharge(nike, 1, 1)
	rep, _, err := d.GenerateReport(paperRequest(&BiasSpec{Kappa: 10, LastTouch: true}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.BiasFlag != 0 {
		t.Fatalf("last-touch flag = %v, want 0 (I₂ survives later)", rep.BiasFlag)
	}
}

func TestBiasFlagLastTouchFiresWhenNoLaterImpression(t *testing.T) {
	// Deny e2 (the most recent impression's epoch): now the denial can
	// change a last-touch report, so the flag must fire.
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1)
	d.testCharge(nike, 2, 1)
	rep, diag, err := d.GenerateReport(paperRequest(&BiasSpec{Kappa: 10, LastTouch: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.DeniedEpochs) != 1 || diag.DeniedEpochs[0] != 2 {
		t.Fatalf("denied = %v", diag.DeniedEpochs)
	}
	if rep.BiasFlag != 10 {
		t.Fatalf("last-touch flag = %v, want κ=10", rep.BiasFlag)
	}
	// The flag is conservative: here credit shifts from I₂ to I₁ but the
	// scalar slot value is unchanged (70), so the numeric report is not
	// biased — the flagged set is a superset of the altered set
	// (Appendix F, Eq. 50).
	if diag.Biased {
		t.Fatal("slot values identical; numeric report should be unbiased")
	}
	if rep.Histogram[0] != 70 { // I₁ is now the last touch
		t.Fatalf("report = %v", rep.Histogram)
	}
}

func TestBiasFlagNeverExceedsKappa(t *testing.T) {
	// Even with multiple denied epochs the flag is a single indicator.
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1)
	d.testCharge(nike, 1, 1)
	d.testCharge(nike, 2, 1)
	rep, _, err := d.GenerateReport(paperRequest(&BiasSpec{Kappa: 10, LastTouch: false}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.BiasFlag != 10 {
		t.Fatalf("flag = %v, want exactly κ", rep.BiasFlag)
	}
}

func TestBiasSurchargeCanExhaustZeroLossEpochs(t *testing.T) {
	// With a tiny capacity, the surcharge itself is denied and the epoch
	// drops its data — the mechanism §6.5 blames for the accuracy cost of
	// bias measurement.
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 0.0005)
	rep, diag, err := d.GenerateReport(paperRequest(&BiasSpec{Kappa: 10, LastTouch: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.DeniedEpochs) == 0 {
		t.Fatal("expected denials under tiny capacity")
	}
	if rep.BiasFlag != 10 {
		t.Fatalf("flag = %v, want κ", rep.BiasFlag)
	}
}

func TestIndividualSensitivityUpperBound(t *testing.T) {
	req := paperRequest(nil)
	if got := individualSensitivityUpperBound(req); got != 70 {
		t.Fatalf("bound = %v, want min(70,100)", got)
	}
}

func TestLedgerAndDashboard(t *testing.T) {
	d, _ := paperDevice(t, CookieMonsterPolicy{}, 1)
	if _, _, err := d.GenerateReport(paperRequest(nil)); err != nil {
		t.Fatal(err)
	}
	rows := d.Ledger()
	if len(rows) == 0 {
		t.Fatal("ledger empty after report")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Querier > rows[i].Querier {
			t.Fatal("ledger not sorted by querier")
		}
		if rows[i-1].Querier == rows[i].Querier && rows[i-1].Epoch >= rows[i].Epoch {
			t.Fatal("ledger not sorted by epoch")
		}
	}
	var sawConsumed bool
	for _, r := range rows {
		if r.Consumed > 0 {
			sawConsumed = true
		}
		if f := r.Fraction(); f < 0 || f > 1 {
			t.Fatalf("fraction %v out of range", f)
		}
	}
	if !sawConsumed {
		t.Fatal("no consumption recorded")
	}
	out := RenderDashboard(rows, 20)
	if out == "" {
		t.Fatal("empty dashboard")
	}
	out2 := RenderDashboard(rows, 0) // default width path
	if out2 == "" {
		t.Fatal("default-width dashboard empty")
	}
}

func TestLedgerRowFractionEdgeCases(t *testing.T) {
	if (LedgerRow{Consumed: 1, Capacity: 0}).Fraction() != 1 {
		t.Fatal("zero-capacity consumed fraction should be 1")
	}
	if (LedgerRow{Consumed: 0, Capacity: 0}).Fraction() != 0 {
		t.Fatal("zero-capacity idle fraction should be 0")
	}
	if (LedgerRow{Consumed: 5, Capacity: 2}).Fraction() != 1 {
		t.Fatal("overfull fraction should clamp to 1")
	}
}

func TestBinnedAttributionThroughDevice(t *testing.T) {
	// Campaign-comparison query (§4.1.3): a1 vs a2 histogram.
	db := events.NewDatabase()
	db.Record(0, events.Event{ID: 1, Kind: events.KindImpression, Device: 1, Day: 0, Advertiser: nike, Campaign: "a1"})
	db.Record(1, events.Event{ID: 2, Kind: events.KindImpression, Device: 1, Day: 8, Advertiser: nike, Campaign: "a2"})
	d := NewDevice(1, db, 10, CookieMonsterPolicy{})
	req := &Request{
		Querier:    nike,
		FirstEpoch: 0, LastEpoch: 1,
		Selector: events.NewCampaignSelector(nike, "a1", "a2"),
		Function: attribution.Binned{
			Logic: attribution.EqualCredit{},
			Bins:  map[string]int{"a1": 0, "a2": 1},
			Dim:   2,
			Value: 10,
		},
		Epsilon:           0.1,
		ReportSensitivity: 20, // 2·Amax for shifting logic, m,k ≥ 2
		QuerySensitivity:  20,
		PNorm:             1,
	}
	rep, _, err := d.GenerateReport(req)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Histogram[0] != 5 || rep.Histogram[1] != 5 {
		t.Fatalf("binned report = %v", rep.Histogram)
	}
}
