package privacy

import (
	"math"
	"testing"
)

func TestEpsilonFormula(t *testing.T) {
	// ε = Δ·ln(1/β)/(α·B·c̃)
	c := Calibration{Alpha: 0.05, Beta: 0.01}
	got := c.Epsilon(100, 2000, 5)
	want := 100 * math.Log(100) / (0.05 * 2000 * 5)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Epsilon = %v, want %v", got, want)
	}
}

func TestEpsilonScalesInverselyWithBatch(t *testing.T) {
	c := DefaultCalibration
	e1 := c.Epsilon(100, 1000, 5)
	e2 := c.Epsilon(100, 2000, 5)
	if math.Abs(e1/e2-2) > 1e-9 {
		t.Fatalf("doubling batch should halve epsilon: %v vs %v", e1, e2)
	}
}

func TestEpsilonPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"zero delta", func() { DefaultCalibration.Epsilon(0, 100, 1) }},
		{"zero batch", func() { DefaultCalibration.Epsilon(1, 0, 1) }},
		{"zero avg", func() { DefaultCalibration.Epsilon(1, 100, 0) }},
		{"bad alpha", func() { (Calibration{Alpha: 0, Beta: 0.1}).Epsilon(1, 1, 1) }},
		{"bad beta", func() { (Calibration{Alpha: 0.1, Beta: 1}).Epsilon(1, 1, 1) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestCalibratedRMSRETarget(t *testing.T) {
	// With the calibrated ε and a batch whose true total is B·c̃, the
	// Laplace RMSRE is √2·α/ln(1/β) ≈ 0.0154 — the paper's "roughly 0.02
	// RMSRE" (§6.1).
	c := DefaultCalibration
	const delta, batch, avg = 100.0, 2000, 5.0
	eps := c.Epsilon(delta, batch, avg)
	rmsre := ExpectedRMSRE(delta, eps, batch*avg)
	want := math.Sqrt2 * c.Alpha / math.Log(1/c.Beta)
	if math.Abs(rmsre-want) > 1e-12 {
		t.Fatalf("RMSRE = %v, want %v", rmsre, want)
	}
	if rmsre > 0.02 {
		t.Fatalf("calibrated RMSRE %v exceeds the paper's 0.02 mark", rmsre)
	}
}

func TestExpectedRMSREZeroTotal(t *testing.T) {
	if !math.IsInf(ExpectedRMSRE(1, 1, 0), 1) {
		t.Fatal("zero-total RMSRE should be +Inf")
	}
}
