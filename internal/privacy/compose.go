package privacy

// This file exposes the composition results of the paper's formal analysis
// (§4.2.4 and Appendix D) as checkable arithmetic. The guarantees themselves
// are enforced structurally by the per-querier filters; these helpers let
// callers (and tests) compute the bounds the theorems promise.

// IndividualDPBound returns the individual device-epoch DP bound of Thm. 1
// for a device with per-querier budget capacity epsG. constrainedQueries
// selects between the theorem's two cases: true when every attribution
// function satisfies A(..., Fᵢ∩P, ...) = A(..., ∅, ...) — e.g. when queries
// touch public events only through report identifiers (F_A ∩ P = ∅) — giving
// the tight ε^G bound; false for general queries, giving 2ε^G.
func IndividualDPBound(epsG float64, constrainedQueries bool) float64 {
	if constrainedQueries {
		return epsG
	}
	return 2 * epsG
}

// UnlinkabilityBound returns the bound of Thm. 2 on distinguishing "events
// F₀ all on device d₀" from "events split between d₀ and d₁" at one epoch:
// 2ε^G_{d₀} + ε^G_{d₁} (the record triple x₀=(d₀,e,F₀), x₁=(d₁,e,F₁),
// x₂=(d₀,e,F₀∖F₁) contributes ε_x0 + ε_x1 + ε_x2 with x₀, x₂ on d₀).
func UnlinkabilityBound(epsD0, epsD1 float64) float64 {
	return 2*epsD0 + epsD1
}

// CollusionBound returns Thm. 10's bound for n colluding queriers with
// per-device budgets eps[i]: Σᵢ 2ε_i in the general case, and Σᵢ ε_i when
// every querier's attribution functions ignore the *joint* public
// information P = P₁∪...∪Pₙ (the stricter constraint discussed after
// Thm. 10 — an advertiser/publisher pair typically does not satisfy it).
func CollusionBound(eps []float64, jointConstrained bool) float64 {
	sum := 0.0
	for _, e := range eps {
		sum += e
	}
	if jointConstrained {
		return sum
	}
	return 2 * sum
}

// SequentialComposition returns the pure-DP sequential composition of a set
// of losses: their sum. The filter enforces exactly this quantity against
// its capacity; tests use the helper to cross-check filter behaviour.
func SequentialComposition(losses []float64) float64 {
	sum := 0.0
	for _, l := range losses {
		sum += l
	}
	return sum
}
