package privacy

import "math"

// Calibration holds the querier-side accuracy target from the paper's
// methodology (§6.1): the querier picks ε so that a summation query over a
// batch of B reports stays within a relative error α of the true value with
// probability 1−β.
type Calibration struct {
	// Alpha is the target relative error (0.05 in the paper).
	Alpha float64
	// Beta is the failure probability (0.01 in the paper).
	Beta float64
}

// DefaultCalibration is the paper's setting: 5% error at 99% confidence,
// corresponding to roughly 0.02 RMSRE.
var DefaultCalibration = Calibration{Alpha: 0.05, Beta: 0.01}

// Epsilon implements the paper's formula ε = Δ·ln(1/β)/(α·B·c̃), where Δ is
// the query's global sensitivity (the maximum conversion value), B the batch
// size and avgValue (c̃) the querier's rough estimate of the average
// conversion value. It panics on non-positive inputs.
func (c Calibration) Epsilon(delta float64, batch int, avgValue float64) float64 {
	if delta <= 0 || batch <= 0 || avgValue <= 0 {
		panic("privacy: calibration requires positive delta, batch and avgValue")
	}
	if c.Alpha <= 0 || c.Beta <= 0 || c.Beta >= 1 {
		panic("privacy: invalid calibration parameters")
	}
	return delta * math.Log(1/c.Beta) / (c.Alpha * float64(batch) * avgValue)
}

// ExpectedRMSRE returns the RMSRE contributed by Laplace noise alone for a
// query of true value total and sensitivity delta at privacy parameter eps:
// RMSRE = σ/|total| = √2·Δ/(ε·|total|). With the calibrated ε and
// total = B·c̃ this evaluates to √2·α/ln(1/β) ≈ 0.0154 ≈ the paper's
// "roughly 0.02 RMSRE".
func ExpectedRMSRE(delta, eps, total float64) float64 {
	if total == 0 {
		return math.Inf(1)
	}
	return NoiseStdDev(delta, eps) / math.Abs(total)
}
