package privacy

import (
	"math"

	"repro/internal/stats"
)

// GaussianMechanism is the L2-sensitivity counterpart of the Laplace
// mechanism, supporting the paper's p-norm generalization (§3.3: "2-norm for
// Gaussian"). The classic analytic calibration σ = Δ₂·√(2·ln(1.25/δ))/ε
// yields (ε, δ)-DP for ε ≤ 1. The paper's DP theorem (Thm. 1) is stated for
// pure DP with Laplace noise; the Gaussian path exists so deployments that
// aggregate with Gaussian noise (as some ARA configurations do) can reuse
// the same budgeting engine with PNorm = 2 — the on-device accounting via
// Eq. 4 (ε_x = Δ_x·√2/σ) carries over with Δ_x measured in L2.
type GaussianMechanism struct {
	rng *stats.RNG
}

// NewGaussianMechanism returns a mechanism drawing noise from rng.
func NewGaussianMechanism(rng *stats.RNG) *GaussianMechanism {
	return &GaussianMechanism{rng: rng}
}

// GaussianSigma returns the noise standard deviation for a query of L2
// sensitivity delta at (eps, delta')-DP: σ = Δ₂·√(2·ln(1.25/δ'))/ε.
// It panics on non-positive eps, negative delta, or delta' outside (0, 1).
func GaussianSigma(delta, eps, deltaPrime float64) float64 {
	if eps <= 0 {
		panic("privacy: non-positive epsilon")
	}
	if delta < 0 {
		panic("privacy: negative sensitivity")
	}
	if deltaPrime <= 0 || deltaPrime >= 1 {
		panic("privacy: delta' outside (0,1)")
	}
	return delta * math.Sqrt(2*math.Log(1.25/deltaPrime)) / eps
}

// Perturb adds independent Gaussian noise of standard deviation sigma to
// every coordinate of sum, in place, and returns sum.
func (m *GaussianMechanism) Perturb(sum []float64, sigma float64) []float64 {
	if sigma < 0 {
		panic("privacy: negative sigma")
	}
	for i := range sum {
		sum[i] += m.rng.Normal(0, sigma)
	}
	return sum
}

// GaussianTailBound returns t such that one Gaussian noise coordinate
// exceeds |t| with probability at most beta: t = σ·√(2·ln(1/β))
// (sub-Gaussian tail; slightly loose but simple).
func GaussianTailBound(sigma, beta float64) float64 {
	if beta <= 0 || beta >= 1 {
		panic("privacy: beta outside (0,1)")
	}
	if sigma < 0 {
		panic("privacy: negative sigma")
	}
	return sigma * math.Sqrt(2*math.Log(1/beta))
}
