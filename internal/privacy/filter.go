// Package privacy implements the differential-privacy primitives of the
// paper: pure-DP privacy filters (Rogers et al., "Privacy Odometers and
// Filters"), the Laplace mechanism, the ε-calibration rule used by the
// evaluation's queriers (§6.1), and the composition bounds of the formal
// analysis (unlinkability, Thm. 2; colluding queriers, Thm. 10).
package privacy

import (
	"errors"
	"fmt"
	"sync"
)

// ErrBudgetExhausted is returned by Filter.Consume when admitting a query
// would push cumulative privacy loss past the filter's capacity (the Halt
// outcome of Eq. 3).
var ErrBudgetExhausted = errors.New("privacy: budget exhausted")

// Filter is a pure-DP privacy filter with capacity ε^G: it admits a sequence
// of adaptively chosen privacy losses ε₁, ε₂, ... as long as their running
// sum stays at or below the capacity, and rejects (without consuming) any
// loss that would overflow it. Rejections leave the filter usable: a later,
// smaller loss may still be admitted, exactly as in Eq. 3.
//
// Filters are safe for concurrent use. The check-and-consume step is atomic,
// which the on-device engine relies on when several conversions race to
// deduct from the same epoch's filter (Listing 1, step 3).
type Filter struct {
	mu       sync.Mutex
	capacity float64
	consumed float64
}

// NewFilter returns a filter with the given budget capacity ε^G.
// It panics if capacity is negative.
func NewFilter(capacity float64) *Filter {
	if capacity < 0 {
		panic("privacy: negative filter capacity")
	}
	return &Filter{capacity: capacity}
}

// Consume atomically checks whether eps more privacy loss fits and, if so,
// deducts it. It returns ErrBudgetExhausted (consuming nothing) otherwise.
// It panics on negative eps: privacy loss is never negative, and silently
// accepting one would let callers refund budget.
func (f *Filter) Consume(eps float64) error {
	if eps < 0 {
		panic("privacy: negative privacy loss")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	// Tolerate float rounding at the boundary: admitting a loss that
	// overshoots capacity by a relative 1e-9 is treated as exact.
	if f.consumed+eps > f.capacity*(1+1e-9) {
		return ErrBudgetExhausted
	}
	f.consumed += eps
	if f.consumed > f.capacity {
		f.consumed = f.capacity
	}
	return nil
}

// CanConsume reports whether a loss of eps would currently be admitted.
// It is advisory only; use Consume for the atomic check-and-deduct.
func (f *Filter) CanConsume(eps float64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return eps >= 0 && f.consumed+eps <= f.capacity*(1+1e-9)
}

// Consumed returns the cumulative privacy loss admitted so far.
func (f *Filter) Consumed() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.consumed
}

// Remaining returns the budget left before the filter halts.
func (f *Filter) Remaining() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.capacity - f.consumed
}

// Capacity returns the filter's budget capacity ε^G.
func (f *Filter) Capacity() float64 { return f.capacity }

// Exhausted reports whether no strictly positive loss can be admitted.
func (f *Filter) Exhausted() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.consumed >= f.capacity
}

// String implements fmt.Stringer for debugging and the dashboard.
func (f *Filter) String() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return fmt.Sprintf("filter(%.4g/%.4g)", f.consumed, f.capacity)
}
