package privacy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestScale(t *testing.T) {
	if got := Scale(100, 2); got != 50 {
		t.Fatalf("Scale = %v", got)
	}
	if got := Scale(0, 1); got != 0 {
		t.Fatalf("Scale(0,1) = %v", got)
	}
}

func TestScalePanics(t *testing.T) {
	for _, tc := range []struct{ d, e float64 }{{1, 0}, {1, -1}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Scale(%v, %v) did not panic", tc.d, tc.e)
				}
			}()
			Scale(tc.d, tc.e)
		}()
	}
}

func TestEpsilonStdDevRoundTrip(t *testing.T) {
	// ε → σ → ε must be the identity (Eq. 4 consistency).
	for _, eps := range []float64{0.01, 0.5, 1, 3} {
		for _, delta := range []float64{1, 70, 100} {
			sigma := NoiseStdDev(delta, eps)
			back := EpsilonForStdDev(delta, sigma)
			if math.Abs(back-eps)/eps > 1e-12 {
				t.Fatalf("round trip eps=%v delta=%v gave %v", eps, delta, back)
			}
		}
	}
}

func TestEpsilonForStdDevScalesWithSensitivity(t *testing.T) {
	// The §3.2 example: with query sensitivity 100 and report sensitivity
	// 70, the device pays 70/100 of ε.
	const eps = 0.01
	sigma := NoiseStdDev(100, eps)
	paid := EpsilonForStdDev(70, sigma)
	if want := eps * 70.0 / 100.0; math.Abs(paid-want) > 1e-15 {
		t.Fatalf("paid %v, want %v", paid, want)
	}
}

func TestEpsilonForStdDevPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive sigma did not panic")
		}
	}()
	EpsilonForStdDev(1, 0)
}

func TestPerturbChangesAndPreservesLength(t *testing.T) {
	m := NewLaplaceMechanism(stats.NewRNG(1))
	in := []float64{10, 20, 30}
	out := m.Perturb(in, 1, 1)
	if len(out) != 3 {
		t.Fatalf("length changed: %v", out)
	}
	if out[0] == 10 && out[1] == 20 && out[2] == 30 {
		t.Fatal("no noise was added")
	}
}

func TestPerturbIsCalibratedDP(t *testing.T) {
	// Empirically verify the noise magnitude matches Δ/ε: the mean
	// absolute noise of Laplace(b) is b.
	m := NewLaplaceMechanism(stats.NewRNG(2))
	const delta, eps = 100.0, 0.5
	const n = 100000
	sumAbs := 0.0
	for i := 0; i < n; i++ {
		v := m.Perturb([]float64{0}, delta, eps)
		sumAbs += math.Abs(v[0])
	}
	got := sumAbs / n
	want := delta / eps
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("mean |noise| = %v, want ~%v", got, want)
	}
}

func TestTailBound(t *testing.T) {
	// β=1/e gives exactly b.
	b := TailBound(2, 1, 1/math.E)
	if math.Abs(b-2) > 1e-12 {
		t.Fatalf("TailBound = %v", b)
	}
}

func TestTailBoundEmpirical(t *testing.T) {
	rng := stats.NewRNG(3)
	const delta, eps, beta = 1.0, 1.0, 0.05
	bound := TailBound(delta, eps, beta)
	const n = 100000
	exceed := 0
	for i := 0; i < n; i++ {
		if math.Abs(rng.Laplace(Scale(delta, eps))) > bound {
			exceed++
		}
	}
	if frac := float64(exceed) / n; frac > 1.5*beta {
		t.Fatalf("tail fraction %v > 1.5β", frac)
	}
}

func TestTailBoundPanics(t *testing.T) {
	for _, beta := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("TailBound beta=%v did not panic", beta)
				}
			}()
			TailBound(1, 1, beta)
		}()
	}
}

func TestNoiseStdDevMonotoneQuick(t *testing.T) {
	// Smaller ε (more privacy) must mean more noise.
	f := func(rawE1, rawE2, rawD float64) bool {
		e1 := math.Mod(math.Abs(rawE1), 10) + 1e-6
		e2 := math.Mod(math.Abs(rawE2), 10) + 1e-6
		d := math.Mod(math.Abs(rawD), 100) + 1e-6
		if math.IsNaN(e1) || math.IsNaN(e2) || math.IsNaN(d) {
			return true
		}
		if e1 > e2 {
			e1, e2 = e2, e1
		}
		return NoiseStdDev(d, e1) >= NoiseStdDev(d, e2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
