package privacy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIndividualDPBound(t *testing.T) {
	if IndividualDPBound(1.0, true) != 1.0 {
		t.Fatal("constrained bound should be ε^G")
	}
	if IndividualDPBound(1.0, false) != 2.0 {
		t.Fatal("general bound should be 2ε^G")
	}
}

func TestUnlinkabilityBound(t *testing.T) {
	// Thm. 2: 2ε_{d0} + ε_{d1}.
	if got := UnlinkabilityBound(1.0, 0.5); got != 2.5 {
		t.Fatalf("UnlinkabilityBound = %v", got)
	}
	// Symmetric budgets: 3ε.
	if got := UnlinkabilityBound(1, 1); got != 3 {
		t.Fatalf("UnlinkabilityBound = %v", got)
	}
}

func TestCollusionBound(t *testing.T) {
	eps := []float64{0.5, 1.0, 0.25}
	if got := CollusionBound(eps, false); got != 3.5 {
		t.Fatalf("general collusion = %v", got)
	}
	if got := CollusionBound(eps, true); got != 1.75 {
		t.Fatalf("constrained collusion = %v", got)
	}
	if CollusionBound(nil, false) != 0 {
		t.Fatal("empty collusion not 0")
	}
}

func TestSequentialComposition(t *testing.T) {
	if got := SequentialComposition([]float64{0.1, 0.2, 0.3}); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("SequentialComposition = %v", got)
	}
	if SequentialComposition(nil) != 0 {
		t.Fatal("empty composition not 0")
	}
}

// Collusion of constrained queriers is never worse than unconstrained,
// and single-querier collusion reduces to the individual bound.
func TestCollusionConsistencyQuick(t *testing.T) {
	f := func(raw []float64) bool {
		eps := make([]float64, 0, len(raw))
		for _, e := range raw {
			v := math.Mod(math.Abs(e), 10)
			if math.IsNaN(v) {
				continue
			}
			eps = append(eps, v)
		}
		gen := CollusionBound(eps, false)
		con := CollusionBound(eps, true)
		if con > gen {
			return false
		}
		if len(eps) == 1 {
			if con != IndividualDPBound(eps[0], true) {
				return false
			}
			if gen != IndividualDPBound(eps[0], false) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
