package privacy

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestFilterConsumeWithinCapacity(t *testing.T) {
	f := NewFilter(1.0)
	for i := 0; i < 10; i++ {
		if err := f.Consume(0.1); err != nil {
			t.Fatalf("consume %d failed: %v", i, err)
		}
	}
	if got := f.Consumed(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("consumed = %v", got)
	}
	if err := f.Consume(0.01); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("overflow consume err = %v", err)
	}
}

func TestFilterRejectDoesNotConsume(t *testing.T) {
	f := NewFilter(1.0)
	if err := f.Consume(0.9); err != nil {
		t.Fatal(err)
	}
	// A too-large request is rejected...
	if err := f.Consume(0.5); err == nil {
		t.Fatal("expected rejection")
	}
	// ...but a smaller one still fits: rejections must not consume.
	if err := f.Consume(0.1); err != nil {
		t.Fatalf("post-rejection consume failed: %v", err)
	}
}

func TestFilterZeroLossAlwaysAdmitted(t *testing.T) {
	f := NewFilter(0)
	for i := 0; i < 5; i++ {
		if err := f.Consume(0); err != nil {
			t.Fatalf("zero loss rejected: %v", err)
		}
	}
	if err := f.Consume(1e-9); err == nil {
		t.Fatal("zero-capacity filter admitted positive loss")
	}
}

func TestFilterNegativeLossPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative loss did not panic")
		}
	}()
	NewFilter(1).Consume(-0.1)
}

func TestFilterNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative capacity did not panic")
		}
	}()
	NewFilter(-1)
}

func TestFilterAccessors(t *testing.T) {
	f := NewFilter(2)
	if f.Capacity() != 2 || f.Remaining() != 2 || f.Consumed() != 0 || f.Exhausted() {
		t.Fatal("fresh filter accessors wrong")
	}
	f.Consume(0.5)
	if f.Remaining() != 1.5 || f.Consumed() != 0.5 {
		t.Fatal("accessors after consume wrong")
	}
	if !f.CanConsume(1.5) || f.CanConsume(1.6) {
		t.Fatal("CanConsume wrong")
	}
	if f.CanConsume(-1) {
		t.Fatal("CanConsume(-1) should be false")
	}
	f.Consume(1.5)
	if !f.Exhausted() {
		t.Fatal("full filter not exhausted")
	}
}

func TestFilterString(t *testing.T) {
	f := NewFilter(1)
	f.Consume(0.25)
	if got := f.String(); got != "filter(0.25/1)" {
		t.Fatalf("String = %q", got)
	}
}

func TestFilterFloatBoundary(t *testing.T) {
	// Ten consumptions of 0.1 must exactly fill a capacity-1 filter even
	// though 0.1 is not exactly representable.
	f := NewFilter(1)
	for i := 0; i < 10; i++ {
		if err := f.Consume(0.1); err != nil {
			t.Fatalf("boundary consume %d rejected: %v", i, err)
		}
	}
	if f.Remaining() < 0 {
		t.Fatalf("remaining went negative: %v", f.Remaining())
	}
}

// The filter invariant: no interleaving of accepted consumptions exceeds
// capacity.
func TestFilterConcurrentNeverOverConsumes(t *testing.T) {
	const capacity = 1.0
	const workers = 32
	const perWorker = 200
	f := NewFilter(capacity)
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := 0.0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				eps := 0.001 * float64(seed%5+1)
				if f.Consume(eps) == nil {
					mu.Lock()
					accepted += eps
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if accepted > capacity*(1+1e-6) {
		t.Fatalf("accepted %v > capacity %v", accepted, capacity)
	}
	if math.Abs(accepted-f.Consumed()) > 1e-6 {
		t.Fatalf("ledger mismatch: accepted %v, filter says %v", accepted, f.Consumed())
	}
}

// Property: for any sequence of non-negative losses, the filter admits a
// prefix-closed subset whose sum never exceeds capacity, and admits any loss
// that fits.
func TestFilterSequentialCompositionQuick(t *testing.T) {
	f := func(rawLosses []float64, rawCap float64) bool {
		capacity := math.Mod(math.Abs(rawCap), 10)
		if math.IsNaN(capacity) {
			return true
		}
		fil := NewFilter(capacity)
		var admitted []float64
		for _, rl := range rawLosses {
			loss := math.Mod(math.Abs(rl), 1)
			if math.IsNaN(loss) {
				continue
			}
			fits := SequentialComposition(admitted)+loss <= capacity*(1+1e-9)
			err := fil.Consume(loss)
			if fits && err != nil {
				return false // fitting loss was rejected
			}
			if err == nil {
				admitted = append(admitted, loss)
			}
		}
		return SequentialComposition(admitted) <= capacity*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
