package privacy

import (
	"math"
	"testing"
)

// refRestore extends the ledger_test reference model with Ledger.Restore's
// semantics: refuse corrupt rows, refund attempts, and epochs below the
// floor; clamp consumed to capacity; honor a per-slot capacity by giving the
// slot its own Filter with that capacity.
func (r *filterMapRef) restore(q string, e int64, consumed, capacity float64) bool {
	if consumed < 0 || capacity < 0 || consumed > capacity*(1+1e-9) {
		return false
	}
	if e < r.floor {
		return false
	}
	byEpoch := r.budgets[q]
	if byEpoch == nil {
		byEpoch = make(map[int64]*Filter)
		r.budgets[q] = byEpoch
	}
	if f := byEpoch[e]; f != nil && f.Consumed() > consumed {
		return false // refund
	}
	if consumed > capacity {
		consumed = capacity
	}
	f := NewFilter(capacity)
	if consumed > 0 {
		if err := f.Consume(consumed); err != nil {
			return false
		}
	}
	byEpoch[e] = f
	return true
}

// FuzzLedgerChargeWindow decodes arbitrary bytes into an operation sequence
// — single charges, whole-window charges, retention-floor advances, and
// snapshot restores (the checkpoint/recovery path, with per-slot capacity
// overrides) — and drives the flat Ledger and the map-of-filters reference
// model through it in lockstep. Every outcome, every read, and the full
// final slot table must match bitwise. This is the property test from
// ledger_test.go with fuzzer-chosen interleavings instead of a fixed random
// schedule: the charge/evict/restore orderings a crash-recovery cycle
// produces are exactly the ones hand-picked schedules miss.
func FuzzLedgerChargeWindow(f *testing.F) {
	// Seeds: a plain charge run; charges straddling a floor advance;
	// restore-then-charge (recovery); restore below floor and refund
	// attempts; window charges with zero-loss epochs.
	f.Add([]byte{2, 100, 200, 50, 255, 30})
	f.Add([]byte{2, 100, 0, 28, 100, 140, 120, 180})
	f.Add([]byte{3, 2, 10, 120, 200, 2, 10, 60, 100, 100, 10, 255})
	f.Add([]byte{1, 0, 40, 2, 5, 200, 100, 150, 2, 5, 90, 255})
	f.Add([]byte{0, 1, 20, 3, 0, 128, 0, 255, 64})

	queriers := []string{"nike.com", "adidas.com", "criteo.com"}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// The first byte picks the shared capacity ε^G (including the
		// degenerate 0, where every positive charge denies). The op stream
		// is capped so a single exec stays microseconds — interleaving
		// coverage comes from many executions, not long ones.
		capacity := []float64{0, 0.01, 1, 5}[int(data[0])%4]
		data = data[1:]
		if len(data) > 256 {
			data = data[:256]
		}
		l := NewLedger(capacity)
		ref := newFilterMapRef(capacity)

		next := func() (byte, bool) {
			if len(data) == 0 {
				return 0, false
			}
			b := data[0]
			data = data[1:]
			return b, true
		}
		eps := func(b byte) float64 { return float64(b) / 255 * (capacity*1.3 + 0.01) }

		for {
			op, ok := next()
			if !ok {
				break
			}
			qb, _ := next()
			eb, _ := next()
			q := queriers[int(qb)%len(queriers)]
			e := int64(int(eb)%60 - 10)
			switch op % 5 {
			case 0: // floor advance (sometimes backwards: must be a no-op)
				if got, want := l.AdvanceFloor(e), ref.advanceFloor(e); got != want {
					t.Fatalf("AdvanceFloor(%d) released %d, ref %d", e, got, want)
				}
			case 1: // whole-window charge with a fuzzer-chosen loss vector
				kb, _ := next()
				k := int(kb)%7 + 1
				losses := make([]float64, k)
				for i := range losses {
					lb, _ := next()
					if lb%4 != 0 { // keep genuine zero-loss epochs in the mix
						losses[i] = eps(lb)
					}
				}
				outcomes := make([]ChargeOutcome, k)
				l.ChargeWindow(q, e, losses, outcomes)
				for i, lossI := range losses {
					if want := ref.charge(q, e+int64(i), lossI); outcomes[i] != want {
						t.Fatalf("window outcome[%d] at epoch %d = %v, ref %v",
							i, e+int64(i), outcomes[i], want)
					}
				}
			case 2: // snapshot restore, possibly with a capacity override
				cb, _ := next()
				vb, _ := next()
				slotCap := capacity
				if cb%2 == 0 {
					slotCap = float64(cb) / 255 * 4
				}
				consumed := float64(vb) / 255 * slotCap * 1.05 // sometimes above capacity
				gotErr := l.Restore(q, e, consumed, slotCap) != nil
				wantErr := !ref.restore(q, e, consumed, slotCap)
				if gotErr != wantErr {
					t.Fatalf("Restore(%s, %d, %v, %v) error=%t, ref error=%t",
						q, e, consumed, slotCap, gotErr, wantErr)
				}
			default: // single charge
				lb, _ := next()
				loss := 0.0
				if lb%4 != 0 {
					loss = eps(lb)
				}
				if got, want := l.Charge(q, e, loss), ref.charge(q, e, loss); got != want {
					t.Fatalf("Charge(%s, %d, %v) = %v, ref %v", q, e, loss, got, want)
				}
			}
			// Read-back after every op.
			if got, want := l.Consumed(q, e), ref.consumed(q, e); got != want {
				t.Fatalf("Consumed(%s, %d) = %v, ref %v", q, e, got, want)
			}
		}

		// Full final state: floor, totals, and every slot bitwise.
		if l.Floor() != ref.floor {
			t.Fatalf("floor %d, ref %d", l.Floor(), ref.floor)
		}
		want := ref.rows()
		for _, row := range l.Rows() {
			wantC, ok := want[row.Querier][row.Epoch]
			if !ok {
				t.Fatalf("ledger has slot %s/%d the reference lacks", row.Querier, row.Epoch)
			}
			if row.Consumed != wantC {
				t.Fatalf("slot %s/%d consumed %v, ref %v", row.Querier, row.Epoch, row.Consumed, wantC)
			}
			if refCap := ref.budgets[row.Querier][row.Epoch].Capacity(); row.Capacity != refCap {
				t.Fatalf("slot %s/%d capacity %v, ref %v", row.Querier, row.Epoch, row.Capacity, refCap)
			}
			delete(want[row.Querier], row.Epoch)
		}
		for q, byEpoch := range want {
			for e, c := range byEpoch {
				// The reference creates a filter row even for an untouched
				// denial at capacity 0 — so does the ledger; anything left
				// here is a slot the ledger dropped.
				if !math.IsNaN(c) {
					t.Fatalf("reference has slot %s/%d (consumed %v) the ledger lacks", q, e, c)
				}
			}
		}
	})
}
