package privacy

import (
	"fmt"
	"slices"
	"sync"
)

// ChargeOutcome is the per-epoch result of a ledger charge — the three-way
// branch of Listing 1's step 3 plus the zero-loss shortcut.
type ChargeOutcome uint8

const (
	// ChargeZero: no loss was requested; the epoch's slot is untouched and
	// its events survive (the zero-loss optimization of Thm. 4 case 1).
	ChargeZero ChargeOutcome = iota
	// ChargeOK: the loss fit and was deducted; the epoch's events survive.
	ChargeOK
	// ChargeDenied: admitting the loss would overflow the slot's capacity
	// (the Halt outcome of Eq. 3); nothing was deducted. The slot is still
	// initialized, exactly as a rejected Filter was still created.
	ChargeDenied
	// ChargeEvicted: the epoch sits below the retention floor; it is
	// permanently out of scope and nothing was deducted.
	ChargeEvicted
)

// Ledger is the flat on-device budget table: for each querier, a dense array
// of consumed-ε slots covering the live attribution window, all sharing one
// capacity ε^G and one mutex. It replaces a map[querier]map[epoch]*Filter —
// and with it the per-epoch pointer chase, the per-Filter mutex, and the
// per-Filter allocation — on the report hot path, while keeping Filter
// semantics slot for slot: the same check-and-consume arithmetic, the same
// 1e-9 boundary tolerance, the same "a rejected charge still initializes the
// slot" behavior.
//
// The ledger is floor-aware: epochs strictly below the retention floor are
// permanently out of scope, and AdvanceFloor recycles their slots in O(1)
// per querier by re-slicing the lane head forward instead of deleting map
// entries (only counting the released slots is linear in what was dropped).
// Lanes grow lazily to span exactly the epochs a querier has touched, so
// memory stays proportional to the live window.
//
// All methods are safe for concurrent use; ChargeWindow performs a whole
// report's check-and-consume sequence under a single lock acquisition.
type Ledger struct {
	mu       sync.Mutex
	capacity float64
	floor    int64
	lanes    map[string]*ledgerLane
	// denials counts ChargeDenied outcomes over the ledger's lifetime —
	// the budget-drain telemetry behind the hostile-traffic scenarios.
	// It never influences charge outcomes, but it is persisted in
	// snapshots (and restored via RestoreDenials) so the drain telemetry
	// survives crash recovery.
	denials uint64
	// version counts observable mutations — slot initializations, charges,
	// denials, floor advances, restores. The incremental checkpointer
	// compares it against the version it last captured to decide whether a
	// device's ledger is dirty, so every path that can change Rows() or
	// Denials() output must bump it.
	version uint64
	// capOv holds per-slot capacity overrides, populated only when Restore
	// loads a snapshot row whose capacity differs from the ledger's. nil in
	// every live-traffic ledger, so the hot path never consults it.
	capOv map[string]map[int64]float64
}

// ledgerLane is one querier's dense slot array: consumed[i] is the budget
// consumed from epoch base+i, with untouchedSlot marking slots whose epoch
// was never charged (the analogue of "no Filter was ever created").
type ledgerLane struct {
	base     int64
	consumed []float64
}

// untouchedSlot marks a slot whose (querier, epoch) filter was never
// initialized. Consumed loss is never negative, so the sentinel is
// unambiguous.
const untouchedSlot = -1

// LedgerEntry is one initialized (querier, epoch) slot, the unit of the
// dashboard and persistence snapshots.
type LedgerEntry struct {
	Querier  string
	Epoch    int64
	Consumed float64
	Capacity float64
}

// NewLedger returns a ledger whose slots all have budget capacity ε^G.
// It panics if capacity is negative.
func NewLedger(capacity float64) *Ledger {
	if capacity < 0 {
		panic("privacy: negative ledger capacity")
	}
	return &Ledger{
		capacity: capacity,
		floor:    -1 << 31,
		lanes:    make(map[string]*ledgerLane),
	}
}

// Capacity returns the uniform per-slot budget capacity ε^G.
func (l *Ledger) Capacity() float64 { return l.capacity }

// Floor returns the current retention floor: epochs strictly below it are
// permanently out of scope.
func (l *Ledger) Floor() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.floor
}

// slot returns a pointer to the lane's slot for epoch e, growing the dense
// array in either direction as needed. Growth toward older epochs copies
// (attribution windows reach back a bounded number of epochs); growth toward
// newer epochs is an amortized-O(1) append.
func (ln *ledgerLane) slot(e int64) *float64 {
	if len(ln.consumed) == 0 {
		ln.base = e
		ln.consumed = append(ln.consumed[:0], untouchedSlot)
		return &ln.consumed[0]
	}
	if e < ln.base {
		grow := int(ln.base - e)
		widened := make([]float64, grow+len(ln.consumed))
		for i := 0; i < grow; i++ {
			widened[i] = untouchedSlot
		}
		copy(widened[grow:], ln.consumed)
		ln.consumed = widened
		ln.base = e
	}
	for int(e-ln.base) >= len(ln.consumed) {
		ln.consumed = append(ln.consumed, untouchedSlot)
	}
	return &ln.consumed[e-ln.base]
}

// lane returns (lazily creating) querier q's slot array.
func (l *Ledger) lane(q string) *ledgerLane {
	ln := l.lanes[q]
	if ln == nil {
		ln = &ledgerLane{}
		l.lanes[q] = ln
	}
	return ln
}

// capAt returns the capacity in force for one slot: the uniform ε^G unless a
// restored snapshot recorded an override.
func (l *Ledger) capAt(q string, e int64) float64 {
	if l.capOv != nil {
		if byEpoch := l.capOv[q]; byEpoch != nil {
			if c, ok := byEpoch[e]; ok {
				return c
			}
		}
	}
	return l.capacity
}

// chargeSlotLocked is the slot-level check-and-consume on an already-resolved
// lane. Caller holds l.mu.
func (l *Ledger) chargeSlotLocked(ln *ledgerLane, q string, e int64, eps float64) ChargeOutcome {
	// Every path below mutates persisted state: a denial initializes the
	// slot and counts, a success deducts.
	l.version++
	c := ln.slot(e)
	if *c == untouchedSlot {
		*c = 0
	}
	limit := l.capAt(q, e)
	// Tolerate float rounding at the boundary, exactly as Filter.Consume.
	if *c+eps > limit*(1+1e-9) {
		l.denials++
		return ChargeDenied
	}
	*c += eps
	if *c > limit {
		*c = limit
	}
	return ChargeOK
}

// chargeLocked is the single check-and-consume path. Caller holds l.mu.
func (l *Ledger) chargeLocked(q string, e int64, eps float64) ChargeOutcome {
	if eps < 0 {
		// Privacy loss is never negative; accepting one would refund budget.
		panic("privacy: negative privacy loss")
	}
	if eps == 0 {
		return ChargeZero
	}
	if e < l.floor {
		return ChargeEvicted
	}
	return l.chargeSlotLocked(l.lane(q), q, e, eps)
}

// chargeWindowLocked is one window's charge sequence with the lane lookup
// hoisted out of the per-epoch loop. The lane resolves on the first epoch
// that actually charges (eps > 0, at or above the floor), so lazy lane
// creation is exactly as observable as per-epoch chargeLocked calls.
func (l *Ledger) chargeWindowLocked(q string, first int64, losses []float64, outcomes []ChargeOutcome) {
	var ln *ledgerLane
	for i, eps := range losses {
		switch {
		case eps < 0:
			panic("privacy: negative privacy loss")
		case eps == 0:
			outcomes[i] = ChargeZero
		case first+int64(i) < l.floor:
			outcomes[i] = ChargeEvicted
		default:
			if ln == nil {
				ln = l.lane(q)
			}
			outcomes[i] = l.chargeSlotLocked(ln, q, first+int64(i), eps)
		}
	}
}

// Charge atomically checks whether eps more privacy loss fits into querier
// q's slot for epoch e and, if so, deducts it.
func (l *Ledger) Charge(q string, e int64, eps float64) ChargeOutcome {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.chargeLocked(q, e, eps)
}

// ChargeWindow runs the check-and-consume sequence for a whole attribution
// window under one lock acquisition: losses[i] is the loss requested from
// epoch first+i, and outcomes[i] receives the per-epoch result. Epochs are
// charged independently in ascending order, so the outcomes are identical to
// len(losses) individual Charge calls — the batching only amortizes the lock.
// It panics if outcomes is shorter than losses.
func (l *Ledger) ChargeWindow(q string, first int64, losses []float64, outcomes []ChargeOutcome) {
	_ = outcomes[:len(losses)]
	l.mu.Lock()
	defer l.mu.Unlock()
	l.chargeWindowLocked(q, first, losses, outcomes)
}

// WindowCharge is one report's whole-window check-and-consume in a batched
// charge: Losses[i] is the loss requested from epoch First+i by Querier, and
// Outcomes[i] receives the per-epoch result. Losses and Outcomes are caller
// buffers; ChargeWindowBatch only reads Losses and writes Outcomes.
type WindowCharge struct {
	Querier  string
	First    int64
	Losses   []float64
	Outcomes []ChargeOutcome
}

// ChargeWindowBatch runs several reports' check-and-consume sequences under
// a single lock acquisition: charges execute in slice order, each window's
// epochs in ascending order — the exact sequence len(charges) individual
// ChargeWindow calls would produce, so outcomes are bit-identical to the
// one-at-a-time path by construction. This is the generate stage's
// per-device vectorized charge: a device visited by Q same-day queriers
// takes one ledger lock instead of Q.
// It panics if any charge's Outcomes is shorter than its Losses.
func (l *Ledger) ChargeWindowBatch(charges []WindowCharge) {
	for i := range charges {
		_ = charges[i].Outcomes[:len(charges[i].Losses)]
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ch := range charges {
		l.chargeWindowLocked(ch.Querier, ch.First, ch.Losses, ch.Outcomes)
	}
}

// Denials returns the number of charges this ledger has denied for lack of
// budget, across all queriers and epochs. Every denial path (Charge,
// ChargeWindow, ChargeWindowBatch) counts here; evicted-epoch and zero-loss
// outcomes do not.
func (l *Ledger) Denials() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.denials
}

// RestoreDenials reinstates a persisted denial count. The counter only ever
// grows, so restore keeps the larger of the two — a fresh ledger takes the
// snapshot's count, and replaying an old snapshot over live state never
// loses denials.
func (l *Ledger) RestoreDenials(n uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > l.denials {
		l.denials = n
		l.version++
	}
}

// Version returns the mutation counter: it advances on every observable
// change to the ledger's persisted state (slot initializations, charges,
// denials, floor advances, restores). The incremental checkpointer uses it
// as the dirty bit — equal versions guarantee identical Rows() and
// Denials() output.
func (l *Ledger) Version() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.version
}

// Consumed returns the privacy loss consumed so far by querier q from epoch
// e (0 if the slot was never touched or was recycled by a floor advance).
func (l *Ledger) Consumed(q string, e int64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	ln := l.lanes[q]
	if ln == nil {
		return 0
	}
	i := e - ln.base
	if i < 0 || int(i) >= len(ln.consumed) || ln.consumed[i] == untouchedSlot {
		return 0
	}
	return ln.consumed[i]
}

// NumQueriers returns the number of queriers with a lane (touched at least
// once, even if every slot has since been recycled) — the pre-sizing hint
// for per-querier aggregation maps.
func (l *Ledger) NumQueriers() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.lanes)
}

// RangeTotals calls fn once per querier with the querier's total consumed
// budget across all live epochs. Each total accumulates in ascending epoch
// order — the dense array's natural order — so the float sums are
// deterministic run-to-run; querier visit order is unspecified.
func (l *Ledger) RangeTotals(fn func(q string, total float64)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for q, ln := range l.lanes {
		sum := 0.0
		for _, c := range ln.consumed {
			if c != untouchedSlot {
				sum += c
			}
		}
		fn(q, sum)
	}
}

// Rows returns a snapshot of every initialized slot, sorted by querier then
// epoch — the Fig. 1 dashboard view and the persistence snapshot source.
func (l *Ledger) Rows() []LedgerEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var rows []LedgerEntry
	for q, ln := range l.lanes {
		for i, c := range ln.consumed {
			if c == untouchedSlot {
				continue
			}
			e := ln.base + int64(i)
			rows = append(rows, LedgerEntry{
				Querier:  q,
				Epoch:    e,
				Consumed: c,
				Capacity: l.capAt(q, e),
			})
		}
	}
	slices.SortFunc(rows, func(a, b LedgerEntry) int {
		if a.Querier != b.Querier {
			if a.Querier < b.Querier {
				return -1
			}
			return 1
		}
		switch {
		case a.Epoch < b.Epoch:
			return -1
		case a.Epoch > b.Epoch:
			return 1
		}
		return 0
	})
	return rows
}

// AdvanceFloor raises the retention floor and recycles the slots of evicted
// epochs. The floor never moves backwards; calls with a lower value are
// no-ops. It returns the number of initialized slots released. Dropping a
// lane's dead prefix is a re-slice — O(1) per querier — with only the
// released-slot count costing a scan of what was dropped.
func (l *Ledger) AdvanceFloor(floor int64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if floor <= l.floor {
		return 0
	}
	l.floor = floor
	l.version++
	released := 0
	for _, ln := range l.lanes {
		if floor <= ln.base || len(ln.consumed) == 0 {
			continue
		}
		drop := int(floor - ln.base)
		if drop > len(ln.consumed) {
			drop = len(ln.consumed)
		}
		for _, c := range ln.consumed[:drop] {
			if c != untouchedSlot {
				released++
			}
		}
		ln.consumed = ln.consumed[drop:]
		ln.base += int64(drop)
	}
	for q, byEpoch := range l.capOv {
		for e := range byEpoch {
			if e < floor {
				delete(byEpoch, e)
			}
		}
		if len(byEpoch) == 0 {
			delete(l.capOv, q)
		}
	}
	return released
}

// Restore sets one slot's state from a persisted snapshot row. It refuses to
// lower a slot's consumed budget (replaying an old snapshot must never
// refund privacy loss) and to resurrect an epoch below the retention floor.
// A capacity differing from the ledger's ε^G is honored per slot, as the old
// per-filter table did.
func (l *Ledger) Restore(q string, e int64, consumed, capacity float64) error {
	if consumed < 0 || capacity < 0 || consumed > capacity*(1+1e-9) {
		return fmt.Errorf("privacy: corrupt ledger slot %s/%d: %v of %v", q, e, consumed, capacity)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if e < l.floor {
		return fmt.Errorf("privacy: restoring evicted epoch %d below floor %d", e, l.floor)
	}
	l.version++
	c := l.lane(q).slot(e)
	if *c != untouchedSlot && *c > consumed {
		return fmt.Errorf("privacy: restore would refund budget for %s epoch %d", q, e)
	}
	if consumed > capacity {
		consumed = capacity
	}
	*c = consumed
	if capacity != l.capacity {
		if l.capOv == nil {
			l.capOv = make(map[string]map[int64]float64)
		}
		if l.capOv[q] == nil {
			l.capOv[q] = make(map[int64]float64)
		}
		l.capOv[q][e] = capacity
	} else if l.capOv != nil && l.capOv[q] != nil {
		delete(l.capOv[q], e)
	}
	return nil
}
