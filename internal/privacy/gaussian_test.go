package privacy

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestGaussianSigmaFormula(t *testing.T) {
	// σ = Δ·√(2·ln(1.25/δ))/ε
	got := GaussianSigma(2, 0.5, 1e-5)
	want := 2 * math.Sqrt(2*math.Log(1.25/1e-5)) / 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("sigma = %v, want %v", got, want)
	}
}

func TestGaussianSigmaPanics(t *testing.T) {
	cases := []func(){
		func() { GaussianSigma(1, 0, 1e-5) },
		func() { GaussianSigma(-1, 1, 1e-5) },
		func() { GaussianSigma(1, 1, 0) },
		func() { GaussianSigma(1, 1, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestGaussianPerturbMoments(t *testing.T) {
	m := NewGaussianMechanism(stats.NewRNG(1))
	const sigma = 3.0
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := m.Perturb([]float64{0}, sigma)
		sum += v[0]
		sumSq += v[0] * v[0]
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("noise mean %v", mean)
	}
	if want := sigma * sigma; math.Abs(variance-want)/want > 0.03 {
		t.Fatalf("noise variance %v, want ~%v", variance, want)
	}
}

func TestGaussianPerturbZeroSigma(t *testing.T) {
	m := NewGaussianMechanism(stats.NewRNG(2))
	v := m.Perturb([]float64{5}, 0)
	if v[0] != 5 {
		t.Fatalf("zero-sigma perturb changed value: %v", v[0])
	}
}

func TestGaussianPerturbNegativeSigmaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative sigma did not panic")
		}
	}()
	NewGaussianMechanism(stats.NewRNG(3)).Perturb([]float64{1}, -1)
}

func TestGaussianTailBoundEmpirical(t *testing.T) {
	rng := stats.NewRNG(4)
	const sigma, beta = 1.0, 0.01
	bound := GaussianTailBound(sigma, beta)
	const n = 200000
	exceed := 0
	for i := 0; i < n; i++ {
		if math.Abs(rng.Normal(0, sigma)) > bound {
			exceed++
		}
	}
	// The sub-Gaussian bound is conservative: observed tail ≤ β.
	if frac := float64(exceed) / n; frac > beta*1.5 {
		t.Fatalf("tail fraction %v > 1.5β", frac)
	}
}

func TestGaussianTailBoundPanics(t *testing.T) {
	for _, beta := range []float64{0, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("beta=%v did not panic", beta)
				}
			}()
			GaussianTailBound(1, beta)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative sigma did not panic")
			}
		}()
		GaussianTailBound(-1, 0.5)
	}()
}

func TestGaussianBeatsLaplaceInHighDimensions(t *testing.T) {
	// The reason the p-norm generality matters: for an m-dimensional
	// histogram with per-coordinate contributions, Δ₁ = m·a but
	// Δ₂ = √m·a, so Gaussian noise per coordinate grows as √m rather
	// than m.
	const m = 64
	const a = 1.0
	laplacePerCoord := Scale(m*a, 1.0) // Δ₁/ε
	gaussPerCoord := GaussianSigma(math.Sqrt(m)*a, 1.0, 1e-9)
	if gaussPerCoord >= laplacePerCoord {
		t.Fatalf("Gaussian (%v) should beat Laplace (%v) at m=%d",
			gaussPerCoord, laplacePerCoord, m)
	}
}
