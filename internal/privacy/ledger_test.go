package privacy

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// filterMapRef is the old map-of-filters budget table — the implementation
// the flat ledger replaced — kept here as the reference model for the
// property test: over any sequence of charges, denials, floor advances, and
// reads, the ledger must hold exactly the state the per-(querier, epoch)
// Filter table would.
type filterMapRef struct {
	capacity float64
	floor    int64
	budgets  map[string]map[int64]*Filter
}

func newFilterMapRef(capacity float64) *filterMapRef {
	return &filterMapRef{
		capacity: capacity,
		floor:    -1 << 31,
		budgets:  make(map[string]map[int64]*Filter),
	}
}

// charge replicates Device.filter + Filter.Consume: floor check, lazy filter
// creation (also on the denial path), atomic check-and-consume.
func (r *filterMapRef) charge(q string, e int64, eps float64) ChargeOutcome {
	if eps == 0 {
		return ChargeZero
	}
	if e < r.floor {
		return ChargeEvicted
	}
	byEpoch := r.budgets[q]
	if byEpoch == nil {
		byEpoch = make(map[int64]*Filter)
		r.budgets[q] = byEpoch
	}
	f := byEpoch[e]
	if f == nil {
		f = NewFilter(r.capacity)
		byEpoch[e] = f
	}
	if err := f.Consume(eps); err != nil {
		return ChargeDenied
	}
	return ChargeOK
}

func (r *filterMapRef) consumed(q string, e int64) float64 {
	if byEpoch := r.budgets[q]; byEpoch != nil {
		if f := byEpoch[e]; f != nil {
			return f.Consumed()
		}
	}
	return 0
}

// advanceFloor replicates Device.SetEpochFloor: evict filters below the
// floor, count the released ones, never move backwards.
func (r *filterMapRef) advanceFloor(floor int64) int {
	if floor <= r.floor {
		return 0
	}
	r.floor = floor
	released := 0
	for _, byEpoch := range r.budgets {
		for e := range byEpoch {
			if e < floor {
				delete(byEpoch, e)
				released++
			}
		}
	}
	return released
}

func (r *filterMapRef) rows() map[string]map[int64]float64 {
	out := make(map[string]map[int64]float64)
	for q, byEpoch := range r.budgets {
		for e, f := range byEpoch {
			if out[q] == nil {
				out[q] = make(map[int64]float64)
			}
			out[q][e] = f.Consumed()
		}
	}
	return out
}

// TestLedgerMatchesFilterMapReference drives the flat ledger and the old
// map-of-filters table through identical randomized charge/deny/evict
// sequences and asserts bit-identical state after every operation.
func TestLedgerMatchesFilterMapReference(t *testing.T) {
	queriers := []string{"nike.com", "adidas.com", "criteo.com"}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		capacity := []float64{0, 0.01, 1, 5}[rng.Intn(4)]
		l := NewLedger(capacity)
		ref := newFilterMapRef(capacity)

		for op := 0; op < 400; op++ {
			switch rng.Intn(10) {
			case 0: // floor advance (sometimes backwards, must be a no-op)
				floor := int64(rng.Intn(60) - 10)
				got, want := l.AdvanceFloor(floor), ref.advanceFloor(floor)
				if got != want {
					t.Fatalf("seed %d op %d: AdvanceFloor(%d) released %d, ref %d",
						seed, op, floor, got, want)
				}
			case 1: // whole-window charge
				q := queriers[rng.Intn(len(queriers))]
				first := int64(rng.Intn(50))
				k := rng.Intn(6) + 1
				losses := make([]float64, k)
				for i := range losses {
					if rng.Intn(3) > 0 {
						losses[i] = rng.Float64() * capacity * 1.5
					}
				}
				outcomes := make([]ChargeOutcome, k)
				l.ChargeWindow(q, first, losses, outcomes)
				for i, eps := range losses {
					if want := ref.charge(q, first+int64(i), eps); outcomes[i] != want {
						t.Fatalf("seed %d op %d: window outcome[%d] = %v, ref %v",
							seed, op, i, outcomes[i], want)
					}
				}
			default: // single charge
				q := queriers[rng.Intn(len(queriers))]
				e := int64(rng.Intn(50))
				eps := 0.0
				if rng.Intn(4) > 0 {
					eps = rng.Float64() * capacity * 1.2
				}
				got, want := l.Charge(q, e, eps), ref.charge(q, e, eps)
				if got != want {
					t.Fatalf("seed %d op %d: Charge(%s,%d,%v) = %v, ref %v",
						seed, op, q, e, eps, got, want)
				}
			}

			// Spot-check reads every few ops; full-state compare at the end.
			q := queriers[rng.Intn(len(queriers))]
			e := int64(rng.Intn(50))
			if got, want := l.Consumed(q, e), ref.consumed(q, e); got != want {
				t.Fatalf("seed %d op %d: Consumed(%s,%d) = %v, ref %v",
					seed, op, q, e, got, want)
			}
		}

		// Final state: every initialized slot matches the reference table
		// exactly (bitwise — both sides run the same float arithmetic).
		want := ref.rows()
		for _, row := range l.Rows() {
			if row.Capacity != capacity {
				t.Fatalf("seed %d: row capacity %v, want uniform %v", seed, row.Capacity, capacity)
			}
			wantC, ok := want[row.Querier][row.Epoch]
			if !ok {
				t.Fatalf("seed %d: ledger has slot %s/%d the reference lacks",
					seed, row.Querier, row.Epoch)
			}
			if row.Consumed != wantC {
				t.Fatalf("seed %d: slot %s/%d consumed %v, ref %v",
					seed, row.Querier, row.Epoch, row.Consumed, wantC)
			}
			delete(want[row.Querier], row.Epoch)
		}
		for q, byEpoch := range want {
			if len(byEpoch) != 0 {
				t.Fatalf("seed %d: reference has %d slots for %s the ledger lacks",
					seed, len(byEpoch), q)
			}
		}
		if l.Floor() != ref.floor {
			t.Fatalf("seed %d: floor %d, ref %d", seed, l.Floor(), ref.floor)
		}
	}
}

// TestLedgerTotalsMatchRowSums checks RangeTotals against the row snapshot
// and the NumQueriers pre-sizing hint.
func TestLedgerTotalsMatchRowSums(t *testing.T) {
	l := NewLedger(10)
	l.Charge("a", 3, 1)
	l.Charge("a", 1, 2)
	l.Charge("a", 7, 0.5)
	l.Charge("b", 2, 4)
	if l.NumQueriers() != 2 {
		t.Fatalf("NumQueriers = %d", l.NumQueriers())
	}
	sums := map[string]float64{}
	for _, row := range l.Rows() {
		sums[row.Querier] += row.Consumed
	}
	n := 0
	l.RangeTotals(func(q string, total float64) {
		n++
		if math.Abs(total-sums[q]) > 1e-15 {
			t.Fatalf("total(%s) = %v, rows sum %v", q, total, sums[q])
		}
	})
	if n != 2 {
		t.Fatalf("RangeTotals visited %d queriers", n)
	}
}

// TestLedgerFloorRecyclesSlots exercises the O(1) lane re-slice: slots below
// the floor disappear from every read path, epochs at or above survive, and
// charging below the floor reports eviction.
func TestLedgerFloorRecyclesSlots(t *testing.T) {
	l := NewLedger(5)
	for e := int64(0); e < 8; e++ {
		if out := l.Charge("q", e, 1); out != ChargeOK {
			t.Fatalf("charge(%d) = %v", e, out)
		}
	}
	if released := l.AdvanceFloor(5); released != 5 {
		t.Fatalf("released %d, want 5", released)
	}
	if got := l.Consumed("q", 4); got != 0 {
		t.Fatalf("evicted epoch consumed = %v", got)
	}
	if got := l.Consumed("q", 5); got != 1 {
		t.Fatalf("surviving epoch consumed = %v", got)
	}
	if out := l.Charge("q", 4, 1); out != ChargeEvicted {
		t.Fatalf("charge below floor = %v, want ChargeEvicted", out)
	}
	if rows := l.Rows(); len(rows) != 3 {
		t.Fatalf("rows after eviction = %d, want 3", len(rows))
	}
	// A full eviction leaves an empty lane, matching the old empty inner
	// map: the querier is still known, totals are zero.
	if released := l.AdvanceFloor(100); released != 3 {
		t.Fatalf("full eviction released %d, want 3", released)
	}
	l.RangeTotals(func(q string, total float64) {
		if q != "q" || total != 0 {
			t.Fatalf("post-eviction totals: %s=%v", q, total)
		}
	})
}

// TestLedgerRestore covers the persistence path: refund refusal, capacity
// overrides, floor interaction.
func TestLedgerRestore(t *testing.T) {
	l := NewLedger(1)
	if err := l.Restore("q", 2, 0.4, 1); err != nil {
		t.Fatal(err)
	}
	if got := l.Consumed("q", 2); got != 0.4 {
		t.Fatalf("restored consumed = %v", got)
	}
	// Raising is fine; lowering is a refund and must fail.
	if err := l.Restore("q", 2, 0.6, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Restore("q", 2, 0.5, 1); err == nil {
		t.Fatal("refund accepted")
	}
	// Corrupt rows are refused.
	if err := l.Restore("q", 3, -1, 1); err == nil {
		t.Fatal("negative consumed accepted")
	}
	if err := l.Restore("q", 3, 2, 1); err == nil {
		t.Fatal("over-capacity accepted")
	}
	// A differing capacity is honored per slot and survives in Rows.
	if err := l.Restore("q", 4, 1.5, 2); err != nil {
		t.Fatal(err)
	}
	var saw bool
	for _, row := range l.Rows() {
		if row.Epoch == 4 {
			saw = true
			if row.Capacity != 2 || row.Consumed != 1.5 {
				t.Fatalf("override row = %+v", row)
			}
		} else if row.Capacity != 1 {
			t.Fatalf("uniform row has capacity %v", row.Capacity)
		}
	}
	if !saw {
		t.Fatal("override slot missing from rows")
	}
	// The override slot enforces its own capacity.
	if out := l.Charge("q", 4, 0.6); out != ChargeDenied {
		t.Fatalf("override capacity not enforced: %v", out)
	}
	if out := l.Charge("q", 4, 0.5); out != ChargeOK {
		t.Fatalf("override capacity too strict: %v", out)
	}
	// Below the floor, restore refuses to resurrect evicted epochs.
	l.AdvanceFloor(10)
	if err := l.Restore("q", 2, 0.9, 1); err == nil {
		t.Fatal("restore below floor accepted")
	}
}

// TestLedgerConcurrentRace hammers one ledger with concurrent charges,
// window charges, reads, and floor advances — the -race coverage for the
// single-mutex design. Consistency invariant: no slot ever exceeds capacity.
func TestLedgerConcurrentRace(t *testing.T) {
	l := NewLedger(1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := []string{"a", "b"}[w%2]
			losses := []float64{0.01, 0, 0.02}
			outcomes := make([]ChargeOutcome, len(losses))
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					l.Charge(q, int64(i%20), 0.015)
				case 1:
					l.ChargeWindow(q, int64(i%20), losses, outcomes)
				case 2:
					l.Consumed(q, int64(i%20))
					l.RangeTotals(func(string, float64) {})
				case 3:
					if w == 0 && i > 100 {
						l.AdvanceFloor(int64(i / 50))
					}
					l.Rows()
				}
			}
		}(w)
	}
	wg.Wait()
	for _, row := range l.Rows() {
		if row.Consumed > row.Capacity {
			t.Fatalf("slot %s/%d over capacity: %v", row.Querier, row.Epoch, row.Consumed)
		}
	}
}

// TestChargeWindowBatchMatchesSequential holds the single-lock batched charge
// to the sequential reference: for random charge tables (several queriers,
// overlapping windows, zero and over-budget losses, interleaved floor
// advances) one ChargeWindowBatch call must produce the outcomes and final
// ledger rows of ChargeWindow applied charge by charge in slice order.
func TestChargeWindowBatchMatchesSequential(t *testing.T) {
	queriers := []string{"nike.com", "adidas.com", "puma.com"}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cap := []float64{0, 0.01, 0.05, 1}[rng.Intn(4)]
		batched, seq := NewLedger(cap), NewLedger(cap)

		for round := 0; round < 5; round++ {
			if rng.Intn(3) == 0 {
				floor := int64(rng.Intn(6))
				batched.AdvanceFloor(floor)
				seq.AdvanceFloor(floor)
			}
			n := 1 + rng.Intn(6)
			charges := make([]WindowCharge, n)
			wantOut := make([][]ChargeOutcome, n)
			for j := range charges {
				w := 1 + rng.Intn(5)
				losses := make([]float64, w)
				for i := range losses {
					losses[i] = []float64{0, 0.004, 0.02, 2}[rng.Intn(4)]
				}
				charges[j] = WindowCharge{
					Querier:  queriers[rng.Intn(3)],
					First:    int64(rng.Intn(6)),
					Losses:   losses,
					Outcomes: make([]ChargeOutcome, w),
				}
				wantOut[j] = make([]ChargeOutcome, w)
			}

			batched.ChargeWindowBatch(charges)
			for j, ch := range charges {
				seq.ChargeWindow(ch.Querier, ch.First, ch.Losses, wantOut[j])
			}

			for j := range charges {
				for i := range wantOut[j] {
					if charges[j].Outcomes[i] != wantOut[j][i] {
						t.Fatalf("seed %d round %d charge %d epoch %d: %v want %v",
							seed, round, j, i, charges[j].Outcomes[i], wantOut[j][i])
					}
				}
			}
		}
		br, sr := batched.Rows(), seq.Rows()
		if len(br) != len(sr) {
			t.Fatalf("seed %d: %d rows vs %d", seed, len(br), len(sr))
		}
		for i := range br {
			if br[i] != sr[i] {
				t.Fatalf("seed %d row %d: %+v vs %+v", seed, i, br[i], sr[i])
			}
		}
	}
}

// TestLedgerDenialsCounter pins the denial-telemetry semantics: the counter
// increments once per denied charge — and only then. Zero charges, evicted
// epochs, and granted charges leave it alone.
func TestLedgerDenialsCounter(t *testing.T) {
	l := NewLedger(1)
	if l.Denials() != 0 {
		t.Fatalf("fresh ledger has %d denials", l.Denials())
	}
	if got := l.Charge("q", 0, 0.8); got != ChargeOK {
		t.Fatalf("first charge = %v", got)
	}
	if got := l.Charge("q", 0, 0.8); got != ChargeDenied {
		t.Fatalf("over-capacity charge = %v", got)
	}
	if got := l.Charge("q", 0, 0.8); got != ChargeDenied {
		t.Fatalf("repeat over-capacity charge = %v", got)
	}
	if l.Charge("q", 1, 0) != ChargeZero {
		t.Fatal("zero charge not ChargeZero")
	}
	l.AdvanceFloor(5)
	if l.Charge("q", 2, 0.5) != ChargeEvicted {
		t.Fatal("evicted charge not ChargeEvicted")
	}
	if l.Denials() != 2 {
		t.Fatalf("denials = %d, want 2", l.Denials())
	}
}
