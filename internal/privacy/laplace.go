package privacy

import (
	"math"

	"repro/internal/stats"
)

// LaplaceMechanism is the noising step run by the trusted aggregation
// service (MPC/TEE): it perturbs each coordinate of an aggregate with
// independent Laplace noise of scale Δ/ε, yielding ε-DP for an
// L1-sensitivity-Δ query. The paper's DP theorem (Thm. 1) is stated for
// pure DP with the Laplace mechanism, so this is the only mechanism the
// reproduction needs; the noise interface is kept small enough that a
// Gaussian variant could be slotted in for the L2/p-norm generalization
// mentioned in §3.3.
type LaplaceMechanism struct {
	rng *stats.RNG
}

// NewLaplaceMechanism returns a mechanism drawing noise from rng.
func NewLaplaceMechanism(rng *stats.RNG) *LaplaceMechanism {
	return &LaplaceMechanism{rng: rng}
}

// Scale returns the Laplace scale b = Δ/ε for a query of global
// L1 sensitivity delta at privacy parameter eps. It panics on non-positive
// eps or negative delta.
func Scale(delta, eps float64) float64 {
	if eps <= 0 {
		panic("privacy: non-positive epsilon")
	}
	if delta < 0 {
		panic("privacy: negative sensitivity")
	}
	return delta / eps
}

// NoiseStdDev returns the standard deviation σ = √2·Δ/ε of the noise the
// mechanism adds. Alg. 1 parameterizes reports by σ; ComputeIndividualBudget
// converts back with ε_x = Δ_x·√2/σ (Eq. 4).
func NoiseStdDev(delta, eps float64) float64 {
	return stats.LaplaceStdDev(Scale(delta, eps))
}

// EpsilonForStdDev inverts NoiseStdDev: the privacy loss charged for a
// report of individual sensitivity delta under noise of standard deviation
// sigma, i.e. Eq. 4's ε_x = Δ·√2/σ.
func EpsilonForStdDev(delta, sigma float64) float64 {
	if sigma <= 0 {
		panic("privacy: non-positive noise stddev")
	}
	if delta < 0 {
		panic("privacy: negative sensitivity")
	}
	return delta * math.Sqrt2 / sigma
}

// Perturb adds independent Laplace(Δ/ε) noise to every coordinate of sum,
// in place, and returns sum for convenience.
func (m *LaplaceMechanism) Perturb(sum []float64, delta, eps float64) []float64 {
	b := Scale(delta, eps)
	for i := range sum {
		sum[i] += m.rng.Laplace(b)
	}
	return sum
}

// TailBound returns the magnitude t such that a single Laplace(Δ/ε) noise
// coordinate exceeds |t| with probability at most beta:
// t = (Δ/ε)·ln(1/β). Queriers use it to size error bounds.
func TailBound(delta, eps, beta float64) float64 {
	if beta <= 0 || beta >= 1 {
		panic("privacy: beta outside (0,1)")
	}
	return Scale(delta, eps) * math.Log(1/beta)
}
