package mlattr

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/aggregation"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/stats"
)

const meta = events.Site("platform.example")
const shop = events.Site("shop.example")

func TestSigmoidDot(t *testing.T) {
	if sigmoid(0) != 0.5 {
		t.Fatal("sigmoid(0) != 0.5")
	}
	if got := dot([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Fatalf("dot = %v", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dot mismatch did not panic")
		}
	}()
	dot([]float64{1}, []float64{1, 2})
}

func TestGradientFunctionLabels(t *testing.T) {
	g := GradientFunction{Weights: []float64{0, 0}, Features: []float64{1, 2}}
	// Label 0 (no relevant conversions): gradient = (0.5−0)·x.
	h0 := g.Attribute(nil)
	if math.Abs(h0[0]-0.5) > 1e-12 || math.Abs(h0[1]-1.0) > 1e-12 {
		t.Fatalf("label-0 gradient = %v", h0)
	}
	// Label 1: gradient = (0.5−1)·x.
	conv := events.Event{Kind: events.KindConversion, Advertiser: shop}
	h1 := g.Attribute([][]events.Event{{conv}})
	if math.Abs(h1[0]+0.5) > 1e-12 || math.Abs(h1[1]+1.0) > 1e-12 {
		t.Fatalf("label-1 gradient = %v", h1)
	}
}

func TestGradientZeroLossForUnlabeled(t *testing.T) {
	// The key IDP carry-over: an empty epoch leaves the gradient at its
	// A(∅) value, so its individual sensitivity is zero.
	g := GradientFunction{Weights: []float64{0.3}, Features: []float64{2}}
	empty := g.Attribute([][]events.Event{nil, nil})
	background := g.Attribute(nil)
	if empty[0] != background[0] {
		t.Fatal("empty epochs changed the gradient")
	}
}

func TestGradientSensitivityBound(t *testing.T) {
	// Flipping the label moves the gradient by exactly ‖x‖₁.
	f := func(raw []float64) bool {
		x := make([]float64, 0, len(raw))
		norm := 0.0
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			v = math.Mod(v, 100)
			x = append(x, v)
			norm += math.Abs(v)
		}
		if len(x) == 0 {
			return true
		}
		w := make([]float64, len(x))
		g := GradientFunction{Weights: w, Features: x}
		h0 := g.Attribute(nil)
		h1 := g.Attribute([][]events.Event{{{Kind: events.KindConversion}}})
		diff := 0.0
		for i := range h0 {
			diff += math.Abs(h0[i] - h1[i])
		}
		cap := norm + 1
		return diff <= GradientSensitivity(x, cap)+1e-9 &&
			GradientSensitivity(x, cap) <= cap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConversionLabelSelector(t *testing.T) {
	sel := NewConversionLabelSelector(shop)
	if !sel.Relevant(events.Event{Kind: events.KindConversion, Advertiser: shop}) {
		t.Fatal("relevant conversion rejected")
	}
	if sel.Relevant(events.Event{Kind: events.KindConversion, Advertiser: "other.example"}) {
		t.Fatal("other advertiser accepted")
	}
	// Impressions are never labels — this is what keeps F_A ∩ P = ∅ for
	// the publisher-side querier.
	if sel.Relevant(events.Event{Kind: events.KindImpression, Advertiser: shop}) {
		t.Fatal("impression accepted as label")
	}
}

func TestTrainerValidation(t *testing.T) {
	base := TrainerConfig{
		Querier: meta, Dim: 2, FeatureCap: 4, Epsilon: 1,
		LearningRate: 0.5, Advertisers: []events.Site{shop},
	}
	if _, err := NewTrainer(base); err != nil {
		t.Fatal(err)
	}
	bad := []func(*TrainerConfig){
		func(c *TrainerConfig) { c.Querier = "" },
		func(c *TrainerConfig) { c.Dim = 0 },
		func(c *TrainerConfig) { c.FeatureCap = 0 },
		func(c *TrainerConfig) { c.Epsilon = 0 },
		func(c *TrainerConfig) { c.LearningRate = 0 },
		func(c *TrainerConfig) { c.Advertisers = nil },
	}
	for i, mut := range bad {
		cfg := base
		mut(&cfg)
		if _, err := NewTrainer(cfg); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

// trainingFleet builds devices with a linearly separable labeling: devices
// with feature[0] > 0 convert, others don't.
func trainingFleet(t *testing.T, n int, epsG float64) ([]Example, *events.Database) {
	t.Helper()
	db := events.NewDatabase()
	rng := stats.NewRNG(99)
	examples := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		dev := events.DeviceID(i + 1)
		x0 := rng.Float64()*2 - 1
		if x0 > 0 {
			db.Record(0, events.Event{
				ID: events.EventID(i + 1), Kind: events.KindConversion,
				Device: dev, Day: 3, Advertiser: shop, Value: 1,
			})
		}
		examples = append(examples, Example{
			Device:     core.NewDevice(dev, db, epsG, core.CookieMonsterPolicy{}),
			Features:   []float64{x0, 1}, // feature + bias term
			FirstEpoch: 0, LastEpoch: 0,
		})
	}
	return examples, db
}

func TestTrainingLearnsSeparableData(t *testing.T) {
	examples, _ := trainingFleet(t, 400, 100)
	tr, err := NewTrainer(TrainerConfig{
		Querier: meta, Dim: 2, FeatureCap: 2, Epsilon: 5,
		LearningRate: 2, Advertisers: []events.Site{shop},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := aggregation.NewService(stats.NewRNG(5))
	for step := 0; step < 30; step++ {
		if _, err := tr.Step(svc, examples); err != nil {
			t.Fatal(err)
		}
	}
	// The learned separator must weight feature[0] positively and
	// classify the bulk of examples correctly.
	w := tr.Weights()
	if w[0] <= 0 {
		t.Fatalf("weights = %v, want positive slope", w)
	}
	correct := 0
	for _, ex := range examples {
		p := tr.Predict(ex.Features)
		converted := ex.Features[0] > 0
		if (p > 0.5) == converted {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(examples)); acc < 0.8 {
		t.Fatalf("accuracy %v < 0.8", acc)
	}
}

func TestTrainingConsumesBudgetOnlyFromConverters(t *testing.T) {
	// Cookie Monster's zero-loss case: devices without a relevant
	// conversion pay nothing for the gradient query.
	examples, _ := trainingFleet(t, 50, 100)
	tr, _ := NewTrainer(TrainerConfig{
		Querier: meta, Dim: 2, FeatureCap: 2, Epsilon: 1,
		LearningRate: 1, Advertisers: []events.Site{shop},
	})
	svc := aggregation.NewService(stats.NewRNG(6))
	if _, err := tr.Step(svc, examples); err != nil {
		t.Fatal(err)
	}
	for _, ex := range examples {
		consumed := ex.Device.Consumed(meta, 0)
		converted := ex.Features[0] > 0
		if converted && consumed == 0 {
			t.Fatal("converting device paid nothing")
		}
		if !converted && consumed != 0 {
			t.Fatalf("non-converting device paid %v", consumed)
		}
	}
}

func TestStepErrors(t *testing.T) {
	tr, _ := NewTrainer(TrainerConfig{
		Querier: meta, Dim: 2, FeatureCap: 2, Epsilon: 1,
		LearningRate: 1, Advertisers: []events.Site{shop},
	})
	svc := aggregation.NewService(stats.NewRNG(7))
	if _, err := tr.Step(svc, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	examples, _ := trainingFleet(t, 1, 100)
	examples[0].Features = []float64{1} // wrong dimension
	if _, err := tr.Step(svc, examples); err == nil {
		t.Fatal("wrong dimension accepted")
	}
}

func TestTrainingUnderBudgetExhaustion(t *testing.T) {
	// With a tiny budget, converting devices exhaust and their gradients
	// silently fall back to the label-0 value — the bias mechanism of
	// §3.4 applied to model training. Training must not fail.
	examples, _ := trainingFleet(t, 100, 0.001)
	tr, _ := NewTrainer(TrainerConfig{
		Querier: meta, Dim: 2, FeatureCap: 2, Epsilon: 1,
		LearningRate: 1, Advertisers: []events.Site{shop},
	})
	svc := aggregation.NewService(stats.NewRNG(8))
	sawDenied := false
	for step := 0; step < 3; step++ {
		denied, err := tr.Step(svc, examples)
		if err != nil {
			t.Fatal(err)
		}
		if denied > 0 {
			sawDenied = true
		}
	}
	if !sawDenied {
		t.Fatal("expected denials under tiny budget")
	}
}
