// Package mlattr implements the Appendix A ad-tech extension: the
// multi-advertiser *optimization* query, where a first-party ad platform
// (the Meta perspective) trains a conversion-prediction model from
// attribution reports. Features X_d are public to the platform (on-site
// behaviour of logged-in users); conversion labels live on other sites and
// are private. Following Appendix A, the attribution function returns a
// per-example logistic-regression gradient computed on-device from the
// public features and the private label, and the trusted aggregation
// service releases only noisy gradient sums — label-DP model fitting on top
// of the unchanged Cookie Monster budgeting engine.
//
// The IDP optimizations carry over: an epoch holding no relevant conversion
// leaves the gradient at its label-0 value, a function of public data only,
// so its individual sensitivity — and privacy loss — is zero.
package mlattr

import (
	"math"

	"repro/internal/attribution"
	"repro/internal/events"
)

// sigmoid is the logistic function.
func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// dot returns wᵀx. It panics on dimension mismatch.
func dot(w, x []float64) float64 {
	if len(w) != len(x) {
		panic("mlattr: dimension mismatch")
	}
	s := 0.0
	for i := range w {
		s += w[i] * x[i]
	}
	return s
}

// GradientFunction is the attribution function of the optimization query:
// given the device's (public) feature vector and the current model weights,
// it emits the logistic-loss gradient (σ(wᵀx) − y)·x, where the label
// y ∈ {0, 1} is 1 exactly when a relevant (private) conversion exists in the
// attribution window.
type GradientFunction struct {
	// Weights is the current model iterate (baked in per training step).
	Weights []float64
	// Features is the device's public feature vector x_d.
	Features []float64
}

// Attribute implements attribution.Function. Only the label depends on the
// device's private events; with y = 0 the output equals A(∅), so epochs
// without relevant conversions have zero individual sensitivity (Thm. 4
// case 1) and cost no budget under Cookie Monster.
func (g GradientFunction) Attribute(epochs [][]events.Event) attribution.Histogram {
	y := 0.0
	for _, evs := range epochs {
		if len(evs) > 0 {
			y = 1
			break
		}
	}
	p := sigmoid(dot(g.Weights, g.Features))
	h := attribution.NewHistogram(len(g.Features))
	for i, x := range g.Features {
		h[i] = (p - y) * x
	}
	return h
}

// OutputDim implements attribution.Function.
func (g GradientFunction) OutputDim() int { return len(g.Features) }

// GradientSensitivity returns the report global sensitivity of the gradient
// function: flipping the label changes the output by exactly ‖x‖₁ in L1
// (the |p−y| factor moves by at most 1), so Δ(ρ) = ‖x‖₁, capped by the
// feature clip featureCap the platform enforces on all devices.
func GradientSensitivity(features []float64, featureCap float64) float64 {
	h := attribution.Histogram(features)
	norm := h.L1()
	if norm > featureCap {
		return featureCap
	}
	return norm
}

// ConversionLabelSelector marks the private label events: conversions on
// any of the given advertiser sites. For a publisher-side querier this keeps
// F_A ∩ P = ∅ (its public events are impressions), the condition for the
// tight Thm. 1 guarantee.
type ConversionLabelSelector struct {
	Advertisers map[events.Site]bool
}

// NewConversionLabelSelector builds a selector over the listed advertisers.
func NewConversionLabelSelector(sites ...events.Site) ConversionLabelSelector {
	m := make(map[events.Site]bool, len(sites))
	for _, s := range sites {
		m[s] = true
	}
	return ConversionLabelSelector{Advertisers: m}
}

// Relevant implements events.Selector.
func (s ConversionLabelSelector) Relevant(ev events.Event) bool {
	return ev.IsConversion() && s.Advertisers[ev.Advertiser]
}
