package mlattr

import (
	"errors"
	"fmt"

	"repro/internal/aggregation"
	"repro/internal/attribution"
	"repro/internal/core"
	"repro/internal/events"
)

// Example is one training example: a device whose public features the
// platform knows, and the epoch window in which a relevant conversion would
// label it positive.
type Example struct {
	Device                *core.Device
	Features              []float64
	FirstEpoch, LastEpoch events.Epoch
}

// TrainerConfig parameterizes DP-SGD-style training over attribution
// reports.
type TrainerConfig struct {
	// Querier is the ad-tech site (filters are per querier).
	Querier events.Site
	// Dim is the feature dimension.
	Dim int
	// FeatureCap is the L1 clip applied to every device's features — the
	// report global sensitivity of each gradient report.
	FeatureCap float64
	// Epsilon is the per-step privacy parameter enforced by the
	// aggregation service.
	Epsilon float64
	// LearningRate scales gradient steps.
	LearningRate float64
	// Advertisers whose conversions define the positive label.
	Advertisers []events.Site
}

func (c TrainerConfig) validate() error {
	switch {
	case c.Querier == "":
		return errors.New("mlattr: missing querier")
	case c.Dim <= 0:
		return fmt.Errorf("mlattr: non-positive dimension %d", c.Dim)
	case c.FeatureCap <= 0:
		return errors.New("mlattr: non-positive feature cap")
	case c.Epsilon <= 0:
		return errors.New("mlattr: non-positive epsilon")
	case c.LearningRate <= 0:
		return errors.New("mlattr: non-positive learning rate")
	case len(c.Advertisers) == 0:
		return errors.New("mlattr: no advertisers")
	}
	return nil
}

// Trainer fits a logistic regression from DP-aggregated gradient reports.
type Trainer struct {
	cfg      TrainerConfig
	weights  []float64
	selector ConversionLabelSelector
}

// NewTrainer returns a trainer with zero-initialized weights.
func NewTrainer(cfg TrainerConfig) (*Trainer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Trainer{
		cfg:      cfg,
		weights:  make([]float64, cfg.Dim),
		selector: NewConversionLabelSelector(cfg.Advertisers...),
	}, nil
}

// Weights returns a copy of the current model iterate.
func (t *Trainer) Weights() []float64 {
	return append([]float64(nil), t.weights...)
}

// Predict returns the model's conversion probability for features x.
func (t *Trainer) Predict(x []float64) float64 {
	return sigmoid(dot(t.weights, x))
}

// Step runs one training iteration: every example's device generates a
// gradient report under its own budget filters, the service aggregates them
// with Laplace noise scaled to the feature cap, and the model takes a
// gradient step on the noisy mean. It returns the number of reports whose
// windows were (partially) budget-denied, which silently bias gradients the
// same way they bias measurement queries (§3.4).
func (t *Trainer) Step(service *aggregation.Service, examples []Example) (denied int, err error) {
	if len(examples) == 0 {
		return 0, errors.New("mlattr: empty batch")
	}
	reports := make([]*core.Report, 0, len(examples))
	for _, ex := range examples {
		if len(ex.Features) != t.cfg.Dim {
			return 0, fmt.Errorf("mlattr: example dimension %d, want %d", len(ex.Features), t.cfg.Dim)
		}
		clipped := append([]float64(nil), ex.Features...)
		attribution.ClipL1(clipped, t.cfg.FeatureCap)
		req := &core.Request{
			Querier:    t.cfg.Querier,
			FirstEpoch: ex.FirstEpoch,
			LastEpoch:  ex.LastEpoch,
			Selector:   t.selector,
			Function: GradientFunction{
				Weights:  t.weights,
				Features: clipped,
			},
			Epsilon:           t.cfg.Epsilon,
			ReportSensitivity: GradientSensitivity(clipped, t.cfg.FeatureCap),
			QuerySensitivity:  t.cfg.FeatureCap,
			PNorm:             1,
		}
		rep, diag, err := ex.Device.GenerateReport(req)
		if err != nil {
			return 0, err
		}
		if len(diag.DeniedEpochs) > 0 {
			denied++
		}
		reports = append(reports, rep)
	}
	out, err := service.Execute(reports)
	if err != nil {
		return denied, err
	}
	scale := t.cfg.LearningRate / float64(len(examples))
	for i := range t.weights {
		t.weights[i] -= scale * out.Aggregate[i]
	}
	return denied, nil
}
