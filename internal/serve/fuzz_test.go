package serve_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/workload"
)

// FuzzIngestHTTP is the never-panic guarantee for the network decode →
// validate → ingest path. It drives arbitrary bytes through the three
// request-bearing endpoints by calling the handler directly — net/http's
// server would recover a handler panic and turn it into a dropped
// connection, which is exactly the masking this fuzz target must avoid —
// and asserts every input produces a deliberate HTTP status, never a
// panic reaching the handler boundary.
//
// The server is live: a real stream.Service consumes whatever the fuzzer
// gets admitted, so a panic lurking past validation (frozen-store Record,
// negative-ε calibration, non-positive Laplace scale, day/epoch
// arithmetic) fires on the service goroutine and crashes the fuzz process
// outright — goroutine panics are unrecoverable, so nothing masks them.
func FuzzIngestHTTP(f *testing.F) {
	meta := dataset.Meta{
		Name: "fuzz", PopulationDevices: 1 << 16, DurationDays: 8,
		Advertisers: []dataset.Advertiser{{
			Site:           "shop.example",
			Products:       []string{"p0", "p1"},
			MaxValue:       50,
			AvgReportValue: 10,
			BatchSize:      8,
		}},
	}
	srv, err := serve.NewServer(serve.Config{
		Scenario: workload.Config{EpsilonG: 1, Seed: 1, Parallelism: 1},
		Meta:     meta,
	})
	if err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()

	f.Add(uint8(0), []byte(`{"events":[{"id":1,"kind":"conversion","device":3,"day":0,"advertiser":"shop.example","product":"p0","value":5}]}`))
	f.Add(uint8(0), []byte(`{"events":[{"id":2,"kind":"impression","device":3,"day":1,"advertiser":"shop.example","publisher":"news.example"}]}`))
	f.Add(uint8(0), []byte(`{"events":[{"id":0,"kind":"conversion","device":0,"day":-1,"advertiser":"","value":-1e308}]}`))
	f.Add(uint8(0), []byte(`{"events":[{"id":18446744073709551615,"kind":"conversion","device":18446744073709551615,"day":2147483647,"advertiser":"shop.example","product":"p0","value":1e308}]}`))
	f.Add(uint8(0), []byte(`{"events": [`))
	f.Add(uint8(0), []byte(`[]`))
	f.Add(uint8(1), []byte(`{"site":"shop.example","products":["p0","p1"],"maxValue":50,"avgReportValue":10,"batchSize":8}`))
	f.Add(uint8(1), []byte(`{"site":"x","products":[""],"maxValue":-0,"avgReportValue":1e999,"batchSize":-5}`))
	f.Add(uint8(2), []byte(`querier=shop.example&after=-1`))
	f.Add(uint8(2), []byte(`after=99999999999999999999`))
	f.Add(uint8(3), []byte(`{"final": false}`))

	allowed := map[int]bool{
		http.StatusOK:                    true,
		http.StatusBadRequest:            true,
		http.StatusConflict:              true,
		http.StatusRequestEntityTooLarge: true,
		http.StatusTooManyRequests:       true,
		http.StatusServiceUnavailable:    true,
		http.StatusMethodNotAllowed:      true,
	}

	f.Fuzz(func(t *testing.T, endpoint uint8, body []byte) {
		var req *http.Request
		switch endpoint % 4 {
		case 0:
			req = httptest.NewRequest(http.MethodPost, "/v1/events", strings.NewReader(string(body)))
		case 1:
			req = httptest.NewRequest(http.MethodPost, "/v1/queries", strings.NewReader(string(body)))
		case 2:
			req = httptest.NewRequest(http.MethodGet, "/v1/results", nil)
			// Assign the raw query directly: URL parsing must not pre-filter
			// the bytes the handler's own query decoding will see.
			req.URL.RawQuery = string(body)
		case 3:
			// Stats/meta take no input but must stay panic-free alongside
			// whatever state the other endpoints drove the server into.
			req = httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if !allowed[rec.Code] {
			t.Fatalf("endpoint %d: unexpected status %d (body %q)", endpoint%4, rec.Code, body)
		}
	})
}
