package serve

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/stream"
)

// Wire shapes and boundary validation for the /v1 JSON API.
//
// The HTTP boundary is where untrusted input enters the measurement
// service, so every invariant the interior enforces by panicking — a
// non-positive calibration input (privacy.Calibration.Epsilon), a negative
// noise scale (stats.Laplace), a day index that would overflow the int32
// epoch space (events.EpochOfDay) — is checked here first and reported as
// a typed RequestError with a 400 status. Nothing a socket can carry
// reaches a panicking check: the fuzz target in fuzz_test.go holds the
// decode→ingest path to that.

// Boundary limits. They bound hostile input, not legitimate workloads:
// every dataset this repository generates sits far inside them.
const (
	// MaxBatchEvents bounds the events in one ingest request.
	MaxBatchEvents = 4096
	// MaxBodyBytes bounds one request body.
	MaxBodyBytes = 4 << 20
	// maxSiteLen bounds any site, campaign or product key. The event
	// store interns keys, so unbounded distinct strings are a memory
	// attack as well as a nuisance.
	maxSiteLen = 256
	// maxEventValue bounds conversion values and the registration
	// sensitivity Δ (both enter noise-scale arithmetic).
	maxEventValue = 1e12
	// maxBatchSize bounds a registered query's batch size B.
	maxBatchSize = 1 << 20
	// maxProducts bounds one registration's product list.
	maxProducts = 1024
)

// Stable machine-readable error codes carried by RequestError.
const (
	CodeMalformedJSON     = "malformed-json"
	CodeBadQuery          = "bad-query"
	CodeBodyTooLarge      = "body-too-large"
	CodeTooManyEvents     = "too-many-events"
	CodeBadID             = "bad-id"
	CodeBadKind           = "bad-kind"
	CodeBadDay            = "bad-day"
	CodeBadValue          = "bad-value"
	CodeBadSite           = "bad-site"
	CodeBadProduct        = "bad-product"
	CodeUnknownAdvertiser = "unknown-advertiser"
	CodeBadRegistration   = "bad-registration"
	CodeSealed            = "registration-sealed"
	CodeConflict          = "registration-conflict"
	CodeBackpressure      = "backpressure"
	CodeOverload          = "overload-shed"
	CodeUnavailable       = "unavailable"
)

// RequestError is a typed boundary-validation failure: malformed or
// hostile input detected at the HTTP boundary and reported to the client
// as a 400, instead of reaching an invariant check deeper in the service
// that would panic.
type RequestError struct {
	// Code is the stable machine-readable identifier.
	Code string
	// Index is the offending event's position within the batch (-1 when
	// the error is not about one event).
	Index int
	// Msg is the human-readable detail.
	Msg string
}

// Error implements error.
func (e *RequestError) Error() string {
	if e.Index >= 0 {
		return fmt.Sprintf("%s (event %d): %s", e.Code, e.Index, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Msg)
}

func reqErr(code, format string, args ...any) *RequestError {
	return &RequestError{Code: code, Index: -1, Msg: fmt.Sprintf(format, args...)}
}

// EventWire is one impression or conversion on the wire. The event ID is
// also the client's per-device sequence number: admission requires each
// device's (day, id) to be strictly increasing, and a retried POST is
// deduplicated against that cursor.
type EventWire struct {
	ID         uint64  `json:"id"`
	Kind       string  `json:"kind"`
	Device     uint64  `json:"device"`
	Day        int     `json:"day"`
	Publisher  string  `json:"publisher,omitempty"`
	Advertiser string  `json:"advertiser,omitempty"`
	Campaign   string  `json:"campaign,omitempty"`
	Product    string  `json:"product,omitempty"`
	Value      float64 `json:"value,omitempty"`
}

// WireFromEvent converts an internal event to its wire shape.
func WireFromEvent(ev events.Event) EventWire {
	return EventWire{
		ID:         uint64(ev.ID),
		Kind:       ev.Kind.String(),
		Device:     uint64(ev.Device),
		Day:        ev.Day,
		Publisher:  string(ev.Publisher),
		Advertiser: string(ev.Advertiser),
		Campaign:   ev.Campaign,
		Product:    ev.Product,
		Value:      ev.Value,
	}
}

// decode validates one wire event against the served trace's bounds and
// converts it. durationDays bounds the day index: the service's epoch
// arithmetic is int32 and its day clock never runs past the trace, so an
// out-of-range day is hostile by construction.
func (w EventWire) decode(durationDays int) (events.Event, *RequestError) {
	ev := events.Event{
		ID:         events.EventID(w.ID),
		Device:     events.DeviceID(w.Device),
		Day:        w.Day,
		Publisher:  events.Site(w.Publisher),
		Advertiser: events.Site(w.Advertiser),
		Campaign:   w.Campaign,
		Product:    w.Product,
		Value:      w.Value,
	}
	switch w.Kind {
	case events.KindImpression.String():
		ev.Kind = events.KindImpression
	case events.KindConversion.String():
		ev.Kind = events.KindConversion
	default:
		return ev, reqErr(CodeBadKind, "kind %q is not %q or %q",
			w.Kind, events.KindImpression, events.KindConversion)
	}
	if w.ID == 0 {
		return ev, reqErr(CodeBadID, "event id must be positive")
	}
	if w.Day < 0 || w.Day >= durationDays {
		return ev, reqErr(CodeBadDay, "day %d outside trace [0, %d)", w.Day, durationDays)
	}
	if w.Advertiser == "" || len(w.Advertiser) > maxSiteLen {
		return ev, reqErr(CodeBadSite, "advertiser must be 1..%d bytes", maxSiteLen)
	}
	if len(w.Publisher) > maxSiteLen || len(w.Campaign) > maxSiteLen {
		return ev, reqErr(CodeBadSite, "publisher/campaign keys must be at most %d bytes", maxSiteLen)
	}
	if len(w.Product) > maxSiteLen {
		return ev, reqErr(CodeBadProduct, "product key must be at most %d bytes", maxSiteLen)
	}
	if ev.IsConversion() {
		if w.Product == "" {
			return ev, reqErr(CodeBadProduct, "conversion without a product key")
		}
		if math.IsNaN(w.Value) || math.IsInf(w.Value, 0) || w.Value < 0 || w.Value > maxEventValue {
			return ev, reqErr(CodeBadValue, "conversion value must be finite in [0, %g]", maxEventValue)
		}
	} else if w.Value != 0 {
		return ev, reqErr(CodeBadValue, "impression with a conversion value")
	}
	return ev, nil
}

// QueryRegistration is one querier's registration: the advertiser site,
// its product query streams, and the calibration inputs (Δ, c̃, B) its
// summation queries will use.
type QueryRegistration struct {
	Site           string   `json:"site"`
	Products       []string `json:"products,omitempty"`
	MaxValue       float64  `json:"maxValue"`
	AvgReportValue float64  `json:"avgReportValue"`
	BatchSize      int      `json:"batchSize"`
}

// RegistrationFromAdvertiser converts dataset metadata to its wire shape.
func RegistrationFromAdvertiser(a dataset.Advertiser) QueryRegistration {
	return QueryRegistration{
		Site:           string(a.Site),
		Products:       a.Products,
		MaxValue:       a.MaxValue,
		AvgReportValue: a.AvgReportValue,
		BatchSize:      a.BatchSize,
	}
}

// decode validates a registration. The positivity checks are exactly what
// keeps the ε-calibration (privacy.Calibration.Epsilon panics on
// non-positive Δ, B, or c̃) and the Laplace noise scale Δ/ε out of their
// panicking domains for every query this querier will ever run.
func (q QueryRegistration) decode() (dataset.Advertiser, *RequestError) {
	adv := dataset.Advertiser{
		Site:           events.Site(q.Site),
		Products:       q.Products,
		MaxValue:       q.MaxValue,
		AvgReportValue: q.AvgReportValue,
		BatchSize:      q.BatchSize,
	}
	if q.Site == "" || len(q.Site) > maxSiteLen {
		return adv, reqErr(CodeBadRegistration, "site must be 1..%d bytes", maxSiteLen)
	}
	if len(q.Products) == 0 {
		return adv, reqErr(CodeBadRegistration, "a querier needs at least one product stream")
	}
	if len(q.Products) > maxProducts {
		return adv, reqErr(CodeBadRegistration, "at most %d products per querier", maxProducts)
	}
	for _, p := range q.Products {
		if p == "" || len(p) > maxSiteLen {
			return adv, reqErr(CodeBadRegistration, "product keys must be 1..%d bytes", maxSiteLen)
		}
	}
	if q.BatchSize < 1 || q.BatchSize > maxBatchSize {
		return adv, reqErr(CodeBadRegistration, "batch size must be in [1, %d]", maxBatchSize)
	}
	if math.IsNaN(q.MaxValue) || math.IsInf(q.MaxValue, 0) || q.MaxValue <= 0 || q.MaxValue > maxEventValue {
		return adv, reqErr(CodeBadRegistration, "maxValue must be finite in (0, %g]", maxEventValue)
	}
	if math.IsNaN(q.AvgReportValue) || math.IsInf(q.AvgReportValue, 0) ||
		q.AvgReportValue <= 0 || q.AvgReportValue > maxEventValue {
		return adv, reqErr(CodeBadRegistration, "avgReportValue must be finite in (0, %g]", maxEventValue)
	}
	return adv, nil
}

// advertisersEqual reports whether two registrations are identical — the
// idempotent-retry test for a re-registration after the run sealed.
func advertisersEqual(a, b dataset.Advertiser) bool {
	if a.Site != b.Site || a.MaxValue != b.MaxValue ||
		a.AvgReportValue != b.AvgReportValue || a.BatchSize != b.BatchSize ||
		len(a.Products) != len(b.Products) {
		return false
	}
	for i := range a.Products {
		if a.Products[i] != b.Products[i] {
			return false
		}
	}
	return true
}

// IngestRequest is the body of POST /v1/events.
type IngestRequest struct {
	Events []EventWire `json:"events"`
}

// IngestResponse acknowledges an ingest request: every event was either
// admitted (and is WAL-logged and applied by the time the response is
// sent) or recognized as a duplicate of an admission that is itself
// durable by the time the response is sent — a duplicate of an event
// still in the ingest queue is acknowledged only after that event
// applies.
type IngestResponse struct {
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
}

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
	// Index is the offending event's batch position (validation errors).
	Index int `json:"index,omitempty"`
	// Accepted and Duplicates report the processed prefix of a
	// backpressured (429) request — events admitted and dedupe hits before
	// the queue pushed back; the whole batch can be retried, the prefix
	// deduplicates.
	Accepted   int `json:"accepted,omitempty"`
	Duplicates int `json:"duplicates,omitempty"`
	// RetryAfterMs is a precise retry hint on pushback responses
	// (CodeBackpressure, CodeOverload, CodeUnavailable), mirroring the
	// integer-seconds Retry-After header for clients with sub-second
	// backoff.
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`
}

// ResultWire is one released query result, querier-facing: the noisy
// estimate and its metadata, never the ground truth the simulator keeps
// for its accuracy metrics.
type ResultWire struct {
	Querier       string  `json:"querier"`
	Product       string  `json:"product"`
	Index         int     `json:"index"`
	Batch         int     `json:"batch"`
	Epsilon       float64 `json:"epsilon"`
	Executed      bool    `json:"executed"`
	Estimate      float64 `json:"estimate"`
	FireDay       int     `json:"fireDay"`
	FirstEpoch    int32   `json:"firstEpoch"`
	LastEpoch     int32   `json:"lastEpoch"`
	DeniedReports int     `json:"deniedReports"`
	BiasedReports int     `json:"biasedReports"`
	BiasEstimate  float64 `json:"biasEstimate,omitempty"`
}

func wireFromResult(res stream.Result) ResultWire {
	return ResultWire{
		Querier:       string(res.Querier),
		Product:       res.Product,
		Index:         res.Index,
		Batch:         res.Batch,
		Epsilon:       res.Epsilon,
		Executed:      res.Executed,
		Estimate:      res.Estimate,
		FireDay:       res.FireDay,
		FirstEpoch:    int32(res.FirstEpoch),
		LastEpoch:     int32(res.LastEpoch),
		DeniedReports: res.DeniedReports,
		BiasedReports: res.BiasedReports,
		BiasEstimate:  res.BiasEstimate,
	}
}

// ResultsResponse is the body of GET /v1/results.
type ResultsResponse struct {
	Results []ResultWire `json:"results"`
	// Complete is true once the run finished cleanly: no further results
	// will ever be released. A suspended run (shutdown with final=false)
	// is not complete — it is resumable, and more results follow after
	// resume.
	Complete bool `json:"complete"`
}

// RegistrationResponse is the body of a successful POST /v1/queries.
type RegistrationResponse struct {
	// Index is the querier's position in registration order.
	Index    int `json:"index"`
	Queriers int `json:"queriers"`
}

// MetaResponse is the body of GET /v1/meta.
type MetaResponse struct {
	Name              string `json:"name"`
	PopulationDevices int    `json:"populationDevices"`
	DurationDays      int    `json:"durationDays"`
	Queriers          int    `json:"queriers"`
	State             string `json:"state"`
	Resumed           bool   `json:"resumed"`
}

// ShutdownRequest is the body of POST /v1/shutdown. Final (the default)
// closes out the trace: the in-progress day flushes and the run completes
// as if the source had drained. final=false suspends instead: the queue
// drains, the WAL syncs, a final generation commits, and the run can be
// resumed from the checkpoint directory. An empty body selects the
// default; a non-empty body that fails to decode is a 400 — shutdown is
// irreversible, so a corrupted suspend request must not fall through to
// the close-out default.
type ShutdownRequest struct {
	Final *bool `json:"final"`
}

// ShutdownResponse summarizes the drained run.
type ShutdownResponse struct {
	State          string `json:"state"`
	EventsIngested int    `json:"eventsIngested"`
	EventsDropped  int    `json:"eventsDropped"`
	Results        int    `json:"results"`
	Error          string `json:"error,omitempty"`
}
