package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/serve"
	"repro/internal/workload"
)

// harness_test.go is the shared client-side machinery: a test server
// wrapper and a minimal HTTP client with the retry discipline a real
// device SDK would use (retry verbatim on 429 backpressure and 503
// recovery, trusting (device, seq) dedupe for idempotency).

type testServer struct {
	srv  *serve.Server
	http *httptest.Server
}

func newTestServer(t *testing.T, cfg serve.Config) *testServer {
	t.Helper()
	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return &testServer{srv: srv, http: hs}
}

type client struct {
	t    *testing.T
	base string
	hc   *http.Client
}

func newClient(t *testing.T, ts *testServer) *client {
	return &client{t: t, base: ts.http.URL, hc: ts.http.Client()}
}

func (c *client) do(method, path string, body []byte) (int, []byte) {
	c.t.Helper()
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		c.t.Fatalf("building %s %s: %v", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatalf("reading %s %s response: %v", method, path, err)
	}
	return resp.StatusCode, data
}

// register posts the advertisers in order, failing the test on anything
// but a 200.
func (c *client) register(advs []dataset.Advertiser) {
	c.t.Helper()
	for _, a := range advs {
		body, _ := json.Marshal(serve.RegistrationFromAdvertiser(a))
		status, resp := c.do(http.MethodPost, "/v1/queries", body)
		if status != http.StatusOK {
			c.t.Fatalf("registering %s: status %d: %s", a.Site, status, resp)
		}
	}
}

// sendBatch posts one batch with the standard retry discipline and
// returns the final terminal status with the accepted/duplicate counts.
// Retryable refusals (429, 503) re-send the identical payload; anything
// else is terminal.
func (c *client) sendBatch(evs []events.Event) (status, accepted, duplicates int) {
	c.t.Helper()
	req := serve.IngestRequest{Events: make([]serve.EventWire, len(evs))}
	for i, ev := range evs {
		req.Events[i] = serve.WireFromEvent(ev)
	}
	body, _ := json.Marshal(req)
	for attempt := 0; attempt < 4000; attempt++ {
		st, resp := c.do(http.MethodPost, "/v1/events", body)
		switch st {
		case http.StatusOK:
			var ir serve.IngestResponse
			if err := json.Unmarshal(resp, &ir); err != nil {
				c.t.Fatalf("parsing ingest response: %v", err)
			}
			return st, ir.Accepted, ir.Duplicates
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			time.Sleep(2 * time.Millisecond)
		default:
			return st, 0, 0
		}
	}
	c.t.Fatalf("batch still refused after 4000 retries")
	return 0, 0, 0
}

// sendOrdered streams events (already (Day, ID)-sorted) in fixed-size
// batches, summing accepted and duplicate counts. A non-retryable status
// stops the stream and returns it with the index of the failed batch's
// first event.
func (c *client) sendOrdered(evs []events.Event, batch int) (accepted, duplicates, failedAt int) {
	c.t.Helper()
	failedAt = -1
	for off := 0; off < len(evs); off += batch {
		end := min(off+batch, len(evs))
		st, acc, dup := c.sendBatch(evs[off:end])
		if st != http.StatusOK {
			return accepted, duplicates, off
		}
		accepted += acc
		duplicates += dup
	}
	return accepted, duplicates, -1
}

// sendOrderedAllowStop is sendOrdered for crash tests: a 503 is not
// retried but reported, so the sender can observe the server dying.
func (c *client) sendOrderedAllowStop(evs []events.Event, batch int) (sentThrough int) {
	c.t.Helper()
	for off := 0; off < len(evs); off += batch {
		end := min(off+batch, len(evs))
		req := serve.IngestRequest{Events: make([]serve.EventWire, len(evs[off:end]))}
		for i, ev := range evs[off:end] {
			req.Events[i] = serve.WireFromEvent(ev)
		}
		body, _ := json.Marshal(req)
		st, _ := c.do(http.MethodPost, "/v1/events", body)
		if st != http.StatusOK {
			return off
		}
	}
	return len(evs)
}

func (c *client) shutdown(final bool) serve.ShutdownResponse {
	c.t.Helper()
	body, _ := json.Marshal(serve.ShutdownRequest{Final: &final})
	status, resp := c.do(http.MethodPost, "/v1/shutdown", body)
	if status != http.StatusOK {
		c.t.Fatalf("shutdown: status %d: %s", status, resp)
	}
	var sr serve.ShutdownResponse
	if err := json.Unmarshal(resp, &sr); err != nil {
		c.t.Fatalf("parsing shutdown response: %v", err)
	}
	return sr
}

func (c *client) results(query string) serve.ResultsResponse {
	c.t.Helper()
	status, resp := c.do(http.MethodGet, "/v1/results"+query, nil)
	if status != http.StatusOK {
		c.t.Fatalf("results: status %d: %s", status, resp)
	}
	var rr serve.ResultsResponse
	if err := json.Unmarshal(resp, &rr); err != nil {
		c.t.Fatalf("parsing results: %v", err)
	}
	return rr
}

// orderedEvents returns the dataset's events sorted into admission
// ((Day, ID)) order.
func orderedEvents(ds *dataset.Dataset) []events.Event {
	evs := make([]events.Event, len(ds.Events))
	copy(evs, ds.Events)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Before(evs[j]) })
	return evs
}

// scenarioForServing strips a cataloged batch config down to the serving
// shape: no dataset (events arrive over the wire), everything else
// preserved.
func scenarioForServing(cfg workload.Config) workload.Config {
	cfg.Dataset = nil
	return cfg
}

// waitDone fails the test if the served run doesn't finish in time.
func waitDone(t *testing.T, srv *serve.Server) (*workload.Run, error) {
	t.Helper()
	select {
	case <-srv.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("served run did not finish")
	}
	return srv.Run()
}

// mustDigest fails on a nil run.
func mustDigest(t *testing.T, run *workload.Run, err error, label string) string {
	t.Helper()
	if err != nil {
		t.Fatalf("%s failed: %v", label, err)
	}
	if run == nil {
		t.Fatalf("%s: nil run", label)
	}
	return run.CanonicalDigest()
}

// tsShutdown closes out a test server's run with a bounded deadline.
func tsShutdown(ts *testServer) (*workload.Run, error) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	return ts.srv.Shutdown(ctx, true)
}
