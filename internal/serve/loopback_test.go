package serve_test

import (
	"fmt"
	"net/http"
	"runtime"
	"testing"

	"repro/internal/figures"
	"repro/internal/serve"
)

// TestLoopbackEquivalence is the serving layer's core guarantee: a run
// fed over HTTP — queriers registered through /v1/queries, the trace
// POSTed to /v1/events by a single ordered sender, the run closed out by
// /v1/shutdown — produces a Run whose canonical digest is bit-identical
// to the batch engine's reference for the same scenario, at every
// execution parallelism. The network admission path (decode, validation,
// dedupe, bounded queue, ack-after-WAL) must be invisible to the results.
func TestLoopbackEquivalence(t *testing.T) {
	ref, err := figures.BatchRef("cookie-monster")
	if err != nil {
		t.Fatalf("batch reference: %v", err)
	}
	wantDigest := ref.CanonicalDigest()

	w, err := figures.ByName("cookie-monster")
	if err != nil {
		t.Fatal(err)
	}
	for _, parallelism := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("parallel-%d", parallelism), func(t *testing.T) {
			cfg, err := w.Config()
			if err != nil {
				t.Fatal(err)
			}
			ds := cfg.Dataset
			scenario := scenarioForServing(cfg)
			scenario.Parallelism = parallelism

			meta := ds.Meta()
			meta.Advertisers = nil // register over the API, like real queriers
			ts := newTestServer(t, serve.Config{Scenario: scenario, Meta: meta})
			c := newClient(t, ts)

			// Registration order fixes the canonical querier order, so it
			// must match the trace header — same contract as the dataset.
			c.register(ds.Advertisers)

			evs := orderedEvents(ds)
			accepted, duplicates, failedAt := c.sendOrdered(evs, 128)
			if failedAt >= 0 {
				t.Fatalf("send failed at event %d", failedAt)
			}
			if accepted != len(evs) || duplicates != 0 {
				t.Fatalf("accepted %d events (%d duplicates), want %d (0)", accepted, duplicates, len(evs))
			}

			// Close out the trace over the API and fetch the final results.
			sr := c.shutdown(true)
			if sr.State != "done" {
				t.Fatalf("shutdown state %q: %s", sr.State, sr.Error)
			}
			run, runErr := waitDone(t, ts.srv)
			got := mustDigest(t, run, runErr, "served run")
			if got != wantDigest {
				t.Fatalf("served digest %s != batch reference %s", got, wantDigest)
			}

			rr := c.results("?after=-1")
			if !rr.Complete {
				t.Fatalf("results not marked complete after final shutdown")
			}
			if len(rr.Results) != len(run.Results) {
				t.Fatalf("polled %d results, run released %d", len(rr.Results), len(run.Results))
			}
			// The querier-facing wire shape must never leak the noise-free
			// truth — spot-check the polled results carry estimates only.
			for _, res := range rr.Results {
				if res.Index < 0 || res.Batch <= 0 {
					t.Fatalf("malformed polled result: %+v", res)
				}
			}

			// Late POSTs after completion are refused, not lost silently.
			st, _ := c.do(http.MethodPost, "/v1/events", []byte(`{"events":[]}`))
			if st != http.StatusServiceUnavailable {
				t.Fatalf("post-shutdown ingest: status %d, want 503", st)
			}
		})
	}
}
