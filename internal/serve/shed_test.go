package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/loadgen"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/workload"
)

// shedEvent builds the i-th admissible tiny-server conversion: globally
// increasing IDs on a single day keep each device's (day, id) sequence
// strictly monotonic, so none of these dedupe.
func shedEvent(i int) events.Event {
	return events.Event{
		ID:         events.EventID(i + 1),
		Kind:       events.KindConversion,
		Device:     events.DeviceID(i % 64),
		Day:        0,
		Advertiser: "shop.example",
		Product:    "p0",
		Value:      5,
	}
}

// throttledScenario is the tiny scenario with a fixed per-event apply
// cost, giving the service a controllable capacity so overload is real
// on loopback (where the natural drain is microseconds per event).
func throttledScenario(applyDelay time.Duration) workload.Config {
	return workload.Config{
		EpsilonG: 1, Seed: 1, Parallelism: 1,
		FaultHook: func(p stream.FaultPoint) error {
			if p == stream.PointEventIngested {
				time.Sleep(applyDelay)
			}
			return nil
		},
	}
}

// TestOverloadShedding drives a deliberately slow server (1ms per apply)
// past its capacity and asserts the queue-delay gate turns the overload
// into fast 429s with CodeOverload and Retry-After — then self-clears
// once the backlog drains, instead of wedging the server.
//
// Acks track applied durability, so a single sequential client can never
// age the queue: every POST drains its own backlog before returning.
// Overload needs concurrent in-flight batches, so eight workers blast
// disjoint device partitions; once the first round's backlog outlives
// ShedDelay, follow-up posts shed.
func TestOverloadShedding(t *testing.T) {
	meta := tinyMeta()
	meta.Advertisers = []dataset.Advertiser{tinyAdvertiser()}
	ts := newTestServer(t, serve.Config{
		Scenario:     throttledScenario(time.Millisecond),
		Meta:         meta,
		IngestBuffer: 1 << 15, // deep queue: shedding must fire on delay, not depth
		ShedDelay:    15 * time.Millisecond,
	})

	const workers = 8
	var (
		shed    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstRA string // Retry-After header from the first observed shed
		failure error
	)
	fail := func(err error) {
		mu.Lock()
		if failure == nil {
			failure = err
		}
		mu.Unlock()
	}
	client := ts.http.Client()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for batch := 0; batch < 40 && shed.Load() == 0; batch++ {
				evs := make([]serve.EventWire, 128)
				for i := range evs {
					// Worker g owns devices ≡ g (mod workers); seq increases
					// within the worker, so each device's IDs stay monotonic.
					seq := batch*128 + i
					evs[i] = serve.WireFromEvent(events.Event{
						ID:         events.EventID(seq + 1),
						Kind:       events.KindConversion,
						Device:     events.DeviceID(g + workers*(seq%8)),
						Day:        0,
						Advertiser: "shop.example",
						Product:    "p0",
						Value:      5,
					})
				}
				body, _ := json.Marshal(serve.IngestRequest{Events: evs})
				resp, err := client.Post(ts.http.URL+"/v1/events", "application/json",
					bytes.NewReader(body))
				if err != nil {
					fail(fmt.Errorf("worker %d: %w", g, err))
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusTooManyRequests:
					var er serve.ErrorResponse
					if err := json.Unmarshal(raw, &er); err != nil {
						fail(fmt.Errorf("parsing 429 body: %v", err))
						return
					}
					if er.Code != serve.CodeOverload {
						continue // plain queue-full backpressure, not a shed
					}
					if er.RetryAfterMs <= 0 {
						fail(fmt.Errorf("shed response carries no retryAfterMs: %s", raw))
						return
					}
					mu.Lock()
					if firstRA == "" {
						firstRA = resp.Header.Get("Retry-After")
					}
					mu.Unlock()
					shed.Add(1)
					return
				default:
					fail(fmt.Errorf("unexpected status %d: %s", resp.StatusCode, raw))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if failure != nil {
		t.Fatal(failure)
	}
	if shed.Load() == 0 {
		t.Fatalf("no shed 429 across %d concurrent workers at 128x overload", workers)
	}
	if firstRA == "" {
		t.Fatalf("shed 429 carries no Retry-After header")
	}
	if st := ts.srv.StatsSnapshot(); st.Shed == 0 {
		t.Fatalf("shed responses sent but Stats.Shed is zero")
	}

	// Self-clearing: once the service drains the backlog, the same client
	// is admitted again without any server intervention. IDs far above
	// every worker's range keep the probe monotonic on device 0.
	c := newClient(t, ts)
	deadline := time.Now().Add(time.Minute)
	for i := 0; ; i++ {
		ev := events.Event{
			ID: events.EventID(1<<20 + i), Kind: events.KindConversion,
			Device: 0, Day: 0, Advertiser: "shop.example", Product: "p0", Value: 5,
		}
		body, _ := json.Marshal(serve.IngestRequest{Events: []serve.EventWire{serve.WireFromEvent(ev)}})
		status, resp := c.do(http.MethodPost, "/v1/events", body)
		if status == http.StatusOK {
			break
		}
		if status != http.StatusTooManyRequests {
			t.Fatalf("unexpected status %d while draining: %s", status, resp)
		}
		if time.Now().After(deadline) {
			t.Fatalf("shed gate never cleared after the backlog drained")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := tsShutdown(ts); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestRetryAfterRoundTrip is the full contract in one loop: a saturated
// shedding server emits Retry-After on every pushback, and the loadgen
// client honors the hints, backs off, and still lands the entire trace —
// with zero give-ups and zero missing-header violations. Eight senders
// keep multiple batches in flight so the queue actually ages (a single
// sender's applied-durability acks would drain it between posts).
func TestRetryAfterRoundTrip(t *testing.T) {
	days := 4
	ds := &dataset.Dataset{
		Name:              "shed-roundtrip",
		PopulationDevices: 64,
		DurationDays:      days,
		Advertisers:       []dataset.Advertiser{tinyAdvertiser()},
	}
	for i := 0; i < 1200; i++ {
		ds.Events = append(ds.Events, shedEvent(i))
	}

	meta := tinyMeta()
	meta.Name = ds.Name
	ts := newTestServer(t, serve.Config{
		Scenario:     throttledScenario(500 * time.Microsecond),
		Meta:         meta,
		IngestBuffer: 1 << 15,
		ShedDelay:    10 * time.Millisecond,
	})

	rep, err := loadgen.Run(t.Context(), loadgen.Config{
		Target:    ts.http.URL,
		Dataset:   ds,
		Senders:   8,
		BatchSize: 64,
		Seed:      11,
	})
	if err != nil {
		t.Fatalf("loadgen under shedding: %v", err)
	}
	if rep.EventsAccepted != len(ds.Events) {
		t.Fatalf("accepted %d events, want %d", rep.EventsAccepted, len(ds.Events))
	}
	if rep.ShedObserved == 0 {
		t.Fatalf("server never shed under concurrent overload (retries429=%d)", rep.Retries429)
	}
	if rep.RetryAfterWaits == 0 {
		t.Fatalf("client honored no Retry-After hints despite %d sheds", rep.ShedObserved)
	}
	if rep.RetryAfterMissing != 0 {
		t.Fatalf("%d pushback responses lacked Retry-After", rep.RetryAfterMissing)
	}
	if rep.GiveUps != 0 {
		t.Fatalf("give-ups under plain overload: %v", rep.GiveUpsBySender)
	}
	if _, err := tsShutdown(ts); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := ts.srv.StatsSnapshot(); st.Shed == 0 {
		t.Fatalf("loadgen observed %d sheds but server counted none", rep.ShedObserved)
	}
}
