package serve_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/figures"
	"repro/internal/serve"
	"repro/internal/stream"
)

// TestGracefulShutdownResume is the drain contract: suspending a server
// mid-trace (the SIGTERM path) drains the bounded ingest queue through
// the service, flushes the group-commit syncer, and leaves a checkpoint
// directory a second server resumes from — and the stitched-together run
// is bit-identical to the batch reference. The suspend lands mid-day on
// purpose: the service must not flush the in-progress day on suspend
// (its remaining events arrive after resume).
func TestGracefulShutdownResume(t *testing.T) {
	ref, err := figures.BatchRef("cookie-monster")
	if err != nil {
		t.Fatalf("batch reference: %v", err)
	}
	w, err := figures.ByName("cookie-monster")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := w.Config()
	if err != nil {
		t.Fatal(err)
	}
	ds := cfg.Dataset
	dir := t.TempDir()

	scenario := scenarioForServing(cfg)
	scenario.CheckpointDir = dir
	scenario.SnapshotEveryDays = 3
	scenario.GroupCommitEvents = 4

	// Phase 1: fresh server, register over the API, send the first ~half
	// of the trace (cut mid-batch, so it lands mid-day), then suspend.
	metaA := ds.Meta()
	metaA.Advertisers = nil
	tsA := newTestServer(t, serve.Config{Scenario: scenario, Meta: metaA})
	cA := newClient(t, tsA)
	cA.register(ds.Advertisers)

	evs := orderedEvents(ds)
	cut := len(evs)/2 + 17
	accepted, duplicates, failedAt := cA.sendOrdered(evs[:cut], 128)
	if failedAt >= 0 || accepted != cut || duplicates != 0 {
		t.Fatalf("phase 1 send: accepted %d dup %d failedAt %d, want %d/0/-1",
			accepted, duplicates, failedAt, cut)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	runA, err := tsA.srv.Shutdown(ctx, false /* suspend */)
	if err != nil {
		t.Fatalf("suspend: %v", err)
	}
	if runA == nil || runA.EventsIngested != cut {
		t.Fatalf("suspended run ingested %v events, want %d", runA, cut)
	}

	// Phase 2: resume from the checkpoint directory. Resume requires the
	// querier set up front; registration order must match phase 1.
	resumed := scenario
	resumed.Resume = true
	metaB := ds.Meta() // advertisers preset
	tsB := newTestServer(t, serve.Config{Scenario: resumed, Meta: metaB})
	cB := newClient(t, tsB)

	// Re-send a tail of already-covered events first: recovery must have
	// rebuilt the (device, seq) cursors, so these are duplicate-rejected,
	// not double-ingested. (sendOrdered retries through the recovery 503s.)
	overlap := 64
	_, dup, failedAt := cB.sendOrdered(evs[cut-overlap:cut], 32)
	if failedAt >= 0 {
		t.Fatalf("overlap re-send failed at offset %d", failedAt)
	}
	if dup != overlap {
		t.Fatalf("overlap re-send: %d duplicates, want %d", dup, overlap)
	}

	accepted, duplicates, failedAt = cB.sendOrdered(evs[cut:], 128)
	if failedAt >= 0 || accepted != len(evs)-cut || duplicates != 0 {
		t.Fatalf("phase 2 send: accepted %d dup %d failedAt %d, want %d/0/-1",
			accepted, duplicates, failedAt, len(evs)-cut)
	}
	if sr := cB.shutdown(true); sr.State != "done" {
		t.Fatalf("final shutdown state %q: %s", sr.State, sr.Error)
	}
	runB, runErr := waitDone(t, tsB.srv)
	got := mustDigest(t, runB, runErr, "resumed run")
	if want := ref.CanonicalDigest(); got != want {
		t.Fatalf("resumed digest %s != batch reference %s", got, want)
	}
	if st := tsB.srv.StatsSnapshot(); st.DuplicatesRejected != int64(overlap) {
		t.Fatalf("resumed server rejected %d duplicates, want %d", st.DuplicatesRejected, overlap)
	}
}

// TestCrashBetweenWALAppendAndResponse injects a crash at the exact
// regime the idempotency design exists for: the service has appended an
// event to the WAL (PointEventIngested) but the client never receives the
// acknowledgement. The client then replays the ENTIRE trace against a
// resumed server: everything the durable state covers must be rejected as
// a duplicate, everything lost with the crash must be re-admitted, and
// the final digest must still match the batch reference bit for bit.
func TestCrashBetweenWALAppendAndResponse(t *testing.T) {
	ref, err := figures.BatchRef("cookie-monster")
	if err != nil {
		t.Fatalf("batch reference: %v", err)
	}
	w, err := figures.ByName("cookie-monster")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name        string
		groupCommit int
	}{
		// Per-event group commit: the crashed event is typically durable,
		// so its retry deduplicates. Day-boundary-only syncing: the tail
		// since the last boundary is lost and the retry re-ingests it.
		// Both must converge to the reference digest.
		{"group-commit-1", 1},
		{"no-group-commit", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := w.Config()
			if err != nil {
				t.Fatal(err)
			}
			ds := cfg.Dataset
			dir := t.TempDir()
			evs := orderedEvents(ds)

			var countdown atomic.Int64
			countdown.Store(600) // crash mid-trace, several day boundaries in
			boom := errors.New("injected crash")
			scenario := scenarioForServing(cfg)
			scenario.CheckpointDir = dir
			scenario.SnapshotEveryDays = 3
			scenario.GroupCommitEvents = tc.groupCommit
			scenario.FaultHook = func(p stream.FaultPoint) error {
				if p == stream.PointEventIngested && countdown.Add(-1) == 0 {
					return boom
				}
				return nil
			}

			metaA := ds.Meta()
			metaA.Advertisers = nil
			tsA := newTestServer(t, serve.Config{Scenario: scenario, Meta: metaA})
			cA := newClient(t, tsA)
			cA.register(ds.Advertisers)

			stopped := cA.sendOrderedAllowStop(evs, 64)
			if stopped >= len(evs) {
				t.Fatalf("server survived the whole trace; crash never fired")
			}
			if _, errA := waitDone(t, tsA.srv); errA == nil {
				t.Fatalf("crashed run reported no error")
			}

			// Recovery: resume and replay the full trace. The client does
			// not know which suffix was lost, and does not need to —
			// admission dedupe sorts it out.
			resumed := scenario
			resumed.Resume = true
			resumed.FaultHook = nil
			tsB := newTestServer(t, serve.Config{Scenario: resumed, Meta: ds.Meta()})
			cB := newClient(t, tsB)
			accepted, duplicates, failedAt := cB.sendOrdered(evs, 64)
			if failedAt >= 0 {
				t.Fatalf("replay failed at offset %d", failedAt)
			}
			if duplicates == 0 {
				t.Fatalf("full replay saw no duplicate rejections; dedupe is not engaged")
			}
			if accepted+duplicates != len(evs) {
				t.Fatalf("replay accounted %d+%d events, want %d", accepted, duplicates, len(evs))
			}
			if sr := cB.shutdown(true); sr.State != "done" {
				t.Fatalf("final shutdown state %q: %s", sr.State, sr.Error)
			}
			runB, runErr := waitDone(t, tsB.srv)
			got := mustDigest(t, runB, runErr, "recovered run")
			if want := ref.CanonicalDigest(); got != want {
				t.Fatalf("recovered digest %s != batch reference %s", got, want)
			}
			if st := tsB.srv.StatsSnapshot(); st.DuplicatesRejected != int64(duplicates) {
				t.Fatalf("telemetry counted %d duplicate rejections, responses said %d",
					st.DuplicatesRejected, duplicates)
			}
		})
	}
}
